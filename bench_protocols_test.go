package wideleak

// Manifest-dialect benchmarks: what the CDN's on-the-fly repackaging
// costs, recorded in BENCH_protocols.json by `make bench-protocols`.
//
// Three shapes per dialect tell the whole story. "cold" is the first
// request for a dialect form: the canonical DASH manifest is parsed and
// re-serialized into the wire format (for DASH itself this is a map
// lookup — the stored form IS the wire form, so it doubles as the
// floor). "memoized" is every later request: the repack cache turns all
// three dialects into the same map lookup, which is why a study run
// through HLS or Smooth Streaming pays the conversion once per title,
// not once per playback.
//
// The name deliberately starts "BenchmarkM" so the root `make bench`
// suite (regex '^Benchmark[^M]') skips it, like the matrix benchmarks:
// it gets its own baseline file and bench-guard entry instead.

import (
	"testing"

	"repro/internal/cdn"
	"repro/internal/media"
	"repro/internal/wvcrypto"
)

func BenchmarkManifestProtocols(b *testing.B) {
	rand := wvcrypto.NewDeterministicReader("bench-protocols")
	tracks := media.GenerateTitle("movie-1", media.DefaultGenerateOptions())
	packaged, err := media.Package("movie-1", tracks,
		media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: true}, rand)
	if err != nil {
		b.Fatal(err)
	}

	// The suite runs at -benchtime=1x (like the matrix benchmarks), so
	// each op amortizes over an inner batch — otherwise a single ~1µs
	// memoized serve would be pure timer noise against the guard's
	// tolerance. ns_per_op is therefore per coldBatch repacks (cold) or
	// per warmBatch lookups (memoized), consistent across runs.
	const (
		coldBatch = 16
		warmBatch = 4096
	)
	for _, dialect := range []string{"dash", "hls", "sstr"} {
		b.Run(dialect+"_cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				servers := make([]*cdn.Server, coldBatch)
				for j := range servers {
					servers[j] = cdn.NewServer("cdn.bench")
					if err := servers[j].AddPackaged(packaged); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, srv := range servers {
					if _, err := srv.ManifestDialect("movie-1", dialect); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(dialect+"_memoized", func(b *testing.B) {
			srv := cdn.NewServer("cdn.bench")
			if err := srv.AddPackaged(packaged); err != nil {
				b.Fatal(err)
			}
			if _, err := srv.ManifestDialect("movie-1", dialect); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < warmBatch; j++ {
					if _, err := srv.ManifestDialect("movie-1", dialect); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
