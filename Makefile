# WideLeak reproduction — convenience targets.

GO ?= go

# Per-target budget for the native fuzz pass wired into check.
FUZZTIME ?= 5s

.PHONY: all build vet lint test race bench bench-guard bench-matrix bench-devices bench-protocols bench-cold bench-fleet fuzz chaos check study impact report serve serve-smoke fleet-smoke clean

all: build vet test

# check is the full verification gate: build, lint (gofmt + vet), plain
# tests, the race detector, the daemon and fleet smoke tests, the bench
# guard (current numbers vs the committed baseline — BEFORE bench, which
# would overwrite that baseline), a benchmark pass recording
# BENCH_tableI.json, and a short native-fuzz pass over the
# attacker-facing parsers.
check: build lint test race serve-smoke fleet-smoke bench-guard bench fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint fails on any file gofmt would rewrite, then runs go vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	# The keypool's concurrency contract gets a dedicated -race pass:
	# hammer tests exercise singleflight mints under contention.
	$(GO) test -race -count=1 -run 'TestKeyPool' ./internal/provision

# bench runs every root-package benchmark (except the matrix suite, which
# has its own baseline file), tees the raw output, and distills it into
# BENCH_tableI.json ({"name": {"ns_per_op": N, "allocs_per_op": M}}) for
# tooling that tracks the Table I numbers across commits.
bench:
	$(GO) test -bench '^Benchmark[^M]' -benchmem -run '^$$' . | tee BENCH_tableI.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_tableI.txt > BENCH_tableI.json

# bench-guard reruns the benchmark suites and fails when any benchmark's
# ns/op regressed against its committed baseline: the root suite vs
# BENCH_tableI.json at 25%, the device-matrix suite vs BENCH_devices.json
# at 50% (its entries are single-iteration end-to-end served studies, so
# they are noisier), and the manifest-dialect suite vs
# BENCH_protocols.json at 100% (single-iteration ms-scale batches — the
# guard still catches order-of-magnitude repack regressions). New
# benchmarks (absent from a baseline) are skipped, so the guard never
# blocks adding coverage — only slowing existing paths.
bench-guard:
	$(GO) test -bench '^Benchmark[^M]' -benchmem -run '^$$' . | tee BENCH_guard.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_guard.txt > BENCH_guard.json
	$(GO) run ./cmd/benchmerge -guard -tolerance 25 BENCH_tableI.json BENCH_guard.json
	$(GO) test -bench '^BenchmarkMatrixDevices$$' -benchtime=1x -benchmem -run '^$$' . | tee BENCH_guard_devices.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_guard_devices.txt > BENCH_guard_devices.json
	$(GO) run ./cmd/benchmerge -guard -tolerance 50 BENCH_devices.json BENCH_guard_devices.json
	$(GO) test -bench '^BenchmarkManifestProtocols$$' -benchtime=1x -benchmem -run '^$$' . | tee BENCH_guard_protocols.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_guard_protocols.txt > BENCH_guard_protocols.json
	$(GO) run ./cmd/benchmerge -guard -tolerance 100 BENCH_protocols.json BENCH_guard_protocols.json
	rm -f BENCH_guard.txt BENCH_guard.json BENCH_guard_devices.txt BENCH_guard_devices.json
	rm -f BENCH_guard_protocols.txt BENCH_guard_protocols.json

# bench-matrix records the shared-work scheduler's payoff into
# BENCH_matrix.json: an overlapping 8-seed x 4-probe-subset mix served as
# one batch vs the same specs as sequential requests (cell dedup must win
# >=3x), plus a non-overlapping control mix where there is nothing to
# share. One iteration each — these are end-to-end served studies.
bench-matrix:
	$(GO) test -bench '^BenchmarkMatrix$$' -benchtime=1x -benchmem -run '^$$' . | tee BENCH_matrix.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_matrix.txt > BENCH_matrix.json

# bench-devices records the device axis's batch payoff into
# BENCH_devices.json: 4 seeds x 4 probe subsets over an 8-profile device
# matrix and 4 apps served as one dedup'd batch vs the same specs as
# sequential requests (shared worlds and cell dedup must win >=2x). One
# iteration each — these are end-to-end served studies.
bench-devices:
	$(GO) test -bench '^BenchmarkMatrixDevices$$' -benchtime=1x -benchmem -run '^$$' . | tee BENCH_devices.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_devices.txt > BENCH_devices.json

# bench-protocols records the manifest-dialect repackaging costs into
# BENCH_protocols.json: per dialect, the cold repack (canonical DASH
# parsed and re-serialized on first request) vs the memoized serve
# (every later request — a map lookup for all three dialects).
bench-protocols:
	$(GO) test -bench '^BenchmarkManifestProtocols$$' -benchtime=1x -benchmem -run '^$$' . | tee BENCH_protocols.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_protocols.txt > BENCH_protocols.json

# bench-cold runs only the cold-start benchmarks (one iteration each —
# they are end-to-end studies, not microbenchmarks) and merges their
# numbers into BENCH_tableI.json alongside the full-suite entries.
bench-cold:
	$(GO) test -bench 'ColdStart_Pooled|WorldSnapshot_Restore|Server_ColdWithWorldCache|TableI_Full_Parallel1' -benchtime=1x -benchmem -run '^$$' . | tee BENCH_cold.txt
	$(GO) run ./cmd/benchmerge -parse BENCH_cold.txt > BENCH_cold.json
	@if [ -f BENCH_tableI.json ]; then \
		$(GO) run ./cmd/benchmerge BENCH_tableI.json BENCH_cold.json > BENCH_tableI.json.tmp && \
		mv BENCH_tableI.json.tmp BENCH_tableI.json && rm BENCH_cold.json; \
	else mv BENCH_cold.json BENCH_tableI.json; fi

# fuzz runs the native fuzz targets over the parsers that consume
# attacker-controlled bytes, each for FUZZTIME (go permits one -fuzz
# pattern per invocation, hence the three runs).
fuzz:
	$(GO) test ./internal/dash -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hls -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sstr -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mp4 -run '^$$' -fuzz '^FuzzParseInitSegment$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mp4 -run '^$$' -fuzz '^FuzzParseMediaSegment$$' -fuzztime $(FUZZTIME)

# chaos runs the fault-injection suite under the race detector: for the
# five fixed seeds, Table I under transient faults must render
# byte-identical to the fault-free run, and dead hosts must degrade to
# annotated cells instead of failing the table.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestFault|TestRetry|TestBackoff|TestPlayback' ./internal/wideleak ./internal/netsim ./internal/ott

# Run the study-as-a-service daemon on the default port.
serve:
	$(GO) run ./cmd/wideleakd

# serve-smoke boots the real daemon on a random port, submits the
# default Q1-Q4 study over HTTP, and diffs the served table against
# internal/wideleak/testdata/tableI_default.txt — then SIGTERM-drains it.
serve-smoke:
	$(GO) test ./cmd/wideleakd -run '^TestServeSmoke$$' -count=1 -v

# fleet-smoke boots a 3-replica in-process fleet behind the
# consistent-hash router and drives the smoke mix through it for 2s:
# nonzero completed throughput, zero non-shed errors.
fleet-smoke:
	$(GO) test ./cmd/wideleakload -run '^TestFleetSmoke$$' -count=1 -v

# bench-fleet records the sharding payoff into BENCH_fleet.json: the warm
# mix (working set larger than one replica's result cache, Zipf-skewed)
# and the cold mix (everything computed) driven against a 1-replica and a
# 3-replica fleet. On this 1-core box the 3-replica warm speedup is pure
# cache partitioning, not parallelism.
bench-fleet:
	$(GO) run ./cmd/wideleakload -spawn 1 -mix warm -duration 10s -label Fleet1_Warm -out BENCH_fleet1_warm.json
	$(GO) run ./cmd/wideleakload -spawn 3 -mix warm -duration 10s -label Fleet3_Warm -out BENCH_fleet3_warm.json
	$(GO) run ./cmd/wideleakload -spawn 1 -mix cold -duration 10s -label Fleet1_Cold -out BENCH_fleet1_cold.json
	$(GO) run ./cmd/wideleakload -spawn 3 -mix cold -duration 10s -label Fleet3_Cold -out BENCH_fleet3_cold.json
	$(GO) run ./cmd/benchmerge BENCH_fleet1_warm.json BENCH_fleet3_warm.json BENCH_fleet1_cold.json BENCH_fleet3_cold.json > BENCH_fleet.json
	rm -f BENCH_fleet1_warm.json BENCH_fleet3_warm.json BENCH_fleet1_cold.json BENCH_fleet3_cold.json

# Reproduce Table I and check it against the paper.
study:
	$(GO) run ./cmd/wideleak

# Table I plus the §IV-D attack chain per app.
impact:
	$(GO) run ./cmd/wideleak -impact

# Full markdown report (table + summary + impact + forgery).
report:
	$(GO) run ./cmd/wideleak -report report.md

# clean leaves BENCH_tableI.json, BENCH_matrix.json, BENCH_devices.json
# and BENCH_protocols.json in place: they are the committed benchmark
# baselines, regenerated (not discarded) by `make bench` /
# `make bench-matrix` / `make bench-devices` / `make bench-protocols`.
clean:
	rm -f report.md test_output.txt bench_output.txt BENCH_tableI.txt BENCH_cold.txt BENCH_cold.json
	rm -f BENCH_guard.txt BENCH_guard.json BENCH_matrix.txt BENCH_devices.txt BENCH_protocols.txt
	rm -f BENCH_guard_devices.txt BENCH_guard_devices.json
	rm -f BENCH_guard_protocols.txt BENCH_guard_protocols.json
	rm -f BENCH_fleet1_warm.json BENCH_fleet3_warm.json BENCH_fleet1_cold.json BENCH_fleet3_cold.json
