# WideLeak reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test race bench check study impact report clean

all: build vet test

# check is the full verification gate: build, vet, plain tests, the race
# detector, and a benchmark pass recording BENCH_tableI.json.
check: build vet test race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every root-package benchmark, tees the raw output, and distills
# it into BENCH_tableI.json ({"name": ns_per_op, ...}) for tooling that
# tracks the Table I numbers across commits.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_tableI.txt
	awk 'BEGIN { print "{"; n = 0 } \
	     /^Benchmark/ { if (n++) printf ",\n"; printf "  \"%s\": %s", $$1, $$3 } \
	     END { print "\n}" }' BENCH_tableI.txt > BENCH_tableI.json

# Reproduce Table I and check it against the paper.
study:
	$(GO) run ./cmd/wideleak

# Table I plus the §IV-D attack chain per app.
impact:
	$(GO) run ./cmd/wideleak -impact

# Full markdown report (table + summary + impact + forgery).
report:
	$(GO) run ./cmd/wideleak -report report.md

clean:
	rm -f report.md test_output.txt bench_output.txt BENCH_tableI.txt BENCH_tableI.json
