# WideLeak reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test race bench study impact report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Reproduce Table I and check it against the paper.
study:
	$(GO) run ./cmd/wideleak

# Table I plus the §IV-D attack chain per app.
impact:
	$(GO) run ./cmd/wideleak -impact

# Full markdown report (table + summary + impact + forgery).
report:
	$(GO) run ./cmd/wideleak -report report.md

clean:
	rm -f report.md test_output.txt bench_output.txt
