package wideleak

// Device-axis benchmarks: the shared-work payoff of POST /v1/batches
// when specs fan out across a wide device matrix, recorded in
// BENCH_devices.json by `make bench-devices`.
//
// The mix is 4 seeds x 4 probe subsets over an 8-profile device set and
// 4 apps — every spec names the same devices, so the batch planner
// collapses each seed's four expansions (14 probe cells sequentially)
// onto the union of 4 distinct cells, and all four specs share one
// 8-device world build. Sequential requests over /v1/studies model the
// same client without the batch API: every request re-expands and
// re-runs its probe set against a server whose cell and result tiers
// are pinned to one entry. Each device cell is ~2.7x the trio's
// manufacturing and playback work, so the absolute gap is wider than
// BenchmarkMatrix's even though the dedup ratio is the same shape.
//
// Key pools and world snapshots are warmed through one untimed batch
// before measuring, so neither path pays RSA minting or cold world
// builds inside the timed region.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

func BenchmarkMatrixDevices(b *testing.B) {
	srv := serve.New(serve.Config{Workers: 2, QueueSize: 64, CacheSize: 1, CellCacheSize: 1})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	devices := []string{"pixel", "l3", "nexus5", "pixel-2016", "galaxy-s7", "moto-g5", "oneplus-5", "shield-tv"}
	apps := make([]string, 0, 4)
	for _, p := range Profiles()[:4] {
		apps = append(apps, p.Name)
	}
	subsets := [][]string{
		{"q1", "q2", "q3", "q4"},
		{"q1", "q3", "q4"},
		{"q2", "q3", "q4"},
		{"q1", "q2", "q3"},
	}
	const seeds = 4
	var specs []RunSpec
	for i := 0; i < seeds; i++ {
		for _, probes := range subsets {
			specs = append(specs, RunSpec{
				Seed:     fmt.Sprintf("bench-devices-%d", i),
				Profiles: apps,
				Probes:   probes,
				Devices:  devices,
			})
		}
	}

	// Warm the per-seed key pools and world snapshots through the
	// server's own surface before timing: the cell and result tiers are
	// pinned to one entry, so nothing else carries over and both timed
	// paths start from the same warm fixture tier.
	benchBatchRoundTrip(b, ts, specs, true)

	b.Run("Batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchBatchRoundTrip(b, ts, specs, true)
		}
	})
	b.Run("Sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				benchServeRoundTrip(b, ts, spec)
			}
		}
	})
}
