package wideleak_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the one-call reproduction: build a world, run the
// study, compare against the paper.
func Example() {
	// One app keeps the example fast; pass nil for all ten.
	var profiles []wideleak.Profile
	for _, p := range wideleak.Profiles() {
		if p.Name == "Netflix" {
			profiles = append(profiles, p)
		}
	}
	world, err := wideleak.NewWorld("example", profiles)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	study := wideleak.NewStudy(world)
	table, err := study.BuildTable()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	row := table.Rows[0]
	fmt.Printf("%s: video=%s audio=%s keyUsage=%s legacy=%s\n",
		row.App, row.Video(), row.Audio(), row.KeyUsage(), row.Legacy())
	// Output:
	// Netflix: video=Encrypted audio=Clear keyUsage=Minimum legacy=Plays
}

// ExampleStudy_RunPracticalImpact runs the §IV-D attack chain against one
// app on the discontinued device.
func ExampleStudy_RunPracticalImpact() {
	var profiles []wideleak.Profile
	for _, p := range wideleak.Profiles() {
		if p.Name == "Showtime" {
			profiles = append(profiles, p)
		}
	}
	world, err := wideleak.NewWorld("impact-example", profiles)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := wideleak.NewStudy(world).RunPracticalImpact("Showtime")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("keybox=%v rsa=%v drmFree=%v max=%dp\n",
		res.KeyboxRecovered, res.RSAKeyRecovered, res.DRMFree, res.MaxHeight)
	// Output:
	// keybox=true rsa=true drmFree=true max=540p
}

// ExamplePaperTable shows the expected-result oracle.
func ExamplePaperTable() {
	paper := wideleak.PaperTable()
	s := paper.Summarize()
	fmt.Printf("%d apps, %d with clear audio, %d enforcing revocation\n",
		s.Apps, s.AudioClear, s.EnforcingRevocation)
	// Output:
	// 10 apps, 3 with clear audio, 3 enforcing revocation
}
