package wideleak_test

import (
	"strings"
	"testing"

	"repro"
)

// The facade test exercises the library exactly as README documents it:
// everything a downstream user touches must work through the root package.
func TestPublicAPI_EndToEnd(t *testing.T) {
	profiles := wideleak.Profiles()
	if len(profiles) != 10 {
		t.Fatalf("Profiles() = %d apps, want 10", len(profiles))
	}

	// A one-app world keeps the facade test fast.
	var netflix []wideleak.Profile
	for _, p := range profiles {
		if p.Name == "Netflix" {
			netflix = append(netflix, p)
		}
	}
	world, err := wideleak.NewWorld("facade", netflix)
	if err != nil {
		t.Fatal(err)
	}
	study := wideleak.NewStudy(world)

	table, err := study.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 {
		t.Fatalf("table rows = %d", len(table.Rows))
	}
	row := table.Rows[0]
	if row.Audio() != wideleak.ProtectionClear {
		t.Errorf("Netflix audio = %v, want Clear", row.Audio())
	}
	if row.KeyUsage() != wideleak.KeyUsageMinimum {
		t.Errorf("Netflix key usage = %v", row.KeyUsage())
	}
	if row.Legacy() != wideleak.LegacyPlays {
		t.Errorf("Netflix legacy = %v", row.Legacy())
	}
	if !strings.Contains(table.Render(), "Netflix") {
		t.Error("render missing app")
	}

	impact, err := study.RunPracticalImpact("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	if !impact.DRMFree || impact.MaxHeight != 540 {
		t.Errorf("impact = %+v", impact)
	}
}

func TestPublicAPI_PaperTable(t *testing.T) {
	paper := wideleak.PaperTable()
	if len(paper.Rows) != 10 {
		t.Fatalf("paper table rows = %d", len(paper.Rows))
	}
	if diffs := paper.Diff(wideleak.PaperTable()); len(diffs) != 0 {
		t.Errorf("paper table self-diff: %v", diffs)
	}
}

func TestPublicAPI_Determinism(t *testing.T) {
	build := func(seed string) string {
		var showtime []wideleak.Profile
		for _, p := range wideleak.Profiles() {
			if p.Name == "Showtime" {
				showtime = append(showtime, p)
			}
		}
		w, err := wideleak.NewWorld(seed, showtime)
		if err != nil {
			t.Fatal(err)
		}
		table, err := wideleak.NewStudy(w).BuildTable()
		if err != nil {
			t.Fatal(err)
		}
		return table.Render()
	}
	if build("same") != build("same") {
		t.Error("identical seeds produced different tables")
	}
}
