// Keybox recovery (CVE-2021-0639) walked through by hand: every rung of
// the §IV-D ladder using the low-level packages directly, with the
// corresponding paper step called out — and the same scan shown failing
// against an L1 device.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/attack"
	"repro/internal/cenc"
	"repro/internal/monitor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := wideleak.NewWorld("keybox-recovery", nil)
	if err != nil {
		return err
	}
	fixture, err := world.Fixture("Showtime")
	if err != nil {
		return err
	}

	nexus5 := fixture.Cell("nexus5")
	pixel := fixture.Cell("pixel")

	// --- The discontinued L3 phone ---
	fmt.Println("=== Nexus 5 (Android 6.0.1, Widevine L3, CDM 3.1.0) ===")
	mon := monitor.New()
	mon.AttachCDM(nexus5.Device.Engine)
	defer mon.Detach()
	if r := nexus5.App.Play(wideleak.ContentID); !r.Played() {
		return fmt.Errorf("playback failed: %+v", r)
	}

	// §IV-D: "By dynamically monitoring memory regions ... we searched for
	// specific keybox structure (e.g., magic number)."
	handle, err := mon.AttachProcess(nexus5.Device.DRMProcess)
	if err != nil {
		return err
	}
	fmt.Printf("Attached to mediadrmserver: %d mapped regions.\n", len(handle.Regions()))
	kb, err := attack.RecoverKeybox(handle)
	if err != nil {
		return err
	}
	fmt.Printf("Keybox recovered: stableID=%q, 128-bit device key %x...\n",
		kb.StableIDString(), kb.DeviceKey[:4])

	// §IV-D: "Once we recovered the keybox, we were able to obtain the
	// provisioned Device RSA Key."
	rsaKey, err := attack.RecoverDeviceRSAKey(kb, nexus5.Device.Storage)
	if err != nil {
		return err
	}
	fmt.Printf("Device RSA key unwrapped from flash: %d-bit modulus.\n", rsaKey.N.BitLen())

	// §IV-D: "we mimic the rest of the key ladder by intercepting Widevine
	// function arguments to recover derivation buffers and encrypted keys."
	keys, err := attack.RecoverContentKeys(rsaKey, mon.Events())
	if err != nil {
		return err
	}
	fmt.Printf("Key ladder replayed: %d content keys recovered:\n", len(keys))
	for kid := range keys {
		fmt.Printf("  kid=%s\n", cenc.KIDToString(kid))
	}

	// --- The same attack against a TEE-backed L1 phone ---
	fmt.Println("\n=== Pixel (TEE-backed Widevine L1, CDM 15.0) ===")
	if r := pixel.App.Play(wideleak.ContentID); !r.Played() {
		return fmt.Errorf("pixel playback failed: %+v", r)
	}
	l1Handle, err := mon.AttachProcess(pixel.Device.DRMProcess)
	if err != nil {
		return err
	}
	if _, err := attack.RecoverKeybox(l1Handle); err != nil {
		fmt.Printf("Keybox scan: %v\n", err)
		fmt.Println("The keybox never leaves the TEE — the L1 design resists the attack.")
	} else {
		return fmt.Errorf("unexpected: keybox found in L1 normal-world memory")
	}

	// Monitors also cannot reach into the app's own process.
	if _, err := mon.AttachProcess(nexus5.App.Device().DRMProcess); err != nil {
		return err
	}
	fmt.Println("\nConclusion: discontinued L3 phones are the ecosystem's weakest link (§IV-D).")
	return nil
}
