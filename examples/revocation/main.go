// Revocation survey (Q4): play the same title through all ten apps on a
// discontinued Nexus 5 and report which enforce Widevine's revocation
// rules — the availability-vs-security trade-off of §IV.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	world, err := wideleak.NewWorld("revocation", nil)
	if err != nil {
		log.Fatal(err)
	}
	study := wideleak.NewStudy(world)

	fmt.Println("Q4: playback on a Nexus 5 (last update Android 6.0.1, CDM 3.1.0)")
	fmt.Println()

	var permissive, revoking int
	for _, p := range wideleak.Profiles() {
		q4, err := study.RunQ4(p.Name)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		switch q4.Outcome {
		case wideleak.LegacyPlays:
			permissive++
			marker = "SERVES DISCONTINUED DEVICE"
		case wideleak.LegacyPlaysCustomDRM:
			permissive++
			marker = "serves via embedded custom DRM"
		case wideleak.LegacyProvisioningFails:
			revoking++
			marker = "enforces revocation"
		}
		fmt.Printf("  %-20s %-20s %s\n", p.Name, q4.Outcome, marker)
	}

	fmt.Printf("\n%d of 10 apps still serve a phone that stopped receiving security updates;\n", permissive)
	fmt.Printf("only %d enforce revocation — the paper's Q4 finding.\n", revoking)
	fmt.Println("\nWhy it matters: every served app except Amazon is then exposed to the")
	fmt.Println("keybox-recovery chain (run ./cmd/keyladder or examples/keyboxrecovery).")
}
