// Quickstart: build a world, run the study, print the reproduced Table I
// and check it against the paper — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A world is the complete experimental setup: the paper's ten OTT
	// apps, each with its own CDN, license server and provisioning
	// endpoint, on one simulated network. The seed makes it reproducible.
	world, err := wideleak.NewWorld("quickstart", nil)
	if err != nil {
		log.Fatal(err)
	}

	// The study answers the paper's four research questions by
	// observation only: hooked CDM calls, intercepted traffic, and
	// downloaded assets.
	study := wideleak.NewStudy(world)
	table, err := study.BuildTable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table.Render())

	if diffs := table.Diff(wideleak.PaperTable()); len(diffs) == 0 {
		fmt.Println("\nMatches the paper's Table I cell for cell.")
	} else {
		fmt.Println("\nDiffers from the paper:")
		for _, d := range diffs {
			fmt.Println(" ", d)
		}
	}

	// Individual questions are also directly accessible.
	q4, err := study.RunQ4("Netflix")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNetflix on the discontinued Nexus 5: %s (%s)\n", q4.Outcome, q4.Detail)
}
