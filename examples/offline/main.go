// Offline playback: the download-for-offline feature real OTT apps ship.
// License once while online, persist the exchange, then play with every
// backend unreachable — and observe that key-control durations still bind
// the persisted license.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"repro"
	"repro/internal/cdm"
	"repro/internal/media"
	"repro/internal/mp4"
	"repro/internal/netsim"
	"repro/internal/ott"
	"repro/internal/wvcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := wideleak.NewWorld("offline-example", nil)
	if err != nil {
		return err
	}
	fixture, err := world.Fixture("Showtime")
	if err != nil {
		return err
	}
	dev := fixture.Device("pixel")
	profile := fixture.Profile

	// Warm up: the device provisions through a normal playback.
	if r := fixture.App("pixel").Play(wideleak.ContentID); !r.Played() {
		return fmt.Errorf("online playback failed: %+v", r)
	}

	client := cdm.NewClient(dev.Engine, wvcrypto.NewDeterministicReader("offline-example-client"))
	net := netsim.NewClient(world.Network)

	// Online phase: acquire a license and persist it to flash.
	fmt.Println("[online]  acquiring license...")
	s, err := client.OpenSession()
	if err != nil {
		return err
	}
	signed, err := client.CreateLicenseRequest(s, wideleak.ContentID, nil)
	if err != nil {
		return err
	}
	body, err := json.Marshal(signed)
	if err != nil {
		return err
	}
	resp, err := net.Do(netsim.Request{Host: profile.LicenseHost(), Path: ott.PathLicense, Body: body})
	if err != nil || resp.Status != 200 {
		return fmt.Errorf("license fetch failed: %d %v", resp.Status, err)
	}
	var lr cdm.LicenseResponse
	if err := json.Unmarshal(resp.Body, &lr); err != nil {
		return err
	}
	if err := client.ProcessLicenseResponse(s, signed, &lr); err != nil {
		return err
	}
	if err := client.StoreOfflineLicense(dev.Storage, wideleak.ContentID, signed, &lr); err != nil {
		return err
	}
	if err := client.CloseSession(s); err != nil {
		return err
	}
	fmt.Println("[online]  license persisted to flash.")

	// Offline phase: note that NO network call happens below.
	fmt.Println("[offline] airplane mode — restoring the persisted license...")
	s2, err := client.RestoreOfflineLicense(dev.Storage, wideleak.ContentID)
	if err != nil {
		return err
	}
	// Decrypt one downloaded segment with the restored session. (The
	// segments were cached during the online phase; here we reuse the CDN
	// store directly as the app's local cache.)
	dep := world.Deployment("Showtime")
	initRaw, _ := dep.CDN().Object(wideleak.ContentID + "/video/540p/init.mp4")
	segRaw, _ := dep.CDN().Object(wideleak.ContentID + "/video/540p/seg1.m4s")
	if initRaw == nil || segRaw == nil {
		return fmt.Errorf("cached assets missing")
	}
	init, err := mp4.ParseInitSegment(initRaw)
	if err != nil {
		return err
	}
	seg, err := mp4.ParseMediaSegment(segRaw)
	if err != nil {
		return err
	}
	if init.Track.Protection == nil || seg.Encryption == nil {
		return fmt.Errorf("cached video unexpectedly clear")
	}
	frames := 0
	for i, sample := range seg.SampleData {
		entry := seg.Encryption.Entries[i]
		res, err := client.Decrypt(s2, init.Track.Protection.DefaultKID,
			init.Track.Protection.Scheme, entry.IV, entry.Subsamples, sample)
		if err != nil {
			return fmt.Errorf("offline decrypt sample %d: %w", i, err)
		}
		if !media.IsPlayable(res.Data) {
			return fmt.Errorf("offline sample %d not playable", i)
		}
		frames++
	}
	fmt.Printf("[offline] playback OK: %d frames decoded with the restored license.\n", frames)
	fmt.Println("\nOffline licenses replay the stored exchange through the CDM; content keys")
	fmt.Println("never touch disk unwrapped, and key-control durations keep applying.")
	return nil
}
