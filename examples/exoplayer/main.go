// ExoPlayer-style integration: the recommended way for an app developer to
// consume the DRM stack. The same manifest plays at 1080p on an L1 device
// and is adaptively capped to 540p on the discontinued L3 phone, purely by
// which keys the license grants.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cdn"
	"repro/internal/device"
	"repro/internal/exoplayer"
	"repro/internal/netsim"
	"repro/internal/ott"
	"repro/internal/wvcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := wideleak.NewWorld("exoplayer-example", nil)
	if err != nil {
		return err
	}
	fixture, err := world.Fixture("Showtime")
	if err != nil {
		return err
	}
	profile := fixture.Profile
	manifest, ok := world.Deployment("Showtime").CDN().Manifest(wideleak.ContentID)
	if !ok {
		return fmt.Errorf("no manifest")
	}

	play := func(dev *device.Device) error {
		source := &exoplayer.NetworkSource{
			Client:        netsim.NewClient(world.Network),
			CDNHost:       profile.CDNHost(),
			CDNPrefix:     cdn.ObjectPrefix,
			LicenseHost:   profile.LicenseHost(),
			LicensePath:   ott.PathLicense,
			ProvisionHost: profile.APIHost(),
			ProvisionPath: ott.PathProvision,
		}
		player, err := exoplayer.New(dev.Engine, source,
			wvcrypto.NewDeterministicReader("exo-"+dev.Serial),
			func(ev exoplayer.Event) { fmt.Printf("    event: %-14s %s\n", ev.Kind, ev.Detail) })
		if err != nil {
			return err
		}
		stats, err := player.Play(manifest, wideleak.ContentID, "en")
		if err != nil {
			return err
		}
		fmt.Printf("    played %dp, %d samples, %d subtitle bytes\n\n",
			stats.VideoHeight, stats.SamplesRendered, stats.SubtitleBytes)
		return nil
	}

	pixel, nexus5 := fixture.Device("pixel"), fixture.Device("nexus5")
	fmt.Printf("== %s (TEE-backed L1, CDM %s) ==\n", pixel.Model, pixel.CDMVersion)
	if err := play(pixel); err != nil {
		return err
	}
	fmt.Printf("== %s (software L3, CDM %s) ==\n", nexus5.Model, nexus5.CDMVersion)
	if err := play(nexus5); err != nil {
		return err
	}
	fmt.Println("Same manifest, same code: the license grant alone decides the quality ceiling.")
	return nil
}
