// Netflix clear-audio leak: the paper's most surprising Q2 finding,
// demonstrated end to end. Netflix protects its manifest URIs through the
// CDM's non-DASH secure channel — but the audio assets those URIs point to
// are not encrypted at all, so once the URIs leak from a hooked
// GenericDecrypt call, anyone can play the audio with no account.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cdn"
	"repro/internal/dash"
	"repro/internal/media"
	"repro/internal/monitor"
	"repro/internal/mp4"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := wideleak.NewWorld("netflix-audio", nil)
	if err != nil {
		return err
	}
	fixture, err := world.Fixture("Netflix")
	if err != nil {
		return err
	}

	// Step 1: hook the CDM and play. The app fetches its manifest over the
	// secure channel, so the network tap alone sees only sealed blobs.
	l3 := fixture.Cell("l3")
	mon := monitor.New()
	mon.AttachCDM(l3.Device.Engine)
	defer mon.Detach()
	tap := mon.InterceptNetwork(l3.App.NetworkClient())
	report := l3.App.Play(wideleak.ContentID)
	if !report.Played() {
		return fmt.Errorf("playback failed: %+v", report)
	}
	fmt.Println("Playback succeeded; network tap captured", len(tap.Exchanges()), "exchanges.")

	sealedOnly := true
	for _, ex := range tap.Exchanges() {
		if _, err := dash.Parse(ex.Response.Body); err == nil {
			sealedOnly = false
		}
	}
	fmt.Println("Manifest visible in plaintext traffic:", !sealedOnly)

	// Step 2: the paper's trick — the secure channel's plaintext comes
	// back through GenericDecrypt, whose output buffer the hook dumps.
	var manifest *dash.MPD
	for _, out := range mon.DumpedOutputs(oemcrypto.FuncGenericDecrypt) {
		if m, err := dash.Parse(out); err == nil {
			manifest = m
			break
		}
	}
	if manifest == nil {
		return fmt.Errorf("no manifest recovered from GenericDecrypt dumps")
	}
	fmt.Println("Manifest recovered from a dumped GenericDecrypt output buffer.")

	// Step 3: download the audio with a fresh, account-less client and
	// play it directly.
	attacker := netsim.NewClient(world.Network)
	audioSet, err := manifest.FindAdaptationSet(dash.ContentAudio, "fr")
	if err != nil {
		return err
	}
	rep := audioSet.Representations[0]
	fetch := func(path string) ([]byte, error) {
		resp, err := attacker.Do(netsim.Request{
			Host: fixture.Profile.CDNHost(),
			Path: cdn.ObjectPrefix + rep.BaseURL + path,
		})
		if err != nil {
			return nil, err
		}
		return resp.Body, nil
	}

	initRaw, err := fetch(rep.SegmentList.Initialization.SourceURL)
	if err != nil {
		return err
	}
	protected, err := mp4.IsProtected(initRaw)
	if err != nil {
		return err
	}
	fmt.Println("Audio init segment declares protection:", protected)

	segRaw, err := fetch(rep.SegmentList.SegmentURLs[0].SourceURL)
	if err != nil {
		return err
	}
	seg, err := mp4.ParseMediaSegment(segRaw)
	if err != nil {
		return err
	}
	if !media.SegmentPlayable(seg) {
		return fmt.Errorf("audio segment not playable — expected clear audio")
	}
	fmt.Println("French audio track plays on the attacker's machine — no keys, no account.")
	fmt.Println("\nFinding reproduced: Netflix delivers audio in clear (Table I, Q2).")
	return nil
}
