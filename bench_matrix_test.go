package wideleak

// Matrix-scheduler benchmarks: the shared-work payoff of POST
// /v1/batches measured through the daemon's real HTTP surface, recorded
// in BENCH_matrix.json by `make bench-matrix`.
//
// The mix is 8 seeds x 4 probe subsets whose expansions overlap heavily
// (each seed's four specs need 14 probe-cell runs sequentially but only
// 4 distinct cells), so the batch planner's dedup should beat the same
// specs as sequential independent requests by >=3x. The control mix has
// one spec per seed — nothing to share — so Batch vs Sequential there
// bounds the scheduler's overhead.
//
// Both paths run against ONE server whose cell and result tiers are
// pinned to a single entry: sequential requests then model the
// pre-memoization engine (every request re-runs its full expanded probe
// set), and the Batch/Sequential delta isolates the planner's
// intra-batch sharing. The cross-request memoization tier is measured
// separately (TestServer_CellRecombination, wideleakd_jobs_cell_*
// metrics). Key pools and world snapshots are prewarmed outside timing
// for every seed, so neither path pays RSA minting or world builds.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// benchBatchRoundTrip submits the specs as one batch, polls it to
// completion, and fetches every per-spec text table — the full client
// round trip for the batch API.
func benchBatchRoundTrip(b *testing.B, ts *httptest.Server, specs []RunSpec, wantOverlap bool) {
	b.Helper()
	body, err := json.Marshal(map[string]any{"specs": specs})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("batch submit = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(300 * time.Second)
	var st struct {
		State string     `json:"state"`
		Error string     `json:"error"`
		Stats BatchStats `json:"stats"`
	}
	for {
		if time.Now().After(deadline) {
			b.Fatalf("batch %s never finished", sub.ID)
		}
		resp, err := http.Get(ts.URL + "/v1/batches/" + sub.ID)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			b.Fatalf("batch %s reached %s: %s", sub.ID, st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Sanity: the overlap mix must actually dedup, the control must not —
	// otherwise the recorded ratio measures the wrong thing.
	if wantOverlap && st.Stats.CellsPlanned >= st.Stats.CellsNeeded {
		b.Fatalf("overlap mix planned %d of %d cells: no shared work", st.Stats.CellsPlanned, st.Stats.CellsNeeded)
	}

	for i := range specs {
		resp, err := http.Get(fmt.Sprintf("%s/v1/batches/%s/tables/%d?format=txt", ts.URL, sub.ID, i))
		if err != nil {
			b.Fatal(err)
		}
		var table bytes.Buffer
		table.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || table.Len() == 0 {
			b.Fatalf("table %d fetch = %d (%d bytes)", i, resp.StatusCode, table.Len())
		}
	}
}

func BenchmarkMatrix(b *testing.B) {
	srv := serve.New(serve.Config{Workers: 2, QueueSize: 64, CacheSize: 1, CellCacheSize: 1})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	const seeds = 8
	seed := func(i int) string { return fmt.Sprintf("bench-matrix-%d", i) }
	for i := 0; i < seeds; i++ {
		if _, err := srv.Prewarm(context.Background(), seed(i), 0, 0); err != nil {
			b.Fatal(err)
		}
	}

	apps := make([]string, 0, 4)
	for _, p := range Profiles()[:4] {
		apps = append(apps, p.Name)
	}
	// Four subsets per seed; q3 pulls in q2 (Requires), so their
	// expansions cost 4+4+3+3 = 14 cells run independently vs a union
	// of 4 — a 3.5x theoretical shared-work win per seed.
	subsets := [][]string{
		{"q1", "q2", "q3", "q4"},
		{"q1", "q3", "q4"},
		{"q2", "q3", "q4"},
		{"q1", "q2", "q3"},
	}
	var overlapping []RunSpec
	for i := 0; i < seeds; i++ {
		for _, probes := range subsets {
			overlapping = append(overlapping, RunSpec{Seed: seed(i), Profiles: apps, Probes: probes})
		}
	}
	// Control: one full-probe spec per seed — distinct worlds, distinct
	// cells, nothing for the planner to share.
	var control []RunSpec
	for i := 0; i < seeds; i++ {
		control = append(control, RunSpec{Seed: seed(i), Profiles: apps, Probes: subsets[0]})
	}

	b.Run("Overlapping_Batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchBatchRoundTrip(b, ts, overlapping, true)
		}
	})
	b.Run("Overlapping_Sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, spec := range overlapping {
				benchServeRoundTrip(b, ts, spec)
			}
		}
	})
	b.Run("Control_Batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchBatchRoundTrip(b, ts, control, false)
		}
	})
	b.Run("Control_Sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, spec := range control {
				benchServeRoundTrip(b, ts, spec)
			}
		}
	})
}
