package wideleak

// The benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTableI_Q1_WidevineUsage      — Table I col 1 (per-app classification)
//	BenchmarkTableI_Q2_ContentProtection  — Table I cols 2-4
//	BenchmarkTableI_Q3_KeyUsage           — Table I col 5
//	BenchmarkTableI_Q4_Playback           — Table I col 6
//	BenchmarkTableI_Full                  — the whole table, warm world, sequential
//	BenchmarkTableI_ProbeSubset           — q2+q3 only via probe selection, warm world
//	BenchmarkTableI_Full_Parallel{1,4,N}  — the whole study from a cold world at 1/4/NumCPU row workers
//	BenchmarkTableI_Full_WarmParallelN    — warm world, cold observations, NumCPU workers
//	BenchmarkWarmFixtures_ParallelN       — fixture pre-build (keyboxes + installs) on a bounded pool
//	BenchmarkFigure1_PlaybackFlow         — the Figure 1 message flow
//	BenchmarkE5_KeyboxRecovery            — §IV-D step 1 (memory scan)
//	BenchmarkE5_KeyLadder                 — §IV-D step 3 (ladder replay)
//	BenchmarkE5_FullChain                 — §IV-D end to end
//	BenchmarkE6_L1MemScan                 — the L1-resistance ablation
//
// Worlds are built once per benchmark (device provisioning mints 2048-bit
// RSA keys); iterations then measure the steady-state cost of the
// operation itself.

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/monitor"
	iwl "repro/internal/wideleak"
)

var (
	benchOnce  sync.Once
	benchStudy *iwl.Study
	benchErr   error
)

func benchSharedStudy(b *testing.B) *iwl.Study {
	b.Helper()
	benchOnce.Do(func() {
		w, err := iwl.NewWorld("bench", nil)
		if err != nil {
			benchErr = err
			return
		}
		benchStudy = iwl.NewStudy(w)
		// The shared study is the sequential baseline; the parallel
		// variants below request their own worker counts explicitly.
		benchStudy.Concurrency = 1
		// Warm every fixture (provisioning, RSA minting) outside timing.
		for _, p := range w.Profiles() {
			if _, err := benchStudy.RunQ4(p.Name); err != nil {
				benchErr = err
				return
			}
			if _, err := benchStudy.RunQ1(p.Name); err != nil {
				benchErr = err
				return
			}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// BenchmarkTableI_Q1_WidevineUsage measures one full instrumented
// observation cycle (L1 + L3 playback under CDM hooks and network MITM)
// plus the Q1 classification, per app.
func BenchmarkTableI_Q1_WidevineUsage(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		app := apps[i%len(apps)].Name
		if _, err := s.RunQ1(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Q2_ContentProtection measures asset download + protection
// probing on top of a fresh observation.
func BenchmarkTableI_Q2_ContentProtection(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		app := apps[i%len(apps)].Name
		if _, err := s.RunQ2(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Q3_KeyUsage measures manifest key-ID analysis (warm
// observation: the analysis itself is the operation under test).
func BenchmarkTableI_Q3_KeyUsage(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	for _, p := range apps {
		if _, err := s.RunQ3(p.Name); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunQ3(apps[i%len(apps)].Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Q4_Playback measures one discontinued-device playback and
// outcome classification per app.
func BenchmarkTableI_Q4_Playback(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunQ4(apps[i%len(apps)].Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Full regenerates the entire Table I from a warm world
// with cold observations — the cost of one complete study pass.
func BenchmarkTableI_Full(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		table, err := s.BuildTable()
		if err != nil {
			b.Fatal(err)
		}
		if diffs := table.Diff(iwl.PaperTable()); len(diffs) != 0 {
			b.Fatalf("table diverged from paper: %v", diffs)
		}
	}
}

// BenchmarkTableI_Full_Faulty is BenchmarkTableI_Full under a 25%
// transient fault plan: the retry overhead (extra attempts, virtual-clock
// backoff, jitter draws) of a full study pass. The table must still match
// the paper — faults are masked, not tolerated-by-luck.
func BenchmarkTableI_Full_Faulty(b *testing.B) {
	w, err := iwl.NewWorld("bench-faulty", nil)
	if err != nil {
		b.Fatal(err)
	}
	w.InstallFaults(iwl.FaultSpec{Seed: "bench", Default: iwl.TransientFaults(0.25)})
	s := iwl.NewStudy(w)
	s.Concurrency = 1
	// Warm fixtures and lazy device provisioning (the RSA phase) outside
	// timing with one discarded pass, so iterations measure the same
	// steady state as BenchmarkTableI_Full — plus the fault/retry work.
	if err := w.WarmFixtures(context.Background(), runtime.GOMAXPROCS(0)); err != nil {
		b.Fatal(err)
	}
	if _, err := s.BuildTable(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		table, err := s.BuildTable()
		if err != nil {
			b.Fatal(err)
		}
		if diffs := table.Diff(iwl.PaperTable()); len(diffs) != 0 {
			b.Fatalf("faulty table diverged from paper: %v", diffs)
		}
	}
	if w.FaultPlan().Stats().Total() == 0 {
		b.Fatal("no faults injected")
	}
}

// BenchmarkTableI_ProbeSubset measures a registry-restricted pass (q2+q3
// only) over a warm world: the shared observation plus manifest analysis,
// with no Q1/Q4 device playbacks — the cost floor of probe selection.
func BenchmarkTableI_ProbeSubset(b *testing.B) {
	shared := benchSharedStudy(b)
	s := iwl.NewStudy(shared.World)
	s.Concurrency = 1
	s.Probes = []string{"q2", "q3"}
	if _, err := s.BuildTable(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		if _, err := s.BuildTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchColdTable measures one complete study from scratch — world build,
// per-app device minting and provisioning (the 2048-bit RSA phase), every
// observation, and table assembly — at the given row parallelism. This is
// the end-to-end cost the parallel engine attacks: fixtures and rows for
// different apps draw from independent deterministic streams, so workers
// never contend on a shared rand cursor or a coarse world lock.
func benchColdTable(b *testing.B, parallelism int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := iwl.NewWorld("bench-cold", nil)
		if err != nil {
			b.Fatal(err)
		}
		s := iwl.NewStudy(w)
		table, err := s.BuildTableParallel(parallelism)
		if err != nil {
			b.Fatal(err)
		}
		if diffs := table.Diff(iwl.PaperTable()); len(diffs) != 0 {
			b.Fatalf("table diverged from paper: %v", diffs)
		}
	}
}

// BenchmarkTableI_Full_Parallel1 is the sequential cold-world baseline:
// the same work as the parallel variants with one row in flight.
func BenchmarkTableI_Full_Parallel1(b *testing.B) { benchColdTable(b, 1) }

// BenchmarkTableI_Full_Parallel4 builds four app rows concurrently.
func BenchmarkTableI_Full_Parallel4(b *testing.B) { benchColdTable(b, 4) }

// BenchmarkTableI_Full_ParallelN builds rows with one worker per logical
// CPU (runtime.GOMAXPROCS(0)).
func BenchmarkTableI_Full_ParallelN(b *testing.B) { benchColdTable(b, runtime.GOMAXPROCS(0)) }

// BenchmarkTableI_Full_WarmParallelN isolates the observation phase: warm
// fixtures (no RSA minting in the loop), cold observations, rows fanned
// out over one worker per CPU — the parallel counterpart of
// BenchmarkTableI_Full.
func BenchmarkTableI_Full_WarmParallelN(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		table, err := s.BuildTableParallel(runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if diffs := table.Diff(iwl.PaperTable()); len(diffs) != 0 {
			b.Fatalf("table diverged from paper: %v", diffs)
		}
	}
}

// BenchmarkColdStart_Pooled is the keypool's headline number: the same
// end-to-end cold study as BenchmarkTableI_Full_Parallel1 — world build,
// provisioning, every observation, table assembly — but with the seed's
// key pool pre-minted outside timing, so iterations pay everything EXCEPT
// 2048-bit key generation. Compare against Parallel1 to read off the RSA
// share of the cold start.
func BenchmarkColdStart_Pooled(b *testing.B) {
	pool := iwl.NewKeyPool("bench-cold")
	if err := pool.Prewarm(context.Background(), iwl.DeviceStableIDs(nil), runtime.GOMAXPROCS(0)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := iwl.NewWorld("bench-cold", nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.AttachKeyPool(pool); err != nil {
			b.Fatal(err)
		}
		table, err := iwl.NewStudy(w).BuildTableParallel(1)
		if err != nil {
			b.Fatal(err)
		}
		if diffs := table.Diff(iwl.PaperTable()); len(diffs) != 0 {
			b.Fatalf("table diverged from paper: %v", diffs)
		}
		if mints := w.Registry.MintCount(); mints != 0 {
			b.Fatalf("pooled cold start minted %d keys, want 0", mints)
		}
	}
}

// BenchmarkWorldSnapshot_Restore measures RestoreWorld over a fully
// warmed default-world snapshot — the milliseconds a snapshot-restored
// world costs in place of the seconds a cold build spends minting keys.
func BenchmarkWorldSnapshot_Restore(b *testing.B) {
	w, err := iwl.NewWorld("bench-snapshot", nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := iwl.NewStudy(w).BuildTable(); err != nil {
		b.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored, err := iwl.RestoreWorld(snap)
		if err != nil {
			b.Fatal(err)
		}
		if got := len(restored.Profiles()); got == 0 {
			b.Fatal("restored world has no profiles")
		}
	}
}

// BenchmarkWarmFixtures_ParallelN measures pre-building every fixture on a
// bounded pool from a cold world: keybox minting and app installs. (Device
// RSA keys are minted later, at each device's first provisioning.)
func BenchmarkWarmFixtures_ParallelN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := iwl.NewWorld("bench-warmup", nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WarmFixtures(context.Background(), runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1_PlaybackFlow measures one protected playback through the
// full Figure 1 chain (framework → DRM server → CDM → license server/CDN).
func BenchmarkFigure1_PlaybackFlow(b *testing.B) {
	s := benchSharedStudy(b)
	f, err := s.World.Fixture("Showtime")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := f.App("pixel").Play(iwl.ContentID); !r.Played() {
			b.Fatalf("playback failed: %+v", r)
		}
	}
}

// BenchmarkE5_KeyboxRecovery measures the §IV-D memory scan against a warm
// L3 DRM process.
func BenchmarkE5_KeyboxRecovery(b *testing.B) {
	s := benchSharedStudy(b)
	f, err := s.World.Fixture("Netflix")
	if err != nil {
		b.Fatal(err)
	}
	if r := f.App("nexus5").Play(iwl.ContentID); !r.Played() {
		b.Fatalf("playback failed: %+v", r)
	}
	mon := monitor.New()
	handle, err := mon.AttachProcess(f.Device("nexus5").DRMProcess)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.RecoverKeybox(handle); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_KeyLadder measures the ladder replay (RSA unwrap + OAEP +
// CMAC KDF + CBC unwrap) over a captured trace.
func BenchmarkE5_KeyLadder(b *testing.B) {
	s := benchSharedStudy(b)
	f, err := s.World.Fixture("Netflix")
	if err != nil {
		b.Fatal(err)
	}
	mon := monitor.New()
	mon.AttachCDM(f.Device("nexus5").Engine)
	defer mon.Detach()
	if r := f.App("nexus5").Play(iwl.ContentID); !r.Played() {
		b.Fatalf("playback failed: %+v", r)
	}
	events := mon.Events()
	handle, err := mon.AttachProcess(f.Device("nexus5").DRMProcess)
	if err != nil {
		b.Fatal(err)
	}
	kb, err := attack.RecoverKeybox(handle)
	if err != nil {
		b.Fatal(err)
	}
	rsaKey, err := attack.RecoverDeviceRSAKey(kb, f.Device("nexus5").Storage)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys, err := attack.RecoverContentKeys(rsaKey, events)
		if err != nil {
			b.Fatal(err)
		}
		if len(keys) == 0 {
			b.Fatal("no keys recovered")
		}
	}
}

// BenchmarkE5_FullChain measures the complete §IV-D attack end to end
// (monitored playback + scan + unwrap + replay + rip).
func BenchmarkE5_FullChain(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.RunPracticalImpact("Netflix")
		if err != nil {
			b.Fatal(err)
		}
		if !res.DRMFree {
			b.Fatalf("attack failed: %s", res.FailureReason)
		}
	}
}

// BenchmarkE7_ForgedHDLicense measures the §V-C future-work experiment:
// forging an "L1" license request with recovered material to unlock HD.
func BenchmarkE7_ForgedHDLicense(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.RunHDForgery("Netflix")
		if err != nil {
			b.Fatal(err)
		}
		if !res.HDKeysGranted || res.MaxHeight != 1080 {
			b.Fatalf("forgery failed: %+v", res)
		}
	}
}

// BenchmarkE6_L1MemScan measures the (failing) scan against an L1 device's
// normal-world memory — the resistance ablation.
func BenchmarkE6_L1MemScan(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := s.RunL1Resistance("Showtime")
		if err != nil {
			b.Fatal(err)
		}
		if found {
			b.Fatal("keybox found on L1")
		}
	}
}
