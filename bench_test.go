package wideleak

// The benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTableI_Q1_WidevineUsage      — Table I col 1 (per-app classification)
//	BenchmarkTableI_Q2_ContentProtection  — Table I cols 2-4
//	BenchmarkTableI_Q3_KeyUsage           — Table I col 5
//	BenchmarkTableI_Q4_Playback           — Table I col 6
//	BenchmarkTableI_Full                  — the whole table from a cold world
//	BenchmarkFigure1_PlaybackFlow         — the Figure 1 message flow
//	BenchmarkE5_KeyboxRecovery            — §IV-D step 1 (memory scan)
//	BenchmarkE5_KeyLadder                 — §IV-D step 3 (ladder replay)
//	BenchmarkE5_FullChain                 — §IV-D end to end
//	BenchmarkE6_L1MemScan                 — the L1-resistance ablation
//
// Worlds are built once per benchmark (device provisioning mints 2048-bit
// RSA keys); iterations then measure the steady-state cost of the
// operation itself.

import (
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/monitor"
	iwl "repro/internal/wideleak"
)

var (
	benchOnce  sync.Once
	benchStudy *iwl.Study
	benchErr   error
)

func benchSharedStudy(b *testing.B) *iwl.Study {
	b.Helper()
	benchOnce.Do(func() {
		w, err := iwl.NewWorld("bench", nil)
		if err != nil {
			benchErr = err
			return
		}
		benchStudy = iwl.NewStudy(w)
		// Warm every fixture (provisioning, RSA minting) outside timing.
		for _, p := range w.Profiles() {
			if _, err := benchStudy.RunQ4(p.Name); err != nil {
				benchErr = err
				return
			}
			if _, err := benchStudy.RunQ1(p.Name); err != nil {
				benchErr = err
				return
			}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// BenchmarkTableI_Q1_WidevineUsage measures one full instrumented
// observation cycle (L1 + L3 playback under CDM hooks and network MITM)
// plus the Q1 classification, per app.
func BenchmarkTableI_Q1_WidevineUsage(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		app := apps[i%len(apps)].Name
		if _, err := s.RunQ1(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Q2_ContentProtection measures asset download + protection
// probing on top of a fresh observation.
func BenchmarkTableI_Q2_ContentProtection(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		app := apps[i%len(apps)].Name
		if _, err := s.RunQ2(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Q3_KeyUsage measures manifest key-ID analysis (warm
// observation: the analysis itself is the operation under test).
func BenchmarkTableI_Q3_KeyUsage(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	for _, p := range apps {
		if _, err := s.RunQ3(p.Name); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunQ3(apps[i%len(apps)].Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Q4_Playback measures one discontinued-device playback and
// outcome classification per app.
func BenchmarkTableI_Q4_Playback(b *testing.B) {
	s := benchSharedStudy(b)
	apps := s.World.Profiles()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunQ4(apps[i%len(apps)].Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Full regenerates the entire Table I from a warm world
// with cold observations — the cost of one complete study pass.
func BenchmarkTableI_Full(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetObservations()
		table, err := s.BuildTable()
		if err != nil {
			b.Fatal(err)
		}
		if diffs := table.Diff(iwl.PaperTable()); len(diffs) != 0 {
			b.Fatalf("table diverged from paper: %v", diffs)
		}
	}
}

// BenchmarkFigure1_PlaybackFlow measures one protected playback through the
// full Figure 1 chain (framework → DRM server → CDM → license server/CDN).
func BenchmarkFigure1_PlaybackFlow(b *testing.B) {
	s := benchSharedStudy(b)
	f, err := s.World.Fixture("Showtime")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := f.PixelApp.Play(iwl.ContentID); !r.Played() {
			b.Fatalf("playback failed: %+v", r)
		}
	}
}

// BenchmarkE5_KeyboxRecovery measures the §IV-D memory scan against a warm
// L3 DRM process.
func BenchmarkE5_KeyboxRecovery(b *testing.B) {
	s := benchSharedStudy(b)
	f, err := s.World.Fixture("Netflix")
	if err != nil {
		b.Fatal(err)
	}
	if r := f.Nexus5App.Play(iwl.ContentID); !r.Played() {
		b.Fatalf("playback failed: %+v", r)
	}
	mon := monitor.New()
	handle, err := mon.AttachProcess(f.Nexus5Device.DRMProcess)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.RecoverKeybox(handle); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_KeyLadder measures the ladder replay (RSA unwrap + OAEP +
// CMAC KDF + CBC unwrap) over a captured trace.
func BenchmarkE5_KeyLadder(b *testing.B) {
	s := benchSharedStudy(b)
	f, err := s.World.Fixture("Netflix")
	if err != nil {
		b.Fatal(err)
	}
	mon := monitor.New()
	mon.AttachCDM(f.Nexus5Device.Engine)
	defer mon.Detach()
	if r := f.Nexus5App.Play(iwl.ContentID); !r.Played() {
		b.Fatalf("playback failed: %+v", r)
	}
	events := mon.Events()
	handle, err := mon.AttachProcess(f.Nexus5Device.DRMProcess)
	if err != nil {
		b.Fatal(err)
	}
	kb, err := attack.RecoverKeybox(handle)
	if err != nil {
		b.Fatal(err)
	}
	rsaKey, err := attack.RecoverDeviceRSAKey(kb, f.Nexus5Device.Storage)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys, err := attack.RecoverContentKeys(rsaKey, events)
		if err != nil {
			b.Fatal(err)
		}
		if len(keys) == 0 {
			b.Fatal("no keys recovered")
		}
	}
}

// BenchmarkE5_FullChain measures the complete §IV-D attack end to end
// (monitored playback + scan + unwrap + replay + rip).
func BenchmarkE5_FullChain(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.RunPracticalImpact("Netflix")
		if err != nil {
			b.Fatal(err)
		}
		if !res.DRMFree {
			b.Fatalf("attack failed: %s", res.FailureReason)
		}
	}
}

// BenchmarkE7_ForgedHDLicense measures the §V-C future-work experiment:
// forging an "L1" license request with recovered material to unlock HD.
func BenchmarkE7_ForgedHDLicense(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.RunHDForgery("Netflix")
		if err != nil {
			b.Fatal(err)
		}
		if !res.HDKeysGranted || res.MaxHeight != 1080 {
			b.Fatalf("forgery failed: %+v", res)
		}
	}
}

// BenchmarkE6_L1MemScan measures the (failing) scan against an L1 device's
// normal-world memory — the resistance ablation.
func BenchmarkE6_L1MemScan(b *testing.B) {
	s := benchSharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := s.RunL1Resistance("Showtime")
		if err != nil {
			b.Fatal(err)
		}
		if found {
			b.Fatal("keybox found on L1")
		}
	}
}
