// Package cenc implements ISO/IEC 23001-7 Common Encryption over the
// fragmented-MP4 segments of internal/mp4. Two protection schemes are
// supported, matching what Widevine ships:
//
//   - "cenc": AES-128-CTR. Each sample has an 8-byte IV (the counter block
//     is IV || 64-bit block counter); the keystream runs continuously
//     across a sample's protected subsample ranges.
//   - "cbcs": AES-128-CBC with the 1:9 pattern — within each protected
//     range, one 16-byte block is encrypted then nine are left clear;
//     trailing partial blocks stay clear.
//
// Subsample encryption keeps codec headers (e.g. NAL headers) in the clear,
// which is how real packagers operate and what the study's probes expect.
package cenc

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"

	"repro/internal/mp4"
)

// KeySize is the content key size (AES-128).
const KeySize = 16

// cbcs pattern: 1 encrypted block followed by 9 clear blocks.
const (
	cbcsCryptBlocks = 1
	cbcsSkipBlocks  = 9
)

// Errors returned by this package.
var (
	// ErrBadScheme is returned for unknown protection schemes.
	ErrBadScheme = errors.New("cenc: unknown protection scheme")
	// ErrBadKey is returned for keys of the wrong size.
	ErrBadKey = errors.New("cenc: content key must be 16 bytes")
	// ErrNotEncrypted is returned when decrypting a segment with no senc.
	ErrNotEncrypted = errors.New("cenc: segment carries no sample encryption")
	// ErrSubsampleMismatch is returned when a subsample map does not cover
	// the sample exactly.
	ErrSubsampleMismatch = errors.New("cenc: subsample map does not match sample size")
)

// Encryptor encrypts media segments in place under one content key.
type Encryptor struct {
	scheme string
	block  cipher.Block
	key    []byte
	rand   io.Reader
}

// NewEncryptor builds an encryptor for the given scheme ("cenc" or "cbcs").
// rand supplies per-sample IVs.
func NewEncryptor(scheme string, key []byte, rand io.Reader) (*Encryptor, error) {
	if scheme != mp4.SchemeCENC && scheme != mp4.SchemeCBCS {
		return nil, fmt.Errorf("%w: %q", ErrBadScheme, scheme)
	}
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w: got %d", ErrBadKey, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cenc: %w", err)
	}
	return &Encryptor{scheme: scheme, block: block, key: append([]byte(nil), key...), rand: rand}, nil
}

// Scheme returns the encryptor's protection scheme.
func (e *Encryptor) Scheme() string { return e.scheme }

// EncryptSegment encrypts every sample of seg in place, leaving the first
// clearPrefix bytes of each sample unencrypted (subsample encryption), and
// attaches the senc table. clearPrefix zero yields full-sample protection.
func (e *Encryptor) EncryptSegment(seg *mp4.MediaSegment, clearPrefix int) error {
	if clearPrefix < 0 || clearPrefix > 0xFFFF {
		return fmt.Errorf("cenc: clear prefix %d out of range", clearPrefix)
	}
	enc := &mp4.SampleEncryption{Entries: make([]mp4.SampleEncryptionEntry, 0, len(seg.SampleData))}
	for i, sample := range seg.SampleData {
		var iv [8]byte
		if _, err := io.ReadFull(e.rand, iv[:]); err != nil {
			return fmt.Errorf("cenc: sample %d iv: %w", i, err)
		}
		entry := mp4.SampleEncryptionEntry{IV: iv}
		clear := clearPrefix
		if clear > len(sample) {
			clear = len(sample)
		}
		entry.Subsamples = []mp4.SubsampleEntry{{
			ClearBytes:     uint16(clear),
			ProtectedBytes: uint32(len(sample) - clear),
		}}
		out, err := e.cryptSample(sample, iv, entry.Subsamples, true)
		if err != nil {
			return fmt.Errorf("cenc: sample %d: %w", i, err)
		}
		seg.SampleData[i] = out
		enc.Entries = append(enc.Entries, entry)
	}
	seg.Encryption = enc
	return nil
}

// DecryptSegment decrypts seg in place with the given content key, removing
// the senc table on success. The scheme must match the one used to encrypt.
func DecryptSegment(scheme string, key []byte, seg *mp4.MediaSegment) error {
	if seg.Encryption == nil {
		return ErrNotEncrypted
	}
	if len(seg.Encryption.Entries) != len(seg.SampleData) {
		return fmt.Errorf("cenc: %d senc entries for %d samples",
			len(seg.Encryption.Entries), len(seg.SampleData))
	}
	e, err := NewEncryptor(scheme, key, nil)
	if err != nil {
		return err
	}
	for i, sample := range seg.SampleData {
		entry := seg.Encryption.Entries[i]
		out, err := e.cryptSample(sample, entry.IV, entry.Subsamples, false)
		if err != nil {
			return fmt.Errorf("cenc: sample %d: %w", i, err)
		}
		seg.SampleData[i] = out
	}
	seg.Encryption = nil
	return nil
}

// DecryptSample decrypts one sample given its senc entry. The attack's
// media ripper uses this directly on dumped samples.
func DecryptSample(scheme string, key []byte, iv [8]byte, subsamples []mp4.SubsampleEntry, data []byte) ([]byte, error) {
	e, err := NewEncryptor(scheme, key, nil)
	if err != nil {
		return nil, err
	}
	return e.cryptSample(data, iv, subsamples, false)
}

// cryptSample applies the scheme to one sample. For CTR, encryption and
// decryption are the same operation; for CBC they differ by direction.
func (e *Encryptor) cryptSample(data []byte, iv [8]byte, subsamples []mp4.SubsampleEntry, encrypt bool) ([]byte, error) {
	total := 0
	for _, sub := range subsamples {
		total += int(sub.ClearBytes) + int(sub.ProtectedBytes)
	}
	if len(subsamples) > 0 && total != len(data) {
		return nil, fmt.Errorf("%w: map %d vs sample %d", ErrSubsampleMismatch, total, len(data))
	}
	out := append([]byte(nil), data...)
	if len(subsamples) == 0 {
		subsamples = []mp4.SubsampleEntry{{ProtectedBytes: uint32(len(data))}}
	}

	switch e.scheme {
	case mp4.SchemeCENC:
		var counter [16]byte
		copy(counter[:8], iv[:])
		stream := cipher.NewCTR(e.block, counter[:])
		off := 0
		for _, sub := range subsamples {
			off += int(sub.ClearBytes)
			end := off + int(sub.ProtectedBytes)
			stream.XORKeyStream(out[off:end], out[off:end])
			off = end
		}
	case mp4.SchemeCBCS:
		var fullIV [16]byte
		copy(fullIV[:8], iv[:])
		off := 0
		for _, sub := range subsamples {
			off += int(sub.ClearBytes)
			e.cryptPatternCBC(out[off:off+int(sub.ProtectedBytes)], fullIV, encrypt)
			off += int(sub.ProtectedBytes)
		}
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadScheme, e.scheme)
	}
	return out, nil
}

// cryptPatternCBC applies 1:9 pattern CBC over one protected range. Each
// protected range restarts the CBC chain at the sample IV, per 23001-7.
func (e *Encryptor) cryptPatternCBC(data []byte, iv [16]byte, encrypt bool) {
	prev := iv
	pattern := (cbcsCryptBlocks + cbcsSkipBlocks) * 16
	for off := 0; off+16 <= len(data); off += pattern {
		block := data[off : off+16]
		if encrypt {
			for i := range block {
				block[i] ^= prev[i]
			}
			e.block.Encrypt(block, block)
			copy(prev[:], block)
		} else {
			var ct [16]byte
			copy(ct[:], block)
			e.block.Decrypt(block, block)
			for i := range block {
				block[i] ^= prev[i]
			}
			prev = ct
		}
	}
}

// RandomKey draws a fresh 16-byte content key from rand.
func RandomKey(rand io.Reader) ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rand, key); err != nil {
		return nil, fmt.Errorf("cenc: generate key: %w", err)
	}
	return key, nil
}

// RandomKID draws a fresh 16-byte key ID from rand.
func RandomKID(rand io.Reader) ([16]byte, error) {
	var kid [16]byte
	if _, err := io.ReadFull(rand, kid[:]); err != nil {
		return kid, fmt.Errorf("cenc: generate kid: %w", err)
	}
	return kid, nil
}

// KIDToString renders a key ID as lowercase hex, the form MPDs carry in
// cenc:default_KID attributes (without dashes, for simplicity).
func KIDToString(kid [16]byte) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 32)
	for i, b := range kid {
		out[2*i] = hexdigits[b>>4]
		out[2*i+1] = hexdigits[b&0xF]
	}
	return string(out)
}

// ParseKID parses the hex form produced by KIDToString.
func ParseKID(s string) ([16]byte, error) {
	var kid [16]byte
	if len(s) != 32 {
		return kid, fmt.Errorf("cenc: kid %q must be 32 hex chars", s)
	}
	for i := 0; i < 16; i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return kid, fmt.Errorf("cenc: kid %q has non-hex characters", s)
		}
		kid[i] = hi<<4 | lo
	}
	return kid, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// CounterForSample exposes the CTR counter-block construction (IV || 0)
// for the attack's independent decryption path.
func CounterForSample(iv [8]byte) [16]byte {
	var counter [16]byte
	copy(counter[:8], iv[:])
	return counter
}
