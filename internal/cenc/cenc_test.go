package cenc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mp4"
	"repro/internal/wvcrypto"
)

func testSegment(samples ...[]byte) *mp4.MediaSegment {
	data := make([][]byte, len(samples))
	for i, s := range samples {
		data[i] = append([]byte(nil), s...)
	}
	return &mp4.MediaSegment{SequenceNumber: 1, TrackID: 1, SampleData: data}
}

func testContentKey() []byte {
	return []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
}

func TestEncryptDecryptSegment_CENC(t *testing.T) {
	key := testContentKey()
	original := [][]byte{
		bytes.Repeat([]byte{0xAA}, 400),
		bytes.Repeat([]byte{0xBB}, 33),
		[]byte("tiny"),
	}
	seg := testSegment(original...)
	enc, err := NewEncryptor(mp4.SchemeCENC, key, wvcrypto.NewDeterministicReader("iv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.EncryptSegment(seg, 16); err != nil {
		t.Fatal(err)
	}
	if seg.Encryption == nil || len(seg.Encryption.Entries) != 3 {
		t.Fatal("missing senc")
	}
	// First 16 bytes of each sample stay clear.
	if !bytes.Equal(seg.SampleData[0][:16], original[0][:16]) {
		t.Error("clear prefix was encrypted")
	}
	// Protected region changed.
	if bytes.Equal(seg.SampleData[0][16:], original[0][16:]) {
		t.Error("protected region unchanged")
	}
	// Sample shorter than the prefix stays fully clear.
	if !bytes.Equal(seg.SampleData[2], original[2]) {
		t.Error("short sample modified")
	}

	if err := DecryptSegment(mp4.SchemeCENC, key, seg); err != nil {
		t.Fatal(err)
	}
	for i := range original {
		if !bytes.Equal(seg.SampleData[i], original[i]) {
			t.Errorf("sample %d roundtrip mismatch", i)
		}
	}
	if seg.Encryption != nil {
		t.Error("senc not cleared after decryption")
	}
}

func TestEncryptDecryptSegment_CBCS(t *testing.T) {
	key := testContentKey()
	original := [][]byte{
		bytes.Repeat([]byte{0xCC}, 1000),
		bytes.Repeat([]byte{0xDD}, 170), // exercises pattern wrap
	}
	seg := testSegment(original...)
	enc, err := NewEncryptor(mp4.SchemeCBCS, key, wvcrypto.NewDeterministicReader("iv2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.EncryptSegment(seg, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(seg.SampleData[0], original[0]) {
		t.Error("cbcs left sample unchanged")
	}
	// 1:9 pattern: the second block (bytes 16..32) is clear.
	if !bytes.Equal(seg.SampleData[0][16:32], original[0][16:32]) {
		t.Error("cbcs pattern skip block modified")
	}
	if err := DecryptSegment(mp4.SchemeCBCS, key, seg); err != nil {
		t.Fatal(err)
	}
	for i := range original {
		if !bytes.Equal(seg.SampleData[i], original[i]) {
			t.Errorf("cbcs sample %d roundtrip mismatch", i)
		}
	}
}

func TestDecrypt_WrongKeyGarbles(t *testing.T) {
	key := testContentKey()
	wrong := bytes.Repeat([]byte{0xFF}, 16)
	original := bytes.Repeat([]byte{0x11}, 256)
	seg := testSegment(original)
	enc, err := NewEncryptor(mp4.SchemeCENC, key, wvcrypto.NewDeterministicReader("iv3"))
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.EncryptSegment(seg, 0); err != nil {
		t.Fatal(err)
	}
	if err := DecryptSegment(mp4.SchemeCENC, wrong, seg); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(seg.SampleData[0], original) {
		t.Error("wrong key produced the original plaintext")
	}
}

func TestDecryptSegment_NotEncrypted(t *testing.T) {
	seg := testSegment([]byte("clear"))
	if err := DecryptSegment(mp4.SchemeCENC, testContentKey(), seg); !errors.Is(err, ErrNotEncrypted) {
		t.Errorf("err = %v, want ErrNotEncrypted", err)
	}
}

func TestNewEncryptor_Validation(t *testing.T) {
	if _, err := NewEncryptor("wxyz", testContentKey(), nil); !errors.Is(err, ErrBadScheme) {
		t.Errorf("bad scheme err = %v", err)
	}
	if _, err := NewEncryptor(mp4.SchemeCENC, []byte("short"), nil); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad key err = %v", err)
	}
}

func TestDecryptSample_SubsampleMismatch(t *testing.T) {
	subs := []mp4.SubsampleEntry{{ClearBytes: 4, ProtectedBytes: 100}}
	_, err := DecryptSample(mp4.SchemeCENC, testContentKey(), [8]byte{}, subs, []byte("too short"))
	if !errors.Is(err, ErrSubsampleMismatch) {
		t.Errorf("err = %v, want ErrSubsampleMismatch", err)
	}
}

func TestDecryptSample_NoSubsamplesIsFullSample(t *testing.T) {
	key := testContentKey()
	plain := []byte("full sample protection path")
	enc, err := NewEncryptor(mp4.SchemeCENC, key, wvcrypto.NewDeterministicReader("fs"))
	if err != nil {
		t.Fatal(err)
	}
	seg := testSegment(plain)
	if err := enc.EncryptSegment(seg, 0); err != nil {
		t.Fatal(err)
	}
	iv := seg.Encryption.Entries[0].IV
	// Decrypt with a nil subsample map → full-sample.
	got, err := DecryptSample(mp4.SchemeCENC, key, iv, nil, seg.SampleData[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Error("full-sample decrypt mismatch")
	}
}

// Property: encrypt/decrypt round-trips for both schemes, any payloads and
// any clear prefix.
func TestRoundTrip_Property(t *testing.T) {
	prop := func(key [16]byte, samples [][]byte, prefix uint8, useCBCS bool) bool {
		if len(samples) == 0 {
			samples = [][]byte{{1, 2, 3}}
		}
		if len(samples) > 20 {
			samples = samples[:20]
		}
		scheme := mp4.SchemeCENC
		if useCBCS {
			scheme = mp4.SchemeCBCS
		}
		originals := make([][]byte, len(samples))
		for i := range samples {
			originals[i] = append([]byte(nil), samples[i]...)
		}
		seg := testSegment(samples...)
		enc, err := NewEncryptor(scheme, key[:], wvcrypto.NewDeterministicReader("prop"))
		if err != nil {
			return false
		}
		if err := enc.EncryptSegment(seg, int(prefix)); err != nil {
			return false
		}
		if err := DecryptSegment(scheme, key[:], seg); err != nil {
			return false
		}
		for i := range originals {
			if !bytes.Equal(seg.SampleData[i], originals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ciphertext survives an mp4 marshal/parse cycle and still
// decrypts (the packager→CDN→attack path).
func TestRoundTripThroughMP4_Property(t *testing.T) {
	prop := func(key [16]byte, payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		original := append([]byte(nil), payload...)
		seg := testSegment(payload)
		enc, err := NewEncryptor(mp4.SchemeCENC, key[:], wvcrypto.NewDeterministicReader("mp4prop"))
		if err != nil {
			return false
		}
		if err := enc.EncryptSegment(seg, 4); err != nil {
			return false
		}
		wire, err := seg.Marshal()
		if err != nil {
			return false
		}
		parsed, err := mp4.ParseMediaSegment(wire)
		if err != nil {
			return false
		}
		if err := DecryptSegment(mp4.SchemeCENC, key[:], parsed); err != nil {
			return false
		}
		return bytes.Equal(parsed.SampleData[0], original)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKIDStringRoundTrip(t *testing.T) {
	kid := [16]byte{0xDE, 0xAD, 0xBE, 0xEF, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xA, 0xF}
	s := KIDToString(kid)
	if s != "deadbeef000102030405060708090a0f" {
		t.Errorf("KIDToString = %q", s)
	}
	got, err := ParseKID(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != kid {
		t.Error("ParseKID roundtrip mismatch")
	}
	if _, err := ParseKID("short"); err == nil {
		t.Error("short kid: want error")
	}
	if _, err := ParseKID("zz" + s[2:]); err == nil {
		t.Error("non-hex kid: want error")
	}
	upper, err := ParseKID("DEADBEEF000102030405060708090A0F")
	if err != nil || upper != kid {
		t.Errorf("uppercase kid parse = %v, %v", upper, err)
	}
}

func TestRandomKeyAndKID(t *testing.T) {
	r := wvcrypto.NewDeterministicReader("keys")
	k1, err := RandomKey(r)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := RandomKey(r)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Error("two random keys equal")
	}
	kid, err := RandomKID(r)
	if err != nil {
		t.Fatal(err)
	}
	if kid == ([16]byte{}) {
		t.Error("zero kid")
	}
}

func TestCounterForSample(t *testing.T) {
	iv := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	c := CounterForSample(iv)
	if !bytes.Equal(c[:8], iv[:]) || !bytes.Equal(c[8:], make([]byte, 8)) {
		t.Errorf("counter = %x", c)
	}
}

func BenchmarkEncryptSegment_CENC(b *testing.B) {
	key := testContentKey()
	payload := bytes.Repeat([]byte{0x5A}, 1<<20)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seg := testSegment(payload)
		enc, err := NewEncryptor(mp4.SchemeCENC, key, wvcrypto.NewDeterministicReader("bench"))
		if err != nil {
			b.Fatal(err)
		}
		if err := enc.EncryptSegment(seg, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptSegment_CBCS(b *testing.B) {
	key := testContentKey()
	payload := bytes.Repeat([]byte{0x5A}, 1<<20)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seg := testSegment(payload)
		enc, err := NewEncryptor(mp4.SchemeCBCS, key, wvcrypto.NewDeterministicReader("bench-cbcs"))
		if err != nil {
			b.Fatal(err)
		}
		if err := enc.EncryptSegment(seg, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptSegment_CENC(b *testing.B) {
	key := testContentKey()
	payload := bytes.Repeat([]byte{0x5A}, 1<<20)
	seg := testSegment(payload)
	enc, err := NewEncryptor(mp4.SchemeCENC, key, wvcrypto.NewDeterministicReader("bench-dec"))
	if err != nil {
		b.Fatal(err)
	}
	if err := enc.EncryptSegment(seg, 16); err != nil {
		b.Fatal(err)
	}
	encrypted := seg.SampleData[0]
	entry := seg.Encryption.Entries[0]
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecryptSample(mp4.SchemeCENC, key, entry.IV, entry.Subsamples, encrypted); err != nil {
			b.Fatal(err)
		}
	}
}
