package netsim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/wvcrypto"
)

func TestRetry_MasksTransientBurst(t *testing.T) {
	// Fail twice, then succeed: the default policy must absorb the burst.
	calls := 0
	p := &RetryPolicy{Clock: NewVirtualClock()}
	resp, err := p.Do(context.Background(), func() (Response, error) {
		calls++
		if calls <= 2 {
			return Response{}, fmt.Errorf("wrapped: %w", ErrConnDropped)
		}
		return Response{Status: 200}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || calls != 3 {
		t.Errorf("status %d after %d calls", resp.Status, calls)
	}
}

func TestRetry_ExhaustionWrapsLastError(t *testing.T) {
	calls := 0
	p := &RetryPolicy{MaxAttempts: 3, Clock: NewVirtualClock()}
	_, err := p.Do(context.Background(), func() (Response, error) {
		calls++
		return Response{}, fmt.Errorf("attempt %d: %w", calls, ErrServerBusy)
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, ErrServerBusy) {
		t.Errorf("underlying fault not matchable through the wrapper: %v", err)
	}
}

// TestRetry_NoRetryOnPinMismatch is the regression test for the core
// semantic rule: a pin mismatch is the paper's finding — the interceptor
// was detected — not a transient flake, so exactly one attempt is made.
func TestRetry_NoRetryOnPinMismatch(t *testing.T) {
	calls := 0
	p := &RetryPolicy{Clock: NewVirtualClock()}
	_, err := p.Do(context.Background(), func() (Response, error) {
		calls++
		return Response{}, fmt.Errorf("%w: host %q", ErrPinMismatch, "api.example")
	})
	if calls != 1 {
		t.Fatalf("pin mismatch retried: %d attempts", calls)
	}
	if !errors.Is(err, ErrPinMismatch) {
		t.Errorf("err = %v", err)
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Error("deterministic failure reported as retry exhaustion")
	}

	// End to end: a pinned client behind a MITM fails once, not five times.
	n := NewNetwork()
	handlerCalls := 0
	n.RegisterHost("api.example", func(Request) (Response, error) {
		handlerCalls++
		return Response{Status: 200}, nil
	})
	c := NewClient(n)
	c.Pin("api.example")
	c.InstallMITM(NewInterceptor())
	c.SetRetryPolicy(&RetryPolicy{Clock: NewVirtualClock()})
	if _, err := c.Do(Request{Host: "api.example"}); !errors.Is(err, ErrPinMismatch) {
		t.Fatalf("err = %v", err)
	}
	if handlerCalls != 0 {
		t.Errorf("handler reached %d times across a pin failure", handlerCalls)
	}
}

func TestRetry_NoRetryOnHandlerError(t *testing.T) {
	n := NewNetwork()
	calls := 0
	n.RegisterHost("api.example", func(Request) (Response, error) {
		calls++
		return Response{}, errors.New("404 not found")
	})
	c := NewClient(n)
	c.SetRetryPolicy(&RetryPolicy{Clock: NewVirtualClock()})
	if _, err := c.Do(Request{Host: "api.example"}); err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Errorf("handler error retried: %d calls", calls)
	}
}

func TestRetry_NoRetryOnUnknownHost(t *testing.T) {
	c := NewClient(NewNetwork())
	c.SetRetryPolicy(&RetryPolicy{Clock: NewVirtualClock()})
	if _, err := c.Do(Request{Host: "ghost.example"}); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("err = %v", err)
	}
}

func TestBackoff_GrowthAndCap(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
	want := []time.Duration{100, 200, 400, 500, 500, 500}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBackoff_DeterministicJitter(t *testing.T) {
	seq := func() []time.Duration {
		p := &RetryPolicy{Jitter: wvcrypto.NewDeterministicReader("jitter-seed")}
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = p.Backoff(i + 1)
		}
		return out
	}
	a, b := seq(), seq()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jittered backoff not reproducible at retry %d: %v vs %v", i+1, a[i], b[i])
		}
		base := &RetryPolicy{}
		if a[i] != base.Backoff(i+1) {
			varied = true
		}
		if a[i] < base.Backoff(i+1) {
			t.Errorf("jitter shortened backoff %d below base", i+1)
		}
	}
	if !varied {
		t.Error("jitter stream never changed any backoff")
	}
}

func TestRetry_ContextCancelStopsLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := &RetryPolicy{MaxAttempts: 100, Clock: NewVirtualClock()}
	_, err := p.Do(ctx, func() (Response, error) {
		calls++
		if calls == 2 {
			cancel()
		}
		return Response{}, ErrConnDropped
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

func TestRetry_BackoffWaitsOnPolicyClock(t *testing.T) {
	clock := NewVirtualClock()
	p := &RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, Clock: clock}
	_, err := p.Do(context.Background(), func() (Response, error) {
		return Response{}, ErrConnDropped
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatal(err)
	}
	// Three backoffs: 100 + 200 + 400 ms on the virtual timeline.
	if got, want := clock.Now(), 700*time.Millisecond; got != want {
		t.Errorf("virtual clock = %v, want %v", got, want)
	}
}

func TestRetry_DefaultBudgetCoversDefaultBurstCap(t *testing.T) {
	// The invariance guarantee rests on this arithmetic: a default policy
	// must survive the longest burst a default profile can produce.
	if DefaultMaxAttempts <= DefaultMaxConsecutive {
		t.Fatalf("DefaultMaxAttempts (%d) must exceed DefaultMaxConsecutive (%d)",
			DefaultMaxAttempts, DefaultMaxConsecutive)
	}

	// End to end: a client with the default policy on a saturated-rate,
	// default-capped network never surfaces a fault.
	n, plan := faultyNetwork("seed", FaultProfile{DropRate: 0.5, BusyRate: 0.25, FlapRate: 0.24})
	c := NewClient(n)
	c.SetRetryPolicy(DefaultRetryPolicy(wvcrypto.NewDeterministicReader("jitter"), NewVirtualClock()))
	for i := 0; i < 100; i++ {
		if _, err := c.Do(Request{Host: "api.example"}); err != nil {
			t.Fatalf("request %d surfaced %v despite retries", i, err)
		}
	}
	if plan.Stats().Total() == 0 {
		t.Fatal("no faults injected — the masking check is vacuous")
	}
}
