// Package netsim simulates the network between OTT apps and their backends
// at the message layer, with just enough TLS semantics to reproduce the
// paper's methodology: every host presents a certificate fingerprint, apps
// pin the expected fingerprints, and a Burp-style interceptor terminates
// connections with its own certificate — which breaks pinned apps until a
// Frida-style "SSL re-pinning" hook disables the check, after which the
// interceptor records every plaintext exchange.
//
// Real TLS handshakes are deliberately not simulated (see DESIGN.md): the
// study only needs the pin-check/bypass/record behaviour.
package netsim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by clients.
var (
	// ErrUnknownHost is returned for unregistered hosts.
	ErrUnknownHost = errors.New("netsim: unknown host")
	// ErrPinMismatch is returned when the presented certificate does not
	// match the app's pinned fingerprint.
	ErrPinMismatch = errors.New("netsim: certificate pin mismatch")
)

// Request is one application-layer message to a host.
type Request struct {
	Host string
	Path string
	Body []byte
}

// Response is the host's reply.
type Response struct {
	Status int
	Body   []byte
}

// Handler serves requests for one host.
type Handler func(req Request) (Response, error)

// RetryObserver receives one notification per failed transient connection
// attempt that a client's retry layer observed: the unreachable host, the
// 1-based attempt number, and the transport error. Observers run inline on
// the requesting goroutine and must be safe for concurrent use.
type RetryObserver func(host string, attempt int, err error)

// Network is the set of reachable hosts.
type Network struct {
	mu      sync.RWMutex
	hosts   map[string]hostEntry
	faults  *FaultPlan
	onRetry RetryObserver
}

type hostEntry struct {
	handler Handler
	cert    string
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{hosts: make(map[string]hostEntry)}
}

// RegisterHost attaches a handler to a hostname and mints its certificate
// fingerprint (derived from the hostname, so pins are stable).
func (n *Network) RegisterHost(host string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[host] = hostEntry{handler: h, cert: CertFingerprint(host)}
}

// CertFingerprint derives the genuine certificate fingerprint of a host.
func CertFingerprint(host string) string {
	sum := sha256.Sum256([]byte("cert-for-" + host))
	return hex.EncodeToString(sum[:8])
}

// lookup returns the host entry.
func (n *Network) lookup(host string) (hostEntry, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.hosts[host]
	return e, ok
}

// SetFaultPlan installs (or, with nil, removes) the network's fault
// layer. Every client connection attempt consults the plan.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = p
}

// FaultPlan returns the installed fault layer, nil when the network is
// perfect.
func (n *Network) FaultPlan() *FaultPlan {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.faults
}

// SetRetryObserver installs (or, with nil, removes) the network-wide
// observer for transient attempt failures. Every client on the network
// reports through it, so one sink sees the whole study's masked faults.
// To feed several consumers — an event log and a metrics exporter, say —
// combine them with CombineRetryObservers.
func (n *Network) SetRetryObserver(obs RetryObserver) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onRetry = obs
}

// RetryObserver returns the currently installed observer, nil when none
// is. Layers that add their own observation compose with whatever is
// already wired: CombineRetryObservers(n.RetryObserver(), extra).
func (n *Network) RetryObserver() RetryObserver {
	return n.retryObserver()
}

// CombineRetryObservers fans each retry notification out to every
// non-nil observer, in argument order. Nil observers are skipped; with
// none left it returns nil, so the result is always installable as-is.
func CombineRetryObservers(observers ...RetryObserver) RetryObserver {
	live := make([]RetryObserver, 0, len(observers))
	for _, obs := range observers {
		if obs != nil {
			live = append(live, obs)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(host string, attempt int, err error) {
		for _, obs := range live {
			obs(host, attempt, err)
		}
	}
}

// retryObserver returns the installed observer, nil when absent.
func (n *Network) retryObserver() RetryObserver {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.onRetry
}

// Exchange is one recorded plaintext request/response pair.
type Exchange struct {
	Request  Request
	Response Response
	Err      error
}

// Interceptor is the Burp-style proxy: it terminates connections with its
// own certificate and records plaintext traffic.
type Interceptor struct {
	mu       sync.Mutex
	cert     string
	captured []Exchange
}

// NewInterceptor mints a MITM proxy with its own certificate.
func NewInterceptor() *Interceptor {
	return &Interceptor{cert: CertFingerprint("mitm-proxy")}
}

// Captured returns a copy of every recorded exchange.
func (i *Interceptor) Captured() []Exchange {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Exchange, len(i.captured))
	copy(out, i.captured)
	return out
}

// record stores one exchange.
func (i *Interceptor) record(ex Exchange) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.captured = append(i.captured, ex)
}

// Client is one app's network stack: pins per host, an optional MITM in
// the path, and the patchable pin check.
type Client struct {
	network *Network

	mu             sync.Mutex
	pins           map[string]string
	mitm           *Interceptor
	pinningEnabled bool
	retry          *RetryPolicy
}

// NewClient builds an app network client over the network. Pinning starts
// enabled with no pins; call Pin per backend host.
func NewClient(network *Network) *Client {
	return &Client{
		network:        network,
		pins:           make(map[string]string),
		pinningEnabled: true,
	}
}

// Pin records the expected certificate for a host (what the app ships).
func (c *Client) Pin(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pins[host] = CertFingerprint(host)
}

// InstallMITM routes the client's traffic through an interceptor — the
// device-level proxy configuration step of the paper's setup.
func (c *Client) InstallMITM(i *Interceptor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mitm = i
}

// DisablePinning is the Frida "SSL re-pinning" patch: the app's certificate
// check becomes a no-op.
func (c *Client) DisablePinning() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pinningEnabled = false
}

// PinningEnabled reports whether the pin check is active.
func (c *Client) PinningEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pinningEnabled
}

// SetRetryPolicy installs (or, with nil, removes) the client's retry
// layer: Do and DoCtx then transparently retry transient transport
// faults. Deterministic failures (pin mismatch, unknown host, handler
// errors) are never retried.
func (c *Client) SetRetryPolicy(p *RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// RetryPolicy returns the installed retry policy, nil when absent.
func (c *Client) RetryPolicy() *RetryPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry
}

// Do performs one exchange, enforcing the pin against whatever certificate
// the connection presents (the host's, or the interceptor's when a MITM is
// in the path). With a retry policy installed, transient injected faults
// are retried transparently.
func (c *Client) Do(req Request) (Response, error) {
	return c.DoCtx(context.Background(), req)
}

// DoCtx is Do with a context bounding the whole exchange including retry
// backoff: cancellation or a deadline stops the retry loop.
func (c *Client) DoCtx(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	policy := c.retry
	c.mu.Unlock()
	if policy == nil {
		return c.attempt(ctx, req)
	}
	attempt := 0
	return policy.Do(ctx, func() (Response, error) {
		attempt++
		resp, err := c.attempt(ctx, req)
		if err != nil && IsTransient(err) {
			if obs := c.network.retryObserver(); obs != nil {
				obs(req.Host, attempt, err)
			}
		}
		return resp, err
	})
}

// attempt is one connection attempt: fault layer, pin check, handler.
func (c *Client) attempt(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	entry, ok := c.network.lookup(req.Host)
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownHost, req.Host)
	}

	c.mu.Lock()
	mitm := c.mitm
	pinning := c.pinningEnabled
	pin, pinned := c.pins[req.Host]
	c.mu.Unlock()

	// Connection-level faults strike before any certificate is presented;
	// a flapped handshake dies before the pin check could run.
	busy := false
	if plan := c.network.FaultPlan(); plan != nil {
		kind, latency := plan.decide(req.Host)
		if latency > 0 {
			if err := plan.sleep(ctx, latency); err != nil {
				return Response{}, err
			}
		}
		switch kind {
		case FaultDrop:
			return Response{}, fmt.Errorf("%w: host %q", ErrConnDropped, req.Host)
		case FaultFlap:
			return Response{}, fmt.Errorf("%w: host %q", ErrHandshakeFlap, req.Host)
		case FaultBusy:
			busy = true
		}
	}

	presented := entry.cert
	if mitm != nil {
		presented = mitm.cert
	}
	if pinning && pinned && presented != pin {
		return Response{}, fmt.Errorf("%w: host %q presented %s, pinned %s",
			ErrPinMismatch, req.Host, presented, pin)
	}

	// An injected 503 is an application-layer reply over an established
	// (and pin-checked) connection, so an interceptor in the path sees it.
	if busy {
		if mitm != nil {
			mitm.record(Exchange{Request: req, Response: Response{Status: 503}, Err: ErrServerBusy})
		}
		return Response{}, fmt.Errorf("%w: host %q", ErrServerBusy, req.Host)
	}

	resp, err := entry.handler(req)
	if mitm != nil {
		mitm.record(Exchange{Request: req, Response: resp, Err: err})
	}
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}
