package netsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Retry defaults. DefaultMaxAttempts exceeds DefaultMaxConsecutive by
// enough margin that a default policy is guaranteed to mask any
// burst-capped transient fault plan.
const (
	DefaultMaxAttempts = 5
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
)

// ErrRetriesExhausted wraps the last transient error once every attempt
// has been spent; errors.Is still matches the underlying fault through it.
var ErrRetriesExhausted = errors.New("netsim: retries exhausted")

// IsTransient reports whether err is a transport fault worth retrying.
// Deterministic outcomes — ErrPinMismatch above all, which the paper
// treats as a finding, never a flake — are excluded, as are handler
// errors (a 404 stays a 404 however often it is asked).
func IsTransient(err error) bool {
	return errors.Is(err, ErrConnDropped) ||
		errors.Is(err, ErrServerBusy) ||
		errors.Is(err, ErrHandshakeFlap)
}

// defaultRetryClock backs policies that did not inject a clock.
var defaultRetryClock = NewRealClock()

// RetryPolicy retries transient transport faults with capped exponential
// backoff plus deterministic jitter. The zero value behaves like the
// defaults with no jitter on the wall clock.
type RetryPolicy struct {
	MaxAttempts int           // total attempts (0 → DefaultMaxAttempts)
	BaseDelay   time.Duration // first backoff (0 → DefaultBaseDelay)
	MaxDelay    time.Duration // backoff cap (0 → DefaultMaxDelay)

	// Jitter supplies the randomness spreading retries out (nil disables
	// jitter). Studies pass a forked deterministic stream so runs stay
	// reproducible.
	Jitter io.Reader
	// Clock is what backoff sleeps on (nil → wall clock). Studies pass
	// the world's virtual clock so retries cost no real time.
	Clock Clock
}

// DefaultRetryPolicy returns the shared policy consumers install: default
// attempt budget and delays, jitter from the given stream, waiting on the
// given clock.
func DefaultRetryPolicy(jitter io.Reader, clock Clock) *RetryPolicy {
	return &RetryPolicy{Jitter: jitter, Clock: clock}
}

func (p *RetryPolicy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (p *RetryPolicy) clock() Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return defaultRetryClock
}

// Backoff returns the delay before retry number retry (1-based): base
// doubled per retry, capped at MaxDelay, plus up to half that again of
// jitter drawn from the policy's stream.
func (p *RetryPolicy) Backoff(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultMaxDelay
	}
	d := base
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= maxDelay {
			d = maxDelay
			break
		}
	}
	if d > maxDelay {
		d = maxDelay
	}
	if p.Jitter != nil {
		var b [8]byte
		if _, err := io.ReadFull(p.Jitter, b[:]); err == nil {
			d += time.Duration(binary.BigEndian.Uint64(b[:]) % uint64(d/2+1))
		}
	}
	return d
}

// Do runs fn until it succeeds, fails non-transiently, the context ends,
// or the attempt budget is spent — in which case the last transient error
// is returned wrapped in ErrRetriesExhausted.
func (p *RetryPolicy) Do(ctx context.Context, fn func() (Response, error)) (Response, error) {
	attempts := p.attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if err := p.clock().Sleep(ctx, p.Backoff(attempt-1)); err != nil {
				return Response{}, err
			}
		}
		resp, err := fn()
		if err == nil {
			return resp, nil
		}
		if !IsTransient(err) {
			return resp, err
		}
		lastErr = err
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
	}
	return Response{}, fmt.Errorf("%w: %d attempts: %w", ErrRetriesExhausted, attempts, lastErr)
}
