package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/wvcrypto"
)

// faultyNetwork registers two echo hosts and installs a fault plan with
// the given default profile, seeded from the label.
func faultyNetwork(seed string, def FaultProfile) (*Network, *FaultPlan) {
	n := NewNetwork()
	for _, host := range []string{"api.example", "cdn.example"} {
		host := host
		n.RegisterHost(host, func(req Request) (Response, error) {
			return Response{Status: 200, Body: append([]byte(host+":"), req.Body...)}, nil
		})
	}
	plan := NewFaultPlan(wvcrypto.NewDeterministicReader(seed), def)
	n.SetFaultPlan(plan)
	return n, plan
}

// outcomes records the error sequence a client sees over n requests.
func outcomes(c *Client, host string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		_, err := c.Do(Request{Host: host, Path: "/x"})
		switch {
		case err == nil:
			out = append(out, "ok")
		case errors.Is(err, ErrConnDropped):
			out = append(out, "drop")
		case errors.Is(err, ErrServerBusy):
			out = append(out, "busy")
		case errors.Is(err, ErrHandshakeFlap):
			out = append(out, "flap")
		default:
			out = append(out, err.Error())
		}
	}
	return out
}

func TestFaultPlan_DeterministicSchedule(t *testing.T) {
	profile := FaultProfile{DropRate: 0.2, BusyRate: 0.2, FlapRate: 0.2}
	seqFor := func() []string {
		n, _ := faultyNetwork("fault-seed", profile)
		return outcomes(NewClient(n), "api.example", 200)
	}
	a, b := seqFor(), seqFor()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %q vs %q", i, a[i], b[i])
		}
	}

	n, _ := faultyNetwork("other-seed", profile)
	c := outcomes(NewClient(n), "api.example", 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct seeds produced identical 200-request schedules")
	}
}

func TestFaultPlan_PerHostStreamsIndependent(t *testing.T) {
	profile := FaultProfile{DropRate: 0.3}
	// Contact order must not change a host's schedule: cdn-first vs
	// api-first runs see identical per-host sequences.
	n1, _ := faultyNetwork("seed", profile)
	c1 := NewClient(n1)
	apiFirst := outcomes(c1, "api.example", 50)
	_ = outcomes(c1, "cdn.example", 50)

	n2, _ := faultyNetwork("seed", profile)
	c2 := NewClient(n2)
	_ = outcomes(c2, "cdn.example", 50)
	apiSecond := outcomes(c2, "api.example", 50)

	for i := range apiFirst {
		if apiFirst[i] != apiSecond[i] {
			t.Fatalf("api schedule depends on host contact order at request %d", i)
		}
	}
}

func TestFaultPlan_BurstCapForcesPassThrough(t *testing.T) {
	// DropRate ~1 would fail forever; the cap must let every
	// MaxConsecutive+1'th attempt through.
	n, _ := faultyNetwork("seed", FaultProfile{DropRate: 0.999, MaxConsecutive: 2})
	seq := outcomes(NewClient(n), "api.example", 30)
	run := 0
	oks := 0
	for i, o := range seq {
		if o == "ok" {
			oks++
			run = 0
			continue
		}
		run++
		if run > 2 {
			t.Fatalf("burst of %d consecutive failures at request %d exceeds cap 2", run, i)
		}
	}
	if oks == 0 {
		t.Fatal("no request ever passed through")
	}
}

func TestFaultPlan_PermanentHostAlwaysDrops(t *testing.T) {
	n, plan := faultyNetwork("seed", FaultProfile{})
	plan.SetHostProfile("api.example", FaultProfile{Permanent: true})
	c := NewClient(n)
	for i := 0; i < 20; i++ {
		if _, err := c.Do(Request{Host: "api.example"}); !errors.Is(err, ErrConnDropped) {
			t.Fatalf("request %d: err = %v, want ErrConnDropped", i, err)
		}
	}
	// The other host is untouched.
	if _, err := c.Do(Request{Host: "cdn.example"}); err != nil {
		t.Fatalf("healthy host failed: %v", err)
	}
	if got := plan.Stats().Drops; got != 20 {
		t.Errorf("drops = %d, want 20", got)
	}
}

func TestFaultPlan_LatencyChargesVirtualClock(t *testing.T) {
	n, plan := faultyNetwork("seed", FaultProfile{LatencyRate: 1, Latency: 30 * time.Millisecond})
	clock := NewVirtualClock()
	plan.SetClock(clock)
	c := NewClient(n)
	start := time.Now()
	for i := 0; i < 100; i++ {
		if _, err := c.Do(Request{Host: "cdn.example"}); err != nil {
			t.Fatal(err)
		}
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Errorf("100 virtual latencies took %v of wall time", wall)
	}
	if got, want := clock.Now(), 100*30*time.Millisecond; got != want {
		t.Errorf("virtual clock = %v, want %v", got, want)
	}
	if got := plan.Stats().Latencies; got != 100 {
		t.Errorf("latency count = %d, want 100", got)
	}
	if got := plan.Stats().Total(); got != 0 {
		t.Errorf("Total() counts latency: %d", got)
	}
}

func TestFaultPlan_ZeroProfileInjectsNothing(t *testing.T) {
	n, plan := faultyNetwork("seed", FaultProfile{})
	c := NewClient(n)
	for _, o := range outcomes(c, "api.example", 50) {
		if o != "ok" {
			t.Fatalf("zero profile injected %q", o)
		}
	}
	if got := plan.Stats(); got != (FaultStats{}) {
		t.Errorf("stats = %+v, want zero", got)
	}
}

// TestFaultSentinels_Distinct is the table-driven error-path check: each
// failure mode returns its own sentinel, distinguishable with errors.Is
// both directly and through the retry wrapper.
func TestFaultSentinels_Distinct(t *testing.T) {
	sentinels := []error{ErrConnDropped, ErrServerBusy, ErrHandshakeFlap, ErrPinMismatch, ErrUnknownHost}

	cases := []struct {
		name      string
		setup     func() *Client
		host      string
		want      error
		transient bool
	}{
		{
			name: "unknown host",
			setup: func() *Client {
				n, _ := faultyNetwork("seed", FaultProfile{})
				return NewClient(n)
			},
			host: "ghost.example",
			want: ErrUnknownHost,
		},
		{
			name: "pin mismatch",
			setup: func() *Client {
				n, _ := faultyNetwork("seed", FaultProfile{})
				c := NewClient(n)
				c.Pin("api.example")
				c.InstallMITM(NewInterceptor())
				return c
			},
			host: "api.example",
			want: ErrPinMismatch,
		},
		{
			name: "injected drop",
			setup: func() *Client {
				n, _ := faultyNetwork("seed", FaultProfile{DropRate: 1, MaxConsecutive: 1 << 30})
				return NewClient(n)
			},
			host:      "api.example",
			want:      ErrConnDropped,
			transient: true,
		},
		{
			name: "injected busy",
			setup: func() *Client {
				n, _ := faultyNetwork("seed", FaultProfile{BusyRate: 1, MaxConsecutive: 1 << 30})
				return NewClient(n)
			},
			host:      "api.example",
			want:      ErrServerBusy,
			transient: true,
		},
		{
			name: "injected flap",
			setup: func() *Client {
				n, _ := faultyNetwork("seed", FaultProfile{FlapRate: 1, MaxConsecutive: 1 << 30})
				return NewClient(n)
			},
			host:      "api.example",
			want:      ErrHandshakeFlap,
			transient: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.setup()
			_, err := c.Do(Request{Host: tc.host})
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			for _, s := range sentinels {
				if s != tc.want && errors.Is(err, s) {
					t.Errorf("err also matches %v", s)
				}
			}
			if got := IsTransient(err); got != tc.transient {
				t.Errorf("IsTransient = %v, want %v", got, tc.transient)
			}

			// Through the retry wrapper the sentinel must stay matchable;
			// transient errors additionally gain ErrRetriesExhausted.
			c2 := tc.setup()
			c2.SetRetryPolicy(&RetryPolicy{MaxAttempts: 2, Clock: NewVirtualClock()})
			_, err = c2.Do(Request{Host: tc.host})
			if !errors.Is(err, tc.want) {
				t.Fatalf("through retry wrapper: err = %v, want %v", err, tc.want)
			}
			if got := errors.Is(err, ErrRetriesExhausted); got != tc.transient {
				t.Errorf("through retry wrapper: exhausted = %v, want %v", got, tc.transient)
			}
		})
	}
}

func TestFaultPlan_FlapRecordsNoExchange(t *testing.T) {
	// A flap dies before the handshake completes: the interceptor must not
	// record anything, unlike a busy reply which arrives over an
	// established connection.
	n, _ := faultyNetwork("seed", FaultProfile{FlapRate: 1, MaxConsecutive: 1 << 30})
	c := NewClient(n)
	mitm := NewInterceptor()
	c.InstallMITM(mitm)
	c.DisablePinning()
	if _, err := c.Do(Request{Host: "api.example"}); !errors.Is(err, ErrHandshakeFlap) {
		t.Fatal("want flap")
	}
	if got := len(mitm.Captured()); got != 0 {
		t.Errorf("interceptor captured %d exchanges across a flapped handshake", got)
	}

	n2, _ := faultyNetwork("seed", FaultProfile{BusyRate: 1, MaxConsecutive: 1 << 30})
	c2 := NewClient(n2)
	mitm2 := NewInterceptor()
	c2.InstallMITM(mitm2)
	c2.DisablePinning()
	if _, err := c2.Do(Request{Host: "api.example"}); !errors.Is(err, ErrServerBusy) {
		t.Fatal("want busy")
	}
	captured := mitm2.Captured()
	if len(captured) != 1 || captured[0].Response.Status != 503 {
		t.Errorf("busy reply not recorded as a 503 exchange: %+v", captured)
	}
}

func TestVirtualClock_SleepHonoursContext(t *testing.T) {
	clock := NewVirtualClock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := clock.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if clock.Now() != 0 {
		t.Error("cancelled sleep advanced the clock")
	}
}
