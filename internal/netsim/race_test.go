package netsim

import (
	"fmt"
	"sync"
	"testing"
)

// TestInterceptor_ConcurrentRecordCaptured exercises the Captured()/record()
// pair under -race: readers drain snapshots while writers append, the
// pattern the parallel study engine drives when several app rows are
// observed at once.
func TestInterceptor_ConcurrentRecordCaptured(t *testing.T) {
	i := NewInterceptor()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < perWriter; n++ {
				i.record(Exchange{Request: Request{Host: fmt.Sprintf("h%d", w), Path: fmt.Sprintf("/%d", n)}})
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = i.Captured()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := len(i.Captured()); got != writers*perWriter {
		t.Fatalf("captured %d exchanges, want %d", got, writers*perWriter)
	}
}

// TestNetwork_ConcurrentClients drives many clients through a shared
// network — including MITM'd and re-pinned ones — under -race, mimicking
// parallel per-app observation over one World.Network.
func TestNetwork_ConcurrentClients(t *testing.T) {
	n := NewNetwork()
	for h := 0; h < 4; h++ {
		host := fmt.Sprintf("host%d.example", h)
		n.RegisterHost(host, func(req Request) (Response, error) {
			return Response{Status: 200, Body: []byte(req.Path)}, nil
		})
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := NewClient(n)
			host := fmt.Sprintf("host%d.example", c%4)
			client.Pin(host)
			tap := NewInterceptor()
			if c%2 == 0 {
				client.InstallMITM(tap)
				client.DisablePinning()
			}
			for r := 0; r < 100; r++ {
				resp, err := client.Do(Request{Host: host, Path: fmt.Sprintf("/obj/%d", r)})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if resp.Status != 200 {
					t.Errorf("client %d: status %d", c, resp.Status)
					return
				}
			}
			if c%2 == 0 && len(tap.Captured()) != 100 {
				t.Errorf("client %d: tap captured %d exchanges, want 100", c, len(tap.Captured()))
			}
		}(c)
	}
	wg.Wait()
}
