package netsim

import (
	"testing"

	"repro/internal/wvcrypto"
)

// TestRetryObserver_SeesMaskedAttempts: every transient failure the retry
// loop swallows is reported to the observer with the host, the 1-based
// attempt number, and the underlying error — even though the caller only
// ever sees success.
func TestRetryObserver_SeesMaskedAttempts(t *testing.T) {
	n, plan := faultyNetwork("observer", FaultProfile{DropRate: 0.5})
	type retry struct {
		host    string
		attempt int
		err     error
	}
	var seen []retry
	n.SetRetryObserver(func(host string, attempt int, err error) {
		seen = append(seen, retry{host, attempt, err})
	})

	c := NewClient(n)
	c.SetRetryPolicy(DefaultRetryPolicy(wvcrypto.NewDeterministicReader("jitter"), NewVirtualClock()))
	for i := 0; i < 50; i++ {
		if _, err := c.Do(Request{Host: "api.example"}); err != nil {
			t.Fatalf("request %d surfaced %v despite retries", i, err)
		}
	}

	injected := plan.Stats().Total()
	if injected == 0 {
		t.Fatal("no faults injected — nothing to observe")
	}
	if len(seen) != injected {
		t.Errorf("observer saw %d retries, plan injected %d faults", len(seen), injected)
	}
	for _, r := range seen {
		if r.host != "api.example" {
			t.Errorf("retry host = %q", r.host)
		}
		if r.attempt < 1 {
			t.Errorf("retry attempt = %d, want >= 1", r.attempt)
		}
		if r.err == nil || !IsTransient(r.err) {
			t.Errorf("retry err = %v, want transient", r.err)
		}
	}
}

// TestCombineRetryObservers: the fan-out forwards to every non-nil
// observer in order, collapses to the single live observer, and returns
// nil when nothing is left to call.
func TestCombineRetryObservers(t *testing.T) {
	var order []string
	a := func(host string, attempt int, err error) { order = append(order, "a:"+host) }
	b := func(host string, attempt int, err error) { order = append(order, "b:"+host) }

	combined := CombineRetryObservers(nil, a, nil, b)
	if combined == nil {
		t.Fatal("combined observer is nil")
	}
	combined("api.example", 1, ErrConnDropped)
	if len(order) != 2 || order[0] != "a:api.example" || order[1] != "b:api.example" {
		t.Errorf("fan-out order = %v", order)
	}

	if CombineRetryObservers(nil, nil) != nil {
		t.Error("all-nil combination is not nil")
	}

	calls := 0
	single := CombineRetryObservers(nil, func(string, int, error) { calls++ })
	single("x", 1, ErrServerBusy)
	if calls != 1 {
		t.Errorf("single observer called %d times", calls)
	}
}

// TestCombineRetryObservers_OnNetwork: composing the network's installed
// observer with an extra consumer keeps both streams fed — the serve
// layer's metrics adapter rides alongside the study's event sink this way.
func TestCombineRetryObservers_OnNetwork(t *testing.T) {
	n, _ := faultyNetwork("observer-combine", FaultProfile{DropRate: 0.5})
	first, second := 0, 0
	n.SetRetryObserver(func(string, int, error) { first++ })
	n.SetRetryObserver(CombineRetryObservers(n.RetryObserver(), func(string, int, error) { second++ }))

	c := NewClient(n)
	c.SetRetryPolicy(DefaultRetryPolicy(wvcrypto.NewDeterministicReader("jitter"), NewVirtualClock()))
	for i := 0; i < 30; i++ {
		if _, err := c.Do(Request{Host: "api.example"}); err != nil {
			t.Fatal(err)
		}
	}
	if first == 0 {
		t.Fatal("no retries observed — nothing composed")
	}
	if first != second {
		t.Errorf("composed observers diverged: first %d, second %d", first, second)
	}
}

// TestRetryObserver_DetachAndQuietNetwork: a nil observer detaches, and a
// fault-free network never calls the observer at all.
func TestRetryObserver_DetachAndQuietNetwork(t *testing.T) {
	n, _ := faultyNetwork("observer-detach", FaultProfile{DropRate: 0.5})
	calls := 0
	n.SetRetryObserver(func(string, int, error) { calls++ })
	n.SetRetryObserver(nil)

	c := NewClient(n)
	c.SetRetryPolicy(DefaultRetryPolicy(wvcrypto.NewDeterministicReader("jitter"), NewVirtualClock()))
	for i := 0; i < 20; i++ {
		if _, err := c.Do(Request{Host: "api.example"}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 0 {
		t.Errorf("detached observer called %d times", calls)
	}

	quiet := NewNetwork()
	quiet.RegisterHost("api.example", func(req Request) (Response, error) {
		return Response{Status: 200}, nil
	})
	quiet.SetRetryObserver(func(string, int, error) { calls++ })
	qc := NewClient(quiet)
	if _, err := qc.Do(Request{Host: "api.example"}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("observer fired %d times on a fault-free network", calls)
	}
}
