package netsim

import (
	"testing"

	"repro/internal/wvcrypto"
)

// TestRetryObserver_SeesMaskedAttempts: every transient failure the retry
// loop swallows is reported to the observer with the host, the 1-based
// attempt number, and the underlying error — even though the caller only
// ever sees success.
func TestRetryObserver_SeesMaskedAttempts(t *testing.T) {
	n, plan := faultyNetwork("observer", FaultProfile{DropRate: 0.5})
	type retry struct {
		host    string
		attempt int
		err     error
	}
	var seen []retry
	n.SetRetryObserver(func(host string, attempt int, err error) {
		seen = append(seen, retry{host, attempt, err})
	})

	c := NewClient(n)
	c.SetRetryPolicy(DefaultRetryPolicy(wvcrypto.NewDeterministicReader("jitter"), NewVirtualClock()))
	for i := 0; i < 50; i++ {
		if _, err := c.Do(Request{Host: "api.example"}); err != nil {
			t.Fatalf("request %d surfaced %v despite retries", i, err)
		}
	}

	injected := plan.Stats().Total()
	if injected == 0 {
		t.Fatal("no faults injected — nothing to observe")
	}
	if len(seen) != injected {
		t.Errorf("observer saw %d retries, plan injected %d faults", len(seen), injected)
	}
	for _, r := range seen {
		if r.host != "api.example" {
			t.Errorf("retry host = %q", r.host)
		}
		if r.attempt < 1 {
			t.Errorf("retry attempt = %d, want >= 1", r.attempt)
		}
		if r.err == nil || !IsTransient(r.err) {
			t.Errorf("retry err = %v, want transient", r.err)
		}
	}
}

// TestRetryObserver_DetachAndQuietNetwork: a nil observer detaches, and a
// fault-free network never calls the observer at all.
func TestRetryObserver_DetachAndQuietNetwork(t *testing.T) {
	n, _ := faultyNetwork("observer-detach", FaultProfile{DropRate: 0.5})
	calls := 0
	n.SetRetryObserver(func(string, int, error) { calls++ })
	n.SetRetryObserver(nil)

	c := NewClient(n)
	c.SetRetryPolicy(DefaultRetryPolicy(wvcrypto.NewDeterministicReader("jitter"), NewVirtualClock()))
	for i := 0; i < 20; i++ {
		if _, err := c.Do(Request{Host: "api.example"}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 0 {
		t.Errorf("detached observer called %d times", calls)
	}

	quiet := NewNetwork()
	quiet.RegisterHost("api.example", func(req Request) (Response, error) {
		return Response{Status: 200}, nil
	})
	quiet.SetRetryObserver(func(string, int, error) { calls++ })
	qc := NewClient(quiet)
	if _, err := qc.Do(Request{Host: "api.example"}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("observer fired %d times on a fault-free network", calls)
	}
}
