// Deterministic fault injection. The paper's measurements ran against
// real, flaky networks — license servers timing out, CDNs throttling,
// provisioning calls dying mid-study — while the simulator's network is
// perfect. A FaultPlan puts that flakiness back, reproducibly: every
// fault decision is drawn from a per-host deterministic stream forked
// from one seed, so a given seed yields the exact same fault schedule on
// every run, at any concurrency.
package netsim

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"repro/internal/wvcrypto"
)

// Injected transport faults. All three are transient by construction
// (bounded bursts, see FaultProfile.MaxConsecutive) and retryable —
// unlike ErrPinMismatch, which is a deterministic finding, not a flake.
var (
	// ErrConnDropped is an injected connection drop: the TCP session died
	// before any application bytes moved.
	ErrConnDropped = errors.New("netsim: connection dropped")
	// ErrServerBusy is an injected application-layer 503: the backend
	// accepted the connection, then shed the request.
	ErrServerBusy = errors.New("netsim: server busy (503)")
	// ErrHandshakeFlap is an injected TLS handshake interruption — the
	// connection flapped before certificate verification completed, so no
	// pin decision was ever made.
	ErrHandshakeFlap = errors.New("netsim: handshake flapped")
)

// FaultKind identifies one injected fault.
type FaultKind int

// Fault kinds, in the order they strike a connection attempt: a drop or
// flap kills it outright, latency delays it, a busy reply sheds it after
// the handshake (and pin check) completed.
const (
	FaultNone FaultKind = iota
	FaultDrop
	FaultBusy
	FaultFlap
	FaultLatency
)

// DefaultMaxConsecutive bounds transient fault bursts per host: after
// this many back-to-back failures the next attempt passes through, which
// guarantees any retry policy allowing MaxConsecutive+1 attempts masks
// every transient fault.
const DefaultMaxConsecutive = 3

// FaultProfile configures the fault mix for a host (or, as a plan's
// default, for every host). Rates are per connection attempt in [0,1).
type FaultProfile struct {
	// DropRate, BusyRate and FlapRate select the failure injected on an
	// attempt; their sum must stay below 1.
	DropRate float64
	BusyRate float64
	FlapRate float64

	// LatencyRate adds Latency of virtual-clock delay to an attempt.
	// Latency never fails a request and does not count toward bursts.
	LatencyRate float64
	Latency     time.Duration

	// MaxConsecutive caps the failure burst length (0 selects
	// DefaultMaxConsecutive). Keep it below the consumer's retry budget
	// and transient faults can never change an outcome.
	MaxConsecutive int

	// Permanent marks the host dead: every attempt drops, with no burst
	// cap. Retries exhaust and the failure surfaces to the caller — the
	// study reports it as an annotated cell.
	Permanent bool
}

// zero reports whether the profile injects nothing.
func (fp FaultProfile) zero() bool {
	return !fp.Permanent && fp.DropRate == 0 && fp.BusyRate == 0 &&
		fp.FlapRate == 0 && fp.LatencyRate == 0
}

// FaultStats counts injected faults, for tests that must prove a run was
// actually perturbed (an invariance check against zero faults is vacuous).
type FaultStats struct {
	Drops     int
	Busies    int
	Flaps     int
	Latencies int
}

// Total sums every injected failure (latency excluded: it delays, it
// doesn't fail).
func (s FaultStats) Total() int { return s.Drops + s.Busies + s.Flaps }

// FaultPlan is a deterministic fault schedule over a network's hosts.
// Each host draws from its own stream forked by hostname, so the schedule
// a host sees depends only on the plan seed and that host's own request
// sequence — never on scheduling order across hosts.
type FaultPlan struct {
	clock Clock

	mu      sync.Mutex
	rand    *wvcrypto.DeterministicReader
	def     FaultProfile
	perHost map[string]FaultProfile
	state   map[string]*hostFaultState
	stats   FaultStats
}

// hostFaultState is one host's stream cursor and burst counter.
type hostFaultState struct {
	mu          sync.Mutex
	rand        *wvcrypto.DeterministicReader
	consecutive int
}

// NewFaultPlan builds a plan drawing from the given deterministic stream
// (conventionally the world's root.Fork("faults")), applying def to every
// host without an explicit profile. Latency runs on a virtual clock until
// SetClock overrides it.
func NewFaultPlan(rand *wvcrypto.DeterministicReader, def FaultProfile) *FaultPlan {
	return &FaultPlan{
		clock:   NewVirtualClock(),
		rand:    rand,
		def:     def,
		perHost: make(map[string]FaultProfile),
		state:   make(map[string]*hostFaultState),
	}
}

// SetClock replaces the clock injected latency is charged to.
func (p *FaultPlan) SetClock(c Clock) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock = c
}

// SetHostProfile overrides the fault mix for one host.
func (p *FaultPlan) SetHostProfile(host string, fp FaultProfile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.perHost[host] = fp
}

// Stats returns a snapshot of the injected-fault counters.
func (p *FaultPlan) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// profileFor resolves the effective profile for a host.
func (p *FaultPlan) profileFor(host string) FaultProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fp, ok := p.perHost[host]; ok {
		return fp
	}
	return p.def
}

// hostState returns (minting on first use) the host's stream cursor. The
// stream is forked from the plan seed by hostname, so it is identical
// regardless of which host is contacted first.
func (p *FaultPlan) hostState(host string) *hostFaultState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[host]
	if !ok {
		st = &hostFaultState{rand: p.rand.Fork("host/" + host)}
		p.state[host] = st
	}
	return st
}

// count bumps one stats counter.
func (p *FaultPlan) count(kind FaultKind) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch kind {
	case FaultDrop:
		p.stats.Drops++
	case FaultBusy:
		p.stats.Busies++
	case FaultFlap:
		p.stats.Flaps++
	case FaultLatency:
		p.stats.Latencies++
	}
}

// decide draws the fault for one connection attempt to host. It returns
// the failure to inject (FaultNone to let the attempt through) and any
// virtual latency to charge first.
func (p *FaultPlan) decide(host string) (FaultKind, time.Duration) {
	fp := p.profileFor(host)
	if fp.Permanent {
		p.count(FaultDrop)
		return FaultDrop, 0
	}
	if fp.zero() {
		return FaultNone, 0
	}

	st := p.hostState(host)
	st.mu.Lock()
	// Two draws per attempt — failure and latency — so the per-host
	// stream advances identically whatever the profile selects.
	fail := drawUnit(st.rand)
	lat := drawUnit(st.rand)

	maxBurst := fp.MaxConsecutive
	if maxBurst <= 0 {
		maxBurst = DefaultMaxConsecutive
	}
	kind := FaultNone
	switch {
	case st.consecutive >= maxBurst:
		// Burst cap reached: force a pass-through so retries are
		// guaranteed to mask the burst.
	case fail < fp.DropRate:
		kind = FaultDrop
	case fail < fp.DropRate+fp.BusyRate:
		kind = FaultBusy
	case fail < fp.DropRate+fp.BusyRate+fp.FlapRate:
		kind = FaultFlap
	}
	if kind == FaultNone {
		st.consecutive = 0
	} else {
		st.consecutive++
	}
	st.mu.Unlock()

	var latency time.Duration
	if fp.Latency > 0 && lat < fp.LatencyRate {
		latency = fp.Latency
		p.count(FaultLatency)
	}
	if kind != FaultNone {
		p.count(kind)
	}
	return kind, latency
}

// sleep charges injected latency to the plan's clock.
func (p *FaultPlan) sleep(ctx context.Context, d time.Duration) error {
	p.mu.Lock()
	clock := p.clock
	p.mu.Unlock()
	return clock.Sleep(ctx, d)
}

// drawUnit reads 8 bytes from the stream and maps them to [0,1).
func drawUnit(r *wvcrypto.DeterministicReader) float64 {
	var b [8]byte
	_, _ = r.Read(b[:]) // DeterministicReader never fails
	return float64(binary.BigEndian.Uint64(b[:])>>11) / (1 << 53)
}
