package netsim

import (
	"bytes"
	"errors"
	"testing"
)

func echoNetwork() *Network {
	n := NewNetwork()
	n.RegisterHost("cdn.example", func(req Request) (Response, error) {
		return Response{Status: 200, Body: append([]byte("echo:"), req.Body...)}, nil
	})
	return n
}

func TestPlainExchange(t *testing.T) {
	n := echoNetwork()
	c := NewClient(n)
	resp, err := c.Do(Request{Host: "cdn.example", Path: "/x", Body: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "echo:hi" || resp.Status != 200 {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
}

func TestUnknownHost(t *testing.T) {
	c := NewClient(echoNetwork())
	if _, err := c.Do(Request{Host: "nope.example"}); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("err = %v, want ErrUnknownHost", err)
	}
}

func TestPinnedClientAcceptsGenuineHost(t *testing.T) {
	c := NewClient(echoNetwork())
	c.Pin("cdn.example")
	if _, err := c.Do(Request{Host: "cdn.example"}); err != nil {
		t.Fatalf("pinned genuine exchange failed: %v", err)
	}
}

func TestMITMBreaksPinnedClient(t *testing.T) {
	c := NewClient(echoNetwork())
	c.Pin("cdn.example")
	mitm := NewInterceptor()
	c.InstallMITM(mitm)
	if _, err := c.Do(Request{Host: "cdn.example"}); !errors.Is(err, ErrPinMismatch) {
		t.Fatalf("err = %v, want ErrPinMismatch", err)
	}
	if len(mitm.Captured()) != 0 {
		t.Error("interceptor captured traffic despite pin failure")
	}
}

func TestRepinningBypassRecordsPlaintext(t *testing.T) {
	c := NewClient(echoNetwork())
	c.Pin("cdn.example")
	mitm := NewInterceptor()
	c.InstallMITM(mitm)
	c.DisablePinning() // the Frida patch
	if c.PinningEnabled() {
		t.Error("pinning still enabled after patch")
	}
	resp, err := c.Do(Request{Host: "cdn.example", Path: "/manifest", Body: []byte("give-mpd")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "echo:give-mpd" {
		t.Errorf("resp = %q", resp.Body)
	}
	captured := mitm.Captured()
	if len(captured) != 1 {
		t.Fatalf("captured %d exchanges", len(captured))
	}
	if captured[0].Request.Path != "/manifest" ||
		!bytes.Equal(captured[0].Response.Body, []byte("echo:give-mpd")) {
		t.Errorf("captured = %+v", captured[0])
	}
}

func TestUnpinnedClientIgnoresMITM(t *testing.T) {
	// An app without pinning is transparently intercepted — the paper's
	// point that pinning was the only (ineffective) defense.
	c := NewClient(echoNetwork())
	mitm := NewInterceptor()
	c.InstallMITM(mitm)
	if _, err := c.Do(Request{Host: "cdn.example", Body: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if len(mitm.Captured()) != 1 {
		t.Error("unpinned traffic not captured")
	}
}

func TestInterceptorRecordsErrors(t *testing.T) {
	n := NewNetwork()
	handlerErr := errors.New("backend exploded")
	n.RegisterHost("api.example", func(Request) (Response, error) {
		return Response{}, handlerErr
	})
	c := NewClient(n)
	mitm := NewInterceptor()
	c.InstallMITM(mitm)
	if _, err := c.Do(Request{Host: "api.example"}); !errors.Is(err, handlerErr) {
		t.Errorf("err = %v", err)
	}
	captured := mitm.Captured()
	if len(captured) != 1 || captured[0].Err == nil {
		t.Errorf("captured = %+v", captured)
	}
}

func TestCertFingerprint_Stable(t *testing.T) {
	if CertFingerprint("a") != CertFingerprint("a") {
		t.Error("fingerprint not stable")
	}
	if CertFingerprint("a") == CertFingerprint("b") {
		t.Error("distinct hosts share fingerprints")
	}
}
