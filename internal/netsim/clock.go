package netsim

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts waiting so injected latency and retry backoff can run on
// a virtual timeline (tests, the simulated study) or the wall clock
// (interactive use). Now reports time elapsed on the clock's own timeline
// since it was created.
type Clock interface {
	Now() time.Duration
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock ticks with the wall clock.
type RealClock struct {
	start time.Time
}

// NewRealClock returns a wall clock whose Now starts at zero.
func NewRealClock() *RealClock {
	return &RealClock{start: time.Now()}
}

// Now reports wall time elapsed since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// Sleep waits in real time, honouring context cancellation.
func (c *RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// VirtualClock is a simulated timeline: Sleep advances it instantly, so a
// study run that "waits" through thousands of injected latencies and
// backoffs still completes in real milliseconds, while the accumulated
// virtual time remains observable via Now.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtualClock returns a virtual clock at time zero.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{}
}

// Now reports the accumulated virtual time.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual timeline by d without blocking.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
	return nil
}
