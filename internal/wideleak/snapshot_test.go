package wideleak

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/ott"
)

// warmDefaultSnapshot builds the default world once, runs the full study
// to provision every device, and returns the snapshot. Shared because
// the warm-up is the expensive part.
var warmSnapshot []byte

func defaultSnapshot(t *testing.T) []byte {
	t.Helper()
	if warmSnapshot != nil {
		return warmSnapshot
	}
	w, err := NewWorld("default", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStudy(w).BuildTable(); err != nil {
		t.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	warmSnapshot = snap
	return snap
}

// The headline snapshot contract: a restored world renders Table I (text,
// CSV, JSON) byte-identical to the pre-refactor goldens — sequential and
// parallel — while performing ZERO key generations.
func TestSnapshotRestore_GoldenTableI(t *testing.T) {
	snap := defaultSnapshot(t)
	for _, parallelism := range []int{1, 8} {
		w, err := RestoreWorld(snap)
		if err != nil {
			t.Fatal(err)
		}
		table, err := NewStudy(w).BuildTableParallel(parallelism)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		text := table.Render() + "\n" + table.Summarize().Render()
		if want := golden(t, "tableI_default.txt"); text != want {
			t.Errorf("parallelism %d: restored world diverged from golden:\n%s", parallelism, text)
		}
		csvOut, err := table.MarshalCSV()
		if err != nil {
			t.Fatal(err)
		}
		if want := golden(t, "tableI_default.csv"); string(csvOut) != want {
			t.Errorf("parallelism %d: restored-world CSV diverged from golden", parallelism)
		}
		jsonOut, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if want := golden(t, "tableI_default.json"); string(jsonOut)+"\n" != want {
			t.Errorf("parallelism %d: restored-world JSON diverged from golden", parallelism)
		}
		if mints := w.Registry.MintCount(); mints != 0 {
			t.Errorf("parallelism %d: restored world minted %d keys, want 0", parallelism, mints)
		}
	}
}

// Satellite: WarmFixtures over a restored snapshot must provision every
// device without a single new key generation, and the table built on top
// still matches the golden.
func TestSnapshotRestore_WarmFixturesZeroKeygen(t *testing.T) {
	w, err := RestoreWorld(defaultSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WarmFixtures(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if mints := w.Registry.MintCount(); mints != 0 {
		t.Fatalf("WarmFixtures on a restored world minted %d keys, want 0", mints)
	}
	table, err := NewStudy(w).BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	text := table.Render() + "\n" + table.Summarize().Render()
	if want := golden(t, "tableI_default.txt"); text != want {
		t.Errorf("warmed restored world diverged from golden:\n%s", text)
	}
	if mints := w.Registry.MintCount(); mints != 0 {
		t.Fatalf("table build after warm restore minted %d keys, want 0", mints)
	}
}

// Under a transient fault plan the restored world must behave exactly
// like a fresh one: same rendered table, zero keygen.
func TestSnapshotRestore_UnderFaults(t *testing.T) {
	spec := FaultSpec{Seed: "default", Default: TransientFaults(0.25)}

	fresh, err := NewWorld("default", nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh.InstallFaults(spec)
	freshTable, err := NewStudy(fresh).BuildTable()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreWorld(defaultSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	plan := restored.InstallFaults(spec)
	restoredTable, err := NewStudy(restored).BuildTable()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := restoredTable.Render(), freshTable.Render(); got != want {
		t.Errorf("restored faulted table diverged from fresh faulted build:\n--- fresh ---\n%s--- restored ---\n%s", want, got)
	}
	if plan.Stats().Total() == 0 {
		t.Error("no faults injected — invariance check is vacuous")
	}
	if mints := restored.Registry.MintCount(); mints != 0 {
		t.Errorf("restored faulted world minted %d keys, want 0", mints)
	}
}

// A snapshot taken over the full profile set warms a world restricted to
// a subset (keys are label-addressed, not position-addressed), and the
// subset world still mints nothing.
func TestSnapshotRestore_ProfileOverride(t *testing.T) {
	subset := ott.Profiles()[:3]
	w, err := RestoreWorldProfiles(defaultSnapshot(t), subset)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Profiles()); got != len(subset) {
		t.Fatalf("restored world has %d profiles, want %d", got, len(subset))
	}
	if _, err := NewStudy(w).BuildTable(); err != nil {
		t.Fatal(err)
	}
	if mints := w.Registry.MintCount(); mints != 0 {
		t.Errorf("subset world minted %d keys, want 0", mints)
	}
}

// A prewarmed-but-unplayed world must still snapshot its paid-for state:
// keys resident only in the pool (no provisioning traffic yet) are
// persisted and restored.
func TestSnapshot_CarriesPoolResidentKeys(t *testing.T) {
	w, err := NewWorld("pool-resident", nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := w.DeviceStableIDs()[:2]
	pool := w.Registry.KeyPool()
	if pool == nil {
		t.Fatal("world has no key pool")
	}
	if err := pool.Prewarm(context.Background(), ids, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreWorld(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, ok := restored.Registry.RSAPublicKey(id); !ok {
			t.Errorf("pool-resident key %q did not survive the snapshot", id)
		}
	}
	if mints := restored.Registry.MintCount(); mints != 0 {
		t.Errorf("restore minted %d keys, want 0", mints)
	}
}

// Restore must reject wire-format and content corruption rather than
// build a world over bad key material.
func TestRestoreWorld_Rejections(t *testing.T) {
	if _, err := RestoreWorld([]byte("not json")); err == nil {
		t.Error("want error for malformed snapshot")
	}
	if _, err := RestoreWorld([]byte(`{"version":99,"seed":"default"}`)); err == nil {
		t.Error("want error for unknown snapshot version")
	}
	if _, err := RestoreWorld([]byte(`{"version":1,"seed":"x","profiles":["NoSuchApp"]}`)); err == nil {
		t.Error("want error for unregistered profile name")
	}
	bad := `{"version":1,"seed":"x","profiles":[],"device_keys":{"PX-a":"AAA="},"rsa_keys":{}}`
	if _, err := RestoreWorld([]byte(bad)); err == nil {
		t.Error("want error for truncated device key")
	}
}

// AttachKeyPool must refuse a pool minted over a different seed — the
// fingerprint check is what makes sharing a pool across worlds safe.
func TestAttachKeyPool_SeedMismatch(t *testing.T) {
	w, err := NewWorld("seed-a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachKeyPool(NewKeyPool("seed-b")); err == nil {
		t.Error("want error attaching a pool with a foreign mint root")
	}
	if err := w.AttachKeyPool(NewKeyPool("seed-a")); err != nil {
		t.Errorf("matching pool rejected: %v", err)
	}
}

// BuildFromSnapshot rejects a snapshot whose seed differs from the spec.
func TestBuildFromSnapshot_SeedMismatch(t *testing.T) {
	spec := RunSpec{Seed: "other"}
	if _, err := spec.BuildFromSnapshot(defaultSnapshot(t)); err == nil {
		t.Error("want error building spec seed 'other' from a 'default' snapshot")
	}
}
