package wideleak

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/ott"
	"repro/internal/wideleak/probe"
)

// golden reads one pinned pre-refactor output from testdata.
func golden(t *testing.T, name string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// profilesNamed selects a subset of the paper's apps by name.
func profilesNamed(t *testing.T, names ...string) []ott.Profile {
	t.Helper()
	var out []ott.Profile
	for _, name := range names {
		found := false
		for _, p := range ott.Profiles() {
			if p.Name == name {
				out = append(out, p)
				found = true
			}
		}
		if !found {
			t.Fatalf("no profile %q", name)
		}
	}
	return out
}

// TestProbePipeline_DefaultGolden pins the registry-driven pipeline to the
// exact bytes the pre-registry engine produced for the default full-probe
// run (seed "default"): rendered table + insights, CSV, and indented JSON,
// under both the sequential and the parallel builder.
func TestProbePipeline_DefaultGolden(t *testing.T) {
	w, err := NewWorld("default", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(w)

	for _, parallelism := range []int{1, 8} {
		table, err := s.BuildTableParallel(parallelism)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		text := table.Render() + "\n" + table.Summarize().Render()
		if want := golden(t, "tableI_default.txt"); text != want {
			t.Errorf("parallelism %d: text output diverged from pre-refactor golden:\n%s", parallelism, text)
		}
		csvOut, err := table.MarshalCSV()
		if err != nil {
			t.Fatal(err)
		}
		if want := golden(t, "tableI_default.csv"); string(csvOut) != want {
			t.Errorf("parallelism %d: CSV diverged from pre-refactor golden:\n%s", parallelism, csvOut)
		}
		jsonOut, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if want := golden(t, "tableI_default.json"); string(jsonOut)+"\n" != want {
			t.Errorf("parallelism %d: JSON diverged from pre-refactor golden:\n%s", parallelism, jsonOut)
		}
	}
}

// TestProbeSelection_SubsetSkipsWork: selecting q2+q3 runs only the shared
// observation playbacks — no Nexus 5 (Q4) work at all — and renders only
// the selected probes' columns.
func TestProbeSelection_SubsetSkipsWork(t *testing.T) {
	w, err := NewWorld("subset", profilesNamed(t, "Netflix", "Amazon Prime Video", "Showtime"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(w)
	s.Concurrency = 1
	s.Probes = []string{"q2", "q3"}
	table, err := s.BuildTable()
	if err != nil {
		t.Fatal(err)
	}

	if got := s.Observations(); got != 3 {
		t.Errorf("observations = %d, want 3 (one per app)", got)
	}
	if got := s.LegacyPlaybacks(); got != 0 {
		t.Errorf("legacy playbacks = %d, want 0 (q4 not selected)", got)
	}

	out := table.Render()
	for _, want := range []string{"Video", "Audio", "Subtitles", "Key Usage"} {
		if !strings.Contains(out, want) {
			t.Errorf("subset render missing column %q:\n%s", want, out)
		}
	}
	for _, forbidden := range []string{"Widevine", "Playback on L3 legacy", "Licensing"} {
		if strings.Contains(out, forbidden) {
			t.Errorf("subset render contains unselected column %q:\n%s", forbidden, out)
		}
	}
	for _, r := range table.Rows {
		if r.Q1() != nil || r.Q4() != nil || r.Q5() != nil {
			t.Errorf("%s: row carries results for unselected probes", r.App)
		}
		if r.Q2() == nil || r.Q3() == nil {
			t.Errorf("%s: row missing selected results", r.App)
		}
	}
}

// TestProbeSelection_DependencyPulled: selecting only q3 runs q2 as a
// dependency (the observation still happens) but renders only q3's column.
func TestProbeSelection_DependencyPulled(t *testing.T) {
	w, err := NewWorld("dep-pull", profilesNamed(t, "Showtime"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(w)
	s.Concurrency = 1
	s.Probes = []string{"q3"}
	table, err := s.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	out := table.Render()
	if !strings.Contains(out, "Key Usage") {
		t.Errorf("render missing Key Usage:\n%s", out)
	}
	for _, forbidden := range []string{"Video", "Audio", "Subtitles", "Widevine"} {
		if strings.Contains(out, forbidden) {
			t.Errorf("render contains dependency column %q:\n%s", forbidden, out)
		}
	}
	row := table.Rows[0]
	if row.Result("q2") != nil {
		t.Error("dependency result leaked onto the row")
	}
	if row.Q3() == nil || row.Q3().Usage != KeyUsageMinimum {
		t.Errorf("q3 = %+v", row.Q3())
	}
}

// TestProbeQ5_LicenseCaching runs the opt-in fifth probe over a mixed set:
// caching apps (Disney+, Amazon) replay without any LoadKeys call, the
// rest re-license per playback.
func TestProbeQ5_LicenseCaching(t *testing.T) {
	w, err := NewWorld("q5", profilesNamed(t, "Netflix", "Disney+", "Amazon Prime Video", "Showtime"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(w)
	s.Concurrency = 1
	s.Probes = []string{"q5"}
	table, err := s.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]LicensePolicy{
		"Netflix":            LicensePerPlayback,
		"Disney+":            LicenseCached,
		"Amazon Prime Video": LicenseCached,
		"Showtime":           LicensePerPlayback,
	}
	for _, r := range table.Rows {
		q5 := r.Q5()
		if q5 == nil {
			t.Errorf("%s: no q5 result", r.App)
			continue
		}
		if q5.Policy != want[r.App] {
			t.Errorf("%s: policy = %v (replay LoadKeys = %d), want %v",
				r.App, q5.Policy, q5.ReplayLoadKeys, want[r.App])
		}
	}
	out := table.Render()
	if !strings.Contains(out, "Licensing") || !strings.Contains(out, "cached") || !strings.Contains(out, "per-playback") {
		t.Errorf("q5 render:\n%s", out)
	}
	if got := s.LegacyPlaybacks(); got != 0 {
		t.Errorf("legacy playbacks = %d, want 0", got)
	}
}

// TestExporterParity: CSV and JSON must carry the same cells for the same
// table — including Err-annotated rows — with both column sets derived
// from the registry.
func TestExporterParity(t *testing.T) {
	table := PaperTable()
	table.Rows = append(table.Rows, Row{App: "DeadCo", Err: "netsim: retries exhausted: 5 attempts"})

	jsonOut, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	var jsonRows []map[string]any
	if err := json.Unmarshal(jsonOut, &jsonRows); err != nil {
		t.Fatal(err)
	}
	csvOut, err := table.MarshalCSV()
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(bytes.NewReader(csvOut)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	if len(records) != len(jsonRows)+1 {
		t.Fatalf("csv records = %d, json rows = %d", len(records), len(jsonRows))
	}
	header := records[0]
	fields := exportFields(table.probeIDs())
	if len(header) != len(fields)+2 {
		t.Fatalf("csv header = %v, want app + %d fields + error", header, len(fields))
	}

	// Map each CSV column to its JSON key and compare every cell.
	jsonKeys := []string{"app"}
	for _, f := range fields {
		jsonKeys = append(jsonKeys, f.JSON)
	}
	jsonKeys = append(jsonKeys, "error")
	for i, rec := range records[1:] {
		for col, cell := range rec {
			v, ok := jsonRows[i][jsonKeys[col]]
			if !ok {
				// omitempty: an absent JSON error key must pair with an
				// empty CSV cell.
				if jsonKeys[col] == "error" && cell == "" {
					continue
				}
				t.Errorf("row %d: JSON missing key %q present in CSV", i, jsonKeys[col])
				continue
			}
			var asString string
			switch val := v.(type) {
			case bool:
				asString = fmt.Sprintf("%t", val)
			default:
				asString = fmt.Sprint(val)
			}
			if asString != cell {
				t.Errorf("row %d col %s: csv %q != json %q", i, header[col], cell, asString)
			}
		}
	}
}

// TestTableDiff_Subsets pins Diff's column-set reporting: a probe selected
// on one side only surfaces as added/removed columns, and shared probes
// still compare cell by cell.
func TestTableDiff_Subsets(t *testing.T) {
	fullRow := func(app string) Row {
		return paperRow(app, false, ProtectionEncrypted, ProtectionClear, ProtectionClear, KeyUsageMinimum, LegacyPlays)
	}
	subsetRow := func(app string, audio Protection) Row {
		return NewRow(app,
			&Q2Result{App: app, Video: ProtectionEncrypted, Audio: audio, Subtitles: ProtectionClear},
			&Q3Result{App: app, Usage: KeyUsageMinimum},
		)
	}
	cases := []struct {
		name string
		a, b *Table
		want []string
	}{
		{
			name: "identical subsets",
			a:    &Table{Rows: []Row{subsetRow("X", ProtectionClear)}},
			b:    &Table{Rows: []Row{subsetRow("X", ProtectionClear)}},
			want: nil,
		},
		{
			name: "subset vs full reports columns once",
			a:    &Table{Rows: []Row{subsetRow("X", ProtectionClear)}},
			b:    &Table{Rows: []Row{fullRow("X")}},
			want: []string{
				"column widevine: only in other table",
				"column legacy: only in other table",
			},
		},
		{
			name: "full vs subset reports removed columns",
			a:    &Table{Rows: []Row{fullRow("X")}},
			b:    &Table{Rows: []Row{subsetRow("X", ProtectionClear)}},
			want: []string{
				"column widevine: missing from other table",
				"column legacy: missing from other table",
			},
		},
		{
			name: "shared probe mismatch still detected",
			a:    &Table{Rows: []Row{subsetRow("X", ProtectionClear)}},
			b:    &Table{Rows: []Row{fullRow("X"), fullRow("Y")}},
			want: []string{
				"column widevine: only in other table",
				"column legacy: only in other table",
			},
		},
		{
			name: "value mismatch in shared probe",
			a:    &Table{Rows: []Row{subsetRow("X", ProtectionEncrypted)}},
			b:    &Table{Rows: []Row{subsetRow("X", ProtectionClear)}},
			want: []string{"X/audio: Encrypted != Clear"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a.Diff(tc.b)
			if len(got) != len(tc.want) {
				t.Fatalf("diff = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("diff[%d] = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestRunEvents: the structured event stream brackets every probe run and
// surfaces masked transport retries with host attribution and virtual-
// clock accounting.
func TestRunEvents(t *testing.T) {
	w, err := NewWorld("events", profilesNamed(t, "Showtime"))
	if err != nil {
		t.Fatal(err)
	}
	w.InstallFaults(FaultSpec{Seed: "evt", Default: TransientFaults(0.3)})
	s := NewStudy(w)
	s.Concurrency = 1
	var log probe.Log
	s.SetEventSink(log.Record)
	if _, err := s.BuildTable(); err != nil {
		t.Fatal(err)
	}

	started := log.ByKind(probe.EventProbeStarted)
	finished := log.ByKind(probe.EventProbeFinished)
	if len(started) != 4 || len(finished) != 4 {
		t.Fatalf("started = %d, finished = %d, want 4 each", len(started), len(finished))
	}
	seen := make(map[string]bool)
	for _, ev := range finished {
		seen[ev.Probe] = true
		if ev.App != "Showtime" {
			t.Errorf("event app = %q", ev.App)
		}
	}
	for _, id := range []string{"q1", "q2", "q3", "q4"} {
		if !seen[id] {
			t.Errorf("no finished event for %s", id)
		}
	}

	retries := log.ByKind(probe.EventRetry)
	if len(retries) == 0 {
		t.Fatal("no retry events under a 30% transient fault rate")
	}
	for _, ev := range retries {
		if ev.Host == "" || ev.Attempt < 1 || ev.Err == "" {
			t.Errorf("malformed retry event: %+v", ev)
		}
	}
	virtualSeen := false
	for _, ev := range finished {
		if ev.Virtual > 0 {
			virtualSeen = true
		}
	}
	if !virtualSeen {
		t.Error("no probe charged virtual-clock time despite injected latency and backoff")
	}

	// Detaching the sink stops the stream.
	s.SetEventSink(nil)
	before := log.Len()
	s.ResetObservations()
	if _, err := s.BuildTable(); err != nil {
		t.Fatal(err)
	}
	if log.Len() != before {
		t.Errorf("events recorded after detach: %d -> %d", before, log.Len())
	}
}

// TestRunEvents_Degraded: a permanently dead backend emits a degraded
// event for the probe that exhausted its retries, and the row is
// annotated rather than the build failing.
func TestRunEvents_Degraded(t *testing.T) {
	profile := profilesNamed(t, "Showtime")[0]
	w, err := NewWorld("degraded", []ott.Profile{profile})
	if err != nil {
		t.Fatal(err)
	}
	w.InstallFaults(FaultSpec{
		Seed: "dead",
		PerHost: map[string]netsim.FaultProfile{
			profile.LicenseHost(): {Permanent: true},
		},
	})
	s := NewStudy(w)
	s.Concurrency = 1
	var log probe.Log
	s.SetEventSink(log.Record)
	table, err := s.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	if !table.Rows[0].Failed() {
		t.Fatalf("row not annotated: %+v", table.Rows[0])
	}
	degraded := log.ByKind(probe.EventProbeDegraded)
	if len(degraded) != 1 {
		t.Fatalf("degraded events = %d, want 1", len(degraded))
	}
	if ev := degraded[0]; ev.Probe == "" || ev.App != "Showtime" || ev.Err == "" {
		t.Errorf("malformed degraded event: %+v", ev)
	}
}
