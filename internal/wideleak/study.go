package wideleak

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cdn"
	"repro/internal/dash"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/monitor"
	"repro/internal/mp4"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/ott"
	"repro/internal/staticscan"
	"repro/internal/wideleak/probe"
)

// Protection classifies one asset class of one app (Table I cols 2-4).
type Protection int

// Protection values. Unknown renders as the paper's "-" (asset URIs not
// obtainable, e.g. regionally restricted subtitles).
const (
	ProtectionUnknown Protection = iota + 1
	ProtectionEncrypted
	ProtectionClear
)

// String renders the Table I cell.
func (p Protection) String() string {
	switch p {
	case ProtectionEncrypted:
		return "Encrypted"
	case ProtectionClear:
		return "Clear"
	default:
		return "-"
	}
}

// KeyUsage classifies an app's key assignment (Table I col 5).
type KeyUsage int

// KeyUsage values, per the paper's legend: Minimum = audio in clear or
// sharing the video key; Recommended = distinct audio and video keys.
const (
	KeyUsageUnknown KeyUsage = iota + 1
	KeyUsageMinimum
	KeyUsageRecommended
)

// String renders the Table I cell.
func (k KeyUsage) String() string {
	switch k {
	case KeyUsageMinimum:
		return "Minimum"
	case KeyUsageRecommended:
		return "Recommended"
	default:
		return "-"
	}
}

// LegacyOutcome classifies playback on the discontinued phone (col 6).
type LegacyOutcome int

// LegacyOutcome values: Plays = full circle; ProvisioningFails = the
// paper's half circle ("Widevine fails during provisioning phase");
// PlaysCustomDRM = the dagger (custom DRM when only L3 is available).
const (
	LegacyPlays LegacyOutcome = iota + 1
	LegacyProvisioningFails
	LegacyPlaysCustomDRM
	LegacyOtherFailure
)

// String renders the Table I cell.
func (o LegacyOutcome) String() string {
	switch o {
	case LegacyPlays:
		return "Plays"
	case LegacyProvisioningFails:
		return "ProvisioningFails"
	case LegacyPlaysCustomDRM:
		return "Plays(CustomDRM)"
	default:
		return "Fails"
	}
}

// Q1Result answers "does the app rely on Widevine?" for one app.
type Q1Result struct {
	App string
	// StaticSuggestsWidevine is the static-analysis hypothesis: the
	// decompiled classes reference MediaDrm and MediaCrypto (§IV-B's first
	// prong — apps may ship dead code, so this alone proves nothing).
	StaticSuggestsWidevine bool
	// UsesExoPlayerDRM reports the ExoPlayer DRM integration in the
	// decompiled surface.
	UsesExoPlayerDRM bool
	// UsesWidevine is the dynamic confirmation: playback actually drove
	// the Widevine CDM.
	UsesWidevine bool
	// L1Supported is true when control flow reached liboemcrypto.so on a
	// TEE device.
	L1Supported bool
	// CustomDRMOnL3 is true when the app played on an L3-only device
	// without touching the system Widevine (Amazon's embedded library).
	CustomDRMOnL3 bool
}

// Q2Result answers "are the assets encrypted?" for one app.
type Q2Result struct {
	App       string
	Video     Protection
	Audio     Protection
	Subtitles Protection
	// ClearAudioLangs lists every audio language verified to play on the
	// attacker's machine without keys or account — the paper's "audio in
	// any language can be played anywhere" observation. Empty when audio
	// is encrypted.
	ClearAudioLangs []string
}

// Q3Result answers "does the app use multiple keys?" for one app.
type Q3Result struct {
	App   string
	Usage KeyUsage
	// PerResolutionKeys is true when every protected video rung carries a
	// distinct key ID (observed for every determinable app).
	PerResolutionKeys bool
}

// Q4DeviceOutcome is one cell of Q4's revocation matrix: the playback
// outcome of one discontinued device profile.
type Q4DeviceOutcome struct {
	Device  string
	Outcome LegacyOutcome
	Detail  string
}

// Q4Result answers "does the app still serve discontinued devices?".
// With the default device trio the matrix has one cell (the Nexus 5)
// and Outcome/Detail mirror it; wider device sets fill Devices with one
// outcome per discontinued profile, in canonical device order.
type Q4Result struct {
	App     string
	Outcome LegacyOutcome
	Detail  string
	Devices []Q4DeviceOutcome
}

// Study runs the registered research questions over a World.
type Study struct {
	World *World

	// Concurrency caps the worker pool BuildTable fans app rows out on.
	// Zero (the default) selects runtime.GOMAXPROCS(0); one forces the
	// strictly sequential build. The rendered table is byte-identical at
	// every setting: each app draws from its own deterministic stream.
	Concurrency int

	// Probes selects which registered probes BuildTable runs, by ID.
	// Nil or empty selects the default set (the paper's Q1–Q4).
	// Dependencies of selected probes run automatically but contribute no
	// columns unless selected themselves.
	Probes []string

	// sink receives structured pipeline events (probe started/finished/
	// degraded, masked transport retries). Installed via SetEventSink.
	sink probe.Sink

	// obsRuns counts instrumented observation runs that actually executed;
	// legacyPlays counts Nexus 5 playbacks. Probe-selection tests use the
	// counters to assert that unselected probes did no playback work.
	obsRuns     atomic.Int64
	legacyPlays atomic.Int64

	// mu guards only the observation map; observation runs themselves are
	// deduplicated per app by a singleflight guard so Q1–Q3 (and
	// concurrent callers) share one instrumented playback per app.
	mu  sync.Mutex
	obs map[string]*obsEntry
}

// obsEntry is the per-app singleflight guard around one observation run.
type obsEntry struct {
	once sync.Once
	o    *observation
	err  error
}

// NewStudy wraps a world.
func NewStudy(w *World) *Study {
	return &Study{World: w, obs: make(map[string]*obsEntry)}
}

// ResetObservations drops cached monitored playbacks so the next question
// re-runs instrumentation from scratch. Benchmarks use it to measure the
// steady-state cost of one full observation cycle.
func (s *Study) ResetObservations() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = make(map[string]*obsEntry)
}

// SetEventSink installs the structured run-event stream: probe
// started/finished/degraded events from the table builder, plus one Retry
// event per masked transient transport fault, forwarded from the network
// layer. A nil sink detaches both. The sink must be safe for concurrent
// use — parallel builds emit from multiple goroutines.
func (s *Study) SetEventSink(sink probe.Sink) {
	s.sink = sink
	if sink == nil {
		s.World.Network.SetRetryObserver(nil)
		return
	}
	s.World.Network.SetRetryObserver(func(host string, attempt int, err error) {
		sink(probe.Event{Kind: probe.EventRetry, Host: host, Attempt: attempt, Err: err.Error()})
	})
}

// emit forwards one pipeline event when a sink is installed.
func (s *Study) emit(ev probe.Event) {
	if s.sink != nil {
		s.sink(ev)
	}
}

// Observations reports how many instrumented observation runs actually
// executed. Q1–Q3 share one observation per app, so a full default table
// build over N apps reports N.
func (s *Study) Observations() int { return int(s.obsRuns.Load()) }

// LegacyPlaybacks reports how many Nexus 5 playbacks (Q4 runs) executed.
func (s *Study) LegacyPlaybacks() int { return int(s.legacyPlays.Load()) }

// observation caches one app's monitored playbacks (shared across Q1-Q3).
type observation struct {
	l1Report *ott.PlaybackReport
	l1Events []oemcrypto.CallEvent

	l3Report    *ott.PlaybackReport
	l3Events    []oemcrypto.CallEvent
	l3Exchanges []netsim.Exchange

	mpd     *dash.MPD
	cdnHost string
}

// observe plays the title on the app's L1 and modern L3 observation
// cells under full instrumentation, then recovers the manifest from the
// captured traffic or, failing that, from dumped CDM generic-decrypt
// outputs — the Netflix path.
func (s *Study) observe(app string) (*observation, error) {
	s.mu.Lock()
	e, ok := s.obs[app]
	if !ok {
		e = &obsEntry{}
		s.obs[app] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.o, e.err = s.runObservation(app) })
	return e.o, e.err
}

// runObservation performs the actual instrumented playbacks for one app,
// on the fixture's observation cells. A device set without an L1 (or
// modern L3) cell simply skips that run: the dependent classifications
// degrade to their unknown values, exactly like the paper's unobtainable
// cells.
func (s *Study) runObservation(app string) (*observation, error) {
	s.obsRuns.Add(1)
	f, err := s.World.Fixture(app)
	if err != nil {
		return nil, err
	}
	o := &observation{}

	// L1 run: CDM hooks on the TEE-backed system engine.
	if cell := f.ObservationL1(); cell != nil {
		monL1 := monitor.New()
		monL1.AttachCDM(cell.Device.Engine)
		o.l1Report = cell.App.Play(ContentID)
		o.l1Events = monL1.Events()
		monL1.Detach()
		if err := o.l1Report.TransportErr(); err != nil {
			return nil, err
		}
	}

	// L3 run: CDM hooks + network MITM with SSL re-pinning.
	if cell := f.ObservationL3(); cell != nil {
		monL3 := monitor.New()
		monL3.AttachCDM(cell.Device.Engine)
		tap := monL3.InterceptNetwork(cell.App.NetworkClient())
		o.l3Report = cell.App.Play(ContentID)
		o.l3Events = monL3.Events()
		o.l3Exchanges = tap.Exchanges()
		monL3.Detach()
		if err := o.l3Report.TransportErr(); err != nil {
			return nil, err
		}
	}

	o.mpd, o.cdnHost = recoverManifest(o.l3Exchanges, monL3Dumps(o.l3Events))
	return o, nil
}

// monL3Dumps extracts generic-decrypt output dumps from a trace.
func monL3Dumps(events []oemcrypto.CallEvent) [][]byte {
	var out [][]byte
	for _, ev := range events {
		if ev.Func == oemcrypto.FuncGenericDecrypt && ev.Out != nil {
			out = append(out, ev.Out)
		}
	}
	return out
}

// recoverManifest finds the manifest in plaintext traffic or CDM output
// dumps — sniffing every registered dialect, since the attacker does not
// control which wire format the app fetched — and the CDN host from
// observed object fetches. Whatever dialect it was, the recovered form is
// the canonical model, so all downstream classification is
// dialect-independent.
func recoverManifest(exchanges []netsim.Exchange, dumps [][]byte) (*dash.MPD, string) {
	var mpd *dash.MPD
	for _, ex := range exchanges {
		if ex.Err != nil || ex.Response.Status != 200 {
			continue
		}
		if m, _, err := manifest.ParseAny(ex.Response.Body); err == nil && len(m.Periods) > 0 {
			mpd = m
			break
		}
	}
	if mpd == nil {
		for _, dump := range dumps {
			if m, _, err := manifest.ParseAny(dump); err == nil && len(m.Periods) > 0 {
				mpd = m
				break
			}
		}
	}
	cdnHost := ""
	for _, ex := range exchanges {
		if strings.HasPrefix(ex.Request.Path, cdn.ObjectPrefix) {
			cdnHost = ex.Request.Host
			break
		}
	}
	return mpd, cdnHost
}

// RunQ1 classifies one app's Widevine usage with the paper's two-pronged
// method: static scan of the decompiled classes first, dynamic CDM-hook
// confirmation second.
func (s *Study) RunQ1(app string) (*Q1Result, error) {
	o, err := s.observe(app)
	if err != nil {
		return nil, err
	}
	res := &Q1Result{App: app}

	f, err := s.World.Fixture(app)
	if err != nil {
		return nil, err
	}
	if len(f.Cells) == 0 {
		return nil, fmt.Errorf("wideleak: %s: fixture has no device cells", app)
	}
	// The decompiled surface is a property of the APK, not the handset:
	// any cell's install serves.
	findings := staticscan.Scan(f.Cells[0].App.DecompiledReferences())
	res.StaticSuggestsWidevine = findings.SuggestsWidevine()
	res.UsesExoPlayerDRM = findings.UsesExoPlayerDRM

	res.UsesWidevine = len(o.l1Events) > 0 || len(o.l3Events) > 0
	for _, ev := range o.l1Events {
		if ev.Library == oemcrypto.LibOEMCrypto {
			res.L1Supported = true
			break
		}
	}
	res.CustomDRMOnL3 = o.l3Report != nil && o.l3Report.Played() && len(o.l3Events) == 0
	return res, nil
}

// RunQ2 probes the protection status of one app's downloaded assets: the
// attacker downloads every URI the interception recovered and checks
// whether a vanilla player can read it.
func (s *Study) RunQ2(app string) (*Q2Result, error) {
	o, err := s.observe(app)
	if err != nil {
		return nil, err
	}
	res := &Q2Result{App: app, Video: ProtectionUnknown, Audio: ProtectionUnknown, Subtitles: ProtectionUnknown}
	if o.mpd == nil || o.cdnHost == "" {
		return res, nil
	}
	attacker := s.World.AttackerClient()

	if set, err := o.mpd.FindAdaptationSet(dash.ContentVideo, ""); err == nil {
		if res.Video, err = s.probeMP4Track(attacker, o.cdnHost, set); err != nil {
			return nil, err
		}
	}
	if set, err := o.mpd.FindAdaptationSet(dash.ContentAudio, ""); err == nil {
		if res.Audio, err = s.probeMP4Track(attacker, o.cdnHost, set); err != nil {
			return nil, err
		}
	}
	if res.Audio == ProtectionClear {
		langs, err := s.playableAudioLangs(attacker, o)
		if err != nil {
			return nil, err
		}
		res.ClearAudioLangs = langs
	}
	if set, err := o.mpd.FindAdaptationSet(dash.ContentSubtitle, ""); err == nil {
		if res.Subtitles, err = s.probeSubtitles(attacker, o.cdnHost, set); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// transportOnly filters a fetch error down to transport exhaustion: a
// dead host must surface as an annotated cell, while any other fetch
// failure keeps the paper's "-" (asset not obtainable) semantics.
func transportOnly(err error) error {
	if errors.Is(err, netsim.ErrRetriesExhausted) {
		return err
	}
	return nil
}

// playableAudioLangs verifies, per language, that the clear audio actually
// plays on the attacker's machine with no keys or account.
func (s *Study) playableAudioLangs(attacker *netsim.Client, o *observation) ([]string, error) {
	var langs []string
	for _, p := range o.mpd.Periods {
		for _, set := range p.AdaptationSets {
			if set.ContentType != dash.ContentAudio || len(set.Representations) == 0 {
				continue
			}
			rep := set.Representations[0]
			list := rep.Segments()
			if list == nil || len(list.SegmentURLs) == 0 {
				continue
			}
			raw, err := fetchObject(attacker, o.cdnHost, rep.BaseURL+list.SegmentURLs[0].SourceURL)
			if err != nil {
				if terr := transportOnly(err); terr != nil {
					return nil, terr
				}
				continue
			}
			seg, err := mp4.ParseMediaSegment(raw)
			if err != nil || !media.SegmentPlayable(seg) {
				continue
			}
			langs = append(langs, set.Lang)
		}
	}
	return langs, nil
}

// probeMP4Track downloads a representation's init and first media segment
// and classifies its protection. A non-nil error means transport
// exhaustion (a dead host), never a classification failure.
func (s *Study) probeMP4Track(attacker *netsim.Client, host string, set *dash.AdaptationSet) (Protection, error) {
	if len(set.Representations) == 0 {
		return ProtectionUnknown, nil
	}
	rep := set.Representations[0]
	list := rep.Segments()
	if list == nil || list.Initialization == nil {
		return ProtectionUnknown, nil
	}
	initRaw, err := fetchObject(attacker, host, rep.BaseURL+list.Initialization.SourceURL)
	if err != nil {
		return ProtectionUnknown, transportOnly(err)
	}
	protected, err := mp4.IsProtected(initRaw)
	if err != nil {
		return ProtectionUnknown, nil
	}
	if protected {
		return ProtectionEncrypted, nil
	}
	// Confirm the clear classification by actually reading a segment.
	if len(list.SegmentURLs) > 0 {
		raw, err := fetchObject(attacker, host, rep.BaseURL+list.SegmentURLs[0].SourceURL)
		if err != nil {
			return ProtectionUnknown, transportOnly(err)
		}
		seg, err := mp4.ParseMediaSegment(raw)
		if err != nil || !media.SegmentPlayable(seg) {
			return ProtectionUnknown, nil
		}
	}
	return ProtectionClear, nil
}

// probeSubtitles downloads a subtitle asset and applies the readable-text
// check.
func (s *Study) probeSubtitles(attacker *netsim.Client, host string, set *dash.AdaptationSet) (Protection, error) {
	if len(set.Representations) == 0 {
		return ProtectionUnknown, nil
	}
	rep := set.Representations[0]
	list := rep.Segments()
	if list == nil || len(list.SegmentURLs) == 0 {
		return ProtectionUnknown, nil
	}
	raw, err := fetchObject(attacker, host, rep.BaseURL+list.SegmentURLs[0].SourceURL)
	if err != nil {
		return ProtectionUnknown, transportOnly(err)
	}
	if media.SubtitleReadable(raw) {
		return ProtectionClear, nil
	}
	return ProtectionEncrypted, nil
}

// RunQ3 classifies key usage from the manifest's key-ID metadata, as the
// paper does ("we note the used key IDs for each content by parsing the
// MPD files").
func (s *Study) RunQ3(app string) (*Q3Result, error) {
	return s.classifyQ3(app, nil)
}

// classifyQ3 is Q3's classification core. The registry hands it the Q2
// dependency result; a nil q2 (the direct RunQ3 path) computes it on
// demand, and only once the manifest is known recoverable.
func (s *Study) classifyQ3(app string, q2 *Q2Result) (*Q3Result, error) {
	o, err := s.observe(app)
	if err != nil {
		return nil, err
	}
	res := &Q3Result{App: app, Usage: KeyUsageUnknown}
	if o.mpd == nil {
		return res, nil
	}
	if q2 == nil {
		if q2, err = s.RunQ2(app); err != nil {
			return nil, err
		}
	}

	videoKIDs := make(map[string]bool)
	audioKIDs := make(map[string]bool)
	videoReps, hiddenVideoKIDs := 0, false
	for _, row := range o.mpd.KeyUsage() {
		switch row.ContentType {
		case dash.ContentVideo:
			videoReps++
			if row.KID == "" {
				hiddenVideoKIDs = true
			} else {
				videoKIDs[row.KID] = true
			}
		case dash.ContentAudio:
			if row.KID != "" {
				audioKIDs[row.KID] = true
			}
		}
	}

	// When the video is known-protected but the manifest hides its key
	// IDs, the analysis is inconclusive (Hulu, HBO Max).
	if q2.Video == ProtectionEncrypted && hiddenVideoKIDs {
		return res, nil
	}
	res.PerResolutionKeys = len(videoKIDs) == videoReps && videoReps > 0

	switch {
	case q2.Audio == ProtectionClear:
		res.Usage = KeyUsageMinimum // audio in clear
	case q2.Audio == ProtectionEncrypted && len(audioKIDs) == 0:
		res.Usage = KeyUsageUnknown // protected but metadata hidden
	default:
		shared := false
		for kid := range audioKIDs {
			if videoKIDs[kid] {
				shared = true
			}
		}
		if shared {
			res.Usage = KeyUsageMinimum // audio shares a video key
		} else {
			res.Usage = KeyUsageRecommended
		}
	}
	return res, nil
}

// RunQ4 plays on every discontinued device cell and classifies each
// outcome — the revocation matrix. The default trio has exactly one
// legacy cell (the Nexus 5), reproducing the paper's single column;
// wider device sets yield one matrix cell per discontinued profile.
func (s *Study) RunQ4(app string) (*Q4Result, error) {
	f, err := s.World.Fixture(app)
	if err != nil {
		return nil, err
	}
	res := &Q4Result{App: app}
	for _, cell := range f.LegacyCells() {
		s.legacyPlays.Add(1)
		out, err := s.playLegacyCell(cell)
		if err != nil {
			return nil, err
		}
		res.Devices = append(res.Devices, *out)
	}
	if len(res.Devices) > 0 {
		res.Outcome = res.Devices[0].Outcome
		res.Detail = res.Devices[0].Detail
	}
	return res, nil
}

// playLegacyCell plays one discontinued device cell under CDM hooks and
// classifies the outcome.
func (s *Study) playLegacyCell(cell *DeviceCell) (*Q4DeviceOutcome, error) {
	mon := monitor.New()
	mon.AttachCDM(cell.Device.Engine)
	defer mon.Detach()
	report := cell.App.Play(ContentID)
	if err := report.TransportErr(); err != nil {
		return nil, err
	}

	out := &Q4DeviceOutcome{Device: cell.Profile.Name}
	switch {
	case report.ProvisionDenied:
		out.Outcome = LegacyProvisioningFails
		out.Detail = report.ProvisionErr
	case report.Played() && report.UsedEmbeddedCDM:
		out.Outcome = LegacyPlaysCustomDRM
	case report.Played():
		out.Outcome = LegacyPlays
		out.Detail = fmt.Sprintf("quality %dp (L3 cap)", report.PlayedHeight)
	default:
		out.Outcome = LegacyOtherFailure
		out.Detail = firstNonEmpty(report.LicenseErr, report.Err)
	}
	return out, nil
}

// fetchObject downloads one CDN object through the attacker's client.
func fetchObject(client *netsim.Client, host, path string) ([]byte, error) {
	resp, err := client.Do(netsim.Request{Host: host, Path: cdn.ObjectPrefix + path})
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("wideleak: fetch %s: status %d", path, resp.Status)
	}
	return resp.Body, nil
}

func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}
