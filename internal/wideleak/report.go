package wideleak

import (
	"fmt"
	"strings"
)

// Report is the full study output in one document: Table I, the aggregate
// insights, and the per-app practical-impact and forgery outcomes.
type Report struct {
	Table     *Table
	Summary   Summary
	Impacts   []ImpactResult
	Forgeries []ForgeryResult
	// MatchesPaper is true when Table equals the paper's Table I.
	MatchesPaper bool
	Diffs        []string
}

// BuildReport runs everything: the four questions for every app, the §IV-D
// chain, and the E7 forgery.
func (s *Study) BuildReport() (*Report, error) {
	table, err := s.BuildTable()
	if err != nil {
		return nil, err
	}
	r := &Report{
		Table:   table,
		Summary: table.Summarize(),
		Diffs:   table.Diff(PaperTable()),
	}
	r.MatchesPaper = len(r.Diffs) == 0
	for _, p := range s.World.Profiles() {
		impact, err := s.RunPracticalImpact(p.Name)
		if err != nil {
			return nil, err
		}
		r.Impacts = append(r.Impacts, *impact)
		forgery, err := s.RunHDForgery(p.Name)
		if err != nil {
			return nil, err
		}
		r.Forgeries = append(r.Forgeries, *forgery)
	}
	return r, nil
}

// Markdown renders the report as a standalone document.
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("# WideLeak study report\n\n")
	b.WriteString("## Table I — Widevine usage and asset protection\n\n")
	ids := r.Table.probeIDs()
	headers := []string{appColumn.Header}
	for _, id := range ids {
		for _, col := range probeSpec(id).Columns {
			headers = append(headers, col.Header)
		}
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(headers, " | "))
	b.WriteString("|" + strings.Repeat("---|", len(headers)) + "\n")
	for _, row := range r.Table.Rows {
		if row.Failed() {
			fmt.Fprintf(&b, "| %s | unavailable: %s |\n", row.App, row.Err)
			continue
		}
		cells := []string{row.App}
		for _, id := range ids {
			spec := probeSpec(id)
			if res := row.Result(id); res != nil {
				cells = append(cells, res.Cells()...)
			} else {
				cells = append(cells, spec.ZeroCells()...)
			}
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	if r.MatchesPaper {
		b.WriteString("\nReproduction check: **matches the paper's Table I cell for cell.**\n")
	} else {
		b.WriteString("\nReproduction check: DIFFERS from the paper:\n\n")
		for _, d := range r.Diffs {
			fmt.Fprintf(&b, "- %s\n", d)
		}
	}

	b.WriteString("\n## Insights\n\n```\n")
	b.WriteString(r.Summary.Render())
	b.WriteString("```\n")

	b.WriteString("\n## Practical impact (§IV-D) on the discontinued Nexus 5\n\n")
	b.WriteString("| OTT | Keybox | RSA key | Content keys | DRM-free | Max quality | Notes |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, im := range r.Impacts {
		quality := "-"
		if im.MaxHeight > 0 {
			quality = fmt.Sprintf("%dp", im.MaxHeight)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %s | %s | %s |\n",
			im.App, yesNo(im.KeyboxRecovered), yesNo(im.RSAKeyRecovered),
			im.ContentKeysFound, yesNo(im.DRMFree), quality, im.FailureReason)
	}

	b.WriteString("\n## HD forgery (§V-C future work)\n\n")
	b.WriteString("| OTT | HD keys granted | Max quality | Notes |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, fg := range r.Forgeries {
		quality := "-"
		if fg.MaxHeight > 0 {
			quality = fmt.Sprintf("%dp", fg.MaxHeight)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
			fg.App, yesNo(fg.HDKeysGranted), quality, fg.FailureReason)
	}
	return b.String()
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
