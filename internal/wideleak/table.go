package wideleak

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/wideleak/probe"
)

// appColumn is the fixed leading column every table renders.
var appColumn = probe.Column{Key: "app", Header: "OTT", Width: 20}

// Row is one app's line of Table I: the app name plus one typed result
// per selected probe.
type Row struct {
	App string

	// Probes lists the selected probe IDs in registry order — the row's
	// column set. Dependencies that ran only to feed a selected probe do
	// not appear.
	Probes []string

	// Results holds the typed probe results, keyed by probe ID.
	Results map[string]probe.Result

	// Err annotates a row whose app could not be studied because its
	// backend stayed unreachable through every retry. The other cells are
	// zero; Render prints the row as unavailable instead of failing the
	// whole table.
	Err string
}

// NewRow assembles a row from typed probe results, ordering the probe
// list by registry order.
func NewRow(app string, results ...probe.Result) Row {
	row := Row{App: app, Results: make(map[string]probe.Result, len(results))}
	for _, res := range results {
		if res != nil {
			row.Results[res.ProbeID()] = res
		}
	}
	for _, id := range probeRegistry.IDs() {
		if _, ok := row.Results[id]; ok {
			row.Probes = append(row.Probes, id)
		}
	}
	return row
}

// Failed reports whether the row is a transport-failure annotation
// rather than study results.
func (r *Row) Failed() bool { return r.Err != "" }

// Result returns the row's typed result for a probe ID, nil when the
// probe was not selected or the row failed.
func (r *Row) Result(id string) probe.Result {
	if r.Results == nil {
		return nil
	}
	return r.Results[id]
}

// Q1 returns the row's Widevine-usage result, nil when absent.
func (r *Row) Q1() *Q1Result { q, _ := r.Result("q1").(*Q1Result); return q }

// Q2 returns the row's content-protection result, nil when absent.
func (r *Row) Q2() *Q2Result { q, _ := r.Result("q2").(*Q2Result); return q }

// Q3 returns the row's key-usage result, nil when absent.
func (r *Row) Q3() *Q3Result { q, _ := r.Result("q3").(*Q3Result); return q }

// Q4 returns the row's legacy-device result, nil when absent.
func (r *Row) Q4() *Q4Result { q, _ := r.Result("q4").(*Q4Result); return q }

// Q5 returns the row's license-caching result, nil when absent.
func (r *Row) Q5() *Q5Result { q, _ := r.Result("q5").(*Q5Result); return q }

// UsesWidevine reports the Q1 verdict (false when Q1 is absent).
func (r *Row) UsesWidevine() bool {
	if q := r.Q1(); q != nil {
		return q.UsesWidevine
	}
	return false
}

// CustomDRMOnL3 reports the Q1 custom-DRM verdict (false when absent).
func (r *Row) CustomDRMOnL3() bool {
	if q := r.Q1(); q != nil {
		return q.CustomDRMOnL3
	}
	return false
}

// Video reports the Q2 video protection (Unknown when absent).
func (r *Row) Video() Protection {
	if q := r.Q2(); q != nil {
		return q.Video
	}
	return ProtectionUnknown
}

// Audio reports the Q2 audio protection (Unknown when absent).
func (r *Row) Audio() Protection {
	if q := r.Q2(); q != nil {
		return q.Audio
	}
	return ProtectionUnknown
}

// Subtitles reports the Q2 subtitle protection (Unknown when absent).
func (r *Row) Subtitles() Protection {
	if q := r.Q2(); q != nil {
		return q.Subtitles
	}
	return ProtectionUnknown
}

// KeyUsage reports the Q3 classification (Unknown when absent).
func (r *Row) KeyUsage() KeyUsage {
	if q := r.Q3(); q != nil {
		return q.Usage
	}
	return KeyUsageUnknown
}

// Legacy reports the Q4 outcome (OtherFailure when absent).
func (r *Row) Legacy() LegacyOutcome {
	if q := r.Q4(); q != nil {
		return q.Outcome
	}
	return LegacyOtherFailure
}

// Table is the reproduced Table I.
type Table struct {
	// Probes is the selected probe ID set the table was built with, in
	// registry order. Empty means "derive from rows, defaulting to the
	// registry's default set" — so hand-built tables keep working.
	Probes []string

	Rows []Row
}

// probeIDs resolves the table's column set: the explicit selection,
// else the first populated row's probe list, else the default probes.
func (t *Table) probeIDs() []string {
	if len(t.Probes) > 0 {
		return t.Probes
	}
	for _, r := range t.Rows {
		if len(r.Probes) > 0 {
			return r.Probes
		}
	}
	return probeRegistry.DefaultIDs()
}

// BuildTable runs every selected probe for every app and assembles
// Table I. It fans rows out over Study.Concurrency workers (default
// runtime.GOMAXPROCS(0)); the result is byte-identical to the sequential
// build because every app draws from its own deterministic rand stream.
func (s *Study) BuildTable() (*Table, error) {
	return s.BuildTableCtx(context.Background())
}

// BuildTableCtx is BuildTable under a caller-supplied context: cancelling
// it stops the build at the next probe boundary, making long studies
// abortable jobs. A cancelled build returns the context's error.
func (s *Study) BuildTableCtx(ctx context.Context) (*Table, error) {
	return s.BuildTableParallelCtx(ctx, s.Concurrency)
}

// BuildTableParallel assembles Table I with up to parallelism app rows in
// flight at once (<= 0 selects runtime.GOMAXPROCS(0), 1 is the sequential
// build). Rows are reassembled in profile order, and the first error in
// profile order is propagated; remaining rows are not started once any
// worker has failed.
func (s *Study) BuildTableParallel(parallelism int) (*Table, error) {
	return s.BuildTableParallelCtx(context.Background(), parallelism)
}

// BuildTableParallelCtx is BuildTableParallel bounded by a context: row
// workers observe cancellation between probes, and no further rows start
// once the context is done.
func (s *Study) BuildTableParallelCtx(ctx context.Context, parallelism int) (*Table, error) {
	selected, _, err := probeRegistry.Resolve(s.Probes)
	if err != nil {
		return nil, err
	}
	profiles := s.World.Profiles()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(profiles) {
		parallelism = len(profiles)
	}

	if parallelism <= 1 {
		t := &Table{Probes: selected}
		for _, p := range profiles {
			row, err := s.buildRowGraceful(ctx, p.Name)
			if err != nil {
				return nil, fmt.Errorf("wideleak: row %s: %w", p.Name, err)
			}
			t.Rows = append(t.Rows, *row)
		}
		return t, nil
	}

	rows := make([]*Row, len(profiles))
	errs := make([]error, len(profiles))
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go func() {
			defer wg.Done()
			for idx := range next {
				rows[idx], errs[idx] = s.buildRowGraceful(ctx, profiles[idx].Name)
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range profiles {
		if failed.Load() || ctx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()

	t := &Table{Probes: selected, Rows: make([]Row, 0, len(profiles))}
	for i, p := range profiles {
		if errs[i] != nil {
			return nil, fmt.Errorf("wideleak: row %s: %w", p.Name, errs[i])
		}
		if rows[i] == nil {
			// Rows are fed in profile order, so a skipped row sits after a
			// failed one (returned above) or follows a context cancellation.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("wideleak: row %s: build skipped", p.Name)
		}
		t.Rows = append(t.Rows, *rows[i])
	}
	return t, nil
}

// buildRowGraceful degrades a transport failure — the app's backend dead
// through every retry — into an annotated row, so one unreachable
// deployment costs its own cell, not the whole table. Every other error
// (a genuine study bug) still propagates.
func (s *Study) buildRowGraceful(ctx context.Context, app string) (*Row, error) {
	row, err := s.buildRow(ctx, app)
	if err == nil {
		return row, nil
	}
	if errors.Is(err, netsim.ErrRetriesExhausted) {
		return &Row{App: app, Err: err.Error()}, nil
	}
	return nil, err
}

// buildRow resolves the study's probe selection and runs the execution
// order — dependencies first, by registry construction — feeding each
// probe the results it requires. Only selected probes land on the row.
// Cancellation is observed between probes: a done context stops the row
// before the next probe starts.
func (s *Study) buildRow(ctx context.Context, app string) (*Row, error) {
	selected, execution, err := probeRegistry.Resolve(s.Probes)
	if err != nil {
		return nil, err
	}
	results := make(probe.Results, len(execution))
	for _, id := range execution {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := s.runProbe(ctx, id, app, results)
		if err != nil {
			return nil, err
		}
		results[id] = res
	}
	row := &Row{App: app, Probes: selected, Results: make(map[string]probe.Result, len(selected))}
	for _, id := range selected {
		row.Results[id] = results[id]
	}
	return row, nil
}

// runProbe executes one probe for one app, emitting the
// started/finished/degraded events with wall and virtual timing. deps
// carries the results of the probe's execution-order predecessors (the
// registry hands the probe only what it declared via Requires). Both the
// sequential row builder and the matrix scheduler run cells through this
// single body, so a memoized cell is produced by exactly the code a
// fresh run would have executed.
func (s *Study) runProbe(ctx context.Context, id, app string, deps probe.Results) (probe.Result, error) {
	spec := probeSpec(id)
	s.emit(probe.Event{Kind: probe.EventProbeStarted, Probe: id, App: app})
	wallStart := time.Now()
	virtStart := s.World.Clock().Now()
	res, err := spec.Run(ctx, s, app, deps)
	wall := time.Since(wallStart)
	virtual := s.World.Clock().Now() - virtStart
	if err != nil {
		if errors.Is(err, netsim.ErrRetriesExhausted) {
			s.emit(probe.Event{Kind: probe.EventProbeDegraded, Probe: id, App: app,
				Err: err.Error(), Wall: wall, Virtual: virtual})
		}
		return nil, err
	}
	s.emit(probe.Event{Kind: probe.EventProbeFinished, Probe: id, App: app,
		Wall: wall, Virtual: virtual})
	return res, nil
}

// Render prints the table in the paper's layout, deriving columns and
// legend from the registered probes.
func (t *Table) Render() string {
	ids := t.probeIDs()
	cols := []probe.Column{appColumn}
	for _, id := range ids {
		cols = append(cols, probeSpec(id).Columns...)
	}

	var b strings.Builder
	b.WriteString("TABLE I: WIDEVINE USAGE AND ASSET PROTECTIONS BY OTTS\n")
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = fmt.Sprintf("%-*s", c.Width, c.Header)
	}
	headerLine := strings.Join(header, " ") + "\n"
	b.WriteString(headerLine)
	b.WriteString(strings.Repeat("-", len(headerLine)-1) + "\n")

	for _, r := range t.Rows {
		if r.Failed() {
			fmt.Fprintf(&b, "%-*s unavailable: %s\n", appColumn.Width, r.App, r.Err)
			continue
		}
		cells := []string{r.App}
		for _, id := range ids {
			spec := probeSpec(id)
			if res := r.Result(id); res != nil {
				cells = append(cells, res.Cells()...)
			} else {
				cells = append(cells, spec.ZeroCells()...)
			}
		}
		padded := make([]string, len(cells))
		for i, cell := range cells {
			padded[i] = fmt.Sprintf("%-*s", cols[i].Width, cell)
		}
		b.WriteString(strings.Join(padded, " ") + "\n")
	}

	seen := make(map[string]bool)
	for _, id := range ids {
		for _, line := range probeSpec(id).Legend {
			if seen[line] {
				continue
			}
			seen[line] = true
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// paperRow builds one ground-truth row of the paper's Table I (every app
// uses Widevine).
func paperRow(app string, customDRM bool, video, audio, subs Protection, usage KeyUsage, legacy LegacyOutcome) Row {
	return NewRow(app,
		&Q1Result{App: app, UsesWidevine: true, CustomDRMOnL3: customDRM},
		&Q2Result{App: app, Video: video, Audio: audio, Subtitles: subs},
		&Q3Result{App: app, Usage: usage},
		&Q4Result{App: app, Outcome: legacy},
	)
}

// PaperTable returns the expected Table I from the paper, cell for cell —
// the ground truth the reproduction is checked against.
func PaperTable() *Table {
	return &Table{Rows: []Row{
		paperRow("Netflix", false, ProtectionEncrypted, ProtectionClear, ProtectionClear, KeyUsageMinimum, LegacyPlays),
		paperRow("Disney+", false, ProtectionEncrypted, ProtectionEncrypted, ProtectionClear, KeyUsageMinimum, LegacyProvisioningFails),
		paperRow("Amazon Prime Video", true, ProtectionEncrypted, ProtectionEncrypted, ProtectionClear, KeyUsageRecommended, LegacyPlaysCustomDRM),
		paperRow("Hulu", false, ProtectionEncrypted, ProtectionEncrypted, ProtectionUnknown, KeyUsageUnknown, LegacyPlays),
		paperRow("HBO Max", false, ProtectionEncrypted, ProtectionEncrypted, ProtectionClear, KeyUsageUnknown, LegacyProvisioningFails),
		paperRow("Starz", false, ProtectionEncrypted, ProtectionEncrypted, ProtectionUnknown, KeyUsageMinimum, LegacyProvisioningFails),
		paperRow("myCANAL", false, ProtectionEncrypted, ProtectionClear, ProtectionClear, KeyUsageMinimum, LegacyPlays),
		paperRow("Showtime", false, ProtectionEncrypted, ProtectionEncrypted, ProtectionClear, KeyUsageMinimum, LegacyPlays),
		paperRow("OCS", false, ProtectionEncrypted, ProtectionEncrypted, ProtectionClear, KeyUsageMinimum, LegacyPlays),
		paperRow("Salto", false, ProtectionEncrypted, ProtectionClear, ProtectionClear, KeyUsageMinimum, LegacyPlays),
	}}
}

// Diff compares two tables and returns a human-readable list of
// mismatching cells (empty when identical). Column sets are compared
// first — a probe selected on one side only reports its columns as
// added or removed — then rows are compared over the shared probes.
func (t *Table) Diff(other *Table) []string {
	var out []string
	ids := t.probeIDs()
	otherIDs := other.probeIDs()
	has := make(map[string]bool, len(ids))
	for _, id := range ids {
		has[id] = true
	}
	otherHas := make(map[string]bool, len(otherIDs))
	for _, id := range otherIDs {
		otherHas[id] = true
	}
	var shared []string
	for _, id := range ids {
		if !otherHas[id] {
			for _, col := range probeSpec(id).Columns {
				out = append(out, fmt.Sprintf("column %s: missing from other table", col.Key))
			}
			continue
		}
		shared = append(shared, id)
	}
	for _, id := range otherIDs {
		if !has[id] {
			for _, col := range probeSpec(id).Columns {
				out = append(out, fmt.Sprintf("column %s: only in other table", col.Key))
			}
		}
	}

	byApp := make(map[string]Row, len(other.Rows))
	for _, r := range other.Rows {
		byApp[r.App] = r
	}
	for _, r := range t.Rows {
		o, ok := byApp[r.App]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from other table", r.App))
			continue
		}
		check := func(col string, a, b any) {
			if a != b {
				out = append(out, fmt.Sprintf("%s/%s: %v != %v", r.App, col, a, b))
			}
		}
		// A failed row carries no cells; compare only the annotations.
		if r.Failed() || o.Failed() {
			check("error", r.Err, o.Err)
			continue
		}
		for _, id := range shared {
			spec := probeSpec(id)
			mine, theirs := spec.ZeroValues(), spec.ZeroValues()
			if res := r.Result(id); res != nil {
				mine = res.Values()
			}
			if res := o.Result(id); res != nil {
				theirs = res.Values()
			}
			for i, f := range spec.Fields {
				check(f.Diff, mine[i], theirs[i])
			}
		}
	}
	return out
}
