package wideleak

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
)

// Row is one app's line of Table I.
type Row struct {
	App           string
	UsesWidevine  bool
	CustomDRMOnL3 bool
	Video         Protection
	Audio         Protection
	Subtitles     Protection
	KeyUsage      KeyUsage
	Legacy        LegacyOutcome

	// Err annotates a row whose app could not be studied because its
	// backend stayed unreachable through every retry. The other cells are
	// zero; Render prints the row as unavailable instead of failing the
	// whole table.
	Err string
}

// Failed reports whether the row is a transport-failure annotation
// rather than study results.
func (r *Row) Failed() bool { return r.Err != "" }

// Table is the reproduced Table I.
type Table struct {
	Rows []Row
}

// BuildTable runs every research question for every app and assembles
// Table I. It fans rows out over Study.Concurrency workers (default
// runtime.GOMAXPROCS(0)); the result is byte-identical to the sequential
// build because every app draws from its own deterministic rand stream.
func (s *Study) BuildTable() (*Table, error) {
	return s.BuildTableParallel(s.Concurrency)
}

// BuildTableParallel assembles Table I with up to parallelism app rows in
// flight at once (<= 0 selects runtime.GOMAXPROCS(0), 1 is the sequential
// build). Rows are reassembled in profile order, and the first error in
// profile order is propagated; remaining rows are not started once any
// worker has failed.
func (s *Study) BuildTableParallel(parallelism int) (*Table, error) {
	profiles := s.World.Profiles()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(profiles) {
		parallelism = len(profiles)
	}

	if parallelism <= 1 {
		t := &Table{}
		for _, p := range profiles {
			row, err := s.buildRowGraceful(p.Name)
			if err != nil {
				return nil, fmt.Errorf("wideleak: row %s: %w", p.Name, err)
			}
			t.Rows = append(t.Rows, *row)
		}
		return t, nil
	}

	rows := make([]*Row, len(profiles))
	errs := make([]error, len(profiles))
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go func() {
			defer wg.Done()
			for idx := range next {
				rows[idx], errs[idx] = s.buildRowGraceful(profiles[idx].Name)
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range profiles {
		if failed.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()

	t := &Table{Rows: make([]Row, 0, len(profiles))}
	for i, p := range profiles {
		if errs[i] != nil {
			return nil, fmt.Errorf("wideleak: row %s: %w", p.Name, errs[i])
		}
		if rows[i] == nil {
			// Rows are fed in profile order, so a skipped row can only sit
			// after a failed one — which returned above. Guard anyway.
			return nil, fmt.Errorf("wideleak: row %s: build skipped", p.Name)
		}
		t.Rows = append(t.Rows, *rows[i])
	}
	return t, nil
}

// buildRowGraceful degrades a transport failure — the app's backend dead
// through every retry — into an annotated row, so one unreachable
// deployment costs its own cell, not the whole table. Every other error
// (a genuine study bug) still propagates.
func (s *Study) buildRowGraceful(app string) (*Row, error) {
	row, err := s.buildRow(app)
	if err == nil {
		return row, nil
	}
	if errors.Is(err, netsim.ErrRetriesExhausted) {
		return &Row{App: app, Err: err.Error()}, nil
	}
	return nil, err
}

func (s *Study) buildRow(app string) (*Row, error) {
	q1, err := s.RunQ1(app)
	if err != nil {
		return nil, err
	}
	q2, err := s.RunQ2(app)
	if err != nil {
		return nil, err
	}
	q3, err := s.RunQ3(app)
	if err != nil {
		return nil, err
	}
	q4, err := s.RunQ4(app)
	if err != nil {
		return nil, err
	}
	return &Row{
		App:           app,
		UsesWidevine:  q1.UsesWidevine,
		CustomDRMOnL3: q1.CustomDRMOnL3,
		Video:         q2.Video,
		Audio:         q2.Audio,
		Subtitles:     q2.Subtitles,
		KeyUsage:      q3.Usage,
		Legacy:        q4.Outcome,
	}, nil
}

// widevineCell renders the "Widevine used" column with the paper's dagger
// for custom-DRM fallback.
func (r *Row) widevineCell() string {
	if !r.UsesWidevine {
		return "no"
	}
	if r.CustomDRMOnL3 {
		return "yes †"
	}
	return "yes"
}

// legacyCell renders the Q4 column with the paper's symbols: a filled
// circle for playback, a half circle for provisioning failure.
func (r *Row) legacyCell() string {
	switch r.Legacy {
	case LegacyPlays:
		return "plays"
	case LegacyPlaysCustomDRM:
		return "plays †"
	case LegacyProvisioningFails:
		return "provisioning fails"
	default:
		return "fails"
	}
}

// Render prints the table in the paper's layout.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString("TABLE I: WIDEVINE USAGE AND ASSET PROTECTIONS BY OTTS\n")
	header := fmt.Sprintf("%-20s %-10s %-10s %-10s %-10s %-12s %-20s\n",
		"OTT", "Widevine", "Video", "Audio", "Subtitles", "Key Usage", "Playback on L3 legacy")
	b.WriteString(header)
	b.WriteString(strings.Repeat("-", len(header)-1) + "\n")
	for _, r := range t.Rows {
		if r.Failed() {
			fmt.Fprintf(&b, "%-20s unavailable: %s\n", r.App, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-20s %-10s %-10s %-10s %-10s %-12s %-20s\n",
			r.App, r.widevineCell(), r.Video, r.Audio, r.Subtitles, r.KeyUsage, r.legacyCell())
	}
	b.WriteString("† using custom DRM if only Widevine L3 is available.\n")
	b.WriteString("Minimum: audio in clear or using the same encryption key as the video.\n")
	b.WriteString("Recommended: audio and video are encrypted with different keys.\n")
	return b.String()
}

// PaperTable returns the expected Table I from the paper, cell for cell —
// the ground truth the reproduction is checked against.
func PaperTable() *Table {
	return &Table{Rows: []Row{
		{App: "Netflix", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionClear, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "Disney+", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyProvisioningFails},
		{App: "Amazon Prime Video", UsesWidevine: true, CustomDRMOnL3: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageRecommended, Legacy: LegacyPlaysCustomDRM},
		{App: "Hulu", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionUnknown, KeyUsage: KeyUsageUnknown, Legacy: LegacyPlays},
		{App: "HBO Max", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageUnknown, Legacy: LegacyProvisioningFails},
		{App: "Starz", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionUnknown, KeyUsage: KeyUsageMinimum, Legacy: LegacyProvisioningFails},
		{App: "myCANAL", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionClear, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "Showtime", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "OCS", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "Salto", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionClear, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
	}}
}

// Diff compares two tables and returns a human-readable list of
// mismatching cells (empty when identical).
func (t *Table) Diff(other *Table) []string {
	var out []string
	byApp := make(map[string]Row, len(other.Rows))
	for _, r := range other.Rows {
		byApp[r.App] = r
	}
	for _, r := range t.Rows {
		o, ok := byApp[r.App]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from other table", r.App))
			continue
		}
		check := func(col string, a, b any) {
			if a != b {
				out = append(out, fmt.Sprintf("%s/%s: %v != %v", r.App, col, a, b))
			}
		}
		// A failed row carries no cells; compare only the annotations.
		if r.Failed() || o.Failed() {
			check("error", r.Err, o.Err)
			continue
		}
		check("widevine", r.UsesWidevine, o.UsesWidevine)
		check("customDRM", r.CustomDRMOnL3, o.CustomDRMOnL3)
		check("video", r.Video, o.Video)
		check("audio", r.Audio, o.Audio)
		check("subtitles", r.Subtitles, o.Subtitles)
		check("keyUsage", r.KeyUsage, o.KeyUsage)
		check("legacy", r.Legacy, o.Legacy)
	}
	return out
}
