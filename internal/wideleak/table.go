package wideleak

import (
	"fmt"
	"strings"
)

// Row is one app's line of Table I.
type Row struct {
	App           string
	UsesWidevine  bool
	CustomDRMOnL3 bool
	Video         Protection
	Audio         Protection
	Subtitles     Protection
	KeyUsage      KeyUsage
	Legacy        LegacyOutcome
}

// Table is the reproduced Table I.
type Table struct {
	Rows []Row
}

// BuildTable runs every research question for every app and assembles
// Table I.
func (s *Study) BuildTable() (*Table, error) {
	t := &Table{}
	for _, p := range s.World.Profiles() {
		row, err := s.buildRow(p.Name)
		if err != nil {
			return nil, fmt.Errorf("wideleak: row %s: %w", p.Name, err)
		}
		t.Rows = append(t.Rows, *row)
	}
	return t, nil
}

func (s *Study) buildRow(app string) (*Row, error) {
	q1, err := s.RunQ1(app)
	if err != nil {
		return nil, err
	}
	q2, err := s.RunQ2(app)
	if err != nil {
		return nil, err
	}
	q3, err := s.RunQ3(app)
	if err != nil {
		return nil, err
	}
	q4, err := s.RunQ4(app)
	if err != nil {
		return nil, err
	}
	return &Row{
		App:           app,
		UsesWidevine:  q1.UsesWidevine,
		CustomDRMOnL3: q1.CustomDRMOnL3,
		Video:         q2.Video,
		Audio:         q2.Audio,
		Subtitles:     q2.Subtitles,
		KeyUsage:      q3.Usage,
		Legacy:        q4.Outcome,
	}, nil
}

// widevineCell renders the "Widevine used" column with the paper's dagger
// for custom-DRM fallback.
func (r *Row) widevineCell() string {
	if !r.UsesWidevine {
		return "no"
	}
	if r.CustomDRMOnL3 {
		return "yes †"
	}
	return "yes"
}

// legacyCell renders the Q4 column with the paper's symbols: a filled
// circle for playback, a half circle for provisioning failure.
func (r *Row) legacyCell() string {
	switch r.Legacy {
	case LegacyPlays:
		return "plays"
	case LegacyPlaysCustomDRM:
		return "plays †"
	case LegacyProvisioningFails:
		return "provisioning fails"
	default:
		return "fails"
	}
}

// Render prints the table in the paper's layout.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString("TABLE I: WIDEVINE USAGE AND ASSET PROTECTIONS BY OTTS\n")
	header := fmt.Sprintf("%-20s %-10s %-10s %-10s %-10s %-12s %-20s\n",
		"OTT", "Widevine", "Video", "Audio", "Subtitles", "Key Usage", "Playback on L3 legacy")
	b.WriteString(header)
	b.WriteString(strings.Repeat("-", len(header)-1) + "\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-20s %-10s %-10s %-10s %-10s %-12s %-20s\n",
			r.App, r.widevineCell(), r.Video, r.Audio, r.Subtitles, r.KeyUsage, r.legacyCell())
	}
	b.WriteString("† using custom DRM if only Widevine L3 is available.\n")
	b.WriteString("Minimum: audio in clear or using the same encryption key as the video.\n")
	b.WriteString("Recommended: audio and video are encrypted with different keys.\n")
	return b.String()
}

// PaperTable returns the expected Table I from the paper, cell for cell —
// the ground truth the reproduction is checked against.
func PaperTable() *Table {
	return &Table{Rows: []Row{
		{App: "Netflix", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionClear, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "Disney+", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyProvisioningFails},
		{App: "Amazon Prime Video", UsesWidevine: true, CustomDRMOnL3: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageRecommended, Legacy: LegacyPlaysCustomDRM},
		{App: "Hulu", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionUnknown, KeyUsage: KeyUsageUnknown, Legacy: LegacyPlays},
		{App: "HBO Max", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageUnknown, Legacy: LegacyProvisioningFails},
		{App: "Starz", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionUnknown, KeyUsage: KeyUsageMinimum, Legacy: LegacyProvisioningFails},
		{App: "myCANAL", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionClear, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "Showtime", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "OCS", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionEncrypted, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
		{App: "Salto", UsesWidevine: true, Video: ProtectionEncrypted, Audio: ProtectionClear, Subtitles: ProtectionClear, KeyUsage: KeyUsageMinimum, Legacy: LegacyPlays},
	}}
}

// Diff compares two tables and returns a human-readable list of
// mismatching cells (empty when identical).
func (t *Table) Diff(other *Table) []string {
	var out []string
	byApp := make(map[string]Row, len(other.Rows))
	for _, r := range other.Rows {
		byApp[r.App] = r
	}
	for _, r := range t.Rows {
		o, ok := byApp[r.App]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from other table", r.App))
			continue
		}
		check := func(col string, a, b any) {
			if a != b {
				out = append(out, fmt.Sprintf("%s/%s: %v != %v", r.App, col, a, b))
			}
		}
		check("widevine", r.UsesWidevine, o.UsesWidevine)
		check("customDRM", r.CustomDRMOnL3, o.CustomDRMOnL3)
		check("video", r.Video, o.Video)
		check("audio", r.Audio, o.Audio)
		check("subtitles", r.Subtitles, o.Subtitles)
		check("keyUsage", r.KeyUsage, o.KeyUsage)
		check("legacy", r.Legacy, o.Legacy)
	}
	return out
}
