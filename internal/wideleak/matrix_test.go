package wideleak

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/ott"
)

// matrixProfiles is the small app set most matrix tests run over — two
// apps keep cold-world keygen cheap while still exercising multi-row
// reassembly.
var matrixProfiles = []string{"Netflix", "Disney+"}

// freshTable runs one spec the pre-matrix way: its own world, its own
// study, the plain table builder.
func freshTable(t *testing.T, spec RunSpec) *Table {
	t.Helper()
	study, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	table, err := study.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// encodeAll renders a table in every supported format, concatenated —
// the strictest byte-identity probe the exporters offer.
func encodeAll(t *testing.T, table *Table) string {
	t.Helper()
	var b strings.Builder
	for _, format := range TableFormats() {
		raw, err := table.Encode(format)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCellKey pins the address's discrimination: every component that
// can change a cell's bytes must change the key, and canonical
// defaults must collapse onto it.
func TestCellKey(t *testing.T) {
	base := CellKey("default", nil, nil, "", "Netflix", "q1")
	if got := CellKey("", nil, nil, "", "Netflix", "q1"); got != base {
		t.Errorf("empty seed did not canonicalize to default: %s != %s", got, base)
	}
	if got := CellKey("default", &RunFaults{Rate: 0}, nil, "", "Netflix", "q1"); got != base {
		t.Errorf("zero-rate faults changed the key")
	}
	if got := CellKey("default", &RunFaults{Rate: 0.25}, nil, "", "Netflix", "q1"); got == base {
		t.Errorf("fault schedule not part of the key")
	}
	if CellKey("default", &RunFaults{Rate: 0.25}, nil, "", "Netflix", "q1") !=
		CellKey("default", &RunFaults{Rate: 0.25, Seed: "chaos"}, nil, "", "Netflix", "q1") {
		t.Errorf("default fault seed did not canonicalize to chaos")
	}
	// Nil devices and the explicit canonical default trio are the same cell.
	trio, err := CanonicalDeviceNames(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := CellKey("default", nil, trio, "", "Netflix", "q1"); got != base {
		t.Errorf("explicit default device trio did not collapse onto nil: %s != %s", got, base)
	}
	distinct := map[string]string{
		"seed":    CellKey("other", nil, nil, "", "Netflix", "q1"),
		"profile": CellKey("default", nil, nil, "", "Hulu", "q1"),
		"probe":   CellKey("default", nil, nil, "", "Netflix", "q2"),
		"devices": CellKey("default", nil, []string{"pixel", "l3"}, "", "Netflix", "q1"),
		"dialect": CellKey("default", nil, nil, "hls", "Netflix", "q1"),
	}
	for dim, key := range distinct {
		if key == base {
			t.Errorf("changing %s did not change the cell key", dim)
		}
	}
	if base != CellKey("default", nil, nil, "", "Netflix", "q1") {
		t.Errorf("cell key not stable across calls")
	}
}

// TestBatch_ByteIdenticalToFresh is the tentpole property: every table
// a batch reassembles from deduplicated, memoized cells must be
// byte-identical — in every output format — to the table a fresh
// per-spec world-and-study run produces, sequentially and in parallel,
// with and without a fault schedule.
func TestBatch_ByteIdenticalToFresh(t *testing.T) {
	specs := []RunSpec{
		{Seed: "matrix-a", Profiles: matrixProfiles},
		{Seed: "matrix-a", Profiles: matrixProfiles, Probes: []string{"q2", "q3"}},
		{Seed: "matrix-a", Profiles: matrixProfiles, Probes: []string{"q5"}},
		{Seed: "matrix-a", Profiles: matrixProfiles, Faults: &RunFaults{Rate: 0.25}},
		{Seed: "matrix-b", Profiles: matrixProfiles[:1], Probes: []string{"q1"}},
	}
	want := make([]string, len(specs))
	for i, spec := range specs {
		want[i] = encodeAll(t, freshTable(t, spec))
	}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := ExecuteBatch(context.Background(), specs, BatchOptions{
				Concurrency: workers,
				Cache:       NewCellCache(256),
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, table := range res.Tables {
				if got := encodeAll(t, table); got != want[i] {
					t.Errorf("spec %d: batch table diverged from fresh run:\n--- batch ---\n%s--- fresh ---\n%s", i, got, want[i])
				}
			}
			// The batch must actually have shared work: specs 0-2 share one
			// world and the q2/q3/q5 cells overlap spec 0's execution set.
			st := res.Stats
			if st.CellsPlanned >= st.CellsNeeded {
				t.Errorf("no dedup: planned %d cells for %d demands", st.CellsPlanned, st.CellsNeeded)
			}
			if st.WorldsBuilt != 3 {
				t.Errorf("WorldsBuilt = %d, want 3 (matrix-a, matrix-a+faults, matrix-b)", st.WorldsBuilt)
			}
			// Specs 0-2 share one observation per app; a fresh run of the
			// three would have paid three per app.
			if st.Observations >= 3*len(matrixProfiles) {
				t.Errorf("Observations = %d — observation sharing did not happen", st.Observations)
			}
		})
	}
}

// TestBatch_DefaultSpecMatchesGolden pins the batch path straight to the
// committed golden files: the default spec reassembled from cells must
// reproduce testdata/tableI_default.* byte for byte.
func TestBatch_DefaultSpecMatchesGolden(t *testing.T) {
	res, err := ExecuteBatch(context.Background(), []RunSpec{{}}, BatchOptions{Cache: NewCellCache(64)})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range TableFormats() {
		golden, err := os.ReadFile(filepath.Join("testdata", "tableI_default."+format))
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Tables[0].Encode(format)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(golden) {
			t.Errorf("%s: batch-built default table diverged from golden", format)
		}
	}
}

// TestBatch_SubsetRecombinesFromCells: once a full run has populated the
// cell cache, a probe-subset spec must be served purely by recombination
// — no world built, no probe executed, no observation run.
func TestBatch_SubsetRecombinesFromCells(t *testing.T) {
	cache := NewCellCache(256)
	full := RunSpec{Seed: "matrix-c", Profiles: matrixProfiles}
	first, err := ExecuteBatch(context.Background(), []RunSpec{full}, BatchOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.WorldsBuilt != 1 || first.Stats.CellsExecuted == 0 {
		t.Fatalf("priming run did no work: %+v", first.Stats)
	}

	subset := RunSpec{Seed: "matrix-c", Profiles: matrixProfiles, Probes: []string{"q2", "q3"}}
	res, err := ExecuteBatch(context.Background(), []RunSpec{subset}, BatchOptions{
		Cache: cache,
		BuildStudy: func(spec RunSpec) (*Study, error) {
			t.Errorf("recombination built a world for %+v", spec)
			return spec.Build()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.CellsExecuted != 0 || st.WorldsBuilt != 0 || st.Observations != 0 || st.LegacyPlaybacks != 0 {
		t.Errorf("recombination did device work: %+v", st)
	}
	if st.CellsCached != 2*len(matrixProfiles) {
		t.Errorf("CellsCached = %d, want %d", st.CellsCached, 2*len(matrixProfiles))
	}
	if got, want := encodeAll(t, res.Tables[0]), encodeAll(t, freshTable(t, subset)); got != want {
		t.Errorf("recombined table diverged from fresh run:\n--- recombined ---\n%s--- fresh ---\n%s", got, want)
	}
}

// TestBatch_PermanentFaultByteIdentical exercises the annotated-row
// reassembly: with one app's license backend dead through every retry,
// each spec's row must carry exactly the annotation its own fresh run
// would — including the device name, which depends on which probe in
// the spec's own execution order hits the dead host first (Pixel for an
// observation-led spec, Nexus 5 for a bare q4 spec).
func TestBatch_PermanentFaultByteIdentical(t *testing.T) {
	const seed = "matrix-perm"
	var victim ott.Profile
	for _, p := range ott.Profiles() {
		if p.Name == "Showtime" {
			victim = p
		}
	}
	profiles := []string{"Netflix", victim.Name}
	kill := func(study *Study) *Study {
		study.World.InstallFaults(FaultSpec{
			Seed:    "permanent",
			Default: TransientFaults(0.2),
			PerHost: map[string]netsim.FaultProfile{
				victim.LicenseHost(): {Permanent: true},
			},
		})
		return study
	}

	specs := []RunSpec{
		{Seed: seed, Profiles: profiles},
		{Seed: seed, Profiles: profiles, Probes: []string{"q4"}},
		{Seed: seed, Profiles: profiles, Probes: []string{"q2"}},
	}
	want := make([]string, len(specs))
	for i, spec := range specs {
		study, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		table, err := kill(study).BuildTable()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = encodeAll(t, table)
	}

	res, err := ExecuteBatch(context.Background(), specs, BatchOptions{
		Cache: NewCellCache(64),
		BuildStudy: func(spec RunSpec) (*Study, error) {
			study, err := spec.Build()
			if err != nil {
				return nil, err
			}
			return kill(study), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sawNexus, sawPixel := false, false
	for i, table := range res.Tables {
		if got := encodeAll(t, table); got != want[i] {
			t.Errorf("spec %d: faulted batch table diverged:\n--- batch ---\n%s--- fresh ---\n%s", i, got, want[i])
		}
		for _, row := range table.Rows {
			if row.App != victim.Name {
				if row.Failed() {
					t.Errorf("spec %d: healthy row %s annotated: %s", i, row.App, row.Err)
				}
				continue
			}
			if !row.Failed() || !strings.Contains(row.Err, "retries exhausted") {
				t.Errorf("spec %d: victim row not annotated: %+v", i, row)
			}
			if strings.Contains(row.Err, "Nexus 5") {
				sawNexus = true
			} else {
				sawPixel = true
			}
		}
	}
	if !sawNexus || !sawPixel {
		t.Errorf("annotations did not cover both failure devices (nexus=%v pixel=%v) — the per-spec execution-order walk is untested", sawNexus, sawPixel)
	}
}

// TestBatch_RowStreaming: OnRow must deliver every (spec, app) row
// exactly once, serially, carrying the same row the final table does.
func TestBatch_RowStreaming(t *testing.T) {
	specs := []RunSpec{
		{Seed: "matrix-d", Profiles: matrixProfiles},
		{Seed: "matrix-d", Profiles: matrixProfiles, Probes: []string{"q1"}},
	}
	var mu sync.Mutex
	seen := make(map[string]Row)
	res, err := ExecuteBatch(context.Background(), specs, BatchOptions{
		Concurrency: 4,
		Cache:       NewCellCache(64),
		OnRow: func(u RowUpdate) {
			mu.Lock()
			defer mu.Unlock()
			key := fmt.Sprintf("%d/%s", u.Spec, u.Row.App)
			if _, dup := seen[key]; dup {
				t.Errorf("row %s delivered twice", key)
			}
			seen[key] = u.Row
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, table := range res.Tables {
		for _, row := range table.Rows {
			got, ok := seen[fmt.Sprintf("%d/%s", i, row.App)]
			if !ok {
				t.Errorf("row %d/%s never streamed", i, row.App)
				continue
			}
			a := &Table{Probes: table.Probes, Rows: []Row{got}}
			b := &Table{Probes: table.Probes, Rows: []Row{row}}
			if ga, gb := encodeAll(t, a), encodeAll(t, b); ga != gb {
				t.Errorf("streamed row %d/%s diverged from table row", i, row.App)
			}
		}
	}
	if len(seen) != 2*len(matrixProfiles) {
		t.Errorf("streamed %d rows, want %d", len(seen), 2*len(matrixProfiles))
	}
}

// TestBatch_EmptyAndInvalid: planning errors surface before any work.
func TestBatch_EmptyAndInvalid(t *testing.T) {
	if _, err := ExecuteBatch(context.Background(), nil, BatchOptions{}); err == nil {
		t.Error("empty batch did not error")
	}
	_, err := ExecuteBatch(context.Background(), []RunSpec{{Probes: []string{"nope"}}}, BatchOptions{})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("invalid probe error = %v", err)
	}
}
