package wideleak

import (
	"encoding/json"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cdm"
	"repro/internal/dash"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/ott"
	"repro/internal/wvcrypto"
)

// ForgeryResult reports the §V-C future-work experiment (E7): HD keys
// obtained from an L3-broken device by forging the security level in a
// self-signed license request.
type ForgeryResult struct {
	App string
	// HDKeysGranted is true when the forged "L1" request yielded keys the
	// genuine L3 device was refused.
	HDKeysGranted bool
	// MaxHeight is the best video quality decryptable with the forged
	// keys (1080 when the forgery works).
	MaxHeight uint16
	// Keys counts the granted content keys.
	Keys int

	FailureReason string
}

// RunHDForgery runs E7 against one app: recover the §IV-D material on the
// Nexus 5, then forge a license request claiming L1 and a current CDM, and
// verify the HD representations decrypt with the granted keys.
func (s *Study) RunHDForgery(app string) (*ForgeryResult, error) {
	f, err := s.World.Fixture(app)
	if err != nil {
		return nil, err
	}
	res := &ForgeryResult{App: app}
	cell := f.Legacy()
	if cell == nil {
		res.FailureReason = "device set has no discontinued device"
		return res, nil
	}

	// Prerequisites: the §IV-D recovery on the discontinued device.
	mon := monitor.New()
	mon.AttachCDM(cell.Device.Engine)
	defer mon.Detach()
	tap := mon.InterceptNetwork(cell.App.NetworkClient())
	report := cell.App.Play(ContentID)
	if report.ProvisionDenied {
		res.FailureReason = "device revoked; no RSA key was ever provisioned"
		return res, nil
	}
	if report.UsedEmbeddedCDM {
		res.FailureReason = "embedded CDM out of reach"
		return res, nil
	}
	handle, err := mon.AttachProcess(cell.Device.DRMProcess)
	if err != nil {
		return nil, err
	}
	kb, err := attack.RecoverKeybox(handle)
	if err != nil {
		res.FailureReason = err.Error()
		return res, nil
	}
	rsaKey, err := attack.RecoverDeviceRSAKey(kb, cell.Device.Storage)
	if err != nil {
		res.FailureReason = err.Error()
		return res, nil
	}

	// The forged exchange: claim L1 + a current CDM version.
	attacker := s.World.AttackerClient()
	profile := f.Profile
	send := func(signed *cdm.SignedLicenseRequest) (*cdm.LicenseResponse, error) {
		body, err := json.Marshal(signed)
		if err != nil {
			return nil, err
		}
		resp, err := attacker.Do(netsim.Request{Host: profile.LicenseHost(), Path: ott.PathLicense, Body: body})
		if err != nil {
			return nil, err
		}
		if resp.Status != 200 {
			return nil, fmt.Errorf("license endpoint status %d: %s", resp.Status, resp.Body)
		}
		var lr cdm.LicenseResponse
		if err := json.Unmarshal(resp.Body, &lr); err != nil {
			return nil, err
		}
		return &lr, nil
	}
	forged, err := attack.ForgeLicenseExchange(kb, rsaKey, ContentID,
		oemcrypto.L1.String(), "15.0", wvcrypto.NewDeterministicReader("forge-"+app), send)
	if err != nil {
		res.FailureReason = err.Error()
		return res, nil
	}
	res.Keys = len(forged.Keys)

	// Verify: decrypt the HD rungs with the forged grant.
	mpd, cdnHost := recoverManifest(tap.Exchanges(), monL3Dumps(mon.Events()))
	if mpd == nil || cdnHost == "" {
		res.FailureReason = "could not recover manifest URIs"
		return res, nil
	}
	videoSet, err := mpd.FindAdaptationSet(dash.ContentVideo, "")
	if err != nil {
		res.FailureReason = err.Error()
		return res, nil
	}
	for _, rep := range videoSet.Representations {
		if _, err := ripRepresentation(attacker, cdnHost, &rep, forged.Keys); err != nil {
			continue
		}
		if rep.Height > res.MaxHeight {
			res.MaxHeight = rep.Height
		}
	}
	res.HDKeysGranted = res.MaxHeight > ott.L3ResolutionCap
	if !res.HDKeysGranted {
		res.FailureReason = "forged request did not unlock HD"
	}
	return res, nil
}
