package wideleak

import "testing"

// TestForgedHDLicense reproduces the §V-C future-work experiment: with the
// §IV-D material, a forged "L1" license request unlocks the 1080p keys an
// honest L3 client is refused.
func TestForgedHDLicense(t *testing.T) {
	s := sharedStudy(t)
	res, err := s.RunHDForgery("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	if !res.HDKeysGranted {
		t.Fatalf("forgery failed: %s", res.FailureReason)
	}
	if res.MaxHeight != 1080 {
		t.Errorf("forged max height = %d, want 1080", res.MaxHeight)
	}
	if res.Keys < 4 {
		t.Errorf("forged grant has %d keys, want full ladder", res.Keys)
	}
}

// TestForgedHDLicense_RevokedApp: revocation at provisioning also blocks
// the forgery — the RSA key that would sign the forged request was never
// issued.
func TestForgedHDLicense_RevokedApp(t *testing.T) {
	s := sharedStudy(t)
	res, err := s.RunHDForgery("Disney+")
	if err != nil {
		t.Fatal(err)
	}
	if res.HDKeysGranted {
		t.Error("forgery succeeded against a revoking app")
	}
}

// TestForgedHDLicense_Amazon: the embedded CDM keeps its keys out of reach,
// so there is no RSA key to forge with.
func TestForgedHDLicense_Amazon(t *testing.T) {
	s := sharedStudy(t)
	res, err := s.RunHDForgery("Amazon Prime Video")
	if err != nil {
		t.Fatal(err)
	}
	if res.HDKeysGranted {
		t.Error("forgery succeeded against the embedded-CDM app")
	}
}
