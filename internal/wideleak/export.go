package wideleak

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"

	"repro/internal/wideleak/probe"
)

// exportValues flattens one row into the table's field values, in
// registry order. Failed rows (and probes absent from the row) export
// each field's Zero placeholder.
func exportValues(ids []string, r *Row) []any {
	var out []any
	for _, id := range ids {
		spec := probeSpec(id)
		if res := r.Result(id); res != nil && !r.Failed() {
			out = append(out, res.Values()...)
		} else {
			out = append(out, spec.ZeroValues()...)
		}
	}
	return out
}

// exportFields lists the table's field specs in registry order,
// parallel to exportValues.
func exportFields(ids []string) []probe.Field {
	var out []probe.Field
	for _, id := range ids {
		out = append(out, probeSpec(id).Fields...)
	}
	return out
}

// MarshalJSON renders the table as a JSON array of row objects. Keys are
// derived from the registered probes' field specs, in registry order,
// framed by "app" and a trailing "error" (omitted when empty) — the
// same shape hand-written struct tags produced before the registry.
func (t *Table) MarshalJSON() ([]byte, error) {
	ids := t.probeIDs()
	fields := exportFields(ids)
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i := range t.Rows {
		r := &t.Rows[i]
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('{')
		if err := writeJSONField(&buf, "app", r.App); err != nil {
			return nil, err
		}
		for j, v := range exportValues(ids, r) {
			buf.WriteByte(',')
			if err := writeJSONField(&buf, fields[j].JSON, v); err != nil {
				return nil, err
			}
		}
		if r.Err != "" {
			buf.WriteByte(',')
			if err := writeJSONField(&buf, "error", r.Err); err != nil {
				return nil, err
			}
		}
		buf.WriteByte('}')
	}
	buf.WriteByte(']')
	return buf.Bytes(), nil
}

// writeJSONField appends one `"key":value` pair. Booleans encode as JSON
// booleans; everything else stringifies first (enum values through their
// String method) and encodes as a JSON string.
func writeJSONField(buf *bytes.Buffer, key string, v any) error {
	k, err := json.Marshal(key)
	if err != nil {
		return fmt.Errorf("wideleak: json key %s: %w", key, err)
	}
	buf.Write(k)
	buf.WriteByte(':')
	var raw []byte
	switch val := v.(type) {
	case bool:
		raw, err = json.Marshal(val)
	case string:
		raw, err = json.Marshal(val)
	default:
		raw, err = json.Marshal(fmt.Sprint(val))
	}
	if err != nil {
		return fmt.Errorf("wideleak: json field %s: %w", key, err)
	}
	buf.Write(raw)
	return nil
}

// MarshalCSV renders the table as CSV with a header row derived from the
// registered probes' field specs, framed by "app" and "error".
func (t *Table) MarshalCSV() ([]byte, error) {
	ids := t.probeIDs()
	fields := exportFields(ids)
	header := make([]string, 0, len(fields)+2)
	header = append(header, "app")
	for _, f := range fields {
		header = append(header, f.CSV)
	}
	header = append(header, "error")

	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(header); err != nil {
		return nil, fmt.Errorf("wideleak: csv header: %w", err)
	}
	for i := range t.Rows {
		r := &t.Rows[i]
		record := make([]string, 0, len(header))
		record = append(record, r.App)
		for _, v := range exportValues(ids, r) {
			record = append(record, csvCell(v))
		}
		record = append(record, r.Err)
		if err := w.Write(record); err != nil {
			return nil, fmt.Errorf("wideleak: csv row %s: %w", r.App, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, fmt.Errorf("wideleak: csv flush: %w", err)
	}
	return buf.Bytes(), nil
}

// TableFormats lists the encodings Encode supports, in preference order.
func TableFormats() []string { return []string{"txt", "csv", "json"} }

// Encode renders the table in one of the shared output formats — the
// single encoding path behind both the CLI's -format flag and the
// daemon's ?format= query parameter, so the two frontends can never
// drift byte-wise:
//
//	txt (alias text) — Render plus the Summarize insights block, exactly
//	                   the CLI's default stdout output and the pinned
//	                   testdata/tableI_default.txt golden;
//	csv              — MarshalCSV;
//	json             — two-space-indented MarshalJSON with a trailing
//	                   newline, the tableI_default.json golden bytes.
func (t *Table) Encode(format string) ([]byte, error) {
	switch format {
	case "txt", "text":
		return []byte(t.Render() + "\n" + t.Summarize().Render()), nil
	case "csv":
		return t.MarshalCSV()
	case "json":
		out, err := json.MarshalIndent(t, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(out, '\n'), nil
	default:
		return nil, fmt.Errorf("wideleak: unknown format %q (supported: txt, csv, json)", format)
	}
}

// csvCell stringifies one exported value: booleans as true/false,
// everything else through fmt (enum values via their String method).
func csvCell(v any) string {
	switch val := v.(type) {
	case bool:
		return fmt.Sprintf("%t", val)
	case string:
		return val
	default:
		return fmt.Sprint(val)
	}
}
