package wideleak

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
)

// rowExport is the serialized form of one Table I row.
type rowExport struct {
	App           string `json:"app"`
	UsesWidevine  bool   `json:"usesWidevine"`
	CustomDRMOnL3 bool   `json:"customDrmOnL3"`
	Video         string `json:"video"`
	Audio         string `json:"audio"`
	Subtitles     string `json:"subtitles"`
	KeyUsage      string `json:"keyUsage"`
	Legacy        string `json:"legacyPlayback"`
	Err           string `json:"error,omitempty"`
}

func (r *Row) export() rowExport {
	if r.Failed() {
		return rowExport{App: r.App, Err: r.Err}
	}
	return rowExport{
		App:           r.App,
		UsesWidevine:  r.UsesWidevine,
		CustomDRMOnL3: r.CustomDRMOnL3,
		Video:         r.Video.String(),
		Audio:         r.Audio.String(),
		Subtitles:     r.Subtitles.String(),
		KeyUsage:      r.KeyUsage.String(),
		Legacy:        r.Legacy.String(),
	}
}

// MarshalJSON renders the table as a JSON array of rows.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := make([]rowExport, len(t.Rows))
	for i := range t.Rows {
		rows[i] = t.Rows[i].export()
	}
	return json.Marshal(rows)
}

// MarshalCSV renders the table as CSV with a header row.
func (t *Table) MarshalCSV() ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write([]string{"app", "uses_widevine", "custom_drm_on_l3",
		"video", "audio", "subtitles", "key_usage", "legacy_playback", "error"}); err != nil {
		return nil, fmt.Errorf("wideleak: csv header: %w", err)
	}
	for i := range t.Rows {
		e := t.Rows[i].export()
		if err := w.Write([]string{
			e.App,
			fmt.Sprintf("%t", e.UsesWidevine),
			fmt.Sprintf("%t", e.CustomDRMOnL3),
			e.Video, e.Audio, e.Subtitles, e.KeyUsage, e.Legacy, e.Err,
		}); err != nil {
			return nil, fmt.Errorf("wideleak: csv row %s: %w", e.App, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, fmt.Errorf("wideleak: csv flush: %w", err)
	}
	return buf.Bytes(), nil
}
