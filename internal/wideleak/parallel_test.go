package wideleak

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/ott"
)

// TestBuildTableParallel_MatchesSequential is the determinism contract of
// the parallel engine: for the same seed, the strictly sequential build and
// a highly concurrent build must render byte-identical tables — across two
// independent runs of each.
func TestBuildTableParallel_MatchesSequential(t *testing.T) {
	render := func(parallelism int) string {
		w, err := NewWorld("parallel-determinism", nil)
		if err != nil {
			t.Fatal(err)
		}
		table, err := NewStudy(w).BuildTableParallel(parallelism)
		if err != nil {
			t.Fatal(err)
		}
		return table.Render()
	}

	seq := render(1)
	for _, parallelism := range []int{1, 8} {
		if got := render(parallelism); got != seq {
			t.Errorf("parallelism %d diverged from sequential build:\n%s\nvs\n%s", parallelism, got, seq)
		}
	}
}

// TestBuildTable_DefaultConcurrency checks that the rewired BuildTable
// (default GOMAXPROCS workers) still reproduces the paper's Table I.
func TestBuildTable_DefaultConcurrency(t *testing.T) {
	w, err := NewWorld("default-concurrency", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(w)
	if s.Concurrency != 0 {
		t.Fatalf("fresh study Concurrency = %d, want 0 (auto)", s.Concurrency)
	}
	table, err := s.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := table.Diff(PaperTable()); len(diffs) != 0 {
		t.Errorf("parallel table diverged from paper: %v", diffs)
	}
}

// TestFixture_ConcurrentDistinctApps is the regression test for the old
// coarse World.mu: concurrent Fixture calls for different apps must all
// succeed, and concurrent calls for the same app must share one build.
func TestFixture_ConcurrentDistinctApps(t *testing.T) {
	w, err := NewWorld("concurrent-fixtures", nil)
	if err != nil {
		t.Fatal(err)
	}
	apps := w.Profiles()

	var wg sync.WaitGroup
	fixtures := make([][]*AppFixture, len(apps))
	for i := range apps {
		fixtures[i] = make([]*AppFixture, 3)
		for j := 0; j < 3; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				f, err := w.Fixture(apps[i].Name)
				if err != nil {
					t.Errorf("fixture %s: %v", apps[i].Name, err)
					return
				}
				fixtures[i][j] = f
			}(i, j)
		}
	}
	wg.Wait()
	for i := range apps {
		if fixtures[i][0] == nil {
			continue // already reported
		}
		if fixtures[i][1] != fixtures[i][0] || fixtures[i][2] != fixtures[i][0] {
			t.Errorf("%s: concurrent Fixture calls built distinct fixtures", apps[i].Name)
		}
	}
}

// TestFixture_OrderIndependent verifies the per-app rand forking: building
// fixtures in reverse order yields the exact same device material as
// building them in profile order.
func TestFixture_OrderIndependent(t *testing.T) {
	forward, err := NewWorld("order", nil)
	if err != nil {
		t.Fatal(err)
	}
	reverse, err := NewWorld("order", nil)
	if err != nil {
		t.Fatal(err)
	}
	apps := forward.Profiles()
	for i := range apps {
		if _, err := forward.Fixture(apps[i].Name); err != nil {
			t.Fatal(err)
		}
		if _, err := reverse.Fixture(apps[len(apps)-1-i].Name); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range apps {
		ff, _ := forward.Fixture(p.Name)
		rf, _ := reverse.Fixture(p.Name)
		fid, _, err := ff.Device("pixel").Engine.KeyboxInfo()
		if err != nil {
			t.Fatal(err)
		}
		rid, _, err := rf.Device("pixel").Engine.KeyboxInfo()
		if err != nil {
			t.Fatal(err)
		}
		if fid != rid {
			t.Errorf("%s: stable ID depends on build order: %q vs %q", p.Name, fid, rid)
		}
		fkey, ok := forward.Registry.DeviceKey(fid)
		if !ok {
			t.Fatalf("%s: device %s not registered", p.Name, fid)
		}
		rkey, ok := reverse.Registry.DeviceKey(rid)
		if !ok {
			t.Fatalf("%s: device %s not registered", p.Name, rid)
		}
		if fkey != rkey {
			t.Errorf("%s: device key depends on build order", p.Name)
		}
	}
}

// TestWarmFixtures pre-builds every fixture on a bounded pool and checks
// the warmed world still reproduces the paper's table.
func TestWarmFixtures(t *testing.T) {
	w, err := NewWorld("warm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WarmFixtures(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	table, err := NewStudy(w).BuildTableParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := table.Diff(PaperTable()); len(diffs) != 0 {
		t.Errorf("warmed table diverged from paper: %v", diffs)
	}
}

// TestWarmFixtures_Canceled propagates context cancellation.
func TestWarmFixtures_Canceled(t *testing.T) {
	w, err := NewWorld("warm-cancel", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.WarmFixtures(ctx, 2); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestShortName_Collisions: apps sharing an eight-character alphanumeric
// prefix must still mint distinct device serials.
func TestShortName_Collisions(t *testing.T) {
	pairs := [][2]string{
		{"Disney+ Originals", "Disney+ Kids"},
		{"Amazon Prime Video", "Amazon Freevee"},
		{"StreamingOne", "Streaming Two"},
	}
	for _, pair := range pairs {
		a, b := shortName(pair[0]), shortName(pair[1])
		if a == b {
			t.Errorf("shortName(%q) == shortName(%q) == %q", pair[0], pair[1], a)
		}
	}
	// Stability: same input, same token.
	if shortName("Netflix") != shortName("Netflix") {
		t.Error("shortName is not stable")
	}
	if !strings.Contains(shortName("Netflix"), "-") {
		t.Error("shortName lacks the hash suffix")
	}
}

// TestBuildTableParallel_ErrorPropagation: a row whose fixture cannot
// build surfaces as an error naming the row instead of deadlocking the
// pool or truncating the table silently.
func TestBuildTableParallel_ErrorPropagation(t *testing.T) {
	w, err := NewWorld("err-prop", []ott.Profile{ott.Profiles()[0], ott.Profiles()[1]})
	if err != nil {
		t.Fatal(err)
	}
	// Smuggle in a profile whose fixture build is pre-failed.
	w.profiles = append(w.profiles, ott.Profile{Name: "Ghost App"})
	broken := &fixtureEntry{}
	broken.once.Do(func() { broken.err = errors.New("boom") })
	w.fixtures["Ghost App"] = broken
	s := NewStudy(w)
	_, err = s.BuildTableParallel(4)
	if err == nil {
		t.Fatal("want error for unknown app row")
	}
	if !strings.Contains(err.Error(), "Ghost App") {
		t.Errorf("error %q does not name the failing row", err)
	}
}
