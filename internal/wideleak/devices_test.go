package wideleak

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ott"
)

// TestWorldDevicesDefaultIdentity: NewWorld and NewWorldDevices with the
// trio named explicitly (in any order, any case) are the same world —
// the rendered table is byte-identical.
func TestWorldDevicesDefaultIdentity(t *testing.T) {
	base, err := NewWorld("device-identity", nil)
	if err != nil {
		t.Fatal(err)
	}
	baseTable, err := NewStudy(base).BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	want := baseTable.Render()

	for _, devices := range [][]string{
		{"pixel", "l3", "nexus5"},
		{"nexus5", "l3", "pixel"},
		{"NEXUS5", "Pixel", "L3"},
	} {
		w, err := NewWorldDevices("device-identity", nil, devices)
		if err != nil {
			t.Fatal(err)
		}
		table, err := NewStudy(w).BuildTable()
		if err != nil {
			t.Fatal(err)
		}
		if got := table.Render(); got != want {
			t.Fatalf("devices %v: table diverges from default world:\n%s", devices, got)
		}
	}
}

// TestSpecDevicesCanonicalization pins the device axis's spec contract:
// permutations and case variants share one Key and WorldKey, the empty
// set expands to the trio, and unknown or duplicate names are rejected
// with the registry echoed back.
func TestSpecDevicesCanonicalization(t *testing.T) {
	base := RunSpec{Seed: "canon", Devices: []string{"pixel", "l3"}}
	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	baseWorld, err := base.WorldKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, devices := range [][]string{{"l3", "pixel"}, {"L3", "PIXEL"}} {
		spec := RunSpec{Seed: "canon", Devices: devices}
		if k, err := spec.Key(); err != nil || k != baseKey {
			t.Errorf("devices %v: Key = %s, %v; want %s", devices, k, err, baseKey)
		}
		if wk, err := spec.WorldKey(); err != nil || wk != baseWorld {
			t.Errorf("devices %v: WorldKey = %s, %v; want %s", devices, wk, err, baseWorld)
		}
	}

	// The default set and the explicit trio canonicalize together...
	implicit, err := RunSpec{Seed: "canon"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := RunSpec{Seed: "canon", Devices: []string{"nexus5", "pixel", "l3"}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Error("explicit default trio does not share the implicit key")
	}
	// ...and a different set is a different run and a different world.
	if baseKey == implicit {
		t.Error("device subset shares the default run key")
	}
	if defWorld, err := (RunSpec{Seed: "canon"}).WorldKey(); err != nil || defWorld == baseWorld {
		t.Errorf("device subset shares the default world key (%v)", err)
	}

	c, err := RunSpec{Seed: "canon"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(c.Devices, ",") != "pixel,l3,nexus5" {
		t.Errorf("canonical default devices = %v", c.Devices)
	}

	if _, err := (RunSpec{Devices: []string{"warpphone"}}).Canonicalize(); err == nil ||
		!strings.Contains(err.Error(), `"warpphone"`) || !strings.Contains(err.Error(), "pixel") {
		t.Errorf("unknown device error = %v; want the name and the registry", err)
	}
	if _, err := (RunSpec{Devices: []string{"pixel", "PIXEL"}}).Canonicalize(); err == nil {
		t.Error("duplicate device accepted")
	}
}

// TestRevocationMatrix runs Q4 over a device set bracketing the CDM-14.0
// revocation threshold plus a revoked identity, and pins the per-cell
// outcomes the paper's policy model implies:
//
//   - an app without a CDM floor (Netflix) plays on every legacy device
//     that still provisions;
//   - a revoking app (Disney+) refuses provisioning below CDM 14.0 and
//     plays at the threshold;
//   - an embedded-CDM app (Amazon) bypasses Widevine on L3 entirely, so
//     it plays through its own DRM everywhere — even on a revoked keybox.
func TestRevocationMatrix(t *testing.T) {
	profiles := profilesByName(t, "Netflix", "Disney+", "Amazon Prime Video")
	w, err := NewWorldDevices("revocation-matrix", profiles,
		[]string{"pixel", "galaxy-s7", "oneplus-5", "l3-revoked"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(w)

	want := map[string]map[string]LegacyOutcome{
		"Netflix": {
			"galaxy-s7":  LegacyPlays,
			"oneplus-5":  LegacyPlays,
			"l3-revoked": LegacyProvisioningFails,
		},
		"Disney+": {
			"galaxy-s7":  LegacyProvisioningFails, // CDM 11.0 < 14.0 floor
			"oneplus-5":  LegacyPlays,             // at the threshold
			"l3-revoked": LegacyProvisioningFails,
		},
		"Amazon Prime Video": {
			"galaxy-s7":  LegacyPlaysCustomDRM,
			"oneplus-5":  LegacyPlaysCustomDRM,
			"l3-revoked": LegacyPlaysCustomDRM, // embedded CDM needs no provisioning
		},
	}
	for app, cells := range want {
		q4, err := s.RunQ4(app)
		if err != nil {
			t.Fatal(err)
		}
		if len(q4.Devices) != len(cells) {
			t.Errorf("%s: %d legacy cells, want %d", app, len(q4.Devices), len(cells))
		}
		for _, cell := range q4.Devices {
			if wantOut, ok := cells[cell.Device]; !ok {
				t.Errorf("%s: unexpected legacy cell %s", app, cell.Device)
			} else if cell.Outcome != wantOut {
				t.Errorf("%s on %s = %v (%s), want %v", app, cell.Device, cell.Outcome, cell.Detail, wantOut)
			}
		}
		// The primary outcome is the first cell in canonical device order.
		if q4.Outcome != q4.Devices[0].Outcome {
			t.Errorf("%s: primary outcome %v != first cell %v", app, q4.Outcome, q4.Devices[0].Outcome)
		}
	}
}

// TestBatchDeviceMatrixRecombination: a wide device matrix (8 profiles ×
// 4 apps) primes the cell cache; a probe-subset spec over the same
// matrix then reassembles entirely from memoized cells — zero new
// observations, zero executed cells.
func TestBatchDeviceMatrixRecombination(t *testing.T) {
	devices := []string{"pixel", "l3", "nexus5", "pixel-2016", "galaxy-s7", "moto-g5", "oneplus-5", "shield-tv"}
	apps := []string{"Netflix", "Disney+", "Hulu", "Showtime"}
	cache := NewCellCache(512)

	full := RunSpec{Seed: "device-matrix", Profiles: apps, Devices: devices}
	first, err := ExecuteBatch(context.Background(), []RunSpec{full}, BatchOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CellsExecuted == 0 || first.Stats.WorldsBuilt != 1 {
		t.Fatalf("priming batch stats = %+v", first.Stats)
	}
	for _, name := range devices {
		if n := first.Stats.DeviceCells[name]; n != len(apps) {
			t.Errorf("device cells[%s] = %d, want %d (one per app)", name, n, len(apps))
		}
	}

	subset := RunSpec{Seed: "device-matrix", Profiles: apps, Devices: devices, Probes: []string{"q2", "q3"}}
	second, err := ExecuteBatch(context.Background(), []RunSpec{subset}, BatchOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CellsExecuted != 0 {
		t.Errorf("subset executed %d cells, want 0 (pure recombination)", second.Stats.CellsExecuted)
	}
	if second.Stats.Observations != 0 || second.Stats.WorldsBuilt != 0 {
		t.Errorf("subset stats = %+v, want no device work", second.Stats)
	}
	if len(second.Stats.DeviceCells) != 0 {
		t.Errorf("recombined batch reports device cells %v, want none", second.Stats.DeviceCells)
	}

	// The recombined bytes match a fresh standalone run.
	study, err := subset.Build()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := study.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := second.Tables[0].Render(), fresh.Render(); got != want {
		t.Errorf("recombined table differs from fresh run:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// profilesByName resolves registered OTT profiles for tests.
func profilesByName(t *testing.T, names ...string) []ott.Profile {
	t.Helper()
	var out []ott.Profile
	for _, name := range names {
		p, err := profileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}
