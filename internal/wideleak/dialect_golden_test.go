package wideleak

import (
	"testing"

	"repro/internal/provision"
)

// dialectStudy builds one canonical spec per wire dialect over a reduced
// device set, sharing one deterministic key pool so only the first build
// pays RSA minting. Q2/Q3 are the probes whose classification must not
// depend on the wire format: Q2 (L1 downgrade on rooted hardware) and Q3
// (license-server trust) both read the protection descriptors and segment
// layout the dialects re-encode.
func dialectStudy(t *testing.T, pool *provision.KeyPool, dialect string) (*Table, map[string]int) {
	t.Helper()
	spec := RunSpec{
		Probes:  []string{"q2", "q3"},
		Devices: []string{"pixel", "l3"},
		Dialect: dialect,
	}
	study, err := spec.Build()
	if err != nil {
		t.Fatalf("Build(%s): %v", dialect, err)
	}
	if err := study.World.AttachKeyPool(pool); err != nil {
		t.Fatalf("AttachKeyPool(%s): %v", dialect, err)
	}
	table, err := study.BuildTableParallel(4)
	if err != nil {
		t.Fatalf("BuildTableParallel(%s): %v", dialect, err)
	}
	return table, study.World.ManifestServeCounts()
}

// TestDialectGoldenRows pins the tentpole invariant: the Q2/Q3 table is
// byte-identical whether the apps stream over DASH, HLS or Smooth
// Streaming, because every dialect is a lossless re-encoding of the same
// canonical manifest. It also checks the CDN actually served the
// requested dialect — a regression that silently fell back to DASH would
// otherwise pass the byte comparison trivially.
func TestDialectGoldenRows(t *testing.T) {
	pool := NewKeyPool("default")

	outputs := make(map[string]string)
	counts := make(map[string]map[string]int)
	for _, d := range []string{"dash", "hls", "sstr"} {
		table, served := dialectStudy(t, pool, d)
		out, err := table.Encode("txt")
		if err != nil {
			t.Fatalf("Encode(%s): %v", d, err)
		}
		outputs[d] = string(out)
		counts[d] = served
	}

	for _, d := range []string{"hls", "sstr"} {
		if outputs[d] != outputs["dash"] {
			t.Errorf("%s study output differs from dash:\n--- dash ---\n%s\n--- %s ---\n%s",
				d, outputs["dash"], d, outputs[d])
		}
	}

	// Each study must have streamed through its own wire format. The
	// dash study's serve counter carries the canonical name even though
	// its spec canonicalizes to the empty dialect.
	for _, d := range []string{"dash", "hls", "sstr"} {
		if counts[d][d] == 0 {
			t.Errorf("%s study served no %s manifests (serve counts: %v)", d, d, counts[d])
		}
		for other, n := range counts[d] {
			if other != d && n != 0 {
				t.Errorf("%s study leaked %d %s manifest serves (serve counts: %v)", d, n, other, counts[d])
			}
		}
	}
}

// TestDialectDefaultGolden re-runs the full default study through an
// explicit Dialect: "dash" spec and compares against the pre-dialect
// golden files: spelling the default out loud must not perturb a single
// byte of Table I.
func TestDialectDefaultGolden(t *testing.T) {
	spec := RunSpec{Dialect: "dash"}
	study, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := study.World.AttachKeyPool(NewKeyPool("default")); err != nil {
		t.Fatal(err)
	}
	table, err := study.BuildTableParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	text, err := table.Encode("txt")
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "tableI_default.txt"); string(text) != want {
		t.Errorf("explicit dash dialect changed the default table:\n got:\n%s\nwant:\n%s", text, want)
	}
	csvOut, err := table.Encode("csv")
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "tableI_default.csv"); string(csvOut) != want {
		t.Errorf("explicit dash dialect changed the default CSV export")
	}
	jsonOut, err := table.Encode("json")
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "tableI_default.json"); string(jsonOut) != want {
		t.Errorf("explicit dash dialect changed the default JSON export")
	}
}

// TestDialectKeyInvariance pins the cache-address contract: "" and
// "dash" are the same spec (same run key, same world key, same cell
// addresses), while a non-default dialect moves every address.
func TestDialectKeyInvariance(t *testing.T) {
	base := RunSpec{}
	explicit := RunSpec{Dialect: "dash"}
	hls := RunSpec{Dialect: "hls"}

	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	explicitKey, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	hlsKey, err := hls.Key()
	if err != nil {
		t.Fatal(err)
	}
	if baseKey != explicitKey {
		t.Errorf("explicit dash spec key %s differs from default %s", explicitKey, baseKey)
	}
	if hlsKey == baseKey {
		t.Error("hls spec key collides with the default key")
	}

	baseWorld, err := base.WorldKey()
	if err != nil {
		t.Fatal(err)
	}
	explicitWorld, err := explicit.WorldKey()
	if err != nil {
		t.Fatal(err)
	}
	hlsWorld, err := hls.WorldKey()
	if err != nil {
		t.Fatal(err)
	}
	if baseWorld != explicitWorld {
		t.Errorf("explicit dash world key %s differs from default %s", explicitWorld, baseWorld)
	}
	if hlsWorld == baseWorld {
		t.Error("hls world key collides with the default world key")
	}

	if got, want := CellKey("default", nil, nil, "", "Netflix", "q1"),
		CellKey("default", nil, nil, "", "Netflix", "q1"); got != want {
		t.Error("CellKey is not deterministic")
	}
	if CellKey("default", nil, nil, "hls", "Netflix", "q1") == CellKey("default", nil, nil, "", "Netflix", "q1") {
		t.Error("hls cell key collides with the default cell key")
	}
}
