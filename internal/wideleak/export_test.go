package wideleak

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestTableMarshalJSON(t *testing.T) {
	b, err := json.Marshal(PaperTable())
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("json rows = %d", len(rows))
	}
	if rows[0]["app"] != "Netflix" || rows[0]["audio"] != "Clear" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[2]["customDrmOnL3"] != true {
		t.Errorf("amazon custom drm flag missing: %v", rows[2])
	}
}

func TestTableMarshalCSV(t *testing.T) {
	b, err := PaperTable().MarshalCSV()
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(string(b))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 11 { // header + 10 rows
		t.Fatalf("csv records = %d", len(records))
	}
	if records[0][0] != "app" || records[1][0] != "Netflix" {
		t.Errorf("csv layout: %v / %v", records[0], records[1])
	}
	for _, rec := range records[1:] {
		if len(rec) != 9 {
			t.Errorf("row %v has %d fields", rec[0], len(rec))
		}
	}
}

func TestTableExportFailedRow(t *testing.T) {
	table := &Table{Rows: []Row{
		{App: "DeadCo", Err: "netsim: retries exhausted: 5 attempts"},
	}}
	b, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatal(err)
	}
	if rows[0]["error"] != "netsim: retries exhausted: 5 attempts" {
		t.Errorf("json error field = %v", rows[0]["error"])
	}
	csvOut, err := table.MarshalCSV()
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(string(csvOut))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := records[1][8]; got != "netsim: retries exhausted: 5 attempts" {
		t.Errorf("csv error field = %q", got)
	}
}

// TestTableEncode_UnknownFormat: the shared encoder must reject an
// unsupported format with an error naming both the offender and the
// supported set — it is the single validation point behind the CLI's
// -format flag and the daemon's ?format= parameter.
func TestTableEncode_UnknownFormat(t *testing.T) {
	table := &Table{Rows: []Row{paperRow("Netflix", false,
		ProtectionEncrypted, ProtectionClear, ProtectionClear, KeyUsageMinimum, LegacyPlays)}}
	for _, format := range []string{"xml", "", "TXT", "csv "} {
		out, err := table.Encode(format)
		if err == nil {
			t.Errorf("Encode(%q) accepted an unknown format", format)
			continue
		}
		if out != nil {
			t.Errorf("Encode(%q) returned bytes alongside the error", format)
		}
		want := fmt.Sprintf("wideleak: unknown format %q (supported: txt, csv, json)", format)
		if err.Error() != want {
			t.Errorf("Encode(%q) error = %q, want %q", format, err, want)
		}
	}
}
