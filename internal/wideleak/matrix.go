package wideleak

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/netsim"
	"repro/internal/wideleak/probe"
)

// The matrix scheduler plans a slice of RunSpecs as a deduplicated set
// of probe cells — one cell per (world, profile, probe) — and executes
// only the cells no other spec (or a previous batch, via the CellCache)
// has already produced. Per-spec tables are reassembled from cell
// outcomes byte-identical to a fresh per-spec run:
//
//   - Within one (world, profile) the union of every spec's execution
//     set runs as a sequential chain in registry order, so dependencies
//     are always satisfied and per-host request sequences stay
//     deterministic.
//   - Chains are independent (each app owns its deterministic rand and
//     fault streams), so they fan out over a bounded work-stealing
//     worker pool.
//   - A cell that fails with transport exhaustion memoizes the
//     annotation text instead of a result; reassembly walks each spec's
//     own execution order and annotates its row from the first failed
//     cell in that order — exactly what the sequential builder's
//     stop-at-first-failure would have reported. Any other error aborts
//     the batch, as it would abort a fresh run.

// CellOutcome is the memoized product of one probe cell. Exactly one of
// Result and Err is meaningful: Err carries the transport-exhaustion
// annotation (netsim.ErrRetriesExhausted chains only) the sequential
// builder would have degraded the row with. Outcomes are immutable once
// stored — tables share them by pointer.
type CellOutcome struct {
	Probe  string
	Result probe.Result
	Err    string
}

// CellCache is a bounded, concurrency-safe LRU of completed cell
// outcomes keyed by CellKey. It is the memoization layer shared across
// batches: a probe-subset request whose cells are all resident is
// reassembled without building a world or touching a device.
type CellCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	idx      map[string]*list.Element
	hits     int64
	misses   int64
}

type cellCacheEntry struct {
	key string
	out *CellOutcome
}

// NewCellCache returns an LRU holding up to capacity cell outcomes.
// Capacity <= 0 disables storage (every Get misses).
func NewCellCache(capacity int) *CellCache {
	return &CellCache{capacity: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

// Get returns the outcome for a cell key, marking it most recently used.
func (c *CellCache) Get(key string) (*CellOutcome, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cellCacheEntry).out, true
	}
	c.misses++
	return nil, false
}

// Put stores a cell outcome, evicting the least recently used entry
// beyond capacity.
func (c *CellCache) Put(key string, out *CellOutcome) {
	if c == nil || c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cellCacheEntry).out = out
		return
	}
	c.idx[key] = c.ll.PushFront(&cellCacheEntry{key: key, out: out})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.idx, last.Value.(*cellCacheEntry).key)
	}
}

// Len reports the resident cell count.
func (c *CellCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports lifetime hit/miss counters.
func (c *CellCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// RowUpdate is delivered to BatchOptions.OnRow as each spec's row
// completes — which happens as soon as the last cell that spec needs
// for that app has an outcome, not when the whole batch finishes.
type RowUpdate struct {
	// Spec indexes the batch's canonical spec slice.
	Spec int
	// Row is the completed row, identical to the one the spec's final
	// table will carry.
	Row Row
}

// BatchOptions configures ExecuteBatch.
type BatchOptions struct {
	// Concurrency caps the chain worker pool; <= 0 selects
	// runtime.GOMAXPROCS(0). Like Study.Concurrency it never changes the
	// produced bytes.
	Concurrency int
	// Cache memoizes cell outcomes across batches. Nil still deduplicates
	// within the batch, but nothing survives it.
	Cache *CellCache
	// BuildStudy materializes the study for one world. It receives a
	// canonical spec carrying the world's seed and fault schedule plus the
	// union profile list of every spec sharing the world. Nil defaults to
	// RunSpec.Build. The service layer injects its snapshot/keypool tiers
	// here.
	BuildStudy func(spec RunSpec) (*Study, error)
	// OnRow, when set, is invoked serially (never concurrently) as rows
	// complete.
	OnRow func(RowUpdate)
}

// BatchStats quantifies the sharing a batch achieved.
type BatchStats struct {
	Specs           int `json:"specs"`
	CellsNeeded     int `json:"cells_needed"`   // spec-cell demands before dedup
	CellsPlanned    int `json:"cells_planned"`  // distinct cells after dedup
	CellsCached     int `json:"cells_cached"`   // satisfied from the LRU
	CellsExecuted   int `json:"cells_executed"` // actually ran a probe
	WorldsPlanned   int `json:"worlds_planned"`
	WorldsBuilt     int `json:"worlds_built"`
	Observations    int `json:"observations"`
	LegacyPlaybacks int `json:"legacy_playbacks"`
	// DeviceCells counts fixture cells actually manufactured by the
	// batch's built worlds, per device profile — the device-axis
	// dimension of the work the scheduler could not share. Empty when the
	// batch reassembled everything from memoized cells.
	DeviceCells map[string]int `json:"device_cells,omitempty"`
	// ManifestsServed counts CDN manifest serves by the batch's built
	// worlds, per dialect — the protocol-axis dimension of the work the
	// scheduler could not share. Empty when the batch reassembled
	// everything from memoized cells.
	ManifestsServed map[string]int `json:"manifests_served,omitempty"`
}

// BatchResult carries the per-spec tables (index-aligned with Specs)
// and the sharing stats.
type BatchResult struct {
	Specs  []RunSpec
	Tables []*Table
	Stats  BatchStats
}

// plannedCell is one schedulable (world, profile, probe) unit. A cell
// belongs to exactly one chain, so out is written only by that chain's
// worker (or by the planner on a cache hit) before any reader sees it.
type plannedCell struct {
	key   string
	probe string
	out   *CellOutcome
}

// plannedWorld lazily materializes one world's study, shared by every
// chain (and spec) keyed to it.
type plannedWorld struct {
	key   string
	spec  RunSpec // seed + faults + union profiles
	once  sync.Once
	study *Study
	err   error
	built bool
}

// specRow tracks one (spec, profile) row's demand: the spec's own
// execution-order cells within the chain. All of them live in one chain,
// so completion checks run on that chain's worker goroutine.
type specRow struct {
	spec     int
	profile  string
	selected []string
	cells    []*plannedCell
	done     bool
}

// chain is the sequential execution unit: the union of every sharing
// spec's execution set for one (world, profile), in registry order.
type chain struct {
	world    *plannedWorld
	profile  string
	probeSet map[string]*plannedCell
	cells    []*plannedCell
	rows     []*specRow
}

// batchPlan is the dedup'd DAG: worlds at the root, chains per
// (world, profile), cells as leaves, spec rows as demand edges.
type batchPlan struct {
	specs  []RunSpec
	worlds map[string]*plannedWorld
	chains []*chain
	rows   [][]*specRow // per spec, in profile order
	needed int
}

// planBatch canonicalizes the specs and builds the cell DAG.
func planBatch(specs []RunSpec) (*batchPlan, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("wideleak: empty batch")
	}
	plan := &batchPlan{
		worlds: make(map[string]*plannedWorld),
		rows:   make([][]*specRow, len(specs)),
	}
	chainIdx := make(map[string]*chain)
	for i, spec := range specs {
		c, err := spec.Canonicalize()
		if err != nil {
			return nil, fmt.Errorf("wideleak: batch spec %d: %w", i, err)
		}
		plan.specs = append(plan.specs, c)
		selected, execution, err := probeRegistry.Resolve(c.Probes)
		if err != nil {
			return nil, fmt.Errorf("wideleak: batch spec %d: %w", i, err)
		}
		wk, err := c.WorldKey()
		if err != nil {
			return nil, fmt.Errorf("wideleak: batch spec %d: %w", i, err)
		}
		w, ok := plan.worlds[wk]
		if !ok {
			w = &plannedWorld{key: wk, spec: RunSpec{Seed: c.Seed, Devices: c.Devices, Dialect: c.Dialect, Faults: c.Faults, Concurrency: 1}}
			plan.worlds[wk] = w
		}
		for _, profile := range c.Profiles {
			union := false
			for _, have := range w.spec.Profiles {
				if have == profile {
					union = true
					break
				}
			}
			if !union {
				w.spec.Profiles = append(w.spec.Profiles, profile)
			}
			ckey := wk + "\x00" + profile
			ch, ok := chainIdx[ckey]
			if !ok {
				ch = &chain{world: w, profile: profile, probeSet: make(map[string]*plannedCell)}
				chainIdx[ckey] = ch
				plan.chains = append(plan.chains, ch)
			}
			row := &specRow{spec: i, profile: profile, selected: selected}
			for _, id := range execution {
				cell, ok := ch.probeSet[id]
				if !ok {
					cell = &plannedCell{key: CellKey(c.Seed, c.Faults, c.Devices, c.Dialect, profile, id), probe: id}
					ch.probeSet[id] = cell
				}
				row.cells = append(row.cells, cell)
				plan.needed++
			}
			ch.rows = append(ch.rows, row)
			plan.rows[i] = append(plan.rows[i], row)
		}
	}
	// Order each chain's union in registry order — a valid topological
	// order by registry construction, and the order a fresh run issuing
	// the same union would use.
	for _, ch := range plan.chains {
		for _, id := range probeRegistry.IDs() {
			if cell, ok := ch.probeSet[id]; ok {
				ch.cells = append(ch.cells, cell)
			}
		}
	}
	return plan, nil
}

// batchExec drives one plan over the worker pool.
type batchExec struct {
	plan   *batchPlan
	opts   BatchOptions
	ctx    context.Context
	cancel context.CancelFunc

	errMu    sync.Mutex
	firstErr error

	rowMu sync.Mutex // serializes OnRow emission

	cellsCached   int64
	cellsExecuted int64
	statsMu       sync.Mutex
}

func (e *batchExec) fail(err error) {
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
	e.cancel()
}

func (e *batchExec) failed() bool {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr != nil
}

// studyFor materializes a planned world exactly once.
func (e *batchExec) studyFor(w *plannedWorld) (*Study, error) {
	w.once.Do(func() {
		build := e.opts.BuildStudy
		if build == nil {
			build = func(spec RunSpec) (*Study, error) { return spec.Build() }
		}
		w.study, w.err = build(w.spec)
		w.built = w.err == nil
	})
	return w.study, w.err
}

// runChain executes one chain's cells in order, consulting the LRU
// first and memoizing what it runs. Transport exhaustion is recorded
// and the chain continues — permanent-host failures are deterministic
// and later specs may need the surviving cells; any other error aborts
// the batch.
func (e *batchExec) runChain(ch *chain) {
	deps := make(probe.Results, len(ch.cells))
	var study *Study
	for _, cell := range ch.cells {
		if err := e.ctx.Err(); err != nil {
			e.fail(err)
			return
		}
		if e.failed() {
			return
		}
		if out, ok := e.opts.Cache.Get(cell.key); ok {
			cell.out = out
			if out.Result != nil {
				deps[cell.probe] = out.Result
			}
			e.statsMu.Lock()
			e.cellsCached++
			e.statsMu.Unlock()
			e.completeCell(ch)
			continue
		}
		if study == nil {
			var err error
			if study, err = e.studyFor(ch.world); err != nil {
				e.fail(err)
				return
			}
		}
		res, err := study.runProbe(e.ctx, cell.probe, ch.profile, deps)
		var out *CellOutcome
		switch {
		case err == nil:
			out = &CellOutcome{Probe: cell.probe, Result: res}
			deps[cell.probe] = res
		case errors.Is(err, netsim.ErrRetriesExhausted):
			out = &CellOutcome{Probe: cell.probe, Err: err.Error()}
		default:
			e.fail(err)
			return
		}
		cell.out = out
		e.opts.Cache.Put(cell.key, out)
		e.statsMu.Lock()
		e.cellsExecuted++
		e.statsMu.Unlock()
		e.completeCell(ch)
	}
}

// completeCell scans the chain's rows after one more cell gained an
// outcome and emits every row that just became complete.
func (e *batchExec) completeCell(ch *chain) {
	for _, row := range ch.rows {
		if row.done {
			continue
		}
		ready := true
		for _, cell := range row.cells {
			if cell.out == nil {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		row.done = true
		if e.opts.OnRow != nil {
			e.rowMu.Lock()
			e.opts.OnRow(RowUpdate{Spec: row.spec, Row: assembleRow(row)})
			e.rowMu.Unlock()
		}
	}
}

// assembleRow reproduces the sequential builder's row semantics from
// cell outcomes: the first transport-failed cell in the spec's own
// execution order annotates the row (a fresh run would have stopped
// there), otherwise the selected results are gathered.
func assembleRow(row *specRow) Row {
	for _, cell := range row.cells {
		if cell.out.Err != "" {
			return Row{App: row.profile, Err: cell.out.Err}
		}
	}
	out := Row{App: row.profile, Probes: row.selected, Results: make(map[string]probe.Result, len(row.selected))}
	byProbe := make(map[string]*plannedCell, len(row.cells))
	for _, cell := range row.cells {
		byProbe[cell.probe] = cell
	}
	for _, id := range row.selected {
		out.Results[id] = byProbe[id].out.Result
	}
	return out
}

// chainDeque is one worker's deque: the owner pushes and pops at the
// tail, idle workers steal from the head.
type chainDeque struct {
	mu    sync.Mutex
	items []*chain
}

func (d *chainDeque) popTail() *chain {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	ch := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return ch
}

func (d *chainDeque) stealHead() *chain {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	ch := d.items[0]
	d.items = d.items[1:]
	return ch
}

// ExecuteBatch plans specs as a dedup'd cell DAG and executes it,
// returning per-spec tables byte-identical to what each spec's own
// Build + BuildTable would have produced. The chains fan out over a
// bounded work-stealing pool: chains are dealt round-robin to
// per-worker deques, owners work LIFO for world affinity, and a worker
// whose deque drains steals FIFO from its neighbours — no new chains
// are ever spawned mid-run, so empty deques everywhere means done.
func ExecuteBatch(ctx context.Context, specs []RunSpec, opts BatchOptions) (*BatchResult, error) {
	plan, err := planBatch(specs)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := &batchExec{plan: plan, opts: opts, ctx: ctx, cancel: cancel}

	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.chains) {
		workers = len(plan.chains)
	}
	if workers < 1 {
		workers = 1
	}
	// Deal chains grouped by world as they were planned: consecutive
	// chains usually share a world, so LIFO owners keep world affinity
	// while stealing redistributes whole chains when load skews.
	deques := make([]*chainDeque, workers)
	for i := range deques {
		deques[i] = &chainDeque{}
	}
	for i, ch := range plan.chains {
		d := deques[i%workers]
		d.items = append(d.items, ch)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(self int) {
			defer wg.Done()
			for {
				ch := deques[self].popTail()
				if ch == nil {
					for off := 1; off < workers && ch == nil; off++ {
						ch = deques[(self+off)%workers].stealHead()
					}
				}
				if ch == nil || e.failed() {
					return
				}
				e.runChain(ch)
			}
		}(i)
	}
	wg.Wait()

	if e.firstErr != nil {
		return nil, e.firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &BatchResult{Specs: plan.specs}
	for i, spec := range plan.specs {
		selected, _, err := probeRegistry.Resolve(spec.Probes)
		if err != nil {
			return nil, err
		}
		t := &Table{Probes: selected}
		for _, row := range plan.rows[i] {
			t.Rows = append(t.Rows, assembleRow(row))
		}
		res.Tables = append(res.Tables, t)
	}

	res.Stats = BatchStats{
		Specs:         len(plan.specs),
		CellsNeeded:   plan.needed,
		CellsCached:   int(e.cellsCached),
		CellsExecuted: int(e.cellsExecuted),
		WorldsPlanned: len(plan.worlds),
	}
	for _, ch := range plan.chains {
		res.Stats.CellsPlanned += len(ch.cells)
	}
	for _, w := range plan.worlds {
		if w.built {
			res.Stats.WorldsBuilt++
			res.Stats.Observations += w.study.Observations()
			res.Stats.LegacyPlaybacks += w.study.LegacyPlaybacks()
			for name, n := range w.study.World.DeviceCellCounts() {
				if res.Stats.DeviceCells == nil {
					res.Stats.DeviceCells = make(map[string]int)
				}
				res.Stats.DeviceCells[name] += n
			}
			for dialect, n := range w.study.World.ManifestServeCounts() {
				if res.Stats.ManifestsServed == nil {
					res.Stats.ManifestsServed = make(map[string]int)
				}
				res.Stats.ManifestsServed[dialect] += n
			}
		}
	}
	return res, nil
}
