package wideleak

import (
	"strings"
	"testing"
)

// TestSummary_PaperHeadlineNumbers asserts the aggregate claims of the
// paper's Insights section over its own Table I.
func TestSummary_PaperHeadlineNumbers(t *testing.T) {
	s := PaperTable().Summarize()
	if s.Apps != 10 {
		t.Fatalf("apps = %d", s.Apps)
	}
	if s.UsingWidevine != 10 {
		t.Errorf("using widevine = %d, want 10 (Q1: all apps)", s.UsingWidevine)
	}
	if s.CustomDRMOnL3 != 1 {
		t.Errorf("custom DRM = %d, want 1 (Amazon)", s.CustomDRMOnL3)
	}
	if s.VideoEncrypted != 10 {
		t.Errorf("video encrypted = %d, want 10", s.VideoEncrypted)
	}
	if s.AudioClear != 3 {
		t.Errorf("audio clear = %d, want 3 (Netflix, myCANAL, Salto)", s.AudioClear)
	}
	if s.SubtitlesKnown != 8 || s.SubtitlesClear != 8 {
		t.Errorf("subtitles clear/known = %d/%d, want 8/8", s.SubtitlesClear, s.SubtitlesKnown)
	}
	if s.KeyUsageRecommended != 1 {
		t.Errorf("recommended = %d, want 1 (only Amazon)", s.KeyUsageRecommended)
	}
	if s.KeyUsageMinimum != 7 {
		t.Errorf("minimum = %d, want 7", s.KeyUsageMinimum)
	}
	if s.ServingLegacyDevices != 7 {
		t.Errorf("serving legacy = %d, want 7", s.ServingLegacyDevices)
	}
	if s.EnforcingRevocation != 3 {
		t.Errorf("revoking = %d, want 3 (Disney+, HBO Max, Starz)", s.EnforcingRevocation)
	}
}

func TestSummaryRender(t *testing.T) {
	out := PaperTable().Summarize().Render()
	for _, want := range []string{"10 apps", "audio in CLEAR for 3", "only 3 enforce revocation"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestSummary_MatchesReproducedTable: the aggregate over the observed table
// equals the aggregate over the paper's.
func TestSummary_MatchesReproducedTable(t *testing.T) {
	s := sharedStudy(t)
	table, err := s.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	if table.Summarize() != PaperTable().Summarize() {
		t.Errorf("summaries diverge:\n got %+v\nwant %+v",
			table.Summarize(), PaperTable().Summarize())
	}
}
