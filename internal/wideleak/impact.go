package wideleak

import (
	"errors"
	"fmt"

	"repro/internal/attack"
	"repro/internal/dash"
	"repro/internal/media"
	"repro/internal/monitor"
	"repro/internal/netsim"
)

// ImpactResult reports one app's §IV-D attack-chain outcome on the
// discontinued Nexus 5.
type ImpactResult struct {
	App string

	KeyboxRecovered  bool
	RSAKeyRecovered  bool
	ContentKeysFound int

	// AssetsDecrypted counts representations stripped of DRM and verified
	// playable off-device.
	AssetsDecrypted int
	// MaxHeight is the best video quality recovered (the paper's result:
	// 540, i.e. qHD, because L3 clients never receive HD keys).
	MaxHeight uint16

	// DRMFree is the headline outcome: at least one video representation
	// was fully recovered and plays without any OTT account.
	DRMFree bool

	FailureReason string
}

// RunPracticalImpact executes the full §IV-D chain against one app on the
// discontinued device: monitored playback, keybox memory scan, RSA key
// unwrap, key-ladder replay, asset download and CENC stripping.
func (s *Study) RunPracticalImpact(app string) (*ImpactResult, error) {
	f, err := s.World.Fixture(app)
	if err != nil {
		return nil, err
	}
	res := &ImpactResult{App: app}
	cell := f.Legacy()
	if cell == nil {
		res.FailureReason = "device set has no discontinued device"
		return res, nil
	}

	mon := monitor.New()
	mon.AttachCDM(cell.Device.Engine)
	defer mon.Detach()
	tap := mon.InterceptNetwork(cell.App.NetworkClient())
	report := cell.App.Play(ContentID)

	// Step 1: keybox recovery from the Widevine process (works whenever an
	// L3 CDM initialized in it, regardless of the app's behaviour).
	handle, err := mon.AttachProcess(cell.Device.DRMProcess)
	if err != nil {
		return nil, err
	}
	kb, err := attack.RecoverKeybox(handle)
	if err != nil {
		res.FailureReason = err.Error()
		return res, nil
	}
	res.KeyboxRecovered = true

	// An app that refused the device (or bypassed the system CDM entirely)
	// never delivered keys through the ladder we monitor.
	if report.ProvisionDenied {
		res.FailureReason = "device revoked at provisioning; no license material delivered"
		return res, nil
	}
	if report.UsedEmbeddedCDM {
		res.FailureReason = "app used its embedded CDM inside an anti-debugging process; system Widevine never saw the keys"
		return res, nil
	}

	// Step 2: Device RSA key from flash, unwrapped with the keybox.
	rsaKey, err := attack.RecoverDeviceRSAKey(kb, cell.Device.Storage)
	if err != nil {
		res.FailureReason = err.Error()
		return res, nil
	}
	res.RSAKeyRecovered = true

	// Step 3: key-ladder replay over the dumped OEMCrypto arguments.
	keys, err := attack.RecoverContentKeys(rsaKey, mon.Events())
	if err != nil {
		res.FailureReason = err.Error()
		return res, nil
	}
	res.ContentKeysFound = len(keys)

	// Step 4: recover the URI links, download everything as an attacker
	// with no account, strip the DRM and verify playback off-device.
	mpd, cdnHost := recoverManifest(tap.Exchanges(), monL3Dumps(mon.Events()))
	if mpd == nil || cdnHost == "" {
		res.FailureReason = "could not recover manifest URIs"
		return res, nil
	}
	attacker := s.World.AttackerClient()
	for _, ct := range []string{dash.ContentVideo, dash.ContentAudio} {
		set, err := mpd.FindAdaptationSet(ct, "")
		if err != nil {
			continue
		}
		for _, rep := range set.Representations {
			asset, err := ripRepresentation(attacker, cdnHost, &rep, keys)
			if err != nil {
				continue // e.g. HD rungs whose keys were never granted
			}
			res.AssetsDecrypted++
			if ct == dash.ContentVideo {
				res.DRMFree = true
				if rep.Height > res.MaxHeight {
					res.MaxHeight = rep.Height
				}
			}
			_ = asset
		}
	}
	if !res.DRMFree {
		res.FailureReason = "no video representation could be decrypted"
	}
	return res, nil
}

// ripRepresentation downloads one representation and strips its DRM,
// verifying the result is playable clear media.
func ripRepresentation(attacker *netsim.Client, host string, rep *dash.Representation, keys map[[16]byte][]byte) (*attack.RippedAsset, error) {
	list := rep.Segments()
	if list == nil || list.Initialization == nil {
		return nil, errors.New("wideleak: representation has no init segment")
	}
	initRaw, err := fetchObject(attacker, host, rep.BaseURL+list.Initialization.SourceURL)
	if err != nil {
		return nil, err
	}
	var segs [][]byte
	for _, su := range list.SegmentURLs {
		raw, err := fetchObject(attacker, host, rep.BaseURL+su.SourceURL)
		if err != nil {
			return nil, err
		}
		segs = append(segs, raw)
	}
	asset, err := attack.DecryptRepresentation(initRaw, segs, keys)
	if err != nil {
		return nil, err
	}
	for _, seg := range asset.Segments {
		if !media.SegmentPlayable(seg) {
			return nil, fmt.Errorf("wideleak: ripped segment not playable")
		}
	}
	return asset, nil
}

// RunL1Resistance runs the keybox memory scan against a modern L1 device
// (the E6 ablation): it must find nothing, because the keybox never leaves
// the TEE.
func (s *Study) RunL1Resistance(app string) (keyboxFound bool, err error) {
	f, err := s.World.Fixture(app)
	if err != nil {
		return false, err
	}
	cell := f.ObservationL1()
	if cell == nil {
		return false, fmt.Errorf("wideleak: %s: device set has no L1 device", app)
	}
	// Ensure the CDM is warm: play once.
	_ = cell.App.Play(ContentID)
	mon := monitor.New()
	handle, err := mon.AttachProcess(cell.Device.DRMProcess)
	if err != nil {
		return false, err
	}
	_, err = attack.RecoverKeybox(handle)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, attack.ErrKeyboxNotFound) {
		return false, nil
	}
	return false, err
}
