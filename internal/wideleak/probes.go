package wideleak

import (
	"context"
	"strings"

	"repro/internal/monitor"
	"repro/internal/oemcrypto"
	"repro/internal/wideleak/probe"
)

// probeRegistry is the engine's probe set. Every research question is
// registered here and nowhere else: the table builder, renderer, differ,
// summarizer and both exporters derive their column sets from this
// registry, so adding a question means adding one Spec (plus its typed
// result) — no renderer or exporter edits.
var probeRegistry = probe.NewRegistry[*Study]()

func init() {
	probeRegistry.MustRegister(probe.Spec[*Study]{
		ID:      "q1",
		Title:   "Widevine usage",
		Doc:     "does the app rely on the system Widevine CDM? (static scan + dynamic hook confirmation)",
		Default: true,
		Columns: []probe.Column{{Key: "widevine", Header: "Widevine", Width: 10}},
		Fields: []probe.Field{
			{CSV: "uses_widevine", JSON: "usesWidevine", Diff: "widevine", Zero: false},
			{CSV: "custom_drm_on_l3", JSON: "customDrmOnL3", Diff: "customDRM", Zero: false},
		},
		Legend: []string{"† using custom DRM if only Widevine L3 is available."},
		Run: func(ctx context.Context, s *Study, app string, deps probe.Results) (probe.Result, error) {
			return s.RunQ1(app)
		},
	})
	probeRegistry.MustRegister(probe.Spec[*Study]{
		ID:      "q2",
		Title:   "Content protection",
		Doc:     "are video, audio and subtitle assets encrypted? (attacker-side download + parse)",
		Default: true,
		Columns: []probe.Column{
			{Key: "video", Header: "Video", Width: 10},
			{Key: "audio", Header: "Audio", Width: 10},
			{Key: "subtitles", Header: "Subtitles", Width: 10},
		},
		Fields: []probe.Field{
			{CSV: "video", JSON: "video", Diff: "video", Zero: ""},
			{CSV: "audio", JSON: "audio", Diff: "audio", Zero: ""},
			{CSV: "subtitles", JSON: "subtitles", Diff: "subtitles", Zero: ""},
		},
		Run: func(ctx context.Context, s *Study, app string, deps probe.Results) (probe.Result, error) {
			return s.RunQ2(app)
		},
	})
	probeRegistry.MustRegister(probe.Spec[*Study]{
		ID:       "q3",
		Title:    "Key usage",
		Doc:      "one key per track or shared keys? (manifest key-ID analysis)",
		Default:  true,
		Requires: []string{"q2"},
		Columns:  []probe.Column{{Key: "keyUsage", Header: "Key Usage", Width: 12}},
		Fields: []probe.Field{
			{CSV: "key_usage", JSON: "keyUsage", Diff: "keyUsage", Zero: ""},
		},
		Legend: []string{
			"Minimum: audio in clear or using the same encryption key as the video.",
			"Recommended: audio and video are encrypted with different keys.",
		},
		Run: func(ctx context.Context, s *Study, app string, deps probe.Results) (probe.Result, error) {
			q2, _ := deps["q2"].(*Q2Result)
			return s.classifyQ3(app, q2)
		},
	})
	probeRegistry.MustRegister(probe.Spec[*Study]{
		ID:      "q4",
		Title:   "Legacy-device policy",
		Doc:     "does playback still work on the discontinued Nexus 5?",
		Default: true,
		Columns: []probe.Column{{Key: "legacy", Header: "Playback on L3 legacy", Width: 20}},
		Fields: []probe.Field{
			{CSV: "legacy_playback", JSON: "legacyPlayback", Diff: "legacy", Zero: ""},
		},
		Legend: []string{"† using custom DRM if only Widevine L3 is available."},
		Run: func(ctx context.Context, s *Study, app string, deps probe.Results) (probe.Result, error) {
			return s.RunQ4(app)
		},
	})
	probeRegistry.MustRegister(probe.Spec[*Study]{
		ID:      "q5",
		Title:   "License caching",
		Doc:     "re-license per playback, or cache licenses across sessions? (LoadKeys count on a monitored replay)",
		Default: false,
		Columns: []probe.Column{{Key: "licensing", Header: "Licensing", Width: 14}},
		Fields: []probe.Field{
			{CSV: "licensing", JSON: "licensing", Diff: "licensing", Zero: ""},
		},
		Run: func(ctx context.Context, s *Study, app string, deps probe.Results) (probe.Result, error) {
			return s.RunQ5(app)
		},
	})
}

// ProbeIDs returns every registered probe ID in registration order.
func ProbeIDs() []string { return probeRegistry.IDs() }

// DefaultProbeIDs returns the default probe selection (the paper's
// Q1–Q4), in registration order.
func DefaultProbeIDs() []string { return probeRegistry.DefaultIDs() }

// ProbeInfos describes every registered probe for listings.
func ProbeInfos() []probe.Info { return probeRegistry.Infos() }

// ValidateProbes checks a probe selection without running anything; the
// error for an unknown ID lists the registered probes.
func ValidateProbes(ids []string) error {
	_, _, err := probeRegistry.Resolve(ids)
	return err
}

// probeSpec returns a registered spec; the registry is populated in
// init, so a miss is a programming error.
func probeSpec(id string) *probe.Spec[*Study] {
	s, ok := probeRegistry.Get(id)
	if !ok {
		panic("wideleak: unregistered probe " + id)
	}
	return s
}

// summaryAggregators fold one probe result into the table summary. The
// summarizer walks rows generically and dispatches by probe ID; probes
// with no aggregate contribution (Q5) simply do not register one.
var summaryAggregators = map[string]func(probe.Result, *Summary){
	"q1": func(res probe.Result, s *Summary) {
		q := res.(*Q1Result)
		if q.UsesWidevine {
			s.UsingWidevine++
		}
		if q.CustomDRMOnL3 {
			s.CustomDRMOnL3++
		}
	},
	"q2": func(res probe.Result, s *Summary) {
		q := res.(*Q2Result)
		if q.Video == ProtectionEncrypted {
			s.VideoEncrypted++
		}
		switch q.Audio {
		case ProtectionClear:
			s.AudioClear++
		case ProtectionEncrypted:
			s.AudioEncrypted++
		}
		if q.Subtitles != ProtectionUnknown {
			s.SubtitlesKnown++
			if q.Subtitles == ProtectionClear {
				s.SubtitlesClear++
			}
		}
	},
	"q3": func(res probe.Result, s *Summary) {
		switch res.(*Q3Result).Usage {
		case KeyUsageMinimum:
			s.KeyUsageMinimum++
		case KeyUsageRecommended:
			s.KeyUsageRecommended++
		default:
			s.KeyUsageUnknown++
		}
	},
	"q4": func(res probe.Result, s *Summary) {
		switch res.(*Q4Result).Outcome {
		case LegacyPlays, LegacyPlaysCustomDRM:
			s.ServingLegacyDevices++
		case LegacyProvisioningFails:
			s.EnforcingRevocation++
		}
	},
}

// --- Typed results: the uniform encoding surface ---

// ProbeID implements probe.Result.
func (q *Q1Result) ProbeID() string { return "q1" }

// Cells renders the Widevine column with the paper's dagger for
// custom-DRM fallback.
func (q *Q1Result) Cells() []string {
	switch {
	case !q.UsesWidevine:
		return []string{"no"}
	case q.CustomDRMOnL3:
		return []string{"yes †"}
	default:
		return []string{"yes"}
	}
}

// Values implements probe.Result.
func (q *Q1Result) Values() []any { return []any{q.UsesWidevine, q.CustomDRMOnL3} }

// ProbeID implements probe.Result.
func (q *Q2Result) ProbeID() string { return "q2" }

// Cells implements probe.Result.
func (q *Q2Result) Cells() []string {
	return []string{q.Video.String(), q.Audio.String(), q.Subtitles.String()}
}

// Values implements probe.Result.
func (q *Q2Result) Values() []any { return []any{q.Video, q.Audio, q.Subtitles} }

// ProbeID implements probe.Result.
func (q *Q3Result) ProbeID() string { return "q3" }

// Cells implements probe.Result.
func (q *Q3Result) Cells() []string { return []string{q.Usage.String()} }

// Values implements probe.Result.
func (q *Q3Result) Values() []any { return []any{q.Usage} }

// ProbeID implements probe.Result.
func (q *Q4Result) ProbeID() string { return "q4" }

// Cells renders the Q4 column with the paper's symbols: a filled circle
// for playback, a half circle for provisioning failure. A single-cell
// matrix (the default trio's Nexus 5, or the paper's hand-built rows)
// renders the bare outcome; a wider matrix renders one device=outcome
// pair per discontinued profile, in canonical device order; a device
// set with no discontinued profile renders the paper's "-".
func (q *Q4Result) Cells() []string {
	if len(q.Devices) == 0 && q.Outcome == 0 {
		return []string{"-"}
	}
	if len(q.Devices) <= 1 {
		return []string{legacyCell(q.Outcome)}
	}
	parts := make([]string, len(q.Devices))
	for i, d := range q.Devices {
		parts[i] = d.Device + "=" + legacyCell(d.Outcome)
	}
	return []string{strings.Join(parts, ", ")}
}

// legacyCell renders one revocation-matrix outcome.
func legacyCell(o LegacyOutcome) string {
	switch o {
	case LegacyPlays:
		return "plays"
	case LegacyPlaysCustomDRM:
		return "plays †"
	case LegacyProvisioningFails:
		return "provisioning fails"
	default:
		return "fails"
	}
}

// Values implements probe.Result.
func (q *Q4Result) Values() []any { return []any{q.Outcome} }

// --- Q5: license caching, the probe shipped purely through the registry ---

// LicensePolicy classifies how an app licenses repeated playbacks of the
// same title (the Q5 column).
type LicensePolicy int

// LicensePolicy values: PerPlayback = a fresh license exchange on every
// playback (every LoadKeys observable); Cached = the license persists
// across playback sessions, so a replay loads no keys at all.
const (
	LicenseUnknown LicensePolicy = iota
	LicensePerPlayback
	LicenseCached
)

// String renders the Q5 cell.
func (p LicensePolicy) String() string {
	switch p {
	case LicensePerPlayback:
		return "per-playback"
	case LicenseCached:
		return "cached"
	default:
		return "-"
	}
}

// Q5Result answers "does the app re-license per playback?" for one app.
type Q5Result struct {
	App    string
	Policy LicensePolicy
	// ReplayLoadKeys counts OEMCrypto LoadKeys calls observed during the
	// monitored replay — zero means the first session's license was
	// still serving keys.
	ReplayLoadKeys int
}

// ProbeID implements probe.Result.
func (q *Q5Result) ProbeID() string { return "q5" }

// Cells implements probe.Result.
func (q *Q5Result) Cells() []string { return []string{q.Policy.String()} }

// Values implements probe.Result.
func (q *Q5Result) Values() []any { return []any{q.Policy} }

// RunQ5 classifies an app's licensing behaviour from the oemcrypto call
// events of a monitored replay: after the baseline observation playback,
// the title is played again on the same (L1) device under CDM hooks. An
// app that re-licenses performs a fresh key exchange — LoadKeys fires —
// while an app that cached its license decrypts with the keys already
// loaded in the retained session.
func (s *Study) RunQ5(app string) (*Q5Result, error) {
	if _, err := s.observe(app); err != nil {
		return nil, err
	}
	f, err := s.World.Fixture(app)
	if err != nil {
		return nil, err
	}
	cell := f.ObservationL1()
	if cell == nil {
		// No L1 device in the set: no retained session to replay against.
		return &Q5Result{App: app}, nil
	}
	mon := monitor.New()
	mon.AttachCDM(cell.Device.Engine)
	defer mon.Detach()
	report := cell.App.Play(ContentID)
	if err := report.TransportErr(); err != nil {
		return nil, err
	}
	res := &Q5Result{App: app, ReplayLoadKeys: len(mon.EventsByFunc(oemcrypto.FuncLoadKeys))}
	switch {
	case report.Played() && res.ReplayLoadKeys == 0:
		res.Policy = LicenseCached
	case res.ReplayLoadKeys > 0:
		res.Policy = LicensePerPlayback
	}
	return res, nil
}
