package wideleak

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/manifest"
	"repro/internal/ott"
)

// RunSpec is the canonical description of one study run — the unit the
// service layer queues, caches and hashes. Two specs that canonicalize to
// the same value describe the same device work and therefore the same
// table bytes, so a content-addressed cache may serve one's result for
// the other without re-running anything.
type RunSpec struct {
	// Seed names the reproducible world ("" canonicalizes to "default").
	Seed string `json:"seed"`
	// Probes selects the probes to run by ID; empty selects the default
	// set, and canonicalization expands both to the resolved selection in
	// registry order (so [] and ["q1","q2","q3","q4"] share a cache key).
	Probes []string `json:"probes,omitempty"`
	// Profiles restricts the studied apps by exact name (empty = all).
	// Order is significant — it is the table's row order.
	Profiles []string `json:"profiles,omitempty"`
	// Devices selects the device set each app's fixture manufactures, by
	// registered profile name (empty = the default pixel,l3,nexus5 trio).
	// Order is NOT significant: canonicalization sorts the set into
	// registry order, so every permutation shares one cache key.
	Devices []string `json:"devices,omitempty"`
	// Dialect selects the manifest wire format every studied app fetches
	// and plays through: "" or "dash" (canonical, the default), "hls", or
	// "sstr". Canonicalization folds the default spelling to "" so default
	// cache keys and goldens are byte-identical to pre-dialect specs.
	Dialect string `json:"dialect,omitempty"`
	// Faults optionally installs deterministic fault injection.
	Faults *RunFaults `json:"faults,omitempty"`
	// Concurrency caps the row workers. It does not contribute to the
	// cache key: the rendered table is byte-identical at every setting.
	Concurrency int `json:"concurrency,omitempty"`
}

// RunFaults configures a spec's deterministic fault layer: a transient
// fault rate in [0,1) and the fault schedule seed ("" canonicalizes to
// "chaos", matching the CLI default).
type RunFaults struct {
	Rate float64 `json:"rate"`
	Seed string  `json:"seed,omitempty"`
}

// Canonicalize validates the spec and returns its canonical form: seed
// defaulted, probes resolved through the registry (deduplicated, registry
// order), profiles expanded and matched to their exact registered names,
// zero-rate fault configs dropped. The canonical form is what Key hashes
// and what job status endpoints echo back.
func (r RunSpec) Canonicalize() (RunSpec, error) {
	c := RunSpec{Seed: r.Seed, Concurrency: r.Concurrency}
	if c.Seed == "" {
		c.Seed = "default"
	}
	if c.Concurrency < 0 {
		c.Concurrency = 0
	}

	selected, _, err := probeRegistry.Resolve(r.Probes)
	if err != nil {
		return RunSpec{}, err
	}
	c.Probes = selected

	known := ott.Profiles()
	if len(r.Profiles) == 0 {
		for _, p := range known {
			c.Profiles = append(c.Profiles, p.Name)
		}
	} else {
		seen := make(map[string]bool, len(r.Profiles))
		for _, name := range r.Profiles {
			resolved := ""
			for _, p := range known {
				if strings.EqualFold(p.Name, name) {
					resolved = p.Name
					break
				}
			}
			if resolved == "" {
				return RunSpec{}, fmt.Errorf("wideleak: unknown app %q", name)
			}
			if seen[resolved] {
				return RunSpec{}, fmt.Errorf("wideleak: duplicate app %q", resolved)
			}
			seen[resolved] = true
			c.Profiles = append(c.Profiles, resolved)
		}
	}

	if c.Devices, err = CanonicalDeviceNames(r.Devices); err != nil {
		return RunSpec{}, err
	}

	if c.Dialect, err = manifest.CanonicalName(r.Dialect); err != nil {
		return RunSpec{}, err
	}

	if r.Faults != nil && r.Faults.Rate != 0 {
		if r.Faults.Rate < 0 || r.Faults.Rate >= 1 {
			return RunSpec{}, fmt.Errorf("wideleak: fault rate must be in [0,1), got %g", r.Faults.Rate)
		}
		seed := r.Faults.Seed
		if seed == "" {
			seed = "chaos"
		}
		c.Faults = &RunFaults{Rate: r.Faults.Rate, Seed: seed}
	}
	return c, nil
}

// Key returns the spec's content address: a hex SHA-256 over the
// canonical form's result-determining fields. Concurrency is excluded —
// it never changes the produced bytes — while the fault schedule is
// included, because it changes the run's event log and virtual timeline
// even when the rendered table is invariant.
func (r RunSpec) Key() (string, error) {
	c, err := r.Canonicalize()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "wideleak-run-v1\nseed=%s\nprobes=%s\nprofiles=%s\ndevices=%s\n",
		c.Seed, strings.Join(c.Probes, ","), strings.Join(c.Profiles, ","), strings.Join(c.Devices, ","))
	// The dialect line appears only for non-default dialects, so every
	// pre-dialect key is unchanged.
	if c.Dialect != "" {
		fmt.Fprintf(h, "dialect=%s\n", c.Dialect)
	}
	if c.Faults != nil {
		fmt.Fprintf(h, "faults=%g:%s\n", c.Faults.Rate, c.Faults.Seed)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WorldKey returns the spec's world identity: a hex SHA-256 over only
// the fields that shape the world's expensive state — the seed, the
// device set each fixture manufactures, and the fault schedule. Probes,
// profiles and concurrency are deliberately excluded: every piece of
// world material is keyed by stable labels, so two requests differing
// only in probe subset or profile list share one warmed world. The
// device set IS included — it decides which cells a fixture builds and
// which observation cells the study plays on, so worlds with different
// device sets are different worlds. This is the cache key of the
// service layer's second (fixture) tier, below the full RunSpec result
// tier. The dialect IS included: fixtures bake profiles (and with them the
// dialect each installed app speaks) into the world at build time, so
// worlds cannot be shared across dialects.
func (r RunSpec) WorldKey() (string, error) {
	c, err := r.Canonicalize()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "wideleak-world-v1\nseed=%s\ndevices=%s\n", c.Seed, strings.Join(c.Devices, ","))
	if c.Dialect != "" {
		fmt.Fprintf(h, "dialect=%s\n", c.Dialect)
	}
	if c.Faults != nil {
		fmt.Fprintf(h, "faults=%g:%s\n", c.Faults.Rate, c.Faults.Seed)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CellKey returns the content address of one probe cell — the
// (world, device set, profile, probe) unit the matrix scheduler
// deduplicates, executes and memoizes. The address covers exactly what
// determines the cell's bytes: the world seed, the canonical device set
// (a Q4 cell's revocation matrix — and every observation cell's device
// selection — depends on which devices the fixture manufactures), the
// fault schedule (a permanent-host schedule changes which cells degrade
// to transport annotations), the app profile and the probe ID.
// Concurrency is excluded for the same reason it is excluded from
// RunSpec.Key: scheduling never changes the produced bytes. Request
// ordering is also excluded deliberately — the chaos suite's invariant
// (transient faults are always masked by the retry budget, permanent
// hosts consume no fault-stream draws) makes a cell's outcome
// independent of which other probes ran before it. The devices slice
// must already be canonical (CanonicalDeviceNames); nil selects the
// default trio. The dialect must already be canonical
// (manifest.CanonicalName); "" is the default DASH trio and adds no key
// line, keeping every pre-dialect cell address stable.
func CellKey(seed string, faults *RunFaults, devices []string, dialect, profile, probeID string) string {
	if seed == "" {
		seed = "default"
	}
	if len(devices) == 0 {
		devices = defaultDeviceNamesCached
	}
	h := sha256.New()
	fmt.Fprintf(h, "wideleak-cell-v1\nseed=%s\ndevices=%s\n", seed, strings.Join(devices, ","))
	if dialect != "" {
		fmt.Fprintf(h, "dialect=%s\n", dialect)
	}
	if faults != nil && faults.Rate != 0 {
		fseed := faults.Seed
		if fseed == "" {
			fseed = "chaos"
		}
		fmt.Fprintf(h, "faults=%g:%s\n", faults.Rate, fseed)
	}
	fmt.Fprintf(h, "profile=%s\nprobe=%s\n", profile, probeID)
	return hex.EncodeToString(h.Sum(nil))
}

// defaultDeviceNamesCached avoids re-allocating the default set on every
// CellKey call (the hot path of batch planning).
var defaultDeviceNamesCached = device.DefaultProfileNames()

// Build materializes the spec: a fresh world for its seed and profile
// set, faults installed when configured, and a study with the spec's
// probe selection and concurrency.
func (r RunSpec) Build() (*Study, error) {
	return r.build(nil)
}

// BuildFromSnapshot materializes the spec over a restored world: the
// snapshot's RSA identities are installed up front (zero key generation
// for every device it covers) and the spec's own profile list, fault
// schedule, probes and concurrency are applied on top. The snapshot must
// carry the spec's seed — restoring mismatched key material would
// silently change every device identity, so it is rejected instead.
func (r RunSpec) BuildFromSnapshot(snapshot []byte) (*Study, error) {
	return r.build(snapshot)
}

func (r RunSpec) build(snapshot []byte) (*Study, error) {
	c, err := r.Canonicalize()
	if err != nil {
		return nil, err
	}
	var profiles []ott.Profile
	for _, name := range c.Profiles {
		for _, p := range ott.Profiles() {
			if p.Name == name {
				profiles = append(profiles, p)
				break
			}
		}
	}
	if c.Dialect != "" {
		// The spec's dialect overrides every studied app's wire format
		// (the registered profiles are copied above, never mutated).
		for i := range profiles {
			profiles[i].ManifestDialect = c.Dialect
		}
	}
	var world *World
	if snapshot != nil {
		if world, err = restoreWorld(snapshot, profiles, c.Devices); err != nil {
			return nil, err
		}
		if world.Seed() != c.Seed {
			return nil, fmt.Errorf("wideleak: snapshot seed %q does not match request seed %q", world.Seed(), c.Seed)
		}
	} else if world, err = NewWorldDevices(c.Seed, profiles, c.Devices); err != nil {
		return nil, err
	}
	if c.Faults != nil {
		world.InstallFaults(FaultSpec{
			Seed:    c.Faults.Seed,
			Default: TransientFaults(c.Faults.Rate),
		})
	}
	study := NewStudy(world)
	study.Probes = c.Probes
	study.Concurrency = c.Concurrency
	return study, nil
}
