package probe

import (
	"sync"
	"time"
)

// EventKind classifies one pipeline event.
type EventKind int

// Event kinds. Started/Finished bracket one probe run for one app;
// Degraded marks a probe whose transport died through every retry (the
// row is annotated instead of failing the table); Retry surfaces one
// masked transient transport fault from the network layer.
const (
	EventProbeStarted EventKind = iota + 1
	EventProbeFinished
	EventProbeDegraded
	EventRetry
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventProbeStarted:
		return "probe-started"
	case EventProbeFinished:
		return "probe-finished"
	case EventProbeDegraded:
		return "probe-degraded"
	case EventRetry:
		return "retry"
	default:
		return "unknown"
	}
}

// Event is one structured pipeline observation, threaded from the
// network simulator up through the probe engine.
type Event struct {
	Kind EventKind
	// Probe and App identify the run for probe events (empty on Retry
	// events, which are attributed by host).
	Probe string
	App   string

	// Host and Attempt describe Retry events: the unreachable host and
	// the 1-based attempt number that failed.
	Host    string
	Attempt int

	// Err carries the failure text for Degraded and Retry events.
	Err string

	// Wall is the real time the probe run took; Virtual is how far the
	// world's virtual clock advanced during it (injected latency and
	// retry backoff are charged there, not to the wall).
	Wall    time.Duration
	Virtual time.Duration
}

// Sink receives pipeline events. Sinks must be safe for concurrent use:
// parallel row builds emit from multiple goroutines.
type Sink func(Event)

// Log is a concurrency-safe event collector — the trivial Sink for
// tests and CLIs that want the stream after the fact.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Record appends one event; use it as a Sink via (*Log).Record.
func (l *Log) Record(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

// Events returns a copy of everything recorded so far.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// ByKind filters the recorded events.
func (l *Log) ByKind(kind EventKind) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Len reports how many events were recorded.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
