package probe

import (
	"encoding/json"
	"sync"
	"time"
)

// EventKind classifies one pipeline event.
type EventKind int

// Event kinds. Started/Finished bracket one probe run for one app;
// Degraded marks a probe whose transport died through every retry (the
// row is annotated instead of failing the table); Retry surfaces one
// masked transient transport fault from the network layer.
const (
	EventProbeStarted EventKind = iota + 1
	EventProbeFinished
	EventProbeDegraded
	EventRetry
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventProbeStarted:
		return "probe-started"
	case EventProbeFinished:
		return "probe-finished"
	case EventProbeDegraded:
		return "probe-degraded"
	case EventRetry:
		return "retry"
	default:
		return "unknown"
	}
}

// Event is one structured pipeline observation, threaded from the
// network simulator up through the probe engine.
type Event struct {
	Kind EventKind
	// Probe and App identify the run for probe events (empty on Retry
	// events, which are attributed by host).
	Probe string
	App   string

	// Host and Attempt describe Retry events: the unreachable host and
	// the 1-based attempt number that failed.
	Host    string
	Attempt int

	// Err carries the failure text for Degraded and Retry events.
	Err string

	// Wall is the real time the probe run took; Virtual is how far the
	// world's virtual clock advanced during it (injected latency and
	// retry backoff are charged there, not to the wall).
	Wall    time.Duration
	Virtual time.Duration

	// Seq and At are stamped by Log.Append when the event is recorded:
	// Seq is the 1-based position in the log, At the wall-clock instant
	// of recording. Both are zero on events that never passed through a
	// Log, so sinks that only forward see them unset.
	Seq int64
	At  time.Time
}

// eventJSON is the export shape of one recorded event: the kind by name,
// durations in integer nanoseconds, empty fields omitted.
type eventJSON struct {
	Seq       int64  `json:"seq,omitempty"`
	At        string `json:"at,omitempty"`
	Kind      string `json:"kind"`
	Probe     string `json:"probe,omitempty"`
	App       string `json:"app,omitempty"`
	Host      string `json:"host,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Err       string `json:"err,omitempty"`
	WallNS    int64  `json:"wall_ns,omitempty"`
	VirtualNS int64  `json:"virtual_ns,omitempty"`
}

// MarshalJSON exports the event verbatim: kind as its String name, the
// recording timestamp as RFC 3339 with nanoseconds, wall and virtual
// durations as nanosecond integers.
func (e Event) MarshalJSON() ([]byte, error) {
	out := eventJSON{
		Seq:       e.Seq,
		Kind:      e.Kind.String(),
		Probe:     e.Probe,
		App:       e.App,
		Host:      e.Host,
		Attempt:   e.Attempt,
		Err:       e.Err,
		WallNS:    int64(e.Wall),
		VirtualNS: int64(e.Virtual),
	}
	if !e.At.IsZero() {
		out.At = e.At.Format(time.RFC3339Nano)
	}
	return json.Marshal(out)
}

// Sink receives pipeline events. Sinks must be safe for concurrent use:
// parallel row builds emit from multiple goroutines.
type Sink func(Event)

// Log is a concurrency-safe event collector — the trivial Sink for
// tests and CLIs that want the stream after the fact.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Record appends one event; use it as a Sink via (*Log).Record.
func (l *Log) Record(ev Event) { l.Append(ev) }

// Append records one event and returns the stamped copy: Seq set to the
// event's 1-based log position and At to the recording instant (an
// already-set At is preserved, so logs can be replayed verbatim). Safe
// for concurrent use with every other Log method.
func (l *Log) Append(ev Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Seq = int64(len(l.events) + 1)
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	l.events = append(l.events, ev)
	return ev
}

// MarshalJSON exports the whole recorded stream as a JSON array, in
// recording (Seq) order. It takes the same lock as Append only long
// enough to copy the slice, so a log can be marshalled verbatim while
// parallel builds are still appending to it.
func (l *Log) MarshalJSON() ([]byte, error) {
	events := l.Events()
	if events == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(events)
}

// Events returns a copy of everything recorded so far.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// ByKind filters the recorded events.
func (l *Log) ByKind(kind EventKind) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Len reports how many events were recorded.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
