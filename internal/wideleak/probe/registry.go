package probe

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry owns the probe set: registration order, dependency
// validation, selection and execution-order resolution.
//
// Registration order doubles as topological order: Register refuses a
// spec whose dependencies are not yet registered, so iterating specs in
// registration order always runs dependencies first.
type Registry[T any] struct {
	mu    sync.RWMutex
	order []string
	specs map[string]*Spec[T]
}

// NewRegistry returns an empty registry.
func NewRegistry[T any]() *Registry[T] {
	return &Registry[T]{specs: make(map[string]*Spec[T])}
}

// Register adds a spec. It fails on an empty or duplicate ID, a missing
// entry point, or a dependency that is not registered yet.
func (r *Registry[T]) Register(s Spec[T]) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ID == "" {
		return fmt.Errorf("probe: spec with empty ID")
	}
	if s.Run == nil {
		return fmt.Errorf("probe: %s: nil Run", s.ID)
	}
	if _, dup := r.specs[s.ID]; dup {
		return fmt.Errorf("probe: duplicate ID %q", s.ID)
	}
	for _, dep := range s.Requires {
		if _, ok := r.specs[dep]; !ok {
			return fmt.Errorf("probe: %s requires unregistered probe %q", s.ID, dep)
		}
	}
	spec := s
	r.specs[s.ID] = &spec
	r.order = append(r.order, s.ID)
	return nil
}

// MustRegister is Register panicking on error — for package init blocks,
// where a bad spec is a programming error.
func (r *Registry[T]) MustRegister(s Spec[T]) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// IDs returns every registered probe ID in registration order.
func (r *Registry[T]) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// DefaultIDs returns the IDs of the default selection, in registration
// order.
func (r *Registry[T]) DefaultIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, id := range r.order {
		if r.specs[id].Default {
			out = append(out, id)
		}
	}
	return out
}

// Get returns the spec for an ID.
func (r *Registry[T]) Get(id string) (*Spec[T], bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[id]
	return s, ok
}

// Infos describes every registered probe in registration order.
func (r *Registry[T]) Infos() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.order))
	for _, id := range r.order {
		s := r.specs[id]
		out = append(out, Info{
			ID:       s.ID,
			Title:    s.Title,
			Doc:      s.Doc,
			Requires: append([]string(nil), s.Requires...),
			Default:  s.Default,
			Columns:  append([]Column(nil), s.Columns...),
		})
	}
	return out
}

// Resolve turns a probe selection into the ordered ID lists the engine
// iterates. ids nil or empty selects the default probes. selected is the
// deduplicated selection in registration order (what rows display);
// execution additionally pulls in every transitive dependency (what
// actually runs), also in registration order — which is a valid
// topological order by construction.
//
// An unknown ID fails with an error listing the registered probes, so a
// typo in a CLI flag explains itself.
func (r *Registry[T]) Resolve(ids []string) (selected, execution []string, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(ids) == 0 {
		for _, id := range r.order {
			if r.specs[id].Default {
				ids = append(ids, id)
			}
		}
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := r.specs[id]; !ok {
			return nil, nil, fmt.Errorf("probe: unknown probe %q (registered: %s)",
				id, strings.Join(r.order, ", "))
		}
		want[id] = true
	}
	need := make(map[string]bool, len(want))
	var expand func(id string)
	expand = func(id string) {
		if need[id] {
			return
		}
		need[id] = true
		for _, dep := range r.specs[id].Requires {
			expand(dep)
		}
	}
	for id := range want {
		expand(id)
	}
	for _, id := range r.order {
		if want[id] {
			selected = append(selected, id)
		}
		if need[id] {
			execution = append(execution, id)
		}
	}
	return selected, execution, nil
}

// SortedIDs returns the registered IDs sorted lexically — convenience
// for stable error/help output independent of registration order.
func (r *Registry[T]) SortedIDs() []string {
	ids := r.IDs()
	sort.Strings(ids)
	return ids
}
