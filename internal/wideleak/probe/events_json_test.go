package probe

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventMarshalJSON pins the export shape: kind by name, durations in
// nanoseconds, empty fields omitted, timestamps in RFC 3339.
func TestEventMarshalJSON(t *testing.T) {
	at := time.Date(2026, 8, 6, 12, 0, 0, 123456789, time.UTC)
	ev := Event{
		Kind:    EventProbeFinished,
		Probe:   "q2",
		App:     "Netflix",
		Wall:    1500 * time.Microsecond,
		Virtual: 2 * time.Second,
		Seq:     7,
		At:      at,
	}
	out, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"seq":        float64(7),
		"at":         "2026-08-06T12:00:00.123456789Z",
		"kind":       "probe-finished",
		"probe":      "q2",
		"app":        "Netflix",
		"wall_ns":    float64(1500000),
		"virtual_ns": float64(2000000000),
	}
	if len(got) != len(want) {
		t.Errorf("exported keys = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}

	retry, err := json.Marshal(Event{Kind: EventRetry, Host: "cdn.example", Attempt: 2, Err: "dropped"})
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"probe", "app", "wall_ns", "virtual_ns", "seq", "at"} {
		if strings.Contains(string(retry), `"`+forbidden+`"`) {
			t.Errorf("retry export carries empty field %q: %s", forbidden, retry)
		}
	}
}

// TestLogAppendStamps: Append assigns 1-based sequence numbers and a
// recording timestamp, preserving a caller-set At.
func TestLogAppendStamps(t *testing.T) {
	var log Log
	first := log.Append(Event{Kind: EventProbeStarted})
	if first.Seq != 1 || first.At.IsZero() {
		t.Errorf("first stamped as %+v", first)
	}
	at := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	second := log.Append(Event{Kind: EventProbeFinished, At: at})
	if second.Seq != 2 || !second.At.Equal(at) {
		t.Errorf("second stamped as %+v", second)
	}
	if events := log.Events(); len(events) != 2 || events[1].Seq != 2 {
		t.Errorf("log holds %+v", events)
	}
}

// TestLogEmptyMarshal: an untouched log exports as an empty array, not
// JSON null.
func TestLogEmptyMarshal(t *testing.T) {
	var log Log
	out, err := log.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[]" {
		t.Errorf("empty log = %s", out)
	}
}

// TestLog_ConcurrentAppendMarshal hammers one log with parallel appends
// and marshals — the -race test backing the claim that the event log is
// exportable verbatim while a parallel build is still writing to it.
func TestLog_ConcurrentAppendMarshal(t *testing.T) {
	const writers, perWriter, readers = 8, 200, 4
	var log Log
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := log.MarshalJSON()
				if err != nil {
					t.Errorf("marshal: %v", err)
					return
				}
				if !json.Valid(out) {
					t.Errorf("invalid JSON: %.100s", out)
					return
				}
				log.ByKind(EventRetry)
				log.Len()
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				kind := EventProbeFinished
				if i%3 == 0 {
					kind = EventRetry
				}
				log.Record(Event{Kind: kind, Probe: "q1", App: "app", Host: "host", Attempt: w})
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	out, err := log.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != writers*perWriter {
		t.Fatalf("exported %d events, want %d", len(decoded), writers*perWriter)
	}
	for i, ev := range decoded {
		if seq, ok := ev["seq"].(float64); !ok || int(seq) != i+1 {
			t.Fatalf("event %d has seq %v, want %d", i, ev["seq"], i+1)
		}
		if kind, ok := ev["kind"].(string); !ok || kind == "unknown" {
			t.Fatalf("event %d has kind %v", i, ev["kind"])
		}
	}
}
