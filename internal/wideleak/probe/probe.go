// Package probe defines the pluggable measurement pipeline the study
// engine is built on: each research question is a self-describing Spec
// (stable ID, column layout, field encodings, dependencies, an entry
// point returning a typed Result), and a Registry owns ordering and
// dependency resolution. Renderers, exporters and differs derive their
// column sets from the registry instead of hard-coding struct fields, so
// a new question ships by registering one Spec — no renderer edits.
//
// The package is generic over the run target T (the study engine passes
// *wideleak.Study) so it carries no dependency on the engine itself.
package probe

import "context"

// Column describes one rendered table column contributed by a probe.
// A probe may render fewer columns than it exports fields (Q1 folds two
// booleans into one dagger-annotated cell).
type Column struct {
	// Key is the stable machine name of the column.
	Key string
	// Header is the rendered column title.
	Header string
	// Width is the minimum rendered cell width (left-aligned padding).
	Width int
}

// Field describes one exported value of a probe's result: how it is
// named in CSV, JSON and diff output, and what stands in for it when a
// row failed and carries no result.
type Field struct {
	// CSV is the CSV header cell for this field.
	CSV string
	// JSON is the JSON object key for this field.
	JSON string
	// Diff is the short name diff messages identify the field by.
	Diff string
	// Zero is the value exported for rows that failed before the probe
	// could run (false for booleans, "" for everything rendered).
	Zero any
}

// Result is one probe's typed answer for one app. Implementations are
// the engine's QnResult structs; the pipeline only needs the uniform
// encoding surface.
type Result interface {
	// ProbeID names the probe that produced the result.
	ProbeID() string
	// Cells renders the result's table cells, one per Spec column.
	Cells() []string
	// Values exports the result's field values, one per Spec field, in
	// CSV/JSON/diff order. Values must be comparable; non-bool values
	// are serialized through fmt-style formatting (so enum types with a
	// String method export their rendered form).
	Values() []any
}

// Results maps probe IDs to completed results — the dependency view a
// probe's Run receives (every Requires entry is present and non-nil).
type Results map[string]Result

// Spec is one registered probe: identity, presentation, dependencies and
// the entry point.
type Spec[T any] struct {
	// ID is the stable identifier (e.g. "q3") used for selection,
	// dependency references and row keying.
	ID string
	// Title is the short human name shown by probe listings.
	Title string
	// Doc is a one-line description of what the probe measures.
	Doc string
	// Requires lists probe IDs that must have run before this one; their
	// results are handed to Run. Dependencies must already be registered.
	Requires []string
	// Default marks the probe as part of the default selection (an
	// empty probe filter). Opt-in probes register with Default false and
	// run only when selected explicitly.
	Default bool

	// Columns are the table columns the probe renders.
	Columns []Column
	// Fields are the values the probe exports (CSV/JSON/diff).
	Fields []Field
	// Legend lines are appended below the rendered table; duplicate
	// lines across probes are printed once.
	Legend []string

	// Run answers the question for one app against the target.
	Run func(ctx context.Context, target T, app string, deps Results) (Result, error)
}

// Info is the registry's engine-agnostic description of one probe, for
// listings (CLI -list-probes) and validation messages.
type Info struct {
	ID       string
	Title    string
	Doc      string
	Requires []string
	Default  bool
	Columns  []Column
}

// ZeroValues returns the Zero placeholder of every field, in field
// order — the export row of a probe that never ran.
func (s *Spec[T]) ZeroValues() []any {
	out := make([]any, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Zero
	}
	return out
}

// ZeroCells returns one empty cell per column — the rendered row of a
// probe that never ran.
func (s *Spec[T]) ZeroCells() []string {
	return make([]string, len(s.Columns))
}
