package probe

import (
	"context"
	"strings"
	"sync"
	"testing"
)

type fakeResult struct {
	id string
}

func (f *fakeResult) ProbeID() string { return f.id }
func (f *fakeResult) Cells() []string { return []string{f.id} }
func (f *fakeResult) Values() []any   { return []any{f.id} }

func spec(id string, def bool, requires ...string) Spec[int] {
	return Spec[int]{
		ID:       id,
		Title:    strings.ToUpper(id),
		Default:  def,
		Requires: requires,
		Columns:  []Column{{Key: id, Header: strings.ToUpper(id), Width: 10}},
		Fields:   []Field{{CSV: id, JSON: id, Diff: id, Zero: ""}},
		Run: func(ctx context.Context, target int, app string, deps Results) (Result, error) {
			return &fakeResult{id: id}, nil
		},
	}
}

func testRegistry(t *testing.T) *Registry[int] {
	t.Helper()
	r := NewRegistry[int]()
	for _, s := range []Spec[int]{
		spec("a", true),
		spec("b", true),
		spec("c", true, "b"),
		spec("x", false, "a"),
	} {
		if err := r.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRegister_Validation(t *testing.T) {
	r := NewRegistry[int]()
	if err := r.Register(Spec[int]{ID: "", Run: spec("z", true).Run}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := r.Register(Spec[int]{ID: "norun"}); err == nil {
		t.Error("nil Run accepted")
	}
	if err := r.Register(spec("a", true)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(spec("a", true)); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := r.Register(spec("d", true, "ghost")); err == nil ||
		!strings.Contains(err.Error(), "ghost") {
		t.Errorf("unregistered dependency accepted: %v", err)
	}
}

func TestRegistry_Order(t *testing.T) {
	r := testRegistry(t)
	if got := strings.Join(r.IDs(), ","); got != "a,b,c,x" {
		t.Errorf("IDs() = %s", got)
	}
	if got := strings.Join(r.DefaultIDs(), ","); got != "a,b,c" {
		t.Errorf("DefaultIDs() = %s", got)
	}
	infos := r.Infos()
	if len(infos) != 4 || infos[3].ID != "x" || infos[3].Default {
		t.Errorf("Infos() = %+v", infos)
	}
	if len(infos[2].Requires) != 1 || infos[2].Requires[0] != "b" {
		t.Errorf("Infos()[2].Requires = %v", infos[2].Requires)
	}
}

func TestResolve(t *testing.T) {
	r := testRegistry(t)
	cases := []struct {
		name     string
		ids      []string
		selected string
		exec     string
	}{
		{"default", nil, "a,b,c", "a,b,c"},
		{"explicit order normalized", []string{"c", "a"}, "a,c", "a,b,c"},
		{"dependency pulled in", []string{"c"}, "c", "b,c"},
		{"opt-in probe", []string{"x"}, "x", "a,x"},
		{"duplicates collapse", []string{"b", "b"}, "b", "b"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			selected, exec, err := r.Resolve(tc.ids)
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Join(selected, ","); got != tc.selected {
				t.Errorf("selected = %s, want %s", got, tc.selected)
			}
			if got := strings.Join(exec, ","); got != tc.exec {
				t.Errorf("execution = %s, want %s", got, tc.exec)
			}
		})
	}
}

func TestResolve_UnknownIDListsRegistered(t *testing.T) {
	r := testRegistry(t)
	_, _, err := r.Resolve([]string{"q9"})
	if err == nil {
		t.Fatal("unknown ID accepted")
	}
	for _, want := range []string{`"q9"`, "a, b, c, x"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}

func TestSpec_Zeros(t *testing.T) {
	r := testRegistry(t)
	s, ok := r.Get("a")
	if !ok {
		t.Fatal("spec a missing")
	}
	if vals := s.ZeroValues(); len(vals) != 1 || vals[0] != "" {
		t.Errorf("ZeroValues() = %v", vals)
	}
	if cells := s.ZeroCells(); len(cells) != 1 || cells[0] != "" {
		t.Errorf("ZeroCells() = %v", cells)
	}
}

func TestEventLog_Concurrent(t *testing.T) {
	var log Log
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				log.Record(Event{Kind: EventRetry, Host: "h", Attempt: j})
			}
		}()
	}
	wg.Wait()
	if log.Len() != 400 {
		t.Errorf("Len() = %d, want 400", log.Len())
	}
	if got := len(log.ByKind(EventRetry)); got != 400 {
		t.Errorf("ByKind(retry) = %d", got)
	}
	if got := len(log.ByKind(EventProbeStarted)); got != 0 {
		t.Errorf("ByKind(started) = %d", got)
	}
}

func TestEventKind_String(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EventProbeStarted:  "probe-started",
		EventProbeFinished: "probe-finished",
		EventProbeDegraded: "probe-degraded",
		EventRetry:         "retry",
		EventKind(99):      "unknown",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %s, want %s", kind, kind, want)
		}
	}
}
