package wideleak

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/attack"
	"repro/internal/dash"
	"repro/internal/media"
	"repro/internal/monitor"
	"repro/internal/oemcrypto"
	"repro/internal/ott"
)

// TestCompliantControlApp is the study's control experiment: a hypothetical
// app that follows every Widevine recommendation (distinct audio key,
// strict revocation at both provisioning and license time). The study must
// classify it as Recommended + revoking, and the §IV-D attack must fail —
// while subtitles STILL ship clear, because no encrypted-subtitle API
// exists anywhere in the stack (the paper's ecosystem-level insight).
func TestCompliantControlApp(t *testing.T) {
	compliant := ott.Profile{
		Name:             "CompliantTV",
		InstallsMillions: 1,
		KeyPolicy:        media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: true},
		ProvisionMinCDM:  "14.0",
		LicenseMinCDM:    "14.0",
	}
	w, err := NewWorld("control", []ott.Profile{compliant})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(w)

	q2, err := s.RunQ2("CompliantTV")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Video != ProtectionEncrypted || q2.Audio != ProtectionEncrypted {
		t.Errorf("q2 = %+v", q2)
	}
	if q2.Subtitles != ProtectionClear {
		t.Errorf("subtitles = %v — even a fully compliant app cannot encrypt them", q2.Subtitles)
	}

	q3, err := s.RunQ3("CompliantTV")
	if err != nil {
		t.Fatal(err)
	}
	if q3.Usage != KeyUsageRecommended {
		t.Errorf("key usage = %v, want Recommended", q3.Usage)
	}

	q4, err := s.RunQ4("CompliantTV")
	if err != nil {
		t.Fatal(err)
	}
	if q4.Outcome != LegacyProvisioningFails {
		t.Errorf("legacy outcome = %v, want ProvisioningFails", q4.Outcome)
	}

	impact, err := s.RunPracticalImpact("CompliantTV")
	if err != nil {
		t.Fatal(err)
	}
	if impact.DRMFree {
		t.Error("attack succeeded against the compliant control app")
	}

	forgery, err := s.RunHDForgery("CompliantTV")
	if err != nil {
		t.Fatal(err)
	}
	if forgery.HDKeysGranted {
		t.Error("HD forgery succeeded against the compliant control app")
	}
}

// TestStudyInvertsKeyPolicy: the observation-only study must re-derive
// whatever key policy the packager applied — for every policy combination.
// This is the end-to-end inversion property of the whole pipeline.
func TestStudyInvertsKeyPolicy(t *testing.T) {
	cases := []struct {
		policy    media.KeyPolicy
		wantAudio Protection
		wantUsage KeyUsage
	}{
		{media.KeyPolicy{EncryptAudio: false}, ProtectionClear, KeyUsageMinimum},
		{media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: false}, ProtectionEncrypted, KeyUsageMinimum},
		{media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: true}, ProtectionEncrypted, KeyUsageRecommended},
	}
	for i, tt := range cases {
		t.Run(fmt.Sprintf("policy-%d", i), func(t *testing.T) {
			name := fmt.Sprintf("PolicyApp%d", i)
			w, err := NewWorld(name, []ott.Profile{{
				Name:             name,
				InstallsMillions: 1,
				KeyPolicy:        tt.policy,
			}})
			if err != nil {
				t.Fatal(err)
			}
			s := NewStudy(w)
			q2, err := s.RunQ2(name)
			if err != nil {
				t.Fatal(err)
			}
			if q2.Audio != tt.wantAudio {
				t.Errorf("audio = %v, want %v", q2.Audio, tt.wantAudio)
			}
			q3, err := s.RunQ3(name)
			if err != nil {
				t.Fatal(err)
			}
			if q3.Usage != tt.wantUsage {
				t.Errorf("usage = %v, want %v", q3.Usage, tt.wantUsage)
			}
		})
	}
}

// TestClearAudioAllLanguagesPlayable reproduces the paper's Q2 remark:
// "for these apps, audio in any language can be played anywhere without
// any OTT account."
func TestClearAudioAllLanguagesPlayable(t *testing.T) {
	s := sharedStudy(t)
	for _, app := range []string{"Netflix", "myCANAL", "Salto"} {
		q2, err := s.RunQ2(app)
		if err != nil {
			t.Fatal(err)
		}
		if len(q2.ClearAudioLangs) != 2 {
			t.Errorf("%s: clear audio langs = %v, want both en and fr", app, q2.ClearAudioLangs)
		}
	}
	// Encrypted-audio apps expose nothing.
	q2, err := s.RunQ2("Showtime")
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.ClearAudioLangs) != 0 {
		t.Errorf("Showtime clear audio langs = %v, want none", q2.ClearAudioLangs)
	}
}

// TestQ1StaticPlusDynamic checks the two-pronged Q1 methodology: static
// analysis suggests Widevine for every app, dynamic hooks confirm it, and
// ExoPlayer usage shows up where the profile ships it.
func TestQ1StaticPlusDynamic(t *testing.T) {
	s := sharedStudy(t)
	for _, p := range s.World.Profiles() {
		q1, err := s.RunQ1(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !q1.StaticSuggestsWidevine {
			t.Errorf("%s: static scan missed the DRM framework surface", p.Name)
		}
		if q1.UsesExoPlayerDRM != p.UsesExoPlayer {
			t.Errorf("%s: exoplayer detection = %v, want %v", p.Name, q1.UsesExoPlayerDRM, p.UsesExoPlayer)
		}
	}
}

// TestMovieStealerBaselineFails reproduces the paper's §II-B argument: the
// 2013 MovieStealer attack cannot work against the Android DRM design —
// neither against the app process (anti-debugging) nor, for completeness,
// against the DRM server's memory (decrypted frames never rest there).
// Contrast with TestPracticalImpact: the paper's attack succeeds where the
// baseline fails.
func TestMovieStealerBaselineFails(t *testing.T) {
	s := sharedStudy(t)
	f, err := s.World.Fixture("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	if r := f.App("nexus5").Play(ContentID); !r.Played() {
		t.Fatalf("playback failed: %+v", r)
	}
	mon := monitor.New()

	// Prong 1: the app process refuses attachment.
	res, err := attack.MovieStealer(mon, f.App("nexus5").ProcessSpace(), media.PlayabilityMagic())
	if !errors.Is(err, attack.ErrNoDecryptedBuffers) || !res.AppAttachBlocked {
		t.Errorf("MovieStealer vs app = %+v, %v; want anti-debug block", res, err)
	}

	// Prong 2: even the attachable DRM server holds no decrypted frames.
	res2, err := attack.MovieStealer(mon, f.Device("nexus5").DRMProcess, media.PlayabilityMagic())
	if !errors.Is(err, attack.ErrNoDecryptedBuffers) || res2.BuffersFound != 0 {
		t.Errorf("MovieStealer vs drm server = %+v, %v; want nothing found", res2, err)
	}
}

// TestNetflixURILeak_IndependentOfSecurityLevel reproduces the paper's
// §IV-B note: the generic-decrypt output dump recovers the protected
// manifest URIs on BOTH levels — the secure channel's plaintext returns to
// the app in normal memory even when media decryption is TEE-protected.
func TestNetflixURILeak_IndependentOfSecurityLevel(t *testing.T) {
	s := sharedStudy(t)
	f, err := s.World.Fixture("Netflix")
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		engine oemcrypto.Engine
		app    *ott.App
	}{
		{"L1-pixel", f.Device("pixel").Engine, f.App("pixel")},
		{"L3-phone", f.Device("l3").Engine, f.App("l3")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mon := monitor.New()
			mon.AttachCDM(tc.engine)
			defer mon.Detach()
			if r := tc.app.Play(ContentID); !r.Played() {
				t.Fatalf("playback failed: %+v", r)
			}
			var recovered bool
			for _, dump := range mon.DumpedOutputs(oemcrypto.FuncGenericDecrypt) {
				if m, err := dash.Parse(dump); err == nil && len(m.Periods) > 0 {
					recovered = true
				}
			}
			if !recovered {
				t.Error("manifest not recovered from GenericDecrypt dumps")
			}
			// Media plaintext, by contrast, is only dumped on L3.
			var mediaDumps int
			for _, ev := range mon.EventsByFunc(oemcrypto.FuncDecryptCENC) {
				if ev.Out != nil {
					mediaDumps++
				}
			}
			if tc.name == "L1-pixel" && mediaDumps != 0 {
				t.Errorf("L1 leaked %d decrypted media buffers", mediaDumps)
			}
			if tc.name == "L3-phone" && mediaDumps == 0 {
				t.Error("L3 trace missing media buffer dumps")
			}
		})
	}
}
