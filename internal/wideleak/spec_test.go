package wideleak

import (
	"strings"
	"testing"

	"repro/internal/ott"
)

func mustKey(t *testing.T, spec RunSpec) string {
	t.Helper()
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestRunSpec_CanonicalKey: the cache key is content-addressed over the
// canonical request — equivalent spellings collide, result-changing
// fields separate, and concurrency never matters.
func TestRunSpec_CanonicalKey(t *testing.T) {
	base := mustKey(t, RunSpec{Seed: "default"})

	equivalent := []RunSpec{
		{},
		{Seed: "default", Probes: []string{"q1", "q2", "q3", "q4"}},
		{Seed: "default", Probes: []string{"q4", "q2", "q1", "q3", "q2"}},
		{Seed: "default", Concurrency: 7},
		{Seed: "default", Faults: &RunFaults{Rate: 0}},
	}
	for i, spec := range equivalent {
		if got := mustKey(t, spec); got != base {
			t.Errorf("spec %d: key %s != base %s", i, got, base)
		}
	}

	different := []RunSpec{
		{Seed: "other"},
		{Seed: "default", Probes: []string{"q2"}},
		{Seed: "default", Probes: []string{"q1", "q2", "q3", "q4", "q5"}},
		{Seed: "default", Profiles: []string{"Netflix"}},
		{Seed: "default", Faults: &RunFaults{Rate: 0.25}},
	}
	seen := map[string]int{base: -1}
	for i, spec := range different {
		key := mustKey(t, spec)
		if prev, dup := seen[key]; dup {
			t.Errorf("spec %d collides with spec %d: %s", i, prev, key)
		}
		seen[key] = i
	}

	// Differing fault seeds are different schedules, hence different keys.
	a := mustKey(t, RunSpec{Faults: &RunFaults{Rate: 0.25, Seed: "a"}})
	b := mustKey(t, RunSpec{Faults: &RunFaults{Rate: 0.25, Seed: "b"}})
	if a == b {
		t.Error("fault seeds a and b share a key")
	}
	// The default fault seed is "chaos", matching the CLI.
	implicit := mustKey(t, RunSpec{Faults: &RunFaults{Rate: 0.25}})
	explicit := mustKey(t, RunSpec{Faults: &RunFaults{Rate: 0.25, Seed: "chaos"}})
	if implicit != explicit {
		t.Error("implicit fault seed does not canonicalize to chaos")
	}

	// Row order is output order, so profile order is part of the address.
	ab := mustKey(t, RunSpec{Profiles: []string{"Netflix", "Hulu"}})
	ba := mustKey(t, RunSpec{Profiles: []string{"Hulu", "Netflix"}})
	if ab == ba {
		t.Error("profile order ignored by the key")
	}
}

// TestRunSpec_CanonicalizeValidation: bad specs explain themselves.
func TestRunSpec_CanonicalizeValidation(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"unknown probe", RunSpec{Probes: []string{"q9"}}, "unknown probe"},
		{"unknown app", RunSpec{Profiles: []string{"NoSuchService"}}, "unknown app"},
		{"duplicate app", RunSpec{Profiles: []string{"Netflix", "netflix"}}, "duplicate app"},
		{"bad fault rate", RunSpec{Faults: &RunFaults{Rate: 1.5}}, "fault rate"},
		{"negative fault rate", RunSpec{Faults: &RunFaults{Rate: -0.1}}, "fault rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Canonicalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRunSpec_CanonicalForm: canonicalization expands the defaults into
// explicit, stable values and normalizes case-folded profile names.
func TestRunSpec_CanonicalForm(t *testing.T) {
	c, err := RunSpec{Profiles: []string{"netflix", "HULU"}}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != "default" {
		t.Errorf("seed = %q", c.Seed)
	}
	if got, want := strings.Join(c.Probes, ","), "q1,q2,q3,q4"; got != want {
		t.Errorf("probes = %s, want %s", got, want)
	}
	if got, want := strings.Join(c.Profiles, ","), "Netflix,Hulu"; got != want {
		t.Errorf("profiles = %s, want %s", got, want)
	}

	full, err := RunSpec{}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Profiles) != len(ott.Profiles()) {
		t.Errorf("empty profile set canonicalized to %d apps, want %d", len(full.Profiles), len(ott.Profiles()))
	}
}

// TestRunSpec_BuildMatchesManualStudy: a spec-built study produces the
// same bytes as the hand-assembled equivalent.
func TestRunSpec_BuildMatchesManualStudy(t *testing.T) {
	spec := RunSpec{Seed: "spec-build", Profiles: []string{"Showtime"}, Probes: []string{"q2", "q3"}, Concurrency: 1}
	study, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := study.BuildTable()
	if err != nil {
		t.Fatal(err)
	}

	world, err := NewWorld("spec-build", profilesNamed(t, "Showtime"))
	if err != nil {
		t.Fatal(err)
	}
	manual := NewStudy(world)
	manual.Probes = []string{"q2", "q3"}
	manual.Concurrency = 1
	want, err := manual.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := got.Encode("txt")
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Encode("txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Errorf("spec-built table diverged:\n%s\nvs\n%s", gotBytes, wantBytes)
	}
}

// TestRunSpec_WorldKey: the tier-2 cache key covers exactly the fields
// that shape a world's expensive state. Probe subset, profile list and
// concurrency must NOT change it (those requests share a warmed world);
// seed and fault schedule must.
func TestRunSpec_WorldKey(t *testing.T) {
	worldKey := func(spec RunSpec) string {
		t.Helper()
		key, err := spec.WorldKey()
		if err != nil {
			t.Fatal(err)
		}
		return key
	}

	base := worldKey(RunSpec{Seed: "default"})
	same := []RunSpec{
		{},
		{Seed: "default", Probes: []string{"q2"}},
		{Seed: "default", Profiles: []string{"Netflix", "HBO Max"}},
		{Seed: "default", Concurrency: 7},
		{Seed: "default", Faults: &RunFaults{Rate: 0}},
	}
	for i, spec := range same {
		if got := worldKey(spec); got != base {
			t.Errorf("spec %d: world key changed for a world-equivalent request", i)
		}
	}
	if worldKey(RunSpec{Seed: "other"}) == base {
		t.Error("seed change did not change the world key")
	}
	if worldKey(RunSpec{Seed: "default", Faults: &RunFaults{Rate: 0.25}}) == base {
		t.Error("fault schedule did not change the world key")
	}
	if worldKey(RunSpec{Seed: "default", Faults: &RunFaults{Rate: 0.25}}) ==
		worldKey(RunSpec{Seed: "default", Faults: &RunFaults{Rate: 0.25, Seed: "storm"}}) {
		t.Error("fault seed did not change the world key")
	}

	// A world key is deliberately coarser than the result key: these two
	// differ as runs but share a world.
	a, b := RunSpec{Seed: "default", Probes: []string{"q1"}}, RunSpec{Seed: "default", Probes: []string{"q4"}}
	if mustKey(t, a) == mustKey(t, b) {
		t.Error("distinct probe subsets must have distinct result keys")
	}
	if worldKey(a) != worldKey(b) {
		t.Error("distinct probe subsets must share one world key")
	}
}
