package wideleak

import (
	"fmt"
	"strings"
)

// Summary aggregates Table I into the paper's headline claims ("almost no
// OTT app follows the Widevine recommendations", "most apps care more about
// reaching clients than applying revocation rules").
type Summary struct {
	Apps int

	// Unavailable counts apps whose backends stayed unreachable through
	// every retry; their rows carry annotations, not cells, and are
	// excluded from every aggregate below.
	Unavailable int

	// Q1
	UsingWidevine int
	CustomDRMOnL3 int

	// Q2
	VideoEncrypted int
	AudioClear     int
	AudioEncrypted int
	SubtitlesClear int
	SubtitlesKnown int

	// Q3
	KeyUsageMinimum     int
	KeyUsageRecommended int
	KeyUsageUnknown     int

	// Q4
	ServingLegacyDevices int // plays (incl. custom DRM)
	EnforcingRevocation  int
}

// Summarize computes the aggregate over a table. Each selected probe
// folds its own results in through its registered aggregator; probes
// without one (Q5) contribute cells but no aggregate.
func (t *Table) Summarize() Summary {
	s := Summary{Apps: len(t.Rows)}
	ids := t.probeIDs()
	for _, r := range t.Rows {
		if r.Failed() {
			s.Unavailable++
			continue
		}
		for _, id := range ids {
			agg := summaryAggregators[id]
			if agg == nil {
				continue
			}
			if res := r.Result(id); res != nil {
				agg(res, &s)
			}
		}
	}
	return s
}

// Render prints the summary as the paper's insight bullets.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Insights (over %d apps):\n", s.Apps)
	fmt.Fprintf(&b, "  - %d/%d rely on Widevine (%d falling back to an embedded CDM on L3-only devices)\n",
		s.UsingWidevine, s.Apps, s.CustomDRMOnL3)
	fmt.Fprintf(&b, "  - video always encrypted (%d/%d); audio in CLEAR for %d apps\n",
		s.VideoEncrypted, s.Apps, s.AudioClear)
	fmt.Fprintf(&b, "  - subtitles in clear for every app where obtainable (%d/%d)\n",
		s.SubtitlesClear, s.SubtitlesKnown)
	fmt.Fprintf(&b, "  - key usage: %d Minimum, %d Recommended, %d undeterminable — almost no app follows the multi-key recommendation\n",
		s.KeyUsageMinimum, s.KeyUsageRecommended, s.KeyUsageUnknown)
	fmt.Fprintf(&b, "  - %d/%d still serve a device with no security updates; only %d enforce revocation\n",
		s.ServingLegacyDevices, s.Apps, s.EnforcingRevocation)
	if s.Unavailable > 0 {
		fmt.Fprintf(&b, "  - %d/%d apps unavailable (backend unreachable through every retry)\n",
			s.Unavailable, s.Apps)
	}
	return b.String()
}
