package wideleak

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/ott"
)

// The full study is expensive (ten deployments, ~30 provisioned devices),
// so tests share one world+study.
var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

func sharedStudy(t testing.TB) *Study {
	t.Helper()
	studyOnce.Do(func() {
		w, err := NewWorld("test", nil)
		if err != nil {
			studyErr = err
			return
		}
		study = NewStudy(w)
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study
}

// TestTableI is the headline reproduction: the observationally derived
// table must match the paper's Table I cell for cell.
func TestTableI(t *testing.T) {
	s := sharedStudy(t)
	table, err := s.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := table.Diff(PaperTable()); len(diffs) != 0 {
		t.Errorf("reproduced table differs from the paper's:\n%s\n\nrendered:\n%s",
			strings.Join(diffs, "\n"), table.Render())
	}
}

func TestTableI_Q1(t *testing.T) {
	s := sharedStudy(t)
	for _, p := range s.World.Profiles() {
		q1, err := s.RunQ1(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !q1.UsesWidevine {
			t.Errorf("%s: Widevine usage not detected", p.Name)
		}
		if !q1.L1Supported {
			t.Errorf("%s: L1 (liboemcrypto) not detected on TEE device", p.Name)
		}
		wantCustom := p.Name == "Amazon Prime Video"
		if q1.CustomDRMOnL3 != wantCustom {
			t.Errorf("%s: CustomDRMOnL3 = %v, want %v", p.Name, q1.CustomDRMOnL3, wantCustom)
		}
	}
}

func TestTableI_Q2(t *testing.T) {
	s := sharedStudy(t)
	wantAudio := map[string]Protection{
		"Netflix": ProtectionClear, "myCANAL": ProtectionClear, "Salto": ProtectionClear,
		"Disney+": ProtectionEncrypted, "Amazon Prime Video": ProtectionEncrypted,
		"Hulu": ProtectionEncrypted, "HBO Max": ProtectionEncrypted,
		"Starz": ProtectionEncrypted, "Showtime": ProtectionEncrypted, "OCS": ProtectionEncrypted,
	}
	wantSubs := map[string]Protection{
		"Hulu": ProtectionUnknown, "Starz": ProtectionUnknown,
	}
	for _, p := range s.World.Profiles() {
		q2, err := s.RunQ2(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if q2.Video != ProtectionEncrypted {
			t.Errorf("%s: video = %v, want Encrypted", p.Name, q2.Video)
		}
		if q2.Audio != wantAudio[p.Name] {
			t.Errorf("%s: audio = %v, want %v", p.Name, q2.Audio, wantAudio[p.Name])
		}
		want := ProtectionClear
		if w, ok := wantSubs[p.Name]; ok {
			want = w
		}
		if q2.Subtitles != want {
			t.Errorf("%s: subtitles = %v, want %v", p.Name, q2.Subtitles, want)
		}
	}
}

func TestTableI_Q3(t *testing.T) {
	s := sharedStudy(t)
	want := map[string]KeyUsage{
		"Netflix": KeyUsageMinimum, "Disney+": KeyUsageMinimum,
		"Amazon Prime Video": KeyUsageRecommended,
		"Hulu":               KeyUsageUnknown, "HBO Max": KeyUsageUnknown,
		"Starz": KeyUsageMinimum, "myCANAL": KeyUsageMinimum,
		"Showtime": KeyUsageMinimum, "OCS": KeyUsageMinimum, "Salto": KeyUsageMinimum,
	}
	for _, p := range s.World.Profiles() {
		q3, err := s.RunQ3(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if q3.Usage != want[p.Name] {
			t.Errorf("%s: key usage = %v, want %v", p.Name, q3.Usage, want[p.Name])
		}
		// Per-resolution keys hold for every determinable app.
		if q3.Usage != KeyUsageUnknown && !q3.PerResolutionKeys {
			t.Errorf("%s: per-resolution keys not observed", p.Name)
		}
	}
}

func TestTableI_Q4(t *testing.T) {
	s := sharedStudy(t)
	want := map[string]LegacyOutcome{
		"Netflix": LegacyPlays, "myCANAL": LegacyPlays, "Showtime": LegacyPlays,
		"OCS": LegacyPlays, "Salto": LegacyPlays, "Hulu": LegacyPlays,
		"Disney+": LegacyProvisioningFails, "HBO Max": LegacyProvisioningFails,
		"Starz":              LegacyProvisioningFails,
		"Amazon Prime Video": LegacyPlaysCustomDRM,
	}
	for _, p := range s.World.Profiles() {
		q4, err := s.RunQ4(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if q4.Outcome != want[p.Name] {
			t.Errorf("%s: legacy outcome = %v (%s), want %v", p.Name, q4.Outcome, q4.Detail, want[p.Name])
		}
	}
}

// TestPracticalImpact reproduces §IV-D: DRM-free content recovered from
// the six permissive apps, never better than 540p; nothing from the
// revoking apps or Amazon.
func TestPracticalImpact(t *testing.T) {
	s := sharedStudy(t)
	succeeds := map[string]bool{
		"Netflix": true, "myCANAL": true, "Showtime": true,
		"OCS": true, "Salto": true, "Hulu": true,
		"Disney+": false, "HBO Max": false, "Starz": false,
		"Amazon Prime Video": false,
	}
	for _, p := range s.World.Profiles() {
		res, err := s.RunPracticalImpact(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if res.DRMFree != succeeds[p.Name] {
			t.Errorf("%s: DRMFree = %v (reason %q), want %v",
				p.Name, res.DRMFree, res.FailureReason, succeeds[p.Name])
			continue
		}
		if !res.KeyboxRecovered {
			t.Errorf("%s: keybox not recovered from L3 process memory", p.Name)
		}
		if res.DRMFree {
			if res.MaxHeight != 540 {
				t.Errorf("%s: recovered quality = %dp, want capped at 540p", p.Name, res.MaxHeight)
			}
			if !res.RSAKeyRecovered || res.ContentKeysFound == 0 {
				t.Errorf("%s: ladder incomplete: %+v", p.Name, res)
			}
		}
	}
}

// TestL1Resists verifies the E6 ablation: the same memory-scan attack
// finds no keybox on a TEE-backed device.
func TestL1Resists(t *testing.T) {
	s := sharedStudy(t)
	found, err := s.RunL1Resistance("Showtime")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("keybox recovered from an L1 device's normal-world memory")
	}
}

func TestTableRender(t *testing.T) {
	out := PaperTable().Render()
	for _, want := range []string{"Netflix", "Recommended", "provisioning fails", "plays †", "TABLE I"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableDiff(t *testing.T) {
	a := PaperTable()
	if diffs := a.Diff(PaperTable()); len(diffs) != 0 {
		t.Errorf("self-diff nonempty: %v", diffs)
	}
	b := PaperTable()
	q2 := *b.Rows[0].Q2()
	q2.Audio = ProtectionEncrypted
	b.Rows[0].Results["q2"] = &q2
	if diffs := a.Diff(b); len(diffs) != 1 {
		t.Errorf("diff = %v, want 1 entry", diffs)
	}
	c := &Table{Rows: []Row{{App: "Nobody"}}}
	if diffs := c.Diff(a); len(diffs) == 0 {
		t.Error("missing-app diff empty")
	}
}

func TestWorld_UnknownApp(t *testing.T) {
	s := sharedStudy(t)
	if _, err := s.World.Fixture("NoSuchApp"); err == nil {
		t.Error("want error for unknown app")
	}
}

func TestNewWorld_CustomProfiles(t *testing.T) {
	w, err := NewWorld("custom", []ott.Profile{ott.Profiles()[7]}) // Showtime
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Profiles()) != 1 {
		t.Fatalf("profiles = %d", len(w.Profiles()))
	}
	st := NewStudy(w)
	q4, err := st.RunQ4("Showtime")
	if err != nil {
		t.Fatal(err)
	}
	if q4.Outcome != LegacyPlays {
		t.Errorf("outcome = %v", q4.Outcome)
	}
}
