// Package wideleak is the paper's primary contribution rebuilt as a
// library: an automated study engine that answers the four research
// questions (Q1 Widevine usage, Q2 content protection, Q3 key usage, Q4
// discontinued-device support) for a set of OTT apps, producing Table I,
// and that runs the §IV-D practical-impact attack chain.
//
// The engine is strictly observational: it derives every cell from monitor
// traces, intercepted network traffic and downloaded assets — never from
// the apps' configured profiles — mirroring the paper's black-box
// methodology against closed-source apps.
package wideleak

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/ott"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// ContentID is the catalog title every deployment serves.
const ContentID = "movie-1"

// World is the full experimental setup: ten OTT deployments on a shared
// network, a device factory, and per-app device/app fixtures built lazily.
//
// Every randomness consumer gets its own stream forked from the world seed
// by stable label, so the world's material is identical regardless of the
// order (or concurrency) in which fixtures are built.
type World struct {
	Network  *netsim.Network
	Registry *provision.Registry
	Factory  *device.Factory

	seed     string
	root     *wvcrypto.DeterministicReader
	clock    *netsim.VirtualClock
	profiles []ott.Profile

	deployments map[string]*ott.Deployment

	// mu guards only the fixtures map; fixture construction itself runs
	// under a per-app once-guard so concurrent callers building different
	// apps never serialize.
	mu       sync.Mutex
	fixtures map[string]*fixtureEntry
}

// fixtureEntry is the per-app build guard: concurrent Fixture calls for the
// same app share one build, calls for different apps proceed in parallel.
type fixtureEntry struct {
	once sync.Once
	f    *AppFixture
	err  error
}

// AppFixture is one app's device set: the modern L1 phone, a modern
// L3-only phone, and the discontinued Nexus 5, each with the app installed.
type AppFixture struct {
	Profile ott.Profile

	PixelDevice  *device.Device
	L3Device     *device.Device
	Nexus5Device *device.Device

	PixelApp  *ott.App
	L3App     *ott.App
	Nexus5App *ott.App
}

// NewWorld builds the deployments for the given profiles (defaulting to the
// paper's ten apps when profiles is nil). The seed makes the whole world
// reproducible: every deployment and fixture draws from a stream forked
// from the seed by stable label, never from a shared cursor.
func NewWorld(seed string, profiles []ott.Profile) (*World, error) {
	if profiles == nil {
		profiles = ott.Profiles()
	}
	root := wvcrypto.NewDeterministicReader("wideleak-world-" + seed)
	w := &World{
		Network:     netsim.NewNetwork(),
		Registry:    provision.NewRegistry(),
		seed:        seed,
		root:        root,
		clock:       netsim.NewVirtualClock(),
		profiles:    profiles,
		deployments: make(map[string]*ott.Deployment, len(profiles)),
		fixtures:    make(map[string]*fixtureEntry, len(profiles)),
	}
	// Device RSA keys mint from per-device forks of the world's
	// provisioning root — a pure function of (seed, stable ID), never of
	// provisioning order — so they can be pre-minted by a shared pool or
	// restored from a snapshot byte-identically.
	w.Registry.UseKeyPool(provision.NewKeyPool(mintRoot(root)))
	w.Factory = device.NewFactory(w.Registry, root.Fork("factory"))
	for _, p := range profiles {
		dep, err := ott.NewDeployment(p, []string{ContentID}, w.Registry, w.Network, root.Fork("deploy/"+p.Name))
		if err != nil {
			return nil, fmt.Errorf("wideleak: deploy %s: %w", p.Name, err)
		}
		w.deployments[p.Name] = dep
	}
	return w, nil
}

// Profiles returns the studied app profiles.
func (w *World) Profiles() []ott.Profile { return w.profiles }

// Seed returns the world's reproducibility seed.
func (w *World) Seed() string { return w.seed }

// mintRoot derives the world's RSA provisioning root from its rand root.
// NewKeyPool must use the exact same chain: the label is part of the
// determinism contract.
func mintRoot(root *wvcrypto.DeterministicReader) *wvcrypto.DeterministicReader {
	return root.Fork("provision/rsa")
}

// NewKeyPool builds a Device RSA key pool for a seed, minting keys
// byte-identical to the ones any World with that seed mints on demand.
// A daemon creates one pool per served seed, prewarms it in the
// background, and attaches it to every world it builds for that seed —
// the cold-start RSA phase then happens once per seed, not once per run.
func NewKeyPool(seed string) *provision.KeyPool {
	if seed == "" {
		seed = "default"
	}
	return provision.NewKeyPool(mintRoot(wvcrypto.NewDeterministicReader("wideleak-world-" + seed)))
}

// AttachKeyPool replaces the world's private mint pool with a shared
// one, so keys pre-minted elsewhere (a daemon's boot warm-up, an earlier
// world of the same seed) are served without generation. The pool must
// derive from this world's seed — attaching a mismatched pool would
// silently change every device identity, so it is rejected instead.
// Attach before any provisioning traffic.
func (w *World) AttachKeyPool(pool *provision.KeyPool) error {
	if got, want := pool.Fingerprint(), mintRoot(w.root).Fingerprint(); got != want {
		return fmt.Errorf("wideleak: key pool seed mismatch (pool %s, world %s)", got, want)
	}
	w.Registry.UseKeyPool(pool)
	return nil
}

// DeviceStableIDs returns the stable IDs (device serials) of every
// device this world's fixtures will manufacture, in profile order —
// the prewarm set for its seed's key pool.
func (w *World) DeviceStableIDs() []string { return DeviceStableIDs(w.profiles) }

// DeviceStableIDs enumerates the device serials the given profiles'
// fixtures mint (nil = the paper's ten apps): the Pixel, modern L3 and
// Nexus 5 units per app, in profile order — plus, for apps shipping an
// embedded Widevine library, the embedded CDM identities their installs
// register on the two L3-level devices. The list is what a key pool
// prewarms — serials are a pure function of the profile names, so it
// can be computed without building any world.
func DeviceStableIDs(profiles []ott.Profile) []string {
	if profiles == nil {
		profiles = ott.Profiles()
	}
	out := make([]string, 0, 3*len(profiles))
	for _, p := range profiles {
		px, l3, n5 := deviceSerials(p.Name)
		out = append(out, px, l3, n5)
		if p.EmbeddedCDMOnL3 {
			out = append(out, embeddedSerial(l3), embeddedSerial(n5))
		}
	}
	return out
}

// embeddedSerial derives the stable ID of an app-embedded CDM's keybox
// from its host device's serial, mirroring ott.Install exactly.
func embeddedSerial(deviceSerial string) string {
	serial := deviceSerial + "-emb"
	if len(serial) > 32 {
		serial = serial[:32]
	}
	return serial
}

// deviceSerials returns the three device serials one app's fixture
// manufactures. Serials double as provisioning stable IDs, so fixture
// building and key-pool prewarming must agree on them exactly.
func deviceSerials(app string) (pixel, l3, nexus5 string) {
	short := shortName(app)
	return "PX-" + short, "L3-" + short, "N5-" + short
}

// Clock returns the world's virtual clock. Injected latency and retry
// backoff are charged to it, so fault-laden studies complete in real
// milliseconds while the accumulated delay stays observable.
func (w *World) Clock() *netsim.VirtualClock { return w.clock }

// FaultSpec configures deterministic fault injection for a world. The
// schedule depends only on the world seed, the fault seed, and each
// host's own request sequence — never on wall time or goroutine order.
type FaultSpec struct {
	// Seed names the fault schedule: the same world seed and fault seed
	// always reproduce the exact same faults.
	Seed string
	// Default applies to every host without a PerHost override.
	Default netsim.FaultProfile
	// PerHost overrides the mix for specific hosts (e.g. one app's
	// license server marked Permanent).
	PerHost map[string]netsim.FaultProfile
}

// InstallFaults puts a deterministic fault layer on the world's network.
// Transient profiles with the default burst cap are masked by the stock
// retry policies (the rendered Table I is byte-identical to the
// fault-free run); Permanent profiles exhaust retries and surface as
// annotated per-app cells.
func (w *World) InstallFaults(spec FaultSpec) *netsim.FaultPlan {
	plan := netsim.NewFaultPlan(w.root.Fork("faults/"+spec.Seed), spec.Default)
	plan.SetClock(w.clock)
	for host, fp := range spec.PerHost {
		plan.SetHostProfile(host, fp)
	}
	w.Network.SetFaultPlan(plan)
	return plan
}

// FaultPlan returns the installed fault layer, nil when the network is
// perfect.
func (w *World) FaultPlan() *netsim.FaultPlan { return w.Network.FaultPlan() }

// TransientFaults builds a transient-only profile failing roughly rate
// of all attempts (split evenly across drops, busies and flaps), with
// occasional injected latency. Bursts stay under the default retry
// budget, so installing it never changes a study's outcome.
func TransientFaults(rate float64) netsim.FaultProfile {
	return netsim.FaultProfile{
		DropRate:    rate / 3,
		BusyRate:    rate / 3,
		FlapRate:    rate / 3,
		LatencyRate: 0.1,
		Latency:     20 * time.Millisecond,
	}
}

// Deployment returns one app's backend.
func (w *World) Deployment(app string) *ott.Deployment { return w.deployments[app] }

// Fixture lazily builds one app's device set. Concurrent calls for the same
// app share a single build; calls for different apps run fully in parallel
// (fixture minting is the study's RSA-heavy phase, so this is the
// scalability pivot for parallel table construction).
func (w *World) Fixture(app string) (*AppFixture, error) {
	w.mu.Lock()
	e, ok := w.fixtures[app]
	if !ok {
		e = &fixtureEntry{}
		w.fixtures[app] = e
	}
	w.mu.Unlock()
	e.once.Do(func() { e.f, e.err = w.buildFixture(app) })
	return e.f, e.err
}

// buildFixture manufactures one app's three devices and installs the app on
// each, drawing every byte of randomness from the app's own forked stream.
func (w *World) buildFixture(app string) (*AppFixture, error) {
	var profile *ott.Profile
	for i := range w.profiles {
		if w.profiles[i].Name == app {
			profile = &w.profiles[i]
			break
		}
	}
	if profile == nil {
		return nil, fmt.Errorf("wideleak: unknown app %q", app)
	}

	rand := w.root.Fork("fixture/" + app)
	factory := w.Factory.WithRand(rand)

	pxSerial, l3Serial, n5Serial := deviceSerials(app)
	pixel, err := factory.MakePixel(pxSerial)
	if err != nil {
		return nil, err
	}
	l3, err := factory.MakeL3Phone(l3Serial)
	if err != nil {
		return nil, err
	}
	nexus5, err := factory.MakeNexus5(n5Serial)
	if err != nil {
		return nil, err
	}
	f := &AppFixture{Profile: *profile, PixelDevice: pixel, L3Device: l3, Nexus5Device: nexus5}

	if f.PixelApp, err = ott.Install(*profile, pixel, w.Network, w.Registry, rand); err != nil {
		return nil, err
	}
	if f.L3App, err = ott.Install(*profile, l3, w.Network, w.Registry, rand); err != nil {
		return nil, err
	}
	if f.Nexus5App, err = ott.Install(*profile, nexus5, w.Network, w.Registry, rand); err != nil {
		return nil, err
	}

	// Every installed app retries transient transport faults, with jitter
	// from its own forked stream and backoff on the world's virtual clock,
	// so fault-laden runs stay reproducible and cost no wall time.
	f.PixelApp.NetworkClient().SetRetryPolicy(netsim.DefaultRetryPolicy(rand.Fork("retry/pixel"), w.clock))
	f.L3App.NetworkClient().SetRetryPolicy(netsim.DefaultRetryPolicy(rand.Fork("retry/l3"), w.clock))
	f.Nexus5App.NetworkClient().SetRetryPolicy(netsim.DefaultRetryPolicy(rand.Fork("retry/nexus5"), w.clock))
	return f, nil
}

// WarmFixtures pre-builds every app's fixture on a bounded worker pool,
// so a subsequent table build (or any per-question run) finds all device
// material minted. parallelism <= 0 selects one worker per app. The first
// error in profile order is returned; ctx cancellation stops workers from
// picking up further apps.
func (w *World) WarmFixtures(ctx context.Context, parallelism int) error {
	apps := w.profiles
	if parallelism <= 0 || parallelism > len(apps) {
		parallelism = len(apps)
	}
	if parallelism == 0 {
		return nil
	}
	errs := make([]error, len(apps))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go func() {
			defer wg.Done()
			for idx := range next {
				_, errs[idx] = w.Fixture(apps[idx].Name)
			}
		}()
	}
feed:
	for i := range apps {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("wideleak: warm fixture %s: %w", apps[i].Name, err)
		}
	}
	return nil
}

// AttackerClient returns a fresh unpinned network client — the attacker's
// own machine, with no OTT account or app, used to download CDN assets.
// Like the apps, it retries transient faults deterministically.
func (w *World) AttackerClient() *netsim.Client {
	c := netsim.NewClient(w.Network)
	c.SetRetryPolicy(netsim.DefaultRetryPolicy(w.root.Fork("retry/attacker"), w.clock))
	return c
}

// shortName compresses an app name into a serial-safe token: up to eight
// alphanumeric characters plus a stable hash suffix of the full name, so
// apps sharing an eight-character prefix ("Disney+ Originals" vs
// "Disney+ Kids") still mint distinct device serials.
func shortName(app string) string {
	out := make([]byte, 0, 8)
	for _, c := range app {
		if c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, byte(c))
		}
		if len(out) == 8 {
			break
		}
	}
	sum := sha256.Sum256([]byte(app))
	return string(out) + "-" + hex.EncodeToString(sum[:2])
}
