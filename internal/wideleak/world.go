// Package wideleak is the paper's primary contribution rebuilt as a
// library: an automated study engine that answers the four research
// questions (Q1 Widevine usage, Q2 content protection, Q3 key usage, Q4
// discontinued-device support) for a set of OTT apps, producing Table I,
// and that runs the §IV-D practical-impact attack chain.
//
// The engine is strictly observational: it derives every cell from monitor
// traces, intercepted network traffic and downloaded assets — never from
// the apps' configured profiles — mirroring the paper's black-box
// methodology against closed-source apps.
package wideleak

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/ott"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// ContentID is the catalog title every deployment serves.
const ContentID = "movie-1"

// World is the full experimental setup: ten OTT deployments on a shared
// network, a device factory, and per-app device/app fixtures built lazily.
//
// Every randomness consumer gets its own stream forked from the world seed
// by stable label, so the world's material is identical regardless of the
// order (or concurrency) in which fixtures are built.
type World struct {
	Network  *netsim.Network
	Registry *provision.Registry
	Factory  *device.Factory

	seed     string
	root     *wvcrypto.DeterministicReader
	clock    *netsim.VirtualClock
	profiles []ott.Profile
	devices  []device.Profile

	deployments map[string]*ott.Deployment

	// mu guards the fixtures map and cellCounts; fixture construction
	// itself runs under a per-app once-guard so concurrent callers
	// building different apps never serialize.
	mu         sync.Mutex
	fixtures   map[string]*fixtureEntry
	cellCounts map[string]int // device profile name → fixture cells built
}

// fixtureEntry is the per-app build guard: concurrent Fixture calls for the
// same app share one build, calls for different apps proceed in parallel.
type fixtureEntry struct {
	once sync.Once
	f    *AppFixture
	err  error
}

// DeviceCell is one (device, installed app) unit of an app's fixture —
// the device axis' atom. Cells are ordered by the world's canonical
// device list and each one draws from its own rand fork, so a cell's
// material is a pure function of (seed, app, device profile).
type DeviceCell struct {
	Profile device.Profile
	Device  *device.Device
	App     *ott.App
}

// AppFixture is one app's device matrix: the app installed on every
// device the world manufactures, one cell per device profile, in
// canonical device order (the default set is the paper's trio — L1
// Pixel, modern L3 phone, discontinued Nexus 5).
type AppFixture struct {
	Profile ott.Profile
	Cells   []DeviceCell
}

// Cell returns the cell for a device profile name, nil when the world
// doesn't manufacture it.
func (f *AppFixture) Cell(name string) *DeviceCell {
	for i := range f.Cells {
		if f.Cells[i].Profile.Name == name {
			return &f.Cells[i]
		}
	}
	return nil
}

// Device returns the named profile's device, nil when absent.
func (f *AppFixture) Device(name string) *device.Device {
	if c := f.Cell(name); c != nil {
		return c.Device
	}
	return nil
}

// App returns the app install on the named profile's device, nil when
// absent.
func (f *AppFixture) App(name string) *ott.App {
	if c := f.Cell(name); c != nil {
		return c.App
	}
	return nil
}

// ObservationL1 returns the cell the study observes L1 behaviour on:
// the first current (non-legacy) L1 device with a trusted identity.
// Nil when the device set has no such device.
func (f *AppFixture) ObservationL1() *DeviceCell {
	for i := range f.Cells {
		p := f.Cells[i].Profile
		if p.Level == oemcrypto.L1 && !p.Legacy && !p.Revoked() {
			return &f.Cells[i]
		}
	}
	return nil
}

// ObservationL3 returns the cell the study observes L3 behaviour on:
// the first current (non-legacy) L3 device with a trusted identity.
// Nil when the device set has no such device.
func (f *AppFixture) ObservationL3() *DeviceCell {
	for i := range f.Cells {
		p := f.Cells[i].Profile
		if p.Level == oemcrypto.L3 && !p.Legacy && !p.Revoked() {
			return &f.Cells[i]
		}
	}
	return nil
}

// LegacyCells returns every discontinued-device cell in canonical
// order — the population Q4's revocation matrix plays on.
func (f *AppFixture) LegacyCells() []*DeviceCell {
	var out []*DeviceCell
	for i := range f.Cells {
		if f.Cells[i].Profile.Legacy {
			out = append(out, &f.Cells[i])
		}
	}
	return out
}

// Legacy returns the first discontinued-device cell (the Nexus 5 in the
// default set), nil when the device set has none.
func (f *AppFixture) Legacy() *DeviceCell {
	for i := range f.Cells {
		if f.Cells[i].Profile.Legacy {
			return &f.Cells[i]
		}
	}
	return nil
}

// CanonicalDeviceNames resolves a requested device set against the
// profile registry: names are matched case-insensitively, duplicates
// rejected, and the result ordered canonically (registry registration
// order), so any permutation of the same set yields one canonical list.
// nil or empty selects the default trio. The unknown-name error lists
// every registered profile.
func CanonicalDeviceNames(names []string) ([]string, error) {
	if len(names) == 0 {
		return device.DefaultProfileNames(), nil
	}
	out := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		p, ok := device.ByName(name)
		if !ok {
			return nil, fmt.Errorf("wideleak: unknown device profile %q (registered: %s)",
				name, strings.Join(device.ProfileNames(), ", "))
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("wideleak: duplicate device profile %q", p.Name)
		}
		seen[p.Name] = true
		out = append(out, p.Name)
	}
	device.SortByRegistry(out)
	return out, nil
}

// ResolveDeviceProfiles canonicalizes a device set (see
// CanonicalDeviceNames) and resolves it to profiles.
func ResolveDeviceProfiles(names []string) ([]device.Profile, error) {
	canonical, err := CanonicalDeviceNames(names)
	if err != nil {
		return nil, err
	}
	out := make([]device.Profile, len(canonical))
	for i, name := range canonical {
		out[i] = device.MustProfile(name)
	}
	return out, nil
}

// NewWorld builds the deployments for the given profiles (defaulting to the
// paper's ten apps when profiles is nil) over the default device trio. The
// seed makes the whole world reproducible: every deployment and fixture
// draws from a stream forked from the seed by stable label, never from a
// shared cursor.
func NewWorld(seed string, profiles []ott.Profile) (*World, error) {
	return NewWorldDevices(seed, profiles, nil)
}

// NewWorldDevices is NewWorld with an explicit device set: each app's
// fixture manufactures one cell per named device profile. nil devices
// selects the default trio; the set is canonicalized (order-insensitive,
// registry-validated) before the world is built.
func NewWorldDevices(seed string, profiles []ott.Profile, devices []string) (*World, error) {
	if profiles == nil {
		profiles = ott.Profiles()
	}
	deviceProfiles, err := ResolveDeviceProfiles(devices)
	if err != nil {
		return nil, err
	}
	root := wvcrypto.NewDeterministicReader("wideleak-world-" + seed)
	w := &World{
		Network:     netsim.NewNetwork(),
		Registry:    provision.NewRegistry(),
		seed:        seed,
		root:        root,
		clock:       netsim.NewVirtualClock(),
		profiles:    profiles,
		devices:     deviceProfiles,
		deployments: make(map[string]*ott.Deployment, len(profiles)),
		fixtures:    make(map[string]*fixtureEntry, len(profiles)),
		cellCounts:  make(map[string]int, len(deviceProfiles)),
	}
	// Device RSA keys mint from per-device forks of the world's
	// provisioning root — a pure function of (seed, stable ID), never of
	// provisioning order — so they can be pre-minted by a shared pool or
	// restored from a snapshot byte-identically.
	w.Registry.UseKeyPool(provision.NewKeyPool(mintRoot(root)))
	w.Factory = device.NewFactory(w.Registry, root.Fork("factory"))
	for _, p := range profiles {
		dep, err := ott.NewDeployment(p, []string{ContentID}, w.Registry, w.Network, root.Fork("deploy/"+p.Name))
		if err != nil {
			return nil, fmt.Errorf("wideleak: deploy %s: %w", p.Name, err)
		}
		w.deployments[p.Name] = dep
	}
	return w, nil
}

// Profiles returns the studied app profiles.
func (w *World) Profiles() []ott.Profile { return w.profiles }

// DeviceProfiles returns the world's device set in canonical order.
func (w *World) DeviceProfiles() []device.Profile {
	return append([]device.Profile(nil), w.devices...)
}

// DeviceNames returns the world's device profile names in canonical
// order.
func (w *World) DeviceNames() []string {
	names := make([]string, len(w.devices))
	for i, p := range w.devices {
		names[i] = p.Name
	}
	return names
}

// DeviceCellCounts reports how many fixture cells the world has built
// per device profile — the device-cell dimension batch stats and the
// daemon's wideleakd_device_cells_total counter surface.
func (w *World) DeviceCellCounts() map[string]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]int, len(w.cellCounts))
	for k, v := range w.cellCounts {
		out[k] = v
	}
	return out
}

// ManifestServeCounts reports how many manifests the world's CDNs have
// served per dialect, summed across deployments — the protocol dimension
// batch stats and the daemon's wideleakd_manifests_served_total counter
// surface.
func (w *World) ManifestServeCounts() map[string]int {
	out := make(map[string]int)
	for _, dep := range w.deployments {
		for dialect, n := range dep.CDN().ServeCounts() {
			out[dialect] += int(n)
		}
	}
	return out
}

// Seed returns the world's reproducibility seed.
func (w *World) Seed() string { return w.seed }

// mintRoot derives the world's RSA provisioning root from its rand root.
// NewKeyPool must use the exact same chain: the label is part of the
// determinism contract.
func mintRoot(root *wvcrypto.DeterministicReader) *wvcrypto.DeterministicReader {
	return root.Fork("provision/rsa")
}

// NewKeyPool builds a Device RSA key pool for a seed, minting keys
// byte-identical to the ones any World with that seed mints on demand.
// A daemon creates one pool per served seed, prewarms it in the
// background, and attaches it to every world it builds for that seed —
// the cold-start RSA phase then happens once per seed, not once per run.
func NewKeyPool(seed string) *provision.KeyPool {
	if seed == "" {
		seed = "default"
	}
	return provision.NewKeyPool(mintRoot(wvcrypto.NewDeterministicReader("wideleak-world-" + seed)))
}

// AttachKeyPool replaces the world's private mint pool with a shared
// one, so keys pre-minted elsewhere (a daemon's boot warm-up, an earlier
// world of the same seed) are served without generation. The pool must
// derive from this world's seed — attaching a mismatched pool would
// silently change every device identity, so it is rejected instead.
// Attach before any provisioning traffic.
func (w *World) AttachKeyPool(pool *provision.KeyPool) error {
	if got, want := pool.Fingerprint(), mintRoot(w.root).Fingerprint(); got != want {
		return fmt.Errorf("wideleak: key pool seed mismatch (pool %s, world %s)", got, want)
	}
	w.Registry.UseKeyPool(pool)
	return nil
}

// DeviceStableIDs returns the stable IDs (device serials) of every
// device this world's fixtures will manufacture, in profile order —
// the prewarm set for its seed's key pool.
func (w *World) DeviceStableIDs() []string {
	return stableIDs(w.profiles, w.devices)
}

// DeviceStableIDs enumerates the device serials the given profiles'
// fixtures mint over the default device trio (nil = the paper's ten
// apps). See DeviceStableIDsFor.
func DeviceStableIDs(profiles []ott.Profile) []string {
	ids, _ := DeviceStableIDsFor(profiles, nil)
	return ids
}

// DeviceStableIDsFor enumerates the device serials the given app
// profiles' fixtures mint over a device set (nil devices = default
// trio): per app, one serial per device cell in canonical device order,
// plus — for apps shipping an embedded Widevine library — the embedded
// CDM identities their installs register on each L3-level device. The
// list is what a key pool prewarms; it is derived from the device
// registry, not enumerated, so serials stay a pure function of (app
// profile names, device set) and can be computed without building any
// world.
func DeviceStableIDsFor(profiles []ott.Profile, devices []string) ([]string, error) {
	deviceProfiles, err := ResolveDeviceProfiles(devices)
	if err != nil {
		return nil, err
	}
	return stableIDs(profiles, deviceProfiles), nil
}

func stableIDs(profiles []ott.Profile, devices []device.Profile) []string {
	if profiles == nil {
		profiles = ott.Profiles()
	}
	out := make([]string, 0, len(devices)*len(profiles))
	for _, p := range profiles {
		// Device serials first, then embedded CDM identities, matching the
		// historical prewarm order for the default trio.
		for _, dp := range devices {
			out = append(out, deviceSerial(dp, p.Name))
		}
		if p.EmbeddedCDMOnL3 {
			for _, dp := range devices {
				if dp.Level == oemcrypto.L3 {
					out = append(out, embeddedSerial(deviceSerial(dp, p.Name)))
				}
			}
		}
	}
	return out
}

// embeddedSerial derives the stable ID of an app-embedded CDM's keybox
// from its host device's serial, mirroring ott.Install exactly.
func embeddedSerial(deviceSerial string) string {
	serial := deviceSerial + "-emb"
	if len(serial) > 32 {
		serial = serial[:32]
	}
	return serial
}

// deviceSerial returns the serial one app's fixture cell manufactures
// for a device profile. Serials double as provisioning stable IDs, so
// fixture building and key-pool prewarming must agree on them exactly.
func deviceSerial(dp device.Profile, app string) string {
	return dp.SerialPrefix + "-" + shortName(app)
}

// Clock returns the world's virtual clock. Injected latency and retry
// backoff are charged to it, so fault-laden studies complete in real
// milliseconds while the accumulated delay stays observable.
func (w *World) Clock() *netsim.VirtualClock { return w.clock }

// FaultSpec configures deterministic fault injection for a world. The
// schedule depends only on the world seed, the fault seed, and each
// host's own request sequence — never on wall time or goroutine order.
type FaultSpec struct {
	// Seed names the fault schedule: the same world seed and fault seed
	// always reproduce the exact same faults.
	Seed string
	// Default applies to every host without a PerHost override.
	Default netsim.FaultProfile
	// PerHost overrides the mix for specific hosts (e.g. one app's
	// license server marked Permanent).
	PerHost map[string]netsim.FaultProfile
}

// InstallFaults puts a deterministic fault layer on the world's network.
// Transient profiles with the default burst cap are masked by the stock
// retry policies (the rendered Table I is byte-identical to the
// fault-free run); Permanent profiles exhaust retries and surface as
// annotated per-app cells.
func (w *World) InstallFaults(spec FaultSpec) *netsim.FaultPlan {
	plan := netsim.NewFaultPlan(w.root.Fork("faults/"+spec.Seed), spec.Default)
	plan.SetClock(w.clock)
	for host, fp := range spec.PerHost {
		plan.SetHostProfile(host, fp)
	}
	w.Network.SetFaultPlan(plan)
	return plan
}

// FaultPlan returns the installed fault layer, nil when the network is
// perfect.
func (w *World) FaultPlan() *netsim.FaultPlan { return w.Network.FaultPlan() }

// TransientFaults builds a transient-only profile failing roughly rate
// of all attempts (split evenly across drops, busies and flaps), with
// occasional injected latency. Bursts stay under the default retry
// budget, so installing it never changes a study's outcome.
func TransientFaults(rate float64) netsim.FaultProfile {
	return netsim.FaultProfile{
		DropRate:    rate / 3,
		BusyRate:    rate / 3,
		FlapRate:    rate / 3,
		LatencyRate: 0.1,
		Latency:     20 * time.Millisecond,
	}
}

// Deployment returns one app's backend.
func (w *World) Deployment(app string) *ott.Deployment { return w.deployments[app] }

// Fixture lazily builds one app's device set. Concurrent calls for the same
// app share a single build; calls for different apps run fully in parallel
// (fixture minting is the study's RSA-heavy phase, so this is the
// scalability pivot for parallel table construction).
func (w *World) Fixture(app string) (*AppFixture, error) {
	w.mu.Lock()
	e, ok := w.fixtures[app]
	if !ok {
		e = &fixtureEntry{}
		w.fixtures[app] = e
	}
	w.mu.Unlock()
	e.once.Do(func() { e.f, e.err = w.buildFixture(app) })
	return e.f, e.err
}

// buildFixture manufactures one app's device matrix: one cell per device
// profile in the world's canonical device order. Each cell draws every
// byte of randomness (keybox, engine material, install, retry jitter)
// from its own fork of the app's stream, so a cell's material is
// invariant under changes to the rest of the device set.
func (w *World) buildFixture(app string) (*AppFixture, error) {
	var profile *ott.Profile
	for i := range w.profiles {
		if w.profiles[i].Name == app {
			profile = &w.profiles[i]
			break
		}
	}
	if profile == nil {
		return nil, fmt.Errorf("wideleak: unknown app %q", app)
	}

	rand := w.root.Fork("fixture/" + app)
	f := &AppFixture{Profile: *profile, Cells: make([]DeviceCell, 0, len(w.devices))}
	for _, dp := range w.devices {
		cellRand := rand.Fork("device/" + dp.Name)
		dev, err := w.Factory.WithRand(cellRand).Make(dp, deviceSerial(dp, app))
		if err != nil {
			return nil, fmt.Errorf("wideleak: manufacture %s for %s: %w", dp.Name, app, err)
		}
		a, err := ott.Install(*profile, dev, w.Network, w.Registry, cellRand)
		if err != nil {
			return nil, fmt.Errorf("wideleak: install %s on %s: %w", app, dp.Name, err)
		}
		// Every installed app retries transient transport faults, with
		// jitter from the cell's own forked stream and backoff on the
		// world's virtual clock, so fault-laden runs stay reproducible and
		// cost no wall time.
		a.NetworkClient().SetRetryPolicy(netsim.DefaultRetryPolicy(cellRand.Fork("retry"), w.clock))
		f.Cells = append(f.Cells, DeviceCell{Profile: dp, Device: dev, App: a})
	}
	w.mu.Lock()
	for _, c := range f.Cells {
		w.cellCounts[c.Profile.Name]++
	}
	w.mu.Unlock()
	return f, nil
}

// WarmFixtures pre-builds every app's fixture on a bounded worker pool,
// so a subsequent table build (or any per-question run) finds all device
// material minted. parallelism <= 0 selects one worker per app. The first
// error in profile order is returned; ctx cancellation stops workers from
// picking up further apps.
func (w *World) WarmFixtures(ctx context.Context, parallelism int) error {
	apps := w.profiles
	if parallelism <= 0 || parallelism > len(apps) {
		parallelism = len(apps)
	}
	if parallelism == 0 {
		return nil
	}
	errs := make([]error, len(apps))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go func() {
			defer wg.Done()
			for idx := range next {
				_, errs[idx] = w.Fixture(apps[idx].Name)
			}
		}()
	}
feed:
	for i := range apps {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("wideleak: warm fixture %s: %w", apps[i].Name, err)
		}
	}
	return nil
}

// AttackerClient returns a fresh unpinned network client — the attacker's
// own machine, with no OTT account or app, used to download CDN assets.
// Like the apps, it retries transient faults deterministically.
func (w *World) AttackerClient() *netsim.Client {
	c := netsim.NewClient(w.Network)
	c.SetRetryPolicy(netsim.DefaultRetryPolicy(w.root.Fork("retry/attacker"), w.clock))
	return c
}

// shortName compresses an app name into a serial-safe token: up to eight
// alphanumeric characters plus a stable hash suffix of the full name, so
// apps sharing an eight-character prefix ("Disney+ Originals" vs
// "Disney+ Kids") still mint distinct device serials.
func shortName(app string) string {
	out := make([]byte, 0, 8)
	for _, c := range app {
		if c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, byte(c))
		}
		if len(out) == 8 {
			break
		}
	}
	sum := sha256.Sum256([]byte(app))
	return string(out) + "-" + hex.EncodeToString(sum[:2])
}
