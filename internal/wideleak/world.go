// Package wideleak is the paper's primary contribution rebuilt as a
// library: an automated study engine that answers the four research
// questions (Q1 Widevine usage, Q2 content protection, Q3 key usage, Q4
// discontinued-device support) for a set of OTT apps, producing Table I,
// and that runs the §IV-D practical-impact attack chain.
//
// The engine is strictly observational: it derives every cell from monitor
// traces, intercepted network traffic and downloaded assets — never from
// the apps' configured profiles — mirroring the paper's black-box
// methodology against closed-source apps.
package wideleak

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/ott"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// ContentID is the catalog title every deployment serves.
const ContentID = "movie-1"

// World is the full experimental setup: ten OTT deployments on a shared
// network, a device factory, and per-app device/app fixtures built lazily.
type World struct {
	Network  *netsim.Network
	Registry *provision.Registry
	Factory  *device.Factory

	rand        io.Reader
	profiles    []ott.Profile
	deployments map[string]*ott.Deployment

	mu       sync.Mutex
	fixtures map[string]*AppFixture
}

// AppFixture is one app's device set: the modern L1 phone, a modern
// L3-only phone, and the discontinued Nexus 5, each with the app installed.
type AppFixture struct {
	Profile ott.Profile

	PixelDevice  *device.Device
	L3Device     *device.Device
	Nexus5Device *device.Device

	PixelApp  *ott.App
	L3App     *ott.App
	Nexus5App *ott.App
}

// NewWorld builds the deployments for the given profiles (defaulting to the
// paper's ten apps when profiles is nil). The seed makes the whole world
// reproducible.
func NewWorld(seed string, profiles []ott.Profile) (*World, error) {
	if profiles == nil {
		profiles = ott.Profiles()
	}
	rand := wvcrypto.NewDeterministicReader("wideleak-world-" + seed)
	w := &World{
		Network:     netsim.NewNetwork(),
		Registry:    provision.NewRegistry(),
		rand:        rand,
		profiles:    profiles,
		deployments: make(map[string]*ott.Deployment, len(profiles)),
		fixtures:    make(map[string]*AppFixture, len(profiles)),
	}
	w.Factory = device.NewFactory(w.Registry, rand)
	for _, p := range profiles {
		dep, err := ott.NewDeployment(p, []string{ContentID}, w.Registry, w.Network, rand)
		if err != nil {
			return nil, fmt.Errorf("wideleak: deploy %s: %w", p.Name, err)
		}
		w.deployments[p.Name] = dep
	}
	return w, nil
}

// Profiles returns the studied app profiles.
func (w *World) Profiles() []ott.Profile { return w.profiles }

// Deployment returns one app's backend.
func (w *World) Deployment(app string) *ott.Deployment { return w.deployments[app] }

// Fixture lazily builds one app's device set.
func (w *World) Fixture(app string) (*AppFixture, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if f, ok := w.fixtures[app]; ok {
		return f, nil
	}
	var profile *ott.Profile
	for i := range w.profiles {
		if w.profiles[i].Name == app {
			profile = &w.profiles[i]
			break
		}
	}
	if profile == nil {
		return nil, fmt.Errorf("wideleak: unknown app %q", app)
	}

	short := shortName(app)
	pixel, err := w.Factory.MakePixel("PX-" + short)
	if err != nil {
		return nil, err
	}
	l3, err := w.Factory.MakeL3Phone("L3-" + short)
	if err != nil {
		return nil, err
	}
	nexus5, err := w.Factory.MakeNexus5("N5-" + short)
	if err != nil {
		return nil, err
	}
	f := &AppFixture{Profile: *profile, PixelDevice: pixel, L3Device: l3, Nexus5Device: nexus5}

	if f.PixelApp, err = ott.Install(*profile, pixel, w.Network, w.Registry, w.rand); err != nil {
		return nil, err
	}
	if f.L3App, err = ott.Install(*profile, l3, w.Network, w.Registry, w.rand); err != nil {
		return nil, err
	}
	if f.Nexus5App, err = ott.Install(*profile, nexus5, w.Network, w.Registry, w.rand); err != nil {
		return nil, err
	}
	w.fixtures[app] = f
	return f, nil
}

// AttackerClient returns a fresh unpinned network client — the attacker's
// own machine, with no OTT account or app, used to download CDN assets.
func (w *World) AttackerClient() *netsim.Client {
	return netsim.NewClient(w.Network)
}

// shortName compresses an app name into a serial-safe token.
func shortName(app string) string {
	out := make([]byte, 0, 8)
	for _, c := range app {
		if c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, byte(c))
		}
		if len(out) == 8 {
			break
		}
	}
	return string(out)
}
