package wideleak

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// chaosSeeds are the fixed seeds the invariance guarantee is checked
// against (the Makefile's chaos target runs all five under -race).
var chaosSeeds = []string{"chaos-1", "chaos-2", "chaos-3", "chaos-4", "chaos-5"}

// renderTable builds the full Table I for a world seed, optionally under
// a fault spec, returning the rendered text and the installed plan.
func renderTable(t *testing.T, worldSeed string, spec *FaultSpec) (string, *netsim.FaultPlan, *World) {
	t.Helper()
	w, err := NewWorld(worldSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var plan *netsim.FaultPlan
	if spec != nil {
		plan = w.InstallFaults(*spec)
	}
	table, err := NewStudy(w).BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	return table.Render(), plan, w
}

// TestChaos_TableIFaultInvariance is the headline chaos property: under a
// transient-only fault plan — whose bursts stay below the retry budget by
// construction — the rendered Table I is byte-identical to the fault-free
// run, for every fixed seed.
func TestChaos_TableIFaultInvariance(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(seed, func(t *testing.T) {
			clean, _, _ := renderTable(t, seed, nil)

			spec := &FaultSpec{Seed: seed, Default: TransientFaults(0.25)}
			faulty, plan, w := renderTable(t, seed, spec)

			if faulty != clean {
				t.Errorf("faulty table diverged from fault-free run:\n--- clean ---\n%s--- faulty ---\n%s", clean, faulty)
			}
			// Guard against a vacuous pass: the run must actually have been
			// perturbed, and the delays must have landed on the virtual
			// clock, not the wall clock.
			stats := plan.Stats()
			if stats.Total() == 0 {
				t.Error("no transient faults injected — invariance check is vacuous")
			}
			if stats.Latencies == 0 {
				t.Error("no latency injected")
			}
			if w.Clock().Now() == 0 {
				t.Error("virtual clock never advanced despite injected latency and backoff")
			}
		})
	}
}

// TestChaos_PermanentFaultAnnotatesCell: a host that is dead through
// every retry must cost exactly its own app's row — annotated, not
// fabricated — while every other row still matches the paper.
func TestChaos_PermanentFaultAnnotatesCell(t *testing.T) {
	w, err := NewWorld("chaos-permanent", nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := w.Profiles()[7] // Showtime
	w.InstallFaults(FaultSpec{
		Seed:    "permanent",
		Default: TransientFaults(0.2),
		PerHost: map[string]netsim.FaultProfile{
			victim.LicenseHost(): {Permanent: true},
		},
	})

	table, err := NewStudy(w).BuildTable()
	if err != nil {
		t.Fatalf("one dead host failed the whole table: %v", err)
	}
	if len(table.Rows) != len(w.Profiles()) {
		t.Fatalf("table has %d rows, want %d", len(table.Rows), len(w.Profiles()))
	}

	paper := PaperTable()
	for i, row := range table.Rows {
		if row.App == victim.Name {
			if !row.Failed() {
				t.Fatalf("%s row not annotated: %+v", victim.Name, row)
			}
			if !strings.Contains(row.Err, "retries exhausted") {
				t.Errorf("%s annotation %q does not name retry exhaustion", victim.Name, row.Err)
			}
			continue
		}
		single := &Table{Rows: []Row{row}}
		expect := &Table{Rows: []Row{paper.Rows[i]}}
		if diffs := single.Diff(expect); len(diffs) != 0 {
			t.Errorf("healthy row %s diverged: %v", row.App, diffs)
		}
	}

	// The annotated row renders as an unavailable line, the summary counts
	// it, and the diff against the paper flags exactly the victim.
	rendered := table.Render()
	if !strings.Contains(rendered, victim.Name) || !strings.Contains(rendered, "unavailable:") {
		t.Errorf("render lacks the unavailable annotation:\n%s", rendered)
	}
	if got := table.Summarize().Unavailable; got != 1 {
		t.Errorf("summary Unavailable = %d, want 1", got)
	}
	for _, d := range table.Diff(paper) {
		if !strings.HasPrefix(d, victim.Name+"/") {
			t.Errorf("diff names a healthy row: %q", d)
		}
	}
}

// TestChaos_FaultScheduleReproducible: same world seed + same fault seed
// must inject the exact same number of each fault kind across two full
// studies (the cell-level invariance above can't see schedule drift, the
// counters can).
func TestChaos_FaultScheduleReproducible(t *testing.T) {
	run := func() netsim.FaultStats {
		spec := &FaultSpec{Seed: "repro", Default: TransientFaults(0.3)}
		_, plan, _ := renderTable(t, "chaos-repro", spec)
		return plan.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fault schedules diverged: %+v vs %+v", a, b)
	}
}
