package wideleak

import (
	"strings"
	"testing"
)

func TestBuildReport(t *testing.T) {
	s := sharedStudy(t)
	r, err := s.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	if !r.MatchesPaper {
		t.Errorf("report diverges from paper: %v", r.Diffs)
	}
	if len(r.Impacts) != 10 || len(r.Forgeries) != 10 {
		t.Fatalf("impacts/forgeries = %d/%d", len(r.Impacts), len(r.Forgeries))
	}
	var drmFree, forged int
	for _, im := range r.Impacts {
		if im.DRMFree {
			drmFree++
		}
	}
	for _, fg := range r.Forgeries {
		if fg.HDKeysGranted {
			forged++
		}
	}
	if drmFree != 6 {
		t.Errorf("DRM-free apps = %d, want 6", drmFree)
	}
	if forged != 6 {
		t.Errorf("forgeable apps = %d, want 6 (same set as §IV-D)", forged)
	}

	md := r.Markdown()
	for _, want := range []string{
		"# WideLeak study report",
		"| Netflix | yes | Encrypted | Clear |",
		"matches the paper's Table I",
		"## Practical impact",
		"540p",
		"## HD forgery",
		"1080p",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
