package wideleak

// World snapshots: serialize a built world's expensive state and restore
// it in milliseconds.
//
// The only state worth persisting is what costs seconds to rebuild — the
// provisioned 2048-bit Device RSA identities (plus the manufacturer
// device-key feed that authorizes them). Everything else a world holds
// (deployments, packaged media, keyboxes, installed apps) is re-derived
// deterministically from the seed in milliseconds, and MUST be
// re-derived: deployments hold live network handlers and apps hold live
// session state that have no meaningful serialized form.
//
// Determinism contract: a restored world renders Table I byte-identical
// to a freshly built one, sequential or parallel, faulted or not. That
// holds because every piece of world material is a pure function of
// (seed, stable label) — the snapshot merely pays the RSA generation
// bill in advance.

import (
	"encoding/json"
	"fmt"

	"repro/internal/ott"
	"repro/internal/wvcrypto"
)

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// worldSnapshot is the serialized form. Key material is raw bytes
// (base64 in JSON): device keys from the keybox feed, RSA keys as
// PKCS#1 DER.
type worldSnapshot struct {
	Version    int               `json:"version"`
	Seed       string            `json:"seed"`
	Profiles   []string          `json:"profiles"`
	Devices    []string          `json:"devices,omitempty"`
	DeviceKeys map[string][]byte `json:"device_keys"`
	RSAKeys    map[string][]byte `json:"rsa_keys"`
}

// Snapshot serializes the world's expensive state: every provisioned
// Device RSA identity and registered device key, plus the seed and
// profile set needed to rebuild the rest deterministically. Snapshot a
// warmed world (after a table build) to capture all of its keys; a
// partially warmed world yields a partial — still valid — snapshot whose
// missing keys simply mint on demand after restore.
func (w *World) Snapshot() ([]byte, error) {
	snap := worldSnapshot{
		Version:    snapshotVersion,
		Seed:       w.seed,
		Profiles:   make([]string, 0, len(w.profiles)),
		Devices:    w.DeviceNames(),
		DeviceKeys: make(map[string][]byte),
		RSAKeys:    w.Registry.ExportRSAKeys(),
	}
	for _, p := range w.profiles {
		snap.Profiles = append(snap.Profiles, p.Name)
	}
	for id, key := range w.Registry.ExportDeviceKeys() {
		k := key
		snap.DeviceKeys[id] = k[:]
	}
	// Pool-resident keys that no provisioning request has claimed yet are
	// still paid-for state (a boot-time prewarm mints straight into the
	// pool): persist them alongside the provisioned identities. The pool
	// is seed-locked to this world, so every resident key is valid here.
	if pool := w.Registry.KeyPool(); pool != nil {
		for id, key := range pool.Export() {
			if _, ok := snap.RSAKeys[id]; !ok {
				snap.RSAKeys[id] = wvcrypto.MarshalRSAPrivateKey(key)
			}
		}
	}
	return json.Marshal(snap)
}

// RestoreWorld rebuilds a world from Snapshot output in milliseconds:
// the cheap state (deployments, media, fixtures) is re-derived from the
// seed exactly as NewWorld does, and the expensive state (RSA
// identities) is installed from the snapshot so no key generation runs.
// Profile names are resolved against the registered OTT profiles.
func RestoreWorld(data []byte) (*World, error) {
	return RestoreWorldProfiles(data, nil)
}

// RestoreWorldProfiles is RestoreWorld with a profile override: the
// restored world studies the given profiles (nil = the snapshot's own
// list) while still reusing every key the snapshot carries. Because all
// world material is keyed by stable labels — never by profile-list
// position — a snapshot taken over one profile set warms a world built
// over any other; keys for devices outside the snapshot mint lazily.
func RestoreWorldProfiles(data []byte, profiles []ott.Profile) (*World, error) {
	return restoreWorld(data, profiles, nil)
}

// restoreWorld rebuilds a world from a snapshot with optional profile
// and device-set overrides (nil = the snapshot's own lists; snapshots
// predating the device axis restore the default trio). The same
// stable-label argument that makes profile overrides safe covers the
// device axis: RSA identities are keyed by device serial, so a snapshot
// taken over one device set warms any other — keys for devices outside
// the snapshot mint lazily, and a revoked profile's device never had a
// registered key to leak in.
func restoreWorld(data []byte, profiles []ott.Profile, devices []string) (*World, error) {
	var snap worldSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("wideleak: parse snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("wideleak: snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	if profiles == nil {
		for _, name := range snap.Profiles {
			p, err := profileByName(name)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
	}
	if devices == nil {
		devices = snap.Devices
	}
	w, err := NewWorldDevices(snap.Seed, profiles, devices)
	if err != nil {
		return nil, err
	}
	for id, raw := range snap.DeviceKeys {
		if len(raw) != 16 {
			return nil, fmt.Errorf("wideleak: snapshot device key %q: %d bytes (want 16)", id, len(raw))
		}
		var k [16]byte
		copy(k[:], raw)
		w.Registry.RegisterDevice(id, k)
	}
	for id, der := range snap.RSAKeys {
		key, err := wvcrypto.ParseRSAPrivateKey(der)
		if err != nil {
			return nil, fmt.Errorf("wideleak: snapshot rsa key %q: %w", id, err)
		}
		w.Registry.InstallRSAKey(id, key)
	}
	return w, nil
}

// profileByName resolves one registered OTT profile by exact name.
func profileByName(name string) (ott.Profile, error) {
	for _, p := range ott.Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return ott.Profile{}, fmt.Errorf("wideleak: snapshot profile %q is not registered", name)
}
