package mp4

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTrackEncryptionRoundTrip(t *testing.T) {
	te := &TrackEncryption{
		DefaultIsProtected:     true,
		DefaultPerSampleIVSize: 8,
		DefaultKID:             [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	}
	got, err := ParseTrackEncryption(te.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(te, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, te)
	}
}

func TestTrackEncryption_Unprotected(t *testing.T) {
	te := &TrackEncryption{}
	got, err := ParseTrackEncryption(te.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.DefaultIsProtected {
		t.Error("unprotected tenc parsed as protected")
	}
}

func TestPSSHRoundTrip(t *testing.T) {
	cases := []*PSSH{
		{SystemID: WidevineSystemID, Data: []byte("init data")},
		{
			SystemID: WidevineSystemID,
			KIDs:     [][16]byte{{1}, {2}, {3}},
			Data:     []byte("v1 init data"),
		},
		{SystemID: WidevineSystemID}, // empty data
	}
	for i, p := range cases {
		wire := p.Marshal()
		got, err := ParsePSSH(wire)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.SystemID != p.SystemID || len(got.KIDs) != len(p.KIDs) {
			t.Errorf("case %d roundtrip = %+v", i, got)
		}
		for j := range p.KIDs {
			if got.KIDs[j] != p.KIDs[j] {
				t.Errorf("case %d kid %d mismatch", i, j)
			}
		}
		if string(got.Data) != string(p.Data) {
			t.Errorf("case %d data = %q", i, got.Data)
		}
	}
}

func TestParsePSSH_Truncated(t *testing.T) {
	p := &PSSH{SystemID: WidevineSystemID, KIDs: [][16]byte{{1}}, Data: []byte("d")}
	wire := p.Marshal()
	for _, cut := range []int{5, 19, 21, 30, len(wire) - 1} {
		if cut >= len(wire) {
			continue
		}
		if _, err := ParsePSSH(wire[:cut]); err == nil {
			t.Errorf("cut %d: want error", cut)
		}
	}
}

func TestProtectionSchemeInfoRoundTrip(t *testing.T) {
	p := &ProtectionSchemeInfo{
		OriginalFormat: "avc1",
		SchemeType:     SchemeCENC,
		SchemeVersion:  0x10000,
		TrackEnc: TrackEncryption{
			DefaultIsProtected:     true,
			DefaultPerSampleIVSize: 8,
			DefaultKID:             [16]byte{0xAA, 0xBB},
		},
	}
	got, err := ParseProtectionSchemeInfo(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, p)
	}
}

func TestParseProtectionSchemeInfo_Missing(t *testing.T) {
	// sinf without schm
	sinf := AppendBox(nil, "frma", []byte("avc1"))
	if _, err := ParseProtectionSchemeInfo(sinf); err == nil {
		t.Error("missing schm: want error")
	}
	// sinf without frma
	schm := AppendFullBoxHeader(nil, 0, 0)
	schm = append(schm, "cenc"...)
	schm = append(schm, 0, 1, 0, 0)
	sinf2 := AppendBox(nil, "schm", schm)
	if _, err := ParseProtectionSchemeInfo(sinf2); err == nil {
		t.Error("missing frma: want error")
	}
}

func TestSampleEncryptionRoundTrip(t *testing.T) {
	s := &SampleEncryption{Entries: []SampleEncryptionEntry{
		{IV: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}, Subsamples: []SubsampleEntry{
			{ClearBytes: 16, ProtectedBytes: 4000},
			{ClearBytes: 4, ProtectedBytes: 100},
		}},
		{IV: [8]byte{9, 9, 9, 9}, Subsamples: []SubsampleEntry{
			{ClearBytes: 0, ProtectedBytes: 512},
		}},
	}}
	got, err := ParseSampleEncryption(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, s)
	}
	if !got.HasSubsamples() {
		t.Error("HasSubsamples = false")
	}
}

func TestSampleEncryption_NoSubsamples(t *testing.T) {
	s := &SampleEncryption{Entries: []SampleEncryptionEntry{
		{IV: [8]byte{1}},
		{IV: [8]byte{2}},
	}}
	got, err := ParseSampleEncryption(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.HasSubsamples() {
		t.Errorf("no-subsample roundtrip = %+v", got)
	}
}

// Property: senc round-trips for arbitrary IVs and subsample shapes.
func TestSampleEncryption_Property(t *testing.T) {
	prop := func(ivs [][8]byte, clear []uint16, protected []uint32) bool {
		if len(ivs) > 50 {
			ivs = ivs[:50]
		}
		s := &SampleEncryption{}
		for i, iv := range ivs {
			e := SampleEncryptionEntry{IV: iv}
			if i < len(clear) && i < len(protected) {
				e.Subsamples = []SubsampleEntry{{ClearBytes: clear[i], ProtectedBytes: protected[i]}}
			}
			s.Entries = append(s.Entries, e)
		}
		// Mixed subsample presence is normalized by Marshal: entries
		// without subsamples get an empty list when the flag is set.
		got, err := ParseSampleEncryption(s.Marshal())
		if err != nil || len(got.Entries) != len(s.Entries) {
			return false
		}
		for i := range s.Entries {
			if got.Entries[i].IV != s.Entries[i].IV {
				return false
			}
			if len(s.Entries[i].Subsamples) > 0 &&
				!reflect.DeepEqual(got.Entries[i].Subsamples, s.Entries[i].Subsamples) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseSampleEncryption_Truncated(t *testing.T) {
	s := &SampleEncryption{Entries: []SampleEncryptionEntry{
		{IV: [8]byte{1}, Subsamples: []SubsampleEntry{{ClearBytes: 1, ProtectedBytes: 2}}},
	}}
	wire := s.Marshal()
	for cut := 5; cut < len(wire); cut += 3 {
		if _, err := ParseSampleEncryption(wire[:cut]); err == nil {
			t.Errorf("cut %d: want error", cut)
		}
	}
}
