package mp4

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func TestAppendSplitRoundTrip(t *testing.T) {
	var b []byte
	b = AppendBox(b, "ftyp", []byte("payload-a"))
	b = AppendBox(b, "moov", nil)
	b = AppendBox(b, "mdat", bytes.Repeat([]byte{0x42}, 100))

	boxes, err := SplitBoxes(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 3 {
		t.Fatalf("got %d boxes", len(boxes))
	}
	if boxes[0].BoxType != "ftyp" || string(boxes[0].Payload) != "payload-a" {
		t.Errorf("box 0 = %q %q", boxes[0].BoxType, boxes[0].Payload)
	}
	if boxes[1].BoxType != "moov" || len(boxes[1].Payload) != 0 {
		t.Errorf("box 1 = %q len %d", boxes[1].BoxType, len(boxes[1].Payload))
	}
	if boxes[2].BoxType != "mdat" || len(boxes[2].Payload) != 100 {
		t.Errorf("box 2 = %q len %d", boxes[2].BoxType, len(boxes[2].Payload))
	}
}

func TestSplitBoxes_Truncated(t *testing.T) {
	b := AppendBox(nil, "mdat", []byte("data"))
	for _, cut := range []int{1, 7, len(b) - 1} {
		if _, err := SplitBoxes(b[:cut]); err == nil {
			t.Errorf("cut at %d: want error", cut)
		}
	}
}

func TestSplitBoxes_BadSize(t *testing.T) {
	// size smaller than the header
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, 4)
	copy(b[4:], "abcd")
	if _, err := SplitBoxes(b); !errors.Is(err, ErrBadBox) {
		t.Errorf("err = %v, want ErrBadBox", err)
	}
}

func TestLargesizeBox(t *testing.T) {
	// Hand-build a largesize (size==1) box and confirm parsing.
	payload := []byte("big-box-payload")
	b := binary.BigEndian.AppendUint32(nil, 1)
	b = append(b, "mdat"...)
	b = binary.BigEndian.AppendUint64(b, uint64(16+len(payload)))
	b = append(b, payload...)

	boxes, err := SplitBoxes(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 1 || string(boxes[0].Payload) != string(payload) {
		t.Errorf("largesize parse = %+v", boxes)
	}
}

func TestSizeZeroExtendsToEnd(t *testing.T) {
	payload := []byte("rest")
	b := binary.BigEndian.AppendUint32(nil, 0)
	b = append(b, "mdat"...)
	b = append(b, payload...)
	boxes, err := SplitBoxes(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 1 || string(boxes[0].Payload) != "rest" {
		t.Errorf("size-0 parse = %+v", boxes)
	}
}

func TestFindBoxAndPath(t *testing.T) {
	inner := AppendBox(nil, "tenc", []byte("x"))
	schi := AppendBox(nil, "schi", inner)
	sinf := AppendBox(nil, "sinf", schi)

	box, ok, err := FindPath(sinf, "sinf", "schi", "tenc")
	if err != nil || !ok {
		t.Fatalf("FindPath = %v, %v", ok, err)
	}
	if string(box.Payload) != "x" {
		t.Errorf("payload = %q", box.Payload)
	}

	_, ok, err = FindPath(sinf, "sinf", "missing")
	if err != nil || ok {
		t.Errorf("missing path found = %v, err %v", ok, err)
	}
	_, ok, err = FindPath(sinf)
	if err != nil || ok {
		t.Errorf("empty path = %v, %v", ok, err)
	}
}

func TestFindAll(t *testing.T) {
	var b []byte
	b = AppendBox(b, "pssh", []byte("1"))
	b = AppendBox(b, "trak", []byte("t"))
	b = AppendBox(b, "pssh", []byte("2"))
	all, err := FindAll(b, "pssh")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || string(all[0].Payload) != "1" || string(all[1].Payload) != "2" {
		t.Errorf("FindAll = %+v", all)
	}
}

func TestFullBoxHeader(t *testing.T) {
	b := AppendFullBoxHeader(nil, 1, 0x000002)
	b = append(b, "body"...)
	version, flags, body, err := ParseFullBoxHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || flags != 2 || string(body) != "body" {
		t.Errorf("full box = v%d f%d %q", version, flags, body)
	}
	if _, _, _, err := ParseFullBoxHeader([]byte{1, 2}); err == nil {
		t.Error("short header: want error")
	}
}

// Property: any payload round-trips through AppendBox/SplitBoxes.
func TestBoxRoundTrip_Property(t *testing.T) {
	prop := func(payloads [][]byte) bool {
		var b []byte
		for _, p := range payloads {
			b = AppendBox(b, "test", p)
		}
		boxes, err := SplitBoxes(b)
		if err != nil || len(boxes) != len(payloads) {
			return false
		}
		for i, p := range payloads {
			if !bytes.Equal(boxes[i].Payload, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
