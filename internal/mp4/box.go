// Package mp4 implements the subset of the ISO Base Media File Format
// (ISO/IEC 14496-12) needed to package, serve, probe and decrypt the
// fragmented-MP4 media the study works with: plain boxes, full boxes, the
// movie/fragment structure (moov, moof, mdat and friends) and the Common
// Encryption protection boxes (tenc, pssh, senc, sinf/frma/schm/schi).
//
// Deviation from the full standard, documented in DESIGN.md: sample entries
// carry their codec-specific configuration in a 'codc' child box rather
// than codec-specific inline fields, so entries remain parseable without
// per-codec layout knowledge. Everything else follows the standard layouts.
package mp4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by box parsing.
var (
	// ErrTruncated is returned when a buffer ends inside a box.
	ErrTruncated = errors.New("mp4: truncated box")
	// ErrBadBox is returned for structurally invalid boxes.
	ErrBadBox = errors.New("mp4: malformed box")
)

// RawBox is one box as framed on the wire: a fourcc type and its payload
// (excluding the 8-byte header).
type RawBox struct {
	BoxType string
	Payload []byte
}

// SplitBoxes parses a concatenated sequence of boxes, returning one RawBox
// per top-level box. Children of container boxes stay inside Payload; call
// SplitBoxes again on a container's payload to descend.
func SplitBoxes(b []byte) ([]RawBox, error) {
	var out []RawBox
	for len(b) > 0 {
		box, rest, err := readBox(b)
		if err != nil {
			return nil, err
		}
		out = append(out, box)
		b = rest
	}
	return out, nil
}

// FindBox returns the first box of the given type in a box sequence, and
// whether it was found.
func FindBox(b []byte, boxType string) (RawBox, bool, error) {
	boxes, err := SplitBoxes(b)
	if err != nil {
		return RawBox{}, false, err
	}
	for _, box := range boxes {
		if box.BoxType == boxType {
			return box, true, nil
		}
	}
	return RawBox{}, false, nil
}

// FindPath descends a path of container types (e.g. "moov", "trak",
// "mdia") and returns the first box at the end of the path.
func FindPath(b []byte, path ...string) (RawBox, bool, error) {
	if len(path) == 0 {
		return RawBox{}, false, nil
	}
	cur := b
	var box RawBox
	for _, boxType := range path {
		found := false
		var err error
		box, found, err = FindBox(cur, boxType)
		if err != nil {
			return RawBox{}, false, err
		}
		if !found {
			return RawBox{}, false, nil
		}
		cur = box.Payload
	}
	return box, true, nil
}

// FindAll returns every box of the given type at the top level of b.
func FindAll(b []byte, boxType string) ([]RawBox, error) {
	boxes, err := SplitBoxes(b)
	if err != nil {
		return nil, err
	}
	var out []RawBox
	for _, box := range boxes {
		if box.BoxType == boxType {
			out = append(out, box)
		}
	}
	return out, nil
}

// readBox parses one box from the front of b, supporting the 64-bit
// largesize form (size == 1).
func readBox(b []byte) (RawBox, []byte, error) {
	if len(b) < 8 {
		return RawBox{}, nil, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	size := uint64(binary.BigEndian.Uint32(b))
	boxType := string(b[4:8])
	headerLen := uint64(8)
	switch size {
	case 0: // box extends to end of buffer
		size = uint64(len(b))
	case 1: // 64-bit largesize
		if len(b) < 16 {
			return RawBox{}, nil, fmt.Errorf("%w: largesize header", ErrTruncated)
		}
		size = binary.BigEndian.Uint64(b[8:])
		headerLen = 16
	}
	if size < headerLen || size > uint64(len(b)) {
		return RawBox{}, nil, fmt.Errorf("%w: box %q size %d, buffer %d", ErrBadBox, boxType, size, len(b))
	}
	return RawBox{BoxType: boxType, Payload: b[headerLen:size]}, b[size:], nil
}

// AppendBox appends a box with the given type and payload to dst, using
// the 32-bit size form (or largesize if the payload demands it).
func AppendBox(dst []byte, boxType string, payload []byte) []byte {
	if len(boxType) != 4 {
		// Programming error in this package; boxes are compile-time fourccs.
		panic(fmt.Sprintf("mp4: box type %q is not 4 bytes", boxType))
	}
	total := uint64(8 + len(payload))
	if total > 0xFFFFFFFF {
		dst = binary.BigEndian.AppendUint32(dst, 1)
		dst = append(dst, boxType...)
		dst = binary.BigEndian.AppendUint64(dst, total+8)
		return append(dst, payload...)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(total))
	dst = append(dst, boxType...)
	return append(dst, payload...)
}

// AppendFullBoxHeader appends the version/flags word of a "full box".
func AppendFullBoxHeader(dst []byte, version byte, flags uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, uint32(version)<<24|flags&0xFFFFFF)
}

// ParseFullBoxHeader splits a full-box payload into version, flags and the
// remaining body.
func ParseFullBoxHeader(payload []byte) (version byte, flags uint32, body []byte, err error) {
	if len(payload) < 4 {
		return 0, 0, nil, fmt.Errorf("%w: full box header", ErrTruncated)
	}
	word := binary.BigEndian.Uint32(payload)
	return byte(word >> 24), word & 0xFFFFFF, payload[4:], nil
}
