package mp4

import (
	"encoding/binary"
	"fmt"
)

// Protection scheme fourccs (ISO/IEC 23001-7).
const (
	SchemeCENC = "cenc" // AES-CTR, full or subsample
	SchemeCBCS = "cbcs" // AES-CBC with 1:9 pattern
)

// WidevineSystemID is the DASH-IF registered system ID for Widevine; PSSH
// boxes carry it so players know which CDM can handle the init data.
var WidevineSystemID = [16]byte{
	0xED, 0xEF, 0x8B, 0xA9, 0x79, 0xD6, 0x4A, 0xCE,
	0xA3, 0xC8, 0x27, 0xDC, 0xD5, 0x1D, 0x21, 0xED,
}

// TrackEncryption is the tenc box: the per-track defaults for CENC.
type TrackEncryption struct {
	DefaultIsProtected     bool
	DefaultPerSampleIVSize byte
	DefaultKID             [16]byte
}

// Marshal encodes the tenc payload (version 0).
func (t *TrackEncryption) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, 0)
	out = append(out, 0, 0) // reserved
	if t.DefaultIsProtected {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, t.DefaultPerSampleIVSize)
	return append(out, t.DefaultKID[:]...)
}

// ParseTrackEncryption decodes a tenc payload.
func ParseTrackEncryption(payload []byte) (*TrackEncryption, error) {
	_, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 20 {
		return nil, fmt.Errorf("%w: tenc body %d bytes", ErrTruncated, len(body))
	}
	t := &TrackEncryption{
		DefaultIsProtected:     body[2] != 0,
		DefaultPerSampleIVSize: body[3],
	}
	copy(t.DefaultKID[:], body[4:20])
	return t, nil
}

// PSSH is the Protection System Specific Header box (version 1 with key
// IDs, version 0 without).
type PSSH struct {
	SystemID [16]byte
	KIDs     [][16]byte
	Data     []byte
}

// Marshal encodes the pssh payload; version 1 is used whenever KIDs are
// present.
func (p *PSSH) Marshal() []byte {
	version := byte(0)
	if len(p.KIDs) > 0 {
		version = 1
	}
	out := AppendFullBoxHeader(nil, version, 0)
	out = append(out, p.SystemID[:]...)
	if version == 1 {
		out = binary.BigEndian.AppendUint32(out, uint32(len(p.KIDs)))
		for _, kid := range p.KIDs {
			out = append(out, kid[:]...)
		}
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.Data)))
	return append(out, p.Data...)
}

// ParsePSSH decodes a pssh payload.
func ParsePSSH(payload []byte) (*PSSH, error) {
	version, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 16 {
		return nil, fmt.Errorf("%w: pssh system id", ErrTruncated)
	}
	p := &PSSH{}
	copy(p.SystemID[:], body[:16])
	body = body[16:]
	if version >= 1 {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: pssh kid count", ErrTruncated)
		}
		count := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint64(len(body)) < 16*uint64(count) {
			return nil, fmt.Errorf("%w: pssh kids", ErrTruncated)
		}
		p.KIDs = make([][16]byte, count)
		for i := range p.KIDs {
			copy(p.KIDs[i][:], body[16*i:])
		}
		body = body[16*count:]
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: pssh data size", ErrTruncated)
	}
	size := binary.BigEndian.Uint32(body)
	body = body[4:]
	if uint64(len(body)) < uint64(size) {
		return nil, fmt.Errorf("%w: pssh data", ErrTruncated)
	}
	p.Data = append([]byte(nil), body[:size]...)
	return p, nil
}

// ProtectionSchemeInfo models the sinf box tree: the original sample-entry
// format (frma), the scheme type (schm) and the scheme information (schi)
// containing the tenc defaults.
type ProtectionSchemeInfo struct {
	OriginalFormat string // e.g. "avc1"
	SchemeType     string // SchemeCENC or SchemeCBCS
	SchemeVersion  uint32
	TrackEnc       TrackEncryption
}

// Marshal encodes the sinf payload (the concatenated frma/schm/schi).
func (p *ProtectionSchemeInfo) Marshal() []byte {
	var sinf []byte
	sinf = AppendBox(sinf, "frma", fourcc(p.OriginalFormat))

	schm := AppendFullBoxHeader(nil, 0, 0)
	schm = append(schm, fourcc(p.SchemeType)...)
	schm = binary.BigEndian.AppendUint32(schm, p.SchemeVersion)
	sinf = AppendBox(sinf, "schm", schm)

	schi := AppendBox(nil, "tenc", p.TrackEnc.Marshal())
	return AppendBox(sinf, "schi", schi)
}

// ParseProtectionSchemeInfo decodes a sinf payload.
func ParseProtectionSchemeInfo(payload []byte) (*ProtectionSchemeInfo, error) {
	p := &ProtectionSchemeInfo{}

	frma, ok, err := FindBox(payload, "frma")
	if err != nil {
		return nil, err
	}
	if !ok || len(frma.Payload) < 4 {
		return nil, fmt.Errorf("%w: sinf missing frma", ErrBadBox)
	}
	p.OriginalFormat = string(frma.Payload[:4])

	schm, ok, err := FindBox(payload, "schm")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: sinf missing schm", ErrBadBox)
	}
	_, _, schmBody, err := ParseFullBoxHeader(schm.Payload)
	if err != nil {
		return nil, err
	}
	if len(schmBody) < 8 {
		return nil, fmt.Errorf("%w: schm body", ErrTruncated)
	}
	p.SchemeType = string(schmBody[:4])
	p.SchemeVersion = binary.BigEndian.Uint32(schmBody[4:])

	tenc, ok, err := FindPath(payload, "schi", "tenc")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: sinf missing schi/tenc", ErrBadBox)
	}
	te, err := ParseTrackEncryption(tenc.Payload)
	if err != nil {
		return nil, err
	}
	p.TrackEnc = *te
	return p, nil
}

// senc flag bit: subsample information present.
const sencSubsamples = 0x000002

// SubsampleEntry is one (clear, protected) byte-range pair of a subsample-
// encrypted sample.
type SubsampleEntry struct {
	ClearBytes     uint16
	ProtectedBytes uint32
}

// SampleEncryptionEntry is one sample's IV and optional subsample map.
type SampleEncryptionEntry struct {
	IV         [8]byte // 8-byte per-sample IV, as commonly used by Widevine
	Subsamples []SubsampleEntry
}

// SampleEncryption is the senc box.
type SampleEncryption struct {
	Entries []SampleEncryptionEntry
}

// HasSubsamples reports whether any entry carries a subsample map.
func (s *SampleEncryption) HasSubsamples() bool {
	for _, e := range s.Entries {
		if len(e.Subsamples) > 0 {
			return true
		}
	}
	return false
}

// Marshal encodes the senc payload.
func (s *SampleEncryption) Marshal() []byte {
	flags := uint32(0)
	if s.HasSubsamples() {
		flags = sencSubsamples
	}
	out := AppendFullBoxHeader(nil, 0, flags)
	out = binary.BigEndian.AppendUint32(out, uint32(len(s.Entries)))
	for _, e := range s.Entries {
		out = append(out, e.IV[:]...)
		if flags&sencSubsamples != 0 {
			out = binary.BigEndian.AppendUint16(out, uint16(len(e.Subsamples)))
			for _, sub := range e.Subsamples {
				out = binary.BigEndian.AppendUint16(out, sub.ClearBytes)
				out = binary.BigEndian.AppendUint32(out, sub.ProtectedBytes)
			}
		}
	}
	return out
}

// ParseSampleEncryption decodes a senc payload (8-byte IVs).
func ParseSampleEncryption(payload []byte) (*SampleEncryption, error) {
	_, flags, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: senc count", ErrTruncated)
	}
	count := binary.BigEndian.Uint32(body)
	body = body[4:]
	// Never trust the declared count for allocation: each entry consumes at
	// least 8 bytes of body, so cap the hint by what can actually be there.
	hint := uint64(count)
	if max := uint64(len(body)) / 8; hint > max {
		hint = max
	}
	s := &SampleEncryption{Entries: make([]SampleEncryptionEntry, 0, hint)}
	for i := uint32(0); i < count; i++ {
		var e SampleEncryptionEntry
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: senc iv %d", ErrTruncated, i)
		}
		copy(e.IV[:], body[:8])
		body = body[8:]
		if flags&sencSubsamples != 0 {
			if len(body) < 2 {
				return nil, fmt.Errorf("%w: senc subsample count %d", ErrTruncated, i)
			}
			n := binary.BigEndian.Uint16(body)
			body = body[2:]
			if len(body) < 6*int(n) {
				return nil, fmt.Errorf("%w: senc subsamples %d", ErrTruncated, i)
			}
			e.Subsamples = make([]SubsampleEntry, n)
			for j := range e.Subsamples {
				e.Subsamples[j] = SubsampleEntry{
					ClearBytes:     binary.BigEndian.Uint16(body),
					ProtectedBytes: binary.BigEndian.Uint32(body[2:]),
				}
				body = body[6:]
			}
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}
