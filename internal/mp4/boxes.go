package mp4

import (
	"encoding/binary"
	"fmt"
)

// Handler types carried in hdlr boxes.
const (
	HandlerVideo    = "vide"
	HandlerAudio    = "soun"
	HandlerSubtitle = "text"
)

// FileType is the ftyp (and styp) box.
type FileType struct {
	MajorBrand       string
	MinorVersion     uint32
	CompatibleBrands []string
}

// Marshal encodes the ftyp payload.
func (f *FileType) Marshal() []byte {
	out := make([]byte, 0, 8+4*len(f.CompatibleBrands))
	out = append(out, fourcc(f.MajorBrand)...)
	out = binary.BigEndian.AppendUint32(out, f.MinorVersion)
	for _, b := range f.CompatibleBrands {
		out = append(out, fourcc(b)...)
	}
	return out
}

// ParseFileType decodes an ftyp/styp payload.
func ParseFileType(payload []byte) (*FileType, error) {
	if len(payload) < 8 || (len(payload)-8)%4 != 0 {
		return nil, fmt.Errorf("%w: ftyp length %d", ErrBadBox, len(payload))
	}
	f := &FileType{
		MajorBrand:   string(payload[:4]),
		MinorVersion: binary.BigEndian.Uint32(payload[4:]),
	}
	for off := 8; off < len(payload); off += 4 {
		f.CompatibleBrands = append(f.CompatibleBrands, string(payload[off:off+4]))
	}
	return f, nil
}

// MovieHeader is the mvhd box (version 0, minimal fields).
type MovieHeader struct {
	Timescale   uint32
	Duration    uint32
	NextTrackID uint32
}

// Marshal encodes the mvhd payload.
func (m *MovieHeader) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, 0)
	out = binary.BigEndian.AppendUint32(out, 0) // creation_time
	out = binary.BigEndian.AppendUint32(out, 0) // modification_time
	out = binary.BigEndian.AppendUint32(out, m.Timescale)
	out = binary.BigEndian.AppendUint32(out, m.Duration)
	out = binary.BigEndian.AppendUint32(out, 0x00010000) // rate 1.0
	out = binary.BigEndian.AppendUint32(out, 0x01000000) // volume 1.0 + reserved
	out = append(out, make([]byte, 8)...)                // reserved
	for _, v := range [9]uint32{0x10000, 0, 0, 0, 0x10000, 0, 0, 0, 0x40000000} {
		out = binary.BigEndian.AppendUint32(out, v) // unity matrix
	}
	out = append(out, make([]byte, 24)...) // pre_defined
	out = binary.BigEndian.AppendUint32(out, m.NextTrackID)
	return out
}

// ParseMovieHeader decodes an mvhd payload.
func ParseMovieHeader(payload []byte) (*MovieHeader, error) {
	_, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 96 {
		return nil, fmt.Errorf("%w: mvhd body %d bytes", ErrTruncated, len(body))
	}
	return &MovieHeader{
		Timescale:   binary.BigEndian.Uint32(body[8:]),
		Duration:    binary.BigEndian.Uint32(body[12:]),
		NextTrackID: binary.BigEndian.Uint32(body[92:]),
	}, nil
}

// TrackHeader is the tkhd box (version 0, minimal fields).
type TrackHeader struct {
	TrackID uint32
	Width   uint16 // pixels; zero for non-video
	Height  uint16
}

// Marshal encodes the tkhd payload.
func (t *TrackHeader) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, 0x7) // enabled | in_movie | in_preview
	out = binary.BigEndian.AppendUint32(out, 0)
	out = binary.BigEndian.AppendUint32(out, 0)
	out = binary.BigEndian.AppendUint32(out, t.TrackID)
	out = append(out, make([]byte, 4)...) // reserved
	out = binary.BigEndian.AppendUint32(out, 0)
	out = append(out, make([]byte, 8)...) // reserved
	out = append(out, make([]byte, 8)...) // layer, alt group, volume, reserved
	for _, v := range [9]uint32{0x10000, 0, 0, 0, 0x10000, 0, 0, 0, 0x40000000} {
		out = binary.BigEndian.AppendUint32(out, v)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(t.Width)<<16)  // 16.16 fixed
	out = binary.BigEndian.AppendUint32(out, uint32(t.Height)<<16) // 16.16 fixed
	return out
}

// ParseTrackHeader decodes a tkhd payload.
func ParseTrackHeader(payload []byte) (*TrackHeader, error) {
	_, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 80 {
		return nil, fmt.Errorf("%w: tkhd body %d bytes", ErrTruncated, len(body))
	}
	return &TrackHeader{
		TrackID: binary.BigEndian.Uint32(body[8:]),
		Width:   uint16(binary.BigEndian.Uint32(body[72:]) >> 16),
		Height:  uint16(binary.BigEndian.Uint32(body[76:]) >> 16),
	}, nil
}

// MediaHeader is the mdhd box (version 0, language fixed to "und").
type MediaHeader struct {
	Timescale uint32
	Duration  uint32
}

// Marshal encodes the mdhd payload.
func (m *MediaHeader) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, 0)
	out = binary.BigEndian.AppendUint32(out, 0)
	out = binary.BigEndian.AppendUint32(out, 0)
	out = binary.BigEndian.AppendUint32(out, m.Timescale)
	out = binary.BigEndian.AppendUint32(out, m.Duration)
	out = binary.BigEndian.AppendUint16(out, 0x55C4) // "und" packed
	return binary.BigEndian.AppendUint16(out, 0)     // pre_defined
}

// ParseMediaHeader decodes an mdhd payload.
func ParseMediaHeader(payload []byte) (*MediaHeader, error) {
	_, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 16 {
		return nil, fmt.Errorf("%w: mdhd body %d bytes", ErrTruncated, len(body))
	}
	return &MediaHeader{
		Timescale: binary.BigEndian.Uint32(body[8:]),
		Duration:  binary.BigEndian.Uint32(body[12:]),
	}, nil
}

// Handler is the hdlr box.
type Handler struct {
	HandlerType string // HandlerVideo, HandlerAudio, HandlerSubtitle
	Name        string
}

// Marshal encodes the hdlr payload.
func (h *Handler) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, 0)
	out = binary.BigEndian.AppendUint32(out, 0) // pre_defined
	out = append(out, fourcc(h.HandlerType)...)
	out = append(out, make([]byte, 12)...) // reserved
	out = append(out, h.Name...)
	return append(out, 0) // NUL terminator
}

// ParseHandler decodes an hdlr payload.
func ParseHandler(payload []byte) (*Handler, error) {
	_, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 21 {
		return nil, fmt.Errorf("%w: hdlr body %d bytes", ErrTruncated, len(body))
	}
	name := body[20:]
	if name[len(name)-1] == 0 {
		name = name[:len(name)-1]
	}
	return &Handler{HandlerType: string(body[4:8]), Name: string(name)}, nil
}

// TrackExtends is the trex box.
type TrackExtends struct {
	TrackID                       uint32
	DefaultSampleDescriptionIndex uint32
	DefaultSampleDuration         uint32
	DefaultSampleSize             uint32
	DefaultSampleFlags            uint32
}

// Marshal encodes the trex payload.
func (t *TrackExtends) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, 0)
	out = binary.BigEndian.AppendUint32(out, t.TrackID)
	out = binary.BigEndian.AppendUint32(out, t.DefaultSampleDescriptionIndex)
	out = binary.BigEndian.AppendUint32(out, t.DefaultSampleDuration)
	out = binary.BigEndian.AppendUint32(out, t.DefaultSampleSize)
	return binary.BigEndian.AppendUint32(out, t.DefaultSampleFlags)
}

// ParseTrackExtends decodes a trex payload.
func ParseTrackExtends(payload []byte) (*TrackExtends, error) {
	_, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 20 {
		return nil, fmt.Errorf("%w: trex body %d bytes", ErrTruncated, len(body))
	}
	return &TrackExtends{
		TrackID:                       binary.BigEndian.Uint32(body),
		DefaultSampleDescriptionIndex: binary.BigEndian.Uint32(body[4:]),
		DefaultSampleDuration:         binary.BigEndian.Uint32(body[8:]),
		DefaultSampleSize:             binary.BigEndian.Uint32(body[12:]),
		DefaultSampleFlags:            binary.BigEndian.Uint32(body[16:]),
	}, nil
}

// MovieFragmentHeader is the mfhd box.
type MovieFragmentHeader struct {
	SequenceNumber uint32
}

// Marshal encodes the mfhd payload.
func (m *MovieFragmentHeader) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, 0)
	return binary.BigEndian.AppendUint32(out, m.SequenceNumber)
}

// ParseMovieFragmentHeader decodes an mfhd payload.
func ParseMovieFragmentHeader(payload []byte) (*MovieFragmentHeader, error) {
	_, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: mfhd body %d bytes", ErrTruncated, len(body))
	}
	return &MovieFragmentHeader{SequenceNumber: binary.BigEndian.Uint32(body)}, nil
}

// tfhd flag bits used by this package.
const (
	tfhdDefaultSampleDuration = 0x000008
	tfhdDefaultSampleSize     = 0x000010
	tfhdDefaultBaseIsMoof     = 0x020000
)

// TrackFragmentHeader is the tfhd box.
type TrackFragmentHeader struct {
	TrackID               uint32
	DefaultSampleDuration uint32 // zero means absent
	DefaultSampleSize     uint32 // zero means absent
}

// Marshal encodes the tfhd payload.
func (t *TrackFragmentHeader) Marshal() []byte {
	flags := uint32(tfhdDefaultBaseIsMoof)
	if t.DefaultSampleDuration != 0 {
		flags |= tfhdDefaultSampleDuration
	}
	if t.DefaultSampleSize != 0 {
		flags |= tfhdDefaultSampleSize
	}
	out := AppendFullBoxHeader(nil, 0, flags)
	out = binary.BigEndian.AppendUint32(out, t.TrackID)
	if t.DefaultSampleDuration != 0 {
		out = binary.BigEndian.AppendUint32(out, t.DefaultSampleDuration)
	}
	if t.DefaultSampleSize != 0 {
		out = binary.BigEndian.AppendUint32(out, t.DefaultSampleSize)
	}
	return out
}

// ParseTrackFragmentHeader decodes a tfhd payload.
func ParseTrackFragmentHeader(payload []byte) (*TrackFragmentHeader, error) {
	_, flags, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: tfhd body %d bytes", ErrTruncated, len(body))
	}
	t := &TrackFragmentHeader{TrackID: binary.BigEndian.Uint32(body)}
	off := 4
	if flags&0x000001 != 0 { // base-data-offset
		off += 8
	}
	if flags&0x000002 != 0 { // sample-description-index
		off += 4
	}
	if flags&tfhdDefaultSampleDuration != 0 {
		if len(body) < off+4 {
			return nil, fmt.Errorf("%w: tfhd duration", ErrTruncated)
		}
		t.DefaultSampleDuration = binary.BigEndian.Uint32(body[off:])
		off += 4
	}
	if flags&tfhdDefaultSampleSize != 0 {
		if len(body) < off+4 {
			return nil, fmt.Errorf("%w: tfhd size", ErrTruncated)
		}
		t.DefaultSampleSize = binary.BigEndian.Uint32(body[off:])
	}
	return t, nil
}

// TrackFragmentDecodeTime is the tfdt box (version 1, 64-bit time).
type TrackFragmentDecodeTime struct {
	BaseMediaDecodeTime uint64
}

// Marshal encodes the tfdt payload.
func (t *TrackFragmentDecodeTime) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 1, 0)
	return binary.BigEndian.AppendUint64(out, t.BaseMediaDecodeTime)
}

// ParseTrackFragmentDecodeTime decodes a tfdt payload (either version).
func ParseTrackFragmentDecodeTime(payload []byte) (*TrackFragmentDecodeTime, error) {
	version, _, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	switch version {
	case 0:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: tfdt v0", ErrTruncated)
		}
		return &TrackFragmentDecodeTime{BaseMediaDecodeTime: uint64(binary.BigEndian.Uint32(body))}, nil
	case 1:
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: tfdt v1", ErrTruncated)
		}
		return &TrackFragmentDecodeTime{BaseMediaDecodeTime: binary.BigEndian.Uint64(body)}, nil
	default:
		return nil, fmt.Errorf("%w: tfdt version %d", ErrBadBox, version)
	}
}

// trun flag bits used by this package.
const (
	trunDataOffset = 0x000001
	trunSampleSize = 0x000200
)

// TrackRun is the trun box carrying per-sample sizes.
type TrackRun struct {
	DataOffset  int32
	SampleSizes []uint32
}

// Marshal encodes the trun payload.
func (t *TrackRun) Marshal() []byte {
	out := AppendFullBoxHeader(nil, 0, trunDataOffset|trunSampleSize)
	out = binary.BigEndian.AppendUint32(out, uint32(len(t.SampleSizes)))
	out = binary.BigEndian.AppendUint32(out, uint32(t.DataOffset))
	for _, size := range t.SampleSizes {
		out = binary.BigEndian.AppendUint32(out, size)
	}
	return out
}

// ParseTrackRun decodes a trun payload written by this package.
func ParseTrackRun(payload []byte) (*TrackRun, error) {
	_, flags, body, err := ParseFullBoxHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: trun count", ErrTruncated)
	}
	count := binary.BigEndian.Uint32(body)
	off := 4
	t := &TrackRun{}
	if flags&trunDataOffset != 0 {
		if len(body) < off+4 {
			return nil, fmt.Errorf("%w: trun data offset", ErrTruncated)
		}
		t.DataOffset = int32(binary.BigEndian.Uint32(body[off:]))
		off += 4
	}
	if flags&trunSampleSize == 0 {
		return nil, fmt.Errorf("%w: trun without sample sizes unsupported", ErrBadBox)
	}
	if uint64(len(body)) < uint64(off)+4*uint64(count) {
		return nil, fmt.Errorf("%w: trun samples", ErrTruncated)
	}
	t.SampleSizes = make([]uint32, count)
	for i := range t.SampleSizes {
		t.SampleSizes[i] = binary.BigEndian.Uint32(body[off+4*i:])
	}
	return t, nil
}

// fourcc pads or truncates a string to exactly 4 bytes.
func fourcc(s string) []byte {
	b := make([]byte, 4)
	copy(b, s)
	for i := len(s); i < 4; i++ {
		b[i] = ' '
	}
	return b
}
