package mp4

import (
	"reflect"
	"testing"
)

func TestFileTypeRoundTrip(t *testing.T) {
	f := &FileType{MajorBrand: "iso6", MinorVersion: 512, CompatibleBrands: []string{"dash", "cmfc"}}
	got, err := ParseFileType(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, f)
	}
}

func TestParseFileType_Invalid(t *testing.T) {
	if _, err := ParseFileType([]byte("1234567")); err == nil {
		t.Error("short ftyp: want error")
	}
	if _, err := ParseFileType([]byte("123456789")); err == nil {
		t.Error("unaligned brands: want error")
	}
}

func TestMovieHeaderRoundTrip(t *testing.T) {
	m := &MovieHeader{Timescale: 90000, Duration: 123456, NextTrackID: 3}
	got, err := ParseMovieHeader(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, m)
	}
}

func TestTrackHeaderRoundTrip(t *testing.T) {
	tk := &TrackHeader{TrackID: 7, Width: 1920, Height: 1080}
	got, err := ParseTrackHeader(tk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tk, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, tk)
	}
}

func TestMediaHeaderRoundTrip(t *testing.T) {
	m := &MediaHeader{Timescale: 48000, Duration: 960000}
	got, err := ParseMediaHeader(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, m)
	}
}

func TestHandlerRoundTrip(t *testing.T) {
	for _, ht := range []string{HandlerVideo, HandlerAudio, HandlerSubtitle} {
		h := &Handler{HandlerType: ht, Name: "repro handler"}
		got, err := ParseHandler(h.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(h, got) {
			t.Errorf("roundtrip = %+v, want %+v", got, h)
		}
	}
}

func TestTrackExtendsRoundTrip(t *testing.T) {
	te := &TrackExtends{TrackID: 2, DefaultSampleDescriptionIndex: 1, DefaultSampleDuration: 1000, DefaultSampleSize: 100, DefaultSampleFlags: 0x10000}
	got, err := ParseTrackExtends(te.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(te, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, te)
	}
}

func TestMovieFragmentHeaderRoundTrip(t *testing.T) {
	m := &MovieFragmentHeader{SequenceNumber: 42}
	got, err := ParseMovieFragmentHeader(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SequenceNumber != 42 {
		t.Errorf("sequence = %d", got.SequenceNumber)
	}
}

func TestTrackFragmentHeaderRoundTrip(t *testing.T) {
	cases := []*TrackFragmentHeader{
		{TrackID: 1},
		{TrackID: 2, DefaultSampleDuration: 1000},
		{TrackID: 3, DefaultSampleSize: 512},
		{TrackID: 4, DefaultSampleDuration: 1000, DefaultSampleSize: 512},
	}
	for _, tf := range cases {
		got, err := ParseTrackFragmentHeader(tf.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tf, got) {
			t.Errorf("roundtrip = %+v, want %+v", got, tf)
		}
	}
}

func TestTrackFragmentDecodeTimeRoundTrip(t *testing.T) {
	tf := &TrackFragmentDecodeTime{BaseMediaDecodeTime: 1 << 40}
	got, err := ParseTrackFragmentDecodeTime(tf.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseMediaDecodeTime != 1<<40 {
		t.Errorf("decode time = %d", got.BaseMediaDecodeTime)
	}

	// v0 form
	v0 := AppendFullBoxHeader(nil, 0, 0)
	v0 = append(v0, 0, 0, 0, 99)
	got, err = ParseTrackFragmentDecodeTime(v0)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseMediaDecodeTime != 99 {
		t.Errorf("v0 decode time = %d", got.BaseMediaDecodeTime)
	}

	bad := AppendFullBoxHeader(nil, 3, 0)
	if _, err := ParseTrackFragmentDecodeTime(append(bad, make([]byte, 8)...)); err == nil {
		t.Error("version 3: want error")
	}
}

func TestTrackRunRoundTrip(t *testing.T) {
	tr := &TrackRun{DataOffset: 456, SampleSizes: []uint32{100, 200, 300}}
	got, err := ParseTrackRun(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("roundtrip = %+v, want %+v", got, tr)
	}
}

func TestTrackRun_Empty(t *testing.T) {
	tr := &TrackRun{DataOffset: 16}
	got, err := ParseTrackRun(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SampleSizes) != 0 || got.DataOffset != 16 {
		t.Errorf("empty trun = %+v", got)
	}
}
