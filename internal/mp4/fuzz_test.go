package mp4

import (
	"testing"
	"testing/quick"
)

// The CDN-facing parsers process attacker-controlled bytes (the study
// downloads whatever the interception surfaced), so they must never panic —
// only return errors. These property tests drive each parser with random
// byte soup, plus random mutations of valid documents (which exercise far
// deeper parse paths than pure noise).

func neverPanics(t *testing.T, name string, parse func([]byte)) {
	t.Helper()
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("%s panicked on %x: %v", name, data, r)
				ok = false
			}
		}()
		parse(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// mutate returns a copy of valid with a few random edits applied.
func mutate(valid []byte, edits []uint32) []byte {
	out := append([]byte(nil), valid...)
	for _, e := range edits {
		if len(out) == 0 {
			break
		}
		pos := int(e>>8) % len(out)
		out[pos] ^= byte(e)
	}
	return out
}

func TestSplitBoxes_NeverPanics(t *testing.T) {
	neverPanics(t, "SplitBoxes", func(b []byte) { _, _ = SplitBoxes(b) })
}

func TestParseInitSegment_NeverPanics(t *testing.T) {
	neverPanics(t, "ParseInitSegment", func(b []byte) { _, _ = ParseInitSegment(b) })

	valid := (&InitSegment{Track: TrackInfo{
		TrackID: 1, Handler: HandlerVideo, Codec: "avc1", Timescale: 90000,
		Width: 960, Height: 540,
		Protection: &ProtectionInfo{
			Scheme: SchemeCENC, DefaultKID: [16]byte{1},
			PSSH: []PSSH{{SystemID: WidevineSystemID, KIDs: [][16]byte{{1}}, Data: []byte("d")}},
		},
	}}).Marshal()
	prop := func(edits []uint32) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("mutated init panicked: %v", r)
				ok = false
			}
		}()
		_, _ = ParseInitSegment(mutate(valid, edits))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseMediaSegment_NeverPanics(t *testing.T) {
	neverPanics(t, "ParseMediaSegment", func(b []byte) { _, _ = ParseMediaSegment(b) })

	seg := &MediaSegment{
		SequenceNumber: 1, TrackID: 1,
		SampleData: [][]byte{make([]byte, 64), make([]byte, 32)},
		Encryption: &SampleEncryption{Entries: []SampleEncryptionEntry{
			{IV: [8]byte{1}, Subsamples: []SubsampleEntry{{ClearBytes: 4, ProtectedBytes: 60}}},
			{IV: [8]byte{2}, Subsamples: []SubsampleEntry{{ClearBytes: 4, ProtectedBytes: 28}}},
		}},
	}
	valid, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(edits []uint32) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("mutated segment panicked: %v", r)
				ok = false
			}
		}()
		_, _ = ParseMediaSegment(mutate(valid, edits))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// validInit and validMedia marshal representative documents as fuzz
// corpus seeds (protected video init, two-sample encrypted segment).
func validInit() []byte {
	return (&InitSegment{Track: TrackInfo{
		TrackID: 1, Handler: HandlerVideo, Codec: "avc1", Timescale: 90000,
		Width: 960, Height: 540,
		Protection: &ProtectionInfo{
			Scheme: SchemeCENC, DefaultKID: [16]byte{1},
			PSSH: []PSSH{{SystemID: WidevineSystemID, KIDs: [][16]byte{{1}}, Data: []byte("d")}},
		},
	}}).Marshal()
}

func validMedia(t interface{ Fatal(...any) }) []byte {
	valid, err := (&MediaSegment{
		SequenceNumber: 1, TrackID: 1,
		SampleData: [][]byte{make([]byte, 64), make([]byte, 32)},
		Encryption: &SampleEncryption{Entries: []SampleEncryptionEntry{
			{IV: [8]byte{1}, Subsamples: []SubsampleEntry{{ClearBytes: 4, ProtectedBytes: 60}}},
			{IV: [8]byte{2}, Subsamples: []SubsampleEntry{{ClearBytes: 4, ProtectedBytes: 28}}},
		}},
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return valid
}

// FuzzParseInitSegment is the native fuzz target for the init-segment
// parser; run via `make fuzz` or `go test -fuzz FuzzParseInitSegment`.
func FuzzParseInitSegment(f *testing.F) {
	valid := validInit()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("ftypmoov"))
	f.Fuzz(func(t *testing.T, data []byte) {
		init, err := ParseInitSegment(data)
		if err != nil {
			return
		}
		// Downstream consumers read these without re-validating.
		_ = init.Track.Protection
		_, _ = IsProtected(data)
	})
}

// FuzzParseMediaSegment is the native fuzz target for the media-segment
// parser.
func FuzzParseMediaSegment(f *testing.F) {
	valid := validMedia(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("moofmdat"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ParseMediaSegment(data)
		if err != nil {
			return
		}
		if len(seg.SampleData) > 0 {
			_, _ = seg.Marshal()
		}
	})
}

func TestLeafParsers_NeverPanic(t *testing.T) {
	neverPanics(t, "ParseFileType", func(b []byte) { _, _ = ParseFileType(b) })
	neverPanics(t, "ParseMovieHeader", func(b []byte) { _, _ = ParseMovieHeader(b) })
	neverPanics(t, "ParseTrackHeader", func(b []byte) { _, _ = ParseTrackHeader(b) })
	neverPanics(t, "ParseMediaHeader", func(b []byte) { _, _ = ParseMediaHeader(b) })
	neverPanics(t, "ParseHandler", func(b []byte) { _, _ = ParseHandler(b) })
	neverPanics(t, "ParseTrackExtends", func(b []byte) { _, _ = ParseTrackExtends(b) })
	neverPanics(t, "ParseTrackFragmentHeader", func(b []byte) { _, _ = ParseTrackFragmentHeader(b) })
	neverPanics(t, "ParseTrackFragmentDecodeTime", func(b []byte) { _, _ = ParseTrackFragmentDecodeTime(b) })
	neverPanics(t, "ParseTrackRun", func(b []byte) { _, _ = ParseTrackRun(b) })
	neverPanics(t, "ParseTrackEncryption", func(b []byte) { _, _ = ParseTrackEncryption(b) })
	neverPanics(t, "ParsePSSH", func(b []byte) { _, _ = ParsePSSH(b) })
	neverPanics(t, "ParseProtectionSchemeInfo", func(b []byte) { _, _ = ParseProtectionSchemeInfo(b) })
	neverPanics(t, "ParseSampleEncryption", func(b []byte) { _, _ = ParseSampleEncryption(b) })
	neverPanics(t, "ParseMovieFragmentHeader", func(b []byte) { _, _ = ParseMovieFragmentHeader(b) })
}
