package mp4

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func testKID() [16]byte {
	return [16]byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
}

func protectedVideoInit() *InitSegment {
	return &InitSegment{Track: TrackInfo{
		TrackID:   1,
		Handler:   HandlerVideo,
		Codec:     "avc1",
		Timescale: 90000,
		Width:     960,
		Height:    540,
		Protection: &ProtectionInfo{
			Scheme:     SchemeCENC,
			DefaultKID: testKID(),
			PSSH: []PSSH{{
				SystemID: WidevineSystemID,
				KIDs:     [][16]byte{testKID()},
				Data:     []byte("wv init data"),
			}},
		},
	}}
}

func TestInitSegmentRoundTrip_Protected(t *testing.T) {
	s := protectedVideoInit()
	got, err := ParseInitSegment(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("roundtrip:\n got %+v\nwant %+v", got.Track, s.Track)
	}
}

func TestInitSegmentRoundTrip_Clear(t *testing.T) {
	s := &InitSegment{Track: TrackInfo{
		TrackID:   2,
		Handler:   HandlerAudio,
		Codec:     "mp4a",
		Timescale: 48000,
	}}
	got, err := ParseInitSegment(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("roundtrip:\n got %+v\nwant %+v", got.Track, s.Track)
	}
	prot, err := IsProtected(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if prot {
		t.Error("clear init reported protected")
	}
}

func TestInitSegment_EntryTypePerHandler(t *testing.T) {
	cases := []struct {
		handler string
		want    string
	}{
		{HandlerVideo, "encv"},
		{HandlerAudio, "enca"},
		{HandlerSubtitle, "enct"},
	}
	for _, tt := range cases {
		s := protectedVideoInit()
		s.Track.Handler = tt.handler
		wire := s.Marshal()
		stsd, ok, err := FindPath(wire, "moov", "trak", "mdia", "minf", "stbl", "stsd")
		if err != nil || !ok {
			t.Fatalf("stsd lookup: %v %v", ok, err)
		}
		_, _, body, err := ParseFullBoxHeader(stsd.Payload)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := SplitBoxes(body[4:])
		if err != nil {
			t.Fatal(err)
		}
		if entries[0].BoxType != tt.want {
			t.Errorf("handler %s: entry type = %q, want %q", tt.handler, entries[0].BoxType, tt.want)
		}
	}
}

func TestIsProtected(t *testing.T) {
	prot, err := IsProtected(protectedVideoInit().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !prot {
		t.Error("protected init reported clear")
	}
	if _, err := IsProtected([]byte("junk-that-is-long")); err == nil {
		t.Error("junk input: want error")
	}
}

func TestMediaSegmentRoundTrip_Encrypted(t *testing.T) {
	m := &MediaSegment{
		SequenceNumber: 3,
		TrackID:        1,
		BaseDecodeTime: 180000,
		SampleData: [][]byte{
			bytes.Repeat([]byte{0xA1}, 400),
			bytes.Repeat([]byte{0xB2}, 200),
		},
		Encryption: &SampleEncryption{Entries: []SampleEncryptionEntry{
			{IV: [8]byte{1, 1, 1, 1}, Subsamples: []SubsampleEntry{{ClearBytes: 16, ProtectedBytes: 384}}},
			{IV: [8]byte{2, 2, 2, 2}, Subsamples: []SubsampleEntry{{ClearBytes: 16, ProtectedBytes: 184}}},
		}},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMediaSegment(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("roundtrip mismatch\n got %+v\nwant %+v", got, m)
	}
}

func TestMediaSegmentRoundTrip_Clear(t *testing.T) {
	m := &MediaSegment{
		SequenceNumber: 1,
		TrackID:        2,
		SampleData:     [][]byte{[]byte("clear audio sample"), []byte("another")},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMediaSegment(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Encryption != nil {
		t.Error("clear segment parsed with senc")
	}
	if !reflect.DeepEqual(m.SampleData, got.SampleData) {
		t.Error("sample data mismatch")
	}
}

func TestMediaSegment_SencSampleCountMismatch(t *testing.T) {
	m := &MediaSegment{
		TrackID:    1,
		SampleData: [][]byte{[]byte("one")},
		Encryption: &SampleEncryption{Entries: []SampleEncryptionEntry{{}, {}}},
	}
	if _, err := m.Marshal(); err == nil {
		t.Error("mismatched senc: want error")
	}
}

func TestParseMediaSegment_Invalid(t *testing.T) {
	if _, err := ParseMediaSegment(AppendBox(nil, "mdat", nil)); err == nil {
		t.Error("no moof: want error")
	}
	moofOnly := AppendBox(nil, "moof", nil)
	if _, err := ParseMediaSegment(moofOnly); err == nil {
		t.Error("no mdat: want error")
	}
}

func TestParseInitSegment_Invalid(t *testing.T) {
	if _, err := ParseInitSegment(AppendBox(nil, "ftyp", (&FileType{MajorBrand: "iso6"}).Marshal())); err == nil {
		t.Error("no moov: want error")
	}
	if _, err := ParseInitSegment(AppendBox(nil, "moov", nil)); err == nil {
		t.Error("empty moov: want error")
	}
}

// Property: arbitrary sample payloads round-trip through a media segment.
func TestMediaSegment_Property(t *testing.T) {
	prop := func(samples [][]byte, seq uint32, track uint32) bool {
		if len(samples) == 0 {
			samples = [][]byte{{}}
		}
		if len(samples) > 30 {
			samples = samples[:30]
		}
		if track == 0 {
			track = 1
		}
		m := &MediaSegment{SequenceNumber: seq, TrackID: track, SampleData: samples}
		wire, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseMediaSegment(wire)
		if err != nil || got.SequenceNumber != seq || got.TrackID != track {
			return false
		}
		if len(got.SampleData) != len(samples) {
			return false
		}
		for i := range samples {
			if !bytes.Equal(got.SampleData[i], samples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMediaSegmentMarshal(b *testing.B) {
	m := &MediaSegment{
		SequenceNumber: 1,
		TrackID:        1,
		SampleData:     [][]byte{bytes.Repeat([]byte{0x55}, 64<<10)},
		Encryption: &SampleEncryption{Entries: []SampleEncryptionEntry{
			{IV: [8]byte{1}, Subsamples: []SubsampleEntry{{ClearBytes: 16, ProtectedBytes: 64<<10 - 16}}},
		}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}
