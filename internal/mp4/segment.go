package mp4

import (
	"fmt"
)

// ProtectionInfo describes how a track is protected, as declared in its
// init segment.
type ProtectionInfo struct {
	Scheme     string // SchemeCENC or SchemeCBCS
	DefaultKID [16]byte
	PSSH       []PSSH
}

// TrackInfo describes one track of an init segment.
type TrackInfo struct {
	TrackID    uint32
	Handler    string // HandlerVideo, HandlerAudio, HandlerSubtitle
	Codec      string // original format fourcc, e.g. "avc1", "mp4a", "wvtt"
	Timescale  uint32
	Width      uint16
	Height     uint16
	Protection *ProtectionInfo // nil for a clear track
}

// InitSegment is the high-level model of a CMAF-style init segment: ftyp +
// moov with one track.
type InitSegment struct {
	Track TrackInfo
}

// Marshal serializes the init segment to its full box sequence.
func (s *InitSegment) Marshal() []byte {
	t := &s.Track

	ft := FileType{MajorBrand: "iso6", MinorVersion: 1, CompatibleBrands: []string{"dash", "cmfc"}}
	out := AppendBox(nil, "ftyp", ft.Marshal())

	// Sample entry: encv/enca/enct when protected, else the codec fourcc.
	// Layout: 6 reserved bytes + data_reference_index, then child boxes
	// ('codc' opaque config, and 'sinf' when protected) — see package doc
	// for the documented deviation.
	entryType := t.Codec
	entry := make([]byte, 8)
	entry[7] = 1 // data_reference_index
	entry = AppendBox(entry, "codc", []byte(t.Codec))
	if t.Protection != nil {
		switch t.Handler {
		case HandlerAudio:
			entryType = "enca"
		case HandlerSubtitle:
			entryType = "enct"
		default:
			entryType = "encv"
		}
		sinf := ProtectionSchemeInfo{
			OriginalFormat: t.Codec,
			SchemeType:     t.Protection.Scheme,
			SchemeVersion:  0x00010000,
			TrackEnc: TrackEncryption{
				DefaultIsProtected:     true,
				DefaultPerSampleIVSize: 8,
				DefaultKID:             t.Protection.DefaultKID,
			},
		}
		entry = AppendBox(entry, "sinf", sinf.Marshal())
	}

	stsd := AppendFullBoxHeader(nil, 0, 0)
	stsd = append(stsd, 0, 0, 0, 1) // entry count
	stsd = AppendBox(stsd, entryType, entry)

	var stbl []byte
	stbl = AppendBox(stbl, "stsd", stsd)
	// Empty mandatory sample tables (fragmented file).
	emptyFull := AppendFullBoxHeader(nil, 0, 0)
	emptyCount := append(append([]byte(nil), emptyFull...), 0, 0, 0, 0)
	stbl = AppendBox(stbl, "stts", emptyCount)
	stbl = AppendBox(stbl, "stsc", emptyCount)
	stbl = AppendBox(stbl, "stsz", append(append([]byte(nil), emptyFull...), make([]byte, 8)...))
	stbl = AppendBox(stbl, "stco", emptyCount)

	var minf []byte
	minf = AppendBox(minf, "stbl", stbl)

	var mdia []byte
	mdia = AppendBox(mdia, "mdhd", (&MediaHeader{Timescale: t.Timescale}).Marshal())
	mdia = AppendBox(mdia, "hdlr", (&Handler{HandlerType: t.Handler, Name: "repro"}).Marshal())
	mdia = AppendBox(mdia, "minf", minf)

	var trak []byte
	trak = AppendBox(trak, "tkhd", (&TrackHeader{TrackID: t.TrackID, Width: t.Width, Height: t.Height}).Marshal())
	trak = AppendBox(trak, "mdia", mdia)

	var moov []byte
	moov = AppendBox(moov, "mvhd", (&MovieHeader{Timescale: t.Timescale, NextTrackID: t.TrackID + 1}).Marshal())
	if t.Protection != nil {
		for i := range t.Protection.PSSH {
			moov = AppendBox(moov, "pssh", t.Protection.PSSH[i].Marshal())
		}
	}
	moov = AppendBox(moov, "trak", trak)
	mvex := AppendBox(nil, "trex", (&TrackExtends{TrackID: t.TrackID, DefaultSampleDescriptionIndex: 1}).Marshal())
	moov = AppendBox(moov, "mvex", mvex)

	return AppendBox(out, "moov", moov)
}

// ParseInitSegment decodes an init segment produced by Marshal (or any
// conforming single-track fragmented-MP4 init segment using this package's
// sample-entry layout).
func ParseInitSegment(b []byte) (*InitSegment, error) {
	moov, ok, err := FindBox(b, "moov")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no moov", ErrBadBox)
	}

	var s InitSegment
	t := &s.Track

	tkhdBox, ok, err := FindPath(moov.Payload, "trak", "tkhd")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no trak/tkhd", ErrBadBox)
	}
	tkhd, err := ParseTrackHeader(tkhdBox.Payload)
	if err != nil {
		return nil, err
	}
	t.TrackID = tkhd.TrackID
	t.Width = tkhd.Width
	t.Height = tkhd.Height

	mdiaBox, ok, err := FindPath(moov.Payload, "trak", "mdia")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no trak/mdia", ErrBadBox)
	}
	if mdhdBox, found, err := FindBox(mdiaBox.Payload, "mdhd"); err != nil {
		return nil, err
	} else if found {
		mdhd, err := ParseMediaHeader(mdhdBox.Payload)
		if err != nil {
			return nil, err
		}
		t.Timescale = mdhd.Timescale
	}
	if hdlrBox, found, err := FindBox(mdiaBox.Payload, "hdlr"); err != nil {
		return nil, err
	} else if found {
		hdlr, err := ParseHandler(hdlrBox.Payload)
		if err != nil {
			return nil, err
		}
		t.Handler = hdlr.HandlerType
	}

	stsdBox, ok, err := FindPath(mdiaBox.Payload, "minf", "stbl", "stsd")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no stsd", ErrBadBox)
	}
	_, _, stsdBody, err := ParseFullBoxHeader(stsdBox.Payload)
	if err != nil {
		return nil, err
	}
	if len(stsdBody) < 4 {
		return nil, fmt.Errorf("%w: stsd count", ErrTruncated)
	}
	entries, err := SplitBoxes(stsdBody[4:])
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: empty stsd", ErrBadBox)
	}
	entry := entries[0]
	if len(entry.Payload) < 8 {
		return nil, fmt.Errorf("%w: sample entry", ErrTruncated)
	}
	entryChildren := entry.Payload[8:]
	t.Codec = entry.BoxType

	if codc, found, err := FindBox(entryChildren, "codc"); err != nil {
		return nil, err
	} else if found {
		t.Codec = string(codc.Payload)
	}

	if sinfBox, found, err := FindBox(entryChildren, "sinf"); err != nil {
		return nil, err
	} else if found {
		sinf, err := ParseProtectionSchemeInfo(sinfBox.Payload)
		if err != nil {
			return nil, err
		}
		t.Codec = sinf.OriginalFormat
		prot := &ProtectionInfo{
			Scheme:     sinf.SchemeType,
			DefaultKID: sinf.TrackEnc.DefaultKID,
		}
		psshBoxes, err := FindAll(moov.Payload, "pssh")
		if err != nil {
			return nil, err
		}
		for _, pb := range psshBoxes {
			pssh, err := ParsePSSH(pb.Payload)
			if err != nil {
				return nil, err
			}
			prot.PSSH = append(prot.PSSH, *pssh)
		}
		t.Protection = prot
	}
	return &s, nil
}

// MediaSegment is the high-level model of one CMAF media segment: styp +
// moof + mdat for one track.
type MediaSegment struct {
	SequenceNumber uint32
	TrackID        uint32
	BaseDecodeTime uint64
	// SampleData holds each sample's bytes (possibly encrypted).
	SampleData [][]byte
	// Encryption carries per-sample IVs/subsamples; nil for a clear segment.
	Encryption *SampleEncryption
}

// Marshal serializes the media segment.
func (m *MediaSegment) Marshal() ([]byte, error) {
	if m.Encryption != nil && len(m.Encryption.Entries) != len(m.SampleData) {
		return nil, fmt.Errorf("%w: %d senc entries for %d samples",
			ErrBadBox, len(m.Encryption.Entries), len(m.SampleData))
	}
	ft := FileType{MajorBrand: "msdh", CompatibleBrands: []string{"dash"}}
	out := AppendBox(nil, "styp", ft.Marshal())

	sizes := make([]uint32, len(m.SampleData))
	total := 0
	for i, s := range m.SampleData {
		sizes[i] = uint32(len(s))
		total += len(s)
	}

	var traf []byte
	traf = AppendBox(traf, "tfhd", (&TrackFragmentHeader{TrackID: m.TrackID, DefaultSampleDuration: 1000}).Marshal())
	traf = AppendBox(traf, "tfdt", (&TrackFragmentDecodeTime{BaseMediaDecodeTime: m.BaseDecodeTime}).Marshal())
	if m.Encryption != nil {
		traf = AppendBox(traf, "senc", m.Encryption.Marshal())
	}
	trun := &TrackRun{SampleSizes: sizes}

	moofInner := func(dataOffset int32) []byte {
		trun.DataOffset = dataOffset
		trafFull := AppendBox(append([]byte(nil), traf...), "trun", trun.Marshal())
		var moof []byte
		moof = AppendBox(moof, "mfhd", (&MovieFragmentHeader{SequenceNumber: m.SequenceNumber}).Marshal())
		return AppendBox(moof, "traf", trafFull)
	}

	// Two-pass: first compute moof size with placeholder offset, then fix
	// the data offset (from moof start to first sample byte inside mdat).
	probe := moofInner(0)
	moofSize := 8 + len(probe)
	final := moofInner(int32(moofSize + 8)) // +8 for the mdat header
	out = AppendBox(out, "moof", final)

	mdat := make([]byte, 0, total)
	for _, s := range m.SampleData {
		mdat = append(mdat, s...)
	}
	return AppendBox(out, "mdat", mdat), nil
}

// ParseMediaSegment decodes a media segment produced by Marshal.
func ParseMediaSegment(b []byte) (*MediaSegment, error) {
	moof, ok, err := FindBox(b, "moof")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no moof", ErrBadBox)
	}
	mdat, ok, err := FindBox(b, "mdat")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no mdat", ErrBadBox)
	}

	var m MediaSegment
	if mfhdBox, found, err := FindBox(moof.Payload, "mfhd"); err != nil {
		return nil, err
	} else if found {
		mfhd, err := ParseMovieFragmentHeader(mfhdBox.Payload)
		if err != nil {
			return nil, err
		}
		m.SequenceNumber = mfhd.SequenceNumber
	}

	traf, ok, err := FindBox(moof.Payload, "traf")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no traf", ErrBadBox)
	}
	tfhdBox, ok, err := FindBox(traf.Payload, "tfhd")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no tfhd", ErrBadBox)
	}
	tfhd, err := ParseTrackFragmentHeader(tfhdBox.Payload)
	if err != nil {
		return nil, err
	}
	m.TrackID = tfhd.TrackID

	if tfdtBox, found, err := FindBox(traf.Payload, "tfdt"); err != nil {
		return nil, err
	} else if found {
		tfdt, err := ParseTrackFragmentDecodeTime(tfdtBox.Payload)
		if err != nil {
			return nil, err
		}
		m.BaseDecodeTime = tfdt.BaseMediaDecodeTime
	}

	if sencBox, found, err := FindBox(traf.Payload, "senc"); err != nil {
		return nil, err
	} else if found {
		senc, err := ParseSampleEncryption(sencBox.Payload)
		if err != nil {
			return nil, err
		}
		m.Encryption = senc
	}

	trunBox, ok, err := FindBox(traf.Payload, "trun")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no trun", ErrBadBox)
	}
	trun, err := ParseTrackRun(trunBox.Payload)
	if err != nil {
		return nil, err
	}

	data := mdat.Payload
	off := 0
	m.SampleData = make([][]byte, 0, len(trun.SampleSizes))
	for i, size := range trun.SampleSizes {
		if off+int(size) > len(data) {
			return nil, fmt.Errorf("%w: sample %d spans past mdat", ErrBadBox, i)
		}
		m.SampleData = append(m.SampleData, append([]byte(nil), data[off:off+int(size)]...))
		off += int(size)
	}
	if m.Encryption != nil && len(m.Encryption.Entries) != len(m.SampleData) {
		return nil, fmt.Errorf("%w: %d senc entries for %d samples",
			ErrBadBox, len(m.Encryption.Entries), len(m.SampleData))
	}
	return &m, nil
}

// IsProtected reports whether an init segment declares CENC protection,
// without fully parsing it. It is the probe the study's content-protection
// experiment (Q2) runs on downloaded assets.
func IsProtected(initSegment []byte) (bool, error) {
	s, err := ParseInitSegment(initSegment)
	if err != nil {
		return false, err
	}
	return s.Track.Protection != nil, nil
}
