// Package cdn implements the Content Delivery Network of the DRM
// architecture: it stores packaged assets (init/media segments, subtitle
// files) and manifests, and serves them over the simulated network. The
// CDN is intentionally dumb about protection — it delivers whatever bytes
// the packager produced; all protection decisions were made upstream,
// which is exactly why downloading its URLs suffices for the paper's Q2
// probe. The one smart thing it does is speak manifest dialects: the
// canonical DASH manifest is stored once, and HLS / Smooth Streaming forms
// are repackaged on the fly (and memoized) when a client asks by
// extension — the manifesto translator shape.
package cdn

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/dash"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netsim"
)

// URL path prefixes the CDN serves.
const (
	ManifestPrefix = "/manifest/"
	ObjectPrefix   = "/object/"
)

// ErrNotFound is returned for unknown manifests or objects.
var ErrNotFound = errors.New("cdn: not found")

// Server is one CDN host.
type Server struct {
	host string

	mu        sync.RWMutex
	objects   map[string][]byte
	manifests map[string][]byte
	// repacked memoizes on-the-fly dialect conversions, keyed
	// "<contentID>.<ext>" — the canonical form never changes after
	// ingest, so a conversion is computed at most once.
	repacked map[string][]byte
	// served counts manifest serves per dialect name (the
	// wideleakd_manifests_served_total metric source).
	served map[string]int64
}

// NewServer builds an empty CDN for the given hostname.
func NewServer(host string) *Server {
	return &Server{
		host:      host,
		objects:   make(map[string][]byte),
		manifests: make(map[string][]byte),
		repacked:  make(map[string][]byte),
		served:    make(map[string]int64),
	}
}

// Host returns the CDN's hostname.
func (s *Server) Host() string { return s.host }

// AddPackaged ingests one packaged title: all files plus its manifest in
// canonical (DASH) form. Dialect forms are derived lazily on first request.
func (s *Server) AddPackaged(p *media.Packaged) error {
	mpd, err := p.MPD.Marshal()
	if err != nil {
		return fmt.Errorf("cdn: ingest %q: %w", p.ContentID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for path, data := range p.Files {
		s.objects[path] = data
	}
	s.manifests[p.ContentID] = mpd
	return nil
}

// Manifest returns a content's canonical MPD bytes. It does not count as a
// dialect serve — backends use it for internal processing (sealing,
// regional rewrites); the counting entry point is ManifestDialect.
func (s *Server) Manifest(contentID string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.manifests[contentID]
	return m, ok
}

// ManifestDialect returns a content's manifest in the named dialect
// ("" = canonical DASH), repackaging from the stored canonical form on
// first request and memoizing the result. Every successful call counts
// toward the per-dialect serve totals.
func (s *Server) ManifestDialect(contentID, dialectName string) ([]byte, error) {
	d, err := manifest.ByName(dialectName)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	stored, ok := s.manifests[contentID]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: manifest %s", ErrNotFound, contentID)
	}
	if d.Name() == manifest.DefaultName {
		s.count(d.Name())
		return stored, nil
	}
	memoKey := contentID + "." + d.Extension()
	s.mu.RLock()
	repacked, hit := s.repacked[memoKey]
	s.mu.RUnlock()
	if hit {
		s.count(d.Name())
		return repacked, nil
	}
	mpd, err := dash.Parse(stored)
	if err != nil {
		return nil, fmt.Errorf("cdn: repack %s: %w", contentID, err)
	}
	repacked, err = d.Serialize(mpd)
	if err != nil {
		return nil, fmt.Errorf("cdn: repack %s as %s: %w", contentID, d.Name(), err)
	}
	s.mu.Lock()
	s.repacked[memoKey] = repacked
	s.mu.Unlock()
	s.count(d.Name())
	return repacked, nil
}

func (s *Server) count(dialectName string) {
	s.mu.Lock()
	s.served[dialectName]++
	s.mu.Unlock()
}

// ServeCounts snapshots the per-dialect manifest serve totals.
func (s *Server) ServeCounts() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.served))
	for k, v := range s.served {
		out[k] = v
	}
	return out
}

// Object returns one stored asset.
func (s *Server) Object(path string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[path]
	return o, ok
}

// Handler serves the CDN over netsim:
//
//	GET /manifest/<contentID>        → canonical MPD XML
//	GET /manifest/<contentID>.m3u8   → HLS repackaging
//	GET /manifest/<contentID>.ism    → Smooth Streaming repackaging
//	GET /object/<path>               → asset bytes
func (s *Server) Handler() netsim.Handler {
	return func(req netsim.Request) (netsim.Response, error) {
		switch {
		case strings.HasPrefix(req.Path, ManifestPrefix):
			id, dialectName := manifest.SplitExtension(strings.TrimPrefix(req.Path, ManifestPrefix))
			if m, err := s.ManifestDialect(id, dialectName); err == nil {
				return netsim.Response{Status: 200, Body: m}, nil
			}
		case strings.HasPrefix(req.Path, ObjectPrefix):
			path := strings.TrimPrefix(req.Path, ObjectPrefix)
			if o, ok := s.Object(path); ok {
				return netsim.Response{Status: 200, Body: o}, nil
			}
		}
		return netsim.Response{Status: 404}, fmt.Errorf("%w: %s", ErrNotFound, req.Path)
	}
}
