// Package cdn implements the Content Delivery Network of the DRM
// architecture: it stores packaged assets (init/media segments, subtitle
// files) and manifests, and serves them over the simulated network. The
// CDN is intentionally dumb — it delivers whatever bytes the packager
// produced; all protection decisions were made upstream, which is exactly
// why downloading its URLs suffices for the paper's Q2 probe.
package cdn

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/media"
	"repro/internal/netsim"
)

// URL path prefixes the CDN serves.
const (
	ManifestPrefix = "/manifest/"
	ObjectPrefix   = "/object/"
)

// ErrNotFound is returned for unknown manifests or objects.
var ErrNotFound = errors.New("cdn: not found")

// Server is one CDN host.
type Server struct {
	host string

	mu        sync.RWMutex
	objects   map[string][]byte
	manifests map[string][]byte
}

// NewServer builds an empty CDN for the given hostname.
func NewServer(host string) *Server {
	return &Server{
		host:      host,
		objects:   make(map[string][]byte),
		manifests: make(map[string][]byte),
	}
}

// Host returns the CDN's hostname.
func (s *Server) Host() string { return s.host }

// AddPackaged ingests one packaged title: all files plus its manifest.
func (s *Server) AddPackaged(p *media.Packaged) error {
	mpd, err := p.MPD.Marshal()
	if err != nil {
		return fmt.Errorf("cdn: ingest %q: %w", p.ContentID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for path, data := range p.Files {
		s.objects[path] = data
	}
	s.manifests[p.ContentID] = mpd
	return nil
}

// Manifest returns a content's MPD bytes.
func (s *Server) Manifest(contentID string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.manifests[contentID]
	return m, ok
}

// Object returns one stored asset.
func (s *Server) Object(path string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[path]
	return o, ok
}

// Handler serves the CDN over netsim:
//
//	GET /manifest/<contentID> → MPD XML
//	GET /object/<path>        → asset bytes
func (s *Server) Handler() netsim.Handler {
	return func(req netsim.Request) (netsim.Response, error) {
		switch {
		case strings.HasPrefix(req.Path, ManifestPrefix):
			id := strings.TrimPrefix(req.Path, ManifestPrefix)
			if m, ok := s.Manifest(id); ok {
				return netsim.Response{Status: 200, Body: m}, nil
			}
		case strings.HasPrefix(req.Path, ObjectPrefix):
			path := strings.TrimPrefix(req.Path, ObjectPrefix)
			if o, ok := s.Object(path); ok {
				return netsim.Response{Status: 200, Body: o}, nil
			}
		}
		return netsim.Response{Status: 404}, fmt.Errorf("%w: %s", ErrNotFound, req.Path)
	}
}
