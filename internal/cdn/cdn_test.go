package cdn_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cdn"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/wvcrypto"
)

func packagedTitle(t *testing.T) *media.Packaged {
	t.Helper()
	tracks := media.GenerateTitle("movie-1", media.DefaultGenerateOptions())
	p, err := media.Package("movie-1", tracks,
		media.KeyPolicy{EncryptAudio: true}, wvcrypto.NewDeterministicReader("cdn"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAddPackagedAndLookup(t *testing.T) {
	s := cdn.NewServer("cdn.example")
	if s.Host() != "cdn.example" {
		t.Errorf("host = %q", s.Host())
	}
	p := packagedTitle(t)
	if err := s.AddPackaged(p); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Manifest("movie-1")
	if !ok || len(m) == 0 {
		t.Error("manifest missing")
	}
	if _, ok := s.Manifest("other"); ok {
		t.Error("unknown manifest found")
	}
	for path, data := range p.Files {
		got, ok := s.Object(path)
		if !ok || !bytes.Equal(got, data) {
			t.Errorf("object %q mismatch", path)
		}
	}
	if _, ok := s.Object("nope"); ok {
		t.Error("unknown object found")
	}
}

func TestHandler(t *testing.T) {
	s := cdn.NewServer("cdn.example")
	p := packagedTitle(t)
	if err := s.AddPackaged(p); err != nil {
		t.Fatal(err)
	}
	network := netsim.NewNetwork()
	network.RegisterHost(s.Host(), s.Handler())
	client := netsim.NewClient(network)

	resp, err := client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ManifestPrefix + "movie-1"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("manifest fetch: %d %v", resp.Status, err)
	}

	resp, err = client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ObjectPrefix + "movie-1/video/540p/init.mp4"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("object fetch: %d %v", resp.Status, err)
	}

	if _, err := client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ObjectPrefix + "missing"}); err == nil {
		t.Error("missing object: want error")
	}
	if _, err := client.Do(netsim.Request{Host: "cdn.example", Path: "/bogus"}); err == nil {
		t.Error("bogus path: want error")
	}
}

// TestHandler_RetriedFetchUnderFaults drives the CDN through a flaky
// network with the shared retry policy: every object must still arrive,
// while a genuine 404 is returned after exactly one handler call.
func TestHandler_RetriedFetchUnderFaults(t *testing.T) {
	s := cdn.NewServer("cdn.example")
	p := packagedTitle(t)
	if err := s.AddPackaged(p); err != nil {
		t.Fatal(err)
	}
	network := netsim.NewNetwork()
	handlerCalls := 0
	inner := s.Handler()
	network.RegisterHost(s.Host(), func(req netsim.Request) (netsim.Response, error) {
		handlerCalls++
		return inner(req)
	})
	plan := netsim.NewFaultPlan(wvcrypto.NewDeterministicReader("cdn-faults"),
		netsim.FaultProfile{DropRate: 0.15, BusyRate: 0.15, FlapRate: 0.15})
	network.SetFaultPlan(plan)

	client := netsim.NewClient(network)
	client.SetRetryPolicy(netsim.DefaultRetryPolicy(
		wvcrypto.NewDeterministicReader("cdn-jitter"), netsim.NewVirtualClock()))

	for path, data := range p.Files {
		resp, err := client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ObjectPrefix + path})
		if err != nil || resp.Status != 200 {
			t.Fatalf("object %q under faults: %d %v", path, resp.Status, err)
		}
		if !bytes.Equal(resp.Body, data) {
			t.Errorf("object %q corrupted in transit", path)
		}
	}
	if plan.Stats().Total() == 0 {
		t.Fatal("no faults injected — the retry check is vacuous")
	}

	// A 404 is deterministic: no matter how flaky the network, the handler
	// must be asked exactly once for it.
	handlerCalls = 0
	for {
		_, err := client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ObjectPrefix + "missing"})
		if errors.Is(err, cdn.ErrNotFound) {
			break
		}
		// An injected fault struck before the handler; the retry layer may
		// legitimately exhaust on it. Ask again until the handler answers.
		if err == nil {
			t.Fatal("missing object fetch succeeded")
		}
	}
	if handlerCalls != 1 {
		t.Errorf("404 reached the handler %d times, want 1", handlerCalls)
	}
}
