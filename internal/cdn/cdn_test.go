package cdn_test

import (
	"bytes"
	"testing"

	"repro/internal/cdn"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/wvcrypto"
)

func packagedTitle(t *testing.T) *media.Packaged {
	t.Helper()
	tracks := media.GenerateTitle("movie-1", media.DefaultGenerateOptions())
	p, err := media.Package("movie-1", tracks,
		media.KeyPolicy{EncryptAudio: true}, wvcrypto.NewDeterministicReader("cdn"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAddPackagedAndLookup(t *testing.T) {
	s := cdn.NewServer("cdn.example")
	if s.Host() != "cdn.example" {
		t.Errorf("host = %q", s.Host())
	}
	p := packagedTitle(t)
	if err := s.AddPackaged(p); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Manifest("movie-1")
	if !ok || len(m) == 0 {
		t.Error("manifest missing")
	}
	if _, ok := s.Manifest("other"); ok {
		t.Error("unknown manifest found")
	}
	for path, data := range p.Files {
		got, ok := s.Object(path)
		if !ok || !bytes.Equal(got, data) {
			t.Errorf("object %q mismatch", path)
		}
	}
	if _, ok := s.Object("nope"); ok {
		t.Error("unknown object found")
	}
}

func TestHandler(t *testing.T) {
	s := cdn.NewServer("cdn.example")
	p := packagedTitle(t)
	if err := s.AddPackaged(p); err != nil {
		t.Fatal(err)
	}
	network := netsim.NewNetwork()
	network.RegisterHost(s.Host(), s.Handler())
	client := netsim.NewClient(network)

	resp, err := client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ManifestPrefix + "movie-1"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("manifest fetch: %d %v", resp.Status, err)
	}

	resp, err = client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ObjectPrefix + "movie-1/video/540p/init.mp4"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("object fetch: %d %v", resp.Status, err)
	}

	if _, err := client.Do(netsim.Request{Host: "cdn.example", Path: cdn.ObjectPrefix + "missing"}); err == nil {
		t.Error("missing object: want error")
	}
	if _, err := client.Do(netsim.Request{Host: "cdn.example", Path: "/bogus"}); err == nil {
		t.Error("bogus path: want error")
	}
}
