package keybox

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/wvcrypto"
)

func newTestKeybox(t *testing.T) *Keybox {
	t.Helper()
	kb, err := New("NEXUS5-SN-0042", 4442, wvcrypto.NewDeterministicReader("keybox-test"))
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestNewKeybox(t *testing.T) {
	kb := newTestKeybox(t)
	if kb.StableIDString() != "NEXUS5-SN-0042" {
		t.Errorf("StableID = %q", kb.StableIDString())
	}
	if kb.SystemID() != 4442 {
		t.Errorf("SystemID = %d, want 4442", kb.SystemID())
	}
	if kb.DeviceKey == [16]byte{} {
		t.Error("device key is zero")
	}
}

func TestNewKeybox_InvalidStableID(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("x")
	if _, err := New("", 1, rand); err == nil {
		t.Error("empty stable ID: want error")
	}
	if _, err := New(string(bytes.Repeat([]byte{'a'}, 33)), 1, rand); err == nil {
		t.Error("oversized stable ID: want error")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	kb := newTestKeybox(t)
	wire := kb.Marshal()
	if len(wire) != Size {
		t.Fatalf("wire size = %d, want %d", len(wire), Size)
	}
	if !bytes.Equal(wire[MagicOffset():MagicOffset()+4], Magic[:]) {
		t.Error("magic not at expected offset")
	}
	parsed, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if *parsed != *kb {
		t.Error("roundtrip mismatch")
	}
}

func TestParse_Rejects(t *testing.T) {
	kb := newTestKeybox(t)
	wire := kb.Marshal()

	t.Run("wrong size", func(t *testing.T) {
		if _, err := Parse(wire[:100]); !errors.Is(err, ErrBadSize) {
			t.Errorf("err = %v, want ErrBadSize", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		w := append([]byte(nil), wire...)
		w[MagicOffset()] = 'X'
		if _, err := Parse(w); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad crc", func(t *testing.T) {
		w := append([]byte(nil), wire...)
		w[0] ^= 1 // corrupt stable ID; CRC should catch it
		if _, err := Parse(w); !errors.Is(err, ErrBadCRC) {
			t.Errorf("err = %v, want ErrBadCRC", err)
		}
	})
	t.Run("corrupt crc field", func(t *testing.T) {
		w := append([]byte(nil), wire...)
		w[Size-1] ^= 1
		if _, err := Parse(w); !errors.Is(err, ErrBadCRC) {
			t.Errorf("err = %v, want ErrBadCRC", err)
		}
	})
}

// Property: every keybox round-trips, and every single-byte corruption of
// the payload is caught by magic or CRC validation.
func TestKeybox_CorruptionDetected(t *testing.T) {
	prop := func(seed string, systemID uint32, corrupt uint16) bool {
		if seed == "" {
			seed = "d"
		}
		if len(seed) > 32 {
			seed = seed[:32]
		}
		kb, err := New(seed, systemID, wvcrypto.NewDeterministicReader(seed))
		if err != nil {
			return false
		}
		wire := kb.Marshal()
		if _, err := Parse(wire); err != nil {
			return false
		}
		pos := int(corrupt) % Size
		wire[pos] ^= 0x01
		_, err = Parse(wire)
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistinctDevicesDistinctKeys(t *testing.T) {
	a, err := New("device-a", 1, wvcrypto.NewDeterministicReader("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("device-b", 1, wvcrypto.NewDeterministicReader("b"))
	if err != nil {
		t.Fatal(err)
	}
	if a.DeviceKey == b.DeviceKey {
		t.Error("two devices share a device key")
	}
}

func TestStableIDString_FullWidth(t *testing.T) {
	id := string(bytes.Repeat([]byte{'z'}, 32))
	kb, err := New(id, 7, wvcrypto.NewDeterministicReader("full"))
	if err != nil {
		t.Fatal(err)
	}
	if kb.StableIDString() != id {
		t.Errorf("full-width stable ID = %q", kb.StableIDString())
	}
}
