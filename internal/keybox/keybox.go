// Package keybox implements the 128-byte Widevine keybox, the factory-
// installed root of trust the paper's PoC recovers from L3 process memory
// (CVE-2021-0639). Layout, matching the structure the authors
// reverse-engineered:
//
//	offset  size  field
//	0       32    stable device ID (manufacturer serial, NUL padded)
//	32      16    device AES-128 key (the root of the key ladder)
//	64      56    key data: system ID, provisioning flags, padding
//	120     4     magic "kbox"
//	124     4     CRC-32 over the first 124 bytes
//
// The magic number is exactly what the memory-scan attack searches for.
package keybox

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Size is the keybox wire size in bytes.
const Size = 128

// Magic is the keybox magic number; the paper's attack scans process memory
// for this tag to locate the structure.
var Magic = [4]byte{'k', 'b', 'o', 'x'}

// Field layout offsets.
const (
	stableIDOff  = 0
	stableIDLen  = 32
	deviceKeyOff = 32
	deviceKeyLen = 16
	keyDataOff   = 48
	keyDataLen   = 72
	magicOff     = 120
	crcOff       = 124
)

// Errors returned by Parse.
var (
	ErrBadMagic = errors.New("keybox: bad magic")
	ErrBadCRC   = errors.New("keybox: crc mismatch")
	ErrBadSize  = errors.New("keybox: wrong size")
)

// Keybox is the parsed root-of-trust structure.
type Keybox struct {
	// StableID identifies the device to the provisioning server.
	StableID [stableIDLen]byte
	// DeviceKey is the AES-128 root key of the ladder.
	DeviceKey [deviceKeyLen]byte
	// KeyData carries the system ID and provisioning metadata.
	KeyData [keyDataLen]byte
}

// New mints a keybox for the given device serial with a random device key,
// as a manufacturer's factory provisioning would. The system ID is encoded
// into the key data.
func New(stableID string, systemID uint32, rand io.Reader) (*Keybox, error) {
	if len(stableID) == 0 || len(stableID) > stableIDLen {
		return nil, fmt.Errorf("keybox: stable ID length %d not in [1,%d]", len(stableID), stableIDLen)
	}
	var kb Keybox
	copy(kb.StableID[:], stableID)
	if _, err := io.ReadFull(rand, kb.DeviceKey[:]); err != nil {
		return nil, fmt.Errorf("keybox: generate device key: %w", err)
	}
	binary.BigEndian.PutUint32(kb.KeyData[:4], systemID)
	if _, err := io.ReadFull(rand, kb.KeyData[4:]); err != nil {
		return nil, fmt.Errorf("keybox: generate key data: %w", err)
	}
	return &kb, nil
}

// SystemID returns the Widevine system ID encoded in the key data.
func (k *Keybox) SystemID() uint32 {
	return binary.BigEndian.Uint32(k.KeyData[:4])
}

// StableIDString returns the device serial with NUL padding stripped.
func (k *Keybox) StableIDString() string {
	b := k.StableID[:]
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// Marshal serializes the keybox into its 128-byte wire form, appending the
// magic and CRC-32. This is the exact byte image the L3 CDM keeps in
// process memory.
func (k *Keybox) Marshal() []byte {
	out := make([]byte, Size)
	copy(out[stableIDOff:], k.StableID[:])
	copy(out[deviceKeyOff:], k.DeviceKey[:])
	copy(out[keyDataOff:], k.KeyData[:])
	copy(out[magicOff:], Magic[:])
	binary.BigEndian.PutUint32(out[crcOff:], crc32.ChecksumIEEE(out[:crcOff]))
	return out
}

// Parse validates the magic and CRC and returns the structured keybox. The
// attack calls this on candidate memory windows around magic hits.
func Parse(b []byte) (*Keybox, error) {
	if len(b) != Size {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSize, len(b))
	}
	if [4]byte(b[magicOff:crcOff]) != Magic {
		return nil, ErrBadMagic
	}
	want := binary.BigEndian.Uint32(b[crcOff:])
	if crc32.ChecksumIEEE(b[:crcOff]) != want {
		return nil, ErrBadCRC
	}
	var kb Keybox
	copy(kb.StableID[:], b[stableIDOff:stableIDOff+stableIDLen])
	copy(kb.DeviceKey[:], b[deviceKeyOff:deviceKeyOff+deviceKeyLen])
	copy(kb.KeyData[:], b[keyDataOff:keyDataOff+keyDataLen])
	return &kb, nil
}

// MagicOffset returns the byte offset of the magic within the wire form;
// the attack uses it to rewind from a magic hit to the structure start.
func MagicOffset() int { return magicOff }
