package keybox

import (
	"encoding/hex"
	"testing"
)

// TestGoldenWireFormat pins the keybox wire layout. The §IV-D attack
// depends on this exact structure (magic offset, CRC coverage); any change
// here silently breaks interop with recorded traces, so the bytes are
// asserted literally.
func TestGoldenWireFormat(t *testing.T) {
	var kb Keybox
	copy(kb.StableID[:], "GOLDEN-DEVICE")
	for i := range kb.DeviceKey {
		kb.DeviceKey[i] = byte(i)
	}
	for i := range kb.KeyData {
		kb.KeyData[i] = byte(0xA0 + i%16)
	}
	wire := kb.Marshal()

	const want = "474f4c44454e2d44455649434500000000000000000000000000000000000000" + // stable ID (32B)
		"000102030405060708090a0b0c0d0e0f" + // device key (16B)
		"a0a1a2a3a4a5a6a7a8a9aaabacadaeafa0a1a2a3a4a5a6a7a8a9aaabacadaeaf" +
		"a0a1a2a3a4a5a6a7a8a9aaabacadaeafa0a1a2a3a4a5a6a7a8a9aaabacadaeaf" +
		"a0a1a2a3a4a5a6a7" + // key data (72B)
		"6b626f78" + // "kbox"
		"66a1ba56" // crc32-ieee over the first 124 bytes

	if got := hex.EncodeToString(wire); got != want {
		t.Errorf("wire format changed:\n got %s\nwant %s", got, want)
	}
}
