package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/wideleak"
)

// Batch fan-out: the router accepts the same POST /v1/batches the
// daemon does, partitions the specs by world key across the ring (each
// spec runs on the replica owning its world, where that world's cells,
// snapshot and key pool are warm), submits one sub-batch per replica,
// and merges status, rows and tables back under fleet-level spec
// indexes. Routed this way, a fleet-wide batch gets the same cell
// sharing a single daemon would give co-world specs, without ever
// duplicating a world across replicas.

// fleetBatchPart is one sub-batch living on one replica. specIdx maps
// the replica's local spec indexes (0..len-1) back to the fleet batch's.
type fleetBatchPart struct {
	replicaID string
	remoteID  string
	specIdx   []int
}

// fleetBatch is the router's record of one fanned-out batch.
type fleetBatch struct {
	id    string
	specs []wideleak.RunSpec
	parts []fleetBatchPart

	// specPart[i] locates fleet spec i: which part, and its index there.
	specPart []struct{ part, idx int }
}

// remoteBatchSubmit is the slice of the daemon's batch-submit response
// the router needs.
type remoteBatchSubmit struct {
	ID string `json:"id"`
}

// remoteBatchStatus is the slice of the daemon's batch status document
// the router merges.
type remoteBatchStatus struct {
	State    string              `json:"state"`
	Error    string              `json:"error,omitempty"`
	RowsDone int                 `json:"rows_done"`
	Stats    wideleak.BatchStats `json:"stats,omitempty"`
	WallMS   int64               `json:"wall_ms,omitempty"`
}

// fleetBatchRow mirrors the daemon's row wire shape; the router
// re-stamps Seq and remaps Spec to fleet indexes.
type fleetBatchRow struct {
	Seq    int64    `json:"seq"`
	Spec   int      `json:"spec"`
	App    string   `json:"app"`
	Err    string   `json:"error,omitempty"`
	Probes []string `json:"probes,omitempty"`
	Cells  []string `json:"cells,omitempty"`
}

// fleetBatchStatus is the router's merged status document.
type fleetBatchStatus struct {
	ID       string              `json:"id"`
	State    string              `json:"state"`
	Error    string              `json:"error,omitempty"`
	Specs    []wideleak.RunSpec  `json:"specs"`
	RowsDone int                 `json:"rows_done"`
	Stats    wideleak.BatchStats `json:"stats,omitempty"`
	Parts    []fleetBatchPartDoc `json:"parts"`
	RowsURL  string              `json:"rows_url"`
}

// fleetBatchPartDoc documents one partition in the merged status.
type fleetBatchPartDoc struct {
	Replica string `json:"replica"`
	BatchID string `json:"batch_id"`
	Specs   []int  `json:"specs"` // fleet spec indexes living on this part
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
}

// batchTarget picks the replica a world key's specs should run on: the
// first healthy replica in ring-walk order (the owner when it is up).
func (rt *Router) batchTarget(worldKey string) *replica {
	for _, id := range rt.ring.sequence(worldKey) {
		rt.mu.Lock()
		rep := rt.replicas[id]
		rt.mu.Unlock()
		if rep != nil && rep.isHealthy() {
			return rep
		}
	}
	return nil
}

func (rt *Router) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Specs       []wideleak.RunSpec `json:"specs"`
		Concurrency int                `json:"concurrency,omitempty"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "batch needs at least one spec")
		return
	}

	// Canonicalize and partition by the world's routed replica.
	type partition struct {
		rep     *replica
		specs   []wideleak.RunSpec
		specIdx []int
	}
	specs := make([]wideleak.RunSpec, len(req.Specs))
	parts := make(map[string]*partition)
	var order []string // replica IDs in first-touch order (deterministic fan-out)
	for i, spec := range req.Specs {
		c, err := spec.Canonicalize()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
		specs[i] = c
		worldKey, err := c.WorldKey()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
		rep := rt.batchTarget(worldKey)
		if rep == nil {
			rt.metrics.addUnroutable()
			writeError(w, http.StatusServiceUnavailable, "no healthy replica")
			return
		}
		p := parts[rep.id]
		if p == nil {
			p = &partition{rep: rep}
			parts[rep.id] = p
			order = append(order, rep.id)
		}
		p.specs = append(p.specs, c)
		p.specIdx = append(p.specIdx, i)
	}

	// Submit one sub-batch per replica. A failed part cancels the ones
	// already placed — a fleet batch exists whole or not at all.
	batch := &fleetBatch{specs: specs}
	for _, id := range order {
		p := parts[id]
		body, err := json.Marshal(map[string]any{"specs": p.specs, "concurrency": req.Concurrency})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp, err := rt.forward(r.Context(), p.rep, http.MethodPost, "/v1/batches", bytes.NewReader(body))
		if err != nil {
			rt.metrics.addProxyError(p.rep.id)
			rt.noteFailure(p.rep)
			rt.cancelParts(batch)
			writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("replica %s: %v", p.rep.id, err))
			return
		}
		var remote remoteBatchSubmit
		decErr := json.NewDecoder(resp.Body).Decode(&remote)
		status := resp.StatusCode
		drainBody(resp)
		if status != http.StatusAccepted || decErr != nil || remote.ID == "" {
			rt.cancelParts(batch)
			writeError(w, http.StatusBadGateway, fmt.Sprintf("replica %s answered %d to sub-batch", p.rep.id, status))
			return
		}
		rt.metrics.addBatchPart(p.rep.id)
		batch.parts = append(batch.parts, fleetBatchPart{
			replicaID: p.rep.id,
			remoteID:  remote.ID,
			specIdx:   p.specIdx,
		})
	}

	batch.specPart = make([]struct{ part, idx int }, len(specs))
	for pi, part := range batch.parts {
		for li, fi := range part.specIdx {
			batch.specPart[fi] = struct{ part, idx int }{pi, li}
		}
	}

	rt.mu.Lock()
	rt.seq++
	batch.id = fmt.Sprintf("fb%06d", rt.seq)
	rt.batches[batch.id] = batch
	rt.mu.Unlock()
	rt.metrics.addBatch()

	w.Header().Set("Location", "/v1/batches/"+batch.id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         batch.id,
		"state":      "queued",
		"specs":      len(specs),
		"parts":      len(batch.parts),
		"status_url": "/v1/batches/" + batch.id,
		"rows_url":   "/v1/batches/" + batch.id + "/rows",
	})
}

// cancelParts best-effort cancels every sub-batch already placed.
func (rt *Router) cancelParts(batch *fleetBatch) {
	for _, part := range batch.parts {
		rt.mu.Lock()
		rep := rt.replicas[part.replicaID]
		rt.mu.Unlock()
		if rep == nil {
			continue
		}
		req, err := http.NewRequest(http.MethodDelete, rep.base+"/v1/batches/"+part.remoteID, nil)
		if err != nil {
			continue
		}
		if resp, err := rt.client.Do(req); err == nil {
			drainBody(resp)
		}
	}
}

// fleetBatchByID looks a fanned-out batch up.
func (rt *Router) fleetBatchByID(id string) *fleetBatch {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.batches[id]
}

// partStatus fetches one sub-batch's status from its replica.
func (rt *Router) partStatus(r *http.Request, part fleetBatchPart) (remoteBatchStatus, error) {
	rt.mu.Lock()
	rep := rt.replicas[part.replicaID]
	rt.mu.Unlock()
	if rep == nil {
		return remoteBatchStatus{}, fmt.Errorf("unknown replica %s", part.replicaID)
	}
	resp, err := rt.forward(r.Context(), rep, http.MethodGet, "/v1/batches/"+part.remoteID, nil)
	if err != nil {
		rt.metrics.addProxyError(rep.id)
		rt.noteFailure(rep)
		return remoteBatchStatus{}, err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return remoteBatchStatus{}, fmt.Errorf("replica %s answered %d", rep.id, resp.StatusCode)
	}
	var st remoteBatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return remoteBatchStatus{}, err
	}
	return st, nil
}

// mergeState folds part states into the batch's: any failure dominates,
// then any still-live part, then cancellation; only all-done is done.
func mergeState(states []string) string {
	anyLive, anyCanceled := false, false
	for _, st := range states {
		switch st {
		case "failed":
			return "failed"
		case "queued", "running":
			anyLive = true
		case "canceled":
			anyCanceled = true
		}
	}
	if anyLive {
		return "running"
	}
	if anyCanceled {
		return "canceled"
	}
	return "done"
}

func (rt *Router) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	batch := rt.fleetBatchByID(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	out := fleetBatchStatus{
		ID:      batch.id,
		Specs:   batch.specs,
		RowsURL: "/v1/batches/" + batch.id + "/rows",
	}
	states := make([]string, 0, len(batch.parts))
	var errs []string
	for _, part := range batch.parts {
		doc := fleetBatchPartDoc{Replica: part.replicaID, BatchID: part.remoteID, Specs: part.specIdx}
		st, err := rt.partStatus(r, part)
		if err != nil {
			doc.State, doc.Error = "failed", err.Error()
			errs = append(errs, fmt.Sprintf("%s: %v", part.replicaID, err))
		} else {
			doc.State, doc.Error = st.State, st.Error
			if st.Error != "" {
				errs = append(errs, fmt.Sprintf("%s: %s", part.replicaID, st.Error))
			}
			out.RowsDone += st.RowsDone
			out.Stats.Specs += st.Stats.Specs
			out.Stats.CellsNeeded += st.Stats.CellsNeeded
			out.Stats.CellsPlanned += st.Stats.CellsPlanned
			out.Stats.CellsCached += st.Stats.CellsCached
			out.Stats.CellsExecuted += st.Stats.CellsExecuted
			out.Stats.WorldsPlanned += st.Stats.WorldsPlanned
			out.Stats.WorldsBuilt += st.Stats.WorldsBuilt
			out.Stats.Observations += st.Stats.Observations
			out.Stats.LegacyPlaybacks += st.Stats.LegacyPlaybacks
			for profile, n := range st.Stats.DeviceCells {
				if out.Stats.DeviceCells == nil {
					out.Stats.DeviceCells = make(map[string]int)
				}
				out.Stats.DeviceCells[profile] += n
			}
			for dialect, n := range st.Stats.ManifestsServed {
				if out.Stats.ManifestsServed == nil {
					out.Stats.ManifestsServed = make(map[string]int)
				}
				out.Stats.ManifestsServed[dialect] += n
			}
		}
		states = append(states, doc.State)
		out.Parts = append(out.Parts, doc)
	}
	out.State = mergeState(states)
	if out.State == "failed" {
		out.Error = strings.Join(errs, "; ")
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	batch := rt.fleetBatchByID(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	rt.cancelParts(batch)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": batch.id, "state": "canceling"})
}

// handleBatchTable proxies one fleet spec's table to the part that ran
// it, translating the fleet index to the replica's local one.
func (rt *Router) handleBatchTable(w http.ResponseWriter, r *http.Request) {
	batch := rt.fleetBatchByID(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	idx, err := strconv.Atoi(r.PathValue("spec"))
	if err != nil || idx < 0 || idx >= len(batch.specs) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("batch has specs 0..%d", len(batch.specs)-1))
		return
	}
	loc := batch.specPart[idx]
	part := batch.parts[loc.part]
	rt.mu.Lock()
	rep := rt.replicas[part.replicaID]
	rt.mu.Unlock()
	if rep == nil {
		writeError(w, http.StatusInternalServerError, "batch part mapped to unknown replica")
		return
	}
	path := fmt.Sprintf("/v1/batches/%s/tables/%d", part.remoteID, loc.idx)
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	resp, err := rt.forward(r.Context(), rep, http.MethodGet, path, nil)
	if err != nil {
		rt.metrics.addProxyError(rep.id)
		rt.noteFailure(rep)
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	relayResponse(w, resp, rep.id)
}

func (rt *Router) handleBatchRows(w http.ResponseWriter, r *http.Request) {
	batch := rt.fleetBatchByID(r.PathValue("id"))
	if batch == nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	if r.URL.Query().Get("stream") != "" {
		rt.streamBatchRows(w, r, batch)
		return
	}
	// Merge each part's backlog: remap spec indexes, order by (part,
	// part-local seq), re-stamp fleet Seq.
	var merged []fleetBatchRow
	for pi, part := range batch.parts {
		rt.mu.Lock()
		rep := rt.replicas[part.replicaID]
		rt.mu.Unlock()
		if rep == nil {
			continue
		}
		resp, err := rt.forward(r.Context(), rep, http.MethodGet, "/v1/batches/"+part.remoteID+"/rows", nil)
		if err != nil {
			rt.metrics.addProxyError(rep.id)
			rt.noteFailure(rep)
			writeError(w, http.StatusBadGateway, fmt.Sprintf("replica %s: %v", rep.id, err))
			return
		}
		var rows []fleetBatchRow
		decErr := json.NewDecoder(resp.Body).Decode(&rows)
		drainBody(resp)
		if decErr != nil {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("replica %s: %v", rep.id, decErr))
			return
		}
		for _, row := range rows {
			if row.Spec < 0 || row.Spec >= len(part.specIdx) {
				continue
			}
			row.Spec = part.specIdx[row.Spec]
			row.Seq = int64(pi)<<32 | row.Seq // sortable (part, local seq) key
			merged = append(merged, row)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	for i := range merged {
		merged[i].Seq = int64(i + 1)
	}
	if merged == nil {
		merged = []fleetBatchRow{}
	}
	writeJSON(w, http.StatusOK, merged)
}

// streamBatchRows fans every part's SSE row stream into one: a reader
// goroutine per part parses frames and remaps spec indexes; the writer
// serializes them, re-stamping a fleet-level Seq (strictly ascending in
// delivery order), and closes with one merged `event: done`.
func (rt *Router) streamBatchRows(w http.ResponseWriter, r *http.Request, batch *fleetBatch) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}

	type partDone struct{ state string }
	rowCh := make(chan fleetBatchRow, 64)
	doneCh := make(chan partDone, len(batch.parts))
	var wg sync.WaitGroup
	for _, part := range batch.parts {
		rt.mu.Lock()
		rep := rt.replicas[part.replicaID]
		rt.mu.Unlock()
		if rep == nil {
			doneCh <- partDone{state: "failed"}
			continue
		}
		wg.Add(1)
		go func(part fleetBatchPart, rep *replica) {
			defer wg.Done()
			state := "failed"
			defer func() { doneCh <- partDone{state: state} }()
			resp, err := rt.forward(r.Context(), rep, http.MethodGet, "/v1/batches/"+part.remoteID+"/rows?stream=1", nil)
			if err != nil {
				rt.metrics.addProxyError(rep.id)
				return
			}
			defer resp.Body.Close()
			scanner := bufio.NewScanner(resp.Body)
			event := ""
			for scanner.Scan() {
				line := scanner.Text()
				switch {
				case strings.HasPrefix(line, "event: "):
					event = strings.TrimPrefix(line, "event: ")
				case strings.HasPrefix(line, "data: "):
					data := strings.TrimPrefix(line, "data: ")
					switch event {
					case "row":
						var row fleetBatchRow
						if json.Unmarshal([]byte(data), &row) != nil {
							return
						}
						if row.Spec < 0 || row.Spec >= len(part.specIdx) {
							continue
						}
						row.Spec = part.specIdx[row.Spec]
						select {
						case rowCh <- row:
						case <-r.Context().Done():
							return
						}
					case "done":
						var fin struct {
							State string `json:"state"`
						}
						if json.Unmarshal([]byte(data), &fin) == nil {
							state = fin.State
						}
						return
					}
				}
			}
		}(part, rep)
	}
	go func() {
		wg.Wait()
		close(rowCh)
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var seq int64
	for row := range rowCh {
		seq++
		row.Seq = seq
		data, err := json.Marshal(row)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: row\ndata: %s\n\n", data); err != nil {
			// Client gone: drain readers via their context and bail.
			for range rowCh {
			}
			return
		}
		flusher.Flush()
	}
	states := make([]string, 0, len(batch.parts))
	for range batch.parts {
		fin := <-doneCh
		states = append(states, fin.state)
	}
	fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", mergeState(states))
	flusher.Flush()
}
