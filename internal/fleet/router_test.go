package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/wideleak"
)

// startFleet boots a self-contained local fleet with a fast health loop
// and tears it down with the test.
func startFleet(t *testing.T, n int, cfg serve.Config) *Local {
	t.Helper()
	f, err := StartLocal(n, cfg, Options{HealthInterval: 100 * time.Millisecond, HealthTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := f.Shutdown(ctx); err != nil {
			t.Logf("fleet shutdown: %v", err)
		}
	})
	return f
}

// fleetSubmit POSTs a spec body to the fleet and decodes the response.
func fleetSubmit(t *testing.T, base, body string, wantStatus int) (fleetSubmitResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/v1/studies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("submit = %d, want %d (body: %s)", resp.StatusCode, wantStatus, buf.String())
	}
	var sub fleetSubmitResponse
	if wantStatus < 400 {
		if err := json.Unmarshal(buf.Bytes(), &sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub, resp.Header
}

// fleetStatus is the slice of a job-status document the tests read.
type fleetStatus struct {
	State        string `json:"state"`
	Error        string `json:"error"`
	Observations int    `json:"observations"`
	WorldCache   string `json:"world_cache"`
}

func getFleetStatus(t *testing.T, base, id string) (fleetStatus, http.Header) {
	t.Helper()
	resp, err := http.Get(base + "/v1/studies/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("status %s = %d (body: %s)", id, resp.StatusCode, buf.String())
	}
	var st fleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp.Header
}

// waitFleetDone polls a fleet job until done, tolerating the transient
// states a failover introduces.
func waitFleetDone(t *testing.T, base, id string, deadline time.Duration) (fleetStatus, http.Header) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for time.Now().Before(limit) {
		st, hdr := getFleetStatus(t, base, id)
		switch st.State {
		case "done":
			return st, hdr
		case "failed":
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return fleetStatus{}, nil
}

func fetchFleetTable(t *testing.T, base, id, format string) []byte {
	t.Helper()
	url := base + "/v1/studies/" + id + "/table"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table %s = %d (body: %s)", id, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// scrape fetches a Prometheus text page and returns one metric's value
// ("" when the line is absent).
func scrape(t *testing.T, url, metric string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, metric+" ") {
			return strings.TrimPrefix(line, metric+" ")
		}
	}
	return ""
}

func worldKeyOf(t *testing.T, spec wideleak.RunSpec) string {
	t.Helper()
	wk, err := spec.WorldKey()
	if err != nil {
		t.Fatal(err)
	}
	return wk
}

// TestRouter_SpillOn429: when the ring owner's queue is full and it
// sheds with 429, the submission spills to the ring successor instead of
// failing, and the fleet metrics attribute both sides.
func TestRouter_SpillOn429(t *testing.T) {
	f := startFleet(t, 2, serve.Config{Workers: 1, QueueSize: 1})
	base := f.URL

	seed := "spill-seed"
	wk := worldKeyOf(t, wideleak.RunSpec{Seed: seed})
	seq := f.Router.Sequence(wk)
	owner, successor := seq[0], seq[1]

	// Fill the owner: one running study (all probes — slow enough to hold
	// the worker) plus one queued subset. Distinct probe sets keep the
	// canonical keys distinct, so nothing coalesces.
	running, hdr := fleetSubmit(t, base,
		fmt.Sprintf(`{"seed": %q, "profiles": ["Showtime"]}`, seed), http.StatusAccepted)
	if got := hdr.Get(HeaderReplica); got != owner {
		t.Fatalf("first submit landed on %s, ring owner is %s", got, owner)
	}
	if got := hdr.Get(HeaderRoute); got != "owner" {
		t.Fatalf("first submit route = %q, want owner", got)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, _ := getFleetStatus(t, base, running.ID)
		if st.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first study never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fleetSubmit(t, base,
		fmt.Sprintf(`{"seed": %q, "profiles": ["Showtime"], "probes": ["q2"]}`, seed), http.StatusAccepted)

	// The owner's queue is now full: the next distinct submission sheds
	// there and must spill to the successor.
	_, hdr = fleetSubmit(t, base,
		fmt.Sprintf(`{"seed": %q, "profiles": ["Showtime"], "probes": ["q3"]}`, seed), http.StatusAccepted)
	if got := hdr.Get(HeaderReplica); got != successor {
		t.Errorf("shed submission landed on %s, want ring successor %s", got, successor)
	}
	if got := hdr.Get(HeaderRoute); got != "spill" {
		t.Errorf("shed submission route = %q, want spill", got)
	}
	if got := f.Router.Metrics().Spilled()[successor]; got != 1 {
		t.Errorf("spilled_total{%s} = %d, want 1", successor, got)
	}
	if got := scrape(t, base+"/metrics", fmt.Sprintf("wideleakfleet_replica_shed_total{replica=%q}", owner)); got != "1" {
		t.Errorf("replica_shed_total{%s} = %q, want 1", owner, got)
	}
}

// TestRouter_CacheAffinity pins the fleet's reason to exist: identical
// requests land on the same replica and hit its tier-1 result cache, and
// a probe-subset variant of the same seed lands there too and hits its
// tier-2 world cache — attributed through the provenance headers and the
// replica's own /metrics.
func TestRouter_CacheAffinity(t *testing.T) {
	f := startFleet(t, 3, serve.Config{})
	base := f.URL

	spec := `{"seed": "affinity", "profiles": ["Showtime"], "probes": ["q2"]}`
	wk := worldKeyOf(t, wideleak.RunSpec{Seed: "affinity"})
	owner := f.Router.OwnerOf(wk)
	ownerRep := f.Replica(owner)
	if ownerRep == nil {
		t.Fatalf("owner %s is not a spawned replica", owner)
	}

	// Cold run: a tier-1 and tier-2 miss on the owner.
	first, hdr := fleetSubmit(t, base, spec, http.StatusAccepted)
	if got := hdr.Get(HeaderReplica); got != owner {
		t.Fatalf("cold submit landed on %s, ring owner is %s", got, owner)
	}
	if got := hdr.Get(serve.HeaderCacheTier); got != "miss" {
		t.Errorf("cold submit %s = %q, want miss", serve.HeaderCacheTier, got)
	}
	st, hdr := waitFleetDone(t, base, first.ID, 120*time.Second)
	if st.WorldCache != "miss" {
		t.Errorf("cold run world_cache = %q, want miss", st.WorldCache)
	}
	if got := hdr.Get(serve.HeaderWorldCache); got != "miss" {
		t.Errorf("cold run %s = %q, want miss", serve.HeaderWorldCache, got)
	}
	if got := scrape(t, ownerRep.URL+"/metrics", "wideleakd_world_cache_misses_total"); got != "1" {
		t.Errorf("owner world_cache_misses = %q, want 1", got)
	}

	// Identical request: tier-1 hit on the same replica, zero new work.
	second, hdr := fleetSubmit(t, base, spec, http.StatusOK)
	if !second.Cached {
		t.Error("identical submit was not served from cache")
	}
	if got := hdr.Get(HeaderReplica); got != owner {
		t.Errorf("identical submit landed on %s, want %s (affinity broken)", got, owner)
	}
	if got := hdr.Get(serve.HeaderCacheTier); got != "hit" {
		t.Errorf("identical submit %s = %q, want hit", serve.HeaderCacheTier, got)
	}
	if st, _ := getFleetStatus(t, base, second.ID); st.Observations != 0 {
		t.Errorf("cached job reports %d observations, want 0", st.Observations)
	}

	// Probe-subset variant: same world key, new result key → same
	// replica, tier-1 miss, tier-2 world-cache hit.
	variant := `{"seed": "affinity", "profiles": ["Showtime"], "probes": ["q3"]}`
	third, hdr := fleetSubmit(t, base, variant, http.StatusAccepted)
	if got := hdr.Get(HeaderReplica); got != owner {
		t.Errorf("variant landed on %s, want %s (tier-2 affinity broken)", got, owner)
	}
	if got := hdr.Get(serve.HeaderCacheTier); got != "miss" {
		t.Errorf("variant submit %s = %q, want miss", serve.HeaderCacheTier, got)
	}
	st, hdr = waitFleetDone(t, base, third.ID, 120*time.Second)
	if st.WorldCache != "hit" {
		t.Errorf("variant world_cache = %q, want hit", st.WorldCache)
	}
	if got := hdr.Get(serve.HeaderWorldCache); got != "hit" {
		t.Errorf("variant %s = %q, want hit", serve.HeaderWorldCache, got)
	}
	if got := scrape(t, ownerRep.URL+"/metrics", "wideleakd_world_cache_hits_total"); got != "1" {
		t.Errorf("owner world_cache_hits = %q, want 1", got)
	}

	// The other replicas saw none of it.
	for _, rep := range f.Replicas {
		if rep.ID == owner {
			continue
		}
		if got := scrape(t, rep.URL+"/metrics", "wideleakd_jobs_submitted_total"); got != "0" {
			t.Errorf("replica %s ran %s jobs for another replica's world", rep.ID, got)
		}
	}
}

// TestRouter_FailoverMidRun is the chaos acceptance test: the default
// study is submitted through the router, its owner replica is killed
// mid-run, and the request must spill to the ring successor and still
// return a byte-identical Table I. The dead replica flips unhealthy and
// receives no further traffic.
func TestRouter_FailoverMidRun(t *testing.T) {
	f := startFleet(t, 3, serve.Config{Workers: 1})
	base := f.URL

	wk := worldKeyOf(t, wideleak.RunSpec{})
	seq := f.Router.Sequence(wk)
	owner, successor := seq[0], seq[1]

	sub, hdr := fleetSubmit(t, base, `{}`, http.StatusAccepted)
	if got := hdr.Get(HeaderReplica); got != owner {
		t.Fatalf("default study landed on %s, ring owner is %s", got, owner)
	}

	// Wait for the study to actually start, then crash its replica.
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, _ := getFleetStatus(t, base, sub.ID)
		if st.State == "running" {
			break
		}
		if st.State == "done" {
			t.Fatal("study finished before the kill — cannot exercise mid-run failover")
		}
		if time.Now().After(deadline) {
			t.Fatal("study never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Replica(owner).Kill()

	st, hdr := waitFleetDone(t, base, sub.ID, 300*time.Second)
	if got := hdr.Get(HeaderReplica); got != successor {
		t.Errorf("failed-over study served by %s, want ring successor %s", got, successor)
	}
	_ = st

	got := fetchFleetTable(t, base, sub.ID, "txt")
	want, err := os.ReadFile(filepath.Join("..", "wideleak", "testdata", "tableI_default.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("failed-over table diverges from golden (%d bytes vs %d)", len(got), len(want))
	}
	if n := f.Router.Metrics().Failovers(); n < 1 {
		t.Errorf("failovers_total = %d, want >= 1", n)
	}

	// The dead replica is unhealthy and stops receiving traffic.
	for _, id := range f.Router.HealthyIDs() {
		if id == owner {
			t.Fatalf("killed replica %s still marked healthy", owner)
		}
	}
	for i := 0; i < 6; i++ {
		_, hdr := fleetSubmit(t, base,
			fmt.Sprintf(`{"seed": "failover-traffic-%d", "profiles": ["Showtime"], "probes": ["q2"]}`, i),
			http.StatusAccepted)
		if got := hdr.Get(HeaderReplica); got == owner {
			t.Errorf("dead replica %s still receiving traffic", owner)
		}
	}
	routed := f.Router.Metrics().Routed()
	if routed[owner] != 1 {
		t.Errorf("routed_total{%s} = %d, want 1 (only the pre-kill submit)", owner, routed[owner])
	}
}
