package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/wideleak"
)

// Fleet-level response headers stamped by the router.
const (
	// HeaderReplica names the replica that served (or is running) the
	// request — the affinity tests assert it.
	HeaderReplica = "X-Fleet-Replica"
	// HeaderRoute is "owner" when the submission landed on its ring
	// owner, "spill" when it walked to a successor.
	HeaderRoute = "X-Fleet-Route"
)

// Options tunes the router. Zero values select the defaults.
type Options struct {
	// VNodes is the virtual-node count per replica on the hash ring
	// (default 128).
	VNodes int
	// LoadFactor bounds per-replica load during routing: a submission
	// skips past an owner whose outstanding proxied requests exceed
	// LoadFactor × fleet average + 1 (default 1.25).
	LoadFactor float64
	// HealthInterval is the active /healthz probe period (default 500ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 1s).
	HealthTimeout time.Duration
	// FailThreshold is how many consecutive failures (active or passive)
	// flip a replica to unhealthy (default 1: any transport error).
	FailThreshold int
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = 128
	}
	if o.LoadFactor <= 1 {
		o.LoadFactor = 1.25
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 500 * time.Millisecond
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 1
	}
	return o
}

// Member names one wideleakd replica for the router.
type Member struct {
	ID  string // stable ring identity ("r0", "r1", ...)
	URL string // base URL, e.g. "http://127.0.0.1:43127"
}

// replica is the router's live view of one member.
type replica struct {
	id   string
	base string

	healthy     atomic.Bool
	consecFails atomic.Int64
	inflight    atomic.Int64 // outstanding proxied requests (the load bound's input)
}

func (r *replica) isHealthy() bool { return r.healthy.Load() }

// fleetJob is the router's record of one submitted study: the canonical
// spec (for failover resubmission) and where it currently lives.
type fleetJob struct {
	id       string // fleet-level ID the client holds
	key      string // canonical RunSpec.Key
	worldKey string // ring address
	specBody []byte // canonical spec JSON, replayed on failover

	mu        sync.Mutex // guards replicaID/remoteID across failovers
	replicaID string
	remoteID  string
}

func (j *fleetJob) location() (replicaID, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replicaID, j.remoteID
}

// Router is the fleet front end: it owns the ring, the replica health
// view, the fleet job table and the fleet metrics. Create with
// NewRouter, expose via Handler, stop with Close.
type Router struct {
	opts    Options
	ring    *ring
	metrics *Metrics

	client       *http.Client // proxying (no overall timeout: SSE streams)
	healthClient *http.Client

	mu       sync.Mutex
	replicas map[string]*replica
	jobs     map[string]*fleetJob
	batches  map[string]*fleetBatch
	seq      int64

	closed chan struct{}
	wg     sync.WaitGroup
}

// NewRouter builds a router over a fixed member set and starts the
// active health loop.
func NewRouter(members []Member, opts Options) (*Router, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: no members")
	}
	opts = opts.withDefaults()
	ids := make([]string, 0, len(members))
	replicas := make(map[string]*replica, len(members))
	for _, m := range members {
		if m.ID == "" || m.URL == "" {
			return nil, fmt.Errorf("fleet: member needs both id and url, got %+v", m)
		}
		if _, dup := replicas[m.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate member id %q", m.ID)
		}
		ids = append(ids, m.ID)
		rep := &replica{id: m.ID, base: strings.TrimRight(m.URL, "/")}
		rep.healthy.Store(true)
		replicas[m.ID] = rep
	}
	rt := &Router{
		opts:     opts,
		ring:     newRing(ids, opts.VNodes),
		replicas: replicas,
		jobs:     make(map[string]*fleetJob),
		batches:  make(map[string]*fleetBatch),
		client: &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConnsPerHost:   64,
			ResponseHeaderTimeout: 2 * time.Minute,
		}},
		healthClient: &http.Client{Timeout: opts.HealthTimeout},
		closed:       make(chan struct{}),
	}
	rt.metrics = newFleetMetrics(rt.healthSnapshot, rt.inflightSnapshot, rt.ring.shares)
	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop. In-flight proxied requests finish on
// their own.
func (rt *Router) Close() {
	select {
	case <-rt.closed:
	default:
		close(rt.closed)
	}
	rt.wg.Wait()
}

// Metrics exposes the fleet instrumentation.
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// Sequence returns the ring-walk order for a world key: element 0 is
// the owner, element 1 the spill successor. Tests assert against it.
func (rt *Router) Sequence(worldKey string) []string { return rt.ring.sequence(worldKey) }

// OwnerOf returns the replica owning a world key.
func (rt *Router) OwnerOf(worldKey string) string { return rt.ring.owner(worldKey) }

// HealthyIDs lists the replicas the router currently considers healthy.
func (rt *Router) HealthyIDs() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var ids []string
	for id, rep := range rt.replicas {
		if rep.isHealthy() {
			ids = append(ids, id)
		}
	}
	return ids
}

func (rt *Router) healthSnapshot() map[string]bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]bool, len(rt.replicas))
	for id, rep := range rt.replicas {
		out[id] = rep.isHealthy()
	}
	return out
}

func (rt *Router) inflightSnapshot() map[string]int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]int64, len(rt.replicas))
	for id, rep := range rt.replicas {
		out[id] = rep.inflight.Load()
	}
	return out
}

// healthLoop actively probes every replica's /healthz on a fixed period.
// Passive observations (transport errors while proxying) flip health
// immediately; the active loop both detects silent death and revives a
// replica that recovered.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.closed:
			return
		case <-ticker.C:
		}
		rt.mu.Lock()
		reps := make([]*replica, 0, len(rt.replicas))
		for _, rep := range rt.replicas {
			reps = append(reps, rep)
		}
		rt.mu.Unlock()
		var wg sync.WaitGroup
		for _, rep := range reps {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				rt.probe(rep)
			}(rep)
		}
		wg.Wait()
	}
}

func (rt *Router) probe(rep *replica) {
	resp, err := rt.healthClient.Get(rep.base + "/healthz")
	if err != nil {
		rt.noteFailure(rep)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rt.noteFailure(rep) // draining replicas answer 503 and stop getting traffic
		return
	}
	rt.noteSuccess(rep)
}

func (rt *Router) noteFailure(rep *replica) {
	if rep.consecFails.Add(1) >= int64(rt.opts.FailThreshold) {
		rep.healthy.Store(false)
	}
}

func (rt *Router) noteSuccess(rep *replica) {
	rep.consecFails.Store(0)
	rep.healthy.Store(true)
}

// Handler returns the fleet HTTP front end. The API mirrors wideleakd's,
// with fleet-level job IDs.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", rt.handleSubmit)
	mux.HandleFunc("GET /v1/studies", rt.handleList)
	mux.HandleFunc("GET /v1/studies/{id}", rt.handleJob(""))
	mux.HandleFunc("DELETE /v1/studies/{id}", rt.handleJob(""))
	mux.HandleFunc("GET /v1/studies/{id}/table", rt.handleJob("/table"))
	mux.HandleFunc("GET /v1/studies/{id}/events", rt.handleJob("/events"))
	mux.HandleFunc("POST /v1/batches", rt.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batches/{id}", rt.handleBatchStatus)
	mux.HandleFunc("DELETE /v1/batches/{id}", rt.handleBatchCancel)
	mux.HandleFunc("GET /v1/batches/{id}/rows", rt.handleBatchRows)
	mux.HandleFunc("GET /v1/batches/{id}/tables/{spec}", rt.handleBatchTable)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	return rt.timed(mux)
}

// timed wraps the mux with the fleet latency histogram.
func (rt *Router) timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		elapsed := time.Since(start).Seconds()
		rt.metrics.observeRequest(elapsed)
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/studies") {
			rt.metrics.observeSubmit(elapsed)
		}
	})
}

// remoteSubmit is the slice of wideleakd's submit response the router
// needs to mint its own.
type remoteSubmit struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

// fleetSubmitResponse is the router's wire shape for POST /v1/studies —
// wideleakd's, with the fleet job ID substituted.
type fleetSubmitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Replica   string `json:"replica"`
	StatusURL string `json:"status_url"`
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec wideleak.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	canonical, err := spec.Canonicalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := canonical.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	worldKey, err := canonical.WorldKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := json.Marshal(canonical)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	rep, remote, hdr, status, routeErr := rt.submitToReplica(r.Context(), worldKey, body)
	switch routeErr {
	case nil:
	case errAllShed:
		rt.metrics.addShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "every replica shed the submission")
		return
	case errNoReplica:
		rt.metrics.addUnroutable()
		writeError(w, http.StatusServiceUnavailable, "no healthy replica")
		return
	default:
		// A non-shed replica response the fleet cannot improve on (e.g. a
		// 400 the local canonicalization missed); relay it.
		writeError(w, status, routeErr.Error())
		return
	}

	rt.mu.Lock()
	rt.seq++
	job := &fleetJob{
		id:        fmt.Sprintf("f%06d-%.8s", rt.seq, key),
		key:       key,
		worldKey:  worldKey,
		specBody:  body,
		replicaID: rep.id,
		remoteID:  remote.ID,
	}
	rt.jobs[job.id] = job
	rt.mu.Unlock()

	owner := rt.ring.owner(worldKey)
	route := "owner"
	if rep.id != owner {
		route = "spill"
	}
	rt.metrics.addRouted(rep.id, rep.id != owner)
	copyProvenanceHeaders(w.Header(), hdr)
	w.Header().Set(HeaderReplica, rep.id)
	w.Header().Set(HeaderRoute, route)
	writeJSON(w, status, fleetSubmitResponse{
		ID: job.id, State: remote.State, Cached: remote.Cached, Coalesced: remote.Coalesced,
		Replica: rep.id, StatusURL: "/v1/studies/" + job.id,
	})
}

var (
	errAllShed   = fmt.Errorf("fleet: every candidate replica shed")
	errNoReplica = fmt.Errorf("fleet: no healthy replica")
)

// submitToReplica routes a canonical spec onto the ring: the world key's
// owner first, then — on transport failure, 429 shed, or 503 drain —
// each successor in ring order. Bounded load skips an owner whose
// outstanding requests exceed LoadFactor × fleet average + 1.
func (rt *Router) submitToReplica(ctx context.Context, worldKey string, body []byte) (*replica, remoteSubmit, http.Header, int, error) {
	candidates := rt.submitOrder(worldKey)
	if len(candidates) == 0 {
		return nil, remoteSubmit{}, nil, 0, errNoReplica
	}
	sawShed := false
	for _, rep := range candidates {
		resp, err := rt.forward(ctx, rep, http.MethodPost, "/v1/studies", bytes.NewReader(body))
		if err != nil {
			rt.metrics.addProxyError(rep.id)
			rt.noteFailure(rep)
			continue
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			drainBody(resp)
			rt.metrics.addReplicaShed(rep.id)
			sawShed = true
			continue
		case resp.StatusCode == http.StatusServiceUnavailable:
			drainBody(resp)
			rt.noteFailure(rep) // draining: let the health loop confirm
			continue
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
			var remote remoteSubmit
			err := json.NewDecoder(resp.Body).Decode(&remote)
			hdr := resp.Header
			status := resp.StatusCode
			drainBody(resp)
			if err != nil || remote.ID == "" {
				rt.noteFailure(rep)
				continue
			}
			rt.noteSuccess(rep)
			return rep, remote, hdr, status, nil
		default:
			// The replica answered coherently but negatively (400, ...).
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e)
			status := resp.StatusCode
			drainBody(resp)
			if e.Error == "" {
				e.Error = http.StatusText(status)
			}
			return nil, remoteSubmit{}, nil, status, fmt.Errorf("%s", e.Error)
		}
	}
	if sawShed {
		return nil, remoteSubmit{}, nil, 0, errAllShed
	}
	return nil, remoteSubmit{}, nil, 0, errNoReplica
}

// submitOrder builds the attempt order for a world key: healthy replicas
// in ring-walk order, rotated past any over-loaded prefix (bounded-load
// consistent hashing); the skipped prefix stays reachable as a last
// resort. With no healthy replica at all, every replica is tried in ring
// order — a passive success revives one.
func (rt *Router) submitOrder(worldKey string) []*replica {
	seq := rt.ring.sequence(worldKey)
	rt.mu.Lock()
	healthy := make([]*replica, 0, len(seq))
	all := make([]*replica, 0, len(seq))
	for _, id := range seq {
		rep := rt.replicas[id]
		all = append(all, rep)
		if rep.isHealthy() {
			healthy = append(healthy, rep)
		}
	}
	rt.mu.Unlock()
	if len(healthy) == 0 {
		return all
	}
	var total int64
	for _, rep := range healthy {
		total += rep.inflight.Load()
	}
	limit := int64(rt.opts.LoadFactor*float64(total)/float64(len(healthy))) + 1
	start := 0
	for i, rep := range healthy {
		if rep.inflight.Load() <= limit {
			start = i
			break
		}
	}
	order := make([]*replica, 0, len(healthy))
	order = append(order, healthy[start:]...)
	return append(order, healthy[:start]...)
}

// forward performs one proxied request against a replica, accounting
// its in-flight load.
func (rt *Router) forward(ctx context.Context, rep *replica, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, rep.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rep.inflight.Add(1)
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.inflight.Add(-1)
		return nil, err
	}
	// The caller owns resp.Body; wrap Close to release the load slot when
	// the body is fully consumed or abandoned.
	resp.Body = &accountedBody{ReadCloser: resp.Body, release: func() { rep.inflight.Add(-1) }}
	return resp, nil
}

// accountedBody releases a replica load slot exactly once on Close.
type accountedBody struct {
	io.ReadCloser
	once    sync.Once
	release func()
}

func (b *accountedBody) Close() error {
	err := b.ReadCloser.Close()
	b.once.Do(b.release)
	return err
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// handleJob proxies one fleet job's status/table/events/cancel to the
// replica currently running it, failing over to a ring successor when
// that replica is gone.
func (rt *Router) handleJob(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.mu.Lock()
		job := rt.jobs[r.PathValue("id")]
		rt.mu.Unlock()
		if job == nil {
			writeError(w, http.StatusNotFound, "no such study")
			return
		}
		// One failover attempt per request: if the job's replica is gone,
		// resubmit its spec to the ring successor, then proxy there.
		for attempt := 0; attempt < 2; attempt++ {
			repID, remoteID := job.location()
			rt.mu.Lock()
			rep := rt.replicas[repID]
			rt.mu.Unlock()
			if rep == nil {
				writeError(w, http.StatusInternalServerError, "job mapped to unknown replica")
				return
			}
			if !rep.isHealthy() {
				if !rt.failover(r.Context(), job, w) {
					return
				}
				continue
			}
			path := "/v1/studies/" + remoteID + suffix
			if r.URL.RawQuery != "" {
				path += "?" + r.URL.RawQuery
			}
			resp, err := rt.forward(r.Context(), rep, r.Method, path, nil)
			if err != nil {
				if r.Context().Err() != nil {
					return // client went away, not replica death
				}
				rt.metrics.addProxyError(rep.id)
				rt.noteFailure(rep)
				if !rt.failover(r.Context(), job, w) {
					return
				}
				continue
			}
			relayResponse(w, resp, rep.id)
			return
		}
		writeError(w, http.StatusBadGateway, "replica lost and failover did not converge")
	}
}

// failover reroutes a job whose replica died: its canonical spec is
// resubmitted through the ring (the dead replica is unhealthy, so the
// walk lands on its successor) and the job is remapped. Determinism
// makes the rerun byte-identical, so the client never notices beyond
// latency. Reports false after writing an error response.
func (rt *Router) failover(ctx context.Context, job *fleetJob, w http.ResponseWriter) bool {
	job.mu.Lock()
	defer job.mu.Unlock()
	// Another request may have failed this job over already; if its
	// current replica is healthy again, just retry against it.
	rt.mu.Lock()
	cur := rt.replicas[job.replicaID]
	rt.mu.Unlock()
	if cur != nil && cur.isHealthy() {
		return true
	}
	rep, remote, _, _, err := rt.submitToReplica(ctx, job.worldKey, job.specBody)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("replica lost and failover failed: %v", err))
		return false
	}
	job.replicaID = rep.id
	job.remoteID = remote.ID
	rt.metrics.addFailover()
	rt.metrics.addRouted(rep.id, rep.id != rt.ring.owner(job.worldKey))
	return true
}

// relayResponse copies a replica response to the client, flushing
// eagerly for event streams so SSE stays live through the router.
func relayResponse(w http.ResponseWriter, resp *http.Response, replicaID string) {
	defer resp.Body.Close()
	copyProvenanceHeaders(w.Header(), resp.Header)
	for _, h := range []string{"Content-Type", "Cache-Control", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(HeaderReplica, replicaID)
	w.WriteHeader(resp.StatusCode)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		flushCopy(w, resp.Body)
		return
	}
	io.Copy(w, resp.Body)
}

// flushCopy streams body to the client, flushing after every chunk.
func flushCopy(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// copyProvenanceHeaders forwards the daemon's cache-attribution headers.
func copyProvenanceHeaders(dst, src http.Header) {
	for _, h := range []string{serve.HeaderCacheTier, serve.HeaderWorldCache} {
		if v := src.Get(h); v != "" {
			dst.Set(h, v)
		}
	}
}

// replicaStudies is one replica's slice of the fleet-wide listing.
type replicaStudies struct {
	Replica string          `json:"replica"`
	Error   string          `json:"error,omitempty"`
	Studies json.RawMessage `json:"studies,omitempty"`
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	reps := make([]*replica, 0, len(rt.replicas))
	for _, id := range rt.ring.ids {
		reps = append(reps, rt.replicas[id])
	}
	rt.mu.Unlock()
	out := make([]replicaStudies, 0, len(reps))
	for _, rep := range reps {
		entry := replicaStudies{Replica: rep.id}
		if !rep.isHealthy() {
			entry.Error = "unhealthy"
			out = append(out, entry)
			continue
		}
		resp, err := rt.forward(r.Context(), rep, http.MethodGet, "/v1/studies", nil)
		if err != nil {
			rt.noteFailure(rep)
			entry.Error = err.Error()
			out = append(out, entry)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			entry.Error = fmt.Sprintf("status %d", resp.StatusCode)
		} else {
			entry.Studies = raw
		}
		out = append(out, entry)
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, rt.metrics.Render())
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	healthy := len(rt.HealthyIDs())
	rt.mu.Lock()
	total := len(rt.replicas)
	rt.mu.Unlock()
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"status":   map[bool]string{true: "ok", false: "no healthy replica"}[healthy > 0],
		"healthy":  healthy,
		"replicas": total,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
