// Package fleet shards the wideleakd study service across N replicas
// behind one HTTP front end. The router consistent-hashes each request's
// world identity (wideleak.RunSpec.WorldKey — seed + fault schedule)
// onto a virtual-node hash ring, so every request for one world lands on
// the same replica and turns N replicas into N independent warm cache
// sets: identical requests are tier-1 hits, probe-subset variants of a
// warmed seed are tier-2 world-snapshot hits, and no cache entry is
// duplicated across the fleet.
//
// Routing is bounded-load consistent hashing with spill-on-failure: when
// the ring owner is unhealthy, over its load bound, or sheds with 429,
// the request walks to the next distinct replica on the ring instead of
// failing. Replica health is tracked actively (periodic /healthz probes)
// and passively (transport errors while proxying), and a replica lost
// mid-run is transparently failed over: the router remembers every job's
// canonical spec and resubmits it to the ring successor — determinism
// guarantees the rerun's bytes are identical.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over replica IDs with virtual nodes.
// Membership is fixed at construction; health is the router's concern
// (the ring answers "who owns this key and in what order do we spill",
// not "who is alive").
type ring struct {
	ids    []string    // replica IDs, construction order
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int // index into ids
}

// newRing hashes vnodes virtual points per replica onto the ring.
func newRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	r := &ring{ids: ids}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", id, v)), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256. Cheap non-cryptographic hashes (FNV) cluster badly on the
// short, near-identical vnode labels, skewing ownership by multiples;
// SHA-256 keeps every replica's share within a few percent of fair.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// sequence returns every replica ID in ring-walk order starting at the
// key's owner: element 0 owns the key, element 1 is the spill successor,
// and so on. Every replica appears exactly once.
func (r *ring) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, len(r.ids))
	seen := make([]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(seq) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, r.ids[p.replica])
		}
	}
	return seq
}

// owner returns the replica that owns a key.
func (r *ring) owner(key string) string {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// shares reports each replica's fraction of the keyspace — the arc mass
// it owns. Exported through the wideleakfleet_ring_share gauge so
// imbalance is visible before it becomes a hot replica.
func (r *ring) shares() map[string]float64 {
	shares := make(map[string]float64, len(r.ids))
	if len(r.points) == 0 {
		return shares
	}
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		// Arc (prev, p.hash] belongs to p; the wrap-around arc spans the
		// 2^64 boundary.
		arc := p.hash - prev // uint64 arithmetic wraps correctly
		shares[r.ids[p.replica]] += float64(arc) / (1 << 64)
	}
	return shares
}
