package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/wideleak"
)

// freshTableJSON runs one spec from scratch (no fleet, no caches) and
// encodes its table as JSON — the ground truth fanned-out batches must
// reproduce byte-for-byte.
func freshTableJSON(t *testing.T, spec wideleak.RunSpec) []byte {
	t.Helper()
	c, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	study, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	table, err := study.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	out, err := table.Encode("json")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func getFleetBatchStatus(t *testing.T, base, id string) fleetBatchStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/batches/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("batch status %s = %d (body: %s)", id, resp.StatusCode, buf.String())
	}
	var st fleetBatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFleetBatchDone(t *testing.T, base, id string) fleetBatchStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getFleetBatchStatus(t, base, id)
		switch st.State {
		case "done":
			return st
		case "failed", "canceled":
			t.Fatalf("batch %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("batch %s never finished", id)
	return fleetBatchStatus{}
}

// TestRouter_BatchFanout: a batch whose specs span two worlds is split
// by ring ownership — each sub-batch runs on the replica where its
// world's caches are warm — and the merged status, rows, tables and
// SSE stream translate everything back to fleet spec indexes.
func TestRouter_BatchFanout(t *testing.T) {
	f := startFleet(t, 2, serve.Config{Workers: 1})
	base := f.URL

	// Two seeds with different ring owners force a real fan-out.
	seedA := "fan-a"
	ownerA := f.Router.OwnerOf(worldKeyOf(t, wideleak.RunSpec{Seed: seedA}))
	seedB := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("fan-b%d", i)
		if f.Router.OwnerOf(worldKeyOf(t, wideleak.RunSpec{Seed: cand})) != ownerA {
			seedB = cand
			break
		}
	}
	if seedB == "" {
		t.Fatal("no candidate seed hashed to the second replica")
	}

	// Specs 0 and 2 share seed A's world (spec 2 is a probe subset of
	// spec 0, so its cells dedup); spec 1 lives on seed B's owner. The
	// interleaved order exercises the index remapping.
	specs := []wideleak.RunSpec{
		{Seed: seedA, Profiles: []string{"Showtime", "Netflix"}, Probes: []string{"q2", "q3"}},
		{Seed: seedB, Profiles: []string{"Showtime"}, Probes: []string{"q2"}},
		{Seed: seedA, Profiles: []string{"Showtime"}, Probes: []string{"q2"}},
	}
	body, err := json.Marshal(map[string]any{"specs": specs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		Parts int    `json:"parts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit = %d", resp.StatusCode)
	}
	if sub.Parts != 2 {
		t.Fatalf("batch split into %d parts, want 2 (one per world owner)", sub.Parts)
	}

	st := waitFleetBatchDone(t, base, sub.ID)
	if st.RowsDone != 4 {
		t.Errorf("rows done = %d, want 4", st.RowsDone)
	}
	if len(st.Parts) != 2 {
		t.Fatalf("status parts = %d, want 2", len(st.Parts))
	}
	// Every spec landed on its world's owner, and no spec was dropped.
	placed := make(map[int]string)
	for _, part := range st.Parts {
		for _, idx := range part.Specs {
			placed[idx] = part.Replica
		}
	}
	if len(placed) != 3 {
		t.Fatalf("parts cover %d specs, want 3 (%v)", len(placed), placed)
	}
	for i, spec := range specs {
		owner := f.Router.OwnerOf(worldKeyOf(t, wideleak.RunSpec{Seed: spec.Seed}))
		if placed[i] != owner {
			t.Errorf("spec %d placed on %s, want world owner %s", i, placed[i], owner)
		}
	}
	// Specs 0 and 2 shared one world and their q2 cells on owner A.
	if st.Stats.WorldsBuilt != 2 {
		t.Errorf("worlds built = %d, want 2 (one per part)", st.Stats.WorldsBuilt)
	}
	if st.Stats.CellsPlanned >= st.Stats.CellsNeeded {
		t.Errorf("cells planned = %d, needed = %d: co-world specs did not dedup", st.Stats.CellsPlanned, st.Stats.CellsNeeded)
	}

	// Tables come back under fleet indexes, byte-identical to fresh runs.
	for i, spec := range specs {
		resp, err := http.Get(fmt.Sprintf("%s/v1/batches/%s/tables/%d?format=json", base, sub.ID, i))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("table %d = %d (body: %s)", i, resp.StatusCode, buf.String())
		}
		if want := freshTableJSON(t, spec); !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("spec %d: fanned-out table differs from fresh run", i)
		}
	}

	// Merged rows: every (spec, app) exactly once, fleet Seq 1..4.
	resp, err = http.Get(base + "/v1/batches/" + sub.ID + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	var rows []fleetBatchRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 4 {
		t.Fatalf("merged rows = %d, want 4", len(rows))
	}
	want := map[string]bool{"0/Showtime": true, "0/Netflix": true, "1/Showtime": true, "2/Showtime": true}
	for i, row := range rows {
		if row.Seq != int64(i+1) {
			t.Errorf("row %d Seq = %d, want %d", i, row.Seq, i+1)
		}
		key := fmt.Sprintf("%d/%s", row.Spec, row.App)
		if !want[key] {
			t.Errorf("unexpected or duplicate row %s", key)
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Errorf("rows missing: %v", want)
	}

	// The SSE fan-in replays the merged backlog with ascending fleet Seq
	// and one final done frame.
	resp, err = http.Get(base + "/v1/batches/" + sub.ID + "/rows?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var streamed int
	doneState := ""
	event := ""
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "row" {
				var row fleetBatchRow
				if err := json.Unmarshal([]byte(data), &row); err != nil {
					t.Fatalf("bad row frame %q: %v", data, err)
				}
				streamed++
				if row.Seq != int64(streamed) {
					t.Errorf("stream frame %d Seq = %d", streamed, row.Seq)
				}
			} else if event == "done" {
				var fin struct {
					State string `json:"state"`
				}
				json.Unmarshal([]byte(data), &fin)
				doneState = fin.State
			}
		}
	}
	if streamed != 4 {
		t.Errorf("streamed %d rows, want 4", streamed)
	}
	if doneState != "done" {
		t.Errorf("stream done state = %q, want done", doneState)
	}

	if got := scrape(t, base+"/metrics", "wideleakfleet_batches_total"); got != "1" {
		t.Errorf("wideleakfleet_batches_total = %q, want 1", got)
	}
}
