package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"repro/internal/serve"
)

// LocalReplica is one in-process wideleakd child: a full serve.Server
// behind its own TCP listener on 127.0.0.1:0. The fleet daemon's -spawn
// mode, the e2e suites and the load harness all use it to stand up a
// self-contained fleet with no external processes.
type LocalReplica struct {
	ID  string
	URL string

	server  *serve.Server
	httpSrv *http.Server
	ln      net.Listener
}

// SpawnLocal boots n replicas, each with its own queue, worker pool and
// cache tiers, listening on distinct random ports. IDs are "r0".."rN-1".
func SpawnLocal(n int, cfg serve.Config) ([]*LocalReplica, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: spawn count must be positive, got %d", n)
	}
	replicas := make([]*LocalReplica, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, r := range replicas {
				r.Kill()
			}
			return nil, err
		}
		srv := serve.New(cfg)
		rep := &LocalReplica{
			ID:      fmt.Sprintf("r%d", i),
			URL:     "http://" + ln.Addr().String(),
			server:  srv,
			httpSrv: &http.Server{Handler: srv.Handler()},
			ln:      ln,
		}
		go rep.httpSrv.Serve(ln)
		replicas = append(replicas, rep)
	}
	return replicas, nil
}

// Server exposes the replica's serve.Server (tests prewarm through it).
func (r *LocalReplica) Server() *serve.Server { return r.server }

// Kill tears the replica down abruptly — the chaos suites' stand-in for
// a crashed process. Open connections are closed mid-flight and every
// running job is cancelled; nothing drains gracefully.
func (r *LocalReplica) Kill() {
	r.httpSrv.Close()
	// Cancel whatever was running so an orphaned study stops burning CPU
	// alongside the failover rerun. An already-expired context makes
	// Shutdown cancel in-flight jobs instead of draining them.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	go r.server.Shutdown(ctx)
}

// Shutdown drains the replica gracefully: the listener stops accepting,
// accepted jobs finish, the worker pool exits.
func (r *LocalReplica) Shutdown(ctx context.Context) error {
	httpErr := r.httpSrv.Shutdown(ctx)
	if err := r.server.Shutdown(ctx); err != nil {
		return err
	}
	return httpErr
}

// Local is a self-contained fleet: n spawned replicas behind a router
// listening on its own random port.
type Local struct {
	URL      string
	Router   *Router
	Replicas []*LocalReplica

	httpSrv *http.Server
	ln      net.Listener
}

// StartLocal spawns n local replicas and mounts a router over them on
// 127.0.0.1:0.
func StartLocal(n int, cfg serve.Config, opts Options) (*Local, error) {
	replicas, err := SpawnLocal(n, cfg)
	if err != nil {
		return nil, err
	}
	members := make([]Member, len(replicas))
	for i, rep := range replicas {
		members[i] = Member{ID: rep.ID, URL: rep.URL}
	}
	router, err := NewRouter(members, opts)
	if err != nil {
		for _, rep := range replicas {
			rep.Kill()
		}
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		router.Close()
		for _, rep := range replicas {
			rep.Kill()
		}
		return nil, err
	}
	f := &Local{
		URL:      "http://" + ln.Addr().String(),
		Router:   router,
		Replicas: replicas,
		httpSrv:  &http.Server{Handler: router.Handler()},
		ln:       ln,
	}
	go f.httpSrv.Serve(ln)
	return f, nil
}

// Replica returns the spawned replica with the given ID, nil if unknown.
func (f *Local) Replica(id string) *LocalReplica {
	for _, rep := range f.Replicas {
		if rep.ID == id {
			return rep
		}
	}
	return nil
}

// Shutdown drains the fleet: router listener first, then every replica.
func (f *Local) Shutdown(ctx context.Context) error {
	err := f.httpSrv.Shutdown(ctx)
	f.Router.Close()
	for _, rep := range f.Replicas {
		if serr := rep.Shutdown(ctx); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
