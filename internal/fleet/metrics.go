package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metrics is the router's fleet-level instrumentation, rendered in the
// Prometheus text exposition format at /metrics. Per-replica counters
// carry a replica label; the latency histograms cover every proxied
// request (and submits separately, since those are the routed unit).
type Metrics struct {
	mu sync.Mutex

	routed      map[string]int64 // replica → submits landed there
	spilled     map[string]int64 // replica → submits that spilled onto it (≠ ring owner)
	replicaShed map[string]int64 // replica → 429s it answered
	proxyErrors map[string]int64 // replica → transport failures talking to it
	batchParts  map[string]int64 // replica → batch partitions landed there
	shed        int64            // submits the fleet rejected: every candidate shed
	unroutable  int64            // requests with no healthy replica to try
	failovers   int64            // jobs resubmitted after their replica was lost
	batches     int64            // batch submissions fanned out across the ring

	requestSeconds *histogram // every proxied request, router-observed wall time
	submitSeconds  *histogram // POST /v1/studies only

	// live state sampled at render time
	replicaHealthy  func() map[string]bool
	replicaInflight func() map[string]int64
	ringShares      func() map[string]float64
}

func newFleetMetrics(healthy func() map[string]bool, inflight func() map[string]int64, shares func() map[string]float64) *Metrics {
	return &Metrics{
		routed:      make(map[string]int64),
		spilled:     make(map[string]int64),
		replicaShed: make(map[string]int64),
		proxyErrors: make(map[string]int64),
		batchParts:  make(map[string]int64),
		// Warm fleet hits are sub-millisecond; a failover rerun of a cold
		// ten-app study reaches tens of seconds.
		requestSeconds:  newHistogram(.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30),
		submitSeconds:   newHistogram(.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30),
		replicaHealthy:  healthy,
		replicaInflight: inflight,
		ringShares:      shares,
	}
}

func (m *Metrics) addRouted(replica string, spill bool) {
	m.mu.Lock()
	m.routed[replica]++
	if spill {
		m.spilled[replica]++
	}
	m.mu.Unlock()
}

func (m *Metrics) addReplicaShed(replica string) { m.inc(m.replicaShed, replica) }
func (m *Metrics) addProxyError(replica string)  { m.inc(m.proxyErrors, replica) }
func (m *Metrics) addBatchPart(replica string)   { m.inc(m.batchParts, replica) }

func (m *Metrics) addBatch() {
	m.mu.Lock()
	m.batches++
	m.mu.Unlock()
}

func (m *Metrics) inc(field map[string]int64, replica string) {
	m.mu.Lock()
	field[replica]++
	m.mu.Unlock()
}

func (m *Metrics) addShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

func (m *Metrics) addUnroutable() {
	m.mu.Lock()
	m.unroutable++
	m.mu.Unlock()
}

func (m *Metrics) addFailover() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

// Failovers reports how many jobs were resubmitted after replica loss.
func (m *Metrics) Failovers() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// Routed reports per-replica landed submits (copy).
func (m *Metrics) Routed() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.routed))
	for k, v := range m.routed {
		out[k] = v
	}
	return out
}

// Spilled reports per-replica submits that landed off-owner (copy).
func (m *Metrics) Spilled() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.spilled))
	for k, v := range m.spilled {
		out[k] = v
	}
	return out
}

func (m *Metrics) observeRequest(seconds float64) {
	m.mu.Lock()
	m.requestSeconds.observe(seconds)
	m.mu.Unlock()
}

func (m *Metrics) observeSubmit(seconds float64) {
	m.mu.Lock()
	m.submitSeconds.observe(seconds)
	m.mu.Unlock()
}

// Render produces the Prometheus text exposition. Output is stable:
// families in fixed order, label values sorted.
func (m *Metrics) Render() string {
	healthy := m.replicaHealthy()
	inflight := m.replicaInflight()
	shares := m.ringShares()

	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	labeled := func(name, help string, values map[string]int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, replica := range sortedLabelKeys(values) {
			fmt.Fprintf(&b, "%s{replica=%q} %d\n", name, replica, values[replica])
		}
	}
	labeled("wideleakfleet_routed_total", "Study submissions landed on each replica.", m.routed)
	labeled("wideleakfleet_spilled_total", "Submissions that spilled onto this replica instead of the ring owner.", m.spilled)
	labeled("wideleakfleet_replica_shed_total", "429 responses observed from each replica.", m.replicaShed)
	labeled("wideleakfleet_proxy_errors_total", "Transport failures talking to each replica.", m.proxyErrors)
	labeled("wideleakfleet_batch_parts_total", "Batch partitions (one per distinct world owner) landed on each replica.", m.batchParts)

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("wideleakfleet_shed_total", "Submissions the fleet rejected because every candidate replica shed.", m.shed)
	counter("wideleakfleet_unroutable_total", "Requests with no healthy replica to route to.", m.unroutable)
	counter("wideleakfleet_failovers_total", "Jobs resubmitted to a ring successor after their replica was lost.", m.failovers)
	counter("wideleakfleet_batches_total", "Batch submissions fanned out across the ring by world key.", m.batches)

	fmt.Fprintf(&b, "# HELP wideleakfleet_replica_healthy Replica health as seen by the router (1 healthy, 0 not).\n# TYPE wideleakfleet_replica_healthy gauge\n")
	for _, replica := range sortedBoolKeys(healthy) {
		v := 0
		if healthy[replica] {
			v = 1
		}
		fmt.Fprintf(&b, "wideleakfleet_replica_healthy{replica=%q} %d\n", replica, v)
	}
	fmt.Fprintf(&b, "# HELP wideleakfleet_replica_inflight Proxied requests currently outstanding per replica.\n# TYPE wideleakfleet_replica_inflight gauge\n")
	for _, replica := range sortedLabelKeys(inflight) {
		fmt.Fprintf(&b, "wideleakfleet_replica_inflight{replica=%q} %d\n", replica, inflight[replica])
	}
	fmt.Fprintf(&b, "# HELP wideleakfleet_ring_share Fraction of the hash-ring keyspace owned by each replica.\n# TYPE wideleakfleet_ring_share gauge\n")
	for _, replica := range sortedFloatKeys(shares) {
		fmt.Fprintf(&b, "wideleakfleet_ring_share{replica=%q} %.4f\n", replica, shares[replica])
	}

	m.requestSeconds.render(&b, "wideleakfleet_request_seconds", "Router-observed wall time of every proxied request.")
	m.submitSeconds.render(&b, "wideleakfleet_submit_seconds", "Router-observed wall time of study submissions (routing included).")
	return b.String()
}

func sortedLabelKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedBoolKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// histogram is a fixed-bucket Prometheus histogram; callers hold the
// Metrics lock around observe and render (same shape as the daemon's —
// the packages are intentionally dependency-free of each other's
// internals).
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.count++
	for i, bound := range h.bounds {
		if v <= bound {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

func (h *histogram) render(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cumulative := uint64(0)
	for i, bound := range h.bounds {
		cumulative += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, trimFloat(bound), cumulative)
	}
	cumulative += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cumulative)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(b, "%s_count %d\n", name, h.count)
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
