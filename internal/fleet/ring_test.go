package fleet

import (
	"fmt"
	"math"
	"testing"
)

func TestRing_DeterministicOwner(t *testing.T) {
	a := newRing([]string{"r0", "r1", "r2"}, 128)
	b := newRing([]string{"r0", "r1", "r2"}, 128)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("ring ownership is not deterministic for %q: %s vs %s", key, a.owner(key), b.owner(key))
		}
	}
}

func TestRing_SequenceCoversAllOnce(t *testing.T) {
	r := newRing([]string{"r0", "r1", "r2", "r3"}, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("seq-%d", i)
		seq := r.sequence(key)
		if len(seq) != 4 {
			t.Fatalf("sequence(%q) = %v, want all 4 replicas", key, seq)
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("sequence(%q) repeats %s: %v", key, id, seq)
			}
			seen[id] = true
		}
		if seq[0] != r.owner(key) {
			t.Fatalf("sequence(%q)[0] = %s, owner = %s", key, seq[0], r.owner(key))
		}
	}
}

// TestRing_Balance: with 128 vnodes, no replica of three owns less than
// 15% of 3000 uniformly named keys — gross imbalance would concentrate
// the fleet's cache and defeat the sharding.
func TestRing_Balance(t *testing.T) {
	r := newRing([]string{"r0", "r1", "r2"}, 128)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("balance-key-%d", i))]++
	}
	for id, c := range counts {
		if frac := float64(c) / n; frac < 0.15 {
			t.Errorf("replica %s owns only %.1f%% of keys: %v", id, frac*100, counts)
		}
	}
}

func TestRing_SharesSumToOne(t *testing.T) {
	r := newRing([]string{"r0", "r1", "r2"}, 128)
	sum := 0.0
	for _, share := range r.shares() {
		if share <= 0 {
			t.Errorf("non-positive ring share: %v", r.shares())
		}
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ring shares sum to %v, want 1", sum)
	}
}

func TestRing_DisjointFromKeyDistribution(t *testing.T) {
	// The arc-mass gauge should roughly agree with empirical ownership.
	r := newRing([]string{"r0", "r1"}, 128)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("dist-%d", i))]++
	}
	for id, share := range r.shares() {
		empirical := float64(counts[id]) / n
		if math.Abs(share-empirical) > 0.1 {
			t.Errorf("replica %s: arc share %.3f vs empirical %.3f", id, share, empirical)
		}
	}
}
