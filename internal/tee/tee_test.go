package tee

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// echoTrustlet is a minimal trusted app used to exercise the SMC gateway.
type echoTrustlet struct {
	name  string
	calls int
}

func (e *echoTrustlet) Name() string { return e.name }

func (e *echoTrustlet) Invoke(ctx *Context, cmd uint32, input []byte) ([]byte, error) {
	e.calls++
	switch cmd {
	case 1: // echo
		return append([]byte("echo:"), input...), nil
	case 2: // store
		ctx.StorePersistent("obj", input)
		return nil, nil
	case 3: // load
		return ctx.LoadPersistent("obj")
	case 4: // alloc secure memory and stash a secret there
		r, err := ctx.Alloc("secret", 64)
		if err != nil {
			return nil, err
		}
		if err := r.Write(0, input); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown cmd %d", cmd)
	}
}

func TestLoadAndInvoke(t *testing.T) {
	w := NewWorld("test-device")
	app := &echoTrustlet{name: "widevine"}
	if err := w.Load(app); err != nil {
		t.Fatal(err)
	}
	if !w.Loaded("widevine") {
		t.Error("Loaded = false after Load")
	}
	out, err := w.Invoke("widevine", 1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hello" {
		t.Errorf("Invoke output = %q", out)
	}
	if app.calls != 1 {
		t.Errorf("trustlet saw %d calls", app.calls)
	}
}

func TestLoadDuplicate(t *testing.T) {
	w := NewWorld("d")
	if err := w.Load(&echoTrustlet{name: "widevine"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Load(&echoTrustlet{name: "widevine"}); !errors.Is(err, ErrAlreadyLoaded) {
		t.Errorf("duplicate Load error = %v, want ErrAlreadyLoaded", err)
	}
}

func TestInvokeUnknownTrustlet(t *testing.T) {
	w := NewWorld("d")
	if _, err := w.Invoke("nope", 1, nil); !errors.Is(err, ErrNoSuchTrustlet) {
		t.Errorf("error = %v, want ErrNoSuchTrustlet", err)
	}
	if w.Loaded("nope") {
		t.Error("Loaded(nope) = true")
	}
}

func TestSecureStoragePerTrustletNamespace(t *testing.T) {
	w := NewWorld("d")
	a := &echoTrustlet{name: "a"}
	b := &echoTrustlet{name: "b"}
	if err := w.Load(a); err != nil {
		t.Fatal(err)
	}
	if err := w.Load(b); err != nil {
		t.Fatal(err)
	}

	if _, err := w.Invoke("a", 2, []byte("a-secret")); err != nil {
		t.Fatal(err)
	}
	got, err := w.Invoke("a", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a-secret" {
		t.Errorf("trustlet a loaded %q", got)
	}

	// Trustlet b must not see a's object.
	if _, err := w.Invoke("b", 3, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-trustlet load error = %v, want ErrNotFound", err)
	}
}

func TestProvisionStorage(t *testing.T) {
	w := NewWorld("pixel")
	w.ProvisionStorage("widevine", "keybox", []byte{1, 2, 3})
	app := &echoTrustlet{name: "widevine"}
	if err := w.Load(app); err != nil {
		t.Fatal(err)
	}
	// The trustlet reads the factory-provisioned object via its context.
	lt := w.trustlets["widevine"]
	data, err := lt.ctx.LoadPersistent("keybox")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Errorf("provisioned data = %v", data)
	}
}

func TestStorageReturnsCopies(t *testing.T) {
	w := NewWorld("d")
	app := &echoTrustlet{name: "widevine"}
	if err := w.Load(app); err != nil {
		t.Fatal(err)
	}
	original := []byte("sensitive")
	if _, err := w.Invoke("widevine", 2, original); err != nil {
		t.Fatal(err)
	}
	original[0] = 'X' // caller mutates its buffer after the call

	got, err := w.Invoke("widevine", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "sensitive" {
		t.Errorf("storage affected by caller mutation: %q", got)
	}
	got[0] = 'Y' // mutate returned copy
	got2, err := w.Invoke("widevine", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "sensitive" {
		t.Errorf("storage affected by reader mutation: %q", got2)
	}
}

// The isolation property: nothing outside the package can reach secure
// memory. We verify the world offers no exported accessor returning the
// space, and that secrets stored by a trustlet are unreachable through the
// public API surface (compile-time property; here we assert the only
// exported read path, Invoke, is mediated by the trustlet).
func TestSecureMemoryNotExposed(t *testing.T) {
	w := NewWorld("d")
	app := &echoTrustlet{name: "widevine"}
	if err := w.Load(app); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Invoke("widevine", 4, []byte("KEY-MATERIAL")); err != nil {
		t.Fatal(err)
	}
	// The secret lives in w.secureMem; scanning it requires the unexported
	// field. The public API gives no path to it — asserted by the fact the
	// following is the complete exported method set we can call:
	_ = w.Loaded("widevine")
	w.ProvisionStorage("x", "y", nil)
	if _, err := w.Invoke("widevine", 99, nil); err == nil {
		t.Error("unknown command should error")
	}
	// Direct check (white-box, same package): the secret IS in secure
	// memory — i.e. the trustlet really stored it there, and only package
	// internals can see it.
	if got := len(w.secureMem.Scan([]byte("KEY-MATERIAL"))); got != 1 {
		t.Errorf("secure memory scan (white-box) found %d hits, want 1", got)
	}
}
