// Package tee simulates a TrustZone-style Trusted Execution Environment:
// a secure world hosting trustlets behind an SMC-like command interface,
// with secure memory and rollback-protected secure storage.
//
// The isolation property that matters for the paper is enforced by
// construction: the secure world's memory space is unexported, so no code
// outside this package (in particular internal/monitor and internal/attack)
// can obtain it or scan it. The L1 OEMCrypto engine runs as a trustlet here,
// which is exactly why the keybox-recovery attack of §IV-D fails on L1
// devices while succeeding on L3 ones.
package tee

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/procmem"
)

// Errors returned by the SMC gateway.
var (
	// ErrNoSuchTrustlet is returned when invoking an unloaded trustlet.
	ErrNoSuchTrustlet = errors.New("tee: no such trustlet")
	// ErrAlreadyLoaded is returned when loading a duplicate trustlet name.
	ErrAlreadyLoaded = errors.New("tee: trustlet already loaded")
	// ErrNotFound is returned by secure storage for a missing object.
	ErrNotFound = errors.New("tee: secure storage object not found")
)

// Trustlet is a trusted application living in the secure world. Invoke is
// the only channel between worlds: an opaque command number plus opaque
// bytes in and out, mirroring how the Widevine trustlet is driven through
// liboemcrypto.
type Trustlet interface {
	// Name identifies the trustlet (e.g. "widevine").
	Name() string
	// Invoke executes one command inside the secure world.
	Invoke(ctx *Context, cmd uint32, input []byte) ([]byte, error)
}

// World is the secure world of one device.
type World struct {
	mu        sync.RWMutex
	trustlets map[string]*loadedTrustlet
	storage   map[string][]byte
	secureMem *procmem.Space // deliberately never exposed
}

type loadedTrustlet struct {
	app Trustlet
	ctx *Context
}

// NewWorld boots an empty secure world.
func NewWorld(deviceName string) *World {
	return &World{
		trustlets: make(map[string]*loadedTrustlet),
		storage:   make(map[string][]byte),
		secureMem: procmem.NewSpace("tee:" + deviceName),
	}
}

// Context is the secure-world execution context handed to a trustlet. It
// grants access to secure memory and secure storage, scoped by trustlet
// name so trusted apps cannot read each other's objects.
type Context struct {
	world *World
	app   string
}

// Alloc reserves secure memory. Regions allocated here are invisible to
// normal-world monitors.
func (c *Context) Alloc(tag string, size int) (*procmem.Region, error) {
	return c.world.secureMem.Alloc(c.app+":"+tag, size)
}

// Free releases a secure memory region.
func (c *Context) Free(r *procmem.Region) {
	c.world.secureMem.Free(r)
}

// StorePersistent writes an object to secure storage under the trustlet's
// namespace (keyboxes, provisioned RSA keys).
func (c *Context) StorePersistent(name string, data []byte) {
	c.world.mu.Lock()
	defer c.world.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.storage[c.app+"/"+name] = cp
}

// LoadPersistent reads an object from the trustlet's secure storage.
func (c *Context) LoadPersistent(name string) ([]byte, error) {
	c.world.mu.RLock()
	defer c.world.mu.RUnlock()
	data, ok := c.world.storage[c.app+"/"+name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Load installs a trustlet into the secure world.
func (w *World) Load(app Trustlet) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	name := app.Name()
	if _, dup := w.trustlets[name]; dup {
		return fmt.Errorf("%w: %s", ErrAlreadyLoaded, name)
	}
	w.trustlets[name] = &loadedTrustlet{
		app: app,
		ctx: &Context{world: w, app: name},
	}
	return nil
}

// Invoke is the SMC gateway: the normal world calls a trustlet command with
// opaque bytes. This is the ONLY way data crosses the world boundary.
func (w *World) Invoke(trustlet string, cmd uint32, input []byte) ([]byte, error) {
	w.mu.RLock()
	lt, ok := w.trustlets[trustlet]
	w.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTrustlet, trustlet)
	}
	return lt.app.Invoke(lt.ctx, cmd, input)
}

// Loaded reports whether the named trustlet is installed.
func (w *World) Loaded(trustlet string) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.trustlets[trustlet]
	return ok
}

// ProvisionStorage lets the factory (device bring-up in internal/device)
// seed a trustlet's secure storage before boot — how keyboxes reach L1
// devices without ever existing in normal-world memory.
func (w *World) ProvisionStorage(trustlet, name string, data []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	w.storage[trustlet+"/"+name] = cp
}
