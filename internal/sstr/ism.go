// Package sstr models Microsoft Smooth Streaming `.ism` manifests — the
// XML manifest dialect legacy OTT stacks (and manifesto-style translators)
// speak. A SmoothStreamingMedia document carries StreamIndex elements (one
// per adaptation set) with QualityLevel children (one per representation)
// and ProtectionHeader boxes for DRM descriptors.
//
// Simplification vs. the full spec (documented in DESIGN.md §5h): Smooth
// Streaming has no period concept, so the dialect is single-period only —
// Marshal refuses multi-period manifests, and segment addressing uses the
// canonical URL/template carriers (Chunks / FragmentTemplate elements)
// rather than timestamp-based fragment requests. The package is a pure
// wire format: it never imports internal/dash — internal/manifest owns the
// conversion.
package sstr

import (
	"bytes"
	"encoding/xml"
	"errors"
)

// ErrNotSSTR is returned when the input is not a SmoothStreamingMedia
// document.
var ErrNotSSTR = errors.New("sstr: not a Smooth Streaming manifest")

// rootMarker identifies the document type before full decoding.
const rootMarker = "<SmoothStreamingMedia"

// Manifest is one title's SmoothStreamingMedia document.
type Manifest struct {
	XMLName          xml.Name      `xml:"SmoothStreamingMedia"`
	MajorVersion     int           `xml:"MajorVersion,attr"`
	MinorVersion     int           `xml:"MinorVersion,attr"`
	Duration         string        `xml:"Duration,attr,omitempty"`
	Profiles         string        `xml:"Profiles,attr,omitempty"`
	PresentationType string        `xml:"PresentationType,attr,omitempty"`
	PeriodID         string        `xml:"PeriodID,attr,omitempty"`
	StreamIndexes    []StreamIndex `xml:"StreamIndex"`
}

// StreamIndex is one adaptation set: a typed group of quality levels.
type StreamIndex struct {
	Type          string         `xml:"Type,attr"`
	MimeType      string         `xml:"MimeType,attr,omitempty"`
	Language      string         `xml:"Language,attr,omitempty"`
	Protection    *Protection    `xml:"Protection,omitempty"`
	QualityLevels []QualityLevel `xml:"QualityLevel"`
}

// Protection wraps the DRM descriptor list.
type Protection struct {
	Headers []ProtectionHeader `xml:"ProtectionHeader"`
}

// ProtectionHeader is one DRM descriptor box: SystemID carries the scheme
// URI verbatim, Data the base64 init payload (PSSH) as element text.
type ProtectionHeader struct {
	SystemID string `xml:"SystemID,attr"`
	Value    string `xml:"Value,attr,omitempty"`
	KeyID    string `xml:"KeyID,attr,omitempty"`
	Data     string `xml:",chardata"`
}

// QualityLevel is one representation.
type QualityLevel struct {
	Index      string            `xml:"Index,attr"`
	Bitrate    uint32            `xml:"Bitrate,attr,omitempty"`
	MaxWidth   uint16            `xml:"MaxWidth,attr,omitempty"`
	MaxHeight  uint16            `xml:"MaxHeight,attr,omitempty"`
	FourCC     string            `xml:"FourCC,attr,omitempty"`
	Url        string            `xml:"Url,attr,omitempty"`
	Protection *Protection       `xml:"Protection,omitempty"`
	Chunks     *ChunkList        `xml:"ChunkList,omitempty"`
	Template   *FragmentTemplate `xml:"FragmentTemplate,omitempty"`
}

// ChunkList carries explicit segment addressing (the canonical model's
// SegmentList).
type ChunkList struct {
	Init   string  `xml:"Init,attr,omitempty"`
	Chunks []Chunk `xml:"Chunk"`
}

// Chunk is one media segment reference.
type Chunk struct {
	Src string `xml:"src,attr"`
}

// FragmentTemplate carries template segment addressing (the canonical
// model's SegmentTemplate).
type FragmentTemplate struct {
	Initialization string `xml:"Initialization,attr,omitempty"`
	Media          string `xml:"Media,attr,omitempty"`
	StartNumber    uint32 `xml:"StartNumber,attr,omitempty"`
	Count          uint32 `xml:"Count,attr,omitempty"`
}

// Sniff reports whether the bytes look like a Smooth Streaming manifest.
func Sniff(b []byte) bool {
	return bytes.Contains(b, []byte(rootMarker))
}

// Parse decodes one SmoothStreamingMedia document.
func Parse(b []byte) (*Manifest, error) {
	if !Sniff(b) {
		return nil, ErrNotSSTR
	}
	var m Manifest
	if err := xml.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Marshal renders the manifest as an indented XML document.
func (m *Manifest) Marshal() ([]byte, error) {
	if m.MajorVersion == 0 {
		m.MajorVersion = 2
	}
	body, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}
