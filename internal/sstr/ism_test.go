package sstr

import (
	"reflect"
	"strings"
	"testing"
)

// sampleManifest builds a manifest shaped like what the manifest dialect
// produces for a packaged title: protected video ladder, one audio
// language, one subtitle track.
func sampleManifest() *Manifest {
	return &Manifest{
		MajorVersion:     2,
		MinorVersion:     1,
		Duration:         "PT2M",
		Profiles:         "urn:mpeg:dash:profile:isoff-on-demand:2011",
		PresentationType: "static",
		PeriodID:         "p0",
		StreamIndexes: []StreamIndex{
			{
				Type:     "video",
				MimeType: "video/mp4",
				Protection: &Protection{Headers: []ProtectionHeader{{
					SystemID: "urn:uuid:edef8ba9-79d6-4ace-a3c8-27dcd51d21ed",
					Data:     "cHNzaC1kYXRh",
				}}},
				QualityLevels: []QualityLevel{
					{
						Index:     "v-540p",
						Bitrate:   2_000_000,
						MaxWidth:  960,
						MaxHeight: 540,
						FourCC:    "avc1.640028",
						Url:       "movie-1/video/540p/",
						Protection: &Protection{Headers: []ProtectionHeader{{
							SystemID: "urn:mpeg:dash:mp4protection:2011",
							Value:    "cenc",
							KeyID:    "00112233445566778899aabbccddeeff",
						}}},
						Chunks: &ChunkList{
							Init:   "init.mp4",
							Chunks: []Chunk{{Src: "seg1.m4s"}, {Src: "seg2.m4s"}},
						},
					},
					{
						Index:     "v-1080p",
						Bitrate:   6_000_000,
						MaxWidth:  1920,
						MaxHeight: 1080,
						FourCC:    "avc1.640028",
						Url:       "movie-1/video/1080p/",
						Template: &FragmentTemplate{
							Initialization: "init.mp4",
							Media:          "seg$Number$.m4s",
							StartNumber:    1,
							Count:          2,
						},
					},
				},
			},
			{
				Type:     "audio",
				MimeType: "audio/mp4",
				Language: "en",
				QualityLevels: []QualityLevel{{
					Index:   "a-en",
					Bitrate: 128_000,
					Url:     "movie-1/audio/en/",
					Chunks:  &ChunkList{Init: "init.mp4", Chunks: []Chunk{{Src: "seg1.m4s"}}},
				}},
			},
			{
				Type:     "text",
				MimeType: "text/vtt",
				Language: "fr",
				QualityLevels: []QualityLevel{{
					Index:   "s-fr",
					Bitrate: 1000,
					Chunks:  &ChunkList{Chunks: []Chunk{{Src: "movie-1/subs/fr.vtt"}}},
				}},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sampleManifest()
	raw, err := want.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got.XMLName.Local = "" // ignore the decoder's name echo
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v\nwire:\n%s", got, want, raw)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := sampleManifest()
	a, _ := m.Marshal()
	b, _ := m.Marshal()
	if string(a) != string(b) {
		t.Error("Marshal not deterministic")
	}
}

func TestSniff(t *testing.T) {
	raw, _ := sampleManifest().Marshal()
	if !Sniff(raw) {
		t.Error("Sniff rejected a marshalled manifest")
	}
	for _, bad := range []string{"", "#EXTM3U", "<MPD></MPD>", "SmoothStreamingMedia"} {
		if Sniff([]byte(bad)) {
			t.Errorf("Sniff accepted %q", bad)
		}
	}
}

func TestParseRejectsNonSSTR(t *testing.T) {
	if _, err := Parse([]byte("<MPD></MPD>")); err != ErrNotSSTR {
		t.Errorf("Parse(non-sstr) err = %v, want ErrNotSSTR", err)
	}
	if _, err := Parse(nil); err != ErrNotSSTR {
		t.Errorf("Parse(nil) err = %v, want ErrNotSSTR", err)
	}
	if _, err := Parse([]byte(rootMarker + " <unclosed")); err == nil {
		t.Error("Parse(truncated xml) must error")
	}
}

func TestMarshalDefaultsVersion(t *testing.T) {
	m := &Manifest{}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(raw), `MajorVersion="2"`) {
		t.Errorf("unversioned manifest did not default MajorVersion=2:\n%s", raw)
	}
}

func TestProtectionHeaderDataSurvivesIndent(t *testing.T) {
	// The base64 payload is element chardata; MarshalIndent must not
	// corrupt it.
	raw, _ := sampleManifest().Marshal()
	m, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := strings.TrimSpace(m.StreamIndexes[0].Protection.Headers[0].Data)
	if got != "cHNzaC1kYXRh" {
		t.Errorf("ProtectionHeader data = %q, want cHNzaC1kYXRh", got)
	}
}
