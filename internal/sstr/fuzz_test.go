package sstr

import (
	"testing"
	"testing/quick"
)

// The manifest parser consumes intercepted network bytes and CDM dumps —
// attacker-adjacent input that must never panic.
func TestParse_NeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Parse panicked on %q: %v", data, r)
				ok = false
			}
		}()
		_, _ = Parse(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzParse is the native fuzz target over the same attack surface: run
// via `make fuzz` (short budget) or `go test -fuzz FuzzParse ./internal/sstr`.
func FuzzParse(f *testing.F) {
	valid, err := sampleManifest().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(rootMarker + ">"))
	f.Add([]byte(rootMarker + ` MajorVersion="2"><StreamIndex Type="video"/></SmoothStreamingMedia>`))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), "<extra></extra>"...))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-marshal.
		if _, err := m.Marshal(); err != nil {
			t.Errorf("parsed manifest does not re-marshal: %v", err)
		}
	})
}

// Mutations of a valid manifest exercise deeper decoder paths.
func TestParse_MutatedManifestNeverPanics(t *testing.T) {
	valid, err := sampleManifest().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(edits []uint16) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("mutated manifest panicked: %v", r)
				ok = false
			}
		}()
		doc := append([]byte(nil), valid...)
		for _, e := range edits {
			if len(doc) == 0 {
				break
			}
			doc[int(e)%len(doc)] ^= byte(e >> 8)
		}
		if m, err := Parse(doc); err == nil {
			_, _ = m.Marshal()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
