package staticscan_test

import (
	"reflect"
	"testing"

	"repro/internal/staticscan"
)

func TestScan(t *testing.T) {
	refs := []string{
		"Landroid/media/MediaDrm;->openSession",
		"Landroid/media/MediaDrm;->getKeyRequest",
		"Landroid/media/MediaDrm;->openSession", // duplicate
		"Landroid/media/MediaCrypto;-><init>",
		"Lcom/google/android/exoplayer2/drm/DefaultDrmSessionManager;-><init>",
		"Lcom/example/app/MainActivity;->onCreate",
	}
	f := staticscan.Scan(refs)
	if !f.ReferencesMediaDrm || !f.ReferencesMediaCrypto || !f.UsesExoPlayerDRM {
		t.Errorf("findings = %+v", f)
	}
	if !f.SuggestsWidevine() {
		t.Error("SuggestsWidevine = false")
	}
	want := []string{"openSession", "getKeyRequest"}
	if !reflect.DeepEqual(f.MediaDrmCalls, want) {
		t.Errorf("MediaDrmCalls = %v, want %v", f.MediaDrmCalls, want)
	}
}

func TestScan_NoDRM(t *testing.T) {
	f := staticscan.Scan([]string{"Lcom/example/Game;->render"})
	if f.SuggestsWidevine() || f.ReferencesMediaDrm || f.UsesExoPlayerDRM {
		t.Errorf("findings = %+v", f)
	}
}

func TestScan_MediaDrmOnlyIsInconclusive(t *testing.T) {
	// MediaDrm without MediaCrypto (e.g. identity-only use) does not
	// suggest content protection.
	f := staticscan.Scan([]string{"Landroid/media/MediaDrm;->getPropertyString"})
	if f.SuggestsWidevine() {
		t.Error("MediaDrm-only surface suggested Widevine playback")
	}
}

func TestScan_MalformedReference(t *testing.T) {
	f := staticscan.Scan([]string{"Landroid/media/MediaDrm;garbage-no-arrow"})
	if !f.ReferencesMediaDrm {
		t.Error("class match lost")
	}
	if len(f.MediaDrmCalls) != 0 {
		t.Errorf("calls = %v, want none for malformed ref", f.MediaDrmCalls)
	}
}

func TestScan_Empty(t *testing.T) {
	if f := staticscan.Scan(nil); f.SuggestsWidevine() {
		t.Error("empty scan suggested Widevine")
	}
}
