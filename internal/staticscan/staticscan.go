// Package staticscan models the static half of the paper's two-pronged
// methodology (§IV-B): decompile each OTT app's classes and scan for
// references to the Android DRM framework (MediaDrm, MediaCrypto) and to
// the ExoPlayer DRM integration. Static hits are treated as hypotheses
// only — apps ship dead code — and the study confirms them dynamically
// with the CDM hooks, "to err on the side of soundness".
package staticscan

import "strings"

// Class-reference patterns, in the decompiled "Lpackage/Class;->method"
// convention of smali output.
const (
	MediaDrmClass    = "Landroid/media/MediaDrm;"
	MediaCryptoClass = "Landroid/media/MediaCrypto;"
	ExoPlayerDRM     = "Lcom/google/android/exoplayer2/drm/"
)

// Findings summarizes one app's decompiled DRM surface.
type Findings struct {
	// ReferencesMediaDrm / ReferencesMediaCrypto report framework usage.
	ReferencesMediaDrm    bool
	ReferencesMediaCrypto bool
	// UsesExoPlayerDRM reports usage of the recommended playback library's
	// DRM session management.
	UsesExoPlayerDRM bool
	// MediaDrmCalls lists the specific MediaDrm methods referenced.
	MediaDrmCalls []string
}

// Scan inspects a decompiled class/method reference listing.
func Scan(references []string) Findings {
	var f Findings
	seen := make(map[string]bool)
	for _, ref := range references {
		switch {
		case strings.HasPrefix(ref, MediaDrmClass):
			f.ReferencesMediaDrm = true
			if method, ok := methodOf(ref); ok && !seen[method] {
				seen[method] = true
				f.MediaDrmCalls = append(f.MediaDrmCalls, method)
			}
		case strings.HasPrefix(ref, MediaCryptoClass):
			f.ReferencesMediaCrypto = true
		case strings.HasPrefix(ref, ExoPlayerDRM):
			f.UsesExoPlayerDRM = true
		}
	}
	return f
}

// SuggestsWidevine reports whether the static surface alone suggests the
// app drives the DRM framework (the hypothesis dynamic monitoring then
// verifies).
func (f Findings) SuggestsWidevine() bool {
	return f.ReferencesMediaDrm && f.ReferencesMediaCrypto
}

func methodOf(ref string) (string, bool) {
	i := strings.Index(ref, "->")
	if i < 0 {
		return "", false
	}
	return ref[i+2:], true
}
