package dash

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func sampleMPD() *MPD {
	return &MPD{
		Profiles: "urn:mpeg:dash:profile:isoff-on-demand:2011",
		Type:     "static",
		Duration: "PT2M",
		Periods: []Period{{
			ID: "p0",
			AdaptationSets: []AdaptationSet{
				{
					ContentType: ContentVideo,
					MimeType:    "video/mp4",
					ContentProtections: []ContentProtection{{
						SchemeIDURI: WidevineSchemeIDURI,
						PSSH:        "cHNzaA==",
					}},
					Representations: []Representation{
						{
							ID: "v540", Bandwidth: 1_200_000, Width: 960, Height: 540,
							ContentProtections: []ContentProtection{{
								SchemeIDURI: MP4ProtectionSchemeIDURI,
								Value:       "cenc",
								DefaultKID:  "11111111111111111111111111111111",
							}},
							BaseURL: "video/540/",
							SegmentList: &SegmentList{
								Initialization: &SegmentURL{SourceURL: "init.mp4"},
								SegmentURLs:    []SegmentURL{{SourceURL: "seg1.m4s"}, {SourceURL: "seg2.m4s"}},
							},
						},
						{
							ID: "v1080", Bandwidth: 5_000_000, Width: 1920, Height: 1080,
							ContentProtections: []ContentProtection{{
								SchemeIDURI: MP4ProtectionSchemeIDURI,
								Value:       "cenc",
								DefaultKID:  "22222222222222222222222222222222",
							}},
							BaseURL: "video/1080/",
							SegmentList: &SegmentList{
								Initialization: &SegmentURL{SourceURL: "init.mp4"},
								SegmentURLs:    []SegmentURL{{SourceURL: "seg1.m4s"}},
							},
						},
					},
				},
				{
					ContentType: ContentAudio,
					MimeType:    "audio/mp4",
					Lang:        "en",
					Representations: []Representation{{
						ID: "a-en", Bandwidth: 128_000,
						BaseURL: "audio/en/",
						SegmentList: &SegmentList{
							Initialization: &SegmentURL{SourceURL: "init.mp4"},
							SegmentURLs:    []SegmentURL{{SourceURL: "seg1.m4s"}},
						},
					}},
				},
				{
					ContentType: ContentSubtitle,
					MimeType:    "text/vtt",
					Lang:        "en",
					Representations: []Representation{{
						ID: "s-en", Bandwidth: 1000,
						BaseURL:     "subs/en/",
						SegmentList: &SegmentList{SegmentURLs: []SegmentURL{{SourceURL: "subs.vtt"}}},
					}},
				},
			},
		}},
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	m := sampleMPD()
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(wire), "<?xml") {
		t.Error("missing xml header")
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	// XMLName gets populated on unmarshal; normalize before comparing.
	got.XMLName = m.XMLName
	if !reflect.DeepEqual(m, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestParse_Invalid(t *testing.T) {
	if _, err := Parse([]byte("not xml at all <")); err == nil {
		t.Error("want parse error")
	}
}

func TestFindAdaptationSet(t *testing.T) {
	m := sampleMPD()
	v, err := m.FindAdaptationSet(ContentVideo, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Representations) != 2 {
		t.Errorf("video reps = %d", len(v.Representations))
	}
	if !v.Protected() {
		t.Error("video set not protected")
	}

	a, err := m.FindAdaptationSet(ContentAudio, "en")
	if err != nil {
		t.Fatal(err)
	}
	if a.Protected() {
		t.Error("clear audio set reported protected")
	}

	if _, err := m.FindAdaptationSet(ContentAudio, "fr"); !errors.Is(err, ErrNoAdaptationSet) {
		t.Errorf("missing lang err = %v", err)
	}
	if _, err := m.FindAdaptationSet("imaginary", ""); !errors.Is(err, ErrNoAdaptationSet) {
		t.Errorf("missing type err = %v", err)
	}
}

func TestAllURLs(t *testing.T) {
	urls := sampleMPD().AllURLs()
	want := []string{
		"video/540/init.mp4", "video/540/seg1.m4s", "video/540/seg2.m4s",
		"video/1080/init.mp4", "video/1080/seg1.m4s",
		"audio/en/init.mp4", "audio/en/seg1.m4s",
		"subs/en/subs.vtt",
	}
	if !reflect.DeepEqual(urls, want) {
		t.Errorf("AllURLs = %v", urls)
	}
}

func TestKeyUsage(t *testing.T) {
	usage := sampleMPD().KeyUsage()
	if len(usage) != 4 {
		t.Fatalf("usage rows = %d", len(usage))
	}
	byRep := make(map[string]KeyIDUsage, len(usage))
	for _, u := range usage {
		byRep[u.RepresentationID] = u
	}
	if byRep["v540"].KID != "11111111111111111111111111111111" {
		t.Errorf("v540 kid = %q", byRep["v540"].KID)
	}
	if byRep["v1080"].KID != "22222222222222222222222222222222" {
		t.Errorf("v1080 kid = %q", byRep["v1080"].KID)
	}
	if byRep["v540"].KID == byRep["v1080"].KID {
		t.Error("per-resolution keys collapsed")
	}
	if byRep["a-en"].KID != "" {
		t.Errorf("clear audio kid = %q", byRep["a-en"].KID)
	}
	if byRep["s-en"].KID != "" {
		t.Errorf("subtitle kid = %q", byRep["s-en"].KID)
	}
}

func TestKeyUsage_SetLevelKIDFallback(t *testing.T) {
	m := &MPD{Periods: []Period{{AdaptationSets: []AdaptationSet{{
		ContentType: ContentAudio,
		ContentProtections: []ContentProtection{{
			SchemeIDURI: MP4ProtectionSchemeIDURI,
			DefaultKID:  "33333333333333333333333333333333",
		}},
		Representations: []Representation{{ID: "a1"}},
	}}}}}
	usage := m.KeyUsage()
	if len(usage) != 1 || usage[0].KID != "33333333333333333333333333333333" {
		t.Errorf("set-level kid fallback = %+v", usage)
	}
}

func TestRepresentationKID_Empty(t *testing.T) {
	r := Representation{ContentProtections: []ContentProtection{{SchemeIDURI: WidevineSchemeIDURI}}}
	if r.KID() != "" {
		t.Errorf("KID = %q, want empty", r.KID())
	}
}

func TestSegmentTemplateExpand(t *testing.T) {
	tpl := &SegmentTemplate{
		Initialization: "$RepresentationID$/init.mp4",
		Media:          "$RepresentationID$/seg-$Number$.m4s",
		SegmentCount:   3,
	}
	list := tpl.Expand("v540")
	if list.Initialization.SourceURL != "v540/init.mp4" {
		t.Errorf("init = %q", list.Initialization.SourceURL)
	}
	want := []string{"v540/seg-1.m4s", "v540/seg-2.m4s", "v540/seg-3.m4s"}
	if len(list.SegmentURLs) != 3 {
		t.Fatalf("segments = %d", len(list.SegmentURLs))
	}
	for i, w := range want {
		if list.SegmentURLs[i].SourceURL != w {
			t.Errorf("segment %d = %q, want %q", i, list.SegmentURLs[i].SourceURL, w)
		}
	}
}

func TestSegmentTemplate_StartNumber(t *testing.T) {
	tpl := &SegmentTemplate{Media: "s$Number$.m4s", StartNumber: 10, SegmentCount: 2}
	list := tpl.Expand("x")
	if list.Initialization != nil {
		t.Error("unexpected init entry")
	}
	if list.SegmentURLs[0].SourceURL != "s10.m4s" || list.SegmentURLs[1].SourceURL != "s11.m4s" {
		t.Errorf("segments = %+v", list.SegmentURLs)
	}
}

func TestRepresentationSegments(t *testing.T) {
	explicit := Representation{SegmentList: &SegmentList{SegmentURLs: []SegmentURL{{SourceURL: "a"}}}}
	if got := explicit.Segments(); len(got.SegmentURLs) != 1 {
		t.Error("explicit list not returned")
	}
	templated := Representation{ID: "r", SegmentTemplate: &SegmentTemplate{Media: "r-$Number$.m4s", SegmentCount: 2}}
	if got := templated.Segments(); len(got.SegmentURLs) != 2 {
		t.Error("template not expanded")
	}
	var neither Representation
	if neither.Segments() != nil {
		t.Error("no addressing should yield nil")
	}
}

func TestSegmentTemplate_XMLRoundTrip(t *testing.T) {
	m := &MPD{Profiles: "p", Type: "static", Periods: []Period{{AdaptationSets: []AdaptationSet{{
		ContentType: ContentVideo,
		Representations: []Representation{{
			ID: "v1", Bandwidth: 100,
			SegmentTemplate: &SegmentTemplate{
				Initialization: "$RepresentationID$/init.mp4",
				Media:          "$RepresentationID$/$Number$.m4s",
				StartNumber:    5,
				SegmentCount:   2,
			},
		}},
	}}}}}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	tpl := got.Periods[0].AdaptationSets[0].Representations[0].SegmentTemplate
	if tpl == nil || tpl.StartNumber != 5 || tpl.Media != "$RepresentationID$/$Number$.m4s" {
		t.Errorf("template roundtrip = %+v", tpl)
	}
}
