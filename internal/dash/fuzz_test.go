package dash

import (
	"testing"
	"testing/quick"
)

// The manifest parser consumes intercepted network bytes and CDM dumps —
// attacker-adjacent input that must never panic.
func TestParse_NeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Parse panicked on %q: %v", data, r)
				ok = false
			}
		}()
		_, _ = Parse(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// validManifest marshals a representative manifest covering the protected
// and URL-carrying decoder paths — the fuzz seed and mutation base.
func validManifest(t interface{ Fatal(...any) }) []byte {
	valid, err := (&MPD{
		Profiles: "p", Type: "static",
		Periods: []Period{{AdaptationSets: []AdaptationSet{{
			ContentType: ContentVideo,
			ContentProtections: []ContentProtection{{
				SchemeIDURI: WidevineSchemeIDURI, DefaultKID: "00112233445566778899aabbccddeeff",
			}},
			Representations: []Representation{{
				ID: "v", Bandwidth: 1, Width: 960, Height: 540,
				BaseURL: "v/",
				SegmentList: &SegmentList{
					Initialization: &SegmentURL{SourceURL: "init.mp4"},
					SegmentURLs:    []SegmentURL{{SourceURL: "s1.m4s"}},
				},
			}},
		}}}},
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return valid
}

// FuzzParse is the native fuzz target over the same attack surface: run
// via `make fuzz` (short budget) or `go test -fuzz FuzzParse ./internal/dash`.
func FuzzParse(f *testing.F) {
	valid := validManifest(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("<MPD>"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), "<extra></extra>"...))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must survive the analysis helpers.
		m.AllURLs()
		m.KeyUsage()
		_, _ = m.FindAdaptationSet(ContentVideo, "")
		if _, err := m.Marshal(); err != nil {
			t.Errorf("parsed manifest does not re-marshal: %v", err)
		}
	})
}

// Mutations of a valid manifest exercise deeper decoder paths.
func TestParse_MutatedManifestNeverPanics(t *testing.T) {
	valid, err := (&MPD{
		Profiles: "p", Type: "static",
		Periods: []Period{{AdaptationSets: []AdaptationSet{{
			ContentType: ContentVideo,
			ContentProtections: []ContentProtection{{
				SchemeIDURI: WidevineSchemeIDURI, DefaultKID: "00112233445566778899aabbccddeeff",
			}},
			Representations: []Representation{{
				ID: "v", Bandwidth: 1, Width: 960, Height: 540,
				BaseURL: "v/",
				SegmentList: &SegmentList{
					Initialization: &SegmentURL{SourceURL: "init.mp4"},
					SegmentURLs:    []SegmentURL{{SourceURL: "s1.m4s"}},
				},
			}},
		}}}},
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(edits []uint16) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("mutated manifest panicked: %v", r)
				ok = false
			}
		}()
		doc := append([]byte(nil), valid...)
		for _, e := range edits {
			if len(doc) == 0 {
				break
			}
			doc[int(e)%len(doc)] ^= byte(e >> 8)
		}
		if m, err := Parse(doc); err == nil {
			// Exercise the analysis helpers on whatever parsed.
			m.AllURLs()
			m.KeyUsage()
			_, _ = m.FindAdaptationSet(ContentVideo, "")
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
