package wvcrypto

import (
	"bytes"
	"crypto/rsa"
	"sync"
	"testing"
)

var (
	testKeyOnce sync.Once
	testKey     *rsa.PrivateKey
	testKeyErr  error
)

// sharedTestKey generates one deterministic 2048-bit RSA key for the whole
// package's tests; generation is the slow part so it is done once.
func sharedTestKey(t *testing.T) *rsa.PrivateKey {
	t.Helper()
	testKeyOnce.Do(func() {
		testKey, testKeyErr = GenerateRSAKey(NewDeterministicReader("wvcrypto-test-rsa"))
	})
	if testKeyErr != nil {
		t.Fatalf("generate shared test key: %v", testKeyErr)
	}
	return testKey
}

func TestRSASignAndVerify(t *testing.T) {
	key := sharedTestKey(t)
	msg := []byte("license request bytes")
	rand := NewDeterministicReader("pss-sign")
	sig, err := SignPSS(rand, key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyPSS(&key.PublicKey, msg, sig) {
		t.Error("VerifyPSS rejected a valid signature")
	}
	if VerifyPSS(&key.PublicKey, []byte("other message"), sig) {
		t.Error("VerifyPSS accepted a signature over another message")
	}
	sig[0] ^= 1
	if VerifyPSS(&key.PublicKey, msg, sig) {
		t.Error("VerifyPSS accepted a corrupted signature")
	}
}

func TestRSAOAEPRoundTrip(t *testing.T) {
	key := sharedTestKey(t)
	sessionKey := bytes.Repeat([]byte{0x77}, 16)
	rand := NewDeterministicReader("oaep")
	ct, err := EncryptOAEP(rand, &key.PublicKey, sessionKey)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := DecryptOAEP(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, sessionKey) {
		t.Error("OAEP roundtrip mismatch")
	}

	ct[0] ^= 1
	if _, err := DecryptOAEP(key, ct); err == nil {
		t.Error("DecryptOAEP accepted a corrupted ciphertext")
	}
}

func TestRSAKeyMarshalRoundTrip(t *testing.T) {
	key := sharedTestKey(t)
	der := MarshalRSAPrivateKey(key)
	parsed, err := ParseRSAPrivateKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.D.Cmp(key.D) != 0 || parsed.N.Cmp(key.N) != 0 {
		t.Error("private key roundtrip mismatch")
	}

	pubDER := MarshalRSAPublicKey(&key.PublicKey)
	pub, err := ParseRSAPublicKey(pubDER)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(key.N) != 0 || pub.E != key.E {
		t.Error("public key roundtrip mismatch")
	}
}

func TestParseRSAPrivateKey_Garbage(t *testing.T) {
	if _, err := ParseRSAPrivateKey([]byte("not a der key")); err == nil {
		t.Error("want error for garbage DER")
	}
	if _, err := ParseRSAPublicKey([]byte{0x30, 0x00}); err == nil {
		t.Error("want error for garbage public DER")
	}
}

// GenerateRSAKey must be a pure function of the reader's bytes: equal
// forks yield byte-identical keys, every time. The stdlib's GenerateKey
// does NOT have this property (randutil.MaybeReadByte desynchronizes
// injected readers on ~half of all calls), which is why wvcrypto owns
// prime generation — this test is the regression guard for the keypool
// and world-snapshot tiers, whose correctness rests on this invariant.
func TestGenerateRSAKey_Deterministic(t *testing.T) {
	const rounds = 4 // a coin-flip regression passes single runs ~50% of the time
	want := MarshalRSAPrivateKey(sharedTestKey(t))
	for i := 0; i < rounds; i++ {
		key, err := GenerateRSAKey(NewDeterministicReader("wvcrypto-test-rsa"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(MarshalRSAPrivateKey(key), want) {
			t.Fatalf("round %d: key differs from shared mint over an equal stream", i)
		}
	}
	if err := sharedTestKey(t).Validate(); err != nil {
		t.Fatalf("generated key fails validation: %v", err)
	}
	if got := sharedTestKey(t).N.BitLen(); got != RSABits {
		t.Fatalf("modulus is %d bits, want %d", got, RSABits)
	}
}

func TestDeterministicReader_Reproducible(t *testing.T) {
	a := NewDeterministicReader("seed")
	b := NewDeterministicReader("seed")
	bufA := make([]byte, 100)
	bufB := make([]byte, 100)
	if _, err := a.Read(bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Error("same seed produced different streams")
	}

	c := NewDeterministicReader("other seed")
	bufC := make([]byte, 100)
	if _, err := c.Read(bufC); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA, bufC) {
		t.Error("different seeds produced identical streams")
	}
}

func TestDeterministicReader_SplitReadsMatch(t *testing.T) {
	whole := NewDeterministicReader("split")
	parts := NewDeterministicReader("split")

	bufWhole := make([]byte, 71)
	if _, err := whole.Read(bufWhole); err != nil {
		t.Fatal(err)
	}
	bufParts := make([]byte, 71)
	for off := 0; off < len(bufParts); {
		n := 7
		if off+n > len(bufParts) {
			n = len(bufParts) - off
		}
		if _, err := parts.Read(bufParts[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if !bytes.Equal(bufWhole, bufParts) {
		t.Error("split reads diverge from whole read")
	}
}
