package wvcrypto

import (
	"bytes"
	"io"
	"testing"
)

func readN(t *testing.T, r io.Reader, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	return buf
}

func TestFork_IndependentOfConsumption(t *testing.T) {
	// Forking before or after reading from the parent must yield the same
	// child stream: children depend on the seed, not the stream position.
	fresh := NewDeterministicReader("world")
	early := readN(t, fresh.Fork("app-a"), 256)

	drained := NewDeterministicReader("world")
	readN(t, drained, 4096)
	late := readN(t, drained.Fork("app-a"), 256)

	if !bytes.Equal(early, late) {
		t.Fatal("fork depends on parent stream position")
	}
}

func TestFork_DistinctStreams(t *testing.T) {
	parent := NewDeterministicReader("world")
	a := readN(t, parent.Fork("app-a"), 256)
	b := readN(t, parent.Fork("app-b"), 256)
	p := readN(t, NewDeterministicReader("world"), 256)
	if bytes.Equal(a, b) {
		t.Fatal("fork labels app-a and app-b produced the same stream")
	}
	if bytes.Equal(a, p) || bytes.Equal(b, p) {
		t.Fatal("forked stream equals the parent stream")
	}
	// Re-forking with the same label reproduces the same child.
	a2 := readN(t, parent.Fork("app-a"), 256)
	if !bytes.Equal(a, a2) {
		t.Fatal("re-fork with same label diverged")
	}
}

func TestFork_NestedForksDiverge(t *testing.T) {
	parent := NewDeterministicReader("world")
	child := parent.Fork("fixture")
	grand := child.Fork("app")
	direct := parent.Fork("app")
	if bytes.Equal(readN(t, grand, 128), readN(t, direct, 128)) {
		t.Fatal("nested fork collided with a direct fork of the same label")
	}
}

func TestDeterministicReader_ConcurrentReads(t *testing.T) {
	// Concurrent readers must not corrupt the stream: the union of bytes
	// handed out equals the single-reader stream (order aside, every block
	// appears exactly once). Here we just exercise it under -race.
	r := NewDeterministicReader("concurrent")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			buf := make([]byte, 64)
			for j := 0; j < 100; j++ {
				if _, err := r.Read(buf); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
