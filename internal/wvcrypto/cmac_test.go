package wvcrypto

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors (AES-128 key 2b7e1516...).
var rfc4493Key = mustHex("2b7e151628aed2a6abf7158809cf4f3c")

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

func TestCMAC_RFC4493Vectors(t *testing.T) {
	tests := []struct {
		name string
		msg  []byte
		want string
	}{
		{
			name: "empty",
			msg:  nil,
			want: "bb1d6929e95937287fa37d129b756746",
		},
		{
			name: "16 bytes",
			msg:  mustHex("6bc1bee22e409f96e93d7e117393172a"),
			want: "070a16b46b4d4144f79bdd9dd04a287c",
		},
		{
			name: "40 bytes",
			msg: mustHex("6bc1bee22e409f96e93d7e117393172a" +
				"ae2d8a571e03ac9c9eb76fac45af8e51" +
				"30c81c46a35ce411"),
			want: "dfa66747de9ae63030ca32611497c827",
		},
		{
			name: "64 bytes",
			msg: mustHex("6bc1bee22e409f96e93d7e117393172a" +
				"ae2d8a571e03ac9c9eb76fac45af8e51" +
				"30c81c46a35ce411e5fbc1191a0a52ef" +
				"f69f2445df4f9b17ad2b417be66c3710"),
			want: "51f0bebf7e3b9d92fc49741779363cfe",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := CMAC(rfc4493Key, tt.msg)
			if err != nil {
				t.Fatalf("CMAC: %v", err)
			}
			if hex.EncodeToString(got) != tt.want {
				t.Errorf("CMAC = %x, want %s", got, tt.want)
			}
		})
	}
}

func TestCMAC_BadKeyLength(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 24, 32} {
		if _, err := CMAC(make([]byte, n), []byte("msg")); err == nil {
			t.Errorf("CMAC with %d-byte key: want error, got nil", n)
		}
	}
}

func TestVerifyCMAC(t *testing.T) {
	msg := []byte("license request payload")
	mac, err := CMAC(rfc4493Key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyCMAC(rfc4493Key, msg, mac) {
		t.Error("VerifyCMAC rejected a valid tag")
	}
	bad := append([]byte(nil), mac...)
	bad[0] ^= 1
	if VerifyCMAC(rfc4493Key, msg, bad) {
		t.Error("VerifyCMAC accepted a corrupted tag")
	}
	if VerifyCMAC(rfc4493Key, msg, mac[:8]) {
		t.Error("VerifyCMAC accepted a truncated tag")
	}
	otherKey := mustHex("000102030405060708090a0b0c0d0e0f")
	if VerifyCMAC(otherKey, msg, mac) {
		t.Error("VerifyCMAC accepted a tag under the wrong key")
	}
}

// Property: a CMAC verifies under the key and message that produced it, and
// any single-bit flip of the message invalidates it.
func TestCMAC_Properties(t *testing.T) {
	prop := func(key [16]byte, msg []byte, flip uint) bool {
		mac, err := CMAC(key[:], msg)
		if err != nil {
			return false
		}
		if !VerifyCMAC(key[:], msg, mac) {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		mutated := append([]byte(nil), msg...)
		mutated[int(flip%uint(len(msg)))] ^= 1 << (flip % 8)
		return !VerifyCMAC(key[:], mutated, mac)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CMAC of distinct-length zero messages are pairwise distinct
// (sanity against subkey/padding mistakes around block boundaries).
func TestCMAC_BlockBoundaryDistinct(t *testing.T) {
	seen := make(map[string]int, 49)
	for n := 0; n <= 48; n++ {
		mac, err := CMAC(rfc4493Key, make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
		key := string(mac)
		if prev, dup := seen[key]; dup {
			t.Fatalf("CMAC collision between lengths %d and %d", prev, n)
		}
		seen[key] = n
	}
}

func TestShiftLeftConditional(t *testing.T) {
	in := [BlockSize]byte{0x80}
	out := shiftLeftConditional(in)
	if out[0] != 0 || out[BlockSize-1] != cmacRb {
		t.Errorf("shift of MSB-set block = %x, want Rb in last byte", out)
	}

	in = [BlockSize]byte{0x01}
	out = shiftLeftConditional(in)
	if out[0] != 0x02 || out[BlockSize-1] != 0 {
		t.Errorf("shift of 0x01 block = %x, want 0x02 leading", out)
	}
}

func BenchmarkCMAC(b *testing.B) {
	msg := bytes.Repeat([]byte{0xAB}, 1024)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CMAC(rfc4493Key, msg); err != nil {
			b.Fatal(err)
		}
	}
}
