package wvcrypto

import (
	"crypto/hmac"
	"crypto/sha256"
)

// HMACSHA256 computes HMAC-SHA256 of msg under key. License requests and
// responses are authenticated with the derived 256-bit MAC keys using this
// construction, as in the real license exchange.
func HMACSHA256(key, msg []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	return mac.Sum(nil)
}

// VerifyHMACSHA256 reports whether tag is the valid HMAC-SHA256 of msg
// under key, in constant time.
func VerifyHMACSHA256(key, msg, tag []byte) bool {
	return hmac.Equal(HMACSHA256(key, msg), tag)
}
