package wvcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// EncryptCBC encrypts plaintext with AES-128-CBC under key and iv, applying
// PKCS#7 padding first. It is used to wrap content keys in license
// responses and the Device RSA key in provisioning responses.
func EncryptCBC(key, iv, plaintext []byte) ([]byte, error) {
	block, err := newAES(key)
	if err != nil {
		return nil, err
	}
	if len(iv) != BlockSize {
		return nil, fmt.Errorf("wvcrypto: iv must be %d bytes, got %d", BlockSize, len(iv))
	}
	padded := PadPKCS7(plaintext)
	out := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out, padded)
	return out, nil
}

// DecryptCBC decrypts AES-128-CBC ciphertext under key and iv and strips
// PKCS#7 padding.
func DecryptCBC(key, iv, ciphertext []byte) ([]byte, error) {
	block, err := newAES(key)
	if err != nil {
		return nil, err
	}
	if len(iv) != BlockSize {
		return nil, fmt.Errorf("wvcrypto: iv must be %d bytes, got %d", BlockSize, len(iv))
	}
	if len(ciphertext) == 0 || len(ciphertext)%BlockSize != 0 {
		return nil, fmt.Errorf("wvcrypto: ciphertext length %d not a block multiple", len(ciphertext))
	}
	out := make([]byte, len(ciphertext))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(out, ciphertext)
	return UnpadPKCS7(out)
}

// CTRStream returns an AES-128-CTR stream positioned at the given 16-byte
// counter block. CENC 'cenc' scheme content decryption uses it directly.
func CTRStream(key, counter []byte) (cipher.Stream, error) {
	block, err := newAES(key)
	if err != nil {
		return nil, err
	}
	if len(counter) != BlockSize {
		return nil, fmt.Errorf("wvcrypto: counter must be %d bytes, got %d", BlockSize, len(counter))
	}
	return cipher.NewCTR(block, counter), nil
}

func newAES(key []byte) (cipher.Block, error) {
	if len(key) != BlockSize {
		return nil, fmt.Errorf("wvcrypto: key must be %d bytes, got %d", BlockSize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: %w", err)
	}
	return block, nil
}
