package wvcrypto

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"sync"
)

// DeterministicReader is an io.Reader producing a reproducible byte stream
// from a seed, via SHA-256 in counter mode. Worlds built for tests and
// benchmarks inject it wherever randomness is needed (key generation, IVs,
// session nonces) so that every run is identical.
//
// It is NOT cryptographically suitable for production use; the library's
// public constructors default to crypto/rand and only tests swap this in.
type DeterministicReader struct {
	mu      sync.Mutex
	seed    [32]byte
	counter uint64
	buf     []byte
}

var _ io.Reader = (*DeterministicReader)(nil)

// NewDeterministicReader returns a reader seeded from the given label.
func NewDeterministicReader(label string) *DeterministicReader {
	return &DeterministicReader{seed: sha256.Sum256([]byte(label))}
}

// Read fills p with the next bytes of the deterministic stream. It never
// fails.
func (r *DeterministicReader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	n := len(p)
	for len(p) > 0 {
		if len(r.buf) == 0 {
			var block [40]byte
			copy(block[:32], r.seed[:])
			binary.BigEndian.PutUint64(block[32:], r.counter)
			r.counter++
			sum := sha256.Sum256(block[:])
			r.buf = sum[:]
		}
		c := copy(p, r.buf)
		p = p[c:]
		r.buf = r.buf[c:]
	}
	return n, nil
}
