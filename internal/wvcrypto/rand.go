package wvcrypto

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sync"
)

// DeterministicReader is an io.Reader producing a reproducible byte stream
// from a seed, via SHA-256 in counter mode. Worlds built for tests and
// benchmarks inject it wherever randomness is needed (key generation, IVs,
// session nonces) so that every run is identical.
//
// It is NOT cryptographically suitable for production use; the library's
// public constructors default to crypto/rand and only tests swap this in.
type DeterministicReader struct {
	mu      sync.Mutex
	seed    [32]byte
	counter uint64
	buf     []byte
}

var _ io.Reader = (*DeterministicReader)(nil)

// NewDeterministicReader returns a reader seeded from the given label.
func NewDeterministicReader(label string) *DeterministicReader {
	return &DeterministicReader{seed: sha256.Sum256([]byte(label))}
}

// Fork derives an independent child stream, HKDF-style: the child's seed is
// a hash of the parent's seed and the label, with a domain separator so
// forked seeds can never collide with the parent's counter-mode blocks.
//
// The child depends only on the parent's *seed* — not on how many bytes
// have already been read from the parent — so forking is stable regardless
// of consumption order. That property is what lets one world seed fan out
// into per-app streams that stay identical whether fixtures are built
// sequentially or concurrently.
func (r *DeterministicReader) Fork(label string) *DeterministicReader {
	h := sha256.New()
	h.Write(r.seed[:])
	h.Write([]byte("/fork/"))
	h.Write([]byte(label))
	child := &DeterministicReader{}
	h.Sum(child.seed[:0])
	return child
}

// Fingerprint returns a stable, non-reversible identity for the stream:
// two readers with equal fingerprints produce identical bytes from their
// respective origins (and identical forks for equal labels). Callers use
// it to check that independently derived streams — e.g. a pre-minting
// key pool and a world's registry — really share one seed, without ever
// exposing the seed itself.
func (r *DeterministicReader) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte("wvcrypto-stream-id/"))
	h.Write(r.seed[:])
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Read fills p with the next bytes of the deterministic stream. It never
// fails.
func (r *DeterministicReader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	n := len(p)
	for len(p) > 0 {
		if len(r.buf) == 0 {
			var block [40]byte
			copy(block[:32], r.seed[:])
			binary.BigEndian.PutUint64(block[32:], r.counter)
			r.counter++
			sum := sha256.Sum256(block[:])
			r.buf = sum[:]
		}
		c := copy(p, r.buf)
		p = p[c:]
		r.buf = r.buf[c:]
	}
	return n, nil
}
