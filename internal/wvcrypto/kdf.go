package wvcrypto

import (
	"encoding/binary"
	"fmt"
)

// Derivation labels used by the simulated Widevine key ladder. They mirror
// the context strings the real OEMCrypto uses when deriving session keys
// from the device key or the license-server session key.
const (
	// LabelEncryption derives the key that wraps content keys in a
	// license response (AES-CBC).
	LabelEncryption = "ENCRYPTION"
	// LabelAuthentication derives the MAC keys that authenticate license
	// requests and responses.
	LabelAuthentication = "AUTHENTICATION"
	// LabelProvisioning derives the key that wraps the Device RSA key in
	// a provisioning response.
	LabelProvisioning = "PROVISIONING"
)

// DeriveKey derives bits/8 bytes of key material from a 16-byte AES key
// using the SP 800-108 CMAC counter-mode construction Widevine uses:
//
//	K(i) = CMAC(key, i || label || 0x00 || context || bits)
//
// with i a one-byte counter starting at 1 and bits a 32-bit big-endian
// length. bits must be a positive multiple of 8 and at most 4096.
func DeriveKey(key []byte, label string, context []byte, bits int) ([]byte, error) {
	if bits <= 0 || bits%8 != 0 || bits > 4096 {
		return nil, fmt.Errorf("kdf: invalid output length %d bits", bits)
	}
	outLen := bits / 8
	blocks := (outLen + BlockSize - 1) / BlockSize

	msg := make([]byte, 0, 1+len(label)+1+len(context)+4)
	msg = append(msg, 0) // counter placeholder
	msg = append(msg, label...)
	msg = append(msg, 0x00)
	msg = append(msg, context...)
	msg = binary.BigEndian.AppendUint32(msg, uint32(bits))

	out := make([]byte, 0, blocks*BlockSize)
	for i := 1; i <= blocks; i++ {
		msg[0] = byte(i)
		block, err := CMAC(key, msg)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
	}
	return out[:outLen], nil
}

// SessionKeys is the set of keys derived from a single base key for one
// OEMCrypto session: a 128-bit encryption key plus 256-bit client and
// server MAC keys, matching the real ladder's DeriveKeysFromSessionKey.
type SessionKeys struct {
	// Enc decrypts the content-key container in a license response.
	Enc []byte
	// MACClient authenticates messages sent by the device.
	MACClient []byte
	// MACServer authenticates messages sent by the license server.
	MACServer []byte
}

// DeriveSessionKeys derives the per-session key set from a base key and the
// serialized request message, as OEMCrypto's DeriveKeysFromSessionKey does:
// the request message is the derivation context so that keys are bound to
// the exact license request they answer.
func DeriveSessionKeys(baseKey, requestMessage []byte) (SessionKeys, error) {
	enc, err := DeriveKey(baseKey, LabelEncryption, requestMessage, 128)
	if err != nil {
		return SessionKeys{}, fmt.Errorf("derive enc key: %w", err)
	}
	// A single 512-bit derivation split into client/server halves, as the
	// real ladder derives 4 MAC key blocks in one pass.
	mac, err := DeriveKey(baseKey, LabelAuthentication, requestMessage, 512)
	if err != nil {
		return SessionKeys{}, fmt.Errorf("derive mac keys: %w", err)
	}
	return SessionKeys{
		Enc:       enc,
		MACClient: mac[:32],
		MACServer: mac[32:],
	}, nil
}
