// Package wvcrypto implements the cryptographic primitives used by the
// simulated Widevine key ladder: AES-128-CMAC (RFC 4493), a CMAC-based key
// derivation function in the style of NIST SP 800-108 counter mode with
// Widevine context labels, PKCS#7 padding, the keybox CRC, and small RSA
// helpers (PSS signatures and OAEP key transport).
//
// Everything here is real cryptography from the Go standard library plus a
// from-scratch CMAC; nothing is stubbed. The package is the foundation of
// internal/oemcrypto and internal/attack: the attack re-implements the key
// ladder using exactly these primitives, mirroring the paper's
// reverse-engineered PoC.
package wvcrypto

import (
	"crypto/aes"
	"crypto/subtle"
	"fmt"
)

// BlockSize is the AES block size in bytes. CMAC in this package is only
// defined over AES-128, matching the Widevine device key size.
const BlockSize = 16

// cmacRb is the constant from RFC 4493 used when deriving subkeys K1/K2.
const cmacRb = 0x87

// CMAC computes the AES-128-CMAC (RFC 4493) of msg under a 16-byte key.
// It returns an error if the key has the wrong length.
func CMAC(key, msg []byte) ([]byte, error) {
	if len(key) != BlockSize {
		return nil, fmt.Errorf("cmac: key must be %d bytes, got %d", BlockSize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cmac: %w", err)
	}

	k1, k2 := cmacSubkeys(block.Encrypt)

	n := (len(msg) + BlockSize - 1) / BlockSize
	complete := n > 0 && len(msg)%BlockSize == 0
	if n == 0 {
		n = 1
	}

	// Last block: XOR with K1 if complete, otherwise pad and XOR with K2.
	var last [BlockSize]byte
	if complete {
		copy(last[:], msg[(n-1)*BlockSize:])
		xorBlock(&last, k1)
	} else {
		rem := msg[(n-1)*BlockSize:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		xorBlock(&last, k2)
	}

	var x [BlockSize]byte
	for i := 0; i < n-1; i++ {
		xorBytes(&x, msg[i*BlockSize:(i+1)*BlockSize])
		block.Encrypt(x[:], x[:])
	}
	xorBlock(&x, last)
	block.Encrypt(x[:], x[:])

	out := make([]byte, BlockSize)
	copy(out, x[:])
	return out, nil
}

// VerifyCMAC reports whether mac is the valid AES-CMAC of msg under key,
// using a constant-time comparison.
func VerifyCMAC(key, msg, mac []byte) bool {
	want, err := CMAC(key, msg)
	if err != nil || len(mac) != BlockSize {
		return false
	}
	return subtle.ConstantTimeCompare(want, mac) == 1
}

// cmacSubkeys derives the K1 and K2 subkeys from the block cipher per
// RFC 4493 section 2.3.
func cmacSubkeys(encrypt func(dst, src []byte)) (k1, k2 [BlockSize]byte) {
	var l [BlockSize]byte
	encrypt(l[:], l[:])
	k1 = shiftLeftConditional(l)
	k2 = shiftLeftConditional(k1)
	return k1, k2
}

// shiftLeftConditional shifts in left by one bit and conditionally XORs the
// RFC 4493 Rb constant into the last byte when the shifted-out bit was set.
func shiftLeftConditional(in [BlockSize]byte) [BlockSize]byte {
	var out [BlockSize]byte
	var carry byte
	for i := BlockSize - 1; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[BlockSize-1] ^= cmacRb
	}
	return out
}

func xorBlock(dst *[BlockSize]byte, src [BlockSize]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func xorBytes(dst *[BlockSize]byte, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
