package wvcrypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestCBCRoundTrip(t *testing.T) {
	key := mustHex("000102030405060708090a0b0c0d0e0f")
	iv := mustHex("101112131415161718191a1b1c1d1e1f")
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 1000} {
		plaintext := bytes.Repeat([]byte{0x5A}, n)
		ct, err := EncryptCBC(key, iv, plaintext)
		if err != nil {
			t.Fatalf("EncryptCBC(%d bytes): %v", n, err)
		}
		if len(ct)%BlockSize != 0 {
			t.Errorf("ciphertext length %d not block aligned", len(ct))
		}
		pt, err := DecryptCBC(key, iv, ct)
		if err != nil {
			t.Fatalf("DecryptCBC(%d bytes): %v", n, err)
		}
		if !bytes.Equal(pt, plaintext) {
			t.Errorf("roundtrip(%d bytes) mismatch", n)
		}
	}
}

func TestCBCRoundTrip_Property(t *testing.T) {
	prop := func(key, iv [16]byte, plaintext []byte) bool {
		ct, err := EncryptCBC(key[:], iv[:], plaintext)
		if err != nil {
			return false
		}
		pt, err := DecryptCBC(key[:], iv[:], ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, plaintext)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecryptCBC_WrongKeyFailsPadding(t *testing.T) {
	key := mustHex("000102030405060708090a0b0c0d0e0f")
	other := mustHex("ffffffffffffffffffffffffffffffff")
	iv := mustHex("101112131415161718191a1b1c1d1e1f")
	ct, err := EncryptCBC(key, iv, []byte("a content key payload"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := DecryptCBC(other, iv, ct)
	// Decrypting under the wrong key must not silently return the
	// plaintext; with overwhelming probability padding fails.
	if err == nil && bytes.Equal(pt, []byte("a content key payload")) {
		t.Error("wrong key decrypted to original plaintext")
	}
}

func TestDecryptCBC_Invalid(t *testing.T) {
	key := mustHex("000102030405060708090a0b0c0d0e0f")
	iv := mustHex("101112131415161718191a1b1c1d1e1f")
	cases := []struct {
		name string
		ct   []byte
	}{
		{"empty", nil},
		{"unaligned", make([]byte, 17)},
	}
	for _, tt := range cases {
		if _, err := DecryptCBC(key, iv, tt.ct); err == nil {
			t.Errorf("%s: want error", tt.name)
		}
	}
	if _, err := DecryptCBC(key, iv[:8], make([]byte, 16)); err == nil {
		t.Error("short iv: want error")
	}
	if _, err := DecryptCBC(key[:8], iv, make([]byte, 16)); err == nil {
		t.Error("short key: want error")
	}
}

func TestUnpadPKCS7_Malformed(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"unaligned", make([]byte, 5)},
		{"zero pad byte", append(bytes.Repeat([]byte{1}, 15), 0)},
		{"pad too long", append(bytes.Repeat([]byte{1}, 15), 17)},
		{"inconsistent pad", append(bytes.Repeat([]byte{9}, 14), 3, 2)},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnpadPKCS7(tt.in); !errors.Is(err, ErrBadPadding) {
				t.Errorf("UnpadPKCS7 = %v, want ErrBadPadding", err)
			}
		})
	}
}

func TestPadPKCS7_FullBlockWhenAligned(t *testing.T) {
	out := PadPKCS7(make([]byte, 16))
	if len(out) != 32 {
		t.Errorf("padded length = %d, want 32", len(out))
	}
	if out[31] != 16 {
		t.Errorf("pad byte = %d, want 16", out[31])
	}
}

func TestCTRStream(t *testing.T) {
	key := mustHex("000102030405060708090a0b0c0d0e0f")
	counter := mustHex("00000000000000000000000000000001")
	plaintext := []byte("sample of protected media payload")

	enc, err := CTRStream(key, counter)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, len(plaintext))
	enc.XORKeyStream(ct, plaintext)

	dec, err := CTRStream(key, counter)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, len(ct))
	dec.XORKeyStream(pt, ct)
	if !bytes.Equal(pt, plaintext) {
		t.Error("CTR roundtrip mismatch")
	}

	if _, err := CTRStream(key, counter[:4]); err == nil {
		t.Error("short counter: want error")
	}
}
