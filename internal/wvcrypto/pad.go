package wvcrypto

import (
	"bytes"
	"errors"
	"fmt"
)

// ErrBadPadding is returned when PKCS#7 padding is malformed. License
// processing treats it as an authentication failure.
var ErrBadPadding = errors.New("wvcrypto: bad pkcs7 padding")

// PadPKCS7 appends PKCS#7 padding so that len(result) is a multiple of
// BlockSize. It always adds between 1 and BlockSize bytes.
func PadPKCS7(data []byte) []byte {
	padLen := BlockSize - len(data)%BlockSize
	out := make([]byte, len(data)+padLen)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(padLen)
	}
	return out
}

// UnpadPKCS7 strips PKCS#7 padding, validating every pad byte.
func UnpadPKCS7(data []byte) ([]byte, error) {
	if len(data) == 0 || len(data)%BlockSize != 0 {
		return nil, fmt.Errorf("%w: length %d", ErrBadPadding, len(data))
	}
	padLen := int(data[len(data)-1])
	if padLen == 0 || padLen > BlockSize || padLen > len(data) {
		return nil, fmt.Errorf("%w: pad length %d", ErrBadPadding, padLen)
	}
	pad := data[len(data)-padLen:]
	if !bytes.Equal(pad, bytes.Repeat([]byte{byte(padLen)}, padLen)) {
		return nil, ErrBadPadding
	}
	return data[:len(data)-padLen], nil
}
