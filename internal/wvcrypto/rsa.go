package wvcrypto

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
	"io"
)

// RSABits is the modulus size of the Device RSA Key, matching the 2048-bit
// key the paper reverse-engineered.
const RSABits = 2048

// GenerateRSAKey generates a Device RSA key pair from the given randomness
// source. Callers inject a deterministic reader in tests to keep worlds
// reproducible.
func GenerateRSAKey(rand io.Reader) (*rsa.PrivateKey, error) {
	key, err := rsa.GenerateKey(rand, RSABits)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: generate rsa key: %w", err)
	}
	return key, nil
}

// SignPSS signs the SHA-256 digest of msg with RSASSA-PSS, the signature
// scheme OEMCrypto uses for license requests once a Device RSA key is
// provisioned.
func SignPSS(rand io.Reader, key *rsa.PrivateKey, msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPSS(rand, key, crypto.SHA256, digest[:], &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	})
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: pss sign: %w", err)
	}
	return sig, nil
}

// VerifyPSS reports whether sig is a valid RSASSA-PSS signature of msg.
func VerifyPSS(pub *rsa.PublicKey, msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	err := rsa.VerifyPSS(pub, crypto.SHA256, digest[:], sig, &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	})
	return err == nil
}

// EncryptOAEP encrypts a session key to the device's RSA public key with
// RSAES-OAEP (SHA-1, as in OEMCrypto's RewrapDeviceRSAKey / session-key
// transport).
func EncryptOAEP(rand io.Reader, pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	out, err := rsa.EncryptOAEP(sha1.New(), rand, pub, plaintext, nil)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: oaep encrypt: %w", err)
	}
	return out, nil
}

// DecryptOAEP recovers an OAEP-encrypted session key with the Device RSA
// private key.
func DecryptOAEP(key *rsa.PrivateKey, ciphertext []byte) ([]byte, error) {
	out, err := rsa.DecryptOAEP(sha1.New(), nil, key, ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: oaep decrypt: %w", err)
	}
	return out, nil
}

// MarshalRSAPrivateKey serializes a Device RSA key in PKCS#1 DER form, the
// shape in which it crosses the provisioning channel and sits in L3 process
// memory (the insecure-storage finding, CWE-922).
func MarshalRSAPrivateKey(key *rsa.PrivateKey) []byte {
	return x509.MarshalPKCS1PrivateKey(key)
}

// ParseRSAPrivateKey parses a PKCS#1 DER Device RSA key.
func ParseRSAPrivateKey(der []byte) (*rsa.PrivateKey, error) {
	key, err := x509.ParsePKCS1PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: parse rsa key: %w", err)
	}
	return key, nil
}

// MarshalRSAPublicKey serializes an RSA public key in PKCS#1 DER form.
func MarshalRSAPublicKey(pub *rsa.PublicKey) []byte {
	return x509.MarshalPKCS1PublicKey(pub)
}

// ParseRSAPublicKey parses a PKCS#1 DER RSA public key.
func ParseRSAPublicKey(der []byte) (*rsa.PublicKey, error) {
	pub, err := x509.ParsePKCS1PublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: parse rsa public key: %w", err)
	}
	return pub, nil
}
