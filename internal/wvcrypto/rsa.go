package wvcrypto

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
	"io"
	"math/big"
)

// RSABits is the modulus size of the Device RSA Key, matching the 2048-bit
// key the paper reverse-engineered.
const RSABits = 2048

// rsaPublicExponent is F4, the exponent every Widevine device key uses.
const rsaPublicExponent = 65537

// GenerateRSAKey generates a Device RSA key pair from the given randomness
// source, as a pure function of the bytes it reads.
//
// The standard library's rsa.GenerateKey is explicitly NOT that function:
// with a non-default reader it routes candidate reads through
// drbg.ReadWithReader, which prepends randutil.MaybeReadByte — a coin
// flip that desynchronizes the stream on roughly half of all calls. The
// keypool and world-snapshot tiers need a key minted at boot, restored
// from a snapshot, or minted lazily to be byte-identical, so prime
// generation here reads the stream directly (FIPS 186-5 style: draw a
// candidate, pin the top two bits and the low bit, reject until prime).
// big.Int.ProbablyPrime is deterministic for a given candidate, so the
// whole key is determined by the reader's bytes.
func GenerateRSAKey(rand io.Reader) (*rsa.PrivateKey, error) {
	e := big.NewInt(rsaPublicExponent)
	one := big.NewInt(1)
	for {
		p, err := randomPrime(rand, (RSABits+1)/2)
		if err != nil {
			return nil, fmt.Errorf("wvcrypto: generate rsa key: %w", err)
		}
		q, err := randomPrime(rand, RSABits/2)
		if err != nil {
			return nil, fmt.Errorf("wvcrypto: generate rsa key: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != RSABits {
			continue
		}
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			// e divides p-1 or q-1; redraw.
			continue
		}
		key := &rsa.PrivateKey{
			PublicKey: rsa.PublicKey{N: n, E: rsaPublicExponent},
			D:         d,
			Primes:    []*big.Int{p, q},
		}
		key.Precompute()
		return key, nil
	}
}

// randomPrime draws candidates of exactly the given bit length from rand
// until one is (probably) prime. The top two bits are set so the product
// of two primes always reaches the full modulus size; the low bit makes
// the candidate odd.
func randomPrime(rand io.Reader, bits int) (*big.Int, error) {
	b := make([]byte, (bits+7)/8)
	for {
		if _, err := io.ReadFull(rand, b); err != nil {
			return nil, err
		}
		excess := len(b)*8 - bits
		if excess != 0 {
			b[0] >>= excess
		}
		// Set the top two bits so the product of two primes always
		// reaches the full modulus size.
		if excess < 7 {
			b[0] |= 0b1100_0000 >> excess
		} else {
			b[0] |= 1
			b[1] |= 0b1000_0000
		}
		b[len(b)-1] |= 1
		p := new(big.Int).SetBytes(b)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// SignPSS signs the SHA-256 digest of msg with RSASSA-PSS, the signature
// scheme OEMCrypto uses for license requests once a Device RSA key is
// provisioned.
func SignPSS(rand io.Reader, key *rsa.PrivateKey, msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPSS(rand, key, crypto.SHA256, digest[:], &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	})
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: pss sign: %w", err)
	}
	return sig, nil
}

// VerifyPSS reports whether sig is a valid RSASSA-PSS signature of msg.
func VerifyPSS(pub *rsa.PublicKey, msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	err := rsa.VerifyPSS(pub, crypto.SHA256, digest[:], sig, &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	})
	return err == nil
}

// EncryptOAEP encrypts a session key to the device's RSA public key with
// RSAES-OAEP (SHA-1, as in OEMCrypto's RewrapDeviceRSAKey / session-key
// transport).
func EncryptOAEP(rand io.Reader, pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	out, err := rsa.EncryptOAEP(sha1.New(), rand, pub, plaintext, nil)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: oaep encrypt: %w", err)
	}
	return out, nil
}

// DecryptOAEP recovers an OAEP-encrypted session key with the Device RSA
// private key.
func DecryptOAEP(key *rsa.PrivateKey, ciphertext []byte) ([]byte, error) {
	out, err := rsa.DecryptOAEP(sha1.New(), nil, key, ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: oaep decrypt: %w", err)
	}
	return out, nil
}

// MarshalRSAPrivateKey serializes a Device RSA key in PKCS#1 DER form, the
// shape in which it crosses the provisioning channel and sits in L3 process
// memory (the insecure-storage finding, CWE-922).
func MarshalRSAPrivateKey(key *rsa.PrivateKey) []byte {
	return x509.MarshalPKCS1PrivateKey(key)
}

// ParseRSAPrivateKey parses a PKCS#1 DER Device RSA key.
func ParseRSAPrivateKey(der []byte) (*rsa.PrivateKey, error) {
	key, err := x509.ParsePKCS1PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: parse rsa key: %w", err)
	}
	return key, nil
}

// MarshalRSAPublicKey serializes an RSA public key in PKCS#1 DER form.
func MarshalRSAPublicKey(pub *rsa.PublicKey) []byte {
	return x509.MarshalPKCS1PublicKey(pub)
}

// ParseRSAPublicKey parses a PKCS#1 DER RSA public key.
func ParseRSAPublicKey(der []byte) (*rsa.PublicKey, error) {
	pub, err := x509.ParsePKCS1PublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("wvcrypto: parse rsa public key: %w", err)
	}
	return pub, nil
}
