package wvcrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeriveKey_Lengths(t *testing.T) {
	key := mustHex("000102030405060708090a0b0c0d0e0f")
	for _, bits := range []int{8, 64, 128, 256, 512, 4096} {
		out, err := DeriveKey(key, LabelEncryption, []byte("ctx"), bits)
		if err != nil {
			t.Fatalf("DeriveKey(%d bits): %v", bits, err)
		}
		if len(out) != bits/8 {
			t.Errorf("DeriveKey(%d bits) length = %d, want %d", bits, len(out), bits/8)
		}
	}
}

func TestDeriveKey_InvalidLengths(t *testing.T) {
	key := mustHex("000102030405060708090a0b0c0d0e0f")
	for _, bits := range []int{0, -8, 7, 12, 4104} {
		if _, err := DeriveKey(key, LabelEncryption, nil, bits); err == nil {
			t.Errorf("DeriveKey(%d bits): want error", bits)
		}
	}
}

func TestDeriveKey_Deterministic(t *testing.T) {
	key := mustHex("2b7e151628aed2a6abf7158809cf4f3c")
	a, err := DeriveKey(key, LabelEncryption, []byte("request"), 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveKey(key, LabelEncryption, []byte("request"), 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("DeriveKey not deterministic")
	}
}

func TestDeriveKey_SeparatesLabelsAndContexts(t *testing.T) {
	key := mustHex("2b7e151628aed2a6abf7158809cf4f3c")
	base, err := DeriveKey(key, LabelEncryption, []byte("request"), 128)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name    string
		label   string
		context []byte
	}{
		{"different label", LabelAuthentication, []byte("request")},
		{"different context", LabelEncryption, []byte("request2")},
		{"provisioning label", LabelProvisioning, []byte("request")},
	}
	for _, v := range variants {
		out, err := DeriveKey(key, v.label, v.context, 128)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(base, out) {
			t.Errorf("%s produced identical key material", v.name)
		}
	}
}

// Property: the output length participates in the derivation (SP 800-108
// binds [L] into the PRF input), so outputs of different lengths are
// unrelated, and equal inputs reproduce equal outputs.
func TestDeriveKey_LengthDomainSeparation(t *testing.T) {
	prop := func(key [16]byte, ctx []byte) bool {
		short, err := DeriveKey(key[:], LabelEncryption, ctx, 128)
		if err != nil {
			return false
		}
		long, err := DeriveKey(key[:], LabelEncryption, ctx, 256)
		if err != nil {
			return false
		}
		again, err := DeriveKey(key[:], LabelEncryption, ctx, 128)
		if err != nil {
			return false
		}
		return !bytes.Equal(short, long[:16]) && bytes.Equal(short, again)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeriveSessionKeys(t *testing.T) {
	key := mustHex("2b7e151628aed2a6abf7158809cf4f3c")
	msg := []byte("serialized license request")
	keys, err := DeriveSessionKeys(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys.Enc) != 16 {
		t.Errorf("Enc length = %d, want 16", len(keys.Enc))
	}
	if len(keys.MACClient) != 32 || len(keys.MACServer) != 32 {
		t.Errorf("MAC lengths = %d,%d, want 32,32", len(keys.MACClient), len(keys.MACServer))
	}
	if bytes.Equal(keys.MACClient, keys.MACServer) {
		t.Error("client and server MAC keys are identical")
	}

	// Binding to the request message: a different message yields different keys.
	other, err := DeriveSessionKeys(key, []byte("a different request"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(keys.Enc, other.Enc) {
		t.Error("session enc keys not bound to request message")
	}
}

func TestDeriveSessionKeys_BadKey(t *testing.T) {
	if _, err := DeriveSessionKeys([]byte("short"), []byte("msg")); err == nil {
		t.Error("want error for short base key")
	}
}

func BenchmarkDeriveSessionKeys(b *testing.B) {
	key := mustHex("2b7e151628aed2a6abf7158809cf4f3c")
	msg := bytes.Repeat([]byte{0x42}, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DeriveSessionKeys(key, msg); err != nil {
			b.Fatal(err)
		}
	}
}
