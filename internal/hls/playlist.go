// Package hls models HTTP Live Streaming (m3u8) playlists — the manifest
// dialect Apple-ecosystem OTT apps speak. The model covers what the study
// needs: a master section (variant streams via #EXT-X-STREAM-INF, audio and
// subtitle renditions via #EXT-X-MEDIA, Widevine session keys via
// #EXT-X-SESSION-KEY) plus one media playlist per rendition (#EXT-X-KEY
// protection descriptors, #EXT-X-MAP init segments, #EXTINF segment lists).
//
// Simplification vs. the full spec (documented in DESIGN.md §5h): a title
// travels as ONE document — the master playlist followed by its media
// playlists inlined behind #EXT-X-WIDELEAK-PLAYLIST delimiter tags, joined
// to their master entries by URI. Structural state the canonical DASH model
// carries but vanilla m3u8 does not (periods, adaptation-set grouping,
// template addressing) rides in X-WIDELEAK custom tags, keeping the
// translation to and from internal/dash lossless. The package is a pure
// wire format: it never imports internal/dash — internal/manifest owns the
// conversion.
package hls

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Rendition group types on the wire (the #EXT-X-MEDIA TYPE enumeration).
const (
	TypeVideo     = "VIDEO"
	TypeAudio     = "AUDIO"
	TypeSubtitles = "SUBTITLES"
)

// header is the mandatory first tag of every m3u8 document.
const header = "#EXTM3U"

// dataURIPrefix carries protection init data (PSSH) inside key URIs, the
// way real HLS delivers Widevine payloads.
const dataURIPrefix = "data:text/plain;base64,"

// ErrNotHLS is returned when the input does not start with #EXTM3U.
var ErrNotHLS = errors.New("hls: not an m3u8 playlist")

// Playlist is one title's complete manifest: master entries plus inlined
// media playlists. The MPD* fields carry the canonical manifest attributes
// through the #EXT-X-WIDELEAK-MPD tag.
type Playlist struct {
	Version     int
	MPDProfiles string
	MPDType     string
	MPDDuration string
	Periods     []Period
}

// Period mirrors one canonical presentation period.
type Period struct {
	ID     string
	Groups []Group
}

// Group is one adaptation set: a rendition group sharing content type,
// MIME type, language and session-level protection.
type Group struct {
	Type        string // TypeVideo, TypeAudio, TypeSubtitles, or verbatim
	MimeType    string
	Language    string
	SessionKeys []Key // set-level protection (#EXT-X-SESSION-KEY)
	Renditions  []Rendition
}

// Rendition is one representation: the master-section attributes
// (#EXT-X-STREAM-INF or #EXT-X-MEDIA) merged with its inlined media
// playlist. URI joins the two sections.
type Rendition struct {
	URI       string
	ID        string
	Bandwidth uint32
	Width     uint16
	Height    uint16
	Codecs    string

	Keys     Keys   // rendition-level protection (#EXT-X-KEY)
	BaseURI  string // #EXT-X-WIDELEAK-BASE
	InitURI  string // #EXT-X-MAP
	Segments []string
	// HasSegments distinguishes an explicit (possibly init-only) segment
	// list from template-only addressing: list-form playlists always end
	// with #EXT-X-ENDLIST.
	HasSegments bool
	Template    *Template // #EXT-X-WIDELEAK-TEMPLATE
}

// Keys is a rendition's ordered protection descriptor list.
type Keys []Key

// Key is one protection descriptor. KeyFormat carries the DRM scheme URI,
// KeyID the CENC default key ID (lowercase hex, no 0x), URI the base64
// init data as a data: URI.
type Key struct {
	Method    string
	KeyFormat string
	KeyID     string
	Value     string // scheme value ("cenc"), via the X-VALUE extension
	URI       string
}

// PSSH returns the key's base64 init data, stripped of the data: URI
// wrapper ("" when the key carries none).
func (k *Key) PSSH() string {
	return strings.TrimPrefix(k.URI, dataURIPrefix)
}

// SetPSSH wraps base64 init data into the key's URI ("" clears it).
func (k *Key) SetPSSH(b64 string) {
	if b64 == "" {
		k.URI = ""
		return
	}
	k.URI = dataURIPrefix + b64
}

// Sniff reports whether the bytes look like an m3u8 playlist.
func Sniff(b []byte) bool {
	return bytes.HasPrefix(bytes.TrimLeft(b, " \t\r\n\uFEFF"), []byte(header))
}

// Marshal renders the playlist as one m3u8 document.
func (p *Playlist) Marshal() ([]byte, error) {
	var b strings.Builder
	b.WriteString(header + "\n")
	version := p.Version
	if version == 0 {
		version = 7
	}
	fmt.Fprintf(&b, "#EXT-X-VERSION:%d\n", version)
	b.WriteString("#EXT-X-INDEPENDENT-SEGMENTS\n")
	writeAttrTag(&b, "#EXT-X-WIDELEAK-MPD", attrs{
		{"PROFILES", quoted(p.MPDProfiles)},
		{"TYPE", quoted(p.MPDType)},
		{"DURATION", quoted(p.MPDDuration)},
	})
	for pi := range p.Periods {
		period := &p.Periods[pi]
		writeAttrTag(&b, "#EXT-X-WIDELEAK-PERIOD", attrs{{"ID", quoted(period.ID)}})
		for gi := range period.Groups {
			g := &period.Groups[gi]
			writeAttrTag(&b, "#EXT-X-WIDELEAK-GROUP", attrs{
				{"TYPE", enum(g.Type)},
				{"MIME-TYPE", quoted(g.MimeType)},
				{"LANGUAGE", quoted(g.Language)},
			})
			for ki := range g.SessionKeys {
				writeKeyTag(&b, "#EXT-X-SESSION-KEY", &g.SessionKeys[ki])
			}
			for ri := range g.Renditions {
				r := &g.Renditions[ri]
				if g.Type == TypeVideo {
					writeAttrTag(&b, "#EXT-X-STREAM-INF", attrs{
						{"BANDWIDTH", decimal(uint64(r.Bandwidth))},
						{"RESOLUTION", resolution(r.Width, r.Height)},
						{"CODECS", quoted(r.Codecs)},
						{"X-ID", quoted(r.ID)},
					})
					b.WriteString(sanitizeLine(r.URI) + "\n")
				} else {
					writeAttrTag(&b, "#EXT-X-MEDIA", attrs{
						{"TYPE", enum(g.Type)},
						{"NAME", quoted(r.ID)},
						{"X-BANDWIDTH", decimal(uint64(r.Bandwidth))},
						{"X-CODECS", quoted(r.Codecs)},
						{"URI", quoted(r.URI)},
					})
				}
			}
		}
	}
	for pi := range p.Periods {
		for gi := range p.Periods[pi].Groups {
			g := &p.Periods[pi].Groups[gi]
			for ri := range g.Renditions {
				writeMediaPlaylist(&b, &g.Renditions[ri])
			}
		}
	}
	return []byte(b.String()), nil
}

// writeMediaPlaylist renders one rendition's inlined media playlist.
func writeMediaPlaylist(b *strings.Builder, r *Rendition) {
	writeAttrTag(b, "#EXT-X-WIDELEAK-PLAYLIST", attrs{{"URI", quoted(r.URI)}})
	for ki := range r.Keys {
		writeKeyTag(b, "#EXT-X-KEY", &r.Keys[ki])
	}
	if r.BaseURI != "" {
		writeAttrTag(b, "#EXT-X-WIDELEAK-BASE", attrs{{"URI", quoted(r.BaseURI)}})
	}
	if r.InitURI != "" {
		writeAttrTag(b, "#EXT-X-MAP", attrs{{"URI", quoted(r.InitURI)}})
	}
	if t := r.Template; t != nil {
		writeAttrTag(b, "#EXT-X-WIDELEAK-TEMPLATE", attrs{
			{"INIT", quoted(t.Init)},
			{"MEDIA", quoted(t.Media)},
			{"START", decimal(uint64(t.Start))},
			{"COUNT", decimal(uint64(t.Count))},
		})
	}
	if r.HasSegments {
		for _, seg := range r.Segments {
			b.WriteString("#EXTINF:4.0,\n")
			b.WriteString(sanitizeLine(seg) + "\n")
		}
		b.WriteString("#EXT-X-ENDLIST\n")
	}
}

// Template is the template-addressing carrier (the canonical model's
// SegmentTemplate), since vanilla m3u8 has no equivalent.
type Template struct {
	Init  string
	Media string
	Start uint32
	Count uint32
}

// writeKeyTag renders one protection descriptor.
func writeKeyTag(b *strings.Builder, tag string, k *Key) {
	method := k.Method
	if method == "" {
		method = "SAMPLE-AES-CTR"
	}
	kid := ""
	if k.KeyID != "" {
		kid = "0x" + sanitizeEnum(k.KeyID)
	}
	writeAttrTag(b, tag, attrs{
		{"METHOD", enum(method)},
		{"KEYFORMAT", quoted(k.KeyFormat)},
		{"KEYID", kid},
		{"X-VALUE", quoted(k.Value)},
		{"URI", quoted(k.URI)},
	})
}

// attrs is an ordered attribute list; empty values are omitted.
type attrs []struct{ name, value string }

func writeAttrTag(b *strings.Builder, tag string, list attrs) {
	b.WriteString(tag)
	sep := ":"
	for _, a := range list {
		if a.value == "" {
			continue
		}
		b.WriteString(sep + a.name + "=" + a.value)
		sep = ","
	}
	b.WriteString("\n")
}

// quoted renders a quoted-string attribute value; empty stays empty so the
// attribute is omitted. Quotes and line breaks cannot survive the attribute
// syntax and are dropped (no canonical field uses them); commas are fine —
// the parser splits quote-aware.
func quoted(v string) string {
	if v == "" {
		return ""
	}
	return `"` + sanitizeAttr(v) + `"`
}

func enum(v string) string { return sanitizeEnum(v) }

func decimal(v uint64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatUint(v, 10)
}

func resolution(w, h uint16) string {
	if w == 0 && h == 0 {
		return ""
	}
	return fmt.Sprintf("%dx%d", w, h)
}

func sanitizeAttr(v string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '"', '\r', '\n':
			return -1
		}
		return r
	}, v)
}

func sanitizeEnum(v string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '"', ',', '=', ':', '\r', '\n', ' ':
			return -1
		}
		return r
	}, v)
}

func sanitizeLine(v string) string {
	return strings.Map(func(r rune) rune {
		if r == '\r' || r == '\n' {
			return -1
		}
		return r
	}, v)
}

// Parse decodes one m3u8 document. The parser is tolerant by design — it
// consumes attacker-controlled bytes (intercepted traffic, fuzz input), so
// unknown tags are skipped and malformed attribute lists degrade to empty
// values; only a missing #EXTM3U header is fatal.
func Parse(b []byte) (*Playlist, error) {
	lines := splitLines(b)
	if len(lines) == 0 || lines[0] != header {
		return nil, ErrNotHLS
	}
	p := &Playlist{}
	var (
		group      *Group
		rendition  *Rendition // media-playlist section target
		pendingInf *Rendition // master-section STREAM-INF awaiting its URI line
		inMedia    bool
	)
	currentPeriod := func() *Period {
		if len(p.Periods) == 0 {
			p.Periods = append(p.Periods, Period{})
		}
		return &p.Periods[len(p.Periods)-1]
	}
	currentGroup := func() *Group {
		if group == nil {
			per := currentPeriod()
			per.Groups = append(per.Groups, Group{})
			group = &per.Groups[len(per.Groups)-1]
		}
		return group
	}
	// findRendition joins a media-playlist section to its master entry,
	// creating an orphan rendition in an implicit group when the master
	// never declared the URI (malformed input must still parse).
	findRendition := func(uri string) *Rendition {
		for pi := range p.Periods {
			for gi := range p.Periods[pi].Groups {
				g := &p.Periods[pi].Groups[gi]
				for ri := range g.Renditions {
					if g.Renditions[ri].URI == uri {
						group = g
						return &g.Renditions[ri]
					}
				}
			}
		}
		g := currentGroup()
		g.Renditions = append(g.Renditions, Rendition{URI: uri, ID: strings.TrimSuffix(uri, ".m3u8")})
		return &g.Renditions[len(g.Renditions)-1]
	}

	for _, line := range lines[1:] {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#EXT-X-VERSION:"):
			if v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-VERSION:")); err == nil {
				p.Version = v
			}
		case strings.HasPrefix(line, "#EXT-X-WIDELEAK-MPD:"):
			a := parseAttrs(strings.TrimPrefix(line, "#EXT-X-WIDELEAK-MPD:"))
			p.MPDProfiles, p.MPDType, p.MPDDuration = a["PROFILES"], a["TYPE"], a["DURATION"]
		case strings.HasPrefix(line, "#EXT-X-WIDELEAK-PERIOD"):
			a := parseAttrs(strings.TrimPrefix(line, "#EXT-X-WIDELEAK-PERIOD:"))
			p.Periods = append(p.Periods, Period{ID: a["ID"]})
			group, pendingInf = nil, nil
		case strings.HasPrefix(line, "#EXT-X-WIDELEAK-GROUP:"):
			a := parseAttrs(strings.TrimPrefix(line, "#EXT-X-WIDELEAK-GROUP:"))
			per := currentPeriod()
			per.Groups = append(per.Groups, Group{Type: a["TYPE"], MimeType: a["MIME-TYPE"], Language: a["LANGUAGE"]})
			group, pendingInf = &per.Groups[len(per.Groups)-1], nil
		case strings.HasPrefix(line, "#EXT-X-SESSION-KEY:"):
			g := currentGroup()
			g.SessionKeys = append(g.SessionKeys, parseKey(strings.TrimPrefix(line, "#EXT-X-SESSION-KEY:")))
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			a := parseAttrs(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:"))
			g := currentGroup()
			r := Rendition{ID: a["X-ID"], Codecs: a["CODECS"], Bandwidth: parseUint32(a["BANDWIDTH"])}
			r.Width, r.Height = parseResolution(a["RESOLUTION"])
			g.Renditions = append(g.Renditions, r)
			pendingInf = &g.Renditions[len(g.Renditions)-1]
		case strings.HasPrefix(line, "#EXT-X-MEDIA:"):
			a := parseAttrs(strings.TrimPrefix(line, "#EXT-X-MEDIA:"))
			g := currentGroup()
			g.Renditions = append(g.Renditions, Rendition{
				URI:       a["URI"],
				ID:        a["NAME"],
				Bandwidth: parseUint32(a["X-BANDWIDTH"]),
				Codecs:    a["X-CODECS"],
			})
		case strings.HasPrefix(line, "#EXT-X-WIDELEAK-PLAYLIST:"):
			a := parseAttrs(strings.TrimPrefix(line, "#EXT-X-WIDELEAK-PLAYLIST:"))
			rendition, inMedia, pendingInf = findRendition(a["URI"]), true, nil
		case strings.HasPrefix(line, "#EXT-X-KEY:"):
			if rendition != nil {
				rendition.Keys = append(rendition.Keys, parseKey(strings.TrimPrefix(line, "#EXT-X-KEY:")))
			}
		case strings.HasPrefix(line, "#EXT-X-WIDELEAK-BASE:"):
			if rendition != nil {
				rendition.BaseURI = parseAttrs(strings.TrimPrefix(line, "#EXT-X-WIDELEAK-BASE:"))["URI"]
			}
		case strings.HasPrefix(line, "#EXT-X-MAP:"):
			if rendition != nil {
				rendition.InitURI = parseAttrs(strings.TrimPrefix(line, "#EXT-X-MAP:"))["URI"]
			}
		case strings.HasPrefix(line, "#EXT-X-WIDELEAK-TEMPLATE:"):
			if rendition != nil {
				a := parseAttrs(strings.TrimPrefix(line, "#EXT-X-WIDELEAK-TEMPLATE:"))
				rendition.Template = &Template{
					Init:  a["INIT"],
					Media: a["MEDIA"],
					Start: parseUint32(a["START"]),
					Count: parseUint32(a["COUNT"]),
				}
			}
		case line == "#EXT-X-ENDLIST":
			if rendition != nil {
				rendition.HasSegments = true
			}
		case strings.HasPrefix(line, "#"):
			// Unknown or irrelevant tag (#EXTINF durations, comments).
		case inMedia:
			if rendition != nil {
				rendition.Segments = append(rendition.Segments, line)
				rendition.HasSegments = true
			}
		case pendingInf != nil:
			pendingInf.URI = line
			pendingInf = nil
		}
	}
	return p, nil
}

// parseKey decodes one #EXT-X-KEY / #EXT-X-SESSION-KEY attribute list.
func parseKey(s string) Key {
	a := parseAttrs(s)
	return Key{
		Method:    a["METHOD"],
		KeyFormat: a["KEYFORMAT"],
		KeyID:     strings.ToLower(strings.TrimPrefix(a["KEYID"], "0x")),
		Value:     a["X-VALUE"],
		URI:       a["URI"],
	}
}

// parseAttrs decodes an m3u8 attribute list (NAME=value pairs separated by
// commas, values optionally quoted). Malformed input yields whatever pairs
// decode cleanly.
func parseAttrs(s string) map[string]string {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			break
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		var value string
		if strings.HasPrefix(s, `"`) {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				value, s = s[1:], ""
			} else {
				value, s = s[1:1+end], s[end+2:]
			}
			s = strings.TrimPrefix(s, ",")
		} else {
			comma := strings.IndexByte(s, ',')
			if comma < 0 {
				value, s = s, ""
			} else {
				value, s = s[:comma], s[comma+1:]
			}
		}
		if name != "" {
			out[name] = value
		}
	}
	return out
}

func parseUint32(s string) uint32 {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0
	}
	return uint32(v)
}

func parseResolution(s string) (w, h uint16) {
	x := strings.IndexByte(s, 'x')
	if x < 0 {
		return 0, 0
	}
	wv, err1 := strconv.ParseUint(s[:x], 10, 16)
	hv, err2 := strconv.ParseUint(s[x+1:], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, 0
	}
	return uint16(wv), uint16(hv)
}

// splitLines splits on LF, trimming CR and surrounding whitespace; a UTF-8
// BOM on the first line is dropped.
func splitLines(b []byte) []string {
	raw := strings.Split(string(b), "\n")
	out := make([]string, 0, len(raw))
	for i, line := range raw {
		if i == 0 {
			line = strings.TrimPrefix(line, "\uFEFF")
		}
		line = strings.TrimSpace(line)
		if i == len(raw)-1 && line == "" {
			continue
		}
		out = append(out, line)
	}
	return out
}
