package hls

import (
	"reflect"
	"strings"
	"testing"
)

// samplePlaylist builds a playlist shaped like what the manifest dialect
// produces for a packaged title: protected video ladder, two audio
// languages, one subtitle rendition with a bare segment list.
func samplePlaylist() *Playlist {
	return &Playlist{
		MPDProfiles: "urn:mpeg:dash:profile:isoff-on-demand:2011",
		MPDType:     "static",
		MPDDuration: "PT2M",
		Periods: []Period{{
			ID: "p0",
			Groups: []Group{
				{
					Type:     TypeVideo,
					MimeType: "video/mp4",
					SessionKeys: []Key{{
						Method:    "SAMPLE-AES-CTR",
						KeyFormat: "urn:uuid:edef8ba9-79d6-4ace-a3c8-27dcd51d21ed",
						URI:       dataURIPrefix + "cHNzaC1kYXRh",
					}},
					Renditions: []Rendition{
						{
							URI:       "v-540p.m3u8",
							ID:        "v-540p",
							Bandwidth: 2_000_000,
							Width:     960,
							Height:    540,
							Codecs:    "avc1.640028",
							Keys: Keys{{
								Method:    "SAMPLE-AES-CTR",
								KeyFormat: "urn:mpeg:dash:mp4protection:2011",
								KeyID:     "00112233445566778899aabbccddeeff",
								Value:     "cenc",
							}},
							BaseURI:     "movie-1/video/540p/",
							InitURI:     "init.mp4",
							Segments:    []string{"seg1.m4s", "seg2.m4s"},
							HasSegments: true,
						},
						{
							URI:       "v-1080p.m3u8",
							ID:        "v-1080p",
							Bandwidth: 6_000_000,
							Width:     1920,
							Height:    1080,
							Codecs:    "avc1.640028",
							BaseURI:   "movie-1/video/1080p/",
							InitURI:   "init.mp4",
							Template:  &Template{Init: "init.mp4", Media: "seg$Number$.m4s", Start: 1, Count: 2},
						},
					},
				},
				{
					Type:     TypeAudio,
					MimeType: "audio/mp4",
					Language: "en",
					Renditions: []Rendition{{
						URI:         "a-en.m3u8",
						ID:          "a-en",
						Bandwidth:   128_000,
						BaseURI:     "movie-1/audio/en/",
						InitURI:     "init.mp4",
						Segments:    []string{"seg1.m4s"},
						HasSegments: true,
					}},
				},
				{
					Type:     TypeSubtitles,
					MimeType: "text/vtt",
					Language: "fr",
					Renditions: []Rendition{{
						URI:         "s-fr.m3u8",
						ID:          "s-fr",
						Bandwidth:   1000,
						Segments:    []string{"movie-1/subs/fr.vtt"},
						HasSegments: true,
					}},
				},
			},
		}},
	}
}

func TestRoundTrip(t *testing.T) {
	want := samplePlaylist()
	raw, err := want.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want.Version = 7 // Marshal defaults an unset version
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v\nwire:\n%s", got, want, raw)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	p := samplePlaylist()
	a, _ := p.Marshal()
	b, _ := p.Marshal()
	if string(a) != string(b) {
		t.Error("Marshal not deterministic")
	}
}

func TestSniff(t *testing.T) {
	raw, _ := samplePlaylist().Marshal()
	if !Sniff(raw) {
		t.Error("Sniff rejected a marshalled playlist")
	}
	if !Sniff([]byte("\n  #EXTM3U\n")) {
		t.Error("Sniff must tolerate leading whitespace")
	}
	for _, bad := range []string{"", "<MPD/>", "EXTM3U", "#EXT-X-VERSION:7"} {
		if Sniff([]byte(bad)) {
			t.Errorf("Sniff accepted %q", bad)
		}
	}
}

func TestParseRejectsNonHLS(t *testing.T) {
	if _, err := Parse([]byte("<MPD></MPD>")); err != ErrNotHLS {
		t.Errorf("Parse(non-hls) err = %v, want ErrNotHLS", err)
	}
	if _, err := Parse(nil); err != ErrNotHLS {
		t.Errorf("Parse(nil) err = %v, want ErrNotHLS", err)
	}
}

func TestKeyPSSH(t *testing.T) {
	var k Key
	k.SetPSSH("aGVsbG8=")
	if k.URI != dataURIPrefix+"aGVsbG8=" {
		t.Errorf("SetPSSH URI = %q", k.URI)
	}
	if got := k.PSSH(); got != "aGVsbG8=" {
		t.Errorf("PSSH = %q", got)
	}
	k.SetPSSH("")
	if k.URI != "" || k.PSSH() != "" {
		t.Errorf("cleared key still carries %q", k.URI)
	}
}

func TestParseEmptySegmentList(t *testing.T) {
	// An ENDLIST with no EXTINF lines is an explicit empty list, distinct
	// from a template-only playlist.
	doc := header + "\n" +
		"#EXT-X-WIDELEAK-GROUP:TYPE=VIDEO\n" +
		"#EXT-X-STREAM-INF:BANDWIDTH=100,X-ID=\"v\"\n" +
		"v.m3u8\n" +
		"#EXT-X-WIDELEAK-PLAYLIST:URI=\"v.m3u8\"\n" +
		"#EXT-X-ENDLIST\n"
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r := &p.Periods[0].Groups[0].Renditions[0]
	if !r.HasSegments || len(r.Segments) != 0 {
		t.Errorf("want explicit empty segment list, got HasSegments=%v segments=%v", r.HasSegments, r.Segments)
	}
}

func TestParseOrphanMediaPlaylist(t *testing.T) {
	// A media playlist whose URI never appeared in the master section must
	// still land somewhere instead of being dropped or panicking.
	doc := header + "\n" +
		"#EXT-X-WIDELEAK-PLAYLIST:URI=\"ghost.m3u8\"\n" +
		"#EXTINF:4.0,\nseg1.m4s\n#EXT-X-ENDLIST\n"
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Periods) != 1 || len(p.Periods[0].Groups) != 1 {
		t.Fatalf("orphan playlist not attached: %+v", p)
	}
	r := &p.Periods[0].Groups[0].Renditions[0]
	if r.URI != "ghost.m3u8" || len(r.Segments) != 1 {
		t.Errorf("orphan rendition = %+v", r)
	}
}

func TestParseAttrs(t *testing.T) {
	got := parseAttrs(`METHOD=SAMPLE-AES-CTR,URI="data:text/plain;base64,a,b=",KEYID=0xAB`)
	want := map[string]string{
		"METHOD": "SAMPLE-AES-CTR",
		"URI":    "data:text/plain;base64,a,b=",
		"KEYID":  "0xAB",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseAttrs = %v, want %v", got, want)
	}
	// Malformed lists degrade instead of erroring.
	for _, s := range []string{"", "=", "NOVALUE", `A="unterminated`, ",,,"} {
		_ = parseAttrs(s) // must not panic
	}
}

func TestMarshalSanitizesHostileValues(t *testing.T) {
	p := &Playlist{Periods: []Period{{
		ID: "p\n0\"evil",
		Groups: []Group{{
			Type: "VI DEO,X",
			Renditions: []Rendition{{
				URI:         "v.m3u8\n#EXT-X-ENDLIST",
				ID:          `v"1`,
				Segments:    []string{"seg\n1.m4s"},
				HasSegments: true,
			}},
		}},
	}}}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if strings.Contains(string(raw), "evil\n") {
		t.Error("newline survived into an attribute value")
	}
	if _, err := Parse(raw); err != nil {
		t.Errorf("sanitized output failed to re-parse: %v", err)
	}
}
