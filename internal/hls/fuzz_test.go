package hls

import (
	"testing"
	"testing/quick"
)

// The playlist parser consumes intercepted network bytes and CDM dumps —
// attacker-adjacent input that must never panic.
func TestParse_NeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Parse panicked on %q: %v", data, r)
				ok = false
			}
		}()
		_, _ = Parse(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzParse is the native fuzz target over the same attack surface: run
// via `make fuzz` (short budget) or `go test -fuzz FuzzParse ./internal/hls`.
func FuzzParse(f *testing.F) {
	valid, err := samplePlaylist().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("#EXTM3U\n"))
	f.Add([]byte("#EXTM3U\n#EXT-X-KEY:METHOD=SAMPLE-AES,URI=\"data:text/plain;base64,\n"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), "#EXT-X-ENDLIST\nstray.m4s\n"...))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-marshal, and the re-marshalled form must
		// parse again (marshal output is always well-formed).
		raw, err := p.Marshal()
		if err != nil {
			t.Errorf("parsed playlist does not re-marshal: %v", err)
			return
		}
		if _, err := Parse(raw); err != nil {
			t.Errorf("re-marshalled playlist does not re-parse: %v", err)
		}
	})
}

// Mutations of a valid playlist exercise deeper tag-decoder paths.
func TestParse_MutatedPlaylistNeverPanics(t *testing.T) {
	valid, err := samplePlaylist().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(edits []uint16) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("mutated playlist panicked: %v", r)
				ok = false
			}
		}()
		doc := append([]byte(nil), valid...)
		for _, e := range edits {
			if len(doc) == 0 {
				break
			}
			doc[int(e)%len(doc)] ^= byte(e >> 8)
		}
		if p, err := Parse(doc); err == nil {
			_, _ = p.Marshal()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
