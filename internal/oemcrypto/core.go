package oemcrypto

import (
	"crypto/rsa"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cenc"
	"repro/internal/keybox"
	"repro/internal/mp4"
	"repro/internal/wvcrypto"
)

// Persistent object names in the engine's FileStore.
const (
	storeKeybox  = "keybox"
	storeRSAKey  = "device_rsa_key"
	rsaWrapBytes = 16 // IV prefix length in the persisted RSA blob
)

// placeFn mirrors sensitive material into the engine's memory model. The
// soft (L3) engine writes into the hosting process's scannable memory; the
// TEE (L1) engine writes into secure memory.
type placeFn func(tag string, data []byte)

// core implements the full OEMCrypto logic shared by both engines. The
// engines differ only in where key material is placed, which FileStore
// backs persistence, and how calls cross into the implementation.
type core struct {
	level   SecurityLevel
	version string
	store   FileStore
	rand    io.Reader
	place   placeFn
	now     func() time.Time

	mu          sync.Mutex
	kb          *keybox.Keybox
	rsaKey      *rsa.PrivateKey
	sessions    map[SessionID]*session
	nextSession SessionID
}

// session is per-OpenSession state.
type session struct {
	keys        *wvcrypto.SessionKeys
	contentKeys map[[16]byte]loadedKey
	selected    *loadedKey
}

// loadedKey is one unwrapped content key with its key-control expiry.
type loadedKey struct {
	key       []byte
	expiresAt time.Time // zero = unlimited
}

func newCore(level SecurityLevel, version string, store FileStore, rand io.Reader, place placeFn) *core {
	if place == nil {
		place = func(string, []byte) {}
	}
	return &core{
		level:    level,
		version:  version,
		store:    store,
		rand:     rand,
		place:    place,
		now:      time.Now,
		sessions: make(map[SessionID]*session),
	}
}

// initialize loads the factory keybox from the store, mirroring it into
// engine memory — the step that, on L3, plants CWE-922.
func (c *core) initialize() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.store.Get(storeKeybox)
	if !ok {
		return ErrNoKeybox
	}
	kb, err := keybox.Parse(raw)
	if err != nil {
		return fmt.Errorf("oemcrypto: initialize: %w", err)
	}
	c.kb = kb
	c.place("keybox", raw)
	return nil
}

func (c *core) keyboxInfo() (string, uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kb == nil {
		return "", 0, ErrNoKeybox
	}
	return c.kb.StableIDString(), c.kb.SystemID(), nil
}

func (c *core) openSession() (SessionID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.sessions) >= MaxSessions {
		return 0, ErrTooManySessions
	}
	c.nextSession++
	id := c.nextSession
	c.sessions[id] = &session{contentKeys: make(map[[16]byte]loadedKey)}
	return id, nil
}

func (c *core) closeSession(id SessionID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sessions[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	delete(c.sessions, id)
	return nil
}

func (c *core) getSession(id SessionID) (*session, error) {
	s, ok := c.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	return s, nil
}

// generateDerivedKeys derives session keys from the keybox device key —
// the root step of the provisioning ladder.
func (c *core) generateDerivedKeys(id SessionID, context []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.getSession(id)
	if err != nil {
		return err
	}
	if c.kb == nil {
		return ErrNoKeybox
	}
	keys, err := wvcrypto.DeriveSessionKeys(c.kb.DeviceKey[:], context)
	if err != nil {
		return fmt.Errorf("oemcrypto: derive from keybox: %w", err)
	}
	s.keys = &keys
	c.place("derived-keys", append(append([]byte(nil), keys.Enc...), keys.MACClient...))
	return nil
}

// rewrapDeviceRSAKey completes provisioning: verify the response MAC under
// the keybox-derived server MAC key, unwrap the Device RSA key, persist it
// (wrapped under a keybox-derived storage key) and load it.
func (c *core) rewrapDeviceRSAKey(id SessionID, message, mac, wrappedKey, iv []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.getSession(id)
	if err != nil {
		return err
	}
	if s.keys == nil {
		return ErrKeysNotDerived
	}
	if !wvcrypto.VerifyHMACSHA256(s.keys.MACServer, message, mac) {
		return fmt.Errorf("%w: provisioning response", ErrSignatureInvalid)
	}
	der, err := wvcrypto.DecryptCBC(s.keys.Enc, iv, wrappedKey)
	if err != nil {
		return fmt.Errorf("oemcrypto: unwrap rsa key: %w", err)
	}
	key, err := wvcrypto.ParseRSAPrivateKey(der)
	if err != nil {
		return fmt.Errorf("oemcrypto: rewrap: %w", err)
	}
	if err := c.persistRSAKey(der); err != nil {
		return err
	}
	c.rsaKey = key
	c.place("rsa-private-key", der)
	return nil
}

// persistRSAKey stores the RSA key wrapped under a storage key derived from
// the keybox device key. (On L3 the weakness is not this file but the
// plaintext copies in process memory.)
func (c *core) persistRSAKey(der []byte) error {
	if c.kb == nil {
		return ErrNoKeybox
	}
	storageKey, err := wvcrypto.DeriveKey(c.kb.DeviceKey[:], wvcrypto.LabelProvisioning, c.kb.StableID[:], 128)
	if err != nil {
		return fmt.Errorf("oemcrypto: storage key: %w", err)
	}
	iv := make([]byte, rsaWrapBytes)
	if _, err := io.ReadFull(c.rand, iv); err != nil {
		return fmt.Errorf("oemcrypto: storage iv: %w", err)
	}
	ct, err := wvcrypto.EncryptCBC(storageKey, iv, der)
	if err != nil {
		return fmt.Errorf("oemcrypto: wrap rsa key: %w", err)
	}
	c.store.Put(storeRSAKey, append(iv, ct...))
	return nil
}

// loadDeviceRSAKey restores the provisioned RSA key from the store.
func (c *core) loadDeviceRSAKey() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadDeviceRSAKeyLocked()
}

func (c *core) loadDeviceRSAKeyLocked() error {
	if c.rsaKey != nil {
		return nil
	}
	if c.kb == nil {
		return ErrNoKeybox
	}
	blob, ok := c.store.Get(storeRSAKey)
	if !ok || len(blob) <= rsaWrapBytes {
		return ErrNotProvisioned
	}
	storageKey, err := wvcrypto.DeriveKey(c.kb.DeviceKey[:], wvcrypto.LabelProvisioning, c.kb.StableID[:], 128)
	if err != nil {
		return fmt.Errorf("oemcrypto: storage key: %w", err)
	}
	der, err := wvcrypto.DecryptCBC(storageKey, blob[:rsaWrapBytes], blob[rsaWrapBytes:])
	if err != nil {
		return fmt.Errorf("oemcrypto: unwrap stored rsa key: %w", err)
	}
	key, err := wvcrypto.ParseRSAPrivateKey(der)
	if err != nil {
		return fmt.Errorf("oemcrypto: stored rsa key: %w", err)
	}
	c.rsaKey = key
	c.place("rsa-private-key", der)
	return nil
}

func (c *core) provisioned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rsaKey != nil {
		return true
	}
	_, ok := c.store.Get(storeRSAKey)
	return ok
}

func (c *core) generateRSASignature(id SessionID, message []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.getSession(id); err != nil {
		return nil, err
	}
	if err := c.loadDeviceRSAKeyLocked(); err != nil {
		return nil, err
	}
	sig, err := wvcrypto.SignPSS(c.rand, c.rsaKey, message)
	if err != nil {
		return nil, fmt.Errorf("oemcrypto: %w", err)
	}
	return sig, nil
}

func (c *core) deriveKeysFromSessionKey(id SessionID, encSessionKey, context []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.getSession(id)
	if err != nil {
		return err
	}
	if err := c.loadDeviceRSAKeyLocked(); err != nil {
		return err
	}
	sessionKey, err := wvcrypto.DecryptOAEP(c.rsaKey, encSessionKey)
	if err != nil {
		return fmt.Errorf("oemcrypto: session key transport: %w", err)
	}
	keys, err := wvcrypto.DeriveSessionKeys(sessionKey, context)
	if err != nil {
		return fmt.Errorf("oemcrypto: derive session keys: %w", err)
	}
	s.keys = &keys
	c.place("derived-keys", append(append([]byte(nil), keys.Enc...), keys.MACClient...))
	return nil
}

func (c *core) loadKeys(id SessionID, message, mac []byte, keys []EncryptedKey) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.getSession(id)
	if err != nil {
		return err
	}
	if s.keys == nil {
		return ErrKeysNotDerived
	}
	if !wvcrypto.VerifyHMACSHA256(s.keys.MACServer, message, mac) {
		return fmt.Errorf("%w: license response", ErrSignatureInvalid)
	}
	for _, ek := range keys {
		contentKey, err := wvcrypto.DecryptCBC(s.keys.Enc, ek.IV[:], ek.Payload)
		if err != nil {
			return fmt.Errorf("oemcrypto: unwrap content key %x: %w", ek.KID, err)
		}
		if len(contentKey) != cenc.KeySize {
			return fmt.Errorf("oemcrypto: content key %x has %d bytes", ek.KID, len(contentKey))
		}
		lk := loadedKey{key: contentKey}
		if ek.DurationSeconds > 0 {
			lk.expiresAt = c.now().Add(time.Duration(ek.DurationSeconds) * time.Second)
		}
		s.contentKeys[ek.KID] = lk
		c.place("content-key:"+cenc.KIDToString(ek.KID), contentKey)
	}
	return nil
}

func (c *core) selectKey(id SessionID, kid [16]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.getSession(id)
	if err != nil {
		return err
	}
	lk, ok := s.contentKeys[kid]
	if !ok {
		return fmt.Errorf("%w: %x", ErrKeyNotLoaded, kid)
	}
	s.selected = &lk
	return nil
}

func (c *core) decryptCENC(id SessionID, scheme string, iv [8]byte, subsamples []mp4.SubsampleEntry, data []byte) ([]byte, error) {
	c.mu.Lock()
	s, err := c.getSession(id)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	lk := s.selected
	now := c.now()
	c.mu.Unlock()
	if lk == nil {
		return nil, ErrNoKeySelected
	}
	if !lk.expiresAt.IsZero() && now.After(lk.expiresAt) {
		return nil, ErrKeyExpired
	}
	out, err := cenc.DecryptSample(scheme, lk.key, iv, subsamples, data)
	if err != nil {
		return nil, fmt.Errorf("oemcrypto: %w", err)
	}
	return out, nil
}

func (c *core) sessionKeys(id SessionID) (*wvcrypto.SessionKeys, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.getSession(id)
	if err != nil {
		return nil, err
	}
	if s.keys == nil {
		return nil, ErrKeysNotDerived
	}
	return s.keys, nil
}

func (c *core) genericEncrypt(id SessionID, iv, data []byte) ([]byte, error) {
	keys, err := c.sessionKeys(id)
	if err != nil {
		return nil, err
	}
	out, err := wvcrypto.EncryptCBC(keys.Enc, iv, data)
	if err != nil {
		return nil, fmt.Errorf("oemcrypto: generic encrypt: %w", err)
	}
	return out, nil
}

func (c *core) genericDecrypt(id SessionID, iv, data []byte) ([]byte, error) {
	keys, err := c.sessionKeys(id)
	if err != nil {
		return nil, err
	}
	out, err := wvcrypto.DecryptCBC(keys.Enc, iv, data)
	if err != nil {
		return nil, fmt.Errorf("oemcrypto: generic decrypt: %w", err)
	}
	return out, nil
}

func (c *core) genericSign(id SessionID, data []byte) ([]byte, error) {
	keys, err := c.sessionKeys(id)
	if err != nil {
		return nil, err
	}
	return wvcrypto.HMACSHA256(keys.MACClient, data), nil
}

func (c *core) genericVerify(id SessionID, data, signature []byte) error {
	keys, err := c.sessionKeys(id)
	if err != nil {
		return err
	}
	if !wvcrypto.VerifyHMACSHA256(keys.MACServer, data, signature) {
		return ErrSignatureInvalid
	}
	return nil
}
