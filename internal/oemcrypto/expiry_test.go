package oemcrypto

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/keybox"
	"repro/internal/mp4"
	"repro/internal/procmem"
	"repro/internal/wvcrypto"
)

// fakeClock is a settable time source.
type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// newClockedFixture builds an L3 engine with a controllable clock.
func newClockedFixture(t *testing.T) (*engineFixture, *fakeClock) {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("expiry-fixture")
	kb, err := keybox.New("EXPIRY-DEV", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{t: time.Date(2022, 6, 27, 12, 0, 0, 0, time.UTC)}
	space := procmem.NewSpace("mediadrmserver")
	eng, err := NewSoftEngine("15.0", space, store, rand, WithClock(clock.now))
	if err != nil {
		t.Fatal(err)
	}
	return &engineFixture{
		engine: eng,
		server: &serverSide{deviceKey: kb.DeviceKey[:], rsa: sharedRSA(t), rand: rand},
		space:  space,
	}, clock
}

// licenseWithDuration loads one content key with a key-control duration.
func licenseWithDuration(t *testing.T, f *engineFixture, kid [16]byte, key []byte, seconds uint32) SessionID {
	t.Helper()
	s, err := f.engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	request := []byte("timed license request")
	if _, err := f.engine.GenerateRSASignature(s, request); err != nil {
		t.Fatal(err)
	}
	encSK, msg, mac, keys := f.server.licenseResponse(t, request, map[[16]byte][]byte{kid: key})
	for i := range keys {
		keys[i].DurationSeconds = seconds
	}
	if err := f.engine.DeriveKeysFromSessionKey(s, encSK, request); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.LoadKeys(s, msg, mac, keys); err != nil {
		t.Fatal(err)
	}
	return s
}

func encryptSample(t *testing.T, key []byte, iv [8]byte, plaintext []byte) []byte {
	t.Helper()
	var counter [16]byte
	copy(counter[:8], iv[:])
	stream, err := wvcrypto.CTRStream(key, counter[:])
	if err != nil {
		t.Fatal(err)
	}
	ct := append([]byte(nil), plaintext...)
	stream.XORKeyStream(ct, ct)
	return ct
}

func TestKeyExpiry(t *testing.T) {
	f, clock := newClockedFixture(t)
	f.provision(t)
	kid := [16]byte{0xE1}
	key := bytes.Repeat([]byte{0x71}, 16)
	s := licenseWithDuration(t, f, kid, key, 3600) // one hour

	if err := f.engine.SelectKey(s, kid); err != nil {
		t.Fatal(err)
	}
	plaintext := []byte("payload while license valid")
	iv := [8]byte{1}
	ct := encryptSample(t, key, iv, plaintext)

	// Within the window: decrypts.
	res, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, plaintext) {
		t.Error("decrypt mismatch")
	}

	// Near the edge: still fine.
	clock.advance(59 * time.Minute)
	if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct); err != nil {
		t.Fatalf("decrypt at 59min: %v", err)
	}

	// Past the duration: the CDM refuses.
	clock.advance(2 * time.Minute)
	if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct); !errors.Is(err, ErrKeyExpired) {
		t.Errorf("decrypt after expiry = %v, want ErrKeyExpired", err)
	}
}

func TestKeyExpiry_RenewalRestoresPlayback(t *testing.T) {
	f, clock := newClockedFixture(t)
	f.provision(t)
	kid := [16]byte{0xE2}
	key := bytes.Repeat([]byte{0x72}, 16)

	s := licenseWithDuration(t, f, kid, key, 60)
	if err := f.engine.SelectKey(s, kid); err != nil {
		t.Fatal(err)
	}
	iv := [8]byte{2}
	ct := encryptSample(t, key, iv, []byte("short-lived"))
	clock.advance(2 * time.Minute)
	if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct); !errors.Is(err, ErrKeyExpired) {
		t.Fatalf("want expiry, got %v", err)
	}

	// Renewal: a fresh license exchange reloads the key with a new window.
	s2 := licenseWithDuration(t, f, kid, key, 60)
	if err := f.engine.SelectKey(s2, kid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.DecryptCENC(s2, mp4.SchemeCENC, iv, nil, ct); err != nil {
		t.Errorf("post-renewal decrypt: %v", err)
	}
}

func TestKeyExpiry_ZeroDurationIsUnlimited(t *testing.T) {
	f, clock := newClockedFixture(t)
	f.provision(t)
	kid := [16]byte{0xE3}
	key := bytes.Repeat([]byte{0x73}, 16)
	s := licenseWithDuration(t, f, kid, key, 0)
	if err := f.engine.SelectKey(s, kid); err != nil {
		t.Fatal(err)
	}
	iv := [8]byte{3}
	ct := encryptSample(t, key, iv, []byte("forever"))
	clock.advance(10 * 365 * 24 * time.Hour)
	if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct); err != nil {
		t.Errorf("unlimited key expired: %v", err)
	}
}
