// Package oemcrypto implements the OEMCrypto-style API at the bottom of the
// simulated Widevine stack: numbered entry points (the _oeccXX functions
// the paper hooks with Frida), session management, the key ladder
// (keybox device key → provisioned Device RSA key → OAEP session key →
// CMAC-derived session keys → CBC-unwrapped content keys), CENC content
// decryption, and the generic crypto API used as a secure channel by
// Netflix-style apps.
//
// Two engines implement the API:
//
//   - SoftEngine (L3): everything runs in the hosting process; the keybox
//     and all derived key material live in ordinary process memory
//     (internal/procmem) — the insecure storage the paper's attack exploits
//     (CWE-922 / CVE-2021-0639).
//   - TEEEngine (L1): the same core logic runs as a trustlet inside
//     internal/tee; only opaque command buffers cross the world boundary,
//     so no key material is ever observable from the normal world.
package oemcrypto

import (
	"errors"
	"fmt"

	"repro/internal/mp4"
)

// SecurityLevel is the Widevine security level of an engine.
type SecurityLevel int

// Security levels. L2 exists in the spec but, as the paper notes, Android
// Widevine does not propose it; it is listed for completeness only.
const (
	L1 SecurityLevel = iota + 1
	L2
	L3
)

// String renders the conventional "L1"/"L2"/"L3" names.
func (l SecurityLevel) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	default:
		return fmt.Sprintf("SecurityLevel(%d)", int(l))
	}
}

// Func identifies one OEMCrypto entry point. The numbering mirrors the
// _oeccXX symbols the paper's Frida script intercepts inside
// libwvdrmengine.so / liboemcrypto.so.
type Func int

// OEMCrypto entry points.
const (
	FuncInitialize               Func = 1
	FuncTerminate                Func = 2
	FuncOpenSession              Func = 5
	FuncCloseSession             Func = 6
	FuncGenerateDerivedKeys      Func = 8
	FuncGenerateRSASignature     Func = 10
	FuncDeriveKeysFromSessionKey Func = 11
	FuncLoadKeys                 Func = 13
	FuncSelectKey                Func = 16
	FuncDecryptCENC              Func = 17
	FuncRewrapDeviceRSAKey       Func = 24
	FuncLoadDeviceRSAKey         Func = 25
	FuncGenericEncrypt           Func = 30
	FuncGenericDecrypt           Func = 31
	FuncGenericSign              Func = 32
	FuncGenericVerify            Func = 33
	FuncKeyboxInfo               Func = 40
)

// OECCName returns the hooked symbol name, e.g. "_oecc17".
func (f Func) OECCName() string { return fmt.Sprintf("_oecc%02d", int(f)) }

// String names the entry point for human-readable traces.
func (f Func) String() string {
	switch f {
	case FuncInitialize:
		return "Initialize"
	case FuncTerminate:
		return "Terminate"
	case FuncOpenSession:
		return "OpenSession"
	case FuncCloseSession:
		return "CloseSession"
	case FuncGenerateDerivedKeys:
		return "GenerateDerivedKeys"
	case FuncGenerateRSASignature:
		return "GenerateRSASignature"
	case FuncDeriveKeysFromSessionKey:
		return "DeriveKeysFromSessionKey"
	case FuncLoadKeys:
		return "LoadKeys"
	case FuncSelectKey:
		return "SelectKey"
	case FuncDecryptCENC:
		return "DecryptCENC"
	case FuncRewrapDeviceRSAKey:
		return "RewrapDeviceRSAKey"
	case FuncLoadDeviceRSAKey:
		return "LoadDeviceRSAKey"
	case FuncGenericEncrypt:
		return "GenericEncrypt"
	case FuncGenericDecrypt:
		return "GenericDecrypt"
	case FuncGenericSign:
		return "GenericSign"
	case FuncGenericVerify:
		return "GenericVerify"
	case FuncKeyboxInfo:
		return "KeyboxInfo"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// SessionID identifies one open OEMCrypto session.
type SessionID uint32

// EncryptedKey is one wrapped content key in a license response: the key ID
// it unlocks, the CBC IV, the key material encrypted under the derived
// session encryption key, and the key-control duration.
type EncryptedKey struct {
	KID     [16]byte
	IV      [16]byte
	Payload []byte
	// DurationSeconds bounds how long the loaded key may decrypt content
	// (the key-control-block duration of the real protocol). Zero means
	// unlimited.
	DurationSeconds uint32
}

// DecryptResult carries the output of DecryptCENC. When Secure is true the
// bytes went to a secure output buffer: an attached monitor must not (and
// in this simulation does not) record them.
type DecryptResult struct {
	Data   []byte
	Secure bool
}

// CallEvent describes one intercepted entry-point invocation; the monitor's
// tracer receives one per call, with buffers omitted when they crossed into
// secure memory.
type CallEvent struct {
	Func    Func
	Session SessionID
	// Library is the shared object the hooked symbol lives in:
	// "libwvdrmengine.so" for the L3 software path, "liboemcrypto.so" for
	// the L1 TEE path. The study's Q1 classification keys off this, as the
	// paper does ("the use of L1 is confirmed whenever the control flow
	// reaches liboemcrypto.so").
	Library string
	// In and Out are dumps of the call's main input/output buffers, when
	// visible from the normal world.
	In  []byte
	Out []byte
	// Keys is the wrapped-key argument dump of a LoadKeys call (the hook
	// dumps every argument; these are ciphertext until the ladder is
	// re-implemented).
	Keys []EncryptedKey
	Err  error
}

// Shared-object names reported in call events.
const (
	LibWVDRMEngine = "libwvdrmengine.so"
	LibOEMCrypto   = "liboemcrypto.so"
)

// Tracer observes entry-point calls. Engines invoke it synchronously; a nil
// tracer disables tracing.
type Tracer func(CallEvent)

// Engine is the OEMCrypto API surface the CDM layer drives.
type Engine interface {
	// SecurityLevel reports L1 or L3.
	SecurityLevel() SecurityLevel
	// Version reports the CDM version string (e.g. "15.0", "3.1.0").
	Version() string
	// SetTracer installs the monitor's hook; passing nil detaches it.
	SetTracer(t Tracer)

	// KeyboxInfo exposes the provisioning identity: the stable device ID
	// and Widevine system ID from the keybox.
	KeyboxInfo() (stableID string, systemID uint32, err error)

	// OpenSession allocates a session; CloseSession releases it.
	OpenSession() (SessionID, error)
	CloseSession(s SessionID) error

	// GenerateDerivedKeys derives the session's enc/MAC keys from the
	// KEYBOX device key and the given context (provisioning flow).
	GenerateDerivedKeys(s SessionID, context []byte) error
	// RewrapDeviceRSAKey verifies and unwraps a provisioning response,
	// installing the Device RSA key persistently.
	RewrapDeviceRSAKey(s SessionID, message, mac, wrappedKey, iv []byte) error
	// LoadDeviceRSAKey loads the provisioned RSA key for use; it fails if
	// the device was never provisioned.
	LoadDeviceRSAKey() error
	// Provisioned reports whether a Device RSA key is installed.
	Provisioned() bool

	// GenerateRSASignature signs a license request with the Device RSA key
	// (RSASSA-PSS).
	GenerateRSASignature(s SessionID, message []byte) ([]byte, error)
	// DeriveKeysFromSessionKey OAEP-decrypts the server's session key and
	// derives the session enc/MAC keys bound to context (license flow).
	DeriveKeysFromSessionKey(s SessionID, encSessionKey, context []byte) error
	// LoadKeys verifies the license response MAC and unwraps the content
	// keys into the session.
	LoadKeys(s SessionID, message, mac []byte, keys []EncryptedKey) error
	// SelectKey chooses the loaded content key for subsequent decryption.
	SelectKey(s SessionID, kid [16]byte) error
	// DecryptCENC decrypts one sample with the selected key.
	DecryptCENC(s SessionID, scheme string, iv [8]byte, subsamples []mp4.SubsampleEntry, data []byte) (DecryptResult, error)

	// Generic crypto (the non-DASH API; used by Netflix-style apps as a
	// secure channel for manifest URIs).
	GenericEncrypt(s SessionID, iv, data []byte) ([]byte, error)
	GenericDecrypt(s SessionID, iv, data []byte) ([]byte, error)
	GenericSign(s SessionID, data []byte) ([]byte, error)
	GenericVerify(s SessionID, data, signature []byte) error
}

// Errors shared by engine implementations.
var (
	// ErrNoSession is returned for an unknown session ID.
	ErrNoSession = errors.New("oemcrypto: no such session")
	// ErrNoKeybox is returned when the engine has no installed keybox.
	ErrNoKeybox = errors.New("oemcrypto: keybox not installed")
	// ErrNotProvisioned is returned when the Device RSA key is missing.
	ErrNotProvisioned = errors.New("oemcrypto: device not provisioned")
	// ErrSignatureInvalid is returned when a response MAC fails to verify.
	ErrSignatureInvalid = errors.New("oemcrypto: signature verification failed")
	// ErrKeysNotDerived is returned when an operation needs session keys
	// that were never derived.
	ErrKeysNotDerived = errors.New("oemcrypto: session keys not derived")
	// ErrKeyNotLoaded is returned when the requested content key is absent.
	ErrKeyNotLoaded = errors.New("oemcrypto: content key not loaded")
	// ErrNoKeySelected is returned by DecryptCENC before SelectKey.
	ErrNoKeySelected = errors.New("oemcrypto: no content key selected")
	// ErrKeyExpired is returned when the selected key's license duration
	// has elapsed; the app must renew the license.
	ErrKeyExpired = errors.New("oemcrypto: content key expired")
	// ErrTooManySessions is returned when the engine's session table is
	// full (real CDMs have a small fixed table; OEMCrypto returns
	// OEMCrypto_ERROR_TOO_MANY_SESSIONS).
	ErrTooManySessions = errors.New("oemcrypto: too many open sessions")
)

// MaxSessions is the engine session-table size, matching the small fixed
// tables of production CDMs.
const MaxSessions = 32

// FileStore is the persistence surface engines use for provisioned state.
// The L3 engine is handed the device's ordinary flash storage; the L1
// trustlet uses TEE secure storage instead.
type FileStore interface {
	Put(name string, data []byte)
	Get(name string) ([]byte, bool)
}
