package oemcrypto

import (
	"testing"
	"testing/quick"

	"repro/internal/keybox"
	"repro/internal/tee"
	"repro/internal/wvcrypto"
)

// newRawTrustletWorld loads the Widevine trustlet so tests can poke the SMC
// boundary directly, bypassing the typed adapter.
func newRawTrustletWorld(t *testing.T) *tee.World {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("raw-trustlet")
	kb, err := keybox.New("RAW-TEE-DEV", 7711, rand)
	if err != nil {
		t.Fatal(err)
	}
	world := tee.NewWorld("raw")
	world.ProvisionStorage(TrustletName, "keybox", kb.Marshal())
	if err := world.Load(NewTrustlet("15.0", rand)); err != nil {
		t.Fatal(err)
	}
	return world
}

// TestTrustlet_UnknownCommand: the SMC gateway rejects unmapped commands.
func TestTrustlet_UnknownCommand(t *testing.T) {
	world := newRawTrustletWorld(t)
	for _, cmd := range []uint32{0, 4, 99, 0xFFFFFFFF} {
		if _, err := world.Invoke(TrustletName, cmd, nil); err == nil {
			t.Errorf("cmd %d accepted", cmd)
		}
	}
}

// TestTrustlet_GarbageInputNeverPanics: the world boundary carries
// attacker-reachable bytes (a compromised normal world); the trustlet must
// fail cleanly, never crash the secure world.
func TestTrustlet_GarbageInputNeverPanics(t *testing.T) {
	world := newRawTrustletWorld(t)
	cmds := []uint32{
		uint32(FuncInitialize), uint32(FuncOpenSession), uint32(FuncCloseSession),
		uint32(FuncGenerateDerivedKeys), uint32(FuncLoadKeys), uint32(FuncDecryptCENC),
		uint32(FuncGenericDecrypt), uint32(FuncRewrapDeviceRSAKey),
	}
	prop := func(pick uint8, data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("trustlet panicked on cmd input %x: %v", data, r)
				ok = false
			}
		}()
		cmd := cmds[int(pick)%len(cmds)]
		_, _ = world.Invoke(TrustletName, cmd, data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTrustlet_EmptyInputInitializes: an empty request body is the valid
// Initialize form.
func TestTrustlet_EmptyInputInitializes(t *testing.T) {
	world := newRawTrustletWorld(t)
	out, err := world.Invoke(TrustletName, uint32(FuncInitialize), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("empty response from Initialize")
	}
}
