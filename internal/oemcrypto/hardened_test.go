package oemcrypto

import (
	"bytes"
	"testing"

	"repro/internal/keybox"
	"repro/internal/mp4"
	"repro/internal/procmem"
	"repro/internal/wvcrypto"
)

// newHardenedFixture builds an L3 engine with memory scrubbing — the
// ablation showing CVE-2021-0639 is about insecure storage, not L3 itself.
func newHardenedFixture(t testing.TB) *engineFixture {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("hardened-fixture")
	kb, err := keybox.New("HARDENED-L3", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	space := procmem.NewSpace("mediadrmserver")
	eng, err := NewSoftEngine("15.0", space, store, rand, WithMemoryScrubbing())
	if err != nil {
		t.Fatal(err)
	}
	return &engineFixture{
		engine: eng,
		server: &serverSide{deviceKey: kb.DeviceKey[:], rsa: sharedRSA(t), rand: rand},
		space:  space,
	}
}

// TestHardenedL3ResistsScan: with scrubbing enabled, the full provisioning
// and license flow leaves NO keybox magic or key material in process
// memory, while functionality is unimpaired.
func TestHardenedL3ResistsScan(t *testing.T) {
	f := newHardenedFixture(t)
	kid := [16]byte{0x5E}
	ck := bytes.Repeat([]byte{0xD4}, 16)

	f.provision(t)
	s := f.license(t, map[[16]byte][]byte{kid: ck})
	if err := f.engine.SelectKey(s, kid); err != nil {
		t.Fatal(err)
	}

	// Functionality intact: a sample still decrypts.
	plaintext := []byte("hardened engine still plays media")
	iv := [8]byte{3}
	var counter [16]byte
	copy(counter[:8], iv[:])
	stream, err := wvcrypto.CTRStream(ck, counter[:])
	if err != nil {
		t.Fatal(err)
	}
	ct := append([]byte(nil), plaintext...)
	stream.XORKeyStream(ct, ct)
	res, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, plaintext) {
		t.Error("hardened engine decrypt mismatch")
	}

	// Attack surface gone: the scans that succeed against the default L3
	// engine find nothing here.
	if hits := f.space.Scan(keybox.Magic[:]); len(hits) != 0 {
		t.Errorf("keybox magic found in %d regions of hardened engine memory", len(hits))
	}
	if hits := f.space.Scan(ck); len(hits) != 0 {
		t.Error("content key found in hardened engine memory")
	}
}
