package oemcrypto

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mp4"
	"repro/internal/wvcrypto"
)

// TestConcurrentSessions drives many sessions in parallel through a full
// license + decrypt cycle on both engines. Run with -race.
func TestConcurrentSessions(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			f.provision(t)

			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					kid := [16]byte{byte(worker + 1)}
					ck := bytes.Repeat([]byte{byte(worker + 0x10)}, 16)
					s := f.license(t, map[[16]byte][]byte{kid: ck})
					if err := f.engine.SelectKey(s, kid); err != nil {
						errs <- err
						return
					}
					plaintext := []byte(fmt.Sprintf("worker-%d-payload-0123456789", worker))
					iv := [8]byte{byte(worker)}
					var counter [16]byte
					copy(counter[:8], iv[:])
					stream, err := wvcrypto.CTRStream(ck, counter[:])
					if err != nil {
						errs <- err
						return
					}
					ct := append([]byte(nil), plaintext...)
					stream.XORKeyStream(ct, ct)
					res, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct)
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(res.Data, plaintext) {
						errs <- fmt.Errorf("worker %d: decrypt mismatch", worker)
						return
					}
					if err := f.engine.CloseSession(s); err != nil {
						errs <- err
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentTracerSwaps exercises hook install/remove racing with
// traffic (a monitor attaching mid-playback).
func TestConcurrentTracerSwaps(t *testing.T) {
	f := newSoftFixture(t, "15.0")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.engine.SetTracer(func(CallEvent) {})
				f.engine.SetTracer(nil)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		s, err := f.engine.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.engine.CloseSession(s); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkDecryptCENC_L1 measures the TEE path's per-sample decrypt cost,
// the ablation counterpart of BenchmarkDecryptCENC (L3): the difference is
// the world-boundary crossing (gob + SMC dispatch).
func BenchmarkDecryptCENC_L1(b *testing.B) {
	f := newTEEFixture(b, "15.0")
	f.provision(b)
	kid := [16]byte{1}
	ck := bytes.Repeat([]byte{2}, 16)
	s := f.license(b, map[[16]byte][]byte{kid: ck})
	if err := f.engine.SelectKey(s, kid); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x3C}, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, [8]byte{1}, nil, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeyLadder_Hardened measures the scrubbing ablation's overhead on
// the license flow.
func BenchmarkKeyLadder_Hardened(b *testing.B) {
	f := newHardenedFixture(b)
	f.provision(b)
	kid := [16]byte{1}
	ck := bytes.Repeat([]byte{2}, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := f.license(b, map[[16]byte][]byte{kid: ck})
		if err := f.engine.CloseSession(s); err != nil {
			b.Fatal(err)
		}
	}
}
