package oemcrypto

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/keybox"
	"repro/internal/mp4"
	"repro/internal/procmem"
)

// SoftEngine is the L3 software-only OEMCrypto implementation. It runs in
// the hosting DRM server process and — crucially for the paper — mirrors
// the keybox, the Device RSA key, derived keys and unwrapped content keys
// into that process's ordinary memory, where any attached monitor can scan
// for them (CWE-922, CVE-2021-0639).
type SoftEngine struct {
	core *core

	mu      sync.Mutex
	tracer  Tracer
	space   *procmem.Space
	scrub   bool
	clock   func() time.Time
	regions []*procmem.Region
}

var _ Engine = (*SoftEngine)(nil)

// SoftOption customizes a SoftEngine.
type SoftOption func(*SoftEngine)

// WithMemoryScrubbing makes the engine zero every mirrored copy of key
// material immediately after use — the hardening that would have defeated
// CVE-2021-0639. It exists as an ablation: the default (no scrubbing)
// models the shipped CDM the paper broke.
func WithMemoryScrubbing() SoftOption {
	return func(e *SoftEngine) { e.scrub = true }
}

// WithClock injects the time source used for key-control expiry; tests use
// it to fast-forward license durations.
func WithClock(now func() time.Time) SoftOption {
	return func(e *SoftEngine) { e.clock = now }
}

// NewSoftEngine boots an L3 engine inside the given process memory space,
// loading the factory keybox from store. version is the CDM version string
// (the discontinued Nexus 5 runs "3.1.0"; current devices "15.0").
func NewSoftEngine(version string, space *procmem.Space, store FileStore, rand io.Reader, opts ...SoftOption) (*SoftEngine, error) {
	e := &SoftEngine{space: space}
	for _, opt := range opts {
		opt(e)
	}
	e.core = newCore(L3, version, store, rand, e.placeInProcess)
	if e.clock != nil {
		e.core.now = e.clock
	}
	if err := e.core.initialize(); err != nil {
		return nil, err
	}
	e.emit(CallEvent{Func: FuncInitialize})
	return e, nil
}

// placeInProcess copies sensitive bytes into the hosting process's memory —
// the insecure-storage sink the attack exploits. A hardened engine scrubs
// the copy right after the operation that needed it completes.
func (e *SoftEngine) placeInProcess(tag string, data []byte) {
	r, err := e.space.Alloc("libwvdrmengine:"+tag, len(data))
	if err != nil {
		return // allocation failures only lose the mirror, never the call
	}
	if err := r.Write(0, data); err != nil {
		return
	}
	if e.scrub {
		r.Zero()
		return
	}
	e.mu.Lock()
	e.regions = append(e.regions, r)
	e.mu.Unlock()
}

// SecurityLevel reports L3.
func (e *SoftEngine) SecurityLevel() SecurityLevel { return L3 }

// Version reports the CDM version string.
func (e *SoftEngine) Version() string { return e.core.version }

// SetTracer installs or removes the monitor hook.
func (e *SoftEngine) SetTracer(t Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = t
}

func (e *SoftEngine) emit(ev CallEvent) {
	e.mu.Lock()
	t := e.tracer
	e.mu.Unlock()
	if t != nil {
		ev.Library = LibWVDRMEngine
		t(ev)
	}
}

// KeyboxInfo exposes the provisioning identity from the keybox.
func (e *SoftEngine) KeyboxInfo() (string, uint32, error) {
	id, sys, err := e.core.keyboxInfo()
	e.emit(CallEvent{Func: FuncKeyboxInfo, Out: []byte(id), Err: err})
	return id, sys, err
}

// OpenSession allocates a session.
func (e *SoftEngine) OpenSession() (SessionID, error) {
	id, err := e.core.openSession()
	e.emit(CallEvent{Func: FuncOpenSession, Session: id, Err: err})
	return id, err
}

// CloseSession releases a session.
func (e *SoftEngine) CloseSession(s SessionID) error {
	err := e.core.closeSession(s)
	e.emit(CallEvent{Func: FuncCloseSession, Session: s, Err: err})
	return err
}

// GenerateDerivedKeys derives session keys from the keybox device key.
func (e *SoftEngine) GenerateDerivedKeys(s SessionID, context []byte) error {
	err := e.core.generateDerivedKeys(s, context)
	e.emit(CallEvent{Func: FuncGenerateDerivedKeys, Session: s, In: dup(context), Err: err})
	return err
}

// RewrapDeviceRSAKey installs the provisioned Device RSA key.
func (e *SoftEngine) RewrapDeviceRSAKey(s SessionID, message, mac, wrappedKey, iv []byte) error {
	err := e.core.rewrapDeviceRSAKey(s, message, mac, wrappedKey, iv)
	e.emit(CallEvent{Func: FuncRewrapDeviceRSAKey, Session: s, In: dup(wrappedKey), Err: err})
	return err
}

// LoadDeviceRSAKey restores the provisioned RSA key.
func (e *SoftEngine) LoadDeviceRSAKey() error {
	err := e.core.loadDeviceRSAKey()
	e.emit(CallEvent{Func: FuncLoadDeviceRSAKey, Err: err})
	return err
}

// Provisioned reports whether a Device RSA key is installed.
func (e *SoftEngine) Provisioned() bool { return e.core.provisioned() }

// GenerateRSASignature signs a license request.
func (e *SoftEngine) GenerateRSASignature(s SessionID, message []byte) ([]byte, error) {
	sig, err := e.core.generateRSASignature(s, message)
	e.emit(CallEvent{Func: FuncGenerateRSASignature, Session: s, In: dup(message), Out: dup(sig), Err: err})
	return sig, err
}

// DeriveKeysFromSessionKey derives session keys from the license server's
// OAEP-wrapped session key.
func (e *SoftEngine) DeriveKeysFromSessionKey(s SessionID, encSessionKey, context []byte) error {
	err := e.core.deriveKeysFromSessionKey(s, encSessionKey, context)
	e.emit(CallEvent{Func: FuncDeriveKeysFromSessionKey, Session: s, In: dup(encSessionKey), Err: err})
	return err
}

// LoadKeys unwraps license content keys into the session.
func (e *SoftEngine) LoadKeys(s SessionID, message, mac []byte, keys []EncryptedKey) error {
	err := e.core.loadKeys(s, message, mac, keys)
	e.emit(CallEvent{Func: FuncLoadKeys, Session: s, In: dup(message), Keys: dupKeys(keys), Err: err})
	return err
}

func dupKeys(keys []EncryptedKey) []EncryptedKey {
	if keys == nil {
		return nil
	}
	out := make([]EncryptedKey, len(keys))
	for i, k := range keys {
		out[i] = EncryptedKey{KID: k.KID, IV: k.IV, Payload: dup(k.Payload)}
	}
	return out
}

// SelectKey chooses the active content key.
func (e *SoftEngine) SelectKey(s SessionID, kid [16]byte) error {
	err := e.core.selectKey(s, kid)
	e.emit(CallEvent{Func: FuncSelectKey, Session: s, In: kid[:], Err: err})
	return err
}

// DecryptCENC decrypts one sample. On L3 the output is an ordinary buffer,
// so an attached monitor sees the decrypted bytes — exactly the dump the
// paper performs.
func (e *SoftEngine) DecryptCENC(s SessionID, scheme string, iv [8]byte, subsamples []mp4.SubsampleEntry, data []byte) (DecryptResult, error) {
	out, err := e.core.decryptCENC(s, scheme, iv, subsamples, data)
	e.emit(CallEvent{Func: FuncDecryptCENC, Session: s, In: dup(data), Out: dup(out), Err: err})
	if err != nil {
		return DecryptResult{}, err
	}
	return DecryptResult{Data: out, Secure: false}, nil
}

// GenericEncrypt encrypts arbitrary data under the session keys.
func (e *SoftEngine) GenericEncrypt(s SessionID, iv, data []byte) ([]byte, error) {
	out, err := e.core.genericEncrypt(s, iv, data)
	e.emit(CallEvent{Func: FuncGenericEncrypt, Session: s, In: dup(data), Out: dup(out), Err: err})
	return out, err
}

// GenericDecrypt decrypts arbitrary data under the session keys. Its output
// returns to the app in normal memory, which is how the paper recovered
// Netflix's protected manifest URIs.
func (e *SoftEngine) GenericDecrypt(s SessionID, iv, data []byte) ([]byte, error) {
	out, err := e.core.genericDecrypt(s, iv, data)
	e.emit(CallEvent{Func: FuncGenericDecrypt, Session: s, In: dup(data), Out: dup(out), Err: err})
	return out, err
}

// GenericSign MACs arbitrary data with the client session key.
func (e *SoftEngine) GenericSign(s SessionID, data []byte) ([]byte, error) {
	out, err := e.core.genericSign(s, data)
	e.emit(CallEvent{Func: FuncGenericSign, Session: s, In: dup(data), Out: dup(out), Err: err})
	return out, err
}

// GenericVerify checks a server MAC over arbitrary data.
func (e *SoftEngine) GenericVerify(s SessionID, data, signature []byte) error {
	err := e.core.genericVerify(s, data, signature)
	e.emit(CallEvent{Func: FuncGenericVerify, Session: s, In: dup(data), Err: err})
	return err
}

// InstallKeybox writes a factory keybox into a device store — the
// manufacturing step for L3 devices (L1 devices get theirs seeded into TEE
// secure storage instead).
func InstallKeybox(store FileStore, kb []byte) error {
	if _, err := keybox.Parse(kb); err != nil {
		return fmt.Errorf("oemcrypto: install keybox: %w", err)
	}
	store.Put(storeKeybox, kb)
	return nil
}

func dup(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
