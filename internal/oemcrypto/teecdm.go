package oemcrypto

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/mp4"
	"repro/internal/tee"
)

// TrustletName is the Widevine trusted application's name in the TEE.
const TrustletName = "widevine"

// teeRequest/teeResponse are the gob-framed messages crossing the world
// boundary. Only these opaque bytes are ever visible to a normal-world
// monitor — never the trustlet's internal key material.
type teeRequest struct {
	Session    SessionID
	Context    []byte
	Message    []byte
	MAC        []byte
	WrappedKey []byte
	IV         []byte
	IV8        [8]byte
	KID        [16]byte
	Scheme     string
	Subsamples []mp4.SubsampleEntry
	Data       []byte
	Keys       []EncryptedKey
}

type teeResponse struct {
	Session  SessionID
	Out      []byte
	StableID string
	SystemID uint32
	Bool     bool
	Err      string
}

// Trustlet is the Widevine trusted application: the shared core running
// entirely inside the secure world, with key material in secure memory and
// persistence in TEE secure storage.
type Trustlet struct {
	version string
	rand    io.Reader

	mu   sync.Mutex
	core *core
}

var _ tee.Trustlet = (*Trustlet)(nil)

// NewTrustlet builds the Widevine trusted app. Load it into a tee.World and
// drive it through NewTEEEngine.
func NewTrustlet(version string, rand io.Reader) *Trustlet {
	return &Trustlet{version: version, rand: rand}
}

// Name implements tee.Trustlet.
func (t *Trustlet) Name() string { return TrustletName }

// Invoke implements tee.Trustlet: decode the request, run the command with
// all key material confined to the secure world, encode the response.
func (t *Trustlet) Invoke(ctx *tee.Context, cmd uint32, input []byte) ([]byte, error) {
	t.mu.Lock()
	if t.core == nil {
		// First invocation: bind the core to this world's secure storage
		// and secure memory.
		store := &teeStore{ctx: ctx}
		place := func(tag string, data []byte) {
			r, err := ctx.Alloc(tag, len(data))
			if err != nil {
				return
			}
			_ = r.Write(0, data)
		}
		t.core = newCore(L1, t.version, store, t.rand, place)
	}
	c := t.core
	t.mu.Unlock()

	var req teeRequest
	if len(input) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(input)).Decode(&req); err != nil {
			return nil, fmt.Errorf("oemcrypto: tee request: %w", err)
		}
	}

	var resp teeResponse
	switch Func(cmd) {
	case FuncInitialize:
		resp.Err = errString(c.initialize())
	case FuncKeyboxInfo:
		id, sys, err := c.keyboxInfo()
		resp.StableID, resp.SystemID, resp.Err = id, sys, errString(err)
	case FuncOpenSession:
		id, err := c.openSession()
		resp.Session, resp.Err = id, errString(err)
	case FuncCloseSession:
		resp.Err = errString(c.closeSession(req.Session))
	case FuncGenerateDerivedKeys:
		resp.Err = errString(c.generateDerivedKeys(req.Session, req.Context))
	case FuncRewrapDeviceRSAKey:
		resp.Err = errString(c.rewrapDeviceRSAKey(req.Session, req.Message, req.MAC, req.WrappedKey, req.IV))
	case FuncLoadDeviceRSAKey:
		resp.Err = errString(c.loadDeviceRSAKey())
	case FuncGenerateRSASignature:
		out, err := c.generateRSASignature(req.Session, req.Message)
		resp.Out, resp.Err = out, errString(err)
	case FuncDeriveKeysFromSessionKey:
		resp.Err = errString(c.deriveKeysFromSessionKey(req.Session, req.Data, req.Context))
	case FuncLoadKeys:
		resp.Err = errString(c.loadKeys(req.Session, req.Message, req.MAC, req.Keys))
	case FuncSelectKey:
		resp.Err = errString(c.selectKey(req.Session, req.KID))
	case FuncDecryptCENC:
		out, err := c.decryptCENC(req.Session, req.Scheme, req.IV8, req.Subsamples, req.Data)
		resp.Out, resp.Err = out, errString(err)
	case FuncGenericEncrypt:
		out, err := c.genericEncrypt(req.Session, req.IV, req.Data)
		resp.Out, resp.Err = out, errString(err)
	case FuncGenericDecrypt:
		out, err := c.genericDecrypt(req.Session, req.IV, req.Data)
		resp.Out, resp.Err = out, errString(err)
	case FuncGenericSign:
		out, err := c.genericSign(req.Session, req.Data)
		resp.Out, resp.Err = out, errString(err)
	case FuncGenericVerify:
		resp.Err = errString(c.genericVerify(req.Session, req.Data, req.MAC))
	case FuncTerminate:
		// no-op; sessions die with the world
	case Func(funcProvisioned):
		resp.Bool = c.provisioned()
	default:
		return nil, fmt.Errorf("oemcrypto: unknown tee command %d", cmd)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&resp); err != nil {
		return nil, fmt.Errorf("oemcrypto: tee response: %w", err)
	}
	return buf.Bytes(), nil
}

// funcProvisioned is a pseudo entry point (outside the hooked table) the
// adapter uses for the Provisioned query.
const funcProvisioned = 3

// teeStore adapts TEE secure storage to the FileStore interface.
type teeStore struct {
	ctx *tee.Context
}

func (s *teeStore) Put(name string, data []byte) { s.ctx.StorePersistent(name, data) }

func (s *teeStore) Get(name string) ([]byte, bool) {
	data, err := s.ctx.LoadPersistent(name)
	if err != nil {
		return nil, false
	}
	return data, true
}

// TEEEngine is the normal-world adapter (the liboemcrypto.so shim): it
// serializes every call into an opaque command buffer and invokes the
// Widevine trustlet. A monitor hooked here sees call metadata and the
// normal-world buffers, but L1 decrypted media goes to secure output
// buffers and is withheld from the trace.
type TEEEngine struct {
	world   *tee.World
	version string

	mu     sync.Mutex
	tracer Tracer
}

var _ Engine = (*TEEEngine)(nil)

// NewTEEEngine connects to the Widevine trustlet in world and initializes
// it (loading the keybox from TEE secure storage).
func NewTEEEngine(version string, world *tee.World) (*TEEEngine, error) {
	e := &TEEEngine{world: world, version: version}
	resp, err := e.call(FuncInitialize, teeRequest{})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, mapTEEError(resp.Err)
	}
	return e, nil
}

// call serializes a request, crosses the world boundary and decodes the
// response.
func (e *TEEEngine) call(fn Func, req teeRequest) (teeResponse, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return teeResponse{}, fmt.Errorf("oemcrypto: encode tee request: %w", err)
	}
	out, err := e.world.Invoke(TrustletName, uint32(fn), buf.Bytes())
	if err != nil {
		return teeResponse{}, err
	}
	var resp teeResponse
	if err := gob.NewDecoder(bytes.NewReader(out)).Decode(&resp); err != nil {
		return teeResponse{}, fmt.Errorf("oemcrypto: decode tee response: %w", err)
	}
	return resp, nil
}

// mapTEEError rehydrates sentinel errors across the gob boundary so callers
// can still match with errors.Is.
func mapTEEError(msg string) error {
	if msg == "" {
		return nil
	}
	for _, sentinel := range []error{
		ErrNoSession, ErrNoKeybox, ErrNotProvisioned, ErrSignatureInvalid,
		ErrKeysNotDerived, ErrKeyNotLoaded, ErrNoKeySelected,
		ErrKeyExpired, ErrTooManySessions,
	} {
		if msg == sentinel.Error() {
			return sentinel
		}
	}
	return errors.New(msg)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	// Preserve sentinel identity where possible: unwrap to the sentinel
	// message if the chain contains one.
	for _, sentinel := range []error{
		ErrNoSession, ErrNoKeybox, ErrNotProvisioned, ErrSignatureInvalid,
		ErrKeysNotDerived, ErrKeyNotLoaded, ErrNoKeySelected,
		ErrKeyExpired, ErrTooManySessions,
	} {
		if errors.Is(err, sentinel) {
			return sentinel.Error()
		}
	}
	return err.Error()
}

// SecurityLevel reports L1.
func (e *TEEEngine) SecurityLevel() SecurityLevel { return L1 }

// Version reports the CDM version string.
func (e *TEEEngine) Version() string { return e.version }

// SetTracer installs or removes the monitor hook on the normal-world shim.
func (e *TEEEngine) SetTracer(t Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = t
}

func (e *TEEEngine) emit(ev CallEvent) {
	e.mu.Lock()
	t := e.tracer
	e.mu.Unlock()
	if t != nil {
		ev.Library = LibOEMCrypto
		t(ev)
	}
}

// KeyboxInfo exposes the provisioning identity.
func (e *TEEEngine) KeyboxInfo() (string, uint32, error) {
	resp, err := e.call(FuncKeyboxInfo, teeRequest{})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncKeyboxInfo, Out: []byte(resp.StableID), Err: err})
	return resp.StableID, resp.SystemID, err
}

// OpenSession allocates a session.
func (e *TEEEngine) OpenSession() (SessionID, error) {
	resp, err := e.call(FuncOpenSession, teeRequest{})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncOpenSession, Session: resp.Session, Err: err})
	return resp.Session, err
}

// CloseSession releases a session.
func (e *TEEEngine) CloseSession(s SessionID) error {
	resp, err := e.call(FuncCloseSession, teeRequest{Session: s})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncCloseSession, Session: s, Err: err})
	return err
}

// GenerateDerivedKeys derives session keys from the keybox device key.
func (e *TEEEngine) GenerateDerivedKeys(s SessionID, context []byte) error {
	resp, err := e.call(FuncGenerateDerivedKeys, teeRequest{Session: s, Context: context})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncGenerateDerivedKeys, Session: s, In: dup(context), Err: err})
	return err
}

// RewrapDeviceRSAKey installs the provisioned Device RSA key.
func (e *TEEEngine) RewrapDeviceRSAKey(s SessionID, message, mac, wrappedKey, iv []byte) error {
	resp, err := e.call(FuncRewrapDeviceRSAKey, teeRequest{
		Session: s, Message: message, MAC: mac, WrappedKey: wrappedKey, IV: iv,
	})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncRewrapDeviceRSAKey, Session: s, In: dup(wrappedKey), Err: err})
	return err
}

// LoadDeviceRSAKey restores the provisioned RSA key inside the TEE.
func (e *TEEEngine) LoadDeviceRSAKey() error {
	resp, err := e.call(FuncLoadDeviceRSAKey, teeRequest{})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncLoadDeviceRSAKey, Err: err})
	return err
}

// Provisioned reports whether a Device RSA key is installed.
func (e *TEEEngine) Provisioned() bool {
	resp, err := e.call(Func(funcProvisioned), teeRequest{})
	if err != nil {
		return false
	}
	return resp.Bool
}

// GenerateRSASignature signs a license request inside the TEE.
func (e *TEEEngine) GenerateRSASignature(s SessionID, message []byte) ([]byte, error) {
	resp, err := e.call(FuncGenerateRSASignature, teeRequest{Session: s, Message: message})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncGenerateRSASignature, Session: s, In: dup(message), Out: dup(resp.Out), Err: err})
	return resp.Out, err
}

// DeriveKeysFromSessionKey derives session keys inside the TEE.
func (e *TEEEngine) DeriveKeysFromSessionKey(s SessionID, encSessionKey, context []byte) error {
	resp, err := e.call(FuncDeriveKeysFromSessionKey, teeRequest{Session: s, Data: encSessionKey, Context: context})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncDeriveKeysFromSessionKey, Session: s, In: dup(encSessionKey), Err: err})
	return err
}

// LoadKeys unwraps license content keys inside the TEE.
func (e *TEEEngine) LoadKeys(s SessionID, message, mac []byte, keys []EncryptedKey) error {
	resp, err := e.call(FuncLoadKeys, teeRequest{Session: s, Message: message, MAC: mac, Keys: keys})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncLoadKeys, Session: s, In: dup(message), Keys: dupKeys(keys), Err: err})
	return err
}

// SelectKey chooses the active content key.
func (e *TEEEngine) SelectKey(s SessionID, kid [16]byte) error {
	resp, err := e.call(FuncSelectKey, teeRequest{Session: s, KID: kid})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncSelectKey, Session: s, In: kid[:], Err: err})
	return err
}

// DecryptCENC decrypts one sample into a SECURE output buffer: the trace
// records the call and the (encrypted) input, but never the plaintext.
func (e *TEEEngine) DecryptCENC(s SessionID, scheme string, iv [8]byte, subsamples []mp4.SubsampleEntry, data []byte) (DecryptResult, error) {
	resp, err := e.call(FuncDecryptCENC, teeRequest{
		Session: s, Scheme: scheme, IV8: iv, Subsamples: subsamples, Data: data,
	})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	// Out deliberately omitted: secure output path.
	e.emit(CallEvent{Func: FuncDecryptCENC, Session: s, In: dup(data), Err: err})
	if err != nil {
		return DecryptResult{}, err
	}
	return DecryptResult{Data: resp.Out, Secure: true}, nil
}

// GenericEncrypt encrypts arbitrary data under the session keys.
func (e *TEEEngine) GenericEncrypt(s SessionID, iv, data []byte) ([]byte, error) {
	resp, err := e.call(FuncGenericEncrypt, teeRequest{Session: s, IV: iv, Data: data})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncGenericEncrypt, Session: s, In: dup(data), Out: dup(resp.Out), Err: err})
	return resp.Out, err
}

// GenericDecrypt decrypts arbitrary data; unlike media decryption the
// result returns to the app in normal memory, so it IS dumped in the trace
// — the leak the paper used to recover Netflix URIs even under L1.
func (e *TEEEngine) GenericDecrypt(s SessionID, iv, data []byte) ([]byte, error) {
	resp, err := e.call(FuncGenericDecrypt, teeRequest{Session: s, IV: iv, Data: data})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncGenericDecrypt, Session: s, In: dup(data), Out: dup(resp.Out), Err: err})
	return resp.Out, err
}

// GenericSign MACs arbitrary data with the client session key.
func (e *TEEEngine) GenericSign(s SessionID, data []byte) ([]byte, error) {
	resp, err := e.call(FuncGenericSign, teeRequest{Session: s, Data: data})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncGenericSign, Session: s, In: dup(data), Out: dup(resp.Out), Err: err})
	return resp.Out, err
}

// GenericVerify checks a server MAC over arbitrary data.
func (e *TEEEngine) GenericVerify(s SessionID, data, signature []byte) error {
	resp, err := e.call(FuncGenericVerify, teeRequest{Session: s, Data: data, MAC: signature})
	if err == nil {
		err = mapTEEError(resp.Err)
	}
	e.emit(CallEvent{Func: FuncGenericVerify, Session: s, In: dup(data), Err: err})
	return err
}
