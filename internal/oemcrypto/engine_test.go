package oemcrypto

import (
	"bytes"
	"crypto/rsa"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/keybox"
	"repro/internal/mp4"
	"repro/internal/procmem"
	"repro/internal/tee"
	"repro/internal/wvcrypto"
)

// mapStore is an in-memory FileStore for tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
}

func (s *mapStore) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	return d, ok
}

var (
	rsaOnce sync.Once
	rsaKey  *rsa.PrivateKey
	rsaErr  error
)

func sharedRSA(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	rsaOnce.Do(func() {
		rsaKey, rsaErr = wvcrypto.GenerateRSAKey(wvcrypto.NewDeterministicReader("oemcrypto-test-rsa"))
	})
	if rsaErr != nil {
		t.Fatal(rsaErr)
	}
	return rsaKey
}

// serverSide simulates the provisioning + license server half of the key
// ladder, independently of the engine code under test.
type serverSide struct {
	deviceKey []byte
	rsa       *rsa.PrivateKey
	rand      io.Reader
}

// provisioningResponse wraps the server RSA key for the device.
func (sv *serverSide) provisioningResponse(t testing.TB, context []byte) (message, mac, wrapped, iv []byte) {
	t.Helper()
	keys, err := wvcrypto.DeriveSessionKeys(sv.deviceKey, context)
	if err != nil {
		t.Fatal(err)
	}
	iv = make([]byte, 16)
	if _, err := io.ReadFull(sv.rand, iv); err != nil {
		t.Fatal(err)
	}
	der := wvcrypto.MarshalRSAPrivateKey(sv.rsa)
	wrapped, err = wvcrypto.EncryptCBC(keys.Enc, iv, der)
	if err != nil {
		t.Fatal(err)
	}
	message = []byte("provisioning-response-for-" + string(context))
	mac = wvcrypto.HMACSHA256(keys.MACServer, message)
	return message, mac, wrapped, iv
}

// licenseResponse wraps content keys for the device.
func (sv *serverSide) licenseResponse(t testing.TB, requestMsg []byte, contentKeys map[[16]byte][]byte) (encSessionKey, message, mac []byte, keys []EncryptedKey) {
	t.Helper()
	sessionKey := make([]byte, 16)
	if _, err := io.ReadFull(sv.rand, sessionKey); err != nil {
		t.Fatal(err)
	}
	var err error
	encSessionKey, err = wvcrypto.EncryptOAEP(sv.rand, &sv.rsa.PublicKey, sessionKey)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := wvcrypto.DeriveSessionKeys(sessionKey, requestMsg)
	if err != nil {
		t.Fatal(err)
	}
	for kid, ck := range contentKeys {
		var iv [16]byte
		if _, err := io.ReadFull(sv.rand, iv[:]); err != nil {
			t.Fatal(err)
		}
		payload, err := wvcrypto.EncryptCBC(derived.Enc, iv[:], ck)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, EncryptedKey{KID: kid, IV: iv, Payload: payload})
	}
	message = append([]byte("license-response:"), requestMsg...)
	mac = wvcrypto.HMACSHA256(derived.MACServer, message)
	return encSessionKey, message, mac, keys
}

// engineFixture builds one engine plus its server counterpart.
type engineFixture struct {
	engine Engine
	server *serverSide
	space  *procmem.Space // normal-world memory of the hosting process
}

func newSoftFixture(t testing.TB, version string) *engineFixture {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("soft-fixture-" + version)
	kb, err := keybox.New("TESTDEV-L3", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	space := procmem.NewSpace("mediadrmserver")
	eng, err := NewSoftEngine(version, space, store, rand)
	if err != nil {
		t.Fatal(err)
	}
	return &engineFixture{
		engine: eng,
		server: &serverSide{deviceKey: kb.DeviceKey[:], rsa: sharedRSA(t), rand: rand},
		space:  space,
	}
}

func newTEEFixture(t testing.TB, version string) *engineFixture {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("tee-fixture-" + version)
	kb, err := keybox.New("TESTDEV-L1", 7711, rand)
	if err != nil {
		t.Fatal(err)
	}
	world := tee.NewWorld("test-l1-device")
	world.ProvisionStorage(TrustletName, "keybox", kb.Marshal())
	if err := world.Load(NewTrustlet(version, rand)); err != nil {
		t.Fatal(err)
	}
	eng, err := NewTEEEngine(version, world)
	if err != nil {
		t.Fatal(err)
	}
	return &engineFixture{
		engine: eng,
		server: &serverSide{deviceKey: kb.DeviceKey[:], rsa: sharedRSA(t), rand: rand},
		space:  procmem.NewSpace("mediadrmserver"),
	}
}

// provision drives the provisioning flow to completion.
func (f *engineFixture) provision(t testing.TB) {
	t.Helper()
	s, err := f.engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.engine.CloseSession(s); err != nil {
			t.Fatal(err)
		}
	}()
	context := []byte("provisioning-request-context")
	if err := f.engine.GenerateDerivedKeys(s, context); err != nil {
		t.Fatal(err)
	}
	msg, mac, wrapped, iv := f.server.provisioningResponse(t, context)
	if err := f.engine.RewrapDeviceRSAKey(s, msg, mac, wrapped, iv); err != nil {
		t.Fatal(err)
	}
}

// license drives the license flow, loading the given content keys.
func (f *engineFixture) license(t testing.TB, contentKeys map[[16]byte][]byte) SessionID {
	t.Helper()
	s, err := f.engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	request := []byte("license-request-for-test-asset")
	if _, err := f.engine.GenerateRSASignature(s, request); err != nil {
		t.Fatal(err)
	}
	encSK, msg, mac, keys := f.server.licenseResponse(t, request, contentKeys)
	if err := f.engine.DeriveKeysFromSessionKey(s, encSK, request); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.LoadKeys(s, msg, mac, keys); err != nil {
		t.Fatal(err)
	}
	return s
}

func fixtures(t *testing.T) map[string]func(testing.TB) *engineFixture {
	t.Helper()
	return map[string]func(testing.TB) *engineFixture{
		"L3-soft": func(tb testing.TB) *engineFixture { return newSoftFixture(tb, "15.0") },
		"L1-tee":  func(tb testing.TB) *engineFixture { return newTEEFixture(tb, "15.0") },
	}
}

func TestEngineIdentity(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			id, sys, err := f.engine.KeyboxInfo()
			if err != nil {
				t.Fatal(err)
			}
			if id == "" || sys == 0 {
				t.Errorf("KeyboxInfo = %q, %d", id, sys)
			}
			if v := f.engine.Version(); v != "15.0" {
				t.Errorf("Version = %q", v)
			}
			switch name {
			case "L3-soft":
				if f.engine.SecurityLevel() != L3 {
					t.Error("wrong level")
				}
			case "L1-tee":
				if f.engine.SecurityLevel() != L1 {
					t.Error("wrong level")
				}
			}
		})
	}
}

func TestSessionLifecycle(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			s1, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			if s1 == s2 {
				t.Error("duplicate session IDs")
			}
			if err := f.engine.CloseSession(s1); err != nil {
				t.Fatal(err)
			}
			if err := f.engine.CloseSession(s1); !errors.Is(err, ErrNoSession) {
				t.Errorf("double close err = %v", err)
			}
			if err := f.engine.GenerateDerivedKeys(s1, []byte("x")); !errors.Is(err, ErrNoSession) {
				t.Errorf("closed session derive err = %v", err)
			}
			if err := f.engine.CloseSession(s2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestProvisioningFlow(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			if f.engine.Provisioned() {
				t.Fatal("fresh engine claims provisioned")
			}
			if err := f.engine.LoadDeviceRSAKey(); !errors.Is(err, ErrNotProvisioned) {
				t.Errorf("LoadDeviceRSAKey before provisioning = %v", err)
			}
			f.provision(t)
			if !f.engine.Provisioned() {
				t.Error("engine not provisioned after rewrap")
			}
			if err := f.engine.LoadDeviceRSAKey(); err != nil {
				t.Errorf("LoadDeviceRSAKey after provisioning: %v", err)
			}
		})
	}
}

func TestProvisioning_BadMAC(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			s, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			context := []byte("ctx")
			if err := f.engine.GenerateDerivedKeys(s, context); err != nil {
				t.Fatal(err)
			}
			msg, mac, wrapped, iv := f.server.provisioningResponse(t, context)
			mac[0] ^= 1
			if err := f.engine.RewrapDeviceRSAKey(s, msg, mac, wrapped, iv); !errors.Is(err, ErrSignatureInvalid) {
				t.Errorf("bad mac err = %v", err)
			}
		})
	}
}

func TestProvisioning_RequiresDerivedKeys(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			s, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			if err := f.engine.RewrapDeviceRSAKey(s, nil, nil, nil, nil); !errors.Is(err, ErrKeysNotDerived) {
				t.Errorf("err = %v, want ErrKeysNotDerived", err)
			}
		})
	}
}

func TestLicenseAndDecrypt(t *testing.T) {
	kid := [16]byte{0xAB, 1, 2, 3}
	contentKey := bytes.Repeat([]byte{0x5C}, 16)
	plaintext := []byte("0123456789abcdefTHE-PROTECTED-SAMPLE-PAYLOAD")

	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			f.provision(t)
			s := f.license(t, map[[16]byte][]byte{kid: contentKey})

			// Encrypt a sample server-side (the packager's job).
			iv := [8]byte{9, 9, 9, 9, 9, 9, 9, 9}
			subs := []mp4.SubsampleEntry{{ClearBytes: 16, ProtectedBytes: uint32(len(plaintext) - 16)}}
			var counter [16]byte
			copy(counter[:8], iv[:])
			stream, err := wvcrypto.CTRStream(contentKey, counter[:])
			if err != nil {
				t.Fatal(err)
			}
			ct := append([]byte(nil), plaintext...)
			stream.XORKeyStream(ct[16:], ct[16:])

			if err := f.engine.SelectKey(s, kid); err != nil {
				t.Fatal(err)
			}
			res, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, subs, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Data, plaintext) {
				t.Error("decrypted sample mismatch")
			}
			wantSecure := name == "L1-tee"
			if res.Secure != wantSecure {
				t.Errorf("Secure = %v, want %v", res.Secure, wantSecure)
			}
		})
	}
}

func TestLicense_BadMAC(t *testing.T) {
	kid := [16]byte{1}
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			f.provision(t)
			s, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			request := []byte("req")
			encSK, msg, mac, keys := f.server.licenseResponse(t, request, map[[16]byte][]byte{kid: bytes.Repeat([]byte{1}, 16)})
			if err := f.engine.DeriveKeysFromSessionKey(s, encSK, request); err != nil {
				t.Fatal(err)
			}
			mac[3] ^= 0x80
			if err := f.engine.LoadKeys(s, msg, mac, keys); !errors.Is(err, ErrSignatureInvalid) {
				t.Errorf("bad license mac err = %v", err)
			}
		})
	}
}

func TestSelectKey_NotLoaded(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			f.provision(t)
			s := f.license(t, map[[16]byte][]byte{{1}: bytes.Repeat([]byte{1}, 16)})
			if err := f.engine.SelectKey(s, [16]byte{2}); !errors.Is(err, ErrKeyNotLoaded) {
				t.Errorf("err = %v, want ErrKeyNotLoaded", err)
			}
			if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, [8]byte{}, nil, []byte("x")); !errors.Is(err, ErrNoKeySelected) {
				t.Errorf("err = %v, want ErrNoKeySelected", err)
			}
		})
	}
}

func TestGenerateRSASignature_VerifiesAgainstServerKey(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			f.provision(t)
			s, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("license request payload")
			sig, err := f.engine.GenerateRSASignature(s, msg)
			if err != nil {
				t.Fatal(err)
			}
			if !wvcrypto.VerifyPSS(&f.server.rsa.PublicKey, msg, sig) {
				t.Error("engine signature does not verify under provisioned key")
			}
		})
	}
}

func TestGenericCrypto(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			f.provision(t)
			s, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			context := []byte("generic-session")
			if err := f.engine.GenerateDerivedKeys(s, context); err != nil {
				t.Fatal(err)
			}
			iv := bytes.Repeat([]byte{7}, 16)
			secret := []byte("https://cdn.example/secret-manifest-uri")
			ct, err := f.engine.GenericEncrypt(s, iv, secret)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := f.engine.GenericDecrypt(s, iv, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pt, secret) {
				t.Error("generic roundtrip mismatch")
			}

			sig, err := f.engine.GenericSign(s, secret)
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) != 32 {
				t.Errorf("sign length = %d", len(sig))
			}
			// Server-side verify with the client MAC key.
			keys, err := wvcrypto.DeriveSessionKeys(f.server.deviceKey, context)
			if err != nil {
				t.Fatal(err)
			}
			if !wvcrypto.VerifyHMACSHA256(keys.MACClient, secret, sig) {
				t.Error("generic signature does not verify server-side")
			}
			serverMAC := wvcrypto.HMACSHA256(keys.MACServer, secret)
			if err := f.engine.GenericVerify(s, secret, serverMAC); err != nil {
				t.Errorf("GenericVerify: %v", err)
			}
			if err := f.engine.GenericVerify(s, secret, sig); !errors.Is(err, ErrSignatureInvalid) {
				t.Errorf("cross-key verify err = %v", err)
			}
		})
	}
}

func TestGeneric_WithoutDerivedKeys(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			s, err := f.engine.OpenSession()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.engine.GenericSign(s, []byte("x")); !errors.Is(err, ErrKeysNotDerived) {
				t.Errorf("err = %v, want ErrKeysNotDerived", err)
			}
		})
	}
}

// The load-bearing asymmetry of the paper: after a full provisioning and
// license flow, the L3 process memory contains the keybox (findable by
// magic scan) while the L1 normal-world memory contains nothing.
func TestMemoryExposure_L3VsL1(t *testing.T) {
	kid := [16]byte{5}
	ck := bytes.Repeat([]byte{0xEE}, 16)

	soft := newSoftFixture(t, "15.0")
	soft.provision(t)
	soft.license(t, map[[16]byte][]byte{kid: ck})
	if hits := soft.space.Scan(keybox.Magic[:]); len(hits) == 0 {
		t.Error("L3: keybox magic not found in process memory (attack surface missing)")
	}
	if hits := soft.space.Scan(ck); len(hits) == 0 {
		t.Error("L3: unwrapped content key not in process memory")
	}

	teef := newTEEFixture(t, "15.0")
	teef.provision(t)
	teef.license(t, map[[16]byte][]byte{kid: ck})
	if hits := teef.space.Scan(keybox.Magic[:]); len(hits) != 0 {
		t.Error("L1: keybox magic visible in normal-world memory")
	}
	if hits := teef.space.Scan(ck); len(hits) != 0 {
		t.Error("L1: content key visible in normal-world memory")
	}
}

func TestTracer_LibraryAndSecureBuffers(t *testing.T) {
	kid := [16]byte{6}
	ck := bytes.Repeat([]byte{0xAA}, 16)
	plaintext := []byte("0123456789abcdefSECRET-MEDIA-BYTES")

	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			var events []CallEvent
			f.engine.SetTracer(func(ev CallEvent) { events = append(events, ev) })
			f.provision(t)
			s := f.license(t, map[[16]byte][]byte{kid: ck})
			if err := f.engine.SelectKey(s, kid); err != nil {
				t.Fatal(err)
			}
			iv := [8]byte{1}
			var counter [16]byte
			copy(counter[:8], iv[:])
			stream, err := wvcrypto.CTRStream(ck, counter[:])
			if err != nil {
				t.Fatal(err)
			}
			ct := append([]byte(nil), plaintext...)
			stream.XORKeyStream(ct, ct)
			if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, iv, nil, ct); err != nil {
				t.Fatal(err)
			}

			wantLib := LibWVDRMEngine
			if name == "L1-tee" {
				wantLib = LibOEMCrypto
			}
			var sawDecrypt bool
			for _, ev := range events {
				if ev.Library != wantLib {
					t.Fatalf("event %s library = %q, want %q", ev.Func, ev.Library, wantLib)
				}
				if ev.Func == FuncDecryptCENC {
					sawDecrypt = true
					if name == "L1-tee" && ev.Out != nil {
						t.Error("L1 trace leaked decrypted output")
					}
					if name == "L3-soft" && !bytes.Equal(ev.Out, plaintext) {
						t.Error("L3 trace missing decrypted output dump")
					}
				}
			}
			if !sawDecrypt {
				t.Error("no DecryptCENC event traced")
			}

			// Detach: no further events.
			n := len(events)
			f.engine.SetTracer(nil)
			if _, err := f.engine.OpenSession(); err != nil {
				t.Fatal(err)
			}
			if len(events) != n {
				t.Error("events recorded after detach")
			}
		})
	}
}

func TestInstallKeybox_Invalid(t *testing.T) {
	if err := InstallKeybox(newMapStore(), []byte("garbage")); err == nil {
		t.Error("want error for invalid keybox")
	}
}

func TestNewSoftEngine_NoKeybox(t *testing.T) {
	_, err := NewSoftEngine("15.0", procmem.NewSpace("p"), newMapStore(), wvcrypto.NewDeterministicReader("x"))
	if !errors.Is(err, ErrNoKeybox) {
		t.Errorf("err = %v, want ErrNoKeybox", err)
	}
}

func TestFuncNames(t *testing.T) {
	if FuncDecryptCENC.OECCName() != "_oecc17" {
		t.Errorf("OECCName = %q", FuncDecryptCENC.OECCName())
	}
	if FuncLoadKeys.String() != "LoadKeys" {
		t.Errorf("String = %q", FuncLoadKeys.String())
	}
	if L3.String() != "L3" || L1.String() != "L1" || L2.String() != "L2" {
		t.Error("SecurityLevel.String broken")
	}
}

func BenchmarkKeyLadder_LicenseFlow(b *testing.B) {
	f := newSoftFixture(b, "15.0")
	f.provision(b)
	kid := [16]byte{1}
	ck := bytes.Repeat([]byte{2}, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := f.license(b, map[[16]byte][]byte{kid: ck})
		if err := f.engine.CloseSession(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptCENC(b *testing.B) {
	f := newSoftFixture(b, "15.0")
	f.provision(b)
	kid := [16]byte{1}
	ck := bytes.Repeat([]byte{2}, 16)
	s := f.license(b, map[[16]byte][]byte{kid: ck})
	if err := f.engine.SelectKey(s, kid); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x3C}, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.engine.DecryptCENC(s, mp4.SchemeCENC, [8]byte{1}, nil, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSessionTableLimit(t *testing.T) {
	for name, mk := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			f := mk(t)
			var sessions []SessionID
			for i := 0; i < MaxSessions; i++ {
				s, err := f.engine.OpenSession()
				if err != nil {
					t.Fatalf("session %d: %v", i, err)
				}
				sessions = append(sessions, s)
			}
			if _, err := f.engine.OpenSession(); !errors.Is(err, ErrTooManySessions) {
				t.Errorf("session %d err = %v, want ErrTooManySessions", MaxSessions, err)
			}
			// Closing one frees a slot.
			if err := f.engine.CloseSession(sessions[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := f.engine.OpenSession(); err != nil {
				t.Errorf("open after close: %v", err)
			}
		})
	}
}

// TestLicenseReplayIntoFreshSessionFails: anti-replay property of the
// ladder — a captured license response cannot be loaded into a different
// session, because the derived keys are bound to that session's request
// message context.
func TestLicenseReplayIntoFreshSessionFails(t *testing.T) {
	f := newSoftFixture(t, "15.0")
	f.provision(t)
	kid := [16]byte{0x77}
	ck := bytes.Repeat([]byte{0x11}, 16)

	// Original exchange.
	s1, err := f.engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	request := []byte("original request")
	if _, err := f.engine.GenerateRSASignature(s1, request); err != nil {
		t.Fatal(err)
	}
	encSK, msg, mac, keys := f.server.licenseResponse(t, request, map[[16]byte][]byte{kid: ck})
	if err := f.engine.DeriveKeysFromSessionKey(s1, encSK, request); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.LoadKeys(s1, msg, mac, keys); err != nil {
		t.Fatal(err)
	}

	// Replay the same response into a new session whose derivation context
	// is a DIFFERENT request: the MAC check rejects it.
	s2, err := f.engine.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	otherRequest := []byte("a different request")
	if err := f.engine.DeriveKeysFromSessionKey(s2, encSK, otherRequest); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.LoadKeys(s2, msg, mac, keys); !errors.Is(err, ErrSignatureInvalid) {
		t.Errorf("replayed license accepted: %v", err)
	}
}
