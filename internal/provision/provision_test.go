package provision_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cdm"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

func testRequest(version string) *cdm.ProvisioningRequest {
	return &cdm.ProvisioningRequest{
		StableID:   "DEV-1",
		SystemID:   4442,
		CDMVersion: version,
		Level:      "L3",
		Nonce:      []byte("nonce-16-bytes!!"),
	}
}

func newServer(policy provision.Policy) (*provision.Server, *provision.Registry) {
	registry := provision.NewRegistry()
	registry.RegisterDevice("DEV-1", [16]byte{1, 2, 3, 4})
	return provision.NewServer(registry, policy, wvcrypto.NewDeterministicReader("prov-test")), registry
}

func TestProvision_Succeeds(t *testing.T) {
	srv, registry := newServer(provision.Policy{})
	req := testRequest("15.0")
	resp, err := srv.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.WrappedRSAKey) == 0 || len(resp.IV) != 16 || len(resp.MAC) != 32 {
		t.Errorf("response shape: wrapped=%d iv=%d mac=%d",
			len(resp.WrappedRSAKey), len(resp.IV), len(resp.MAC))
	}
	// The response MAC verifies under the keybox-derived server MAC key.
	context, err := req.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	deviceKey, _ := registry.DeviceKey("DEV-1")
	keys, err := wvcrypto.DeriveSessionKeys(deviceKey[:], context)
	if err != nil {
		t.Fatal(err)
	}
	if !wvcrypto.VerifyHMACSHA256(keys.MACServer, resp.Message, resp.MAC) {
		t.Error("response MAC invalid")
	}
	// The wrapped blob decrypts to a parseable RSA key under the derived
	// enc key.
	der, err := wvcrypto.DecryptCBC(keys.Enc, resp.IV, resp.WrappedRSAKey)
	if err != nil {
		t.Fatal(err)
	}
	key, err := wvcrypto.ParseRSAPrivateKey(der)
	if err != nil {
		t.Fatal(err)
	}
	pub, ok := registry.RSAPublicKey("DEV-1")
	if !ok || pub.N.Cmp(key.N) != 0 {
		t.Error("registry public key does not match issued key")
	}
}

func TestProvision_Revoked(t *testing.T) {
	srv, _ := newServer(provision.Policy{MinCDMVersion: "14.0"})
	if _, err := srv.Provision(testRequest("3.1.0")); !errors.Is(err, provision.ErrDeviceRevoked) {
		t.Errorf("err = %v, want ErrDeviceRevoked", err)
	}
	if _, err := srv.Provision(testRequest("15.0")); err != nil {
		t.Errorf("current CDM rejected: %v", err)
	}
}

func TestProvision_UnknownDevice(t *testing.T) {
	srv, _ := newServer(provision.Policy{})
	req := testRequest("15.0")
	req.StableID = "GHOST"
	if _, err := srv.Provision(req); !errors.Is(err, provision.ErrUnknownDevice) {
		t.Errorf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestRegistry(t *testing.T) {
	r := provision.NewRegistry()
	if _, ok := r.DeviceKey("x"); ok {
		t.Error("empty registry lookup succeeded")
	}
	if _, ok := r.RSAPublicKey("x"); ok {
		t.Error("empty registry pub lookup succeeded")
	}
	r.RegisterDevice("x", [16]byte{7})
	k, ok := r.DeviceKey("x")
	if !ok || k != ([16]byte{7}) {
		t.Errorf("DeviceKey = %v, %v", k, ok)
	}
}

func TestPolicyCheck(t *testing.T) {
	p := provision.Policy{MinCDMVersion: "10.0"}
	if err := p.Check(testRequest("9.9")); !errors.Is(err, provision.ErrDeviceRevoked) {
		t.Errorf("err = %v", err)
	}
	if err := p.Check(testRequest("10.0")); err != nil {
		t.Errorf("exact version rejected: %v", err)
	}
	if err := (provision.Policy{}).Check(testRequest("0.1")); err != nil {
		t.Errorf("empty policy rejected: %v", err)
	}
}

// TestProvision_ConcurrentDevices provisions many distinct devices in
// parallel: the registry must mint each device's RSA key exactly once
// (idempotence) without serializing distinct devices' generations behind
// one lock, and duplicate concurrent requests for the same device must
// share a single mint.
func TestProvision_ConcurrentDevices(t *testing.T) {
	registry := provision.NewRegistry()
	const devices = 6
	for d := 0; d < devices; d++ {
		registry.RegisterDevice(fmt.Sprintf("DEV-%d", d), [16]byte{byte(d)})
	}
	srv := provision.NewServer(registry, provision.Policy{}, wvcrypto.NewDeterministicReader("prov-conc"))

	var wg sync.WaitGroup
	moduli := make([][]string, devices)
	for d := 0; d < devices; d++ {
		moduli[d] = make([]string, 3)
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(d, r int) {
				defer wg.Done()
				req := testRequest("15.0")
				req.StableID = fmt.Sprintf("DEV-%d", d)
				if _, err := srv.Provision(req); err != nil {
					t.Errorf("provision DEV-%d: %v", d, err)
					return
				}
				pub, ok := registry.RSAPublicKey(req.StableID)
				if !ok {
					t.Errorf("DEV-%d: no RSA key registered", d)
					return
				}
				moduli[d][r] = pub.N.String()
			}(d, r)
		}
	}
	wg.Wait()
	seen := make(map[string]string, devices)
	for d := 0; d < devices; d++ {
		if moduli[d][0] == "" {
			continue // already reported
		}
		if moduli[d][1] != moduli[d][0] || moduli[d][2] != moduli[d][0] {
			t.Errorf("DEV-%d: concurrent provisioning minted multiple RSA keys", d)
		}
		if prev, dup := seen[moduli[d][0]]; dup {
			t.Errorf("DEV-%d shares an RSA modulus with %s", d, prev)
		}
		seen[moduli[d][0]] = fmt.Sprintf("DEV-%d", d)
	}
}
