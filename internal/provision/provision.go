// Package provision implements the Widevine provisioning service: the
// server that installs a Device RSA Key on a device whose keybox identity
// it recognizes. The manufacturer shares each device's keybox device key
// with the service; provisioning wraps a freshly minted RSA key under keys
// derived from that shared root, exactly as the paper's key-ladder analysis
// describes.
//
// The package also owns the device Registry (keybox keys in, provisioned
// RSA public keys out) that license servers consult to verify request
// signatures, and the revocation Policy the paper's Q4 experiment probes:
// OTT deployments may refuse to provision CDM versions that no longer
// receive security updates.
package provision

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/cdm"
	"repro/internal/wvcrypto"
)

// Errors returned by the provisioning server.
var (
	// ErrUnknownDevice is returned for stable IDs the manufacturer never
	// registered.
	ErrUnknownDevice = errors.New("provision: unknown device")
	// ErrDeviceRevoked is returned when policy refuses the CDM version.
	ErrDeviceRevoked = errors.New("provision: device revoked by policy")
)

// Registry records device roots and provisioned identities.
type Registry struct {
	mu         sync.RWMutex
	deviceKeys map[string][16]byte
	rsaKeys    map[string]*rsa.PrivateKey
	minting    map[string]*rsaMint

	// pool, when installed, is the registry's RSA mint path: keys come
	// from per-device deterministic forks (position-independent, so they
	// may be pre-minted in the background or restored from a snapshot)
	// instead of the provisioning server's shared stream.
	pool *KeyPool

	// mints counts the 2048-bit key generations performed on this
	// registry's behalf — the expensive cold-start work. Pool hits,
	// installed snapshot keys and cached keys do not count.
	mints atomic.Int64
}

// rsaMint is the in-flight singleflight guard for one device's RSA mint, so
// concurrent provisioning of *different* devices generates keys in parallel
// while duplicate requests for the same device share one generation.
type rsaMint struct {
	once sync.Once
	key  *rsa.PrivateKey
	err  error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		deviceKeys: make(map[string][16]byte),
		rsaKeys:    make(map[string]*rsa.PrivateKey),
		minting:    make(map[string]*rsaMint),
	}
}

// UseKeyPool installs the registry's RSA mint pool: deviceRSA consults
// it first, so pre-minted (or snapshot-restored) keys skip generation
// entirely, and lazy mints draw from the pool's per-device deterministic
// forks. Install before any provisioning traffic — switching mint
// sources mid-world would change key material.
func (r *Registry) UseKeyPool(pool *KeyPool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pool = pool
}

// KeyPool returns the installed mint pool, nil when the registry mints
// from caller-provided randomness (the legacy path).
func (r *Registry) KeyPool() *KeyPool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pool
}

// MintCount reports how many RSA key generations this registry caused.
// Warm paths — pool hits, snapshot restores, repeat provisioning — leave
// it unchanged; tests use it to pin "zero new keygen" invariants.
func (r *Registry) MintCount() int64 { return r.mints.Load() }

// InstallRSAKey seeds a provisioned identity directly (the snapshot
// restore path), bypassing generation. The key is also fed to the mint
// pool when one is installed, so every later lookup path agrees.
func (r *Registry) InstallRSAKey(stableID string, key *rsa.PrivateKey) {
	r.mu.Lock()
	r.rsaKeys[stableID] = key
	pool := r.pool
	r.mu.Unlock()
	if pool != nil {
		pool.Install(stableID, key)
	}
}

// ExportRSAKeys returns every provisioned identity as PKCS#1 DER — the
// registry's expensive state, in the shape world snapshots persist.
func (r *Registry) ExportRSAKeys() map[string][]byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string][]byte, len(r.rsaKeys))
	for id, key := range r.rsaKeys {
		out[id] = wvcrypto.MarshalRSAPrivateKey(key)
	}
	return out
}

// ExportDeviceKeys returns the registered keybox device keys (the
// manufacturer feed), also persisted by world snapshots.
func (r *Registry) ExportDeviceKeys() map[string][16]byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string][16]byte, len(r.deviceKeys))
	for id, k := range r.deviceKeys {
		out[id] = k
	}
	return out
}

// RegisterDevice records a device's keybox device key (the manufacturer →
// Widevine feed).
func (r *Registry) RegisterDevice(stableID string, deviceKey [16]byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deviceKeys[stableID] = deviceKey
}

// DeviceKey looks up a device's keybox key.
func (r *Registry) DeviceKey(stableID string) ([16]byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.deviceKeys[stableID]
	return k, ok
}

// RSAPublicKey returns the provisioned RSA public key for a device, if any.
// License servers use it to verify request signatures.
func (r *Registry) RSAPublicKey(stableID string) (*rsa.PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.rsaKeys[stableID]
	if !ok {
		return nil, false
	}
	return &k.PublicKey, true
}

// deviceRSA returns (minting if needed) the device's RSA key pair, so
// provisioning is idempotent per device. The registry lock is never held
// across key generation: each device gets its own singleflight guard, so
// concurrent provisioning of different devices mints 2048-bit keys in
// parallel.
//
// With a key pool installed, the pool is the mint path: a pre-minted or
// snapshot-restored key is served with zero generation, and a lazy mint
// draws from the pool's per-device fork — byte-identical either way.
// Without a pool, generation reads from the caller's stream (the legacy
// position-dependent path, kept for direct registry users).
func (r *Registry) deviceRSA(stableID string, rand io.Reader) (*rsa.PrivateKey, error) {
	r.mu.Lock()
	if k, ok := r.rsaKeys[stableID]; ok {
		r.mu.Unlock()
		return k, nil
	}
	pool := r.pool
	r.mu.Unlock()

	if pool != nil {
		key, mintedHere, err := pool.key(stableID)
		if err != nil {
			return nil, err
		}
		if mintedHere {
			r.mints.Add(1)
		}
		r.mu.Lock()
		r.rsaKeys[stableID] = key
		r.mu.Unlock()
		return key, nil
	}

	r.mu.Lock()
	m, ok := r.minting[stableID]
	if !ok {
		m = &rsaMint{}
		r.minting[stableID] = m
	}
	r.mu.Unlock()

	m.once.Do(func() {
		m.key, m.err = wvcrypto.GenerateRSAKey(rand)
		r.mints.Add(1)
		r.mu.Lock()
		if m.err == nil {
			r.rsaKeys[stableID] = m.key
		}
		delete(r.minting, stableID)
		r.mu.Unlock()
	})
	return m.key, m.err
}

// Policy is the provisioning admission rule. The zero value admits every
// registered device.
type Policy struct {
	// MinCDMVersion rejects clients running an older CDM ("" = allow all).
	// Disney+-like deployments set this to cut off discontinued phones.
	MinCDMVersion string
}

// Check validates a request against the policy.
func (p Policy) Check(req *cdm.ProvisioningRequest) error {
	if !cdm.VersionAtLeast(req.CDMVersion, p.MinCDMVersion) {
		return fmt.Errorf("%w: cdm %s < minimum %s", ErrDeviceRevoked, req.CDMVersion, p.MinCDMVersion)
	}
	return nil
}

// Server is one provisioning endpoint with one admission policy.
type Server struct {
	registry *Registry
	policy   Policy
	rand     io.Reader
}

// NewServer builds a provisioning server over a shared registry.
func NewServer(registry *Registry, policy Policy, rand io.Reader) *Server {
	return &Server{registry: registry, policy: policy, rand: rand}
}

// Provision handles one provisioning request, returning the wrapped Device
// RSA key on success.
func (s *Server) Provision(req *cdm.ProvisioningRequest) (*cdm.ProvisioningResponse, error) {
	if err := s.policy.Check(req); err != nil {
		return nil, err
	}
	deviceKey, ok := s.registry.DeviceKey(req.StableID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, req.StableID)
	}
	rsaKey, err := s.registry.deviceRSA(req.StableID, s.rand)
	if err != nil {
		return nil, fmt.Errorf("provision: mint rsa key: %w", err)
	}

	context, err := req.Canonical()
	if err != nil {
		return nil, err
	}
	keys, err := wvcrypto.DeriveSessionKeys(deviceKey[:], context)
	if err != nil {
		return nil, fmt.Errorf("provision: derive keys: %w", err)
	}
	iv := make([]byte, 16)
	if _, err := io.ReadFull(s.rand, iv); err != nil {
		return nil, fmt.Errorf("provision: iv: %w", err)
	}
	wrapped, err := wvcrypto.EncryptCBC(keys.Enc, iv, wvcrypto.MarshalRSAPrivateKey(rsaKey))
	if err != nil {
		return nil, fmt.Errorf("provision: wrap rsa key: %w", err)
	}
	message := append([]byte("provisioning-grant:"), context...)
	return &cdm.ProvisioningResponse{
		Message:       message,
		MAC:           wvcrypto.HMACSHA256(keys.MACServer, message),
		WrappedRSAKey: wrapped,
		IV:            iv,
	}, nil
}
