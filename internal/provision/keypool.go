// Device RSA key pool: pre-mints 2048-bit Device RSA keys off the hot
// path while preserving bit-for-bit determinism.
//
// The pool owns a deterministic mint root; every device's key is
// generated from the root's fork by stable ID — never from a shared
// stream cursor — so a key minted in a background goroutine at boot is
// byte-identical to one minted lazily at the device's first provisioning
// request, and two pools built over the same root agree on every key.
// That property is what lets a daemon share one pool across many worlds
// of the same seed, and what keeps the study's golden tables stable
// whether keys come from the pool, a snapshot, or an on-demand mint.
package provision

import (
	"context"
	"crypto/rsa"
	"sync"
	"sync/atomic"

	"repro/internal/wvcrypto"
)

// KeyPool pre-mints deterministic Device RSA keys. Safe for concurrent
// use; duplicate requests for the same stable ID share one generation
// (per-device singleflight, exactly like the registry's legacy path).
type KeyPool struct {
	root *wvcrypto.DeterministicReader

	mu      sync.Mutex
	entries map[string]*poolEntry
	ready   map[string]*rsa.PrivateKey // completed mints/installs, for Export

	minted atomic.Int64 // actual key generations performed
	served atomic.Int64 // keys handed out that were already resident
}

// poolEntry is one device's singleflight mint guard.
type poolEntry struct {
	once sync.Once
	key  *rsa.PrivateKey
	err  error
}

// NewKeyPool builds a pool minting from the given deterministic root.
// Each device's key draws from root.Fork("rsa/" + stableID), so the pool
// is a pure function of (root seed, stable ID).
func NewKeyPool(root *wvcrypto.DeterministicReader) *KeyPool {
	return &KeyPool{
		root:    root,
		entries: make(map[string]*poolEntry),
		ready:   make(map[string]*rsa.PrivateKey),
	}
}

// Fingerprint identifies the pool's mint root. Two pools (or a pool and
// a registry) with equal fingerprints produce byte-identical keys for
// every stable ID.
func (p *KeyPool) Fingerprint() string { return p.root.Fingerprint() }

// Key returns the device's RSA key, minting it deterministically when it
// is not yet resident. The returned key is byte-identical regardless of
// when, where, or how concurrently it was requested.
func (p *KeyPool) Key(stableID string) (*rsa.PrivateKey, error) {
	key, _, err := p.key(stableID)
	return key, err
}

// key reports, alongside the key, whether THIS call performed the
// generation (false = the key was already resident or another caller's
// in-flight mint was joined). The registry uses it to count the keygens
// it is responsible for.
func (p *KeyPool) key(stableID string) (*rsa.PrivateKey, bool, error) {
	p.mu.Lock()
	e, ok := p.entries[stableID]
	if !ok {
		e = &poolEntry{}
		p.entries[stableID] = e
	}
	p.mu.Unlock()

	mintedHere := false
	e.once.Do(func() {
		e.key, e.err = wvcrypto.GenerateRSAKey(p.root.Fork("rsa/" + stableID))
		mintedHere = true
		p.minted.Add(1)
		if e.err == nil {
			p.mu.Lock()
			p.ready[stableID] = e.key
			p.mu.Unlock()
		}
	})
	if !mintedHere {
		p.served.Add(1)
	}
	return e.key, mintedHere, e.err
}

// Export returns every resident key (completed mints and installs) as a
// copy — the state a world snapshot persists so a restored world never
// regenerates what this pool already paid for.
func (p *KeyPool) Export() map[string]*rsa.PrivateKey {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]*rsa.PrivateKey, len(p.ready))
	for id, key := range p.ready {
		out[id] = key
	}
	return out
}

// Install seeds the pool with an already-generated key (e.g. from a
// world snapshot), so later Key calls serve it without any generation.
// Installing over a resident key is a no-op: determinism guarantees the
// bytes agree.
func (p *KeyPool) Install(stableID string, key *rsa.PrivateKey) {
	p.mu.Lock()
	e, ok := p.entries[stableID]
	if !ok {
		e = &poolEntry{}
		p.entries[stableID] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		e.key = key
		p.mu.Lock()
		p.ready[stableID] = key
		p.mu.Unlock()
	})
}

// Prewarm mints the given devices' keys on parallelism background
// workers, returning the first error (ctx cancellation stops workers
// from picking up further IDs). parallelism <= 0 selects one worker per
// ID. Already-resident keys cost nothing, so Prewarm is idempotent.
func (p *KeyPool) Prewarm(ctx context.Context, stableIDs []string, parallelism int) error {
	if parallelism <= 0 || parallelism > len(stableIDs) {
		parallelism = len(stableIDs)
	}
	if parallelism == 0 {
		return nil
	}
	errs := make([]error, len(stableIDs))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go func() {
			defer wg.Done()
			for idx := range next {
				_, errs[idx] = p.Key(stableIDs[idx])
			}
		}()
	}
feed:
	for i := range stableIDs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Minted reports how many actual key generations the pool has performed.
func (p *KeyPool) Minted() int64 { return p.minted.Load() }

// Served reports how many key requests were answered from residency
// (no generation).
func (p *KeyPool) Served() int64 { return p.served.Load() }

// Size reports the resident key count (including in-flight mints).
func (p *KeyPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}
