package provision

import (
	"bytes"
	"context"
	"crypto/rsa"
	"sync"
	"testing"

	"repro/internal/wvcrypto"
)

func poolRoot() *wvcrypto.DeterministicReader {
	return wvcrypto.NewDeterministicReader("keypool-test-root").Fork("provision/rsa")
}

// A pooled key must be byte-identical to one minted on demand from the
// same root — the property that lets background prewarm, lazy mints and
// snapshot restores interchange freely.
func TestKeyPoolDeterministicMint(t *testing.T) {
	const id = "PX-test"
	pool := NewKeyPool(poolRoot())
	pooled, err := pool.Key(id)
	if err != nil {
		t.Fatalf("pool.Key: %v", err)
	}

	direct, err := wvcrypto.GenerateRSAKey(poolRoot().Fork("rsa/" + id))
	if err != nil {
		t.Fatalf("direct mint: %v", err)
	}
	if !bytes.Equal(wvcrypto.MarshalRSAPrivateKey(pooled), wvcrypto.MarshalRSAPrivateKey(direct)) {
		t.Fatal("pooled key differs from on-demand mint over the same fork")
	}

	// A second pool over an equal root agrees too.
	other := NewKeyPool(poolRoot())
	if got, want := other.Fingerprint(), pool.Fingerprint(); got != want {
		t.Fatalf("fingerprint mismatch over equal roots: %q vs %q", got, want)
	}
	again, err := other.Key(id)
	if err != nil {
		t.Fatalf("other pool.Key: %v", err)
	}
	if !bytes.Equal(wvcrypto.MarshalRSAPrivateKey(pooled), wvcrypto.MarshalRSAPrivateKey(again)) {
		t.Fatal("two pools over equal roots minted different keys")
	}
}

// Concurrent requests for one device share a single generation; requests
// for distinct devices all succeed. Run under -race this doubles as the
// pool's data-race check (wired into `make race`).
func TestKeyPoolConcurrentHammer(t *testing.T) {
	pool := NewKeyPool(poolRoot())
	ids := []string{"PX-a", "PX-b", "PX-c"}
	const callersPerID = 8

	keys := make([][]*rsa.PrivateKey, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		keys[i] = make([]*rsa.PrivateKey, callersPerID)
		for j := 0; j < callersPerID; j++ {
			wg.Add(1)
			go func(i, j int, id string) {
				defer wg.Done()
				key, err := pool.Key(id)
				if err != nil {
					t.Errorf("pool.Key(%q): %v", id, err)
					return
				}
				keys[i][j] = key
			}(i, j, id)
		}
	}
	wg.Wait()

	for i := range ids {
		want := wvcrypto.MarshalRSAPrivateKey(keys[i][0])
		for j := 1; j < callersPerID; j++ {
			if !bytes.Equal(want, wvcrypto.MarshalRSAPrivateKey(keys[i][j])) {
				t.Fatalf("device %q: callers observed different keys", ids[i])
			}
		}
	}
	if got := pool.Minted(); got != int64(len(ids)) {
		t.Fatalf("Minted = %d, want %d (one generation per device)", got, len(ids))
	}
	if got := pool.Served(); got != int64(len(ids)*(callersPerID-1)) {
		t.Fatalf("Served = %d, want %d", got, len(ids)*(callersPerID-1))
	}
}

// Prewarm is idempotent: a second pass over the same IDs performs zero
// new generations, and Install short-circuits later mints.
func TestKeyPoolPrewarmIdempotent(t *testing.T) {
	pool := NewKeyPool(poolRoot())
	ids := []string{"PX-x", "L3-x", "N5-x"}
	if err := pool.Prewarm(context.Background(), ids, 2); err != nil {
		t.Fatalf("Prewarm: %v", err)
	}
	if got := pool.Minted(); got != int64(len(ids)) {
		t.Fatalf("Minted after first prewarm = %d, want %d", got, len(ids))
	}
	if got := pool.Size(); got != len(ids) {
		t.Fatalf("Size = %d, want %d", got, len(ids))
	}
	if err := pool.Prewarm(context.Background(), ids, 0); err != nil {
		t.Fatalf("second Prewarm: %v", err)
	}
	if got := pool.Minted(); got != int64(len(ids)) {
		t.Fatalf("Minted after second prewarm = %d, want %d (idempotent)", got, len(ids))
	}
	if got := len(pool.Export()); got != len(ids) {
		t.Fatalf("Export has %d keys, want %d", got, len(ids))
	}

	// Install a foreign key under a fresh ID: the pool serves it as-is.
	donor, err := pool.Key(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	pool.Install("PX-installed", donor)
	got, err := pool.Key("PX-installed")
	if err != nil {
		t.Fatal(err)
	}
	if got != donor {
		t.Fatal("installed key was not served back")
	}
	if minted := pool.Minted(); minted != int64(len(ids)) {
		t.Fatalf("Install triggered a mint: Minted = %d", minted)
	}
}

// The registry's pool path must count mints exactly once and serve
// pre-minted keys with zero new generation.
func TestRegistryKeyPoolPath(t *testing.T) {
	const id = "PX-reg"
	pool := NewKeyPool(poolRoot())
	if err := pool.Prewarm(context.Background(), []string{id}, 1); err != nil {
		t.Fatalf("Prewarm: %v", err)
	}

	reg := NewRegistry()
	reg.UseKeyPool(pool)
	key, err := reg.deviceRSA(id, nil) // rand unused on the pool path
	if err != nil {
		t.Fatalf("deviceRSA: %v", err)
	}
	if got := reg.MintCount(); got != 0 {
		t.Fatalf("MintCount = %d after a pool hit, want 0", got)
	}

	want, err := wvcrypto.GenerateRSAKey(poolRoot().Fork("rsa/" + id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wvcrypto.MarshalRSAPrivateKey(key), wvcrypto.MarshalRSAPrivateKey(want)) {
		t.Fatal("registry served a key that differs from the deterministic mint")
	}

	// A cold registry over the same pool root mints lazily — and counts it.
	cold := NewRegistry()
	cold.UseKeyPool(NewKeyPool(poolRoot()))
	if _, err := cold.deviceRSA("PX-cold", nil); err != nil {
		t.Fatalf("cold deviceRSA: %v", err)
	}
	if got := cold.MintCount(); got != 1 {
		t.Fatalf("cold MintCount = %d, want 1", got)
	}
}
