package android

import (
	"fmt"
	"strings"
)

// RenderSequenceDiagram renders recorded flow events as an ASCII sequence
// diagram in the layout of the paper's Figure 1: one lane per component,
// one arrow per message. Consecutive duplicate arrows are collapsed with a
// repeat count so per-sample decryption loops stay readable.
func RenderSequenceDiagram(events []FlowEvent) string {
	lanes := []string{"Application", "MediaDRM Server", "CDM"}
	laneIdx := make(map[string]int, len(lanes))
	for i, l := range lanes {
		laneIdx[l] = i
	}
	// Unknown actors get appended lanes in order of appearance.
	for _, ev := range events {
		for _, actor := range []string{ev.From, ev.To} {
			if _, ok := laneIdx[actor]; !ok {
				laneIdx[actor] = len(lanes)
				lanes = append(lanes, actor)
			}
		}
	}

	const laneWidth = 22
	var b strings.Builder
	for _, l := range lanes {
		fmt.Fprintf(&b, "%-*s", laneWidth, l)
	}
	b.WriteString("\n")
	for range lanes {
		fmt.Fprintf(&b, "%-*s", laneWidth, "|")
	}
	b.WriteString("\n")

	// Collapse consecutive repeats.
	type arrow struct {
		ev    FlowEvent
		count int
	}
	var collapsed []arrow
	for _, ev := range events {
		if n := len(collapsed); n > 0 && collapsed[n-1].ev == ev {
			collapsed[n-1].count++
			continue
		}
		collapsed = append(collapsed, arrow{ev: ev, count: 1})
	}

	for _, a := range collapsed {
		from, to := laneIdx[a.ev.From], laneIdx[a.ev.To]
		lo, hi := from, to
		rightward := true
		if lo > hi {
			lo, hi = hi, lo
			rightward = false
		}
		label := a.ev.Call
		if a.count > 1 {
			label = fmt.Sprintf("%s x%d", label, a.count)
		}

		line := make([]byte, laneWidth*len(lanes))
		for i := range line {
			line[i] = ' '
		}
		for i := range lanes {
			line[i*laneWidth] = '|'
		}
		start := lo*laneWidth + 1
		end := hi * laneWidth
		for i := start; i < end; i++ {
			line[i] = '-'
		}
		if rightward {
			line[end-1] = '>'
		} else {
			line[start] = '<'
		}
		// Overlay the label centered in the span.
		span := end - start
		if len(label) < span-2 {
			off := start + (span-len(label))/2
			copy(line[off:], label)
		}
		b.Write(line)
		b.WriteString("\n")
		if len(label) >= span-2 {
			// Label did not fit inline; print it on its own row.
			pad := strings.Repeat(" ", start+1)
			fmt.Fprintf(&b, "%s%s\n", pad, label)
		}
	}
	return b.String()
}
