package android_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/android"
	"repro/internal/cdm"
	"repro/internal/keybox"
	"repro/internal/license"
	"repro/internal/mp4"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
}

func (s *mapStore) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	return d, ok
}

// fixture wires a MediaDrm over an L3 engine plus in-process servers.
type fixture struct {
	drm     *android.MediaDrm
	provSrv *provision.Server
	licSrv  *license.Server
	db      *license.KeyDB
	flow    []android.FlowEvent
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("android-test")
	kb, err := keybox.New("ANDROID-TEST-DEV", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := oemcrypto.InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	engine, err := oemcrypto.NewSoftEngine("15.0", procmem.NewSpace("mediadrmserver"), store, rand)
	if err != nil {
		t.Fatal(err)
	}
	registry := provision.NewRegistry()
	registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
	f := &fixture{
		db: license.NewKeyDB(),
	}
	f.provSrv = provision.NewServer(registry, provision.Policy{}, rand)
	f.licSrv = license.NewServer(f.db, registry, license.Policy{L3MaxHeight: 540}, rand)
	f.drm, err = android.NewMediaDrm(android.WidevineUUID, engine, rand, func(ev android.FlowEvent) {
		f.flow = append(f.flow, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// provision drives the framework provisioning exchange.
func (f *fixture) provision(t *testing.T) {
	t.Helper()
	s, err := f.drm.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.drm.CloseSession(s) }()
	blob, err := f.drm.GetProvisionRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	req, err := cdm.ParseProvisioningRequest(blob)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.provSrv.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	respBlob, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.drm.ProvideProvisionResponse(s, respBlob); err != nil {
		t.Fatal(err)
	}
}

// license drives the framework key exchange for the given content keys.
func (f *fixture) license(t *testing.T, contentID string, keys []license.KeyEntry) oemcrypto.SessionID {
	t.Helper()
	f.db.Register(contentID, keys)
	s, err := f.drm.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.drm.GetKeyRequest(s, contentID, nil)
	if err != nil {
		t.Fatal(err)
	}
	var signed cdm.SignedLicenseRequest
	if err := json.Unmarshal(blob, &signed); err != nil {
		t.Fatal(err)
	}
	resp, err := f.licSrv.HandleRequest(&signed)
	if err != nil {
		t.Fatal(err)
	}
	respBlob, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.drm.ProvideKeyResponse(s, respBlob); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewMediaDrm_UnsupportedScheme(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("x")
	_, err := android.NewMediaDrm([16]byte{1, 2, 3}, nil, rand, nil)
	if !errors.Is(err, android.ErrUnsupportedScheme) {
		t.Errorf("err = %v, want ErrUnsupportedScheme", err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	f := newFixture(t)
	s, err := f.drm.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.drm.CloseSession(s); err != nil {
		t.Fatal(err)
	}
	if err := f.drm.CloseSession(s); !errors.Is(err, android.ErrNoSession) {
		t.Errorf("double close = %v, want ErrNoSession", err)
	}
	if _, err := f.drm.GetKeyRequest(s, "m", nil); !errors.Is(err, android.ErrNoSession) {
		t.Errorf("key request on closed session = %v", err)
	}
}

func TestGetKeyRequest_RequiresProvisioning(t *testing.T) {
	f := newFixture(t)
	if !f.drm.NeedsProvisioning() {
		t.Fatal("fresh device does not need provisioning?")
	}
	s, err := f.drm.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.drm.GetKeyRequest(s, "m", nil); !errors.Is(err, android.ErrNotProvisioned) {
		t.Errorf("err = %v, want ErrNotProvisioned", err)
	}
}

func TestProvisioningRoundTrip(t *testing.T) {
	f := newFixture(t)
	f.provision(t)
	if f.drm.NeedsProvisioning() {
		t.Error("still needs provisioning after exchange")
	}
}

func TestProvideProvisionResponse_Garbage(t *testing.T) {
	f := newFixture(t)
	s, err := f.drm.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.drm.ProvideProvisionResponse(s, []byte("not json")); err == nil {
		t.Error("want error for malformed provisioning response")
	}
}

func TestProvideKeyResponse_BeforeRequest(t *testing.T) {
	f := newFixture(t)
	f.provision(t)
	s, err := f.drm.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.drm.ProvideKeyResponse(s, []byte("{}")); err == nil {
		t.Error("want error for response before request")
	}
}

func TestFullDecodePipeline(t *testing.T) {
	f := newFixture(t)
	f.provision(t)
	kid := [16]byte{7}
	key := bytes.Repeat([]byte{0x44}, 16)
	s := f.license(t, "movie-x", []license.KeyEntry{
		{KID: kid, Key: key, Track: license.TrackVideo, MaxHeight: 540},
	})

	crypto, err := android.NewMediaCrypto(f.drm, s)
	if err != nil {
		t.Fatal(err)
	}
	codec := android.NewMediaCodec(crypto, nil)

	// Encrypt a sample the packager's way and push it through the codec.
	plaintext := []byte("0123456789abcdefA-SECURE-VIDEO-SAMPLE")
	iv := [8]byte{1, 2, 3}
	var counter [16]byte
	copy(counter[:8], iv[:])
	stream, err := wvcrypto.CTRStream(key, counter[:])
	if err != nil {
		t.Fatal(err)
	}
	ct := append([]byte(nil), plaintext...)
	stream.XORKeyStream(ct[16:], ct[16:])
	subs := []mp4.SubsampleEntry{{ClearBytes: 16, ProtectedBytes: uint32(len(ct) - 16)}}

	if err := codec.QueueSecureInputBuffer(kid, mp4.SchemeCENC, iv, subs, ct); err != nil {
		t.Fatal(err)
	}
	codec.QueueClearBuffer([]byte("clear audio sample"))

	if codec.FrameCount() != 2 {
		t.Errorf("frame count = %d", codec.FrameCount())
	}
	frames, err := codec.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frames[0], plaintext) {
		t.Error("decoded frame mismatch")
	}
	if string(frames[1]) != "clear audio sample" {
		t.Error("clear frame mismatch")
	}
}

func TestQueueSecureInputBuffer_WrongKID(t *testing.T) {
	f := newFixture(t)
	f.provision(t)
	s := f.license(t, "movie-x", []license.KeyEntry{
		{KID: [16]byte{7}, Key: bytes.Repeat([]byte{0x44}, 16), Track: license.TrackVideo},
	})
	crypto, err := android.NewMediaCrypto(f.drm, s)
	if err != nil {
		t.Fatal(err)
	}
	codec := android.NewMediaCodec(crypto, nil)
	err = codec.QueueSecureInputBuffer([16]byte{9}, mp4.SchemeCENC, [8]byte{}, nil, []byte("x"))
	if !errors.Is(err, oemcrypto.ErrKeyNotLoaded) {
		t.Errorf("err = %v, want ErrKeyNotLoaded", err)
	}
}

func TestNewMediaCrypto_BadSession(t *testing.T) {
	f := newFixture(t)
	if _, err := android.NewMediaCrypto(f.drm, 999); !errors.Is(err, android.ErrNoSession) {
		t.Errorf("err = %v, want ErrNoSession", err)
	}
	if _, err := f.drm.GetCryptoSession(999); !errors.Is(err, android.ErrNoSession) {
		t.Errorf("crypto session err = %v", err)
	}
}

func TestCryptoSession_GenericCrypto(t *testing.T) {
	f := newFixture(t)
	s, err := f.drm.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := f.drm.GetCryptoSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.DeriveKeys([]byte("ctx")); err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{3}, 16)
	ct, err := cs.Encrypt(iv, []byte("secret uri"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := cs.Decrypt(iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "secret uri" {
		t.Errorf("roundtrip = %q", pt)
	}
	sig, err := cs.Sign([]byte("data"))
	if err != nil || len(sig) != 32 {
		t.Fatalf("sign = %dB, %v", len(sig), err)
	}
	if err := cs.Verify([]byte("data"), sig); err == nil {
		t.Error("client MAC verified as server MAC")
	}
}

func TestFlowRecorder(t *testing.T) {
	f := newFixture(t)
	f.provision(t)
	f.license(t, "movie-x", []license.KeyEntry{
		{KID: [16]byte{7}, Key: bytes.Repeat([]byte{0x44}, 16), Track: license.TrackVideo},
	})
	var haveInit, haveOpen, haveKeyReq bool
	for _, ev := range f.flow {
		switch ev.Call {
		case "MediaDRM(UUID)":
			haveInit = true
		case "openSession()":
			haveOpen = true
		case "getKeyRequest()":
			haveKeyReq = true
		}
	}
	if !haveInit || !haveOpen || !haveKeyReq {
		t.Errorf("flow missing events: %+v", f.flow)
	}
}

func TestSecureOutputRefusesFrames(t *testing.T) {
	// A codec marked secure (L1) refuses to hand frames to the app. We
	// exercise the flag via a crypto bound to a TEE engine would be heavy;
	// instead verify through the soft path that Frames works, and the
	// secure case is covered by the oemcrypto/ott integration tests.
	f := newFixture(t)
	f.provision(t)
	s := f.license(t, "m", []license.KeyEntry{
		{KID: [16]byte{1}, Key: bytes.Repeat([]byte{1}, 16), Track: license.TrackVideo},
	})
	crypto, err := android.NewMediaCrypto(f.drm, s)
	if err != nil {
		t.Fatal(err)
	}
	codec := android.NewMediaCodec(crypto, nil)
	codec.QueueClearBuffer([]byte("x"))
	if _, err := codec.Frames(); err != nil {
		t.Errorf("clear frames refused: %v", err)
	}
}
