package android_test

import (
	"strings"
	"testing"

	"repro/internal/android"
)

func TestRenderSequenceDiagram(t *testing.T) {
	events := []android.FlowEvent{
		{From: "Application", To: "MediaDRM Server", Call: "MediaDRM(UUID)"},
		{From: "MediaDRM Server", To: "CDM", Call: "Initialize()"},
		{From: "Application", To: "MediaDRM Server", Call: "openSession()"},
		{From: "MediaDRM Server", To: "CDM", Call: "openSession()"},
		{From: "Application", To: "MediaDRM Server", Call: "getKeyRequest()"},
		{From: "MediaDRM Server", To: "CDM", Call: "getKeyRequest()"},
		{From: "Application", To: "MediaDRM Server", Call: "provideKeyResponse()"},
		{From: "MediaDRM Server", To: "CDM", Call: "provideKeyResponse()"},
		{From: "Application", To: "MediaDRM Server", Call: "queueSecureInputBuffer()"},
		{From: "MediaDRM Server", To: "CDM", Call: "Decrypt()"},
		{From: "Application", To: "MediaDRM Server", Call: "queueSecureInputBuffer()"},
		{From: "MediaDRM Server", To: "CDM", Call: "Decrypt()"},
	}
	out := android.RenderSequenceDiagram(events)

	for _, want := range []string{"Application", "MediaDRM Server", "CDM",
		"openSession()", "getKeyRequest()", "Decrypt()"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	// Arrows exist in both columns.
	if !strings.Contains(out, "->") && !strings.Contains(out, ">") {
		t.Errorf("diagram has no arrows:\n%s", out)
	}
	// Lines are uniform width (three lanes).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("diagram too short:\n%s", out)
	}
}

func TestRenderSequenceDiagram_CollapsesRepeats(t *testing.T) {
	var events []android.FlowEvent
	for i := 0; i < 16; i++ {
		events = append(events, android.FlowEvent{From: "MediaDRM Server", To: "CDM", Call: "Decrypt()"})
	}
	out := android.RenderSequenceDiagram(events)
	if !strings.Contains(out, "x16") {
		t.Errorf("repeats not collapsed:\n%s", out)
	}
	if strings.Count(out, "Decrypt()") != 1 {
		t.Errorf("Decrypt rendered %d times, want 1", strings.Count(out, "Decrypt()"))
	}
}

func TestRenderSequenceDiagram_UnknownLane(t *testing.T) {
	events := []android.FlowEvent{
		{From: "Application", To: "License Server", Call: "POST /license"},
	}
	out := android.RenderSequenceDiagram(events)
	if !strings.Contains(out, "License Server") {
		t.Errorf("extra lane missing:\n%s", out)
	}
}

func TestRenderSequenceDiagram_Empty(t *testing.T) {
	out := android.RenderSequenceDiagram(nil)
	if !strings.Contains(out, "Application") {
		t.Errorf("empty diagram missing header:\n%s", out)
	}
}
