// Package android re-implements the surface of the Android DRM framework
// that OTT apps program against — MediaDrm, MediaCrypto and MediaCodec —
// and routes their calls through the Media DRM Server to the Widevine CDM,
// reproducing the message flow of the paper's Figure 1. Requests and
// responses cross the API as opaque byte blobs, exactly as the real
// framework hands apps "opaque request" buffers to forward to license
// servers.
package android

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/cdm"
	"repro/internal/mp4"
	"repro/internal/oemcrypto"
)

// WidevineUUID is the DRM scheme UUID apps pass to MediaDrm, identical to
// the PSSH system ID.
var WidevineUUID = mp4.WidevineSystemID

// Errors returned by the framework.
var (
	// ErrUnsupportedScheme is returned for non-Widevine UUIDs.
	ErrUnsupportedScheme = errors.New("android: unsupported DRM scheme")
	// ErrNoSession is returned for unknown framework sessions.
	ErrNoSession = errors.New("android: no such session")
	// ErrNotProvisioned mirrors the framework's provisioning-required
	// signal: the app must run the provisioning flow first.
	ErrNotProvisioned = errors.New("android: device requires provisioning")
	// ErrSecureOutput is returned when an app asks for frames that were
	// decoded into secure buffers (L1 path).
	ErrSecureOutput = errors.New("android: frames are in secure output buffers")
)

// FlowEvent is one framework-level step, recorded to reproduce Figure 1.
type FlowEvent struct {
	// From and To are the acting components: "Application", "MediaDRM
	// Server", "CDM", "License Server", "CDN".
	From, To string
	// Call is the API step, e.g. "openSession()".
	Call string
}

// FlowRecorder observes framework steps; nil disables recording.
type FlowRecorder func(FlowEvent)

// MediaDrm mirrors android.media.MediaDrm: session management plus the
// provisioning and key-request exchanges.
type MediaDrm struct {
	client *cdm.Client
	flow   FlowRecorder

	mu       sync.Mutex
	sessions map[oemcrypto.SessionID]*drmSession
}

type drmSession struct {
	lastKeyRequest *cdm.SignedLicenseRequest
}

// NewMediaDrm constructs the framework object for a scheme UUID over the
// device's (or an app-embedded) Widevine engine.
func NewMediaDrm(uuid [16]byte, engine oemcrypto.Engine, rand io.Reader, flow FlowRecorder) (*MediaDrm, error) {
	if uuid != WidevineUUID {
		return nil, fmt.Errorf("%w: %x", ErrUnsupportedScheme, uuid)
	}
	if flow == nil {
		flow = func(FlowEvent) {}
	}
	flow(FlowEvent{From: "Application", To: "MediaDRM Server", Call: "MediaDRM(UUID)"})
	flow(FlowEvent{From: "MediaDRM Server", To: "CDM", Call: "Initialize()"})
	return &MediaDrm{
		client:   cdm.NewClient(engine, rand),
		flow:     flow,
		sessions: make(map[oemcrypto.SessionID]*drmSession),
	}, nil
}

// Client exposes the CDM client (the monitor and secure-channel users need
// it).
func (d *MediaDrm) Client() *cdm.Client { return d.client }

// SecurityLevel reports the engine's level.
func (d *MediaDrm) SecurityLevel() oemcrypto.SecurityLevel {
	return d.client.Engine().SecurityLevel()
}

// OpenSession opens a DRM session (Figure 1: openSession crosses the app →
// server → CDM chain).
func (d *MediaDrm) OpenSession() (oemcrypto.SessionID, error) {
	d.flow(FlowEvent{From: "Application", To: "MediaDRM Server", Call: "openSession()"})
	d.flow(FlowEvent{From: "MediaDRM Server", To: "CDM", Call: "openSession()"})
	s, err := d.client.OpenSession()
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.sessions[s] = &drmSession{}
	d.mu.Unlock()
	return s, nil
}

// CloseSession releases a DRM session.
func (d *MediaDrm) CloseSession(s oemcrypto.SessionID) error {
	d.mu.Lock()
	_, ok := d.sessions[s]
	delete(d.sessions, s)
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSession, s)
	}
	return d.client.CloseSession(s)
}

// NeedsProvisioning reports whether the device must run the provisioning
// exchange before key requests can succeed.
func (d *MediaDrm) NeedsProvisioning() bool { return !d.client.Provisioned() }

// GetProvisionRequest builds the opaque provisioning request blob the app
// forwards to the provisioning server.
func (d *MediaDrm) GetProvisionRequest(s oemcrypto.SessionID) ([]byte, error) {
	if err := d.checkSession(s); err != nil {
		return nil, err
	}
	req, err := d.client.CreateProvisioningRequest(s)
	if err != nil {
		return nil, err
	}
	return req.Canonical()
}

// ProvideProvisionResponse feeds the provisioning server's response back.
func (d *MediaDrm) ProvideProvisionResponse(s oemcrypto.SessionID, blob []byte) error {
	if err := d.checkSession(s); err != nil {
		return err
	}
	var resp cdm.ProvisioningResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		return fmt.Errorf("android: provisioning response: %w", err)
	}
	return d.client.ProcessProvisioningResponse(s, &resp)
}

// GetKeyRequest builds the opaque license request blob (Figure 1:
// getKeyRequest → "opaque request").
func (d *MediaDrm) GetKeyRequest(s oemcrypto.SessionID, contentID string, kids [][16]byte) ([]byte, error) {
	if err := d.checkSession(s); err != nil {
		return nil, err
	}
	if d.NeedsProvisioning() {
		return nil, ErrNotProvisioned
	}
	d.flow(FlowEvent{From: "Application", To: "MediaDRM Server", Call: "getKeyRequest()"})
	d.flow(FlowEvent{From: "MediaDRM Server", To: "CDM", Call: "getKeyRequest()"})
	signed, err := d.client.CreateLicenseRequest(s, contentID, kids)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.sessions[s].lastKeyRequest = signed
	d.mu.Unlock()
	blob, err := json.Marshal(signed)
	if err != nil {
		return nil, fmt.Errorf("android: marshal key request: %w", err)
	}
	return blob, nil
}

// ProvideKeyResponse feeds the license server's response back (Figure 1:
// provideKeyResponse).
func (d *MediaDrm) ProvideKeyResponse(s oemcrypto.SessionID, blob []byte) error {
	if err := d.checkSession(s); err != nil {
		return err
	}
	d.flow(FlowEvent{From: "Application", To: "MediaDRM Server", Call: "provideKeyResponse()"})
	d.flow(FlowEvent{From: "MediaDRM Server", To: "CDM", Call: "provideKeyResponse()"})
	d.mu.Lock()
	signed := d.sessions[s].lastKeyRequest
	d.mu.Unlock()
	if signed == nil {
		return fmt.Errorf("android: provideKeyResponse before getKeyRequest")
	}
	var resp cdm.LicenseResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		return fmt.Errorf("android: key response: %w", err)
	}
	return d.client.ProcessLicenseResponse(s, signed, &resp)
}

// CryptoSession mirrors MediaDrm.getCryptoSession: generic crypto over a
// DRM session, the non-DASH API apps use as a secure channel.
type CryptoSession struct {
	drm     *MediaDrm
	session oemcrypto.SessionID
}

// GetCryptoSession binds generic crypto to an open session.
func (d *MediaDrm) GetCryptoSession(s oemcrypto.SessionID) (*CryptoSession, error) {
	if err := d.checkSession(s); err != nil {
		return nil, err
	}
	return &CryptoSession{drm: d, session: s}, nil
}

// DeriveKeys primes the session's generic keys from a channel context.
func (cs *CryptoSession) DeriveKeys(context []byte) error {
	return cs.drm.client.Engine().GenerateDerivedKeys(cs.session, context)
}

// Encrypt seals data.
func (cs *CryptoSession) Encrypt(iv, data []byte) ([]byte, error) {
	return cs.drm.client.Engine().GenericEncrypt(cs.session, iv, data)
}

// Decrypt opens data.
func (cs *CryptoSession) Decrypt(iv, data []byte) ([]byte, error) {
	return cs.drm.client.Engine().GenericDecrypt(cs.session, iv, data)
}

// Sign MACs data.
func (cs *CryptoSession) Sign(data []byte) ([]byte, error) {
	return cs.drm.client.Engine().GenericSign(cs.session, data)
}

// Verify checks a server MAC.
func (cs *CryptoSession) Verify(data, signature []byte) error {
	return cs.drm.client.Engine().GenericVerify(cs.session, data, signature)
}

func (d *MediaDrm) checkSession(s oemcrypto.SessionID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.sessions[s]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSession, s)
	}
	return nil
}

// MediaCrypto mirrors android.media.MediaCrypto: the decryption handle a
// MediaCodec is registered with. Apps never touch decrypted buffers — the
// design that, as the paper notes, defeats MovieStealer-style attacks.
type MediaCrypto struct {
	drm     *MediaDrm
	session oemcrypto.SessionID
}

// NewMediaCrypto binds a crypto object to an open DRM session.
func NewMediaCrypto(drm *MediaDrm, s oemcrypto.SessionID) (*MediaCrypto, error) {
	if err := drm.checkSession(s); err != nil {
		return nil, err
	}
	return &MediaCrypto{drm: drm, session: s}, nil
}

// MediaCodec mirrors android.media.MediaCodec with a registered
// MediaCrypto: queueSecureInputBuffer decrypts and "decodes" samples.
type MediaCodec struct {
	crypto *MediaCrypto
	flow   FlowRecorder

	mu     sync.Mutex
	frames [][]byte
	secure bool
	count  int
}

// NewMediaCodec builds a codec bound to a MediaCrypto.
func NewMediaCodec(crypto *MediaCrypto, flow FlowRecorder) *MediaCodec {
	if flow == nil {
		flow = func(FlowEvent) {}
	}
	return &MediaCodec{crypto: crypto, flow: flow}
}

// QueueSecureInputBuffer submits one encrypted sample for decryption and
// decode (Figure 1: queueSecureInputBuffer → Decrypt()).
func (c *MediaCodec) QueueSecureInputBuffer(kid [16]byte, scheme string, iv [8]byte, subsamples []mp4.SubsampleEntry, data []byte) error {
	c.flow(FlowEvent{From: "Application", To: "MediaDRM Server", Call: "queueSecureInputBuffer()"})
	c.flow(FlowEvent{From: "MediaDRM Server", To: "CDM", Call: "Decrypt()"})
	res, err := c.crypto.drm.client.Decrypt(c.crypto.session, kid, scheme, iv, subsamples, data)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	c.secure = c.secure || res.Secure
	c.frames = append(c.frames, res.Data)
	return nil
}

// QueueClearBuffer submits an unencrypted sample (clear audio tracks take
// this path — no CDM involvement at all).
func (c *MediaCodec) QueueClearBuffer(data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	c.frames = append(c.frames, append([]byte(nil), data...))
}

// FrameCount reports how many samples were decoded.
func (c *MediaCodec) FrameCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Frames returns the decoded frames. For secure (L1) output it refuses —
// the app-visible behaviour of secure output buffers.
func (c *MediaCodec) Frames() ([][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.secure {
		return nil, ErrSecureOutput
	}
	out := make([][]byte, len(c.frames))
	for i, f := range c.frames {
		out[i] = append([]byte(nil), f...)
	}
	return out, nil
}
