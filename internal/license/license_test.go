package license_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/cdm"
	"repro/internal/keybox"
	"repro/internal/license"
	"repro/internal/mp4"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// mapStore is a tiny in-memory FileStore.
type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
}

func (s *mapStore) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	return d, ok
}

// world bundles a provisioned L3 device with its servers.
type world struct {
	client   *cdm.Client
	registry *provision.Registry
	provSrv  *provision.Server
	db       *license.KeyDB
}

func newWorld(t testing.TB, cdmVersion string, provPolicy provision.Policy) *world {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("license-test-" + cdmVersion)
	kb, err := keybox.New("LIC-TEST-DEV", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := oemcrypto.InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	engine, err := oemcrypto.NewSoftEngine(cdmVersion, procmem.NewSpace("mediadrmserver"), store, rand)
	if err != nil {
		t.Fatal(err)
	}
	registry := provision.NewRegistry()
	registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
	return &world{
		client:   cdm.NewClient(engine, rand),
		registry: registry,
		provSrv:  provision.NewServer(registry, provPolicy, rand),
		db:       license.NewKeyDB(),
	}
}

// provision completes the provisioning flow end to end.
func (w *world) provision(t testing.TB) error {
	t.Helper()
	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.client.CloseSession(s) }()
	req, err := w.client.CreateProvisioningRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := w.provSrv.Provision(req)
	if err != nil {
		return err
	}
	return w.client.ProcessProvisioningResponse(s, resp)
}

func testKeys() []license.KeyEntry {
	return []license.KeyEntry{
		{KID: [16]byte{1}, Key: bytes.Repeat([]byte{0x10}, 16), Track: license.TrackVideo, MaxHeight: 540},
		{KID: [16]byte{2}, Key: bytes.Repeat([]byte{0x20}, 16), Track: license.TrackVideo, MaxHeight: 1080},
		{KID: [16]byte{3}, Key: bytes.Repeat([]byte{0x30}, 16), Track: license.TrackAudio},
	}
}

func TestEndToEndLicenseFlow(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	w.db.Register("movie-1", testKeys())
	srv := license.NewServer(w.db, w.registry, license.Policy{L3MaxHeight: 540}, wvcrypto.NewDeterministicReader("srv"))

	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := w.client.CreateLicenseRequest(s, "movie-1", [][16]byte{{1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.HandleRequest(signed)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Keys) != 2 {
		t.Fatalf("granted %d keys, want 2", len(resp.Keys))
	}
	if err := w.client.ProcessLicenseResponse(s, signed, resp); err != nil {
		t.Fatal(err)
	}

	// Prove the loaded video key actually decrypts content.
	contentKey := bytes.Repeat([]byte{0x10}, 16)
	plaintext := []byte("protected media sample bytes!")
	iv := [8]byte{4, 4}
	var counter [16]byte
	copy(counter[:8], iv[:])
	stream, err := wvcrypto.CTRStream(contentKey, counter[:])
	if err != nil {
		t.Fatal(err)
	}
	ct := append([]byte(nil), plaintext...)
	stream.XORKeyStream(ct, ct)
	res, err := w.client.Decrypt(s, [16]byte{1}, mp4.SchemeCENC, iv, nil, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, plaintext) {
		t.Error("decrypted content mismatch")
	}
}

func TestLicense_L3ResolutionCap(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	w.db.Register("movie-1", testKeys())
	srv := license.NewServer(w.db, w.registry, license.Policy{L3MaxHeight: 540}, wvcrypto.NewDeterministicReader("srv"))

	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	// Ask for everything: the 1080p key must be withheld from an L3 client.
	signed, err := w.client.CreateLicenseRequest(s, "movie-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.HandleRequest(signed)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[[16]byte]bool, len(resp.Keys))
	for _, k := range resp.Keys {
		got[k.KID] = true
	}
	if got[[16]byte{2}] {
		t.Error("1080p key granted to L3 client")
	}
	if !got[[16]byte{1}] || !got[[16]byte{3}] {
		t.Error("540p/audio keys missing")
	}

	// Only the HD key requested → nothing usable.
	signedHD, err := w.client.CreateLicenseRequest(s, "movie-1", [][16]byte{{2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.HandleRequest(signedHD); !errors.Is(err, license.ErrNoUsableKeys) {
		t.Errorf("HD-only request err = %v, want ErrNoUsableKeys", err)
	}
}

func TestLicense_RevokesOldCDM(t *testing.T) {
	w := newWorld(t, "3.1.0", provision.Policy{})
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	w.db.Register("movie-1", testKeys())
	srv := license.NewServer(w.db, w.registry, license.Policy{MinCDMVersion: "14.0"}, wvcrypto.NewDeterministicReader("srv"))

	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := w.client.CreateLicenseRequest(s, "movie-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.HandleRequest(signed); !errors.Is(err, license.ErrDeviceRevoked) {
		t.Errorf("err = %v, want ErrDeviceRevoked", err)
	}
}

func TestLicense_UnprovisionedDevice(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	w.db.Register("movie-1", testKeys())
	srv := license.NewServer(w.db, w.registry, license.Policy{}, wvcrypto.NewDeterministicReader("srv"))

	// Forge a request body without provisioning.
	body, err := (&cdm.LicenseRequest{StableID: "LIC-TEST-DEV", CDMVersion: "15.0", Level: "L3", ContentID: "movie-1"}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.HandleRequest(&cdm.SignedLicenseRequest{Body: body, Signature: []byte("junk")})
	if !errors.Is(err, license.ErrUnknownDevice) {
		t.Errorf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestLicense_BadSignature(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	w.db.Register("movie-1", testKeys())
	srv := license.NewServer(w.db, w.registry, license.Policy{}, wvcrypto.NewDeterministicReader("srv"))

	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := w.client.CreateLicenseRequest(s, "movie-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	signed.Signature[0] ^= 1
	if _, err := srv.HandleRequest(signed); !errors.Is(err, license.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestLicense_UnknownContent(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	srv := license.NewServer(w.db, w.registry, license.Policy{}, wvcrypto.NewDeterministicReader("srv"))
	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := w.client.CreateLicenseRequest(s, "no-such-movie", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.HandleRequest(signed); !errors.Is(err, license.ErrUnknownContent) {
		t.Errorf("err = %v, want ErrUnknownContent", err)
	}
}

func TestProvision_RevokesOldCDM(t *testing.T) {
	w := newWorld(t, "3.1.0", provision.Policy{MinCDMVersion: "14.0"})
	if err := w.provision(t); !errors.Is(err, provision.ErrDeviceRevoked) {
		t.Errorf("err = %v, want provision.ErrDeviceRevoked", err)
	}
	if w.client.Provisioned() {
		t.Error("client claims provisioned after revoked provisioning")
	}
}

func TestProvision_UnknownDevice(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	// Fresh registry that never saw the device.
	emptyReg := provision.NewRegistry()
	srv := provision.NewServer(emptyReg, provision.Policy{}, wvcrypto.NewDeterministicReader("x"))
	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	req, err := w.client.CreateProvisioningRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Provision(req); !errors.Is(err, provision.ErrUnknownDevice) {
		t.Errorf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestProvision_Idempotent(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	pub1, ok := w.registry.RSAPublicKey("LIC-TEST-DEV")
	if !ok {
		t.Fatal("no rsa pub after provisioning")
	}
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	pub2, _ := w.registry.RSAPublicKey("LIC-TEST-DEV")
	if pub1.N.Cmp(pub2.N) != 0 {
		t.Error("re-provisioning minted a different RSA key")
	}
}

func TestKeyDB(t *testing.T) {
	db := license.NewKeyDB()
	if _, ok := db.Lookup("x"); ok {
		t.Error("empty db lookup succeeded")
	}
	keys := testKeys()
	db.Register("x", keys)
	got, ok := db.Lookup("x")
	if !ok || len(got) != 3 {
		t.Fatalf("lookup = %v, %v", got, ok)
	}
	// Mutating the returned slice must not affect the DB.
	got[0].KID = [16]byte{0xFF}
	again, _ := db.Lookup("x")
	if again[0].KID == ([16]byte{0xFF}) {
		t.Error("db exposed internal state")
	}
}

func TestSecureChannel(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	ch, err := w.client.OpenSecureChannel([]byte("channel-ctx"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ch.Close(); err != nil {
			t.Error(err)
		}
	}()
	secret := []byte("https://cdn.example/manifest?token=abc")
	sealed, err := ch.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, []byte("manifest")) {
		t.Error("sealed data leaks plaintext")
	}
	opened, err := ch.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, secret) {
		t.Error("secure channel roundtrip mismatch")
	}
	if got, err := ch.OpenWithIV(ch.IV(), sealed); err != nil || !bytes.Equal(got, secret) {
		t.Errorf("OpenWithIV = %q, %v", got, err)
	}
}

func TestLicense_DurationPropagates(t *testing.T) {
	w := newWorld(t, "15.0", provision.Policy{})
	if err := w.provision(t); err != nil {
		t.Fatal(err)
	}
	w.db.Register("movie-1", testKeys())
	srv := license.NewServer(w.db, w.registry, license.Policy{
		LicenseDurationSeconds: 1800,
	}, wvcrypto.NewDeterministicReader("srv-dur"))

	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := w.client.CreateLicenseRequest(s, "movie-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.HandleRequest(signed)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range resp.Keys {
		if k.DurationSeconds != 1800 {
			t.Errorf("key %x duration = %d, want 1800", k.KID, k.DurationSeconds)
		}
	}
	// The client loads timed keys without error.
	if err := w.client.ProcessLicenseResponse(s, signed, resp); err != nil {
		t.Fatal(err)
	}
}
