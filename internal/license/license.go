// Package license implements the License Server of the DRM architecture:
// it verifies PSS-signed license requests against provisioned device
// identities, applies the OTT deployment's policy (device revocation,
// resolution caps for software-only clients), and issues content keys down
// the key ladder (OAEP session-key transport, CMAC-derived message keys,
// CBC-wrapped content keys, HMAC-authenticated responses).
//
// Policy is where the paper's findings live server-side: a deployment that
// leaves MinCDMVersion empty keeps serving discontinued devices (Q4), and
// every server caps L3 clients below HD, which is why the paper's attack
// tops out at 960x540.
package license

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/cdm"
	"repro/internal/oemcrypto"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// Errors returned by the license server.
var (
	// ErrUnknownDevice is returned when the requester was never
	// provisioned (no RSA public key on record).
	ErrUnknownDevice = errors.New("license: device not provisioned")
	// ErrBadSignature is returned when the request signature fails.
	ErrBadSignature = errors.New("license: request signature invalid")
	// ErrUnknownContent is returned for contents without registered keys.
	ErrUnknownContent = errors.New("license: unknown content")
	// ErrDeviceRevoked is returned when policy refuses the CDM version.
	ErrDeviceRevoked = errors.New("license: device revoked by policy")
	// ErrNoUsableKeys is returned when policy filters every requested key.
	ErrNoUsableKeys = errors.New("license: no keys usable at this security level")
)

// TrackVideo/TrackAudio label key entries by asset type.
const (
	TrackVideo = "video"
	TrackAudio = "audio"
)

// KeyEntry is one content key registered for an asset.
type KeyEntry struct {
	KID [16]byte
	Key []byte
	// Track is TrackVideo or TrackAudio.
	Track string
	// MaxHeight is the tallest resolution this key unlocks; the server
	// refuses it to clients whose security level caps below that.
	// Zero means unrestricted (audio keys).
	MaxHeight uint16
}

// KeyDB maps content IDs to their key sets. One DB is shared between the
// packager (which encrypts with these keys) and the license server.
type KeyDB struct {
	mu       sync.RWMutex
	contents map[string][]KeyEntry
}

// NewKeyDB returns an empty key database.
func NewKeyDB() *KeyDB {
	return &KeyDB{contents: make(map[string][]KeyEntry)}
}

// Register stores the key set of a content, replacing any previous set.
func (db *KeyDB) Register(contentID string, keys []KeyEntry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cp := make([]KeyEntry, len(keys))
	copy(cp, keys)
	db.contents[contentID] = cp
}

// Lookup returns the key set of a content.
func (db *KeyDB) Lookup(contentID string) ([]KeyEntry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys, ok := db.contents[contentID]
	if !ok {
		return nil, false
	}
	cp := make([]KeyEntry, len(keys))
	copy(cp, keys)
	return cp, true
}

// Policy is one OTT deployment's license admission rule.
type Policy struct {
	// MinCDMVersion rejects clients running older CDMs ("" = serve all,
	// the availability-over-security choice most apps in Table I make).
	MinCDMVersion string
	// L3MaxHeight caps the resolution keys granted to L3 clients
	// (typically 540: sub-HD only, as the paper observes).
	L3MaxHeight uint16
	// LicenseDurationSeconds bounds each granted key's lifetime (the
	// key-control duration). Zero issues unlimited licenses.
	LicenseDurationSeconds uint32
}

// Server is one OTT deployment's license endpoint.
type Server struct {
	db       *KeyDB
	registry *provision.Registry
	policy   Policy
	rand     io.Reader
}

// NewServer builds a license server over a key DB and the provisioning
// registry used to verify device signatures.
func NewServer(db *KeyDB, registry *provision.Registry, policy Policy, rand io.Reader) *Server {
	return &Server{db: db, registry: registry, policy: policy, rand: rand}
}

// Policy returns the server's policy (tests and the study report use it).
func (s *Server) Policy() Policy { return s.policy }

// HandleRequest verifies and answers one signed license request.
func (s *Server) HandleRequest(signed *cdm.SignedLicenseRequest) (*cdm.LicenseResponse, error) {
	req, err := cdm.ParseLicenseRequest(signed.Body)
	if err != nil {
		return nil, err
	}
	pub, ok := s.registry.RSAPublicKey(req.StableID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, req.StableID)
	}
	if !wvcrypto.VerifyPSS(pub, signed.Body, signed.Signature) {
		return nil, ErrBadSignature
	}
	if !cdm.VersionAtLeast(req.CDMVersion, s.policy.MinCDMVersion) {
		return nil, fmt.Errorf("%w: cdm %s < minimum %s", ErrDeviceRevoked, req.CDMVersion, s.policy.MinCDMVersion)
	}

	entries, ok := s.db.Lookup(req.ContentID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownContent, req.ContentID)
	}
	granted := s.filterKeys(req, entries)
	if len(granted) == 0 {
		return nil, ErrNoUsableKeys
	}

	// Key ladder, server side: session key → OAEP transport → derived
	// message keys → CBC-wrapped content keys → HMAC over the response.
	sessionKey := make([]byte, 16)
	if _, err := io.ReadFull(s.rand, sessionKey); err != nil {
		return nil, fmt.Errorf("license: session key: %w", err)
	}
	encSessionKey, err := wvcrypto.EncryptOAEP(s.rand, pub, sessionKey)
	if err != nil {
		return nil, fmt.Errorf("license: wrap session key: %w", err)
	}
	derived, err := wvcrypto.DeriveSessionKeys(sessionKey, signed.Body)
	if err != nil {
		return nil, fmt.Errorf("license: derive keys: %w", err)
	}

	wrapped := make([]oemcrypto.EncryptedKey, 0, len(granted))
	for _, entry := range granted {
		var iv [16]byte
		if _, err := io.ReadFull(s.rand, iv[:]); err != nil {
			return nil, fmt.Errorf("license: key iv: %w", err)
		}
		payload, err := wvcrypto.EncryptCBC(derived.Enc, iv[:], entry.Key)
		if err != nil {
			return nil, fmt.Errorf("license: wrap content key: %w", err)
		}
		wrapped = append(wrapped, oemcrypto.EncryptedKey{
			KID: entry.KID, IV: iv, Payload: payload,
			DurationSeconds: s.policy.LicenseDurationSeconds,
		})
	}

	message := append([]byte("license-grant:"), signed.Body...)
	return &cdm.LicenseResponse{
		EncSessionKey: encSessionKey,
		Message:       message,
		MAC:           wvcrypto.HMACSHA256(derived.MACServer, message),
		Keys:          wrapped,
	}, nil
}

// filterKeys applies the resolution cap and restricts the grant to the
// requested KIDs (when the request names any).
func (s *Server) filterKeys(req *cdm.LicenseRequest, entries []KeyEntry) []KeyEntry {
	requested := make(map[[16]byte]bool, len(req.KIDs))
	for _, kid := range req.KIDs {
		requested[kid] = true
	}
	var out []KeyEntry
	for _, entry := range entries {
		if len(requested) > 0 && !requested[entry.KID] {
			continue
		}
		if req.Level == oemcrypto.L3.String() && s.policy.L3MaxHeight > 0 &&
			entry.MaxHeight > s.policy.L3MaxHeight {
			continue
		}
		out = append(out, entry)
	}
	return out
}
