package manifest

import (
	"bytes"

	"repro/internal/dash"
)

func init() { Register(dashDialect{}) }

// dashDialect is the identity dialect: the wire format IS the canonical
// model.
type dashDialect struct{}

func (dashDialect) Name() string      { return "dash" }
func (dashDialect) Extension() string { return "mpd" }

func (dashDialect) Sniff(b []byte) bool {
	trimmed := bytes.TrimLeft(b, " \t\r\n")
	return bytes.HasPrefix(trimmed, []byte("<")) && bytes.Contains(b, []byte("<MPD"))
}

func (dashDialect) Parse(b []byte) (*dash.MPD, error) { return dash.Parse(b) }

func (dashDialect) Serialize(m *dash.MPD) ([]byte, error) { return m.Marshal() }

func (d dashDialect) Protections(b []byte) ([]dash.ContentProtection, error) {
	m, err := d.Parse(b)
	if err != nil {
		return nil, err
	}
	return mpdProtections(m), nil
}

func (d dashDialect) SegmentURLs(b []byte) ([]string, error) {
	m, err := d.Parse(b)
	if err != nil {
		return nil, err
	}
	return m.AllURLs(), nil
}
