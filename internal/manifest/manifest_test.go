package manifest

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dash"
	"repro/internal/media"
	"repro/internal/wvcrypto"
)

// packagerMPD produces a real packaged manifest — the exact canonical
// shape the CDN stores — under the given key policy.
func packagerMPD(t *testing.T, policy media.KeyPolicy) *dash.MPD {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("manifest-test")
	tracks := media.GenerateTitle("movie-1", media.DefaultGenerateOptions())
	packaged, err := media.Package("movie-1", tracks, policy, rand)
	if err != nil {
		t.Fatal(err)
	}
	return packaged.MPD
}

// policies covers the packager's protection shapes: shared video key,
// distinct audio key, and all-clear audio.
var policies = []struct {
	name   string
	policy media.KeyPolicy
}{
	{"clear-audio", media.KeyPolicy{}},
	{"encrypted-audio-shared-key", media.KeyPolicy{EncryptAudio: true}},
	{"recommended", media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: true}},
}

// TestRoundTripLossless is the conversion linchpin: every dialect must
// reproduce the canonical model exactly, in both segment-list and
// template addressing, for every packager protection shape. Q2/Q3
// dialect-equality rests on this.
func TestRoundTripLossless(t *testing.T) {
	for _, pol := range policies {
		for _, form := range []string{"list", "template"} {
			mpd := packagerMPD(t, pol.policy)
			if form == "template" {
				media.ConvertToTemplates(mpd)
			}
			for _, name := range Names() {
				d, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(pol.name+"/"+form+"/"+name, func(t *testing.T) {
					raw, err := d.Serialize(mpd)
					if err != nil {
						t.Fatalf("Serialize: %v", err)
					}
					if !d.Sniff(raw) {
						t.Error("dialect does not sniff its own output")
					}
					got, err := d.Parse(raw)
					if err != nil {
						t.Fatalf("Parse: %v", err)
					}
					got.XMLName.Local = ""
					want := *mpd
					want.XMLName.Local = ""
					if !reflect.DeepEqual(got, &want) {
						t.Errorf("round trip through %s is lossy:\n got %+v\nwant %+v", name, got, &want)
					}
				})
			}
		}
	}
}

// TestDialectsAgreeOnExtraction pins that the Protections and SegmentURLs
// views are identical across dialects for the same canonical manifest.
func TestDialectsAgreeOnExtraction(t *testing.T) {
	mpd := packagerMPD(t, media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: true})
	var wantProt []dash.ContentProtection
	var wantURLs []string
	for i, name := range Names() {
		d, _ := ByName(name)
		raw, err := d.Serialize(mpd)
		if err != nil {
			t.Fatal(err)
		}
		prot, err := d.Protections(raw)
		if err != nil {
			t.Fatal(err)
		}
		urls, err := d.SegmentURLs(raw)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantProt, wantURLs = prot, urls
			if len(wantProt) == 0 || len(wantURLs) == 0 {
				t.Fatal("dash extraction came back empty — test fixture broken")
			}
			continue
		}
		if !reflect.DeepEqual(prot, wantProt) {
			t.Errorf("%s Protections diverge from dash:\n got %+v\nwant %+v", name, prot, wantProt)
		}
		if !reflect.DeepEqual(urls, wantURLs) {
			t.Errorf("%s SegmentURLs diverge from dash:\n got %v\nwant %v", name, urls, wantURLs)
		}
	}
}

func TestRegistry(t *testing.T) {
	if got, want := strings.Join(Names(), ","), "dash,hls,sstr"; got != want {
		t.Fatalf("Names() = %q, want %q", got, want)
	}
	for _, name := range []string{"", "dash", "DASH", "hls", "HLS", "sstr"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	_, err := ByName("rtmp")
	if err == nil {
		t.Fatal("ByName(rtmp) must error")
	}
	for _, want := range []string{"rtmp", "dash, hls, sstr"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-dialect error %q missing %q", err, want)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{"": "", "dash": "", "DASH": "", "hls": "hls", "HLS": "hls", "sstr": "sstr"}
	for in, want := range cases {
		got, err := CanonicalName(in)
		if err != nil || got != want {
			t.Errorf("CanonicalName(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := CanonicalName("flash"); err == nil {
		t.Error("CanonicalName(flash) must error")
	}
}

func TestSplitExtensionAndPathFor(t *testing.T) {
	cases := []struct{ path, base, dialect string }{
		{"movie-1", "movie-1", ""},
		{"movie-1.m3u8", "movie-1", "hls"},
		{"movie-1.ism", "movie-1", "sstr"},
		{"movie-1.mpd", "movie-1.mpd", ""}, // default dialect keeps the bare path
		{"movie-1.txt", "movie-1.txt", ""}, // unregistered extension stays part of the ID
		{"a.b.m3u8", "a.b", "hls"},
	}
	for _, c := range cases {
		base, dialect := SplitExtension(c.path)
		if base != c.base || dialect != c.dialect {
			t.Errorf("SplitExtension(%q) = %q, %q; want %q, %q", c.path, base, dialect, c.base, c.dialect)
		}
	}
	if got := PathFor("movie-1", ""); got != "movie-1" {
		t.Errorf("PathFor default = %q", got)
	}
	if got := PathFor("movie-1", "dash"); got != "movie-1" {
		t.Errorf("PathFor dash = %q", got)
	}
	if got := PathFor("movie-1", "hls"); got != "movie-1.m3u8" {
		t.Errorf("PathFor hls = %q", got)
	}
	if got := PathFor("movie-1", "sstr"); got != "movie-1.ism" {
		t.Errorf("PathFor sstr = %q", got)
	}
}

func TestParseAny(t *testing.T) {
	mpd := packagerMPD(t, media.KeyPolicy{})
	for _, name := range Names() {
		d, _ := ByName(name)
		raw, err := d.Serialize(mpd)
		if err != nil {
			t.Fatal(err)
		}
		got, via, err := ParseAny(raw)
		if err != nil {
			t.Fatalf("ParseAny(%s): %v", name, err)
		}
		if via.Name() != name {
			t.Errorf("ParseAny picked %s for %s bytes", via.Name(), name)
		}
		if len(got.Periods) != len(mpd.Periods) {
			t.Errorf("ParseAny(%s) lost periods", name)
		}
	}
	if _, _, err := ParseAny([]byte("plain text")); err == nil {
		t.Error("ParseAny must reject unrecognized bytes")
	}
}

func TestSSTRRejectsMultiPeriod(t *testing.T) {
	d, _ := ByName("sstr")
	_, err := d.Serialize(&dash.MPD{Periods: []dash.Period{{ID: "p0"}, {ID: "p1"}}})
	if err == nil || !strings.Contains(err.Error(), "one period") {
		t.Errorf("sstr multi-period Serialize err = %v", err)
	}
}
