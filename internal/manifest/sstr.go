package manifest

import (
	"fmt"
	"strings"

	"repro/internal/dash"
	"repro/internal/sstr"
)

func init() { Register(sstrDialect{}) }

// sstrDialect converts between the canonical model and SmoothStreamingMedia
// documents. Smooth Streaming has no period concept, so the dialect is
// single-period only: Serialize refuses multi-period manifests (the
// packager never emits them) and Parse yields one period whose ID rides the
// PeriodID attribute.
type sstrDialect struct{}

func (sstrDialect) Name() string        { return "sstr" }
func (sstrDialect) Extension() string   { return "ism" }
func (sstrDialect) Sniff(b []byte) bool { return sstr.Sniff(b) }

func protectionHeader(cp dash.ContentProtection) sstr.ProtectionHeader {
	return sstr.ProtectionHeader{
		SystemID: cp.SchemeIDURI,
		Value:    cp.Value,
		KeyID:    cp.DefaultKID,
		Data:     cp.PSSH,
	}
}

func protectionFromHeader(h sstr.ProtectionHeader) dash.ContentProtection {
	return dash.ContentProtection{
		SchemeIDURI: h.SystemID,
		Value:       h.Value,
		DefaultKID:  h.KeyID,
		PSSH:        strings.TrimSpace(h.Data),
	}
}

func wrapProtection(cps []dash.ContentProtection) *sstr.Protection {
	if len(cps) == 0 {
		return nil
	}
	p := &sstr.Protection{}
	for _, cp := range cps {
		p.Headers = append(p.Headers, protectionHeader(cp))
	}
	return p
}

func unwrapProtection(p *sstr.Protection) []dash.ContentProtection {
	if p == nil {
		return nil
	}
	var out []dash.ContentProtection
	for _, h := range p.Headers {
		out = append(out, protectionFromHeader(h))
	}
	return out
}

func (sstrDialect) Serialize(m *dash.MPD) ([]byte, error) {
	if len(m.Periods) != 1 {
		return nil, fmt.Errorf("sstr: dialect requires exactly one period, manifest has %d", len(m.Periods))
	}
	period := m.Periods[0]
	doc := &sstr.Manifest{
		MajorVersion:     2,
		MinorVersion:     1,
		Duration:         m.Duration,
		Profiles:         m.Profiles,
		PresentationType: m.Type,
		PeriodID:         period.ID,
	}
	for _, set := range period.AdaptationSets {
		si := sstr.StreamIndex{
			Type:       set.ContentType,
			MimeType:   set.MimeType,
			Language:   set.Lang,
			Protection: wrapProtection(set.ContentProtections),
		}
		for _, rep := range set.Representations {
			ql := sstr.QualityLevel{
				Index:      rep.ID,
				Bitrate:    rep.Bandwidth,
				MaxWidth:   rep.Width,
				MaxHeight:  rep.Height,
				FourCC:     rep.Codecs,
				Url:        rep.BaseURL,
				Protection: wrapProtection(rep.ContentProtections),
			}
			if list := rep.SegmentList; list != nil {
				cl := &sstr.ChunkList{}
				if list.Initialization != nil {
					cl.Init = list.Initialization.SourceURL
				}
				for _, s := range list.SegmentURLs {
					cl.Chunks = append(cl.Chunks, sstr.Chunk{Src: s.SourceURL})
				}
				ql.Chunks = cl
			}
			if t := rep.SegmentTemplate; t != nil {
				ql.Template = &sstr.FragmentTemplate{
					Initialization: t.Initialization,
					Media:          t.Media,
					StartNumber:    t.StartNumber,
					Count:          t.SegmentCount,
				}
			}
			si.QualityLevels = append(si.QualityLevels, ql)
		}
		doc.StreamIndexes = append(doc.StreamIndexes, si)
	}
	return doc.Marshal()
}

func (sstrDialect) Parse(b []byte) (*dash.MPD, error) {
	doc, err := sstr.Parse(b)
	if err != nil {
		return nil, err
	}
	m := &dash.MPD{
		Profiles: doc.Profiles,
		Type:     doc.PresentationType,
		Duration: doc.Duration,
	}
	period := dash.Period{ID: doc.PeriodID}
	for _, si := range doc.StreamIndexes {
		set := dash.AdaptationSet{
			ContentType:        si.Type,
			MimeType:           si.MimeType,
			Lang:               si.Language,
			ContentProtections: unwrapProtection(si.Protection),
		}
		for _, ql := range si.QualityLevels {
			rep := dash.Representation{
				ID:                 ql.Index,
				Bandwidth:          ql.Bitrate,
				Width:              ql.MaxWidth,
				Height:             ql.MaxHeight,
				Codecs:             ql.FourCC,
				BaseURL:            ql.Url,
				ContentProtections: unwrapProtection(ql.Protection),
			}
			if cl := ql.Chunks; cl != nil {
				list := &dash.SegmentList{}
				if cl.Init != "" {
					list.Initialization = &dash.SegmentURL{SourceURL: cl.Init}
				}
				for _, c := range cl.Chunks {
					list.SegmentURLs = append(list.SegmentURLs, dash.SegmentURL{SourceURL: c.Src})
				}
				rep.SegmentList = list
			}
			if t := ql.Template; t != nil {
				rep.SegmentTemplate = &dash.SegmentTemplate{
					Initialization: t.Initialization,
					Media:          t.Media,
					StartNumber:    t.StartNumber,
					SegmentCount:   t.Count,
				}
			}
			set.Representations = append(set.Representations, rep)
		}
		period.AdaptationSets = append(period.AdaptationSets, set)
	}
	m.Periods = []dash.Period{period}
	return m, nil
}

func (d sstrDialect) Protections(b []byte) ([]dash.ContentProtection, error) {
	m, err := d.Parse(b)
	if err != nil {
		return nil, err
	}
	return mpdProtections(m), nil
}

func (d sstrDialect) SegmentURLs(b []byte) ([]string, error) {
	m, err := d.Parse(b)
	if err != nil {
		return nil, err
	}
	return m.AllURLs(), nil
}
