// Package manifest is the dialect subsystem: one interface over the three
// manifest wire formats OTT apps speak (MPEG-DASH, HLS, Smooth Streaming),
// with internal/dash's MPD as the canonical in-memory model every dialect
// converts to and from.
//
// That canonical-model design is the invariant the whole protocol axis
// rests on: probes, playback, and classification all operate on *dash.MPD,
// so a title fetched as m3u8 or .ism is byte-for-byte the same study input
// as the DASH original once parsed — Q2/Q3 rows cannot drift across
// dialects unless a conversion is lossy, and the round-trip tests pin that
// they are not.
//
// The default dialect is DASH and is canonically spelled "" so every
// pre-existing cache key, URL, and golden stays untouched; only non-default
// dialects mark keys and URL paths.
package manifest

import (
	"fmt"
	"strings"

	"repro/internal/dash"
)

// DefaultName is the registered name of the default dialect.
const DefaultName = "dash"

// Dialect is one manifest wire format. Parse and Serialize convert to and
// from the canonical model; Sniff type-detects raw bytes; Extension is the
// URL suffix (without dot) that selects the dialect on fetch paths.
type Dialect interface {
	Name() string
	Extension() string
	Sniff(b []byte) bool
	Parse(b []byte) (*dash.MPD, error)
	Serialize(m *dash.MPD) ([]byte, error)
	// Protections extracts every DRM descriptor in document order —
	// set-level then representation-level — without the caller needing
	// the canonical model.
	Protections(b []byte) ([]dash.ContentProtection, error)
	// SegmentURLs extracts every addressable media URL (init + segments,
	// templates expanded), BaseURL-prefixed.
	SegmentURLs(b []byte) ([]string, error)
}

// registry holds dialects in registration order (dash first).
var registry []Dialect

// Register adds a dialect; duplicate names or extensions panic at init
// time (registration is package wiring, not runtime input).
func Register(d Dialect) {
	for _, have := range registry {
		if have.Name() == d.Name() || have.Extension() == d.Extension() {
			panic(fmt.Sprintf("manifest: duplicate dialect registration %q/%q", d.Name(), d.Extension()))
		}
	}
	registry = append(registry, d)
}

// Names lists registered dialect names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name()
	}
	return out
}

// ByName resolves a dialect name ("" means the default). Unknown names
// error with the registered list, matching the device-registry style.
func ByName(name string) (Dialect, error) {
	if name == "" {
		name = DefaultName
	}
	for _, d := range registry {
		if strings.EqualFold(d.Name(), name) {
			return d, nil
		}
	}
	return nil, fmt.Errorf("manifest: unknown dialect %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// CanonicalName validates a dialect name and returns its canonical cache-key
// spelling: "" for the default dialect (so default keys, URLs, and goldens
// are untouched), the lowercase registered name otherwise.
func CanonicalName(name string) (string, error) {
	d, err := ByName(name)
	if err != nil {
		return "", err
	}
	if d.Name() == DefaultName {
		return "", nil
	}
	return d.Name(), nil
}

// ByExtension resolves a dialect by its URL suffix (without dot); ok is
// false for unregistered extensions.
func ByExtension(ext string) (Dialect, bool) {
	for _, d := range registry {
		if d.Extension() == ext {
			return d, true
		}
	}
	return nil, false
}

// SplitExtension splits a fetch path into its base and the dialect a
// registered extension selects. Paths without a registered extension are
// returned whole with the default dialect's name spelled "" — the bare
// path IS the default-dialect path, byte-identical to pre-dialect traffic.
func SplitExtension(path string) (base, dialectName string) {
	dot := strings.LastIndexByte(path, '.')
	if dot < 0 {
		return path, ""
	}
	if d, ok := ByExtension(path[dot+1:]); ok && d.Name() != DefaultName {
		return path[:dot], d.Name()
	}
	return path, ""
}

// PathFor appends the dialect's extension to a base fetch path; the default
// dialect keeps the bare path.
func PathFor(base, dialectName string) string {
	if dialectName == "" || strings.EqualFold(dialectName, DefaultName) {
		return base
	}
	if d, err := ByName(dialectName); err == nil {
		return base + "." + d.Extension()
	}
	return base
}

// ParseAny sniffs the bytes against every registered dialect and parses
// with the first match. Used where the wire format is unknown in advance
// (recovered traffic, CDM dumps).
func ParseAny(b []byte) (*dash.MPD, Dialect, error) {
	for _, d := range registry {
		if !d.Sniff(b) {
			continue
		}
		m, err := d.Parse(b)
		if err != nil {
			return nil, d, err
		}
		return m, d, nil
	}
	return nil, nil, fmt.Errorf("manifest: no registered dialect recognizes the input")
}

// mpdProtections walks a canonical manifest's DRM descriptors in document
// order — the shared implementation behind every dialect's Protections.
func mpdProtections(m *dash.MPD) []dash.ContentProtection {
	var out []dash.ContentProtection
	for _, p := range m.Periods {
		for _, a := range p.AdaptationSets {
			out = append(out, a.ContentProtections...)
			for _, r := range a.Representations {
				out = append(out, r.ContentProtections...)
			}
		}
	}
	return out
}
