package manifest

import (
	"repro/internal/dash"
	"repro/internal/hls"
)

func init() { Register(hlsDialect{}) }

// hlsDialect converts between the canonical model and m3u8 playlists. The
// mapping is lossless for everything the packager emits: adaptation sets
// become rendition groups, set-level protection becomes session keys,
// representation protection becomes #EXT-X-KEY descriptors, and template
// addressing rides the X-WIDELEAK-TEMPLATE carrier.
type hlsDialect struct{}

func (hlsDialect) Name() string        { return "hls" }
func (hlsDialect) Extension() string   { return "m3u8" }
func (hlsDialect) Sniff(b []byte) bool { return hls.Sniff(b) }

// groupType maps canonical content types onto the #EXT-X-MEDIA TYPE
// enumeration; unknown types pass through verbatim so they survive a
// round trip.
func groupType(contentType string) string {
	switch contentType {
	case dash.ContentVideo:
		return hls.TypeVideo
	case dash.ContentAudio:
		return hls.TypeAudio
	case dash.ContentSubtitle:
		return hls.TypeSubtitles
	}
	return contentType
}

func contentTypeOf(groupType string) string {
	switch groupType {
	case hls.TypeVideo:
		return dash.ContentVideo
	case hls.TypeAudio:
		return dash.ContentAudio
	case hls.TypeSubtitles:
		return dash.ContentSubtitle
	}
	return groupType
}

func keyFromProtection(cp dash.ContentProtection) hls.Key {
	k := hls.Key{
		Method:    "SAMPLE-AES-CTR",
		KeyFormat: cp.SchemeIDURI,
		KeyID:     cp.DefaultKID,
		Value:     cp.Value,
	}
	k.SetPSSH(cp.PSSH)
	return k
}

func protectionFromKey(k hls.Key) dash.ContentProtection {
	return dash.ContentProtection{
		SchemeIDURI: k.KeyFormat,
		Value:       k.Value,
		DefaultKID:  k.KeyID,
		PSSH:        k.PSSH(),
	}
}

func (hlsDialect) Serialize(m *dash.MPD) ([]byte, error) {
	p := &hls.Playlist{
		MPDProfiles: m.Profiles,
		MPDType:     m.Type,
		MPDDuration: m.Duration,
	}
	for _, period := range m.Periods {
		hp := hls.Period{ID: period.ID}
		for _, set := range period.AdaptationSets {
			g := hls.Group{
				Type:     groupType(set.ContentType),
				MimeType: set.MimeType,
				Language: set.Lang,
			}
			for _, cp := range set.ContentProtections {
				g.SessionKeys = append(g.SessionKeys, keyFromProtection(cp))
			}
			for _, rep := range set.Representations {
				r := hls.Rendition{
					URI:       rep.ID + ".m3u8",
					ID:        rep.ID,
					Bandwidth: rep.Bandwidth,
					Width:     rep.Width,
					Height:    rep.Height,
					Codecs:    rep.Codecs,
					BaseURI:   rep.BaseURL,
				}
				for _, cp := range rep.ContentProtections {
					r.Keys = append(r.Keys, keyFromProtection(cp))
				}
				if list := rep.SegmentList; list != nil {
					r.HasSegments = true
					if list.Initialization != nil {
						r.InitURI = list.Initialization.SourceURL
					}
					for _, s := range list.SegmentURLs {
						r.Segments = append(r.Segments, s.SourceURL)
					}
				}
				if t := rep.SegmentTemplate; t != nil {
					r.Template = &hls.Template{
						Init:  t.Initialization,
						Media: t.Media,
						Start: t.StartNumber,
						Count: t.SegmentCount,
					}
				}
				g.Renditions = append(g.Renditions, r)
			}
			hp.Groups = append(hp.Groups, g)
		}
		p.Periods = append(p.Periods, hp)
	}
	return p.Marshal()
}

func (hlsDialect) Parse(b []byte) (*dash.MPD, error) {
	p, err := hls.Parse(b)
	if err != nil {
		return nil, err
	}
	m := &dash.MPD{
		Profiles: p.MPDProfiles,
		Type:     p.MPDType,
		Duration: p.MPDDuration,
	}
	for _, hp := range p.Periods {
		period := dash.Period{ID: hp.ID}
		for _, g := range hp.Groups {
			set := dash.AdaptationSet{
				ContentType: contentTypeOf(g.Type),
				MimeType:    g.MimeType,
				Lang:        g.Language,
			}
			for _, k := range g.SessionKeys {
				set.ContentProtections = append(set.ContentProtections, protectionFromKey(k))
			}
			for _, r := range g.Renditions {
				rep := dash.Representation{
					ID:        r.ID,
					Bandwidth: r.Bandwidth,
					Width:     r.Width,
					Height:    r.Height,
					Codecs:    r.Codecs,
					BaseURL:   r.BaseURI,
				}
				for _, k := range r.Keys {
					rep.ContentProtections = append(rep.ContentProtections, protectionFromKey(k))
				}
				if r.HasSegments {
					list := &dash.SegmentList{}
					if r.InitURI != "" {
						list.Initialization = &dash.SegmentURL{SourceURL: r.InitURI}
					}
					for _, s := range r.Segments {
						list.SegmentURLs = append(list.SegmentURLs, dash.SegmentURL{SourceURL: s})
					}
					rep.SegmentList = list
				}
				if t := r.Template; t != nil {
					rep.SegmentTemplate = &dash.SegmentTemplate{
						Initialization: t.Init,
						Media:          t.Media,
						StartNumber:    t.Start,
						SegmentCount:   t.Count,
					}
				}
				set.Representations = append(set.Representations, rep)
			}
			period.AdaptationSets = append(period.AdaptationSets, set)
		}
		m.Periods = append(m.Periods, period)
	}
	return m, nil
}

func (d hlsDialect) Protections(b []byte) ([]dash.ContentProtection, error) {
	m, err := d.Parse(b)
	if err != nil {
		return nil, err
	}
	return mpdProtections(m), nil
}

func (d hlsDialect) SegmentURLs(b []byte) ([]string, error) {
	m, err := d.Parse(b)
	if err != nil {
		return nil, err
	}
	return m.AllURLs(), nil
}
