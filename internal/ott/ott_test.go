package ott

import (
	"testing"

	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// testWorld assembles the shared infrastructure plus one deployment.
type testWorld struct {
	network  *netsim.Network
	registry *provision.Registry
	factory  *device.Factory
	dep      *Deployment
}

func newTestWorld(t *testing.T, profile Profile) *testWorld {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("ott-test-" + profile.Name)
	network := netsim.NewNetwork()
	registry := provision.NewRegistry()
	dep, err := NewDeployment(profile, []string{"movie-1"}, registry, network, rand)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{
		network:  network,
		registry: registry,
		factory:  device.NewFactory(registry, rand),
		dep:      dep,
	}
}

func profileByName(t *testing.T, name string) Profile {
	t.Helper()
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no profile %q", name)
	return Profile{}
}

func (w *testWorld) install(t *testing.T, dev *device.Device) *App {
	t.Helper()
	app, err := Install(w.dep.Profile, dev, w.network, w.registry,
		wvcrypto.NewDeterministicReader("app-"+w.dep.Profile.Name+dev.Serial))
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestProfiles_TenApps(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("got %d profiles, want 10", len(ps))
	}
	seen := make(map[string]bool)
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.APIHost() == "" || p.CDNHost() == "" || p.LicenseHost() == "" {
			t.Errorf("%s: empty host", p.Name)
		}
	}
	for _, name := range []string{"Netflix", "Disney+", "Amazon Prime Video", "Hulu",
		"HBO Max", "Starz", "myCANAL", "Showtime", "OCS", "Salto"} {
		if !seen[name] {
			t.Errorf("missing profile %q", name)
		}
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Netflix":            "netflix",
		"Disney+":            "disney",
		"Amazon Prime Video": "amazonprimevideo",
		"HBO Max":            "hbomax",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPlayback_ModernL1Device(t *testing.T) {
	for _, name := range []string{"Netflix", "Disney+", "Amazon Prime Video", "Showtime"} {
		t.Run(name, func(t *testing.T) {
			w := newTestWorld(t, profileByName(t, name))
			dev, err := w.factory.MakePixel("PIXEL-" + name)
			if err != nil {
				t.Fatal(err)
			}
			app := w.install(t, dev)
			report := app.Play("movie-1")
			if !report.Played() {
				t.Fatalf("playback failed: %+v", report)
			}
			if report.Level != oemcrypto.L1 {
				t.Errorf("level = %v, want L1", report.Level)
			}
			if !report.UsedSystemCDM || report.UsedEmbeddedCDM {
				t.Error("L1 playback should use the system CDM")
			}
			if report.PlayedHeight != 1080 {
				t.Errorf("played height = %d, want 1080 on L1", report.PlayedHeight)
			}
			if !report.ProvisionAttempted {
				t.Error("fresh device should provision")
			}
		})
	}
}

func TestPlayback_Nexus5_PermissiveApps(t *testing.T) {
	for _, name := range []string{"Netflix", "myCANAL", "Showtime", "OCS", "Salto", "Hulu"} {
		t.Run(name, func(t *testing.T) {
			w := newTestWorld(t, profileByName(t, name))
			dev, err := w.factory.MakeNexus5("NEXUS5-" + name)
			if err != nil {
				t.Fatal(err)
			}
			app := w.install(t, dev)
			report := app.Play("movie-1")
			if !report.Played() {
				t.Fatalf("playback failed: %+v", report)
			}
			if report.Level != oemcrypto.L3 {
				t.Errorf("level = %v, want L3", report.Level)
			}
			if report.PlayedHeight != 540 {
				t.Errorf("played height = %d, want 540 (L3 cap)", report.PlayedHeight)
			}
		})
	}
}

func TestPlayback_Nexus5_RevokingApps(t *testing.T) {
	for _, name := range []string{"Disney+", "HBO Max", "Starz"} {
		t.Run(name, func(t *testing.T) {
			w := newTestWorld(t, profileByName(t, name))
			dev, err := w.factory.MakeNexus5("NEXUS5-" + name)
			if err != nil {
				t.Fatal(err)
			}
			app := w.install(t, dev)
			report := app.Play("movie-1")
			if report.Played() {
				t.Fatal("revoking app played on Nexus 5")
			}
			if !report.ProvisionDenied {
				t.Errorf("want provisioning denial, got %+v", report)
			}
		})
	}
}

func TestPlayback_Nexus5_AmazonEmbeddedCDM(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Amazon Prime Video"))
	dev, err := w.factory.MakeNexus5("NEXUS5-AMZ")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, dev)

	// Hook the SYSTEM engine: Amazon's playback must never touch it.
	var systemCalls int
	dev.Engine.SetTracer(func(oemcrypto.CallEvent) { systemCalls++ })

	report := app.Play("movie-1")
	if !report.Played() {
		t.Fatalf("playback failed: %+v", report)
	}
	if !report.UsedEmbeddedCDM || report.UsedSystemCDM {
		t.Errorf("want embedded CDM on L3-only device: %+v", report)
	}
	if systemCalls != 0 {
		t.Errorf("system CDM saw %d calls during embedded playback", systemCalls)
	}
	if report.PlayedHeight != 540 {
		t.Errorf("played height = %d", report.PlayedHeight)
	}
}

func TestPlayback_SubtitleVisibility(t *testing.T) {
	cases := map[string]bool{
		"Showtime": true,  // subtitles served
		"Hulu":     false, // regionally unavailable
		"Starz":    false,
	}
	for name, wantSubs := range cases {
		t.Run(name, func(t *testing.T) {
			w := newTestWorld(t, profileByName(t, name))
			dev, err := w.factory.MakePixel("PX-" + name)
			if err != nil {
				t.Fatal(err)
			}
			app := w.install(t, dev)
			report := app.Play("movie-1")
			if name == "Starz" {
				// Starz revokes nothing on a modern device; should play.
				if !report.Played() {
					t.Fatalf("playback failed: %+v", report)
				}
			}
			if report.SubtitleShown != wantSubs {
				t.Errorf("SubtitleShown = %v, want %v (%+v)", report.SubtitleShown, wantSubs, report)
			}
		})
	}
}

func TestPlayback_FlowEventsMatchFigure1(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	dev, err := w.factory.MakePixel("PX-FLOW")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, dev)
	if r := app.Play("movie-1"); !r.Played() {
		t.Fatalf("playback failed: %+v", r)
	}
	var calls []string
	for _, ev := range app.FlowLog() {
		calls = append(calls, ev.Call)
	}
	// The Figure 1 ordering: session open precedes key request, which
	// precedes key response, which precedes decryption.
	idx := func(name string) int {
		for i, c := range calls {
			if c == name {
				return i
			}
		}
		return -1
	}
	order := []string{"MediaDRM(UUID)", "openSession()", "getKeyRequest()", "Get License", "License", "provideKeyResponse()", "Get Media", "queueSecureInputBuffer()", "Decrypt()"}
	prev := -1
	for _, step := range order {
		i := idx(step)
		if i < 0 {
			t.Fatalf("flow missing step %q in %v", step, calls)
		}
		if i < prev {
			t.Errorf("step %q out of order", step)
		}
		prev = i
	}
}

func TestPlayback_UnknownContent(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	dev, err := w.factory.MakePixel("PX-UC")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, dev)
	report := app.Play("no-such-movie")
	if report.Played() {
		t.Fatal("unknown content played")
	}
}

func TestDeployment_HideKeyIDsStripsMPDOnly(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Hulu"))
	manifest, ok := w.dep.CDN().Manifest("movie-1")
	if !ok {
		t.Fatal("missing manifest")
	}
	if containsKID(t, manifest) {
		t.Error("Hulu manifest still carries default_KID")
	}
	// Non-hiding app keeps KIDs.
	w2 := newTestWorld(t, profileByName(t, "Showtime"))
	manifest2, _ := w2.dep.CDN().Manifest("movie-1")
	if !containsKID(t, manifest2) {
		t.Error("Showtime manifest lost default_KID")
	}
}

func containsKID(t *testing.T, manifest []byte) bool {
	t.Helper()
	return len(manifest) > 0 && (stringContains(string(manifest), "default_KID=\"") &&
		!stringContains(string(manifest), "default_KID=\"\""))
}

func stringContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
