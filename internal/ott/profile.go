// Package ott models the over-the-top streaming apps the paper evaluates:
// a Profile type capturing each app's implementation choices (the ground
// truth behind Table I), a Deployment building the app's backend (CDN,
// license server, provisioning endpoint, manifest API) on the simulated
// network, and the App player pipeline driving the Android DRM framework
// exactly as Figure 1 describes.
//
// The study engine (internal/wideleak) never reads these profiles — it
// re-derives every Table I cell by observation, as the paper does on the
// real closed-source apps.
package ott

import "repro/internal/media"

// Profile captures one OTT app's implementation choices.
type Profile struct {
	// Name is the app's display name.
	Name string
	// InstallsMillions is the Play Store install count (in millions) at
	// the time of the paper's writing.
	InstallsMillions int

	// KeyPolicy drives the packager: whether audio is encrypted and with
	// which key (Q2 audio column + Q3).
	KeyPolicy media.KeyPolicy

	// LicenseMinCDM revokes old devices at license time ("" = serve
	// everyone — the availability-over-security choice).
	LicenseMinCDM string
	// ProvisionMinCDM revokes old devices during the provisioning phase —
	// the paper's G# cases (Disney+, HBO Max, Starz).
	ProvisionMinCDM string

	// SecureManifestURIs tunnels manifest/URI delivery through the CDM's
	// non-DASH generic-crypto API (Netflix's secure channel).
	SecureManifestURIs bool
	// EmbeddedCDMOnL3 makes the app fall back to its own embedded
	// Widevine library when only L3 is available (Amazon Prime Video).
	EmbeddedCDMOnL3 bool

	// UsesExoPlayer marks apps integrating DRM through the recommended
	// ExoPlayer library rather than the raw framework. (The paper reports
	// "many apps" do without enumerating them; the per-app assignment here
	// is illustrative — Netflix and Amazon are known custom-player apps.)
	UsesExoPlayer bool

	// CachesLicenses keeps the first successful license session alive and
	// reuses it for later playbacks of the same title, instead of running a
	// fresh license exchange per playback (Q5's licensing column: a
	// monitored replay shows zero LoadKeys calls for caching apps).
	CachesLicenses bool

	// SubtitleUnavailable models the regional restriction that kept the
	// authors from obtaining subtitle URIs (Hulu, Starz).
	SubtitleUnavailable bool
	// HideKeyIDs models the regional restriction that blocked the key
	// usage analysis: the served MPD omits default_KID metadata (Hulu,
	// HBO Max).
	HideKeyIDs bool

	// ManifestDialect is the manifest wire format the app fetches and
	// plays through: "" (canonical DASH, the default), "hls", or "sstr".
	// The CDN repackages from canonical DASH on the fly, so the dialect
	// changes the bytes on the wire but never the study outcome.
	ManifestDialect string
}

// minimumPolicy is the prevalent weak key policy: audio encrypted but
// sharing the video key.
func minimumPolicy() media.KeyPolicy {
	return media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: false}
}

// clearAudioPolicy is the weakest observed policy: audio not encrypted at
// all.
func clearAudioPolicy() media.KeyPolicy {
	return media.KeyPolicy{EncryptAudio: false}
}

// recommendedPolicy is the Widevine-recommended policy: distinct keys for
// audio and every video rung.
func recommendedPolicy() media.KeyPolicy {
	return media.KeyPolicy{EncryptAudio: true, DistinctAudioKey: true}
}

// revokingCDMVersion is the minimum CDM version enforced by apps that
// reject discontinued phones; the Nexus 5's 3.1.0 falls below it.
const revokingCDMVersion = "14.0"

// Profiles returns the ten evaluated apps with the implementation choices
// the paper observed (Table I ground truth).
func Profiles() []Profile {
	return []Profile{
		{
			Name:               "Netflix",
			InstallsMillions:   1000,
			KeyPolicy:          clearAudioPolicy(),
			SecureManifestURIs: true,
		},
		{
			Name:             "Disney+",
			UsesExoPlayer:    true,
			InstallsMillions: 100,
			KeyPolicy:        minimumPolicy(),
			ProvisionMinCDM:  revokingCDMVersion,
			CachesLicenses:   true,
		},
		{
			Name:             "Amazon Prime Video",
			InstallsMillions: 100,
			KeyPolicy:        recommendedPolicy(),
			EmbeddedCDMOnL3:  true,
			CachesLicenses:   true,
		},
		{
			Name:                "Hulu",
			UsesExoPlayer:       true,
			InstallsMillions:    50,
			KeyPolicy:           minimumPolicy(),
			SubtitleUnavailable: true,
			HideKeyIDs:          true,
		},
		{
			Name:             "HBO Max",
			UsesExoPlayer:    true,
			InstallsMillions: 10,
			KeyPolicy:        minimumPolicy(),
			ProvisionMinCDM:  revokingCDMVersion,
			HideKeyIDs:       true,
		},
		{
			Name:                "Starz",
			UsesExoPlayer:       true,
			InstallsMillions:    10,
			KeyPolicy:           minimumPolicy(),
			ProvisionMinCDM:     revokingCDMVersion,
			SubtitleUnavailable: true,
		},
		{
			Name:             "myCANAL",
			UsesExoPlayer:    true,
			InstallsMillions: 10,
			KeyPolicy:        clearAudioPolicy(),
		},
		{
			Name:             "Showtime",
			UsesExoPlayer:    true,
			InstallsMillions: 5,
			KeyPolicy:        minimumPolicy(),
		},
		{
			Name:             "OCS",
			UsesExoPlayer:    true,
			InstallsMillions: 1,
			KeyPolicy:        minimumPolicy(),
		},
		{
			Name:             "Salto",
			UsesExoPlayer:    true,
			InstallsMillions: 1,
			KeyPolicy:        clearAudioPolicy(),
		},
	}
}

// slug converts an app name to a hostname-safe label.
func slug(name string) string {
	out := make([]byte, 0, len(name))
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, byte(c))
		case c >= 'A' && c <= 'Z':
			out = append(out, byte(c-'A'+'a'))
		case c == ' ' || c == '+':
			// dropped
		}
	}
	return string(out)
}

// APIHost returns the app's backend API hostname.
func (p *Profile) APIHost() string { return "api." + slug(p.Name) + ".example" }

// CDNHost returns the app's CDN hostname.
func (p *Profile) CDNHost() string { return "cdn." + slug(p.Name) + ".example" }

// LicenseHost returns the app's license server hostname.
func (p *Profile) LicenseHost() string { return "license." + slug(p.Name) + ".example" }
