package ott

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/android"
	"repro/internal/cdm"
	"repro/internal/cdn"
	"repro/internal/dash"
	"repro/internal/device"
	"repro/internal/keybox"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/mp4"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/provision"
)

// embeddedSystemID marks app-embedded Widevine libraries' keyboxes.
const embeddedSystemID = 9999

// PlaybackReport is what one Play attempt yields — the observable facts the
// study correlates with monitor traces.
type PlaybackReport struct {
	App    string
	Device string
	// Level is the security level of the engine the app actually used.
	Level oemcrypto.SecurityLevel

	// UsedSystemCDM / UsedEmbeddedCDM report which Widevine library
	// handled the playback.
	UsedSystemCDM   bool
	UsedEmbeddedCDM bool

	ProvisionAttempted bool
	ProvisionDenied    bool
	ProvisionErr       string

	LicenseDenied bool
	LicenseErr    string

	// PlayedHeight is the resolution of the representation that played.
	PlayedHeight uint16
	// FramesDecoded counts decoded samples across video+audio.
	FramesDecoded int
	// SubtitleShown reports whether a subtitle file was fetched and read.
	SubtitleShown bool

	// Err records any other failure that stopped playback.
	Err string
	// TransportFailure marks Err as an exhausted-retries transport
	// failure (a host stayed unreachable through the whole retry budget)
	// rather than an app-level outcome — the study reports these as
	// annotated cells instead of misclassifying them.
	TransportFailure bool
}

// Played reports overall success.
func (r *PlaybackReport) Played() bool {
	return r.FramesDecoded > 0 && r.Err == "" && !r.ProvisionDenied && !r.LicenseDenied
}

// setErr records a failure, flagging transport exhaustion separately from
// app-level denials and decode errors.
func (r *PlaybackReport) setErr(err error) {
	r.Err = err.Error()
	if errors.Is(err, netsim.ErrRetriesExhausted) {
		r.TransportFailure = true
	}
}

// TransportErr returns a typed error when playback died on exhausted
// transport retries, nil otherwise. The full failure text stays in Err.
func (r *PlaybackReport) TransportErr() error {
	if !r.TransportFailure {
		return nil
	}
	return fmt.Errorf("ott: %s on %s: %w", r.App, r.Device, netsim.ErrRetriesExhausted)
}

// App is one installed OTT application on one device.
type App struct {
	profile Profile
	dev     *device.Device
	net     *netsim.Client
	rand    io.Reader

	// appSpace is the app's own process memory; anti-debugging keeps
	// monitors out of it (so Amazon's embedded CDM is unreachable).
	appSpace *procmem.Space

	mu       sync.Mutex
	embedded oemcrypto.Engine
	flowLog  []android.FlowEvent

	// License cache (CachesLicenses profiles): the first successful
	// playback keeps its MediaDrm and license session alive, and later
	// playbacks of the same title decrypt with the already-loaded keys —
	// no fresh license exchange, hence no LoadKeys on a monitored replay.
	licDrm     *android.MediaDrm
	licSession oemcrypto.SessionID
	licContent string
	licGranted map[[16]byte]bool
}

// Install puts the app on a device. For apps shipping an embedded Widevine
// library (Amazon), installation also mints and registers the embedded
// CDM's keybox.
func Install(profile Profile, dev *device.Device, network *netsim.Network, registry *provision.Registry, rand io.Reader) (*App, error) {
	a := &App{
		profile:  profile,
		dev:      dev,
		net:      netsim.NewClient(network),
		rand:     rand,
		appSpace: procmem.NewSpace("app:" + slug(profile.Name)),
	}
	// OTT apps deploy anti-debugging in their own process — the reason the
	// paper monitors the Widevine process instead.
	a.appSpace.SetProtected(true)
	a.net.Pin(profile.APIHost())
	a.net.Pin(profile.CDNHost())
	a.net.Pin(profile.LicenseHost())

	if profile.EmbeddedCDMOnL3 && dev.Level == oemcrypto.L3 {
		serial := dev.Serial + "-emb"
		if len(serial) > 32 {
			serial = serial[:32]
		}
		kb, err := keybox.New(serial, embeddedSystemID, rand)
		if err != nil {
			return nil, fmt.Errorf("ott: embedded keybox: %w", err)
		}
		store := device.NewStorage()
		if err := oemcrypto.InstallKeybox(store, kb.Marshal()); err != nil {
			return nil, err
		}
		engine, err := oemcrypto.NewSoftEngine(device.CurrentCDMVersion, a.appSpace, store, rand)
		if err != nil {
			return nil, fmt.Errorf("ott: embedded engine: %w", err)
		}
		registry.RegisterDevice(serial, kb.DeviceKey)
		a.embedded = engine
	}
	return a, nil
}

// Profile returns the app's profile.
func (a *App) Profile() Profile { return a.profile }

// Device returns the hosting device.
func (a *App) Device() *device.Device { return a.dev }

// NetworkClient exposes the app's network stack — the surface the monitor
// MITMs and re-pins.
func (a *App) NetworkClient() *netsim.Client { return a.net }

// ProcessSpace exposes the app's own process memory — what a
// MovieStealer-style attacker would try (and fail) to attach to.
func (a *App) ProcessSpace() *procmem.Space { return a.appSpace }

// DecompiledReferences returns the app's class/method reference listing as
// a decompiler would produce it — the input to the study's static scan
// (§IV-B). Every app references the DRM framework; ExoPlayer apps also
// pull in the library's DRM session classes; and, as real APKs do, the
// listing includes dead references that only dynamic monitoring can rule
// in or out.
func (a *App) DecompiledReferences() []string {
	refs := []string{
		"Landroid/media/MediaDrm;-><init>",
		"Landroid/media/MediaDrm;->openSession",
		"Landroid/media/MediaDrm;->getKeyRequest",
		"Landroid/media/MediaDrm;->provideKeyResponse",
		"Landroid/media/MediaDrm;->getProvisionRequest",
		"Landroid/media/MediaDrm;->provideProvisionResponse",
		"Landroid/media/MediaCrypto;-><init>",
		"Landroid/media/MediaCodec;->queueSecureInputBuffer",
		// Dead code: referenced but never called at run time.
		"Landroid/media/MediaDrm;->getMetrics",
		"L" + slug(a.profile.Name) + "/player/PlayerActivity;->onCreate",
	}
	if a.profile.UsesExoPlayer {
		refs = append(refs,
			"Lcom/google/android/exoplayer2/drm/DefaultDrmSessionManager;-><init>",
			"Lcom/google/android/exoplayer2/drm/FrameworkMediaDrm;->newInstance",
		)
	}
	if a.profile.EmbeddedCDMOnL3 {
		refs = append(refs, "L"+slug(a.profile.Name)+"/drm/EmbeddedWidevine;->load")
	}
	return refs
}

// FlowLog returns the recorded framework-level events (Figure 1).
func (a *App) FlowLog() []android.FlowEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]android.FlowEvent, len(a.flowLog))
	copy(out, a.flowLog)
	return out
}

func (a *App) recordFlow(ev android.FlowEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.flowLog = append(a.flowLog, ev)
}

// chooseEngine picks the Widevine library for this playback: the system CDM
// normally, the app-embedded one on L3-only devices for Amazon-style apps.
func (a *App) chooseEngine() (engine oemcrypto.Engine, embedded bool) {
	if a.embedded != nil {
		return a.embedded, true
	}
	return a.dev.Engine, false
}

// Play streams one title end to end and reports what happened.
func (a *App) Play(contentID string) *PlaybackReport {
	return a.PlayCtx(context.Background(), contentID)
}

// PlayCtx is Play bounded by a context: cancellation or a deadline stops
// network exchanges (including their retry backoff) mid-stream.
func (a *App) PlayCtx(ctx context.Context, contentID string) *PlaybackReport {
	report := &PlaybackReport{App: a.profile.Name, Device: a.dev.Model}
	engine, embedded := a.chooseEngine()
	report.Level = engine.SecurityLevel()
	report.UsedSystemCDM = !embedded
	report.UsedEmbeddedCDM = embedded

	if a.profile.CachesLicenses {
		a.mu.Lock()
		cachedDrm, cachedSession, cachedGranted := a.licDrm, a.licSession, a.licGranted
		hit := cachedDrm != nil && a.licContent == contentID
		a.mu.Unlock()
		if hit {
			a.replayFromCache(ctx, contentID, cachedDrm, cachedSession, cachedGranted, report)
			return report
		}
	}

	drm, err := android.NewMediaDrm(android.WidevineUUID, engine, a.rand, a.recordFlow)
	if err != nil {
		report.setErr(err)
		return report
	}

	// Provisioning, when the device has no Device RSA key yet.
	if drm.NeedsProvisioning() {
		report.ProvisionAttempted = true
		if denied, err := a.provision(ctx, drm); denied {
			report.ProvisionDenied = true
			report.ProvisionErr = err.Error()
			return report
		} else if err != nil {
			report.setErr(err)
			return report
		}
	}

	raw, err := a.fetchManifest(ctx, drm, contentID)
	if err != nil {
		report.setErr(fmt.Errorf("fetch manifest: %w", err))
		return report
	}
	mpd, err := a.parseManifest(raw)
	if err != nil {
		report.setErr(fmt.Errorf("parse manifest: %w", err))
		return report
	}

	session, err := drm.OpenSession()
	if err != nil {
		report.setErr(err)
		return report
	}
	keepSession := false
	defer func() {
		if !keepSession {
			_ = drm.CloseSession(session)
		}
	}()
	granted, denied, err := a.acquireLicense(ctx, drm, session, contentID)
	if denied {
		report.LicenseDenied = true
		report.LicenseErr = err.Error()
		return report
	}
	if err != nil {
		report.setErr(err)
		return report
	}
	if a.profile.CachesLicenses {
		// Keep the licensed session alive (closing it would unload its
		// keys) and remember it for later playbacks of the same title.
		keepSession = true
		a.mu.Lock()
		a.licDrm, a.licSession, a.licContent, a.licGranted = drm, session, contentID, granted
		a.mu.Unlock()
	}

	crypto, err := android.NewMediaCrypto(drm, session)
	if err != nil {
		report.setErr(err)
		return report
	}
	codec := android.NewMediaCodec(crypto, a.recordFlow)

	if err := a.playVideo(ctx, mpd, codec, granted, report); err != nil {
		report.setErr(err)
		return report
	}
	if err := a.playAudio(ctx, mpd, codec, report); err != nil {
		report.setErr(err)
		return report
	}
	a.showSubtitles(ctx, mpd, report)
	report.FramesDecoded = codec.FrameCount()
	return report
}

// replayFromCache plays a title whose license session is still alive from
// an earlier playback: manifest and media are re-fetched, but the cached
// session's loaded keys decrypt everything — the license server is never
// contacted again.
func (a *App) replayFromCache(ctx context.Context, contentID string, drm *android.MediaDrm, session oemcrypto.SessionID, granted map[[16]byte]bool, report *PlaybackReport) {
	raw, err := a.fetchManifest(ctx, drm, contentID)
	if err != nil {
		report.setErr(fmt.Errorf("fetch manifest: %w", err))
		return
	}
	mpd, err := a.parseManifest(raw)
	if err != nil {
		report.setErr(fmt.Errorf("parse manifest: %w", err))
		return
	}
	crypto, err := android.NewMediaCrypto(drm, session)
	if err != nil {
		report.setErr(err)
		return
	}
	codec := android.NewMediaCodec(crypto, a.recordFlow)
	if err := a.playVideo(ctx, mpd, codec, granted, report); err != nil {
		report.setErr(err)
		return
	}
	if err := a.playAudio(ctx, mpd, codec, report); err != nil {
		report.setErr(err)
		return
	}
	a.showSubtitles(ctx, mpd, report)
	report.FramesDecoded = codec.FrameCount()
}

// provision runs the provisioning exchange against the app's backend.
// denied marks a backend refusal (the paper's revocation case); any other
// non-nil error is a mechanical failure.
func (a *App) provision(ctx context.Context, drm *android.MediaDrm) (denied bool, err error) {
	s, err := drm.OpenSession()
	if err != nil {
		return false, err
	}
	defer func() { _ = drm.CloseSession(s) }()
	blob, err := drm.GetProvisionRequest(s)
	if err != nil {
		return false, err
	}
	resp, err := a.net.DoCtx(ctx, netsim.Request{Host: a.profile.APIHost(), Path: PathProvision, Body: blob})
	if err != nil {
		return false, err
	}
	if resp.Status != 200 {
		return true, errors.New(decodeAPIError(resp))
	}
	if err := drm.ProvideProvisionResponse(s, resp.Body); err != nil {
		return false, err
	}
	return false, nil
}

// parseManifest decodes fetched manifest bytes through the profile's
// dialect into the canonical model every downstream playback step runs on.
func (a *App) parseManifest(raw []byte) (*dash.MPD, error) {
	d, err := manifest.ByName(a.profile.ManifestDialect)
	if err != nil {
		return nil, err
	}
	return d.Parse(raw)
}

// fetchManifest retrieves the manifest in the profile's dialect (the
// dialect extension rides the URL path; the bare path is canonical DASH),
// over the CDM secure channel when the app protects its URI links
// (Netflix).
func (a *App) fetchManifest(ctx context.Context, drm *android.MediaDrm, contentID string) ([]byte, error) {
	fetchID := manifest.PathFor(contentID, a.profile.ManifestDialect)
	if !a.profile.SecureManifestURIs {
		resp, err := a.net.DoCtx(ctx, netsim.Request{Host: a.profile.APIHost(), Path: PathManifest + fetchID})
		if err != nil {
			return nil, err
		}
		if resp.Status != 200 {
			return nil, fmt.Errorf("manifest: %s", decodeAPIError(resp))
		}
		return resp.Body, nil
	}

	// Netflix path: derive a channel from the keybox root, fetch the
	// sealed MPD and open it through the CDM's generic-decrypt API.
	s, err := drm.OpenSession()
	if err != nil {
		return nil, err
	}
	defer func() { _ = drm.CloseSession(s) }()
	cs, err := drm.GetCryptoSession(s)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, 8)
	if _, err := io.ReadFull(a.rand, nonce); err != nil {
		return nil, err
	}
	context := append([]byte("secure-manifest:"+contentID+":"), nonce...)
	if err := cs.DeriveKeys(context); err != nil {
		return nil, err
	}
	stableID, _, err := drm.Client().Engine().KeyboxInfo()
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(SecureManifestRequest{StableID: stableID, Context: context})
	if err != nil {
		return nil, err
	}
	resp, err := a.net.DoCtx(ctx, netsim.Request{Host: a.profile.APIHost(), Path: PathSecureManifest + fetchID, Body: body})
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("secure manifest: %s", decodeAPIError(resp))
	}
	var smr SecureManifestResponse
	if err := json.Unmarshal(resp.Body, &smr); err != nil {
		return nil, fmt.Errorf("secure manifest body: %w", err)
	}
	return cs.Decrypt(smr.IV, smr.Sealed)
}

// acquireLicense runs the license exchange and returns the granted KIDs.
// denied marks a license-server refusal; any other non-nil error is a
// mechanical failure.
func (a *App) acquireLicense(ctx context.Context, drm *android.MediaDrm, session oemcrypto.SessionID, contentID string) (granted map[[16]byte]bool, denied bool, err error) {
	blob, err := drm.GetKeyRequest(session, contentID, nil)
	if err != nil {
		return nil, false, err
	}
	a.recordFlow(android.FlowEvent{From: "Application", To: "License Server", Call: "Get License"})
	resp, err := a.net.DoCtx(ctx, netsim.Request{Host: a.profile.LicenseHost(), Path: PathLicense, Body: blob})
	if err != nil {
		return nil, false, err
	}
	if resp.Status != 200 {
		return nil, true, errors.New(decodeAPIError(resp))
	}
	a.recordFlow(android.FlowEvent{From: "License Server", To: "Application", Call: "License"})
	if err := drm.ProvideKeyResponse(session, resp.Body); err != nil {
		return nil, false, err
	}
	var lr cdm.LicenseResponse
	if err := json.Unmarshal(resp.Body, &lr); err != nil {
		return nil, false, err
	}
	granted = make(map[[16]byte]bool, len(lr.Keys))
	for _, k := range lr.Keys {
		granted[k.KID] = true
	}
	return granted, false, nil
}

// fetchObject downloads one CDN asset (Figure 1: Get Media / Media).
func (a *App) fetchObject(ctx context.Context, path string) ([]byte, error) {
	a.recordFlow(android.FlowEvent{From: "Application", To: "CDN", Call: "Get Media"})
	resp, err := a.net.DoCtx(ctx, netsim.Request{Host: a.profile.CDNHost(), Path: cdn.ObjectPrefix + path})
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("object %s: status %d", path, resp.Status)
	}
	return resp.Body, nil
}

// playVideo picks the best granted representation, downloads and decodes it.
func (a *App) playVideo(ctx context.Context, mpd *dash.MPD, codec *android.MediaCodec, granted map[[16]byte]bool, report *PlaybackReport) error {
	videoSet, err := mpd.FindAdaptationSet(dash.ContentVideo, "")
	if err != nil {
		return err
	}
	// Highest-first selection among representations whose key was granted.
	reps := append([]dash.Representation(nil), videoSet.Representations...)
	for i := 1; i < len(reps); i++ {
		for j := i; j > 0 && reps[j].Height > reps[j-1].Height; j-- {
			reps[j], reps[j-1] = reps[j-1], reps[j]
		}
	}
	for _, rep := range reps {
		init, kid, scheme, err := a.fetchInit(ctx, &rep)
		if err != nil {
			return err
		}
		if init.Track.Protection != nil && !granted[kid] {
			continue // key withheld (e.g. HD on an L3 device)
		}
		if err := a.playRepresentation(ctx, &rep, init, kid, scheme, codec); err != nil {
			return err
		}
		report.PlayedHeight = rep.Height
		return nil
	}
	return fmt.Errorf("no playable video representation granted")
}

// playAudio plays the default-language audio representation.
func (a *App) playAudio(ctx context.Context, mpd *dash.MPD, codec *android.MediaCodec, report *PlaybackReport) error {
	audioSet, err := mpd.FindAdaptationSet(dash.ContentAudio, "en")
	if err != nil {
		return err
	}
	rep := audioSet.Representations[0]
	init, kid, scheme, err := a.fetchInit(ctx, &rep)
	if err != nil {
		return err
	}
	return a.playRepresentation(ctx, &rep, init, kid, scheme, codec)
}

// fetchInit downloads a representation's init segment and extracts its
// protection parameters. Apps learn the KID from the init segment's tenc
// box (not the MPD), so manifests with stripped key-ID metadata still play.
func (a *App) fetchInit(ctx context.Context, rep *dash.Representation) (*mp4.InitSegment, [16]byte, string, error) {
	var kid [16]byte
	list := rep.Segments()
	if list == nil || list.Initialization == nil {
		return nil, kid, "", fmt.Errorf("representation %s has no init segment", rep.ID)
	}
	raw, err := a.fetchObject(ctx, rep.BaseURL+list.Initialization.SourceURL)
	if err != nil {
		return nil, kid, "", err
	}
	init, err := mp4.ParseInitSegment(raw)
	if err != nil {
		return nil, kid, "", err
	}
	scheme := mp4.SchemeCENC
	if init.Track.Protection != nil {
		kid = init.Track.Protection.DefaultKID
		scheme = init.Track.Protection.Scheme
	}
	return init, kid, scheme, nil
}

// playRepresentation downloads and decodes every media segment of one
// representation.
func (a *App) playRepresentation(ctx context.Context, rep *dash.Representation, init *mp4.InitSegment, kid [16]byte, scheme string, codec *android.MediaCodec) error {
	for _, su := range rep.Segments().SegmentURLs {
		raw, err := a.fetchObject(ctx, rep.BaseURL+su.SourceURL)
		if err != nil {
			return err
		}
		seg, err := mp4.ParseMediaSegment(raw)
		if err != nil {
			return err
		}
		if seg.Encryption == nil {
			for _, sample := range seg.SampleData {
				codec.QueueClearBuffer(sample)
			}
			continue
		}
		if init.Track.Protection == nil {
			return fmt.Errorf("encrypted segment under clear init for %s", rep.ID)
		}
		for i, sample := range seg.SampleData {
			entry := seg.Encryption.Entries[i]
			if err := codec.QueueSecureInputBuffer(kid, scheme, entry.IV, entry.Subsamples, sample); err != nil {
				return fmt.Errorf("decode %s sample %d: %w", rep.ID, i, err)
			}
		}
	}
	return nil
}

// showSubtitles fetches and renders the default-language subtitle, when the
// manifest offers one.
func (a *App) showSubtitles(ctx context.Context, mpd *dash.MPD, report *PlaybackReport) {
	subSet, err := mpd.FindAdaptationSet(dash.ContentSubtitle, "en")
	if err != nil {
		return // regionally unavailable — playback proceeds without subs
	}
	rep := subSet.Representations[0]
	list := rep.Segments()
	if list == nil || len(list.SegmentURLs) == 0 {
		return
	}
	raw, err := a.fetchObject(ctx, rep.BaseURL+list.SegmentURLs[0].SourceURL)
	if err != nil {
		return
	}
	report.SubtitleShown = media.SubtitleReadable(raw)
}
