package ott

import (
	"errors"
	"testing"

	"repro/internal/netsim"
	"repro/internal/wvcrypto"
)

// withFaults puts a transient fault plan on the test world's network and
// a default retry policy on the app, both deterministically seeded.
func withFaults(w *testWorld, app *App, profile netsim.FaultProfile) *netsim.FaultPlan {
	plan := netsim.NewFaultPlan(wvcrypto.NewDeterministicReader("ott-faults"), profile)
	w.network.SetFaultPlan(plan)
	app.NetworkClient().SetRetryPolicy(netsim.DefaultRetryPolicy(
		wvcrypto.NewDeterministicReader("ott-jitter"), netsim.NewVirtualClock()))
	return plan
}

// TestPlayback_SurvivesTransientFaults drives the whole playback pipeline
// — provisioning, manifest, license, CDN segments — through a network
// failing a third of all attempts, and requires the same outcome as on a
// perfect network.
func TestPlayback_SurvivesTransientFaults(t *testing.T) {
	profile := profileByName(t, "Showtime")

	w := newTestWorld(t, profile)
	pixel, err := w.factory.MakePixel("PX-clean")
	if err != nil {
		t.Fatal(err)
	}
	clean := w.install(t, pixel).Play("movie-1")
	if !clean.Played() {
		t.Fatalf("baseline playback failed: %+v", clean)
	}

	w2 := newTestWorld(t, profile)
	pixel2, err := w2.factory.MakePixel("PX-clean")
	if err != nil {
		t.Fatal(err)
	}
	app := w2.install(t, pixel2)
	plan := withFaults(w2, app, netsim.FaultProfile{DropRate: 0.11, BusyRate: 0.11, FlapRate: 0.11})
	faulty := app.Play("movie-1")

	if !faulty.Played() {
		t.Fatalf("playback under transient faults failed: %+v", faulty)
	}
	if faulty.TransportFailure {
		t.Error("masked faults flagged as transport failure")
	}
	if faulty.PlayedHeight != clean.PlayedHeight || faulty.FramesDecoded != clean.FramesDecoded {
		t.Errorf("faulty outcome diverged: %dp/%d frames vs %dp/%d frames",
			faulty.PlayedHeight, faulty.FramesDecoded, clean.PlayedHeight, clean.FramesDecoded)
	}
	if plan.Stats().Total() == 0 {
		t.Fatal("no faults injected — the survival check is vacuous")
	}
}

// TestPlayback_PermanentFaultSetsTransportFailure: a license server dead
// through every retry must surface as a typed transport failure, not a
// license denial (which would corrupt the Q4 classification).
func TestPlayback_PermanentFaultSetsTransportFailure(t *testing.T) {
	profile := profileByName(t, "Showtime")
	w := newTestWorld(t, profile)
	pixel, err := w.factory.MakePixel("PX-dead")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, pixel)
	plan := withFaults(w, app, netsim.FaultProfile{})
	plan.SetHostProfile(profile.LicenseHost(), netsim.FaultProfile{Permanent: true})

	report := app.Play("movie-1")
	if report.Played() {
		t.Fatal("playback succeeded against a dead license server")
	}
	if !report.TransportFailure {
		t.Fatalf("transport failure not flagged: %+v", report)
	}
	if report.LicenseDenied {
		t.Error("dead host misclassified as a license denial")
	}
	if err := report.TransportErr(); !errors.Is(err, netsim.ErrRetriesExhausted) {
		t.Errorf("TransportErr = %v", err)
	}
}

// TestPlayback_DenialNotRetried: an application-layer refusal (the
// backend revoking a device) is deterministic and must be returned after
// exactly one license request, not hammered MaxAttempts times.
func TestPlayback_DenialNotRetried(t *testing.T) {
	profile := profileByName(t, "Disney+") // enforces revocation on legacy devices
	w := newTestWorld(t, profile)
	nexus5, err := w.factory.MakeNexus5("N5-denied")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, nexus5)
	withFaults(w, app, netsim.FaultProfile{}) // retry policy installed, no faults
	mitm := netsim.NewInterceptor()
	app.NetworkClient().InstallMITM(mitm)
	app.NetworkClient().DisablePinning()

	report := app.Play("movie-1")
	if !report.ProvisionDenied {
		t.Fatalf("expected provisioning denial on the discontinued device: %+v", report)
	}
	if report.TransportFailure {
		t.Error("deterministic denial flagged as transport failure")
	}
	provisions := 0
	for _, ex := range mitm.Captured() {
		if ex.Request.Path == PathProvision {
			provisions++
		}
	}
	if provisions != 1 {
		t.Errorf("denied provisioning request sent %d times, want 1", provisions)
	}
}
