package ott

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cdm"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/wvcrypto"
)

// tamperNetwork wraps a deployment's license host with a corrupting proxy,
// modeling an on-path attacker (or transport corruption) the DRM layer must
// detect.
func tamperLicenseHost(t *testing.T, w *testWorld, corrupt func(*cdm.LicenseResponse)) {
	t.Helper()
	host := w.dep.Profile.LicenseHost()
	orig := w.dep.licenseHandler()
	w.network.RegisterHost(host, func(req netsim.Request) (netsim.Response, error) {
		resp, err := orig(req)
		if err != nil || resp.Status != 200 {
			return resp, err
		}
		var lr cdm.LicenseResponse
		if err := json.Unmarshal(resp.Body, &lr); err != nil {
			return resp, nil
		}
		corrupt(&lr)
		body, err := json.Marshal(&lr)
		if err != nil {
			return netsim.Response{Status: 500}, nil
		}
		return netsim.Response{Status: 200, Body: body}, nil
	})
}

func TestPlayback_TamperedLicenseMAC(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	tamperLicenseHost(t, w, func(lr *cdm.LicenseResponse) {
		if len(lr.MAC) > 0 {
			lr.MAC[0] ^= 0xFF
		}
	})
	dev, err := w.factory.MakePixel("PX-TAMPER-MAC")
	if err != nil {
		t.Fatal(err)
	}
	report := w.install(t, dev).Play("movie-1")
	if report.Played() {
		t.Fatal("playback succeeded with a tampered license MAC")
	}
	if !strings.Contains(report.Err, "signature") {
		t.Errorf("failure = %q, want signature verification error", report.Err)
	}
}

func TestPlayback_TamperedWrappedKey(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	tamperLicenseHost(t, w, func(lr *cdm.LicenseResponse) {
		// Flip key material but keep the MAC intact over Message: the MAC
		// covers the message, so the CDM detects the damage at unwrap
		// time (padding failure) instead.
		if len(lr.Keys) > 0 && len(lr.Keys[0].Payload) > 0 {
			lr.Keys[0].Payload[0] ^= 0xFF
		}
	})
	dev, err := w.factory.MakePixel("PX-TAMPER-KEY")
	if err != nil {
		t.Fatal(err)
	}
	report := w.install(t, dev).Play("movie-1")
	if report.Played() {
		t.Fatal("playback succeeded with a tampered wrapped key")
	}
}

func TestPlayback_TamperedSessionKey(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	tamperLicenseHost(t, w, func(lr *cdm.LicenseResponse) {
		if len(lr.EncSessionKey) > 0 {
			lr.EncSessionKey[10] ^= 0x55
		}
	})
	dev, err := w.factory.MakePixel("PX-TAMPER-SK")
	if err != nil {
		t.Fatal(err)
	}
	report := w.install(t, dev).Play("movie-1")
	if report.Played() {
		t.Fatal("playback succeeded with a tampered session key")
	}
}

func TestPlayback_MITMWithoutRepinningFails(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	dev, err := w.factory.MakePixel("PX-MITM")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, dev)
	// A proxy in the path without the Frida patch: the pinned app refuses
	// to talk and playback dies at the first network step.
	app.NetworkClient().InstallMITM(netsim.NewInterceptor())
	report := app.Play("movie-1")
	if report.Played() {
		t.Fatal("pinned app played through an untrusted proxy")
	}
}

func TestPlayback_BackendOutage(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	// License backend goes dark.
	w.network.RegisterHost(w.dep.Profile.LicenseHost(), func(netsim.Request) (netsim.Response, error) {
		return netsim.Response{Status: 503, Body: []byte(`{"error":"maintenance"}`)}, nil
	})
	dev, err := w.factory.MakePixel("PX-OUTAGE")
	if err != nil {
		t.Fatal(err)
	}
	report := w.install(t, dev).Play("movie-1")
	if report.Played() {
		t.Fatal("playback succeeded during license outage")
	}
	if !report.LicenseDenied {
		t.Errorf("report = %+v, want LicenseDenied", report)
	}
}

func TestPlayback_CorruptedFlashKeybox(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	dev, err := w.factory.MakeNexus5("N5-CORRUPT")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the keybox in flash and reboot the CDM: initialization must
	// fail CRC validation.
	raw, ok := dev.Storage.Get("keybox")
	if !ok {
		t.Fatal("no keybox in flash")
	}
	raw[40] ^= 0xFF
	dev.Storage.Put("keybox", raw)
	_, err = oemcrypto.NewSoftEngine(dev.CDMVersion, procmem.NewSpace("mediadrmserver"),
		dev.Storage, wvcrypto.NewDeterministicReader("reboot"))
	if err == nil {
		t.Error("engine booted with a corrupted keybox")
	}
}

func TestProvisionThenRevokePolicy(t *testing.T) {
	// A device provisioned while policy was permissive keeps playing even
	// after the app starts revoking NEW provisioning — the long-tail risk
	// the paper highlights (provisioned legacy devices stay serviceable).
	w := newTestWorld(t, profileByName(t, "Showtime"))
	dev, err := w.factory.MakeNexus5("N5-GRANDFATHER")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, dev)
	if r := app.Play("movie-1"); !r.Played() {
		t.Fatalf("initial playback failed: %+v", r)
	}

	// The backend now revokes old CDMs at provisioning time only.
	w.network.RegisterHost(w.dep.Profile.APIHost(), func(req netsim.Request) (netsim.Response, error) {
		if req.Path == PathProvision {
			return netsim.Response{Status: 403, Body: []byte(`{"error":"revoked"}`)}, nil
		}
		return w.dep.apiHandler()(req)
	})
	if r := app.Play("movie-1"); !r.Played() {
		t.Errorf("already-provisioned device blocked: %+v", r)
	}

	// A brand-new legacy device, however, is now locked out.
	dev2, err := w.factory.MakeNexus5("N5-NEWCOMER")
	if err != nil {
		t.Fatal(err)
	}
	if r := w.install(t, dev2).Play("movie-1"); r.Played() || !r.ProvisionDenied {
		t.Errorf("new legacy device not blocked: %+v", r)
	}
}

func TestAccessors(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	dev, err := w.factory.MakePixel("PX-ACC")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, dev)
	if app.Profile().Name != "Showtime" {
		t.Errorf("Profile = %q", app.Profile().Name)
	}
	if app.Device() != dev {
		t.Error("Device mismatch")
	}
	if !app.ProcessSpace().Protected() {
		t.Error("app process not anti-debug protected")
	}
	if _, ok := w.dep.KeyDB().Lookup("movie-1"); !ok {
		t.Error("deployment key db missing content")
	}
}

func TestDecompiledReferences(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Hulu"))
	dev, err := w.factory.MakePixel("PX-REFS")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, dev)
	refs := app.DecompiledReferences()
	var hasDrm, hasExo bool
	for _, r := range refs {
		if r == "Landroid/media/MediaDrm;->openSession" {
			hasDrm = true
		}
		if strings.HasPrefix(r, "Lcom/google/android/exoplayer2/drm/") {
			hasExo = true
		}
	}
	if !hasDrm || !hasExo {
		t.Errorf("refs missing expected entries: %v", refs)
	}
}

func TestLicenseHandler_BadPaths(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	client := netsim.NewClient(w.network)
	host := w.dep.Profile.LicenseHost()

	resp, err := client.Do(netsim.Request{Host: host, Path: "/nope"})
	if err != nil || resp.Status != 404 {
		t.Errorf("bad path = %d, %v", resp.Status, err)
	}
	resp, err = client.Do(netsim.Request{Host: host, Path: PathLicense, Body: []byte("not json")})
	if err != nil || resp.Status != 400 {
		t.Errorf("malformed body = %d, %v", resp.Status, err)
	}
}

func TestSecureManifest_ErrorPaths(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Netflix"))
	client := netsim.NewClient(w.network)
	host := w.dep.Profile.APIHost()

	// Plain manifest endpoint does not exist for the secure-URI app.
	resp, err := client.Do(netsim.Request{Host: host, Path: PathManifest + "movie-1"})
	if err != nil || resp.Status != 404 {
		t.Errorf("plain manifest = %d, %v", resp.Status, err)
	}
	// Unknown content.
	resp, _ = client.Do(netsim.Request{Host: host, Path: PathSecureManifest + "ghost", Body: []byte("{}")})
	if resp.Status != 404 {
		t.Errorf("unknown content = %d", resp.Status)
	}
	// Malformed request body.
	resp, _ = client.Do(netsim.Request{Host: host, Path: PathSecureManifest + "movie-1", Body: []byte("{{")})
	if resp.Status != 400 {
		t.Errorf("malformed secure request = %d", resp.Status)
	}
	// Unknown device identity.
	body := []byte(`{"stableId":"GHOST-DEVICE","context":"YWJj"}`)
	resp, _ = client.Do(netsim.Request{Host: host, Path: PathSecureManifest + "movie-1", Body: body})
	if resp.Status != 403 {
		t.Errorf("unknown device = %d", resp.Status)
	}
	// Non-secure apps do not serve the endpoint at all.
	w2 := newTestWorld(t, profileByName(t, "Showtime"))
	resp, _ = netsim.NewClient(w2.network).Do(netsim.Request{
		Host: w2.dep.Profile.APIHost(), Path: PathSecureManifest + "movie-1", Body: body})
	if resp.Status != 404 {
		t.Errorf("secure endpoint on plain app = %d", resp.Status)
	}
}
