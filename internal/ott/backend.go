package ott

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/cdm"
	"repro/internal/cdn"
	"repro/internal/dash"
	"repro/internal/license"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// API endpoint paths on an app's backend host.
const (
	PathProvision      = "/provision"
	PathManifest       = "/manifest/"
	PathSecureManifest = "/manifest-secure/"
	PathLicense        = "/license"
)

// L3ResolutionCap is the tallest resolution every deployment grants L3
// clients (sub-HD only, as the paper observes: qHD 960x540).
const L3ResolutionCap = 540

// Deployment is one OTT app's complete backend: packaged catalog, CDN,
// license server, provisioning endpoint and manifest API, all registered on
// the simulated network.
type Deployment struct {
	Profile    Profile
	ContentIDs []string

	cdnSrv     *cdn.Server
	licenseSrv *license.Server
	provSrv    *provision.Server
	keyDB      *license.KeyDB
	registry   *provision.Registry
	rand       io.Reader
}

// SecureManifestRequest is the body of a secure-channel manifest fetch
// (Netflix's non-DASH protection of URI links).
type SecureManifestRequest struct {
	StableID string `json:"stableId"`
	Context  []byte `json:"context"`
}

// SecureManifestResponse carries the sealed MPD.
type SecureManifestResponse struct {
	IV     []byte `json:"iv"`
	Sealed []byte `json:"sealed"`
}

// apiError is the JSON error body backends return with non-200 statuses.
type apiError struct {
	Error string `json:"error"`
}

// NewDeployment packages the app's catalog under its key policy, builds its
// servers and registers its hosts on the network.
func NewDeployment(profile Profile, contentIDs []string, registry *provision.Registry, network *netsim.Network, rand io.Reader) (*Deployment, error) {
	d := &Deployment{
		Profile:    profile,
		ContentIDs: append([]string(nil), contentIDs...),
		cdnSrv:     cdn.NewServer(profile.CDNHost()),
		keyDB:      license.NewKeyDB(),
		registry:   registry,
		rand:       rand,
	}
	for _, contentID := range contentIDs {
		tracks := media.GenerateTitle(contentID, media.DefaultGenerateOptions())
		packaged, err := media.Package(contentID, tracks, profile.KeyPolicy, rand)
		if err != nil {
			return nil, fmt.Errorf("ott: package %s for %s: %w", contentID, profile.Name, err)
		}
		d.applyRegionalRestrictions(packaged.MPD)
		if err := d.cdnSrv.AddPackaged(packaged); err != nil {
			return nil, err
		}
		d.keyDB.Register(contentID, packaged.Keys)
	}

	d.licenseSrv = license.NewServer(d.keyDB, registry, license.Policy{
		MinCDMVersion: profile.LicenseMinCDM,
		L3MaxHeight:   L3ResolutionCap,
	}, rand)
	d.provSrv = provision.NewServer(registry, provision.Policy{
		MinCDMVersion: profile.ProvisionMinCDM,
	}, rand)

	network.RegisterHost(profile.CDNHost(), d.cdnSrv.Handler())
	network.RegisterHost(profile.LicenseHost(), d.licenseHandler())
	network.RegisterHost(profile.APIHost(), d.apiHandler())
	return d, nil
}

// KeyDB exposes the deployment's content keys (the attack verification and
// tests compare recovered keys against it).
func (d *Deployment) KeyDB() *license.KeyDB { return d.keyDB }

// CDN exposes the deployment's CDN server.
func (d *Deployment) CDN() *cdn.Server { return d.cdnSrv }

// applyRegionalRestrictions mutates the manifest the way the authors' test
// region saw it: missing subtitle sets and/or stripped key-ID metadata.
func (d *Deployment) applyRegionalRestrictions(m *dash.MPD) {
	for pi := range m.Periods {
		p := &m.Periods[pi]
		if d.Profile.SubtitleUnavailable {
			kept := p.AdaptationSets[:0]
			for _, set := range p.AdaptationSets {
				if set.ContentType != dash.ContentSubtitle {
					kept = append(kept, set)
				}
			}
			p.AdaptationSets = kept
		}
		if d.Profile.HideKeyIDs {
			for ai := range p.AdaptationSets {
				set := &p.AdaptationSets[ai]
				for ci := range set.ContentProtections {
					set.ContentProtections[ci].DefaultKID = ""
				}
				for ri := range set.Representations {
					for ci := range set.Representations[ri].ContentProtections {
						set.Representations[ri].ContentProtections[ci].DefaultKID = ""
					}
				}
			}
		}
	}
}

// licenseHandler serves the license endpoint.
func (d *Deployment) licenseHandler() netsim.Handler {
	return func(req netsim.Request) (netsim.Response, error) {
		if req.Path != PathLicense {
			return jsonError(404, "no such endpoint")
		}
		var signed cdm.SignedLicenseRequest
		if err := json.Unmarshal(req.Body, &signed); err != nil {
			return jsonError(400, "malformed license request")
		}
		resp, err := d.licenseSrv.HandleRequest(&signed)
		if err != nil {
			return jsonError(403, err.Error())
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return jsonError(500, "marshal license response")
		}
		return netsim.Response{Status: 200, Body: body}, nil
	}
}

// apiHandler serves provisioning and manifest endpoints.
func (d *Deployment) apiHandler() netsim.Handler {
	return func(req netsim.Request) (netsim.Response, error) {
		switch {
		case req.Path == PathProvision:
			return d.handleProvision(req)
		case strings.HasPrefix(req.Path, PathSecureManifest):
			return d.handleSecureManifest(req)
		case strings.HasPrefix(req.Path, PathManifest):
			if d.Profile.SecureManifestURIs {
				// Netflix-style: the plain manifest endpoint does not exist.
				return jsonError(404, "manifest requires secure channel")
			}
			id, dialectName := manifest.SplitExtension(strings.TrimPrefix(req.Path, PathManifest))
			if m, err := d.cdnSrv.ManifestDialect(id, dialectName); err == nil {
				return netsim.Response{Status: 200, Body: m}, nil
			}
			return jsonError(404, "unknown content")
		default:
			return jsonError(404, "no such endpoint")
		}
	}
}

func (d *Deployment) handleProvision(req netsim.Request) (netsim.Response, error) {
	provReq, err := cdm.ParseProvisioningRequest(req.Body)
	if err != nil {
		return jsonError(400, "malformed provisioning request")
	}
	resp, err := d.provSrv.Provision(provReq)
	if err != nil {
		return jsonError(403, err.Error())
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return jsonError(500, "marshal provisioning response")
	}
	return netsim.Response{Status: 200, Body: body}, nil
}

// handleSecureManifest seals the MPD under keys derived from the device's
// keybox root — the server half of the CDM secure channel. (Substitution
// note: the real Netflix channel is keyed through the Widevine license
// exchange; here the backend derives from the provisioning registry's
// device key, preserving the property that only the device's CDM can open
// the manifest.)
func (d *Deployment) handleSecureManifest(req netsim.Request) (netsim.Response, error) {
	if !d.Profile.SecureManifestURIs {
		return jsonError(404, "no such endpoint")
	}
	id, dialectName := manifest.SplitExtension(strings.TrimPrefix(req.Path, PathSecureManifest))
	raw, err := d.cdnSrv.ManifestDialect(id, dialectName)
	if err != nil {
		return jsonError(404, "unknown content")
	}
	var smr SecureManifestRequest
	if err := json.Unmarshal(req.Body, &smr); err != nil {
		return jsonError(400, "malformed secure manifest request")
	}
	deviceKey, ok := d.registry.DeviceKey(smr.StableID)
	if !ok {
		return jsonError(403, "unknown device")
	}
	keys, err := wvcrypto.DeriveSessionKeys(deviceKey[:], smr.Context)
	if err != nil {
		return jsonError(500, "derive channel keys")
	}
	iv := make([]byte, 16)
	if _, err := io.ReadFull(d.rand, iv); err != nil {
		return jsonError(500, "channel iv")
	}
	sealed, err := wvcrypto.EncryptCBC(keys.Enc, iv, raw)
	if err != nil {
		return jsonError(500, "seal manifest")
	}
	body, err := json.Marshal(SecureManifestResponse{IV: iv, Sealed: sealed})
	if err != nil {
		return jsonError(500, "marshal secure manifest")
	}
	return netsim.Response{Status: 200, Body: body}, nil
}

func jsonError(status int, msg string) (netsim.Response, error) {
	body, err := json.Marshal(apiError{Error: msg})
	if err != nil {
		return netsim.Response{Status: 500}, nil
	}
	return netsim.Response{Status: status, Body: body}, nil
}

// decodeAPIError extracts the error message of a non-200 response.
func decodeAPIError(resp netsim.Response) string {
	var e apiError
	if err := json.Unmarshal(resp.Body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return fmt.Sprintf("status %d", resp.Status)
}
