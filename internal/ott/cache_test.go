package ott

import (
	"testing"

	"repro/internal/device"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// loadKeysDuring counts OEMCrypto LoadKeys calls observed while fn runs.
func loadKeysDuring(t *testing.T, engine oemcrypto.Engine, fn func() *PlaybackReport) (int, *PlaybackReport) {
	t.Helper()
	mon := monitor.New()
	mon.AttachCDM(engine)
	defer mon.Detach()
	report := fn()
	return len(mon.EventsByFunc(oemcrypto.FuncLoadKeys)), report
}

// A caching app licenses once: the first playback runs the full exchange,
// the replay decrypts with the retained session and never loads keys.
func TestLicenseCache_ReplaySkipsLicenseExchange(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Disney+"))
	pixel, err := w.factory.MakePixel("PX-CACHE")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, pixel)

	firstLoads, first := loadKeysDuring(t, pixel.Engine, func() *PlaybackReport { return app.Play("movie-1") })
	if !first.Played() {
		t.Fatalf("first playback failed: %+v", first)
	}
	if firstLoads == 0 {
		t.Fatal("first playback performed no license load")
	}

	replayLoads, second := loadKeysDuring(t, pixel.Engine, func() *PlaybackReport { return app.Play("movie-1") })
	if !second.Played() {
		t.Fatalf("replay failed: %+v", second)
	}
	if replayLoads != 0 {
		t.Errorf("replay loaded keys %d times; the cached license should serve", replayLoads)
	}
	if second.PlayedHeight != first.PlayedHeight {
		t.Errorf("replay height %d != first height %d", second.PlayedHeight, first.PlayedHeight)
	}
}

// A different title misses the cache and runs its own license exchange.
func TestLicenseCache_DifferentTitleMisses(t *testing.T) {
	profile := profileByName(t, "Disney+")
	rand := wvcrypto.NewDeterministicReader("ott-test-cache-miss")
	network := netsim.NewNetwork()
	registry := provision.NewRegistry()
	if _, err := NewDeployment(profile, []string{"movie-1", "movie-2"}, registry, network, rand); err != nil {
		t.Fatal(err)
	}
	pixel, err := device.NewFactory(registry, rand).MakePixel("PX-MISS")
	if err != nil {
		t.Fatal(err)
	}
	app, err := Install(profile, pixel, network, registry, rand)
	if err != nil {
		t.Fatal(err)
	}

	if _, first := loadKeysDuring(t, pixel.Engine, func() *PlaybackReport { return app.Play("movie-1") }); !first.Played() {
		t.Fatalf("first playback failed: %+v", first)
	}
	otherLoads, other := loadKeysDuring(t, pixel.Engine, func() *PlaybackReport { return app.Play("movie-2") })
	if !other.Played() {
		t.Fatalf("second-title playback failed: %+v", other)
	}
	if otherLoads == 0 {
		t.Error("different title served without a license exchange")
	}
}

// A non-caching app re-licenses on every playback.
func TestLicenseCache_NonCachingAppRelicenses(t *testing.T) {
	w := newTestWorld(t, profileByName(t, "Showtime"))
	pixel, err := w.factory.MakePixel("PX-RELIC")
	if err != nil {
		t.Fatal(err)
	}
	app := w.install(t, pixel)

	if _, first := loadKeysDuring(t, pixel.Engine, func() *PlaybackReport { return app.Play("movie-1") }); !first.Played() {
		t.Fatalf("first playback failed: %+v", first)
	}
	replayLoads, second := loadKeysDuring(t, pixel.Engine, func() *PlaybackReport { return app.Play("movie-1") })
	if !second.Played() {
		t.Fatalf("replay failed: %+v", second)
	}
	if replayLoads == 0 {
		t.Error("non-caching app replayed without a license exchange")
	}
}
