package device_test

import (
	"testing"

	"repro/internal/device"
	"repro/internal/keybox"
	"repro/internal/oemcrypto"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// TestRegistryDefaults pins the default trio and the canonical axis
// order: the paper's three phones, registered first, in fixture order.
func TestRegistryDefaults(t *testing.T) {
	want := []string{"pixel", "l3", "nexus5"}
	got := device.DefaultProfileNames()
	if len(got) != len(want) {
		t.Fatalf("default profiles = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("default profiles = %v, want %v", got, want)
		}
	}
	names := device.ProfileNames()
	if len(names) < 8 {
		t.Errorf("registered profiles = %d, want the extended matrix (>= 8)", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("axis order starts %v, want the trio first", names[:3])
		}
	}
}

// TestRegisterValidation covers the registry's rejection paths and the
// L1 keybox normalization.
func TestRegisterValidation(t *testing.T) {
	bad := []device.Profile{
		{Name: "", CDMVersion: "15.0", SerialPrefix: "ZZ", Level: oemcrypto.L3},
		{Name: "no-prefix", CDMVersion: "15.0", Level: oemcrypto.L3},
		{Name: "no-cdm", SerialPrefix: "ZZ", Level: oemcrypto.L3},
		{Name: "pixel", CDMVersion: "15.0", SerialPrefix: "ZZ", Level: oemcrypto.L3}, // dup name
		{Name: "fresh", CDMVersion: "15.0", SerialPrefix: "PX", Level: oemcrypto.L3}, // dup prefix
	}
	for _, p := range bad {
		if err := device.Register(p); err == nil {
			t.Errorf("Register(%+v) accepted, want error", p)
		}
	}
	// Case-insensitive resolution.
	if _, ok := device.ByName("PIXEL"); !ok {
		t.Error("ByName is case-sensitive")
	}
	// An L1 profile never keeps a normal-world keybox state.
	if p := device.MustProfile("pixel"); p.Keybox != device.KeyboxAbsentTEE {
		t.Errorf("pixel keybox state = %v, want TEE-sealed", p.Keybox)
	}
}

// TestSortByRegistry: canonical ordering is registration order, not
// input or lexicographic order.
func TestSortByRegistry(t *testing.T) {
	names := []string{"nexus5", "pixel", "galaxy-s7", "l3"}
	device.SortByRegistry(names)
	want := []string{"pixel", "l3", "nexus5", "galaxy-s7"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", names, want)
		}
	}
}

// TestMakeL1VersusL3 pins what distinguishes the two manufacturing
// channels: an L1 profile boots a TEE world with the trustlet loaded and
// leaves nothing in the normal world, an L3 profile has no TEE and its
// keybox sits in flash and (once the CDM loads) process memory.
func TestMakeL1VersusL3(t *testing.T) {
	f, _ := newFactory()
	l1, err := f.Make(device.MustProfile("shield-tv"), "SH-001")
	if err != nil {
		t.Fatal(err)
	}
	if l1.World == nil || !l1.World.Loaded(oemcrypto.TrustletName) {
		t.Error("L1 profile: trustlet not loaded")
	}
	if _, ok := l1.Storage.Get("keybox"); ok {
		t.Error("L1 profile: keybox in normal-world flash")
	}
	if l1.ProfileName != "shield-tv" || l1.PatchLevel != "2021-06" {
		t.Errorf("L1 provenance = %s/%s", l1.ProfileName, l1.PatchLevel)
	}

	l3, err := f.Make(device.MustProfile("galaxy-s7"), "GX-001")
	if err != nil {
		t.Fatal(err)
	}
	if l3.World != nil {
		t.Error("L3 profile has a TEE")
	}
	if _, ok := l3.Storage.Get("keybox"); !ok {
		t.Error("L3 profile: keybox missing from flash")
	}
	if hits := l3.DRMProcess.Scan(keybox.Magic[:]); len(hits) == 0 {
		t.Error("L3 profile: keybox not in process memory")
	}
	if l3.CDMVersion != "11.0" {
		t.Errorf("L3 CDM = %s, want the profile's 11.0", l3.CDMVersion)
	}
}

// TestMakeRevoked: a revoked profile manufactures normally — keybox
// minted, installed, scannable — but the manufacturer → Widevine feed is
// withheld, so the provisioning registry never learns the device key.
func TestMakeRevoked(t *testing.T) {
	f, registry := newFactory()
	dev, err := f.Make(device.MustProfile("l3-revoked"), "RV-001")
	if err != nil {
		t.Fatal(err)
	}
	if !dev.KeyboxRevoked {
		t.Error("device does not record revocation")
	}
	if _, ok := dev.Storage.Get("keybox"); !ok {
		t.Error("revoked device: keybox missing from flash (revocation is a feed property, not a hardware one)")
	}
	if _, ok := registry.DeviceKey("RV-001"); ok {
		t.Error("revoked device key reached the provisioning registry")
	}
}

// TestProfileBuildMatchesBespoke is the refactor's determinism anchor:
// manufacturing the paper's trio through Make(Profile) draws the same
// random material, in the same order, as the original bespoke
// constructors — same device keys in the registry, same stable IDs,
// same marshaled keybox bytes in flash.
func TestProfileBuildMatchesBespoke(t *testing.T) {
	mk := func(build func(f *device.Factory) []*device.Device) ([]*device.Device, map[string][16]byte) {
		registry := provision.NewRegistry()
		f := device.NewFactory(registry, wvcrypto.NewDeterministicReader("bespoke-vs-profile"))
		devs := build(f)
		return devs, registry.ExportDeviceKeys()
	}
	viaProfile, profKeys := mk(func(f *device.Factory) []*device.Device {
		var out []*device.Device
		for _, name := range []string{"pixel", "l3", "nexus5"} {
			p := device.MustProfile(name)
			dev, err := f.Make(p, p.SerialPrefix+"-X")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, dev)
		}
		return out
	})
	viaBespoke, bespKeys := mk(func(f *device.Factory) []*device.Device {
		px, err := f.MakePixel("PX-X")
		if err != nil {
			t.Fatal(err)
		}
		l3, err := f.MakeL3Phone("L3-X")
		if err != nil {
			t.Fatal(err)
		}
		n5, err := f.MakeNexus5("N5-X")
		if err != nil {
			t.Fatal(err)
		}
		return []*device.Device{px, l3, n5}
	})

	for i := range viaProfile {
		p, b := viaProfile[i], viaBespoke[i]
		pid, psys, err := p.Engine.KeyboxInfo()
		if err != nil {
			t.Fatal(err)
		}
		bid, bsys, err := b.Engine.KeyboxInfo()
		if err != nil {
			t.Fatal(err)
		}
		if pid != bid || psys != bsys {
			t.Errorf("device %d: keybox identity (%s, %d) != bespoke (%s, %d)", i, pid, psys, bid, bsys)
		}
		pkb, pok := p.Storage.Get("keybox")
		bkb, bok := b.Storage.Get("keybox")
		if pok != bok || string(pkb) != string(bkb) {
			t.Errorf("device %d: flash keybox bytes diverge from bespoke build", i)
		}
	}
	for id, key := range bespKeys {
		if profKeys[id] != key {
			t.Errorf("device key %s diverges between profile and bespoke builds", id)
		}
	}
	if len(profKeys) != len(bespKeys) {
		t.Errorf("registry fed %d keys via profiles, %d via bespoke", len(profKeys), len(bespKeys))
	}
}
