// Package device models Android handsets at the granularity the study
// needs: a process memory space for the DRM server (where an L3 CDM's
// secrets leak), flash storage, an optional TEE, a factory-installed
// keybox, and the OEMCrypto engine matching the device's security level.
//
// Two concrete models bracket the paper's experiment:
//
//   - Nexus 5: released 2013, last update Android 6.0.1, Widevine L3 with
//     CDM 3.1.0 — the discontinued device of Q4 and §IV-D.
//   - Pixel-class device: current Android, TEE-backed Widevine L1 with
//     CDM 15.0.
package device

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/keybox"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/provision"
	"repro/internal/tee"
)

// Widevine system IDs per device class (arbitrary but stable).
const (
	systemIDLegacy = 4442
	systemIDModern = 7711
)

// CDM versions matching the paper's setup.
const (
	LegacyCDMVersion  = "3.1.0"
	CurrentCDMVersion = "15.0"
)

// Storage is a device's flash filesystem (an oemcrypto.FileStore).
type Storage struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewStorage returns empty flash storage.
func NewStorage() *Storage { return &Storage{m: make(map[string][]byte)} }

// Put writes a file.
func (s *Storage) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
}

// Get reads a file.
func (s *Storage) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	return d, ok
}

var _ oemcrypto.FileStore = (*Storage)(nil)

// Device is one handset.
type Device struct {
	Model          string
	Serial         string
	AndroidVersion string
	CDMVersion     string
	Level          oemcrypto.SecurityLevel

	// DRMProcess is the mediadrmserver process memory — the space a
	// monitor attaches to.
	DRMProcess *procmem.Space
	// Storage is the normal-world flash.
	Storage *Storage
	// World is the TEE; nil on L3-only devices.
	World *tee.World
	// Engine is the system Widevine engine.
	Engine oemcrypto.Engine
}

// Factory manufactures devices: it mints keyboxes, installs them in the
// right root of trust, boots the Widevine engine, and feeds the device key
// to the provisioning registry (the manufacturer → Widevine channel).
type Factory struct {
	registry *provision.Registry
	rand     io.Reader
}

// NewFactory builds a factory feeding the given registry.
func NewFactory(registry *provision.Registry, rand io.Reader) *Factory {
	return &Factory{registry: registry, rand: rand}
}

// WithRand returns a factory feeding the same registry but minting from a
// different randomness source. Callers that manufacture devices
// concurrently hand each worker its own derived deterministic stream so
// device material never depends on manufacturing order.
func (f *Factory) WithRand(rand io.Reader) *Factory {
	return &Factory{registry: f.registry, rand: rand}
}

// MakeNexus5 manufactures the discontinued L3 phone of the paper's Q4
// experiment: Android 6.0.1, Widevine L3, CDM 3.1.0, keybox in flash and
// (once the CDM loads) in process memory.
func (f *Factory) MakeNexus5(serial string) (*Device, error) {
	return f.makeL3("Nexus 5", serial, "6.0.1", LegacyCDMVersion, systemIDLegacy)
}

// MakeL3Phone manufactures a current-generation phone that still lacks a
// TEE Widevine (the L3 half of the Q1 experiments).
func (f *Factory) MakeL3Phone(serial string) (*Device, error) {
	return f.makeL3("Generic L3 Phone", serial, "12", CurrentCDMVersion, systemIDLegacy)
}

func (f *Factory) makeL3(model, serial, android, cdmVersion string, systemID uint32) (*Device, error) {
	kb, err := keybox.New(serial, systemID, f.rand)
	if err != nil {
		return nil, fmt.Errorf("device: mint keybox: %w", err)
	}
	storage := NewStorage()
	if err := oemcrypto.InstallKeybox(storage, kb.Marshal()); err != nil {
		return nil, fmt.Errorf("device: install keybox: %w", err)
	}
	space := procmem.NewSpace("mediadrmserver")
	engine, err := oemcrypto.NewSoftEngine(cdmVersion, space, storage, f.rand)
	if err != nil {
		return nil, fmt.Errorf("device: boot L3 engine: %w", err)
	}
	f.registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
	return &Device{
		Model:          model,
		Serial:         serial,
		AndroidVersion: android,
		CDMVersion:     cdmVersion,
		Level:          oemcrypto.L3,
		DRMProcess:     space,
		Storage:        storage,
		Engine:         engine,
	}, nil
}

// MakePixel manufactures a current TEE-backed L1 phone: the keybox is
// seeded directly into TEE secure storage and never exists in normal-world
// memory.
func (f *Factory) MakePixel(serial string) (*Device, error) {
	kb, err := keybox.New(serial, systemIDModern, f.rand)
	if err != nil {
		return nil, fmt.Errorf("device: mint keybox: %w", err)
	}
	world := tee.NewWorld(serial)
	world.ProvisionStorage(oemcrypto.TrustletName, "keybox", kb.Marshal())
	if err := world.Load(oemcrypto.NewTrustlet(CurrentCDMVersion, f.rand)); err != nil {
		return nil, fmt.Errorf("device: load trustlet: %w", err)
	}
	engine, err := oemcrypto.NewTEEEngine(CurrentCDMVersion, world)
	if err != nil {
		return nil, fmt.Errorf("device: boot L1 engine: %w", err)
	}
	f.registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
	return &Device{
		Model:          "Pixel",
		Serial:         serial,
		AndroidVersion: "12",
		CDMVersion:     CurrentCDMVersion,
		Level:          oemcrypto.L1,
		DRMProcess:     procmem.NewSpace("mediadrmserver"),
		Storage:        NewStorage(),
		World:          world,
		Engine:         engine,
	}, nil
}
