// Package device models Android handsets at the granularity the study
// needs: a process memory space for the DRM server (where an L3 CDM's
// secrets leak), flash storage, an optional TEE, a factory-installed
// keybox, and the OEMCrypto engine matching the device's security level.
//
// Two concrete models bracket the paper's experiment:
//
//   - Nexus 5: released 2013, last update Android 6.0.1, Widevine L3 with
//     CDM 3.1.0 — the discontinued device of Q4 and §IV-D.
//   - Pixel-class device: current Android, TEE-backed Widevine L1 with
//     CDM 15.0.
package device

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/keybox"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/provision"
	"repro/internal/tee"
)

// Widevine system IDs per device class (arbitrary but stable).
const (
	systemIDLegacy = 4442
	systemIDModern = 7711
)

// CDM versions matching the paper's setup.
const (
	LegacyCDMVersion  = "3.1.0"
	CurrentCDMVersion = "15.0"
)

// Storage is a device's flash filesystem (an oemcrypto.FileStore).
type Storage struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewStorage returns empty flash storage.
func NewStorage() *Storage { return &Storage{m: make(map[string][]byte)} }

// Put writes a file.
func (s *Storage) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
}

// Get reads a file.
func (s *Storage) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	return d, ok
}

var _ oemcrypto.FileStore = (*Storage)(nil)

// Device is one handset.
type Device struct {
	Model          string
	Serial         string
	AndroidVersion string
	PatchLevel     string
	CDMVersion     string
	Level          oemcrypto.SecurityLevel
	// ProfileName is the registry name of the profile this device was
	// manufactured from ("" when built through a legacy constructor path
	// that predates profiles — in practice always set).
	ProfileName string
	// KeyboxRevoked records that the factory withheld the device key
	// from the provisioning registry.
	KeyboxRevoked bool

	// DRMProcess is the mediadrmserver process memory — the space a
	// monitor attaches to.
	DRMProcess *procmem.Space
	// Storage is the normal-world flash.
	Storage *Storage
	// World is the TEE; nil on L3-only devices.
	World *tee.World
	// Engine is the system Widevine engine.
	Engine oemcrypto.Engine
}

// Factory manufactures devices: it mints keyboxes, installs them in the
// right root of trust, boots the Widevine engine, and feeds the device key
// to the provisioning registry (the manufacturer → Widevine channel).
type Factory struct {
	registry *provision.Registry
	rand     io.Reader
}

// NewFactory builds a factory feeding the given registry.
func NewFactory(registry *provision.Registry, rand io.Reader) *Factory {
	return &Factory{registry: registry, rand: rand}
}

// WithRand returns a factory feeding the same registry but minting from a
// different randomness source. Callers that manufacture devices
// concurrently hand each worker its own derived deterministic stream so
// device material never depends on manufacturing order.
func (f *Factory) WithRand(rand io.Reader) *Factory {
	return &Factory{registry: f.registry, rand: rand}
}

// MakeNexus5 manufactures the discontinued L3 phone of the paper's Q4
// experiment: Android 6.0.1, Widevine L3, CDM 3.1.0, keybox in flash and
// (once the CDM loads) in process memory.
func (f *Factory) MakeNexus5(serial string) (*Device, error) {
	return f.Make(MustProfile("nexus5"), serial)
}

// MakeL3Phone manufactures a current-generation phone that still lacks a
// TEE Widevine (the L3 half of the Q1 experiments).
func (f *Factory) MakeL3Phone(serial string) (*Device, error) {
	return f.Make(MustProfile("l3"), serial)
}

// MakePixel manufactures a current TEE-backed L1 phone: the keybox is
// seeded directly into TEE secure storage and never exists in normal-world
// memory.
func (f *Factory) MakePixel(serial string) (*Device, error) {
	return f.Make(MustProfile("pixel"), serial)
}

// Make manufactures a device from a declarative profile: one constructor
// for the whole device axis. The randomness draw order per security
// level is frozen (keybox, then engine/trustlet material), so a profile
// build is byte-identical to the bespoke constructor it replaced.
func (f *Factory) Make(p Profile, serial string) (*Device, error) {
	switch p.Level {
	case oemcrypto.L3:
		return f.makeL3(p, serial)
	case oemcrypto.L1:
		return f.makeL1(p, serial)
	default:
		return nil, fmt.Errorf("device: profile %s: unsupported security level %v", p.Name, p.Level)
	}
}

func (f *Factory) makeL3(p Profile, serial string) (*Device, error) {
	kb, err := keybox.New(serial, p.SystemID, f.rand)
	if err != nil {
		return nil, fmt.Errorf("device: mint keybox: %w", err)
	}
	storage := NewStorage()
	if err := oemcrypto.InstallKeybox(storage, kb.Marshal()); err != nil {
		return nil, fmt.Errorf("device: install keybox: %w", err)
	}
	space := procmem.NewSpace("mediadrmserver")
	engine, err := oemcrypto.NewSoftEngine(p.CDMVersion, space, storage, f.rand)
	if err != nil {
		return nil, fmt.Errorf("device: boot L3 engine: %w", err)
	}
	f.feedRegistry(p, kb)
	return &Device{
		Model:          p.Model,
		Serial:         serial,
		AndroidVersion: p.AndroidVersion,
		PatchLevel:     p.PatchLevel,
		CDMVersion:     p.CDMVersion,
		Level:          oemcrypto.L3,
		ProfileName:    p.Name,
		KeyboxRevoked:  p.Revoked(),
		DRMProcess:     space,
		Storage:        storage,
		Engine:         engine,
	}, nil
}

func (f *Factory) makeL1(p Profile, serial string) (*Device, error) {
	kb, err := keybox.New(serial, p.SystemID, f.rand)
	if err != nil {
		return nil, fmt.Errorf("device: mint keybox: %w", err)
	}
	world := tee.NewWorld(serial)
	world.ProvisionStorage(oemcrypto.TrustletName, "keybox", kb.Marshal())
	if err := world.Load(oemcrypto.NewTrustlet(p.CDMVersion, f.rand)); err != nil {
		return nil, fmt.Errorf("device: load trustlet: %w", err)
	}
	engine, err := oemcrypto.NewTEEEngine(p.CDMVersion, world)
	if err != nil {
		return nil, fmt.Errorf("device: boot L1 engine: %w", err)
	}
	f.feedRegistry(p, kb)
	return &Device{
		Model:          p.Model,
		Serial:         serial,
		AndroidVersion: p.AndroidVersion,
		PatchLevel:     p.PatchLevel,
		CDMVersion:     p.CDMVersion,
		Level:          oemcrypto.L1,
		ProfileName:    p.Name,
		KeyboxRevoked:  p.Revoked(),
		DRMProcess:     procmem.NewSpace("mediadrmserver"),
		Storage:        NewStorage(),
		World:          world,
		Engine:         engine,
	}, nil
}

// feedRegistry completes the manufacturer → Widevine provisioning
// channel. A revoked profile mints and installs its keybox normally but
// the feed never happens, so provisioning later refuses the device.
func (f *Factory) feedRegistry(p Profile, kb *keybox.Keybox) {
	if p.Revoked() {
		return
	}
	f.registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
}
