package device_test

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/keybox"
	"repro/internal/oemcrypto"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

func newFactory() (*device.Factory, *provision.Registry) {
	registry := provision.NewRegistry()
	return device.NewFactory(registry, wvcrypto.NewDeterministicReader("device-test")), registry
}

func TestMakeNexus5(t *testing.T) {
	f, registry := newFactory()
	dev, err := f.MakeNexus5("N5-001")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Level != oemcrypto.L3 || dev.CDMVersion != device.LegacyCDMVersion {
		t.Errorf("Nexus 5 = %s/%s", dev.Level, dev.CDMVersion)
	}
	if dev.AndroidVersion != "6.0.1" {
		t.Errorf("android version = %q", dev.AndroidVersion)
	}
	if dev.World != nil {
		t.Error("Nexus 5 has a TEE")
	}
	// The factory fed the registry.
	if _, ok := registry.DeviceKey("N5-001"); !ok {
		t.Error("device key not registered")
	}
	// The keybox sits in flash AND leaked into process memory at CDM init.
	if _, ok := dev.Storage.Get("keybox"); !ok {
		t.Error("keybox missing from flash")
	}
	if hits := dev.DRMProcess.Scan(keybox.Magic[:]); len(hits) == 0 {
		t.Error("keybox not in L3 process memory")
	}
	id, _, err := dev.Engine.KeyboxInfo()
	if err != nil || id != "N5-001" {
		t.Errorf("KeyboxInfo = %q, %v", id, err)
	}
}

func TestMakePixel(t *testing.T) {
	f, registry := newFactory()
	dev, err := f.MakePixel("PX-001")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Level != oemcrypto.L1 || dev.CDMVersion != device.CurrentCDMVersion {
		t.Errorf("Pixel = %s/%s", dev.Level, dev.CDMVersion)
	}
	if dev.World == nil || !dev.World.Loaded(oemcrypto.TrustletName) {
		t.Error("widevine trustlet not loaded")
	}
	if _, ok := registry.DeviceKey("PX-001"); !ok {
		t.Error("device key not registered")
	}
	// The keybox must NOT be in normal-world flash or process memory.
	if _, ok := dev.Storage.Get("keybox"); ok {
		t.Error("keybox in normal-world flash on L1 device")
	}
	if hits := dev.DRMProcess.Scan(keybox.Magic[:]); len(hits) != 0 {
		t.Error("keybox in normal-world process memory on L1 device")
	}
	id, _, err := dev.Engine.KeyboxInfo()
	if err != nil || id != "PX-001" {
		t.Errorf("KeyboxInfo = %q, %v", id, err)
	}
}

func TestMakeL3Phone(t *testing.T) {
	f, _ := newFactory()
	dev, err := f.MakeL3Phone("L3-001")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Level != oemcrypto.L3 || dev.CDMVersion != device.CurrentCDMVersion {
		t.Errorf("L3 phone = %s/%s", dev.Level, dev.CDMVersion)
	}
}

func TestDistinctDevicesDistinctKeys(t *testing.T) {
	f, registry := newFactory()
	if _, err := f.MakeNexus5("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.MakeNexus5("B"); err != nil {
		t.Fatal(err)
	}
	ka, _ := registry.DeviceKey("A")
	kb, _ := registry.DeviceKey("B")
	if ka == kb {
		t.Error("two devices share a device key")
	}
}

func TestStorage(t *testing.T) {
	s := device.NewStorage()
	if _, ok := s.Get("x"); ok {
		t.Error("empty storage lookup succeeded")
	}
	data := []byte{1, 2, 3}
	s.Put("x", data)
	data[0] = 9 // storage must have copied
	got, ok := s.Get("x")
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Get = %v, %v", got, ok)
	}
}

func TestInvalidSerial(t *testing.T) {
	f, _ := newFactory()
	long := string(bytes.Repeat([]byte{'x'}, 40))
	if _, err := f.MakeNexus5(long); err == nil {
		t.Error("oversized serial: want error")
	}
}
