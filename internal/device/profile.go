package device

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/oemcrypto"
)

// KeyboxState declares the provisioning trust a profile's factory-minted
// keybox carries.
type KeyboxState int

// KeyboxState values.
//
//   - KeyboxValid: the keybox is installed in normal-world flash and its
//     device key is fed to the provisioning registry (the ordinary L3
//     manufacturing channel).
//   - KeyboxRevoked: the keybox is minted and installed exactly like a
//     valid one, but the manufacturer → Widevine feed never happens, so
//     every provisioning request for the device is refused as unknown —
//     the study-visible shape of a revoked identity.
//   - KeyboxAbsentTEE: no keybox ever exists in the normal world; it is
//     sealed into TEE secure storage at manufacturing (the L1 channel).
const (
	KeyboxValid KeyboxState = iota
	KeyboxRevoked
	KeyboxAbsentTEE
)

// String renders the state for listings and provenance.
func (k KeyboxState) String() string {
	switch k {
	case KeyboxRevoked:
		return "revoked"
	case KeyboxAbsentTEE:
		return "absent (TEE-sealed)"
	default:
		return "valid"
	}
}

// Profile declares one device model: everything Factory.Make needs to
// manufacture a handset, as data instead of a bespoke constructor. The
// registered profiles form the study's device axis — which apps enforce
// revocation as a function of security level, CDM version and patch
// level is exactly the question the axis spans.
type Profile struct {
	// Name is the registry key ("pixel", "nexus5", ...), matched
	// case-insensitively by spec canonicalization.
	Name string
	// Model is the human-readable handset name.
	Model string
	// Level selects the Widevine implementation: L1 boots a TEE world and
	// trustlet, L3 a software engine in the DRM server process.
	Level oemcrypto.SecurityLevel
	// AndroidVersion and PatchLevel describe the device's update posture.
	AndroidVersion string
	PatchLevel     string
	// CDMVersion is what license and provisioning policies test against
	// (the revocation threshold is CDM-version based).
	CDMVersion string
	// SystemID is the Widevine system ID baked into the keybox.
	SystemID uint32
	// Keybox is the factory keybox's trust state.
	Keybox KeyboxState
	// Legacy marks a discontinued handset — the population Q4's
	// revocation matrix plays on.
	Legacy bool
	// SerialPrefix prefixes the per-app device serial ("PX" → "PX-Netflix…").
	// Serials double as provisioning stable IDs, so prefixes must be
	// unique across the registry.
	SerialPrefix string
}

// Revoked reports whether provisioning will refuse the device.
func (p Profile) Revoked() bool { return p.Keybox == KeyboxRevoked }

// profileRegistry holds the named device profiles in registration order.
var profileRegistry = struct {
	mu       sync.RWMutex
	order    []Profile
	byName   map[string]int
	byPrefix map[string]string
}{byName: make(map[string]int), byPrefix: make(map[string]string)}

// Register adds a device profile to the registry. It fails on an empty
// or duplicate name, a duplicate serial prefix, an unknown security
// level, or a missing CDM version.
func Register(p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("device: profile with empty name")
	}
	if p.SerialPrefix == "" {
		return fmt.Errorf("device: profile %s: empty serial prefix", p.Name)
	}
	if p.CDMVersion == "" {
		return fmt.Errorf("device: profile %s: empty CDM version", p.Name)
	}
	if p.Level != oemcrypto.L1 && p.Level != oemcrypto.L3 {
		return fmt.Errorf("device: profile %s: unsupported security level %v", p.Name, p.Level)
	}
	if p.Level == oemcrypto.L1 && p.Keybox == KeyboxValid {
		// An L1 keybox never sits in normal-world flash; normalize the
		// zero value so profile literals stay terse.
		p.Keybox = KeyboxAbsentTEE
	}
	profileRegistry.mu.Lock()
	defer profileRegistry.mu.Unlock()
	key := strings.ToLower(p.Name)
	if _, dup := profileRegistry.byName[key]; dup {
		return fmt.Errorf("device: duplicate profile %q", p.Name)
	}
	if owner, dup := profileRegistry.byPrefix[p.SerialPrefix]; dup {
		return fmt.Errorf("device: profile %s: serial prefix %q already used by %s", p.Name, p.SerialPrefix, owner)
	}
	profileRegistry.byName[key] = len(profileRegistry.order)
	profileRegistry.byPrefix[p.SerialPrefix] = p.Name
	profileRegistry.order = append(profileRegistry.order, p)
	return nil
}

// MustRegister is Register, panicking on error (init-time use).
func MustRegister(p Profile) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Profiles returns every registered device profile in registration
// order — the canonical order of the device axis.
func Profiles() []Profile {
	profileRegistry.mu.RLock()
	defer profileRegistry.mu.RUnlock()
	return append([]Profile(nil), profileRegistry.order...)
}

// ProfileNames returns the registered profile names in registration
// order.
func ProfileNames() []string {
	profileRegistry.mu.RLock()
	defer profileRegistry.mu.RUnlock()
	names := make([]string, len(profileRegistry.order))
	for i, p := range profileRegistry.order {
		names[i] = p.Name
	}
	return names
}

// ByName resolves one profile by name, case-insensitively.
func ByName(name string) (Profile, bool) {
	profileRegistry.mu.RLock()
	defer profileRegistry.mu.RUnlock()
	idx, ok := profileRegistry.byName[strings.ToLower(name)]
	if !ok {
		return Profile{}, false
	}
	return profileRegistry.order[idx], true
}

// MustProfile resolves a registered profile or panics — for the default
// set and tests, where a miss is a programming error.
func MustProfile(name string) Profile {
	p, ok := ByName(name)
	if !ok {
		panic("device: unregistered profile " + name)
	}
	return p
}

// registryIndex returns a profile's registration position (for
// canonical ordering); unregistered names sort last.
func registryIndex(name string) int {
	profileRegistry.mu.RLock()
	defer profileRegistry.mu.RUnlock()
	if idx, ok := profileRegistry.byName[strings.ToLower(name)]; ok {
		return idx
	}
	return len(profileRegistry.order)
}

// SortByRegistry orders profile names canonically (registration order),
// in place. Spec canonicalization uses it to make the device axis
// order-insensitive.
func SortByRegistry(names []string) {
	sort.SliceStable(names, func(i, j int) bool {
		return registryIndex(names[i]) < registryIndex(names[j])
	})
}

// defaultProfileNames is the paper's trio: the devices every world
// manufactures when no device set is requested.
var defaultProfileNames = []string{"pixel", "l3", "nexus5"}

// DefaultProfileNames returns the default device set (the paper's
// Pixel / modern L3 / Nexus 5 trio), in canonical order.
func DefaultProfileNames() []string {
	return append([]string(nil), defaultProfileNames...)
}

// DefaultProfiles resolves the default trio.
func DefaultProfiles() []Profile {
	out := make([]Profile, 0, len(defaultProfileNames))
	for _, name := range defaultProfileNames {
		out = append(out, MustProfile(name))
	}
	return out
}

func init() {
	// The paper's trio first: these three reproduce the bespoke
	// constructors byte for byte and are the default device set every
	// golden pins.
	MustRegister(Profile{
		Name: "pixel", Model: "Pixel", Level: oemcrypto.L1,
		AndroidVersion: "12", PatchLevel: "2021-12", CDMVersion: CurrentCDMVersion,
		SystemID: systemIDModern, Keybox: KeyboxAbsentTEE, SerialPrefix: "PX",
	})
	MustRegister(Profile{
		Name: "l3", Model: "Generic L3 Phone", Level: oemcrypto.L3,
		AndroidVersion: "12", PatchLevel: "2021-12", CDMVersion: CurrentCDMVersion,
		SystemID: systemIDLegacy, Keybox: KeyboxValid, SerialPrefix: "L3",
	})
	MustRegister(Profile{
		Name: "nexus5", Model: "Nexus 5", Level: oemcrypto.L3,
		AndroidVersion: "6.0.1", PatchLevel: "2016-10", CDMVersion: LegacyCDMVersion,
		SystemID: systemIDLegacy, Keybox: KeyboxValid, Legacy: true, SerialPrefix: "N5",
	})
	// The extended matrix: discontinued handsets bracketing the CDM-14.0
	// revocation threshold at both security levels, an at-threshold
	// control pair, a revoked identity, and a modern L3 variant.
	MustRegister(Profile{
		Name: "pixel-2016", Model: "Pixel (2016)", Level: oemcrypto.L1,
		AndroidVersion: "10", PatchLevel: "2019-10", CDMVersion: "13.0",
		SystemID: systemIDModern, Keybox: KeyboxAbsentTEE, Legacy: true, SerialPrefix: "PO",
	})
	MustRegister(Profile{
		Name: "galaxy-s7", Model: "Galaxy S7", Level: oemcrypto.L3,
		AndroidVersion: "8.0", PatchLevel: "2019-04", CDMVersion: "11.0",
		SystemID: systemIDLegacy, Keybox: KeyboxValid, Legacy: true, SerialPrefix: "GX",
	})
	MustRegister(Profile{
		Name: "moto-g5", Model: "Moto G5", Level: oemcrypto.L3,
		AndroidVersion: "9", PatchLevel: "2019-12", CDMVersion: "12.0",
		SystemID: systemIDLegacy, Keybox: KeyboxValid, Legacy: true, SerialPrefix: "MG",
	})
	MustRegister(Profile{
		Name: "oneplus-5", Model: "OnePlus 5", Level: oemcrypto.L3,
		AndroidVersion: "10", PatchLevel: "2020-09", CDMVersion: "14.0",
		SystemID: systemIDLegacy, Keybox: KeyboxValid, Legacy: true, SerialPrefix: "OP",
	})
	MustRegister(Profile{
		Name: "shield-tv", Model: "Shield TV", Level: oemcrypto.L1,
		AndroidVersion: "11", PatchLevel: "2021-06", CDMVersion: "14.0",
		SystemID: systemIDModern, Keybox: KeyboxAbsentTEE, SerialPrefix: "SH",
	})
	MustRegister(Profile{
		Name: "l3-revoked", Model: "Generic L3 Phone (revoked keybox)", Level: oemcrypto.L3,
		AndroidVersion: "12", PatchLevel: "2021-12", CDMVersion: CurrentCDMVersion,
		SystemID: systemIDLegacy, Keybox: KeyboxRevoked, Legacy: true, SerialPrefix: "RV",
	})
	MustRegister(Profile{
		Name: "tab-l3", Model: "Generic L3 Tablet", Level: oemcrypto.L3,
		AndroidVersion: "13", PatchLevel: "2022-06", CDMVersion: CurrentCDMVersion,
		SystemID: systemIDLegacy, Keybox: KeyboxValid, SerialPrefix: "TB",
	})
}
