package attack_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/attack"
	"repro/internal/cenc"
	"repro/internal/keybox"
	"repro/internal/media"
	"repro/internal/monitor"
	"repro/internal/mp4"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/wvcrypto"
)

func attachTo(t *testing.T, space *procmem.Space) *monitor.ProcessHandle {
	t.Helper()
	h, err := monitor.New().AttachProcess(space)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRecoverKeybox_FindsValidKeybox(t *testing.T) {
	kb, err := keybox.New("VICTIM-DEVICE", 4442, wvcrypto.NewDeterministicReader("atk"))
	if err != nil {
		t.Fatal(err)
	}
	space := procmem.NewSpace("mediadrmserver")
	// Surround with decoys: a bare magic string and unrelated data.
	r1, err := space.Alloc("heap", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Write(100, []byte("kbox")); err != nil { // magic with garbage around it
		t.Fatal(err)
	}
	r2, err := space.Alloc("libwvdrmengine:keybox", keybox.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Write(0, kb.Marshal()); err != nil {
		t.Fatal(err)
	}

	got, err := attack.RecoverKeybox(attachTo(t, space))
	if err != nil {
		t.Fatal(err)
	}
	if got.StableIDString() != "VICTIM-DEVICE" || got.DeviceKey != kb.DeviceKey {
		t.Errorf("recovered keybox mismatch: %+v", got)
	}
}

func TestRecoverKeybox_NotFound(t *testing.T) {
	space := procmem.NewSpace("p")
	if _, err := space.Alloc("heap", 1024); err != nil {
		t.Fatal(err)
	}
	_, err := attack.RecoverKeybox(attachTo(t, space))
	if !errors.Is(err, attack.ErrKeyboxNotFound) {
		t.Errorf("err = %v, want ErrKeyboxNotFound", err)
	}
}

func TestRecoverKeybox_RejectsCorrupted(t *testing.T) {
	kb, err := keybox.New("VICTIM", 1, wvcrypto.NewDeterministicReader("c"))
	if err != nil {
		t.Fatal(err)
	}
	wire := kb.Marshal()
	wire[0] ^= 0xFF // CRC now fails
	space := procmem.NewSpace("p")
	r, err := space.Alloc("x", keybox.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0, wire); err != nil {
		t.Fatal(err)
	}
	if _, err := attack.RecoverKeybox(attachTo(t, space)); !errors.Is(err, attack.ErrKeyboxNotFound) {
		t.Errorf("err = %v, want ErrKeyboxNotFound for corrupted candidate", err)
	}
}

type mapStore map[string][]byte

func (m mapStore) Put(name string, data []byte) { m[name] = append([]byte(nil), data...) }
func (m mapStore) Get(name string) ([]byte, bool) {
	d, ok := m[name]
	return d, ok
}

func TestRecoverDeviceRSAKey(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("rsa-recover")
	kb, err := keybox.New("VICTIM", 1, rand)
	if err != nil {
		t.Fatal(err)
	}
	rsaKey, err := wvcrypto.GenerateRSAKey(rand)
	if err != nil {
		t.Fatal(err)
	}
	// Persist the blob exactly as the CDM does.
	storageKey, err := wvcrypto.DeriveKey(kb.DeviceKey[:], wvcrypto.LabelProvisioning, kb.StableID[:], 128)
	if err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{9}, 16)
	ct, err := wvcrypto.EncryptCBC(storageKey, iv, wvcrypto.MarshalRSAPrivateKey(rsaKey))
	if err != nil {
		t.Fatal(err)
	}
	store := mapStore{}
	store.Put("device_rsa_key", append(iv, ct...))

	got, err := attack.RecoverDeviceRSAKey(kb, store)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(rsaKey.N) != 0 {
		t.Error("recovered RSA key mismatch")
	}
}

func TestRecoverDeviceRSAKey_Missing(t *testing.T) {
	kb, err := keybox.New("V", 1, wvcrypto.NewDeterministicReader("m"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attack.RecoverDeviceRSAKey(kb, mapStore{}); !errors.Is(err, attack.ErrNoProvisionedKey) {
		t.Errorf("err = %v, want ErrNoProvisionedKey", err)
	}
}

func TestRecoverDeviceRSAKey_WrongKeybox(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("wrongkb")
	kbA, err := keybox.New("DEVICE-A", 1, rand)
	if err != nil {
		t.Fatal(err)
	}
	kbB, err := keybox.New("DEVICE-B", 1, rand)
	if err != nil {
		t.Fatal(err)
	}
	rsaKey, err := wvcrypto.GenerateRSAKey(rand)
	if err != nil {
		t.Fatal(err)
	}
	storageKey, err := wvcrypto.DeriveKey(kbA.DeviceKey[:], wvcrypto.LabelProvisioning, kbA.StableID[:], 128)
	if err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{9}, 16)
	ct, err := wvcrypto.EncryptCBC(storageKey, iv, wvcrypto.MarshalRSAPrivateKey(rsaKey))
	if err != nil {
		t.Fatal(err)
	}
	store := mapStore{}
	store.Put("device_rsa_key", append(iv, ct...))
	if _, err := attack.RecoverDeviceRSAKey(kbB, store); err == nil {
		t.Error("wrong keybox unwrapped the blob")
	}
}

func TestRecoverContentKeys(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("rck")
	rsaKey, err := wvcrypto.GenerateRSAKey(rand)
	if err != nil {
		t.Fatal(err)
	}
	requestBody := []byte(`{"contentId":"movie-1"}`)
	sessionKey := bytes.Repeat([]byte{0x21}, 16)
	encSessionKey, err := wvcrypto.EncryptOAEP(rand, &rsaKey.PublicKey, sessionKey)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := wvcrypto.DeriveSessionKeys(sessionKey, requestBody)
	if err != nil {
		t.Fatal(err)
	}
	kid := [16]byte{0xA1}
	contentKey := bytes.Repeat([]byte{0x51}, 16)
	var iv [16]byte
	payload, err := wvcrypto.EncryptCBC(derived.Enc, iv[:], contentKey)
	if err != nil {
		t.Fatal(err)
	}
	events := []oemcrypto.CallEvent{
		{Func: oemcrypto.FuncGenerateRSASignature, Session: 1, In: requestBody},
		{Func: oemcrypto.FuncDeriveKeysFromSessionKey, Session: 1, In: encSessionKey},
		{Func: oemcrypto.FuncLoadKeys, Session: 1, Keys: []oemcrypto.EncryptedKey{{KID: kid, IV: iv, Payload: payload}}},
	}

	keys, err := attack.RecoverContentKeys(rsaKey, events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(keys[kid], contentKey) {
		t.Errorf("recovered key = %x, want %x", keys[kid], contentKey)
	}

	// Sessions must not cross-contaminate: move LoadKeys to session 2 and
	// recovery finds nothing.
	events[2].Session = 2
	if _, err := attack.RecoverContentKeys(rsaKey, events); !errors.Is(err, attack.ErrNoLadderMaterial) {
		t.Errorf("cross-session err = %v, want ErrNoLadderMaterial", err)
	}
}

func TestRecoverContentKeys_EmptyTrace(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("et")
	rsaKey, err := wvcrypto.GenerateRSAKey(rand)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attack.RecoverContentKeys(rsaKey, nil); !errors.Is(err, attack.ErrNoLadderMaterial) {
		t.Errorf("err = %v, want ErrNoLadderMaterial", err)
	}
}

func TestDecryptRepresentation(t *testing.T) {
	key := bytes.Repeat([]byte{0x61}, 16)
	kid := [16]byte{0xC1}
	init := &mp4.InitSegment{Track: mp4.TrackInfo{
		TrackID: 1, Handler: mp4.HandlerVideo, Codec: "avc1", Timescale: 90000,
		Width: 960, Height: 540,
		Protection: &mp4.ProtectionInfo{Scheme: mp4.SchemeCENC, DefaultKID: kid},
	}}
	seg := &mp4.MediaSegment{
		SequenceNumber: 1, TrackID: 1,
		SampleData: [][]byte{media.SamplePayload("movie-1", "540p", 0, 0, 256)},
	}
	enc, err := cenc.NewEncryptor(mp4.SchemeCENC, key, wvcrypto.NewDeterministicReader("dr"))
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.EncryptSegment(seg, 4); err != nil {
		t.Fatal(err)
	}
	segRaw, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	asset, err := attack.DecryptRepresentation(init.Marshal(), [][]byte{segRaw}, map[[16]byte][]byte{kid: key})
	if err != nil {
		t.Fatal(err)
	}
	if asset.Height != 540 || len(asset.Segments) != 1 {
		t.Fatalf("asset = %+v", asset)
	}
	if !media.SegmentPlayable(asset.Segments[0]) {
		t.Error("decrypted asset not playable")
	}

	// Missing key → error (the HD-rung case).
	if _, err := attack.DecryptRepresentation(init.Marshal(), [][]byte{segRaw}, nil); err == nil {
		t.Error("want error for missing key")
	}
}

func TestDecryptRepresentation_ClearTrack(t *testing.T) {
	init := &mp4.InitSegment{Track: mp4.TrackInfo{
		TrackID: 2, Handler: mp4.HandlerAudio, Codec: "mp4a", Timescale: 48000,
	}}
	seg := &mp4.MediaSegment{
		SequenceNumber: 1, TrackID: 2,
		SampleData: [][]byte{media.SamplePayload("movie-1", "audio-en", 0, 0, 128)},
	}
	segRaw, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	asset, err := attack.DecryptRepresentation(init.Marshal(), [][]byte{segRaw}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !media.SegmentPlayable(asset.Segments[0]) {
		t.Error("clear track not playable after rip")
	}
}

func TestDecryptRepresentation_BadInput(t *testing.T) {
	if _, err := attack.DecryptRepresentation([]byte("junk1234"), nil, nil); err == nil {
		t.Error("want error for garbage init")
	}
}
