package attack_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/attack"
	"repro/internal/cdm"
	"repro/internal/keybox"
	"repro/internal/license"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

func TestForgeLicenseExchange(t *testing.T) {
	rand := wvcrypto.NewDeterministicReader("forge-direct")
	kb, err := keybox.New("FORGE-DEV", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	registry := provision.NewRegistry()
	registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
	provSrv := provision.NewServer(registry, provision.Policy{}, rand)
	// Provision once so the registry holds the device's RSA public key;
	// the attack then "recovers" the matching private key by asking the
	// registry-backed provisioning server directly (in the real chain it
	// comes from RecoverDeviceRSAKey).
	provReq := &cdm.ProvisioningRequest{StableID: kb.StableIDString(), SystemID: 4442, CDMVersion: "3.1.0", Level: "L3", Nonce: []byte("n")}
	provResp, err := provSrv.Provision(provReq)
	if err != nil {
		t.Fatal(err)
	}
	// Unwrap the issued key exactly as the CDM (or attacker) would.
	ctx, err := provReq.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	derived, err := wvcrypto.DeriveSessionKeys(kb.DeviceKey[:], ctx)
	if err != nil {
		t.Fatal(err)
	}
	der, err := wvcrypto.DecryptCBC(derived.Enc, provResp.IV, provResp.WrappedRSAKey)
	if err != nil {
		t.Fatal(err)
	}
	rsaKey, err := wvcrypto.ParseRSAPrivateKey(der)
	if err != nil {
		t.Fatal(err)
	}

	db := license.NewKeyDB()
	hdKID := [16]byte{0xDD}
	db.Register("movie-hd", []license.KeyEntry{
		{KID: [16]byte{1}, Key: bytes.Repeat([]byte{1}, 16), Track: license.TrackVideo, MaxHeight: 540},
		{KID: hdKID, Key: bytes.Repeat([]byte{2}, 16), Track: license.TrackVideo, MaxHeight: 1080},
	})
	srv := license.NewServer(db, registry, license.Policy{L3MaxHeight: 540}, rand)
	send := func(signed *cdm.SignedLicenseRequest) (*cdm.LicenseResponse, error) {
		return srv.HandleRequest(signed)
	}

	// Claiming L3 honestly: no HD key.
	honest, err := attack.ForgeLicenseExchange(kb, rsaKey, "movie-hd", "L3", "15.0", rand, send)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := honest.Keys[hdKID]; ok {
		t.Error("honest L3 claim received the HD key")
	}

	// Claiming L1: HD granted.
	forged, err := attack.ForgeLicenseExchange(kb, rsaKey, "movie-hd", "L1", "15.0", rand, send)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(forged.Keys[hdKID], bytes.Repeat([]byte{2}, 16)) {
		t.Error("forged L1 claim did not yield the HD key")
	}

	// Error paths.
	if _, err := attack.ForgeLicenseExchange(kb, rsaKey, "movie-hd", "L1", "15.0", rand,
		func(*cdm.SignedLicenseRequest) (*cdm.LicenseResponse, error) {
			return nil, errors.New("endpoint down")
		}); err == nil {
		t.Error("send failure not propagated")
	}
	if _, err := attack.ForgeLicenseExchange(kb, rsaKey, "movie-hd", "L1", "15.0", rand,
		func(signed *cdm.SignedLicenseRequest) (*cdm.LicenseResponse, error) {
			resp, err := srv.HandleRequest(signed)
			if err != nil {
				return nil, err
			}
			resp.MAC[0] ^= 1
			return resp, nil
		}); err == nil {
		t.Error("tampered MAC accepted")
	}
	if _, err := attack.ForgeLicenseExchange(kb, rsaKey, "movie-hd", "L1", "15.0", rand,
		func(signed *cdm.SignedLicenseRequest) (*cdm.LicenseResponse, error) {
			resp, err := srv.HandleRequest(signed)
			if err != nil {
				return nil, err
			}
			resp.EncSessionKey[5] ^= 1
			return resp, nil
		}); err == nil {
		t.Error("tampered session key accepted")
	}
}
