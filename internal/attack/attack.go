// Package attack implements the paper's §IV-D proof of concept: recovering
// DRM-free media from a discontinued L3 device, one ladder rung at a time.
//
//  1. Keybox recovery (CVE-2021-0639 / CWE-922): scan the Widevine
//     process's memory for the keybox magic and validate candidates.
//  2. Device RSA Key recovery: with the keybox device key, unwrap the
//     provisioned RSA key from the device's flash storage.
//  3. Key-ladder re-implementation: replay the intercepted OEMCrypto
//     arguments (derivation buffers and wrapped keys dumped by the
//     monitor) through our own copy of the proprietary ladder to obtain
//     every content key.
//  4. Media reconstruction: download the CDN assets (no account needed),
//     CENC-decrypt them with the recovered keys, and emit a clear,
//     playable copy — capped at qHD because L3 clients were never granted
//     HD keys.
//
// Every cryptographic step here uses only internal/wvcrypto primitives and
// monitor-visible data; nothing reaches into CDM internals.
package attack

import (
	"crypto/rsa"
	"errors"
	"fmt"

	"repro/internal/cenc"
	"repro/internal/keybox"
	"repro/internal/monitor"
	"repro/internal/mp4"
	"repro/internal/oemcrypto"
	"repro/internal/wvcrypto"
)

// Constants mirrored from the reverse-engineered CDM (file names and blob
// layout of the provisioned key in flash).
const (
	rsaKeyStoreName = "device_rsa_key"
	rsaWrapIVBytes  = 16
)

// Errors returned by the attack steps.
var (
	// ErrKeyboxNotFound is returned when no valid keybox is in scanned
	// memory (the L1 case).
	ErrKeyboxNotFound = errors.New("attack: no keybox found in process memory")
	// ErrNoProvisionedKey is returned when the flash holds no wrapped RSA
	// key blob.
	ErrNoProvisionedKey = errors.New("attack: no provisioned rsa key in storage")
	// ErrNoLadderMaterial is returned when the monitor trace lacks the
	// calls needed to replay the ladder.
	ErrNoLadderMaterial = errors.New("attack: trace has no usable key-ladder material")
)

// RecoverKeybox scans an attached process for the keybox structure: find
// the magic, rewind to the candidate start, validate magic+CRC.
func RecoverKeybox(h *monitor.ProcessHandle) (*keybox.Keybox, error) {
	for _, match := range h.Scan(keybox.Magic[:]) {
		start := match.Addr - uint64(keybox.MagicOffset())
		if start > match.Addr { // underflow: magic too close to region start
			continue
		}
		buf := make([]byte, keybox.Size)
		n, err := h.ReadAt(start, buf)
		if err != nil || n != keybox.Size {
			continue
		}
		kb, err := keybox.Parse(buf)
		if err != nil {
			continue // false positive (magic bytes in unrelated data)
		}
		return kb, nil
	}
	return nil, ErrKeyboxNotFound
}

// RecoverDeviceRSAKey unwraps the provisioned Device RSA key from flash
// storage using the recovered keybox — the step the paper took "once we
// recovered the keybox".
func RecoverDeviceRSAKey(kb *keybox.Keybox, storage oemcrypto.FileStore) (*rsa.PrivateKey, error) {
	blob, ok := storage.Get(rsaKeyStoreName)
	if !ok || len(blob) <= rsaWrapIVBytes {
		return nil, ErrNoProvisionedKey
	}
	storageKey, err := wvcrypto.DeriveKey(kb.DeviceKey[:], wvcrypto.LabelProvisioning, kb.StableID[:], 128)
	if err != nil {
		return nil, fmt.Errorf("attack: derive storage key: %w", err)
	}
	der, err := wvcrypto.DecryptCBC(storageKey, blob[:rsaWrapIVBytes], blob[rsaWrapIVBytes:])
	if err != nil {
		return nil, fmt.Errorf("attack: unwrap rsa blob: %w", err)
	}
	key, err := wvcrypto.ParseRSAPrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("attack: parse rsa key: %w", err)
	}
	return key, nil
}

// RecoverContentKeys replays the key ladder over the monitor's dumped
// OEMCrypto arguments: per session, the signed request body (the
// derivation context), the OAEP-wrapped session key, and the CBC-wrapped
// content keys.
func RecoverContentKeys(rsaKey *rsa.PrivateKey, events []oemcrypto.CallEvent) (map[[16]byte][]byte, error) {
	type sessionMaterial struct {
		requestBody   []byte
		encSessionKey []byte
		keys          []oemcrypto.EncryptedKey
	}
	sessions := make(map[oemcrypto.SessionID]*sessionMaterial)
	get := func(id oemcrypto.SessionID) *sessionMaterial {
		sm, ok := sessions[id]
		if !ok {
			sm = &sessionMaterial{}
			sessions[id] = sm
		}
		return sm
	}
	for _, ev := range events {
		if ev.Err != nil {
			continue
		}
		switch ev.Func {
		case oemcrypto.FuncGenerateRSASignature:
			get(ev.Session).requestBody = ev.In
		case oemcrypto.FuncDeriveKeysFromSessionKey:
			get(ev.Session).encSessionKey = ev.In
		case oemcrypto.FuncLoadKeys:
			get(ev.Session).keys = append(get(ev.Session).keys, ev.Keys...)
		}
	}

	recovered := make(map[[16]byte][]byte)
	for _, sm := range sessions {
		if sm.requestBody == nil || sm.encSessionKey == nil || len(sm.keys) == 0 {
			continue
		}
		sessionKey, err := wvcrypto.DecryptOAEP(rsaKey, sm.encSessionKey)
		if err != nil {
			continue // session keyed to another device key
		}
		derived, err := wvcrypto.DeriveSessionKeys(sessionKey, sm.requestBody)
		if err != nil {
			continue
		}
		for _, ek := range sm.keys {
			contentKey, err := wvcrypto.DecryptCBC(derived.Enc, ek.IV[:], ek.Payload)
			if err != nil || len(contentKey) != cenc.KeySize {
				continue
			}
			recovered[ek.KID] = contentKey
		}
	}
	if len(recovered) == 0 {
		return nil, ErrNoLadderMaterial
	}
	return recovered, nil
}

// RippedAsset is one decrypted representation.
type RippedAsset struct {
	Path     string
	Height   uint16
	Segments []*mp4.MediaSegment
}

// DecryptRepresentation strips the DRM from one downloaded representation:
// parse init for scheme+KID, look up the recovered key, decrypt every
// segment in place. It returns an error when the needed key was not
// recovered (e.g. the HD rungs an L3 client never received).
func DecryptRepresentation(initRaw []byte, segmentRaws [][]byte, keys map[[16]byte][]byte) (*RippedAsset, error) {
	init, err := mp4.ParseInitSegment(initRaw)
	if err != nil {
		return nil, fmt.Errorf("attack: parse init: %w", err)
	}
	asset := &RippedAsset{Height: init.Track.Height}
	if init.Track.Protection == nil {
		// Clear track (e.g. Netflix audio): nothing to strip.
		for i, raw := range segmentRaws {
			seg, err := mp4.ParseMediaSegment(raw)
			if err != nil {
				return nil, fmt.Errorf("attack: parse clear segment %d: %w", i, err)
			}
			asset.Segments = append(asset.Segments, seg)
		}
		return asset, nil
	}

	kid := init.Track.Protection.DefaultKID
	key, ok := keys[kid]
	if !ok {
		return nil, fmt.Errorf("attack: no recovered key for kid %x", kid)
	}
	for i, raw := range segmentRaws {
		seg, err := mp4.ParseMediaSegment(raw)
		if err != nil {
			return nil, fmt.Errorf("attack: parse segment %d: %w", i, err)
		}
		if seg.Encryption != nil {
			if err := cenc.DecryptSegment(init.Track.Protection.Scheme, key, seg); err != nil {
				return nil, fmt.Errorf("attack: decrypt segment %d: %w", i, err)
			}
		}
		asset.Segments = append(asset.Segments, seg)
	}
	return asset, nil
}
