package attack

import (
	"crypto/rsa"
	"fmt"
	"io"

	"repro/internal/cdm"
	"repro/internal/cenc"
	"repro/internal/keybox"
	"repro/internal/wvcrypto"
)

// ForgeryResult is what a forged license exchange yields.
type ForgeryResult struct {
	// Keys are the content keys recovered from the forged exchange.
	Keys map[[16]byte][]byte
}

// SendLicense delivers a signed request to an OTT license endpoint and
// returns its response (the caller binds it to the simulated network).
type SendLicense func(*cdm.SignedLicenseRequest) (*cdm.LicenseResponse, error)

// ForgeLicenseExchange implements the paper's §V-C future-work experiment
// (the netflix-1080p trick, adapted to Android): with the recovered keybox
// identity and Device RSA key, an attacker no longer needs the CDM at all —
// it forges a license request CLAIMING any security level and CDM version,
// signs it itself, and unwraps the granted keys itself.
//
// Against a server that trusts the self-declared level (all of them — there
// is no attestation in the protocol), claiming "L1" from a broken L3 device
// yields the HD content keys the real device was never granted.
func ForgeLicenseExchange(kb *keybox.Keybox, rsaKey *rsa.PrivateKey, contentID, claimLevel, claimCDMVersion string, rand io.Reader, send SendLicense) (*ForgeryResult, error) {
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(rand, nonce); err != nil {
		return nil, fmt.Errorf("attack: forge nonce: %w", err)
	}
	req := &cdm.LicenseRequest{
		StableID:   kb.StableIDString(),
		SystemID:   kb.SystemID(),
		CDMVersion: claimCDMVersion,
		Level:      claimLevel,
		ContentID:  contentID,
		Nonce:      nonce,
	}
	body, err := req.Canonical()
	if err != nil {
		return nil, err
	}
	sig, err := wvcrypto.SignPSS(rand, rsaKey, body)
	if err != nil {
		return nil, fmt.Errorf("attack: forge signature: %w", err)
	}
	signed := &cdm.SignedLicenseRequest{Body: body, Signature: sig}

	resp, err := send(signed)
	if err != nil {
		return nil, fmt.Errorf("attack: forged exchange: %w", err)
	}

	// The attacker plays the CDM's half of the ladder with the stolen key.
	sessionKey, err := wvcrypto.DecryptOAEP(rsaKey, resp.EncSessionKey)
	if err != nil {
		return nil, fmt.Errorf("attack: unwrap forged session key: %w", err)
	}
	derived, err := wvcrypto.DeriveSessionKeys(sessionKey, body)
	if err != nil {
		return nil, fmt.Errorf("attack: derive forged keys: %w", err)
	}
	if !wvcrypto.VerifyHMACSHA256(derived.MACServer, resp.Message, resp.MAC) {
		return nil, fmt.Errorf("attack: forged response MAC invalid")
	}
	out := &ForgeryResult{Keys: make(map[[16]byte][]byte, len(resp.Keys))}
	for _, ek := range resp.Keys {
		key, err := wvcrypto.DecryptCBC(derived.Enc, ek.IV[:], ek.Payload)
		if err != nil || len(key) != cenc.KeySize {
			continue
		}
		out.Keys[ek.KID] = key
	}
	if len(out.Keys) == 0 {
		return nil, fmt.Errorf("attack: forged exchange granted no keys")
	}
	return out, nil
}
