package attack

import (
	"errors"

	"repro/internal/monitor"
	"repro/internal/procmem"
)

// ErrNoDecryptedBuffers is returned when the MovieStealer scan finds no
// readable decrypted media anywhere it can attach.
var ErrNoDecryptedBuffers = errors.New("attack: no decrypted media buffers found")

// MovieStealerResult reports the baseline attack's outcome.
type MovieStealerResult struct {
	// AppAttachBlocked is true when the OTT app's process refused
	// attachment (anti-debugging).
	AppAttachBlocked bool
	// BuffersFound counts decrypted media buffers located in attachable
	// memory.
	BuffersFound int
}

// MovieStealer is the 2013-era baseline attack (Wang et al., USENIX Sec'13)
// the paper contrasts with: locate decrypted media buffers in the player
// app's memory just before decoding. Against the Android DRM architecture
// it fails twice over, exactly as §II-B argues:
//
//  1. the app process deploys anti-debugging, so it cannot be attached;
//  2. even if it could be, the app never receives decrypted buffers —
//     decryption happens in the DRM server / secure path, and frames flow
//     CDM → codec → display without touching app-readable memory.
//
// mediaMagic is the byte pattern identifying decrypted media (the
// playability magic of internal/media).
func MovieStealer(m *monitor.Monitor, appSpace *procmem.Space, mediaMagic []byte) (*MovieStealerResult, error) {
	res := &MovieStealerResult{}
	handle, err := m.AttachProcess(appSpace)
	if errors.Is(err, monitor.ErrAntiDebug) {
		res.AppAttachBlocked = true
		return res, ErrNoDecryptedBuffers
	}
	if err != nil {
		return nil, err
	}
	res.BuffersFound = len(handle.Scan(mediaMagic))
	if res.BuffersFound == 0 {
		return res, ErrNoDecryptedBuffers
	}
	return res, nil
}
