package cdm

import (
	"fmt"
	"strconv"
	"strings"
)

// CompareVersions compares two dotted CDM version strings (e.g. "3.1.0" vs
// "15.0") numerically, returning -1, 0 or +1. Missing components compare as
// zero, so "15" == "15.0". It returns an error for non-numeric components.
func CompareVersions(a, b string) (int, error) {
	av, err := parseVersion(a)
	if err != nil {
		return 0, err
	}
	bv, err := parseVersion(b)
	if err != nil {
		return 0, err
	}
	n := len(av)
	if len(bv) > n {
		n = len(bv)
	}
	for i := 0; i < n; i++ {
		var x, y int
		if i < len(av) {
			x = av[i]
		}
		if i < len(bv) {
			y = bv[i]
		}
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
	}
	return 0, nil
}

// VersionAtLeast reports whether version v is >= min. An empty min means no
// constraint. Malformed versions report false so revocation fails closed.
func VersionAtLeast(v, min string) bool {
	if min == "" {
		return true
	}
	cmp, err := CompareVersions(v, min)
	if err != nil {
		return false
	}
	return cmp >= 0
}

func parseVersion(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("cdm: empty version string")
	}
	parts := strings.Split(s, ".")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("cdm: bad version component %q in %q", p, s)
		}
		out[i] = n
	}
	return out, nil
}
