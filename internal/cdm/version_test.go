package cdm

import "testing"

func TestCompareVersions(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"3.1.0", "15.0", -1},
		{"15.0", "3.1.0", 1},
		{"15.0", "15.0", 0},
		{"15", "15.0", 0},
		{"15.0.1", "15.0", 1},
		{"2.9.9", "3.0.0", -1},
		{"10.0", "9.9", 1},
	}
	for _, tt := range tests {
		got, err := CompareVersions(tt.a, tt.b)
		if err != nil {
			t.Errorf("CompareVersions(%q,%q): %v", tt.a, tt.b, err)
			continue
		}
		if got != tt.want {
			t.Errorf("CompareVersions(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareVersions_Invalid(t *testing.T) {
	for _, bad := range []string{"", "a.b", "1.-2", "1..2"} {
		if _, err := CompareVersions(bad, "1.0"); err == nil {
			t.Errorf("CompareVersions(%q): want error", bad)
		}
	}
}

func TestVersionAtLeast(t *testing.T) {
	tests := []struct {
		v, min string
		want   bool
	}{
		{"3.1.0", "", true},
		{"3.1.0", "14.0", false},
		{"15.0", "14.0", true},
		{"14.0", "14.0", true},
		{"garbage", "14.0", false}, // fails closed
	}
	for _, tt := range tests {
		if got := VersionAtLeast(tt.v, tt.min); got != tt.want {
			t.Errorf("VersionAtLeast(%q,%q) = %v, want %v", tt.v, tt.min, got, tt.want)
		}
	}
}
