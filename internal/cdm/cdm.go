// Package cdm implements the Widevine CDM protocol layer that sits between
// the Android DRM framework and OEMCrypto: the provisioning and license
// message formats, their canonical serialization, and the client-side
// orchestration of the key ladder (which OEMCrypto call to make with which
// part of which message). This corresponds to the protocol logic inside
// libwvdrmengine.so that the paper reverse-engineered.
//
// Messages are JSON-serialized; the canonical bytes double as the key
// derivation context on both ends, binding derived keys to the exact
// request they answer.
package cdm

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mp4"
	"repro/internal/oemcrypto"
)

// nonceSize is the anti-replay nonce length in request messages.
const nonceSize = 16

// ProvisioningRequest asks the provisioning server for a Device RSA key.
type ProvisioningRequest struct {
	StableID   string `json:"stableId"`
	SystemID   uint32 `json:"systemId"`
	CDMVersion string `json:"cdmVersion"`
	Level      string `json:"securityLevel"`
	Nonce      []byte `json:"nonce"`
}

// Canonical returns the serialized request — the derivation context for the
// provisioning ladder step on both client and server.
func (r *ProvisioningRequest) Canonical() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("cdm: canonicalize provisioning request: %w", err)
	}
	return b, nil
}

// ParseProvisioningRequest decodes canonical request bytes.
func ParseProvisioningRequest(b []byte) (*ProvisioningRequest, error) {
	var r ProvisioningRequest
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("cdm: parse provisioning request: %w", err)
	}
	return &r, nil
}

// ProvisioningResponse installs a Device RSA key on the client.
type ProvisioningResponse struct {
	// Message is the canonical response body covered by MAC.
	Message []byte `json:"message"`
	// MAC is HMAC-SHA256 under the keybox-derived server MAC key.
	MAC []byte `json:"mac"`
	// WrappedRSAKey is the PKCS#1 Device RSA key, AES-CBC under the
	// keybox-derived encryption key.
	WrappedRSAKey []byte `json:"wrappedRsaKey"`
	IV            []byte `json:"iv"`
}

// LicenseRequest asks a license server for the content keys of one asset.
type LicenseRequest struct {
	StableID   string     `json:"stableId"`
	SystemID   uint32     `json:"systemId"`
	CDMVersion string     `json:"cdmVersion"`
	Level      string     `json:"securityLevel"`
	ContentID  string     `json:"contentId"`
	KIDs       [][16]byte `json:"kids"`
	Nonce      []byte     `json:"nonce"`
}

// Canonical returns the serialized request — both the PSS-signed bytes and
// the session-key derivation context.
func (r *LicenseRequest) Canonical() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("cdm: canonicalize license request: %w", err)
	}
	return b, nil
}

// ParseLicenseRequest decodes canonical request bytes.
func ParseLicenseRequest(b []byte) (*LicenseRequest, error) {
	var r LicenseRequest
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("cdm: parse license request: %w", err)
	}
	return &r, nil
}

// SignedLicenseRequest is the opaque request of Figure 1: canonical body
// plus the Device RSA (PSS) signature.
type SignedLicenseRequest struct {
	Body      []byte `json:"body"`
	Signature []byte `json:"signature"`
}

// LicenseResponse returns wrapped content keys to the client.
type LicenseResponse struct {
	// EncSessionKey is the RSA-OAEP-wrapped session key.
	EncSessionKey []byte `json:"encSessionKey"`
	// Message is the canonical response body covered by MAC.
	Message []byte `json:"message"`
	// MAC is HMAC-SHA256 under the derived server MAC key.
	MAC []byte `json:"mac"`
	// Keys are the wrapped content keys.
	Keys []oemcrypto.EncryptedKey `json:"keys"`
}

// Client drives one device's CDM: it owns the engine handle and translates
// protocol messages into OEMCrypto calls.
type Client struct {
	engine oemcrypto.Engine
	rand   io.Reader
}

// NewClient wraps an OEMCrypto engine.
func NewClient(engine oemcrypto.Engine, rand io.Reader) *Client {
	return &Client{engine: engine, rand: rand}
}

// Engine exposes the underlying engine (the DRM framework needs its
// security level and the monitor needs its tracer hook).
func (c *Client) Engine() oemcrypto.Engine { return c.engine }

// Provisioned reports whether the device holds a Device RSA key.
func (c *Client) Provisioned() bool { return c.engine.Provisioned() }

// OpenSession opens an OEMCrypto session.
func (c *Client) OpenSession() (oemcrypto.SessionID, error) {
	return c.engine.OpenSession()
}

// CloseSession closes an OEMCrypto session.
func (c *Client) CloseSession(s oemcrypto.SessionID) error {
	return c.engine.CloseSession(s)
}

// CreateProvisioningRequest builds a provisioning request and primes the
// session's derived keys with its canonical bytes.
func (c *Client) CreateProvisioningRequest(s oemcrypto.SessionID) (*ProvisioningRequest, error) {
	stableID, systemID, err := c.engine.KeyboxInfo()
	if err != nil {
		return nil, fmt.Errorf("cdm: provisioning request: %w", err)
	}
	nonce := make([]byte, nonceSize)
	if _, err := io.ReadFull(c.rand, nonce); err != nil {
		return nil, fmt.Errorf("cdm: provisioning nonce: %w", err)
	}
	req := &ProvisioningRequest{
		StableID:   stableID,
		SystemID:   systemID,
		CDMVersion: c.engine.Version(),
		Level:      c.engine.SecurityLevel().String(),
		Nonce:      nonce,
	}
	context, err := req.Canonical()
	if err != nil {
		return nil, err
	}
	if err := c.engine.GenerateDerivedKeys(s, context); err != nil {
		return nil, fmt.Errorf("cdm: derive provisioning keys: %w", err)
	}
	return req, nil
}

// ProcessProvisioningResponse installs the returned Device RSA key.
func (c *Client) ProcessProvisioningResponse(s oemcrypto.SessionID, resp *ProvisioningResponse) error {
	if err := c.engine.RewrapDeviceRSAKey(s, resp.Message, resp.MAC, resp.WrappedRSAKey, resp.IV); err != nil {
		return fmt.Errorf("cdm: process provisioning response: %w", err)
	}
	return nil
}

// CreateLicenseRequest builds and PSS-signs a license request for the given
// content and key IDs.
func (c *Client) CreateLicenseRequest(s oemcrypto.SessionID, contentID string, kids [][16]byte) (*SignedLicenseRequest, error) {
	stableID, systemID, err := c.engine.KeyboxInfo()
	if err != nil {
		return nil, fmt.Errorf("cdm: license request: %w", err)
	}
	nonce := make([]byte, nonceSize)
	if _, err := io.ReadFull(c.rand, nonce); err != nil {
		return nil, fmt.Errorf("cdm: license nonce: %w", err)
	}
	req := &LicenseRequest{
		StableID:   stableID,
		SystemID:   systemID,
		CDMVersion: c.engine.Version(),
		Level:      c.engine.SecurityLevel().String(),
		ContentID:  contentID,
		KIDs:       kids,
		Nonce:      nonce,
	}
	body, err := req.Canonical()
	if err != nil {
		return nil, err
	}
	sig, err := c.engine.GenerateRSASignature(s, body)
	if err != nil {
		return nil, fmt.Errorf("cdm: sign license request: %w", err)
	}
	return &SignedLicenseRequest{Body: body, Signature: sig}, nil
}

// ProcessLicenseResponse derives session keys from the response and loads
// the content keys into the session. request must be the SignedLicenseRequest
// the response answers.
func (c *Client) ProcessLicenseResponse(s oemcrypto.SessionID, request *SignedLicenseRequest, resp *LicenseResponse) error {
	if err := c.engine.DeriveKeysFromSessionKey(s, resp.EncSessionKey, request.Body); err != nil {
		return fmt.Errorf("cdm: derive license keys: %w", err)
	}
	if err := c.engine.LoadKeys(s, resp.Message, resp.MAC, resp.Keys); err != nil {
		return fmt.Errorf("cdm: load keys: %w", err)
	}
	return nil
}

// Decrypt selects kid and decrypts one sample.
func (c *Client) Decrypt(s oemcrypto.SessionID, kid [16]byte, scheme string, iv [8]byte, subsamples []mp4.SubsampleEntry, data []byte) (oemcrypto.DecryptResult, error) {
	if err := c.engine.SelectKey(s, kid); err != nil {
		return oemcrypto.DecryptResult{}, err
	}
	return c.engine.DecryptCENC(s, scheme, iv, subsamples, data)
}

// SecureChannel wraps the generic crypto API for apps that tunnel
// application data (e.g. manifest URIs) through the CDM — the non-DASH mode
// Netflix relies on.
type SecureChannel struct {
	client  *Client
	session oemcrypto.SessionID
	iv      []byte
}

// OpenSecureChannel opens a session whose generic keys are derived from the
// given channel context (shared out-of-band with the server).
func (c *Client) OpenSecureChannel(context []byte) (*SecureChannel, error) {
	s, err := c.engine.OpenSession()
	if err != nil {
		return nil, err
	}
	if err := c.engine.GenerateDerivedKeys(s, context); err != nil {
		return nil, fmt.Errorf("cdm: secure channel keys: %w", err)
	}
	iv := make([]byte, 16)
	if _, err := io.ReadFull(c.rand, iv); err != nil {
		return nil, fmt.Errorf("cdm: secure channel iv: %w", err)
	}
	return &SecureChannel{client: c, session: s, iv: iv}, nil
}

// Session exposes the channel's OEMCrypto session ID.
func (ch *SecureChannel) Session() oemcrypto.SessionID { return ch.session }

// IV exposes the channel IV (sent alongside ciphertext).
func (ch *SecureChannel) IV() []byte { return append([]byte(nil), ch.iv...) }

// Seal encrypts application data into the channel.
func (ch *SecureChannel) Seal(data []byte) ([]byte, error) {
	return ch.client.engine.GenericEncrypt(ch.session, ch.iv, data)
}

// Open decrypts data received over the channel.
func (ch *SecureChannel) Open(data []byte) ([]byte, error) {
	return ch.client.engine.GenericDecrypt(ch.session, ch.iv, data)
}

// OpenWithIV decrypts data sealed under an explicit IV.
func (ch *SecureChannel) OpenWithIV(iv, data []byte) ([]byte, error) {
	return ch.client.engine.GenericDecrypt(ch.session, iv, data)
}

// Close releases the channel's session.
func (ch *SecureChannel) Close() error {
	return ch.client.engine.CloseSession(ch.session)
}
