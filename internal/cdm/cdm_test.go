package cdm_test

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cdm"
	"repro/internal/keybox"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/wvcrypto"
)

type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = append([]byte(nil), data...)
}

func (s *mapStore) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	return d, ok
}

func newClient(t *testing.T) *cdm.Client {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("cdm-test")
	kb, err := keybox.New("CDM-TEST-DEV", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := oemcrypto.InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	engine, err := oemcrypto.NewSoftEngine("15.0", procmem.NewSpace("mediadrmserver"), store, rand)
	if err != nil {
		t.Fatal(err)
	}
	return cdm.NewClient(engine, rand)
}

func TestProvisioningRequestRoundTrip(t *testing.T) {
	req := &cdm.ProvisioningRequest{
		StableID:   "DEV",
		SystemID:   4442,
		CDMVersion: "3.1.0",
		Level:      "L3",
		Nonce:      []byte{1, 2, 3},
	}
	b, err := req.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cdm.ParseProvisioningRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Errorf("roundtrip = %+v", got)
	}
	if _, err := cdm.ParseProvisioningRequest([]byte("junk")); err == nil {
		t.Error("junk parse succeeded")
	}
}

func TestLicenseRequestRoundTrip(t *testing.T) {
	req := &cdm.LicenseRequest{
		StableID:   "DEV",
		SystemID:   1,
		CDMVersion: "15.0",
		Level:      "L1",
		ContentID:  "movie-1",
		KIDs:       [][16]byte{{1}, {2}},
		Nonce:      []byte{9},
	}
	b, err := req.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cdm.ParseLicenseRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Errorf("roundtrip = %+v", got)
	}
	if _, err := cdm.ParseLicenseRequest([]byte("{{{")); err == nil {
		t.Error("junk parse succeeded")
	}
}

// Property: license requests round-trip for arbitrary field values.
func TestLicenseRequest_Property(t *testing.T) {
	prop := func(stableID, contentID string, systemID uint32, kids [][16]byte, nonce []byte) bool {
		req := &cdm.LicenseRequest{
			StableID: stableID, SystemID: systemID, CDMVersion: "15.0",
			Level: "L3", ContentID: contentID, KIDs: kids, Nonce: nonce,
		}
		b, err := req.Canonical()
		if err != nil {
			return false
		}
		got, err := cdm.ParseLicenseRequest(b)
		if err != nil {
			return false
		}
		if got.StableID != stableID || got.ContentID != contentID || got.SystemID != systemID {
			return false
		}
		if len(got.KIDs) != len(kids) {
			return false
		}
		for i := range kids {
			if got.KIDs[i] != kids[i] {
				return false
			}
		}
		return bytes.Equal(got.Nonce, nonce)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCreateProvisioningRequest_PopulatesIdentity(t *testing.T) {
	c := newClient(t)
	s, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	req, err := c.CreateProvisioningRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	if req.StableID != "CDM-TEST-DEV" || req.SystemID != 4442 {
		t.Errorf("identity = %q/%d", req.StableID, req.SystemID)
	}
	if req.CDMVersion != "15.0" || req.Level != "L3" {
		t.Errorf("version/level = %q/%q", req.CDMVersion, req.Level)
	}
	if len(req.Nonce) != 16 {
		t.Errorf("nonce = %d bytes", len(req.Nonce))
	}

	// Two requests carry distinct nonces (anti-replay).
	req2, err := c.CreateProvisioningRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(req.Nonce, req2.Nonce) {
		t.Error("nonces repeat")
	}
}

func TestCreateLicenseRequest_RequiresProvisioning(t *testing.T) {
	c := newClient(t)
	s, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateLicenseRequest(s, "movie", nil); err == nil {
		t.Error("license request without provisioning succeeded")
	}
	if c.Provisioned() {
		t.Error("fresh client claims provisioned")
	}
}

func TestSecureChannel_DistinctContextsDistinctKeys(t *testing.T) {
	c := newClient(t)
	chA, err := c.OpenSecureChannel([]byte("ctx-A"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = chA.Close() }()
	chB, err := c.OpenSecureChannel([]byte("ctx-B"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = chB.Close() }()

	secret := []byte("the same plaintext")
	sealedA, err := chA.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	// Channel B cannot open A's box (different derived keys), even reusing
	// A's IV.
	if pt, err := chB.OpenWithIV(chA.IV(), sealedA); err == nil && bytes.Equal(pt, secret) {
		t.Error("cross-channel open succeeded")
	}
}
