package cdm_test

import (
	"bytes"
	"testing"

	"repro/internal/cdm"
	"repro/internal/keybox"
	"repro/internal/license"
	"repro/internal/mp4"
	"repro/internal/oemcrypto"
	"repro/internal/procmem"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// offlineWorld wires one provisioned client plus servers for the offline
// tests.
type offlineWorld struct {
	client *cdm.Client
	store  *mapStore
	licSrv *license.Server
	db     *license.KeyDB
}

func newOfflineWorld(t *testing.T) *offlineWorld {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("offline-test")
	kb, err := keybox.New("OFFLINE-DEV", 4442, rand)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	if err := oemcrypto.InstallKeybox(store, kb.Marshal()); err != nil {
		t.Fatal(err)
	}
	engine, err := oemcrypto.NewSoftEngine("15.0", procmem.NewSpace("mediadrmserver"), store, rand)
	if err != nil {
		t.Fatal(err)
	}
	client := cdm.NewClient(engine, rand)

	registry := provision.NewRegistry()
	registry.RegisterDevice(kb.StableIDString(), kb.DeviceKey)
	provSrv := provision.NewServer(registry, provision.Policy{}, rand)

	s, err := client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	req, err := client.CreateProvisioningRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := provSrv.Provision(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.ProcessProvisioningResponse(s, resp); err != nil {
		t.Fatal(err)
	}
	if err := client.CloseSession(s); err != nil {
		t.Fatal(err)
	}

	db := license.NewKeyDB()
	return &offlineWorld{
		client: client,
		store:  store,
		db:     db,
		licSrv: license.NewServer(db, registry, license.Policy{}, rand),
	}
}

func TestOfflineLicense_RoundTrip(t *testing.T) {
	w := newOfflineWorld(t)
	kid := [16]byte{0xF1}
	key := bytes.Repeat([]byte{0x81}, 16)
	w.db.Register("movie-dl", []license.KeyEntry{{KID: kid, Key: key, Track: license.TrackVideo}})

	// Online phase: license and persist.
	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := w.client.CreateLicenseRequest(s, "movie-dl", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := w.licSrv.HandleRequest(signed)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.client.ProcessLicenseResponse(s, signed, resp); err != nil {
		t.Fatal(err)
	}
	if err := w.client.StoreOfflineLicense(w.store, "movie-dl", signed, resp); err != nil {
		t.Fatal(err)
	}
	if err := w.client.CloseSession(s); err != nil {
		t.Fatal(err)
	}
	if !w.client.HasOfflineLicense(w.store, "movie-dl") {
		t.Fatal("offline license not persisted")
	}

	// Offline phase: no license server involved.
	s2, err := w.client.RestoreOfflineLicense(w.store, "movie-dl")
	if err != nil {
		t.Fatal(err)
	}
	plaintext := []byte("downloaded-for-offline-viewing")
	iv := [8]byte{7}
	var counter [16]byte
	copy(counter[:8], iv[:])
	stream, err := wvcrypto.CTRStream(key, counter[:])
	if err != nil {
		t.Fatal(err)
	}
	ct := append([]byte(nil), plaintext...)
	stream.XORKeyStream(ct, ct)
	res, err := w.client.Decrypt(s2, kid, mp4.SchemeCENC, iv, nil, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, plaintext) {
		t.Error("offline decrypt mismatch")
	}
}

func TestOfflineLicense_Missing(t *testing.T) {
	w := newOfflineWorld(t)
	if w.client.HasOfflineLicense(w.store, "nothing") {
		t.Error("phantom offline license")
	}
	if _, err := w.client.RestoreOfflineLicense(w.store, "nothing"); err == nil {
		t.Error("restore of missing license succeeded")
	}
}

func TestOfflineLicense_CorruptedBlob(t *testing.T) {
	w := newOfflineWorld(t)
	w.store.Put("offline_license/movie-x", []byte("not json"))
	if _, err := w.client.RestoreOfflineLicense(w.store, "movie-x"); err == nil {
		t.Error("restore of corrupted license succeeded")
	}
}

func TestOfflineLicense_TamperedResponse(t *testing.T) {
	w := newOfflineWorld(t)
	kid := [16]byte{0xF2}
	w.db.Register("movie-t", []license.KeyEntry{{KID: kid, Key: bytes.Repeat([]byte{0x82}, 16), Track: license.TrackVideo}})

	s, err := w.client.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := w.client.CreateLicenseRequest(s, "movie-t", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := w.licSrv.HandleRequest(signed)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the stored response: the replay's MAC check must catch it.
	resp.MAC[0] ^= 1
	if err := w.client.StoreOfflineLicense(w.store, "movie-t", signed, resp); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.RestoreOfflineLicense(w.store, "movie-t"); err == nil {
		t.Error("tampered offline license restored")
	}
}
