package cdm

import (
	"encoding/json"
	"fmt"

	"repro/internal/oemcrypto"
)

// offlineKeyPrefix namespaces persisted licenses in a device FileStore.
const offlineKeyPrefix = "offline_license/"

// offlineRecord is the persisted form of one offline license: the original
// signed request (whose body is the key-derivation context) plus the
// server's response. Replaying both through the CDM restores the session
// keys deterministically — the content keys themselves never touch disk
// unwrapped.
type offlineRecord struct {
	Request  *SignedLicenseRequest `json:"request"`
	Response *LicenseResponse      `json:"response"`
}

// StoreOfflineLicense persists a completed license exchange for offline
// playback (the download-for-offline feature of real OTT apps).
func (c *Client) StoreOfflineLicense(store oemcrypto.FileStore, contentID string, request *SignedLicenseRequest, response *LicenseResponse) error {
	blob, err := json.Marshal(offlineRecord{Request: request, Response: response})
	if err != nil {
		return fmt.Errorf("cdm: store offline license: %w", err)
	}
	store.Put(offlineKeyPrefix+contentID, blob)
	return nil
}

// HasOfflineLicense reports whether a persisted license exists for the
// content.
func (c *Client) HasOfflineLicense(store oemcrypto.FileStore, contentID string) bool {
	_, ok := store.Get(offlineKeyPrefix + contentID)
	return ok
}

// RestoreOfflineLicense reloads a persisted license into a fresh session —
// no network required; only the provisioned Device RSA key and the stored
// exchange. Key-control durations persist: an expired offline license still
// refuses to decrypt.
func (c *Client) RestoreOfflineLicense(store oemcrypto.FileStore, contentID string) (oemcrypto.SessionID, error) {
	blob, ok := store.Get(offlineKeyPrefix + contentID)
	if !ok {
		return 0, fmt.Errorf("cdm: no offline license for %q", contentID)
	}
	var rec offlineRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		return 0, fmt.Errorf("cdm: offline license for %q: %w", contentID, err)
	}
	s, err := c.OpenSession()
	if err != nil {
		return 0, err
	}
	if err := c.ProcessLicenseResponse(s, rec.Request, rec.Response); err != nil {
		_ = c.CloseSession(s)
		return 0, fmt.Errorf("cdm: restore offline license: %w", err)
	}
	return s, nil
}
