// Package exoplayer implements an ExoPlayer-style playback library on top
// of the Android DRM framework — the integration path Widevine recommends
// to app developers (and which the paper observes many apps use). It owns
// the fiddly parts the raw framework leaves to apps: manifest-driven track
// selection, a DRM session manager that transparently provisions and
// licenses, per-sample decryption routing, and adaptive representation
// selection bounded by the granted keys.
//
// Faithful to the real library's gap the paper highlights: there is an API
// for encrypted audio and video, but none for encrypted subtitles — text
// tracks are fetched and rendered as plain files.
package exoplayer

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/android"
	"repro/internal/cdm"
	"repro/internal/dash"
	"repro/internal/mp4"
	"repro/internal/netsim"
	"repro/internal/oemcrypto"
)

// Errors returned by the player.
var (
	// ErrNoVideoTrack is returned for manifests without video.
	ErrNoVideoTrack = errors.New("exoplayer: manifest has no video track")
	// ErrNoLicense is returned when no requested key was granted.
	ErrNoLicense = errors.New("exoplayer: license grants no usable keys")
)

// MediaSource abstracts where segments and licenses come from. The app
// wires it to its backends; tests wire it to in-memory fixtures.
type MediaSource interface {
	// FetchSegment downloads one object by manifest-relative path.
	FetchSegment(path string) ([]byte, error)
	// RequestLicense forwards an opaque key request and returns the
	// opaque response.
	RequestLicense(request []byte) ([]byte, error)
	// RequestProvisioning forwards an opaque provisioning request.
	RequestProvisioning(request []byte) ([]byte, error)
}

// Event is one playback lifecycle notification.
type Event struct {
	Kind   string // "provisioned", "licensed", "track-selected", "rendered"
	Detail string
}

// Listener observes playback events; nil disables notifications.
type Listener func(Event)

// Player is one playback instance.
type Player struct {
	drm      *android.MediaDrm
	source   MediaSource
	listener Listener

	session oemcrypto.SessionID
	granted map[[16]byte]bool
}

// Stats summarizes a completed playback.
type Stats struct {
	// VideoHeight is the selected video representation's height.
	VideoHeight uint16
	// SamplesRendered counts decoded media samples.
	SamplesRendered int
	// SubtitleBytes counts plain subtitle bytes rendered (never
	// decrypted — there is no API for that).
	SubtitleBytes int
}

// New builds a player over a Widevine engine and a media source.
func New(engine oemcrypto.Engine, source MediaSource, rand io.Reader, listener Listener) (*Player, error) {
	if listener == nil {
		listener = func(Event) {}
	}
	drm, err := android.NewMediaDrm(android.WidevineUUID, engine, rand, nil)
	if err != nil {
		return nil, err
	}
	return &Player{drm: drm, source: source, listener: listener}, nil
}

// Play prepares DRM state and plays the manifest end to end: provision if
// needed, license every declared key, select the best granted video
// representation and the preferred audio language, decode everything, and
// render subtitles when present.
func (p *Player) Play(manifest []byte, contentID, audioLang string) (*Stats, error) {
	mpd, err := dash.Parse(manifest)
	if err != nil {
		return nil, fmt.Errorf("exoplayer: %w", err)
	}
	if err := p.ensureProvisioned(); err != nil {
		return nil, err
	}
	if err := p.acquireLicense(contentID); err != nil {
		return nil, err
	}
	defer func() { _ = p.drm.CloseSession(p.session) }()

	crypto, err := android.NewMediaCrypto(p.drm, p.session)
	if err != nil {
		return nil, err
	}
	codec := android.NewMediaCodec(crypto, nil)
	stats := &Stats{}

	videoRep, err := p.selectVideo(mpd)
	if err != nil {
		return nil, err
	}
	stats.VideoHeight = videoRep.Height
	p.listener(Event{Kind: "track-selected", Detail: videoRep.ID})
	if err := p.renderRepresentation(videoRep, codec); err != nil {
		return nil, err
	}

	if audioSet, err := mpd.FindAdaptationSet(dash.ContentAudio, audioLang); err == nil {
		if err := p.renderRepresentation(&audioSet.Representations[0], codec); err != nil {
			return nil, err
		}
	}

	if subSet, err := mpd.FindAdaptationSet(dash.ContentSubtitle, audioLang); err == nil {
		n, err := p.renderSubtitles(subSet)
		if err != nil {
			return nil, err
		}
		stats.SubtitleBytes = n
	}

	stats.SamplesRendered = codec.FrameCount()
	p.listener(Event{Kind: "rendered", Detail: fmt.Sprintf("%d samples", stats.SamplesRendered)})
	return stats, nil
}

// ensureProvisioned runs the provisioning exchange when the device lacks a
// Device RSA key — transparently, as the real DrmSessionManager does.
func (p *Player) ensureProvisioned() error {
	if !p.drm.NeedsProvisioning() {
		return nil
	}
	s, err := p.drm.OpenSession()
	if err != nil {
		return err
	}
	defer func() { _ = p.drm.CloseSession(s) }()
	req, err := p.drm.GetProvisionRequest(s)
	if err != nil {
		return err
	}
	resp, err := p.source.RequestProvisioning(req)
	if err != nil {
		return fmt.Errorf("exoplayer: provisioning: %w", err)
	}
	if err := p.drm.ProvideProvisionResponse(s, resp); err != nil {
		return err
	}
	p.listener(Event{Kind: "provisioned"})
	return nil
}

// acquireLicense opens the playback session and loads all granted keys.
func (p *Player) acquireLicense(contentID string) error {
	s, err := p.drm.OpenSession()
	if err != nil {
		return err
	}
	p.session = s
	req, err := p.drm.GetKeyRequest(s, contentID, nil)
	if err != nil {
		return err
	}
	respBlob, err := p.source.RequestLicense(req)
	if err != nil {
		return fmt.Errorf("exoplayer: license: %w", err)
	}
	if err := p.drm.ProvideKeyResponse(s, respBlob); err != nil {
		return err
	}
	var lr cdm.LicenseResponse
	if err := json.Unmarshal(respBlob, &lr); err != nil {
		return fmt.Errorf("exoplayer: license response: %w", err)
	}
	if len(lr.Keys) == 0 {
		return ErrNoLicense
	}
	p.granted = make(map[[16]byte]bool, len(lr.Keys))
	for _, k := range lr.Keys {
		p.granted[k.KID] = true
	}
	p.listener(Event{Kind: "licensed", Detail: fmt.Sprintf("%d keys", len(lr.Keys))})
	return nil
}

// selectVideo picks the tallest representation whose key was granted —
// adaptive selection bounded by the license.
func (p *Player) selectVideo(mpd *dash.MPD) (*dash.Representation, error) {
	videoSet, err := mpd.FindAdaptationSet(dash.ContentVideo, "")
	if err != nil {
		return nil, ErrNoVideoTrack
	}
	var best *dash.Representation
	for i := range videoSet.Representations {
		rep := &videoSet.Representations[i]
		kid, protected, err := p.repKID(rep)
		if err != nil {
			return nil, err
		}
		if protected && !p.granted[kid] {
			continue
		}
		if best == nil || rep.Height > best.Height {
			best = rep
		}
	}
	if best == nil {
		return nil, ErrNoLicense
	}
	return best, nil
}

// repKID resolves a representation's key ID from its init segment.
func (p *Player) repKID(rep *dash.Representation) ([16]byte, bool, error) {
	var kid [16]byte
	list := rep.Segments()
	if list == nil || list.Initialization == nil {
		return kid, false, fmt.Errorf("exoplayer: representation %s has no init", rep.ID)
	}
	raw, err := p.source.FetchSegment(rep.BaseURL + list.Initialization.SourceURL)
	if err != nil {
		return kid, false, err
	}
	init, err := mp4.ParseInitSegment(raw)
	if err != nil {
		return kid, false, err
	}
	if init.Track.Protection == nil {
		return kid, false, nil
	}
	return init.Track.Protection.DefaultKID, true, nil
}

// renderRepresentation downloads and decodes one representation.
func (p *Player) renderRepresentation(rep *dash.Representation, codec *android.MediaCodec) error {
	list := rep.Segments()
	initRaw, err := p.source.FetchSegment(rep.BaseURL + list.Initialization.SourceURL)
	if err != nil {
		return err
	}
	init, err := mp4.ParseInitSegment(initRaw)
	if err != nil {
		return err
	}
	for _, su := range list.SegmentURLs {
		raw, err := p.source.FetchSegment(rep.BaseURL + su.SourceURL)
		if err != nil {
			return err
		}
		seg, err := mp4.ParseMediaSegment(raw)
		if err != nil {
			return err
		}
		if seg.Encryption == nil {
			for _, sample := range seg.SampleData {
				codec.QueueClearBuffer(sample)
			}
			continue
		}
		if init.Track.Protection == nil {
			return fmt.Errorf("exoplayer: encrypted segment under clear init (%s)", rep.ID)
		}
		for i, sample := range seg.SampleData {
			entry := seg.Encryption.Entries[i]
			err := codec.QueueSecureInputBuffer(init.Track.Protection.DefaultKID,
				init.Track.Protection.Scheme, entry.IV, entry.Subsamples, sample)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// renderSubtitles fetches the (always plain) subtitle files. The real
// library has no decryption path here either — the API gap the paper
// identifies as a reason subtitles ship in clear.
func (p *Player) renderSubtitles(set *dash.AdaptationSet) (int, error) {
	total := 0
	for _, rep := range set.Representations {
		list := rep.Segments()
		if list == nil {
			continue
		}
		for _, su := range list.SegmentURLs {
			raw, err := p.source.FetchSegment(rep.BaseURL + su.SourceURL)
			if err != nil {
				return 0, err
			}
			total += len(raw)
		}
	}
	return total, nil
}

// NetworkSource adapts an app's netsim client + backend hosts into a
// MediaSource.
type NetworkSource struct {
	Client        *netsim.Client
	CDNHost       string
	CDNPrefix     string // e.g. cdn.ObjectPrefix
	LicenseHost   string
	LicensePath   string
	ProvisionHost string
	ProvisionPath string
}

var _ MediaSource = (*NetworkSource)(nil)

// FetchSegment implements MediaSource.
func (n *NetworkSource) FetchSegment(path string) ([]byte, error) {
	resp, err := n.Client.Do(netsim.Request{Host: n.CDNHost, Path: n.CDNPrefix + path})
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("exoplayer: fetch %s: status %d", path, resp.Status)
	}
	return resp.Body, nil
}

// RequestLicense implements MediaSource.
func (n *NetworkSource) RequestLicense(request []byte) ([]byte, error) {
	resp, err := n.Client.Do(netsim.Request{Host: n.LicenseHost, Path: n.LicensePath, Body: request})
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("exoplayer: license status %d: %s", resp.Status, resp.Body)
	}
	return resp.Body, nil
}

// RequestProvisioning implements MediaSource.
func (n *NetworkSource) RequestProvisioning(request []byte) ([]byte, error) {
	resp, err := n.Client.Do(netsim.Request{Host: n.ProvisionHost, Path: n.ProvisionPath, Body: request})
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("exoplayer: provisioning status %d: %s", resp.Status, resp.Body)
	}
	return resp.Body, nil
}
