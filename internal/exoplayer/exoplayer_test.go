package exoplayer_test

import (
	"errors"
	"testing"

	"repro/internal/cdn"
	"repro/internal/dash"
	"repro/internal/device"
	"repro/internal/exoplayer"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/ott"
	"repro/internal/provision"
	"repro/internal/wvcrypto"
)

// fixture builds one deployment plus a device and a NetworkSource.
type fixture struct {
	dep    *ott.Deployment
	dev    *device.Device
	source *exoplayer.NetworkSource
	rand   *wvcrypto.DeterministicReader
}

func newFixture(t *testing.T, profileName string, mkDevice func(*device.Factory) (*device.Device, error)) *fixture {
	t.Helper()
	rand := wvcrypto.NewDeterministicReader("exo-" + profileName)
	network := netsim.NewNetwork()
	registry := provision.NewRegistry()
	var profile ott.Profile
	for _, p := range ott.Profiles() {
		if p.Name == profileName {
			profile = p
		}
	}
	dep, err := ott.NewDeployment(profile, []string{"movie-1"}, registry, network, rand)
	if err != nil {
		t.Fatal(err)
	}
	factory := device.NewFactory(registry, rand)
	dev, err := mkDevice(factory)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		dep: dep,
		dev: dev,
		source: &exoplayer.NetworkSource{
			Client:        netsim.NewClient(network),
			CDNHost:       profile.CDNHost(),
			CDNPrefix:     cdn.ObjectPrefix,
			LicenseHost:   profile.LicenseHost(),
			LicensePath:   ott.PathLicense,
			ProvisionHost: profile.APIHost(),
			ProvisionPath: ott.PathProvision,
		},
		rand: rand,
	}
}

func (f *fixture) manifest(t *testing.T) []byte {
	t.Helper()
	m, ok := f.dep.CDN().Manifest("movie-1")
	if !ok {
		t.Fatal("no manifest")
	}
	return m
}

func TestPlay_L1FullQuality(t *testing.T) {
	f := newFixture(t, "Showtime", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakePixel("EXO-PX")
	})
	var events []exoplayer.Event
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, func(ev exoplayer.Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := player.Play(f.manifest(t), "movie-1", "en")
	if err != nil {
		t.Fatal(err)
	}
	if stats.VideoHeight != 1080 {
		t.Errorf("video height = %d, want 1080 on L1", stats.VideoHeight)
	}
	if stats.SamplesRendered == 0 {
		t.Error("no samples rendered")
	}
	if stats.SubtitleBytes == 0 {
		t.Error("no subtitles rendered")
	}
	var provisioned, licensed bool
	for _, ev := range events {
		switch ev.Kind {
		case "provisioned":
			provisioned = true
		case "licensed":
			licensed = true
		}
	}
	if !provisioned || !licensed {
		t.Errorf("lifecycle events missing: %+v", events)
	}
}

func TestPlay_L3CappedQuality(t *testing.T) {
	f := newFixture(t, "Showtime", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakeNexus5("EXO-N5")
	})
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := player.Play(f.manifest(t), "movie-1", "en")
	if err != nil {
		t.Fatal(err)
	}
	if stats.VideoHeight != 540 {
		t.Errorf("video height = %d, want 540 on L3 (adaptive selection bounded by grant)", stats.VideoHeight)
	}
}

func TestPlay_ClearAudioApp(t *testing.T) {
	f := newFixture(t, "Netflix", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakePixel("EXO-NFX")
	})
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Netflix's clear audio flows through the codec's clear path.
	stats, err := player.Play(f.manifest(t), "movie-1", "fr")
	if err != nil {
		t.Fatal(err)
	}
	if stats.SamplesRendered == 0 {
		t.Error("nothing rendered")
	}
}

func TestPlay_RevokedDevice(t *testing.T) {
	f := newFixture(t, "Disney+", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakeNexus5("EXO-N5-DIS")
	})
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := player.Play(f.manifest(t), "movie-1", "en"); err == nil {
		t.Fatal("revoked device played")
	}
}

func TestPlay_UnknownContent(t *testing.T) {
	f := newFixture(t, "Showtime", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakePixel("EXO-UC")
	})
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := player.Play(f.manifest(t), "no-such-movie", "en"); err == nil {
		t.Fatal("unknown content played")
	}
}

func TestPlay_BadManifest(t *testing.T) {
	f := newFixture(t, "Showtime", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakePixel("EXO-BM")
	})
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := player.Play([]byte("<not-an-mpd"), "movie-1", "en"); err == nil {
		t.Fatal("garbage manifest played")
	}
}

func TestPlay_NoVideoManifest(t *testing.T) {
	f := newFixture(t, "Showtime", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakePixel("EXO-NV")
	})
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, nil)
	if err != nil {
		t.Fatal(err)
	}
	audioOnly := []byte(`<?xml version="1.0"?><MPD profiles="p" type="static"><Period><AdaptationSet contentType="audio"></AdaptationSet></Period></MPD>`)
	_, err = player.Play(audioOnly, "movie-1", "en")
	if !errors.Is(err, exoplayer.ErrNoVideoTrack) && err == nil {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkSource_Errors(t *testing.T) {
	network := netsim.NewNetwork()
	src := &exoplayer.NetworkSource{
		Client: netsim.NewClient(network), CDNHost: "ghost", LicenseHost: "ghost", ProvisionHost: "ghost",
	}
	if _, err := src.FetchSegment("x"); err == nil {
		t.Error("fetch from unknown host succeeded")
	}
	if _, err := src.RequestLicense(nil); err == nil {
		t.Error("license from unknown host succeeded")
	}
	if _, err := src.RequestProvisioning(nil); err == nil {
		t.Error("provisioning from unknown host succeeded")
	}
}

// TestPlay_TemplateAddressedManifest plays a manifest using DASH
// SegmentTemplate addressing ($Number$), the form production MPDs use.
func TestPlay_TemplateAddressedManifest(t *testing.T) {
	f := newFixture(t, "Showtime", func(fc *device.Factory) (*device.Device, error) {
		return fc.MakePixel("EXO-TPL")
	})
	mpd, err := dash.Parse(f.manifest(t))
	if err != nil {
		t.Fatal(err)
	}
	media.ConvertToTemplates(mpd)
	templated, err := mpd.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	player, err := exoplayer.New(f.dev.Engine, f.source, f.rand, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := player.Play(templated, "movie-1", "en")
	if err != nil {
		t.Fatal(err)
	}
	if stats.VideoHeight != 1080 || stats.SamplesRendered == 0 {
		t.Errorf("templated playback stats = %+v", stats)
	}
}
